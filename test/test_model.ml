open Ddlock_graph
open Ddlock_model

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let db2 () = Db.create [ ("s1", [ "x"; "y" ]); ("s2", [ "z" ]) ]

(* ------------------------------------------------------------------ *)
(* Db                                                                  *)
(* ------------------------------------------------------------------ *)

let test_db_basic () =
  let db = db2 () in
  check int_t "entities" 3 (Db.entity_count db);
  check int_t "sites" 2 (Db.site_count db);
  let x = Db.find_entity_exn db "x" and z = Db.find_entity_exn db "z" in
  check bool_t "same site" true (Db.same_site db x (Db.find_entity_exn db "y"));
  check bool_t "diff site" false (Db.same_site db x z);
  check Alcotest.string "name" "z" (Db.entity_name db z);
  check (Alcotest.option int_t) "missing" None (Db.find_entity db "nope")

let test_db_dup () =
  Alcotest.check_raises "dup entity"
    (Invalid_argument "Db.create: duplicate entity \"x\"") (fun () ->
      ignore (Db.create [ ("a", [ "x" ]); ("b", [ "x" ]) ]));
  Alcotest.check_raises "dup site"
    (Invalid_argument "Db.create: duplicate site \"a\"") (fun () ->
      ignore (Db.create [ ("a", [ "x" ]); ("a", [ "y" ]) ]))

let test_db_one_site_per_entity () =
  let db = Db.one_site_per_entity [ "a"; "b"; "c" ] in
  check int_t "sites" 3 (Db.site_count db);
  check bool_t "all different" false
    (Db.same_site db (Db.find_entity_exn db "a") (Db.find_entity_exn db "b"))

(* ------------------------------------------------------------------ *)
(* Transaction validation                                              *)
(* ------------------------------------------------------------------ *)

let mk_nodes db l =
  Array.of_list
    (List.map
       (fun (op, name) ->
         let e = Db.find_entity_exn db name in
         match op with `L -> Node.lock e | `U -> Node.unlock e)
       l)

let test_validation_ok () =
  let db = db2 () in
  let nodes = mk_nodes db [ (`L, "x"); (`U, "x") ] in
  match Transaction.make db nodes [ (0, 1) ] with
  | Ok t ->
      check int_t "nodes" 2 (Transaction.node_count t);
      check bool_t "precedes" true (Transaction.precedes t 0 1);
      check bool_t "not precedes" false (Transaction.precedes t 1 0)
  | Error _ -> Alcotest.fail "expected valid"

let expect_error name db nodes arcs pred =
  match Transaction.make db nodes arcs with
  | Ok _ -> Alcotest.fail (name ^ ": expected error")
  | Error es -> check bool_t name true (List.exists pred es)

let test_validation_errors () =
  let db = db2 () in
  expect_error "missing unlock" db
    (mk_nodes db [ (`L, "x") ])
    []
    (function Transaction.Missing_unlock _ -> true | _ -> false);
  expect_error "missing lock" db
    (mk_nodes db [ (`U, "x") ])
    []
    (function Transaction.Missing_lock _ -> true | _ -> false);
  expect_error "unlock before lock" db
    (mk_nodes db [ (`L, "x"); (`U, "x") ])
    [ (1, 0) ]
    (function Transaction.Unlock_before_lock _ -> true | _ -> false);
  expect_error "duplicate op" db
    (mk_nodes db [ (`L, "x"); (`L, "x"); (`U, "x") ])
    [ (0, 2); (1, 2) ]
    (function Transaction.Duplicate_op _ -> true | _ -> false);
  expect_error "cyclic" db
    (mk_nodes db [ (`L, "x"); (`U, "x") ])
    [ (0, 1); (1, 0) ]
    (function Transaction.Cyclic _ -> true | _ -> false);
  (* x and y live on the same site: all four nodes must be comparable. *)
  expect_error "site unordered" db
    (mk_nodes db [ (`L, "x"); (`U, "x"); (`L, "y"); (`U, "y") ])
    [ (0, 1); (2, 3) ]
    (function Transaction.Site_unordered _ -> true | _ -> false)

let test_site_order_ok_when_chained () =
  let db = db2 () in
  let nodes = mk_nodes db [ (`L, "x"); (`U, "x"); (`L, "y"); (`U, "y") ] in
  match Transaction.make db nodes [ (0, 1); (1, 2); (2, 3) ] with
  | Ok _ -> ()
  | Error es ->
      Alcotest.failf "unexpected: %s"
        (String.concat "; " (List.map (Transaction.error_to_string db) es))

let test_cross_site_may_be_unordered () =
  let db = db2 () in
  let nodes = mk_nodes db [ (`L, "x"); (`U, "x"); (`L, "z"); (`U, "z") ] in
  match Transaction.make db nodes [ (0, 1); (2, 3) ] with
  | Ok t ->
      check bool_t "incomparable" false (Transaction.precedes t 0 2);
      check bool_t "incomparable'" false (Transaction.precedes t 2 0)
  | Error _ -> Alcotest.fail "expected valid"

(* ------------------------------------------------------------------ *)
(* R/L sets                                                            *)
(* ------------------------------------------------------------------ *)

let names db s = List.map (Db.entity_name db) (Bitset.to_list s)

let test_r_l_sets () =
  (* Total order on one-site-per-entity db: La Lb Ua Lc Ub Uc.
     At Lc: R = {a, b} (locked before), L = {b} (held across). *)
  let db = Db.one_site_per_entity [ "a"; "b"; "c" ] in
  let t =
    Builder.total_exn db
      Builder.[ L "a"; L "b"; U "a"; L "c"; U "b"; U "c" ]
  in
  let lc = Transaction.lock_node_exn t (Db.find_entity_exn db "c") in
  check (Alcotest.list Alcotest.string) "R(Lc)" [ "a"; "b" ]
    (names db (Transaction.r_set t lc));
  check (Alcotest.list Alcotest.string) "L(Lc)" [ "b" ]
    (names db (Transaction.l_set t lc))

let test_l_set_partial_order () =
  (* Fig 3 shape: Lx < Ux < Uy, Ly < Uy, x/y incomparable locks.
     L(Ly) must be empty: Ly ≺ Ux fails. *)
  let _, t = Fixtures.fig3_txn () in
  let db = Transaction.db t in
  let ly = Transaction.lock_node_exn t (Db.find_entity_exn db "y") in
  check (Alcotest.list Alcotest.string) "L(Ly)" []
    (names db (Transaction.l_set t ly));
  (* But L(Lx): Lx ≺ Uy and not Lx ≺ Ly, so y is held-like across Lx. *)
  let lx = Transaction.lock_node_exn t (Db.find_entity_exn db "x") in
  check (Alcotest.list Alcotest.string) "L(Lx)" [ "y" ]
    (names db (Transaction.l_set t lx))

(* ------------------------------------------------------------------ *)
(* Prefixes                                                            *)
(* ------------------------------------------------------------------ *)

let test_prefix_ops () =
  let db = Db.one_site_per_entity [ "a"; "b" ] in
  let t =
    Builder.transaction_exn db
      ~chains:Builder.[ [ L "a"; U "a" ]; [ L "b"; U "b" ] ]
      ()
  in
  (* 2 independent chains of 2: ideals = 3 * 3 = 9. *)
  check int_t "prefix count" 9 (Seq.length (Transaction.prefixes t));
  check bool_t "all are prefixes" true
    (Seq.for_all (Transaction.is_prefix t) (Transaction.prefixes t));
  check int_t "extensions" 6 (Transaction.count_linear_extensions t);
  let ua = Transaction.unlock_node_exn t (Db.find_entity_exn db "a") in
  let p = Transaction.down_closure t [ ua ] in
  check int_t "down closure size" 2 (Bitset.cardinal p);
  check bool_t "is prefix" true (Transaction.is_prefix t p)

let test_minimal_remaining () =
  let db = Db.one_site_per_entity [ "a"; "b" ] in
  let t = Builder.two_phase_chain db [ "a"; "b" ] in
  let p = Transaction.empty_prefix t in
  let la = Transaction.lock_node_exn t (Db.find_entity_exn db "a") in
  check (Alcotest.list int_t) "initial minimal" [ la ]
    (Transaction.minimal_remaining t p);
  let p = Transaction.down_closure t [ la ] in
  let lb = Transaction.lock_node_exn t (Db.find_entity_exn db "b") in
  check (Alcotest.list int_t) "after La" [ lb ]
    (Transaction.minimal_remaining t p)

let test_max_prefix_avoiding () =
  let db = Db.one_site_per_entity [ "a"; "b"; "c" ] in
  let t = Builder.two_phase_chain db [ "a"; "b"; "c" ] in
  let b = Db.find_entity_exn db "b" in
  let avoid = Bitset.create (Db.entity_count db) in
  Bitset.set avoid b;
  let p = Transaction.max_prefix_avoiding t avoid in
  (* La Lb Lc Ua Ub Uc: dropping Lb and successors leaves just {La}. *)
  check int_t "size" 1 (Bitset.cardinal p);
  check bool_t "is prefix" true (Transaction.is_prefix t p);
  check (Alcotest.list Alcotest.string) "locked" [ "a" ]
    (names db (Transaction.locked_in_prefix t p));
  check (Alcotest.list Alcotest.string) "y_set = all" [ "a"; "b"; "c" ]
    (names db (Transaction.y_set t p))

let prefix_ideal_prop =
  QCheck.Test.make ~name:"prefix enumeration: all downward closed, distinct"
    ~count:60
    QCheck.(int_bound 1000)
    (fun seed ->
      let st = Fixtures.rng seed in
      let db = Ddlock_workload.Gentx.random_db ~sites:2 ~entities:3 in
      let t =
        Ddlock_workload.Gentx.random_transaction st db
          ~entities:(Ddlock_workload.Gentx.random_entity_subset st db ~k:3)
          ~density:0.3
      in
      let ps = List.of_seq (Transaction.prefixes t) in
      List.for_all (Transaction.is_prefix t) ps
      && List.length (List.sort_uniq compare (List.map Bitset.to_list ps))
         = List.length ps)

let random_txn_valid_prop =
  QCheck.Test.make ~name:"generator output is always well-formed" ~count:100
    QCheck.(int_bound 100000)
    (fun seed ->
      let st = Fixtures.rng seed in
      let db = Ddlock_workload.Gentx.random_db ~sites:3 ~entities:5 in
      let k = 1 + Random.State.int st 5 in
      let t =
        Ddlock_workload.Gentx.random_transaction st db
          ~entities:(Ddlock_workload.Gentx.random_entity_subset st db ~k)
          ~density:(Random.State.float st 1.0)
      in
      (* make_exn already validated; double-check invariants here. *)
      Transaction.node_count t = 2 * k
      && List.length (Transaction.entities t) = k
      && Bitset.for_all
           (fun e ->
             Transaction.precedes t
               (Transaction.lock_node_exn t e)
               (Transaction.unlock_node_exn t e))
           (Transaction.entity_set t))

(* ------------------------------------------------------------------ *)
(* Two-phase                                                           *)
(* ------------------------------------------------------------------ *)

let test_two_phase () =
  let db = Db.one_site_per_entity [ "a"; "b" ] in
  check bool_t "2PL chain" true
    (Transaction.is_two_phase (Builder.two_phase_chain db [ "a"; "b" ]));
  let t =
    Builder.total_exn db Builder.[ L "a"; U "a"; L "b"; U "b" ]
  in
  check bool_t "lock after unlock" false (Transaction.is_two_phase t)

(* ------------------------------------------------------------------ *)
(* Builder and parser                                                  *)
(* ------------------------------------------------------------------ *)

let test_builder_implicit_arcs () =
  let db = Db.one_site_per_entity [ "a"; "b" ] in
  let t =
    Builder.transaction_exn db ~chains:Builder.[ [ L "a"; L "b" ] ] ()
  in
  (* Both unlock nodes are materialized with implicit L < U arcs. *)
  check int_t "4 nodes" 4 (Transaction.node_count t);
  let a = Db.find_entity_exn db "a" in
  check bool_t "implicit La<Ua" true
    (Transaction.precedes t
       (Transaction.lock_node_exn t a)
       (Transaction.unlock_node_exn t a))

let sample_source =
  {|
# a sample system
site s1 { x y }
site s2 { z }

txn T1 {
  L x < L y < U y < U x < L z;
}
txn T2 {
  L z < U z;
}
|}

let test_parser_basic () =
  let r = Parser.parse_exn sample_source in
  check int_t "txns" 2 (List.length r.Parser.named);
  let t1 = List.assoc "T1" r.Parser.named in
  let db = r.Parser.db in
  check int_t "t1 nodes" 6 (Transaction.node_count t1);
  let x = Db.find_entity_exn db "x" and z = Db.find_entity_exn db "z" in
  check bool_t "Ux < Lz" true
    (Transaction.precedes t1
       (Transaction.unlock_node_exn t1 x)
       (Transaction.lock_node_exn t1 z))

let test_parser_roundtrip () =
  let r = Parser.parse_exn sample_source in
  let src = Parser.to_source r.Parser.db r.Parser.named in
  let r2 = Parser.parse_exn src in
  check int_t "same txn count" (List.length r.Parser.named)
    (List.length r2.Parser.named);
  List.iter2
    (fun (n1, t1) (n2, t2) ->
      check Alcotest.string "name" n1 n2;
      check bool_t ("equal " ^ n1) true (Transaction.equal t1 t2))
    r.Parser.named r2.Parser.named

let test_parser_errors () =
  let bad_cases =
    [
      ("no sites", "txn T { L x < U x; }");
      ("unknown entity", "site s { x }\ntxn T { L q < U q; }");
      ("bad step", "site s { x }\ntxn T { W x; }");
      ("unterminated", "site s { x }\ntxn T { L x < U x");
      ("cyclic txn", "site s { x y }\ntxn T { L x < L y; L y < U x; U x < L x; }");
    ]
  in
  List.iter
    (fun (name, src) ->
      match Parser.parse src with
      | Ok _ -> Alcotest.fail (name ^ ": expected parse error")
      | Error _ -> ())
    bad_cases

let test_system_basic () =
  let sys = Fixtures.fig1 () in
  check int_t "size" 3 (System.size sys);
  check int_t "total nodes" 14 (System.total_nodes sys);
  let g = System.interaction_graph sys in
  (* T1-T2 share x,y; T1-T3 share x,z; T2-T3 share x: complete graph. *)
  check int_t "interaction edges" 3 (Ungraph.edge_count g);
  let db = System.db sys in
  let x = Db.find_entity_exn db "x" in
  check bool_t "common T2 T3 = {x}" true
    (Bitset.to_list (System.common_entities sys 1 2) = [ x ])

(* Round-trip any generated system through the textual format. *)
let parser_roundtrip_prop =
  QCheck.Test.make ~name:"to_source/parse round-trips random systems"
    ~count:80
    QCheck.(int_bound 10_000_000)
    (fun seed ->
      let st = Fixtures.rng seed in
      let sites = 1 + Random.State.int st 3 in
      let entities = 1 + Random.State.int st 5 in
      let db = Ddlock_workload.Gentx.random_db ~sites ~entities in
      let named =
        List.init
          (1 + Random.State.int st 3)
          (fun i ->
            let k = 1 + Random.State.int st entities in
            ( "T" ^ string_of_int i,
              Ddlock_workload.Gentx.random_transaction st db
                ~entities:(Ddlock_workload.Gentx.random_entity_subset st db ~k)
                ~density:(Random.State.float st 0.6) ))
      in
      let src = Parser.to_source db named in
      match Parser.parse src with
      | Error _ -> false
      | Ok r ->
          List.length r.Parser.named = List.length named
          && List.for_all2
               (fun (n1, t1) (n2, t2) -> n1 = n2 && Transaction.equal t1 t2)
               named r.Parser.named)

let random_extension_valid_prop =
  QCheck.Test.make ~name:"random_linear_extension yields valid extensions"
    ~count:100
    QCheck.(int_bound 10_000_000)
    (fun seed ->
      let st = Fixtures.rng seed in
      let db = Ddlock_workload.Gentx.random_db ~sites:2 ~entities:4 in
      let t =
        Ddlock_workload.Gentx.random_transaction st db
          ~entities:(Ddlock_workload.Gentx.random_entity_subset st db ~k:3)
          ~density:0.4
      in
      let ext = Transaction.random_linear_extension st t in
      Ddlock_graph.Topo.is_linear_extension (Transaction.given_arcs t) ext)

let qtests =
  List.map Fixtures.to_alcotest
    [
      prefix_ideal_prop;
      random_txn_valid_prop;
      parser_roundtrip_prop;
      random_extension_valid_prop;
    ]

let suite =
  [
    Alcotest.test_case "db basic" `Quick test_db_basic;
    Alcotest.test_case "db duplicates" `Quick test_db_dup;
    Alcotest.test_case "db one site per entity" `Quick
      test_db_one_site_per_entity;
    Alcotest.test_case "validation ok" `Quick test_validation_ok;
    Alcotest.test_case "validation errors" `Quick test_validation_errors;
    Alcotest.test_case "site order chained" `Quick
      test_site_order_ok_when_chained;
    Alcotest.test_case "cross-site unordered" `Quick
      test_cross_site_may_be_unordered;
    Alcotest.test_case "r/l sets (total order)" `Quick test_r_l_sets;
    Alcotest.test_case "l_set (partial order)" `Quick test_l_set_partial_order;
    Alcotest.test_case "prefix ops" `Quick test_prefix_ops;
    Alcotest.test_case "minimal remaining" `Quick test_minimal_remaining;
    Alcotest.test_case "max prefix avoiding" `Quick test_max_prefix_avoiding;
    Alcotest.test_case "two phase" `Quick test_two_phase;
    Alcotest.test_case "builder implicit arcs" `Quick
      test_builder_implicit_arcs;
    Alcotest.test_case "parser basic" `Quick test_parser_basic;
    Alcotest.test_case "parser roundtrip" `Quick test_parser_roundtrip;
    Alcotest.test_case "parser errors" `Quick test_parser_errors;
    Alcotest.test_case "system basic" `Quick test_system_basic;
  ]
  @ qtests
