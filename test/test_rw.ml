open Ddlock_model
open Ddlock_rw

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* Small helper: build a total-order rw transaction from a spec. *)
let rw db spec =
  match
    Rw_txn.of_total_order db
      (List.map
         (fun (op, name) ->
           let e = Db.find_entity_exn db name in
           match op with
           | `R -> { Rw_txn.entity = e; op = Rw_txn.Lock Rw_txn.Read }
           | `W -> { Rw_txn.entity = e; op = Rw_txn.Lock Rw_txn.Write }
           | `U -> { Rw_txn.entity = e; op = Rw_txn.Unlock })
         spec)
  with
  | Ok t -> t
  | Error es ->
      Alcotest.failf "invalid rw txn: %s"
        (String.concat "; "
           (List.map (fun e -> Format.asprintf "%a" (Rw_txn.pp_error db) e) es))

let db2 () = Db.one_site_per_entity [ "a"; "b" ]

(* ------------------------------------------------------------------ *)
(* Validation and basics                                               *)
(* ------------------------------------------------------------------ *)

let test_validation () =
  let db = db2 () in
  let t = rw db [ (`R, "a"); (`W, "b"); (`U, "a"); (`U, "b") ] in
  check int_t "nodes" 4 (Rw_txn.node_count t);
  let a = Db.find_entity_exn db "a" and b = Db.find_entity_exn db "b" in
  check bool_t "mode a" true (Rw_txn.mode_of t a = Rw_txn.Read);
  check bool_t "mode b" true (Rw_txn.mode_of t b = Rw_txn.Write);
  check bool_t "2PL" true (Rw_txn.is_two_phase t);
  (* Double lock rejected. *)
  (match
     Rw_txn.of_total_order db
       [
         { Rw_txn.entity = a; op = Rw_txn.Lock Rw_txn.Read };
         { Rw_txn.entity = a; op = Rw_txn.Lock Rw_txn.Write };
         { Rw_txn.entity = a; op = Rw_txn.Unlock };
       ]
   with
  | Error es ->
      check bool_t "bad ops" true
        (List.exists (function Rw_txn.Bad_entity_ops _ -> true | _ -> false) es)
  | Ok _ -> Alcotest.fail "expected error")

let test_to_exclusive () =
  let db = db2 () in
  let t = rw db [ (`R, "a"); (`W, "b"); (`U, "a"); (`U, "b") ] in
  let x = Rw_txn.to_exclusive t in
  check int_t "same node count" 4 (Transaction.node_count x);
  check bool_t "same entities" true
    (Transaction.entities x = Rw_txn.entities t)

(* ------------------------------------------------------------------ *)
(* Shared-lock semantics                                               *)
(* ------------------------------------------------------------------ *)

let test_readers_share () =
  let db = db2 () in
  let t1 = rw db [ (`R, "a"); (`U, "a") ] in
  let t2 = rw db [ (`R, "a"); (`U, "a") ] in
  let sys = Rw_system.create [ t1; t2 ] in
  (* Both can hold a simultaneously. *)
  let st = Rw_system.initial sys in
  let st = Rw_system.apply st { Rw_system.txn = 0; node = 0 } in
  let st = Rw_system.apply st { Rw_system.txn = 1; node = 0 } in
  let a = Db.find_entity_exn db "a" in
  let hs, mode = Rw_system.holders sys st a in
  check (Alcotest.list int_t) "two holders" [ 0; 1 ] hs;
  check bool_t "read mode" true (mode = Some Rw_txn.Read);
  (* Under the exclusive abstraction this state is unreachable. *)
  check bool_t "rw df" true (Rw_system.deadlock_free sys);
  check bool_t "exclusive df too" true
    (Ddlock_schedule.Explore.deadlock_free (Rw_system.to_exclusive sys))

let test_writer_excludes () =
  let db = db2 () in
  let t1 = rw db [ (`W, "a"); (`U, "a") ] in
  let t2 = rw db [ (`R, "a"); (`U, "a") ] in
  let sys = Rw_system.create [ t1; t2 ] in
  let st = Rw_system.initial sys in
  let st = Rw_system.apply st { Rw_system.txn = 0; node = 0 } in
  (* T2's read lock is not enabled while the writer holds. *)
  let en = Rw_system.enabled sys st in
  check bool_t "reader blocked" false
    (List.exists (fun (s : Rw_system.step) -> s.txn = 1 && s.node = 0) en)

let test_rw_deadlock () =
  (* Classic upgrade-free write-write cycle. *)
  let db = db2 () in
  let t1 = rw db [ (`W, "a"); (`W, "b"); (`U, "a"); (`U, "b") ] in
  let t2 = rw db [ (`W, "b"); (`W, "a"); (`U, "b"); (`U, "a") ] in
  let sys = Rw_system.create [ t1; t2 ] in
  check bool_t "deadlocks" false (Rw_system.deadlock_free sys);
  match Rw_system.find_deadlock sys with
  | Some (steps, st) ->
      check bool_t "deadlock state" true (Rw_system.is_deadlock sys st);
      check int_t "two steps in" 2 (List.length steps)
  | None -> Alcotest.fail "expected deadlock"

let test_readers_never_deadlock () =
  (* Read-read on the same entities in opposite orders: compatible, no
     deadlock — unlike the exclusive abstraction. *)
  let db = db2 () in
  let t1 = rw db [ (`R, "a"); (`R, "b"); (`U, "a"); (`U, "b") ] in
  let t2 = rw db [ (`R, "b"); (`R, "a"); (`U, "b"); (`U, "a") ] in
  let sys = Rw_system.create [ t1; t2 ] in
  check bool_t "rw deadlock-free" true (Rw_system.deadlock_free sys);
  check bool_t "exclusive abstraction deadlocks" false
    (Ddlock_schedule.Explore.deadlock_free (Rw_system.to_exclusive sys));
  check bool_t "rw safe" true (Result.is_ok (Rw_system.safe sys))

(* ------------------------------------------------------------------ *)
(* Conflict-serializability                                            *)
(* ------------------------------------------------------------------ *)

let test_unsafe_rw () =
  (* T1 reads a, then writes b after releasing a; T2 writes a and b 2PL:
     non-2PL T1 lets T2 slip in between: r1(a) w2(a) w2(b) w1(b) has
     conflicts T1->T2 (a) and T2->T1 (b). *)
  let db = db2 () in
  let t1 = rw db [ (`R, "a"); (`U, "a"); (`W, "b"); (`U, "b") ] in
  let t2 = rw db [ (`W, "a"); (`W, "b"); (`U, "a"); (`U, "b") ] in
  let sys = Rw_system.create [ t1; t2 ] in
  match Rw_system.safe sys with
  | Error steps ->
      check bool_t "witness complete & non-serializable" false
        (Rw_system.is_conflict_serializable sys steps)
  | Ok () -> Alcotest.fail "expected unsafe"

let test_read_only_conflictless () =
  (* Read-only transactions never conflict: conflict graph empty. *)
  let db = db2 () in
  let t1 = rw db [ (`R, "a"); (`R, "b"); (`U, "a"); (`U, "b") ] in
  let t2 = rw db [ (`R, "b"); (`U, "b"); (`R, "a"); (`U, "a") ] in
  let sys = Rw_system.create [ t1; t2 ] in
  check bool_t "safe" true (Result.is_ok (Rw_system.safe sys));
  check bool_t "deadlock-free" true (Rw_system.deadlock_free sys)

(* Random RW generator for properties. *)
let random_rw_txn st db ~k =
  let ents = Ddlock_workload.Gentx.random_entity_subset st db ~k in
  (* random 2-phase or not, random modes, random positions: build a random
     total order with L before U per entity. *)
  let nodes =
    List.concat_map
      (fun e ->
        let m = if Random.State.bool st then Rw_txn.Read else Rw_txn.Write in
        [ { Rw_txn.entity = e; op = Rw_txn.Lock m };
          { Rw_txn.entity = e; op = Rw_txn.Unlock } ])
      ents
  in
  (* Random shuffle then stable fix: move each Unlock after its Lock. *)
  let arr = Array.of_list nodes in
  for i = Array.length arr - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let t = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- t
  done;
  let seen = Hashtbl.create 7 in
  let ordered =
    Array.to_list arr
    |> List.concat_map (fun (nd : Rw_txn.node) ->
           match nd.op with
           | Rw_txn.Lock _ ->
               Hashtbl.replace seen nd.entity ();
               [ nd ]
           | Rw_txn.Unlock ->
               if Hashtbl.mem seen nd.entity then [ nd ] else [])
  in
  (* Append missing unlocks. *)
  let have_unlock = Hashtbl.create 7 in
  List.iter
    (fun (nd : Rw_txn.node) ->
      if nd.op = Rw_txn.Unlock then Hashtbl.replace have_unlock nd.entity ())
    ordered;
  let missing =
    List.filter_map
      (fun e ->
        if Hashtbl.mem have_unlock e then None
        else Some { Rw_txn.entity = e; op = Rw_txn.Unlock })
      ents
  in
  match Rw_txn.of_total_order db (ordered @ missing) with
  | Ok t -> t
  | Error _ -> assert false

let rw_2pl_safe_prop =
  QCheck.Test.make ~name:"2PL rw-systems are conflict-serializable" ~count:60
    QCheck.(int_bound 10_000_000)
    (fun seed ->
      let st = Fixtures.rng seed in
      let db = Ddlock_workload.Gentx.random_db ~sites:1 ~entities:3 in
      (* Force 2PL: locks then unlocks. *)
      let mk () =
        let k = 1 + Random.State.int st 3 in
        let ents = Ddlock_workload.Gentx.random_entity_subset st db ~k in
        let locks =
          List.map
            (fun e ->
              let m = if Random.State.bool st then Rw_txn.Read else Rw_txn.Write in
              { Rw_txn.entity = e; op = Rw_txn.Lock m })
            ents
        in
        let unlocks =
          List.map (fun e -> { Rw_txn.entity = e; op = Rw_txn.Unlock }) ents
        in
        match Rw_txn.of_total_order db (locks @ unlocks) with
        | Ok t -> t
        | Error _ -> assert false
      in
      let sys = Rw_system.create [ mk (); mk () ] in
      Result.is_ok (Rw_system.safe sys))

(* E17: how conservative is the exclusive abstraction?  Sound directions
   validated as hard properties; the interesting gap (exclusive-unsafe
   but rw-safe, e.g. read-read "conflicts") is shown by example above. *)
let exclusive_df_implies_rw_df_prop =
  QCheck.Test.make
    ~name:"exclusive-abstraction deadlock-freedom ⇒ rw deadlock-freedom"
    ~count:60
    QCheck.(int_bound 10_000_000)
    (fun seed ->
      let st = Fixtures.rng seed in
      let db = Ddlock_workload.Gentx.random_db ~sites:1 ~entities:3 in
      let mk () = random_rw_txn st db ~k:(1 + Random.State.int st 3) in
      let sys = Rw_system.create [ mk (); mk () ] in
      let excl_df =
        Ddlock_schedule.Explore.deadlock_free (Rw_system.to_exclusive sys)
      in
      QCheck.assume excl_df;
      (* Every rw deadlock state embeds an exclusive one?  Not in general
         — readers reorder differently — but on 2-txn systems a rw
         deadlock needs two incompatible (write-involving) locks, which
         deadlock the exclusive system too. *)
      Rw_system.deadlock_free sys)

(* ------------------------------------------------------------------ *)
(* RW runtime                                                          *)
(* ------------------------------------------------------------------ *)

let catalog_system k =
  let names = "catalog" :: List.init k (fun i -> "row" ^ string_of_int i) in
  let db = Db.one_site_per_entity names in
  let catalog = Db.find_entity_exn db "catalog" in
  let mk i =
    let row = Db.find_entity_exn db ("row" ^ string_of_int i) in
    match
      Rw_txn.of_total_order db
        [
          { Rw_txn.entity = catalog; op = Rw_txn.Lock Rw_txn.Read };
          { Rw_txn.entity = row; op = Rw_txn.Lock Rw_txn.Write };
          { Rw_txn.entity = catalog; op = Rw_txn.Unlock };
          { Rw_txn.entity = row; op = Rw_txn.Unlock };
        ]
    with
    | Ok t -> t
    | Error _ -> assert false
  in
  Rw_system.create (List.init k mk)

let test_runtime_completes () =
  let sys = catalog_system 4 in
  let rng = Fixtures.rng 31 in
  let stats = Rw_runtime.batch rng sys ~runs:50 in
  check int_t "no deadlocks" 0 stats.Rw_runtime.deadlocks;
  check int_t "all serializable" 0 stats.Rw_runtime.non_serializable;
  check bool_t "makespan finite" true (Float.is_finite stats.Rw_runtime.mean_makespan)

let test_runtime_readers_overlap () =
  (* Readers-share speedup must be visible: rw makespan < exclusive. *)
  let sys = catalog_system 8 in
  let rng = Fixtures.rng 32 in
  let rw = Rw_runtime.batch rng sys ~runs:50 in
  let rng = Fixtures.rng 32 in
  let excl =
    Ddlock_sim.Runtime.batch rng (Rw_system.to_exclusive sys) ~runs:50
  in
  check bool_t "rw faster" true
    (rw.Rw_runtime.mean_makespan
    < excl.Ddlock_sim.Runtime.mean_makespan)

let test_runtime_write_deadlock_detected () =
  let db = db2 () in
  let t1 = rw db [ (`W, "a"); (`W, "b"); (`U, "a"); (`U, "b") ] in
  let t2 = rw db [ (`W, "b"); (`W, "a"); (`U, "b"); (`U, "a") ] in
  let sys = Rw_system.create [ t1; t2 ] in
  let rng = Fixtures.rng 33 in
  let saw = ref false in
  for _ = 1 to 200 do
    match (Rw_runtime.run rng sys).Rw_runtime.outcome with
    | Rw_runtime.Deadlock { waits_for; _ } ->
        saw := true;
        check bool_t "waits recorded" true (waits_for <> [])
    | Rw_runtime.Finished _ -> ()
  done;
  check bool_t "runtime deadlock observed" true !saw

let runtime_trace_serializable_prop =
  QCheck.Test.make
    ~name:"rw runtime completed traces are conflict-serializable (2PL)"
    ~count:40
    QCheck.(int_bound 10_000_000)
    (fun seed ->
      let st = Fixtures.rng seed in
      let db = Ddlock_workload.Gentx.random_db ~sites:1 ~entities:3 in
      let mk () =
        let k = 1 + Random.State.int st 3 in
        let ents = Ddlock_workload.Gentx.random_entity_subset st db ~k in
        let locks =
          List.map
            (fun e ->
              let m = if Random.State.bool st then Rw_txn.Read else Rw_txn.Write in
              { Rw_txn.entity = e; op = Rw_txn.Lock m })
            ents
        in
        let unlocks =
          List.map (fun e -> { Rw_txn.entity = e; op = Rw_txn.Unlock }) ents
        in
        match Rw_txn.of_total_order db (locks @ unlocks) with
        | Ok t -> t
        | Error _ -> assert false
      in
      let sys = Rw_system.create [ mk (); mk (); mk () ] in
      let r = Rw_runtime.run st sys in
      match r.Rw_runtime.outcome with
      | Rw_runtime.Finished _ -> Rw_system.is_conflict_serializable sys r.Rw_runtime.trace
      | Rw_runtime.Deadlock _ -> true)

let qtests =
  List.map Fixtures.to_alcotest
    [
      rw_2pl_safe_prop;
      exclusive_df_implies_rw_df_prop;
      runtime_trace_serializable_prop;
    ]

let suite =
  [
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "to_exclusive" `Quick test_to_exclusive;
    Alcotest.test_case "readers share" `Quick test_readers_share;
    Alcotest.test_case "writer excludes" `Quick test_writer_excludes;
    Alcotest.test_case "write-write deadlock" `Quick test_rw_deadlock;
    Alcotest.test_case "readers never deadlock" `Quick
      test_readers_never_deadlock;
    Alcotest.test_case "unsafe rw pair" `Quick test_unsafe_rw;
    Alcotest.test_case "read-only conflictless" `Quick
      test_read_only_conflictless;
    Alcotest.test_case "runtime completes" `Quick test_runtime_completes;
    Alcotest.test_case "runtime readers overlap" `Quick
      test_runtime_readers_overlap;
    Alcotest.test_case "runtime write deadlock" `Quick
      test_runtime_write_deadlock_detected;
  ]
  @ qtests
