(* The analysis daemon: protocol/cache/pool units, an end-to-end
   equivalence check against Analysis.render_full, the robustness
   contract (busy backpressure, deadlines, malformed/oversized/slowloris
   frames, graceful drain), and a concurrent self-chaos battery. *)

open Ddlock
open Ddlock_serve

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int
let string_t = Alcotest.string

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)
(* ------------------------------------------------------------------ *)

let test_protocol_parse () =
  (match Protocol.parse_request "ddlock/1 ping" with
  | Ok Protocol.Ping -> ()
  | _ -> Alcotest.fail "ping");
  (match Protocol.parse_request "ddlock/1 stats" with
  | Ok Protocol.Stats -> ()
  | _ -> Alcotest.fail "stats");
  (match
     Protocol.parse_request
       "ddlock/1 analyze 42 max-states=1000 symmetry deadline-ms=250"
   with
  | Ok
      (Protocol.Analyze
        {
          body_len = 42;
          max_states = Some 1000;
          symmetry = true;
          deadline_ms = Some 250;
        }) ->
      ()
  | _ -> Alcotest.fail "analyze with options");
  (match Protocol.parse_request "ddlock/1 analyze 7" with
  | Ok
      (Protocol.Analyze
        { body_len = 7; max_states = None; symmetry = false; deadline_ms = None })
    ->
      ()
  | _ -> Alcotest.fail "bare analyze");
  let bad l =
    match Protocol.parse_request l with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail ("should reject: " ^ l)
  in
  bad "";
  bad "http/1.1 GET /";
  bad "ddlock/1";
  bad "ddlock/1 analyze";
  bad "ddlock/1 analyze -3";
  bad "ddlock/1 analyze five";
  bad "ddlock/1 analyze 7 max-states=many";
  bad "ddlock/1 analyze 7 frobnicate=1";
  bad "ddlock/1 shutdown";
  bad "ddlock/1 ping extra"

let test_protocol_roundtrip () =
  let hdr =
    Protocol.render_request_header ~max_states:9 ~symmetry:true
      ~deadline_ms:5 ~body_len:3 ()
  in
  (match
     Protocol.parse_request (String.sub hdr 0 (String.length hdr - 1))
   with
  | Ok
      (Protocol.Analyze
        {
          body_len = 3;
          max_states = Some 9;
          symmetry = true;
          deadline_ms = Some 5;
        }) ->
      ()
  | _ -> Alcotest.fail "request round-trip");
  let resp r =
    let line = Protocol.render_response_header r in
    Protocol.parse_response_header (String.sub line 0 (String.length line - 1))
  in
  (match resp (Protocol.Verdict { status = 1; body = "xyz" }) with
  | Ok (Protocol.Head_ok { status = 1; body_len = 3 }) -> ()
  | _ -> Alcotest.fail "ok round-trip");
  (match resp (Protocol.Busy { retry_after_ms = 50 }) with
  | Ok (Protocol.Head_busy { retry_after_ms = 50 }) -> ()
  | _ -> Alcotest.fail "busy round-trip");
  (match resp Protocol.Timeout with
  | Ok Protocol.Head_timeout -> ()
  | _ -> Alcotest.fail "timeout round-trip");
  (match resp (Protocol.Error_line "multi\nline\rmess") with
  | Ok (Protocol.Head_error msg) ->
      check bool_t "sanitized" false (String.contains msg '\n')
  | _ -> Alcotest.fail "error round-trip")

let test_protocol_observability_verbs () =
  (match Protocol.parse_request "ddlock/1 metrics" with
  | Ok Protocol.Metrics -> ()
  | _ -> Alcotest.fail "metrics");
  (match Protocol.parse_request "ddlock/1 flight" with
  | Ok Protocol.Flight -> ()
  | _ -> Alcotest.fail "flight");
  (match Protocol.parse_request "ddlock/1 trace 42" with
  | Ok (Protocol.Trace_of 42) -> ()
  | _ -> Alcotest.fail "trace");
  let bad l =
    match Protocol.parse_request l with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail ("should reject: " ^ l)
  in
  bad "ddlock/1 trace";
  bad "ddlock/1 trace -1";
  bad "ddlock/1 trace 1 2";
  bad "ddlock/1 metrics now";
  bad "ddlock/1 flight x"

let test_header_extras () =
  let line r extras =
    let l = Protocol.render_response_header ~extras r in
    String.sub l 0 (String.length l - 1)
  in
  let ok =
    line (Protocol.Verdict { status = 1; body = "xyz" })
      [ ("req", "17"); ("cache", "hit") ]
  in
  (* Extras ride behind the standard tokens, so a parser that predates
     them still reads the header. *)
  (match Protocol.parse_response_header ok with
  | Ok (Protocol.Head_ok { status = 1; body_len = 3 }) -> ()
  | _ -> Alcotest.fail "ok header with extras still parses");
  check
    Alcotest.(list (pair string_t string_t))
    "extras round-trip"
    [ ("req", "17"); ("cache", "hit") ]
    (Protocol.header_extras ok);
  (match
     Protocol.parse_response_header
       (line (Protocol.Busy { retry_after_ms = 9 }) [ ("req", "3") ])
   with
  | Ok (Protocol.Head_busy { retry_after_ms = 9 }) -> ()
  | _ -> Alcotest.fail "busy with extras");
  (match
     Protocol.parse_response_header (line Protocol.Timeout [ ("req", "4") ])
   with
  | Ok Protocol.Head_timeout -> ()
  | _ -> Alcotest.fail "timeout with extras");
  (* An error message containing '=' must not leak fake extras. *)
  check
    Alcotest.(list (pair string_t string_t))
    "error lines carry no extras" []
    (Protocol.header_extras "error bad option max-states=no")

(* ------------------------------------------------------------------ *)
(* Cache                                                               *)
(* ------------------------------------------------------------------ *)

let test_cache_lru () =
  let c = Cache.create ~capacity:2 in
  Cache.add c "a" 1;
  Cache.add c "b" 2;
  check (Alcotest.option int_t) "hit a" (Some 1) (Cache.find c "a");
  (* a is now most recent; inserting c evicts b. *)
  Cache.add c "c" 3;
  check (Alcotest.option int_t) "b evicted" None (Cache.find c "b");
  check (Alcotest.option int_t) "a kept" (Some 1) (Cache.find c "a");
  check (Alcotest.option int_t) "c kept" (Some 3) (Cache.find c "c");
  check int_t "length" 2 (Cache.length c);
  check int_t "hits" 3 (Cache.hits c);
  check int_t "misses" 1 (Cache.misses c);
  (* Overwrite keeps one entry. *)
  Cache.add c "c" 33;
  check (Alcotest.option int_t) "overwritten" (Some 33) (Cache.find c "c");
  check int_t "length stable" 2 (Cache.length c);
  (* Capacity 0 stores nothing. *)
  let z = Cache.create ~capacity:0 in
  Cache.add z "k" 1;
  check (Alcotest.option int_t) "disabled" None (Cache.find z "k")

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)
(* ------------------------------------------------------------------ *)

let test_pool_runs_and_refuses () =
  let p = Pool.create ~workers:2 ~queue_cap:64 in
  let cells = List.init 20 (fun _ -> Pool.Cell.create ()) in
  List.iteri
    (fun i cell ->
      check bool_t "accepted" true
        (Pool.submit p (fun () -> Pool.Cell.fill cell (i * i))))
    cells;
  List.iteri
    (fun i cell -> check int_t "result" (i * i) (Pool.Cell.wait cell))
    cells;
  Pool.shutdown p;
  check bool_t "refused after shutdown" false (Pool.submit p (fun () -> ()));
  (* A zero-capacity queue refuses immediately. *)
  let p0 = Pool.create ~workers:1 ~queue_cap:0 in
  check bool_t "refused at cap" false (Pool.submit p0 (fun () -> ()));
  Pool.shutdown p0

let test_pool_exception_isolation () =
  let p = Pool.create ~workers:1 ~queue_cap:8 in
  check bool_t "crasher accepted" true (Pool.submit p (fun () -> failwith "boom"));
  let cell = Pool.Cell.create () in
  check bool_t "accepted after crash" true
    (Pool.submit p (fun () -> Pool.Cell.fill cell 7));
  check int_t "worker survived the raising job" 7 (Pool.Cell.wait cell);
  Pool.shutdown p

(* ------------------------------------------------------------------ *)
(* Cancellation hook                                                   *)
(* ------------------------------------------------------------------ *)

let test_cancel_bounds_exploration () =
  let sys = Ddlock_workload.Gentx.dining_philosophers 6 in
  let calls = ref 0 in
  (* A poll that trips after a few budget checks must abort the search
     with Cancelled (not Too_large, not a verdict). *)
  match
    Obs.Cancel.with_poll
      (fun () ->
        incr calls;
        !calls > 5)
      (fun () -> Sched.Explore.deadlock_free sys)
  with
  | (_ : bool) -> Alcotest.fail "expected cancellation"
  | exception Obs.Cancel.Cancelled ->
      check bool_t "poll consulted" true (!calls > 5);
      (* The slot is restored: the same search now completes. *)
      check bool_t "uncancelled search completes" false
        (Sched.Explore.deadlock_free sys)

(* ------------------------------------------------------------------ *)
(* System cache key                                                    *)
(* ------------------------------------------------------------------ *)

let test_system_key_symmetry () =
  let t = Ddlock_workload.Gentx.guard_ring 4 in
  let k2 = Sched.Canon.system_key (Model.System.copies t 2) in
  let k2' = Sched.Canon.system_key (Model.System.copies t 2) in
  check string_t "copies key is deterministic" k2 k2';
  let k3 = Sched.Canon.system_key (Model.System.copies t 3) in
  check bool_t "copy count changes the key" true (k2 <> k3);
  check bool_t "different system, different key" true
    (Sched.Canon.system_key (Ddlock_workload.Gentx.dining_philosophers 4) <> k2)

(* ------------------------------------------------------------------ *)
(* End-to-end server battery                                           *)
(* ------------------------------------------------------------------ *)

let sock_counter = ref 0

let fresh_socket () =
  incr sock_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "ddlock-test-%d-%d.sock" (Unix.getpid ()) !sock_counter)

let source_of sys =
  Model.Parser.to_source (Model.System.db sys)
    (List.mapi
       (fun i t -> (Printf.sprintf "T%d" (i + 1), t))
       (Array.to_list (Model.System.txns sys)))

let with_server ?(tweak = fun c -> c) f =
  let socket = fresh_socket () in
  let cfg = tweak (Server.default_config ~socket_path:socket) in
  let t = Server.start cfg in
  Fun.protect
    ~finally:(fun () ->
      Server.request_stop t;
      Server.wait t)
    (fun () -> f ~socket t)

let expect_verdict = function
  | Ok (Client.Verdict { status; body }) -> (status, body)
  | Ok _ -> Alcotest.fail "expected a verdict reply"
  | Error e -> Alcotest.fail (Format.asprintf "client error: %a" Client.pp_error e)

let test_served_verdicts_equal_local () =
  let systems =
    [
      Model.System.copies (Ddlock_workload.Gentx.guard_ring 4) 2;
      Ddlock_workload.Gentx.dining_philosophers 4;
      Ddlock_workload.Gentx.zipf_system (Fixtures.rng 7) ~sites:2 ~entities:4
        ~txns:3 ~theta:1.0;
    ]
  in
  with_server @@ fun ~socket _t ->
  List.iter
    (fun sys ->
      let source = source_of sys in
      let local_text, local_status, _ = Analysis.render_full sys in
      let status, body = expect_verdict (Client.analyze ~socket source) in
      check int_t "status equals analyze exit" local_status status;
      check string_t "verdict bytes equal local analysis" local_text body;
      (* Again — the hit must serve the identical bytes. *)
      let status', body' = expect_verdict (Client.analyze ~socket source) in
      check int_t "cached status" local_status status';
      check string_t "cached bytes" local_text body')
    systems

let test_cache_collapses_symmetric_copies () =
  with_server @@ fun ~socket _t ->
  let t = Ddlock_workload.Gentx.guard_ring 3 in
  let sys = Model.System.copies t 2 in
  let _ = expect_verdict (Client.analyze ~socket (source_of sys)) in
  (* The same system re-submitted twice more: both must be hits (the
     K-copies workload collapses onto one Canon.system_key). *)
  let _ = expect_verdict (Client.analyze ~socket (source_of sys)) in
  let _ = expect_verdict (Client.analyze ~socket (source_of sys)) in
  match Client.stats ~socket with
  | Ok (Client.Verdict { body; _ }) ->
      (match Obs.Json.validate body with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("stats json invalid: " ^ e));
      let has needle =
        let len = String.length needle in
        let n = String.length body in
        let rec go i =
          i + len <= n && (String.sub body i len = needle || go (i + 1))
        in
        go 0
      in
      check bool_t "two cache hits recorded" true (has {|"cache_hits": 2|});
      check bool_t "one miss recorded" true (has {|"cache_misses": 1|})
  | _ -> Alcotest.fail "stats failed"

let test_busy_backpressure () =
  (* queue_cap = 0: every analysis that misses the cache is refused with
     a busy reply carrying the retry hint — deterministically. *)
  with_server
    ~tweak:(fun c -> { c with Server.queue_cap = 0; busy_retry_ms = 123 })
  @@ fun ~socket _t ->
  match
    Client.analyze ~socket (source_of (Ddlock_workload.Gentx.dining_philosophers 3))
  with
  | Ok (Client.Busy { retry_after_ms }) ->
      check int_t "retry hint" 123 retry_after_ms
  | _ -> Alcotest.fail "expected busy"

let test_deadline_times_out () =
  with_server @@ fun ~socket _t ->
  let source = source_of (Ddlock_workload.Gentx.dining_philosophers 5) in
  (match Client.analyze ~socket ~deadline_ms:0 source with
  | Ok Client.Timeout -> ()
  | Ok _ -> Alcotest.fail "expected timeout"
  | Error e -> Alcotest.fail (Format.asprintf "%a" Client.pp_error e));
  (* The timeout was not cached: a follow-up without a deadline gets the
     real verdict. *)
  let status, _ = expect_verdict (Client.analyze ~socket source) in
  check int_t "verdict after timeout" 1 status

let test_malformed_and_oversized () =
  with_server ~tweak:(fun c -> { c with Server.max_request_bytes = 64 })
  @@ fun ~socket t ->
  (match Client.raw ~socket "gibberish\n" with
  | Ok reply ->
      check bool_t "error reply" true
        (String.length reply >= 5 && String.sub reply 0 5 = "error")
  | Error e -> Alcotest.fail (Format.asprintf "%a" Client.pp_error e));
  (match Client.raw ~socket "ddlock/1 analyze 9999\n" with
  | Ok reply ->
      check bool_t "oversized rejected" true
        (String.length reply >= 5 && String.sub reply 0 5 = "error")
  | Error e -> Alcotest.fail (Format.asprintf "%a" Client.pp_error e));
  (* A header longer than the cap is cut off with an error. *)
  (match Client.raw ~socket (String.make 8000 'x' ^ "\n") with
  | Ok reply ->
      check bool_t "long header rejected" true
        (String.length reply >= 5 && String.sub reply 0 5 = "error")
  | Error e -> Alcotest.fail (Format.asprintf "%a" Client.pp_error e));
  (* Unparseable body: a well-framed request whose payload is junk. *)
  (match Client.analyze ~socket "this is not a system" with
  | Ok (Client.Server_error msg) ->
      check bool_t "parse error surfaced" true
        (String.length msg >= 6 && String.sub msg 0 6 = "parse:")
  | _ -> Alcotest.fail "expected parse error");
  (* The daemon survived all of it. *)
  (match Client.ping ~socket with
  | Ok Client.Pong -> ()
  | _ -> Alcotest.fail "daemon died");
  check bool_t "no verdicts from garbage" true
    (String.length (Server.stats_json t) > 0)

let test_slowloris () =
  with_server ~tweak:(fun c -> { c with Server.idle_timeout_ms = 150 })
  @@ fun ~socket _t ->
  let fd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ())
  @@ fun () ->
  Unix.connect fd (ADDR_UNIX socket);
  (* Half a header, then stall past the idle timeout. *)
  ignore (Unix.write_substring fd "ddlock/1 ana" 0 12);
  Thread.delay 0.5;
  Wire.set_read_timeout fd 5.;
  (match Wire.read_line fd with
  | Ok line ->
      check bool_t "one-line slow-client error" true
        (String.length line >= 5 && String.sub line 0 5 = "error")
  | Error e ->
      Alcotest.fail
        ("expected error line, got "
        ^
        match e with
        | `Eof -> "eof"
        | `Eof_mid -> "eof-mid"
        | `Idle -> "idle"
        | `Slow -> "slow"
        | `Too_long -> "too-long"
        | `Closed -> "closed"));
  (* Daemon alive and still serving. *)
  match Client.ping ~socket with
  | Ok Client.Pong -> ()
  | _ -> Alcotest.fail "daemon died after slowloris"

let test_graceful_drain () =
  let socket = fresh_socket () in
  let t = Server.start (Server.default_config ~socket_path:socket) in
  (match Client.ping ~socket with
  | Ok Client.Pong -> ()
  | _ -> Alcotest.fail "not serving");
  Server.request_stop t;
  Server.wait t;
  check bool_t "socket unlinked" false (Sys.file_exists socket);
  match Client.ping ~socket with
  | Error (Client.Connect _) -> ()
  | _ -> Alcotest.fail "still accepting after drain"

let test_double_bind_refused () =
  with_server @@ fun ~socket _t ->
  match Server.start (Server.default_config ~socket_path:socket) with
  | (_ : Server.t) -> Alcotest.fail "second daemon bound the same socket"
  | exception Failure msg ->
      check bool_t "one-line reason" true (not (String.contains msg '\n'))

(* The battery: concurrent well-formed, malformed, burst and slow
   clients against one daemon.  Every request must be answered, verdicts
   must match the local analysis, and the daemon must stay alive with
   bounded cache state throughout. *)
let test_chaos_battery () =
  with_server
    ~tweak:(fun c ->
      { c with Server.workers = 2; queue_cap = 4; cache_cap = 8;
               idle_timeout_ms = 300 })
  @@ fun ~socket t ->
  let expected =
    List.map
      (fun sys ->
        let text, status, _ = Analysis.render_full sys in
        (source_of sys, (status, text)))
      [
        Model.System.copies (Ddlock_workload.Gentx.guard_ring 3) 2;
        Ddlock_workload.Gentx.dining_philosophers 3;
        Ddlock_workload.Gentx.zipf_system (Fixtures.rng 11) ~sites:2
          ~entities:3 ~txns:2 ~theta:0.8;
      ]
  in
  let n_sources = List.length expected in
  let failures = Mutex.create () in
  let failed = ref [] in
  let fail_with msg =
    Mutex.lock failures;
    failed := msg :: !failed;
    Mutex.unlock failures
  in
  let answered = Atomic.make 0 in
  let busy_seen = Atomic.make 0 in
  let client tid =
    for i = 0 to 11 do
      match (tid + i) mod 4 with
      | 0 | 1 -> (
          (* Well-formed analysis: the reply must be the exact local
             verdict (or an honest busy under load). *)
          let source, (status, text) = List.nth expected (i mod n_sources) in
          match Client.analyze ~socket source with
          | Ok (Client.Verdict { status = s; body }) ->
              Atomic.incr answered;
              if s <> status || body <> text then
                fail_with
                  (Printf.sprintf "thread %d: verdict mismatch (i=%d)" tid i)
          | Ok (Client.Busy _) ->
              Atomic.incr answered;
              Atomic.incr busy_seen
          | Ok _ -> fail_with (Printf.sprintf "thread %d: bad reply kind" tid)
          | Error e ->
              fail_with
                (Format.asprintf "thread %d: client error: %a" tid
                   Client.pp_error e))
      | 2 -> (
          (* Malformed frame: one-line error, never a hang. *)
          match Client.raw ~socket "total nonsense\n" with
          | Ok reply ->
              Atomic.incr answered;
              if not (String.length reply >= 5 && String.sub reply 0 5 = "error")
              then fail_with (Printf.sprintf "thread %d: no error line" tid)
          | Error e ->
              fail_with
                (Format.asprintf "thread %d: raw error: %a" tid Client.pp_error
                   e))
      | _ -> (
          (* Burst liveness probes. *)
          match Client.ping ~socket with
          | Ok Client.Pong -> Atomic.incr answered
          | _ -> fail_with (Printf.sprintf "thread %d: ping failed" tid))
    done
  in
  let slowloris () =
    (* Two stalled half-frames riding along the battery. *)
    for _ = 1 to 2 do
      let fd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
      (try
         Unix.connect fd (ADDR_UNIX socket);
         ignore (Unix.write_substring fd "ddlock/1 anal" 0 13);
         Thread.delay 0.6
       with _ -> ());
      (try Unix.close fd with _ -> ())
    done
  in
  let threads =
    List.init 6 (fun tid -> Thread.create client tid)
    @ [ Thread.create slowloris () ]
  in
  List.iter Thread.join threads;
  (match !failed with
  | [] -> ()
  | msgs -> Alcotest.fail (String.concat "; " msgs));
  check int_t "every request answered" 72 (Atomic.get answered);
  (* The daemon is still alive and its cache stayed bounded. *)
  (match Client.ping ~socket with
  | Ok Client.Pong -> ()
  | _ -> Alcotest.fail "daemon died during the battery");
  (match Obs.Json.validate (Server.stats_json t) with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("stats json invalid: " ^ e));
  ignore (Atomic.get busy_seen)

(* ------------------------------------------------------------------ *)
(* Request-scoped observability                                        *)
(* ------------------------------------------------------------------ *)

let contains hay needle =
  let len = String.length needle in
  let n = String.length hay in
  let rec go i = i + len <= n && (String.sub hay i len = needle || go (i + 1)) in
  go 0

let count_occurrences hay needle =
  let len = String.length needle in
  let n = String.length hay in
  let rec go i acc =
    if i + len > n then acc
    else if String.sub hay i len = needle then go (i + len) (acc + 1)
    else go (i + 1) acc
  in
  if len = 0 then 0 else go 0 0

(* The recorder is written after the reply (latency must cover the whole
   request), so a client that reacts instantly can out-race it: re-fetch
   until the predicate holds. *)
let rec eventually ?(tries = 40) fetch pred =
  let v = fetch () in
  if pred v || tries = 0 then v
  else begin
    Thread.delay 0.025;
    eventually ~tries:(tries - 1) fetch pred
  end

(* The servers under test live in-process, so tracing rides the global
   obs switch.  Leave it exactly as found (DDLOCK_OBS=1 runs arrive
   with it already on). *)
let with_tracing f =
  let was_on = Obs.Control.is_on () in
  Obs.Metrics.reset ();
  Obs.Trace.clear ();
  Obs.Control.on ();
  Fun.protect
    ~finally:(fun () ->
      if not was_on then Obs.Control.off ();
      Obs.Metrics.reset ();
      Obs.Trace.clear ())
    f

(* Well-formedness of one request's span tree: exactly one
   [serve.request] root, every event tagged with the request id, and —
   unless [relaxed] (a timed-out request's abandoned worker span can
   outlive the root) — every child interval nested inside the root's. *)
let assert_span_tree ?(relaxed = false) ~req evs =
  (match List.filter (fun e -> e.Obs.Trace.name = "serve.request") evs with
  | [ root ] ->
      let lo = root.Obs.Trace.ts_ns in
      let hi = root.Obs.Trace.ts_ns + root.Obs.Trace.dur_ns in
      List.iter
        (fun e ->
          check int_t "event tagged with its request id" req e.Obs.Trace.req;
          if e.Obs.Trace.name <> "serve.request" then begin
            check bool_t "child starts inside the root" true
              (e.Obs.Trace.ts_ns >= lo);
            if not relaxed then
              check bool_t
                (Printf.sprintf "%s ends inside the root" e.Obs.Trace.name)
                true
                (e.Obs.Trace.ts_ns + max 0 e.Obs.Trace.dur_ns <= hi)
          end)
        evs
  | roots ->
      Alcotest.fail
        (Printf.sprintf "expected exactly one serve.request root, got %d"
           (List.length roots)));
  match Obs.Json.validate (Obs.Trace.chrome_json evs) with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("chrome trace json invalid: " ^ e)

let test_request_meta () =
  with_server @@ fun ~socket _t ->
  let source = source_of (Ddlock_workload.Gentx.dining_philosophers 3) in
  let first_id =
    match Client.analyze_ex ~socket source with
    | Ok (Client.Verdict _, meta) ->
        check (Alcotest.option bool_t) "first request is a miss" (Some false)
          meta.Client.cached;
        (match meta.Client.req_id with
        | Some id ->
            check bool_t "request ids start positive" true (id > 0);
            id
        | None -> Alcotest.fail "verdict carried no request id")
    | Ok _ -> Alcotest.fail "expected a verdict"
    | Error e -> Alcotest.fail (Format.asprintf "%a" Client.pp_error e)
  in
  match Client.analyze_ex ~socket source with
  | Ok (Client.Verdict _, meta) ->
      check (Alcotest.option bool_t) "second request is a hit" (Some true)
        meta.Client.cached;
      (match meta.Client.req_id with
      | Some id -> check bool_t "request ids increase" true (id > first_id)
      | None -> Alcotest.fail "cached verdict carried no request id")
  | _ -> Alcotest.fail "expected a cached verdict"

let test_metrics_exposition () =
  (* The latency histogram lives in the process-global registry; zero it
     so the counts below are this test's alone. *)
  Obs.Metrics.reset ();
  with_server @@ fun ~socket _t ->
  let source = source_of (Ddlock_workload.Gentx.dining_philosophers 3) in
  let _ = expect_verdict (Client.analyze ~socket source) in
  let _ = expect_verdict (Client.analyze ~socket source) in
  (match Client.ping ~socket with Ok Client.Pong -> () | _ -> Alcotest.fail "ping");
  match
    eventually
      (fun () -> Client.metrics ~socket)
      (function
        | Ok text -> contains text "daemon_request_ns_count 3"
        | Error _ -> true)
  with
  | Ok text ->
      List.iter
        (fun needle ->
          check bool_t ("exposition has " ^ needle) true (contains text needle))
        [
          "# TYPE daemon_requests_total counter";
          "# TYPE daemon_request_ns histogram";
          "# TYPE daemon_workers gauge";
          "daemon_verdicts_total 2";
          "daemon_cache_hits_total 1";
          "daemon_cache_misses_total 1";
          "daemon_request_ns_bucket{le=\"+Inf\"}";
          "daemon_request_ns_sum";
          "daemon_request_ns_count";
        ];
      (* Ops metrics are always on: the obs switch is off here, yet the
         latency histogram still counted every request. *)
      check bool_t "latency histogram populated while obs is off" true
        (contains text "daemon_request_ns_count 3")
  | Error e -> Alcotest.fail (Format.asprintf "%a" Client.pp_error e)

let test_flight_recorder_bounded () =
  with_server ~tweak:(fun c -> { c with Server.flight_cap = 4 })
  @@ fun ~socket _t ->
  let source = source_of (Ddlock_workload.Gentx.dining_philosophers 3) in
  for _ = 1 to 10 do
    ignore (expect_verdict (Client.analyze ~socket source))
  done;
  (* Each flight fetch is itself a request and joins the ring after its
     reply, so [pushed] can only be read as a lower bound. *)
  let pushed_of body =
    try Scanf.sscanf body "{\"pushed\": %d" (fun n -> n) with _ -> -1
  in
  match
    eventually
      (fun () -> Client.flight ~socket)
      (function Ok body -> pushed_of body >= 10 | Error _ -> true)
  with
  | Ok body ->
      (match Obs.Json.validate body with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("flight json invalid: " ^ e));
      check bool_t "pushed counts every request" true (pushed_of body >= 10);
      check bool_t "capacity reported" true (contains body {|"capacity": 4|});
      (* Boundedness is the contract; entry order is completion order,
         which concurrency may permute. *)
      check int_t "ring keeps at most flight_cap entries" 4
        (count_occurrences body {|"id":|})
  | Error e -> Alcotest.fail (Format.asprintf "%a" Client.pp_error e)

let test_trace_span_tree () =
  with_tracing @@ fun () ->
  with_server @@ fun ~socket t ->
  let source = source_of (Ddlock_workload.Gentx.dining_philosophers 4) in
  match Client.analyze_ex ~socket source with
  | Ok (Client.Verdict _, { Client.req_id = Some id; _ }) ->
      (match eventually (fun () -> Server.trace_events t id) Option.is_some with
      | Some evs ->
          assert_span_tree ~req:id evs;
          let names = List.map (fun e -> e.Obs.Trace.name) evs in
          List.iter
            (fun phase ->
              check bool_t (phase ^ " span present") true (List.mem phase names))
            [
              "serve.request"; "serve.parse"; "serve.cache"; "serve.wait";
              "serve.analysis";
            ]
      | None -> Alcotest.fail "trace_events lost the request");
      (* The same tree over the wire. *)
      (match Client.trace ~socket id with
      | Ok json ->
          (match Obs.Json.validate json with
          | Ok () -> ()
          | Error e -> Alcotest.fail ("trace json invalid: " ^ e));
          check bool_t "chrome trace envelope" true
            (contains json {|"traceEvents"|});
          check bool_t "events tagged with the request id" true
            (contains json (Printf.sprintf {|"req":"%d"|} id))
      | Error e -> Alcotest.fail (Format.asprintf "%a" Client.pp_error e));
      (* Unknown ids are refused without killing the daemon. *)
      (match Client.trace ~socket 424242 with
      | Error (Client.Refused _) -> ()
      | _ -> Alcotest.fail "unknown trace id should be refused");
      (match Client.ping ~socket with
      | Ok Client.Pong -> ()
      | _ -> Alcotest.fail "daemon died after trace requests")
  | _ -> Alcotest.fail "expected a verdict with a request id"

(* The acceptance battery: >= 100 concurrent mixed requests against a
   live traced daemon, then retrieve one chosen slow request's complete
   span tree through the flight and trace verbs. *)
let test_traced_battery () =
  with_tracing @@ fun () ->
  with_server ~tweak:(fun c -> { c with Server.workers = 2; cache_cap = 16 })
  @@ fun ~socket t ->
  let sources =
    List.map source_of
      [
        Model.System.copies (Ddlock_workload.Gentx.guard_ring 3) 2;
        Ddlock_workload.Gentx.dining_philosophers 3;
        Ddlock_workload.Gentx.zipf_system (Fixtures.rng 23) ~sites:2
          ~entities:3 ~txns:2 ~theta:0.8;
      ]
  in
  let n_sources = List.length sources in
  let answered = Atomic.make 0 in
  let failures = Mutex.create () in
  let failed = ref [] in
  let fail_with msg =
    Mutex.lock failures;
    failed := msg :: !failed;
    Mutex.unlock failures
  in
  let client tid =
    for i = 0 to 12 do
      match (tid + i) mod 3 with
      | 0 | 1 -> (
          match
            Client.analyze_ex ~socket (List.nth sources (i mod n_sources))
          with
          | Ok ((Client.Verdict _ | Client.Busy _ | Client.Timeout), meta) ->
              Atomic.incr answered;
              if meta.Client.req_id = None then
                fail_with (Printf.sprintf "thread %d: reply without id" tid)
          | Ok _ -> fail_with (Printf.sprintf "thread %d: bad reply kind" tid)
          | Error e ->
              fail_with
                (Format.asprintf "thread %d: client error: %a" tid
                   Client.pp_error e))
      | _ -> (
          match Client.ping ~socket with
          | Ok Client.Pong -> Atomic.incr answered
          | _ -> fail_with (Printf.sprintf "thread %d: ping failed" tid))
    done
  in
  let threads = List.init 8 (fun tid -> Thread.create client tid) in
  List.iter Thread.join threads;
  (match !failed with
  | [] -> ()
  | msgs -> Alcotest.fail (String.concat "; " msgs));
  check int_t "every concurrent request answered" 104 (Atomic.get answered);
  (* The chosen slow request: a deliberate zero-deadline timeout — slow
     requests are pinned, so the burst above cannot evict its tree. *)
  let slow_id =
    match
      Client.analyze_ex ~socket ~deadline_ms:0
        (source_of (Ddlock_workload.Gentx.dining_philosophers 6))
    with
    | Ok (Client.Timeout, { Client.req_id = Some id; _ }) -> id
    | Ok _ -> Alcotest.fail "expected a timeout"
    | Error e -> Alcotest.fail (Format.asprintf "%a" Client.pp_error e)
  in
  check bool_t "the slow request came after the battery" true (slow_id > 104);
  (* Flight verb: the dump validates and still holds the slow request. *)
  (match
     eventually
       (fun () -> Client.flight ~socket)
       (function
         | Ok body -> contains body (Printf.sprintf {|"id": %d|} slow_id)
         | Error _ -> true)
   with
  | Ok body ->
      (match Obs.Json.validate body with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("flight json invalid: " ^ e));
      check bool_t "slow request in the flight ring" true
        (contains body (Printf.sprintf {|"id": %d|} slow_id));
      check bool_t "timeout outcome recorded" true
        (contains body {|"outcome": "timeout"|})
  | Error e -> Alcotest.fail (Format.asprintf "%a" Client.pp_error e));
  (* Trace verb: the complete span tree, well-formed and tagged. *)
  (match
     eventually (fun () -> Server.trace_events t slow_id) Option.is_some
   with
  | Some evs ->
      assert_span_tree ~relaxed:true ~req:slow_id evs;
      let names = List.map (fun e -> e.Obs.Trace.name) evs in
      List.iter
        (fun phase ->
          check bool_t (phase ^ " span retained") true (List.mem phase names))
        [ "serve.request"; "serve.parse"; "serve.cache"; "serve.wait" ]
  | None -> Alcotest.fail "slow request's span tree was evicted");
  (match Client.trace ~socket slow_id with
  | Ok json ->
      (match Obs.Json.validate json with
      | Ok () -> ()
      | Error e -> Alcotest.fail ("trace json invalid: " ^ e));
      check bool_t "slow trace tagged" true
        (contains json (Printf.sprintf {|"req":"%d"|} slow_id))
  | Error e -> Alcotest.fail (Format.asprintf "%a" Client.pp_error e));
  (* No cross-request leakage: fresh sequential requests own disjoint,
     individually well-formed trees. *)
  List.iter
    (fun source ->
      match Client.analyze_ex ~socket source with
      | Ok (Client.Verdict _, { Client.req_id = Some id; _ }) -> (
          match
            eventually (fun () -> Server.trace_events t id) Option.is_some
          with
          | Some evs -> assert_span_tree ~req:id evs
          | None -> Alcotest.fail "fresh request's tree missing")
      | _ -> Alcotest.fail "expected a verdict with a request id")
    sources

let suite =
  [
    Alcotest.test_case "protocol parse" `Quick test_protocol_parse;
    Alcotest.test_case "protocol round-trip" `Quick test_protocol_roundtrip;
    Alcotest.test_case "cache lru" `Quick test_cache_lru;
    Alcotest.test_case "pool runs and refuses" `Quick
      test_pool_runs_and_refuses;
    Alcotest.test_case "pool exception isolation" `Quick
      test_pool_exception_isolation;
    Alcotest.test_case "cancel bounds exploration" `Quick
      test_cancel_bounds_exploration;
    Alcotest.test_case "system key symmetry" `Quick test_system_key_symmetry;
    Alcotest.test_case "served = local verdicts" `Quick
      test_served_verdicts_equal_local;
    Alcotest.test_case "cache collapses symmetric copies" `Quick
      test_cache_collapses_symmetric_copies;
    Alcotest.test_case "busy backpressure" `Quick test_busy_backpressure;
    Alcotest.test_case "deadline times out" `Quick test_deadline_times_out;
    Alcotest.test_case "malformed and oversized" `Quick
      test_malformed_and_oversized;
    Alcotest.test_case "slowloris" `Quick test_slowloris;
    Alcotest.test_case "graceful drain" `Quick test_graceful_drain;
    Alcotest.test_case "double bind refused" `Quick test_double_bind_refused;
    Alcotest.test_case "chaos battery" `Quick test_chaos_battery;
    Alcotest.test_case "observability verbs parse" `Quick
      test_protocol_observability_verbs;
    Alcotest.test_case "header extras" `Quick test_header_extras;
    Alcotest.test_case "request meta" `Quick test_request_meta;
    Alcotest.test_case "metrics exposition" `Quick test_metrics_exposition;
    Alcotest.test_case "flight recorder bounded" `Quick
      test_flight_recorder_bounded;
    Alcotest.test_case "trace span tree" `Quick test_trace_span_tree;
    Alcotest.test_case "traced battery" `Quick test_traced_battery;
  ]
