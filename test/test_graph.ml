open Ddlock_graph

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* ------------------------------------------------------------------ *)
(* Bitset                                                              *)
(* ------------------------------------------------------------------ *)

let test_bitset_basic () =
  let s = Bitset.create 100 in
  check bool_t "empty" true (Bitset.is_empty s);
  Bitset.set s 0;
  Bitset.set s 63;
  Bitset.set s 64;
  Bitset.set s 99;
  check int_t "cardinal" 4 (Bitset.cardinal s);
  check bool_t "mem 63" true (Bitset.mem s 63);
  check bool_t "mem 64" true (Bitset.mem s 64);
  check bool_t "not mem 1" false (Bitset.mem s 1);
  Bitset.clear s 63;
  check bool_t "cleared" false (Bitset.mem s 63);
  check (Alcotest.list int_t) "to_list" [ 0; 64; 99 ] (Bitset.to_list s)

let test_bitset_bounds () =
  let s = Bitset.create 10 in
  Alcotest.check_raises "set out of range"
    (Invalid_argument "Bitset: index out of range") (fun () ->
      Bitset.set s 10);
  Alcotest.check_raises "negative" (Invalid_argument "Bitset: index out of range")
    (fun () -> ignore (Bitset.mem s (-1)))

let test_bitset_algebra () =
  let a = Bitset.of_list 20 [ 1; 3; 5; 7 ] in
  let b = Bitset.of_list 20 [ 3; 4; 5; 18 ] in
  check (Alcotest.list int_t) "union" [ 1; 3; 4; 5; 7; 18 ]
    (Bitset.to_list (Bitset.union a b));
  check (Alcotest.list int_t) "inter" [ 3; 5 ] (Bitset.to_list (Bitset.inter a b));
  check (Alcotest.list int_t) "diff" [ 1; 7 ] (Bitset.to_list (Bitset.diff a b));
  check bool_t "disjoint no" false (Bitset.disjoint a b);
  check bool_t "disjoint yes" true
    (Bitset.disjoint a (Bitset.of_list 20 [ 0; 2 ]));
  check bool_t "subset" true (Bitset.subset (Bitset.of_list 20 [ 3; 5 ]) a);
  check bool_t "not subset" false (Bitset.subset b a)

let bitset_ops_prop =
  QCheck.Test.make ~name:"bitset algebra matches list model" ~count:200
    QCheck.(pair (small_list (int_bound 63)) (small_list (int_bound 63)))
    (fun (l1, l2) ->
      let a = Bitset.of_list 64 l1 and b = Bitset.of_list 64 l2 in
      let s1 = List.sort_uniq compare l1 and s2 = List.sort_uniq compare l2 in
      let model_union = List.sort_uniq compare (s1 @ s2) in
      let model_inter = List.filter (fun x -> List.mem x s2) s1 in
      let model_diff = List.filter (fun x -> not (List.mem x s2)) s1 in
      Bitset.to_list (Bitset.union a b) = model_union
      && Bitset.to_list (Bitset.inter a b) = model_inter
      && Bitset.to_list (Bitset.diff a b) = model_diff
      && Bitset.disjoint a b = (model_inter = [])
      && Bitset.subset a b = List.for_all (fun x -> List.mem x s2) s1
      && Bitset.cardinal a = List.length s1)

(* ------------------------------------------------------------------ *)
(* Digraph                                                             *)
(* ------------------------------------------------------------------ *)

let test_digraph_basic () =
  let g = Digraph.create 4 [ (0, 1); (1, 2); (0, 2); (0, 1) ] in
  check int_t "nodes" 4 (Digraph.node_count g);
  check int_t "edges deduped" 3 (Digraph.edge_count g);
  check bool_t "mem" true (Digraph.mem_edge g 0 1);
  check bool_t "not mem" false (Digraph.mem_edge g 2 0);
  check (Alcotest.list (Alcotest.pair int_t int_t)) "edges"
    [ (0, 1); (0, 2); (1, 2) ] (Digraph.edges g);
  let tr = Digraph.transpose g in
  check bool_t "transpose" true (Digraph.mem_edge tr 1 0)

let test_digraph_reachable () =
  let g = Digraph.create 5 [ (0, 1); (1, 2); (3, 4) ] in
  check (Alcotest.list int_t) "reach 0" [ 0; 1; 2 ]
    (Bitset.to_list (Digraph.reachable g 0));
  check (Alcotest.list int_t) "reach 3" [ 3; 4 ]
    (Bitset.to_list (Digraph.reachable g 3))

let test_digraph_induced () =
  let g = Digraph.create 4 [ (0, 1); (1, 2); (2, 3) ] in
  let sub, renum = Digraph.induced g (fun v -> v <> 1) in
  check int_t "sub nodes" 3 (Digraph.node_count sub);
  check int_t "sub edges" 1 (Digraph.edge_count sub);
  check int_t "renum dropped" (-1) renum.(1);
  check bool_t "kept edge" true (Digraph.mem_edge sub renum.(2) renum.(3))

(* Random DAG: arcs only forward along a random permutation. *)
let random_dag_gen =
  QCheck.Gen.(
    sized_size (int_range 1 8) (fun n st ->
        let edges = ref [] in
        for u = 0 to n - 1 do
          for v = u + 1 to n - 1 do
            if Random.State.float st 1.0 < 0.4 then edges := (u, v) :: !edges
          done
        done;
        (n, !edges)))

let random_dag_arb =
  QCheck.make random_dag_gen ~print:(fun (n, es) ->
      Printf.sprintf "n=%d edges=[%s]" n
        (String.concat ";" (List.map (fun (u, v) -> Printf.sprintf "%d->%d" u v) es)))

let topo_sort_prop =
  QCheck.Test.make ~name:"topo sort is a linear extension" ~count:200
    random_dag_arb (fun (n, es) ->
      let g = Digraph.create n es in
      match Topo.sort g with
      | None -> false
      | Some o -> Topo.is_linear_extension g o)

let count_extensions_prop =
  QCheck.Test.make ~name:"count_linear_extensions = |enumeration|" ~count:50
    random_dag_arb (fun (n, es) ->
      let g = Digraph.create n es in
      Topo.count_linear_extensions g = Seq.length (Topo.linear_extensions g))

let extensions_all_valid_prop =
  QCheck.Test.make ~name:"every enumerated extension is valid & distinct"
    ~count:50 random_dag_arb (fun (n, es) ->
      let g = Digraph.create n es in
      let exts = List.of_seq (Topo.linear_extensions g) in
      List.for_all (Topo.is_linear_extension g) exts
      && List.length (List.sort_uniq compare exts) = List.length exts)

let test_cycle_detection () =
  let g = Digraph.create 4 [ (0, 1); (1, 2); (2, 0); (2, 3) ] in
  check bool_t "cyclic" false (Topo.is_acyclic g);
  (match Topo.find_cycle g with
  | None -> Alcotest.fail "expected a cycle"
  | Some c ->
      check bool_t "cycle arcs exist" true
        (let arr = Array.of_list c in
         let k = Array.length arr in
         let ok = ref (k > 0) in
         for i = 0 to k - 1 do
           if not (Digraph.mem_edge g arr.(i) arr.((i + 1) mod k)) then
             ok := false
         done;
         !ok));
  check bool_t "acyclic" true (Topo.is_acyclic (Digraph.create 3 [ (0, 1); (1, 2) ]))

let find_cycle_valid_prop =
  QCheck.Test.make ~name:"find_cycle returns a real cycle or None on DAGs"
    ~count:200
    QCheck.(pair small_nat (small_list (pair (int_bound 7) (int_bound 7))))
    (fun (n0, es) ->
      let n = 8 + (n0 mod 2) in
      let g = Digraph.create n es in
      match Topo.find_cycle g with
      | None -> Topo.is_acyclic g
      | Some c ->
          let arr = Array.of_list c in
          let k = Array.length arr in
          k > 0
          && Array.for_all Fun.id
               (Array.init k (fun i -> Digraph.mem_edge g arr.(i) arr.((i + 1) mod k))))

(* ------------------------------------------------------------------ *)
(* Closure                                                             *)
(* ------------------------------------------------------------------ *)

let brute_closure n es =
  (* Floyd–Warshall on a boolean matrix. *)
  let m = Array.make_matrix n n false in
  List.iter (fun (u, v) -> m.(u).(v) <- true) es;
  for k = 0 to n - 1 do
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if m.(i).(k) && m.(k).(j) then m.(i).(j) <- true
      done
    done
  done;
  m

let closure_matches_brute_prop =
  QCheck.Test.make ~name:"closure = Floyd-Warshall (incl. cyclic)" ~count:200
    QCheck.(small_list (pair (int_bound 6) (int_bound 6)))
    (fun es ->
      let n = 7 in
      let g = Digraph.create n es in
      let c = Closure.closure g in
      let m = brute_closure n es in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if Closure.reaches c i j <> m.(i).(j) then ok := false
        done
      done;
      !ok)

let reduction_preserves_closure_prop =
  QCheck.Test.make ~name:"transitive reduction preserves reachability"
    ~count:100 random_dag_arb (fun (n, es) ->
      let g = Digraph.create n es in
      let r = Closure.reduction g in
      let cg = Closure.closure g and cr = Closure.closure r in
      let ok = ref (Digraph.edge_count r <= Digraph.edge_count g) in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if Closure.reaches cg i j <> Closure.reaches cr i j then ok := false
        done
      done;
      !ok)

let test_reduction_hasse () =
  (* Chain with a redundant shortcut: reduction drops it. *)
  let g = Digraph.create 3 [ (0, 1); (1, 2); (0, 2) ] in
  let r = Closure.reduction g in
  check (Alcotest.list (Alcotest.pair int_t int_t)) "hasse"
    [ (0, 1); (1, 2) ] (Digraph.edges r)

let test_ancestors () =
  let g = Digraph.create 4 [ (0, 1); (1, 2); (3, 2) ] in
  let c = Closure.closure g in
  check (Alcotest.list int_t) "ancestors of 2" [ 0; 1; 3 ]
    (Bitset.to_list (Closure.ancestors c 4 2))

(* ------------------------------------------------------------------ *)
(* SCC and cycles                                                      *)
(* ------------------------------------------------------------------ *)

let test_scc () =
  let g = Digraph.create 6 [ (0, 1); (1, 2); (2, 0); (3, 4); (4, 3); (2, 3) ] in
  let comps = List.sort compare (Cycles.scc g) in
  check
    (Alcotest.list (Alcotest.list int_t))
    "sccs" [ [ 0; 1; 2 ]; [ 3; 4 ]; [ 5 ] ] comps

let test_johnson_known () =
  (* Two triangles sharing node 0 plus a self loop. *)
  let g =
    Digraph.create 5
      [ (0, 1); (1, 2); (2, 0); (0, 3); (3, 4); (4, 0); (1, 1) ]
  in
  check int_t "count" 3 (Cycles.count_simple_cycles g);
  let cycles = List.of_seq (Cycles.simple_cycles g) in
  check bool_t "self loop found" true (List.mem [ 1 ] cycles);
  check bool_t "triangle 1" true (List.mem [ 0; 1; 2 ] cycles);
  check bool_t "triangle 2" true (List.mem [ 0; 3; 4 ] cycles)

let brute_cycle_count n es =
  (* Count simple directed cycles by DFS from each root, visiting only
     nodes >= root. *)
  let g = Digraph.create n es in
  let count = ref 0 in
  let rec dfs root visited u =
    Array.iter
      (fun v ->
        if v = root then incr count
        else if v > root && not (List.mem v visited) then
          dfs root (v :: visited) v)
      (Digraph.succ g u)
  in
  for root = 0 to n - 1 do
    dfs root [ root ] root
  done;
  !count

let johnson_count_prop =
  QCheck.Test.make ~name:"Johnson count = brute-force count" ~count:100
    QCheck.(small_list (pair (int_bound 5) (int_bound 5)))
    (fun es ->
      let n = 6 in
      let g = Digraph.create n es in
      Cycles.count_simple_cycles g = brute_cycle_count n (Digraph.edges g))

let test_ungraph_cycles () =
  (* K4 has 4 triangles and 3 quadrilaterals = 7 undirected cycles. *)
  let k4 =
    Ungraph.create 4 [ (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3) ]
  in
  check int_t "K4 undirected cycles" 7 (Seq.length (Ungraph.cycles k4));
  check int_t "K4 directed cycles" 14 (Seq.length (Ungraph.directed_cycles k4));
  let tri = Ungraph.create 3 [ (0, 1); (1, 2); (0, 2) ] in
  check int_t "triangle" 1 (Seq.length (Ungraph.cycles tri));
  let path = Ungraph.create 3 [ (0, 1); (1, 2) ] in
  check int_t "path has none" 0 (Seq.length (Ungraph.cycles path))

let test_ungraph_components () =
  let g = Ungraph.create 5 [ (0, 1); (2, 3) ] in
  check
    (Alcotest.list (Alcotest.list int_t))
    "components" [ [ 0; 1 ]; [ 2; 3 ]; [ 4 ] ] (Ungraph.components g)

let test_digraph_add_edges () =
  let g = Digraph.create 3 [ (0, 1) ] in
  let g' = Digraph.add_edges g [ (1, 2); (0, 1) ] in
  check int_t "2 edges" 2 (Digraph.edge_count g');
  check bool_t "old kept" true (Digraph.mem_edge g' 0 1);
  check bool_t "new added" true (Digraph.mem_edge g' 1 2);
  (* original untouched *)
  check int_t "orig" 1 (Digraph.edge_count g)

let test_reachable_from_set () =
  let g = Digraph.create 6 [ (0, 1); (2, 3); (4, 5) ] in
  let r = Digraph.reachable_from_set g [ 0; 2 ] in
  check (Alcotest.list int_t) "union" [ 0; 1; 2; 3 ] (Bitset.to_list r)

let test_minimal_maximal () =
  let g = Digraph.create 4 [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  check (Alcotest.list int_t) "minimal" [ 0 ] (Topo.minimal g);
  check (Alcotest.list int_t) "maximal" [ 3 ] (Topo.maximal g)

(* Undirected cycles vs brute force: count directed simple cycles of
   length >= 3 in the symmetric digraph, halve. *)
let ungraph_cycles_brute_prop =
  QCheck.Test.make ~name:"undirected cycle count = brute force" ~count:80
    QCheck.(small_list (pair (int_bound 5) (int_bound 5)))
    (fun raw ->
      let es =
        List.sort_uniq compare
          (List.filter_map
             (fun (u, v) -> if u <> v then Some (min u v, max u v) else None)
             raw)
      in
      let g = Ungraph.create 6 es in
      let sym = List.concat_map (fun (u, v) -> [ (u, v); (v, u) ]) es in
      let brute =
        (* DFS rooted at smallest node of each cycle, nodes >= root, length >= 3. *)
        let dg = Digraph.create 6 sym in
        let count = ref 0 in
        let rec dfs root visited u len =
          Array.iter
            (fun v ->
              if v = root && len >= 3 then incr count
              else if v > root && not (List.mem v visited) then
                dfs root (v :: visited) v (len + 1))
            (Digraph.succ dg u)
        in
        for root = 0 to 5 do
          dfs root [ root ] root 1
        done;
        !count / 2
      in
      Seq.length (Ungraph.cycles g) = brute
      && Seq.length (Ungraph.directed_cycles g) = 2 * brute)

let closure_graph_prop =
  QCheck.Test.make ~name:"closure_graph edges = reachability pairs" ~count:100
    random_dag_arb (fun (n, es) ->
      let g = Digraph.create n es in
      let cg = Closure.closure_graph g in
      let c = Closure.closure g in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if Digraph.mem_edge cg u v <> Closure.reaches c u v then ok := false
        done
      done;
      !ok)

let qtests =
  List.map Fixtures.to_alcotest
    [
      bitset_ops_prop;
      topo_sort_prop;
      count_extensions_prop;
      extensions_all_valid_prop;
      find_cycle_valid_prop;
      closure_matches_brute_prop;
      reduction_preserves_closure_prop;
      johnson_count_prop;
      ungraph_cycles_brute_prop;
      closure_graph_prop;
    ]

let suite =
  [
    Alcotest.test_case "bitset basic" `Quick test_bitset_basic;
    Alcotest.test_case "bitset bounds" `Quick test_bitset_bounds;
    Alcotest.test_case "bitset algebra" `Quick test_bitset_algebra;
    Alcotest.test_case "digraph basic" `Quick test_digraph_basic;
    Alcotest.test_case "digraph reachable" `Quick test_digraph_reachable;
    Alcotest.test_case "digraph induced" `Quick test_digraph_induced;
    Alcotest.test_case "cycle detection" `Quick test_cycle_detection;
    Alcotest.test_case "reduction hasse" `Quick test_reduction_hasse;
    Alcotest.test_case "ancestors" `Quick test_ancestors;
    Alcotest.test_case "scc" `Quick test_scc;
    Alcotest.test_case "johnson known" `Quick test_johnson_known;
    Alcotest.test_case "ungraph cycles" `Quick test_ungraph_cycles;
    Alcotest.test_case "ungraph components" `Quick test_ungraph_components;
    Alcotest.test_case "digraph add_edges" `Quick test_digraph_add_edges;
    Alcotest.test_case "reachable from set" `Quick test_reachable_from_set;
    Alcotest.test_case "minimal/maximal" `Quick test_minimal_maximal;
  ]
  @ qtests
