open Ddlock_model
open Ddlock_schedule
open Ddlock_safety

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* ------------------------------------------------------------------ *)
(* Two-phase locking                                                   *)
(* ------------------------------------------------------------------ *)

let test_violations () =
  let db = Db.one_site_per_entity [ "a"; "b" ] in
  let t = Builder.total_exn db Builder.[ L "a"; U "a"; L "b"; U "b" ] in
  let vs = Policy.two_phase_violations t in
  check int_t "one violation" 1 (List.length vs);
  let a = Db.find_entity_exn db "a" and b = Db.find_entity_exn db "b" in
  check bool_t "Ua before Lb" true (vs = [ (a, b) ]);
  check int_t "2PL has none" 0
    (List.length
       (Policy.two_phase_violations (Builder.two_phase_chain db [ "a"; "b" ])))

let test_make_two_phase () =
  let db = Db.one_site_per_entity [ "a"; "b"; "c" ] in
  let t =
    Builder.total_exn db
      Builder.[ L "a"; U "a"; L "b"; U "b"; L "c"; U "c" ]
  in
  let t' = Policy.make_two_phase t in
  check bool_t "result is 2PL" true (Policy.is_two_phase t');
  check bool_t "same entities" true
    (Transaction.entities t = Transaction.entities t');
  (* Lock order preserved: a before b before c. *)
  let l x = Transaction.lock_node_exn t' (Db.find_entity_exn db x) in
  check bool_t "La < Lb" true (Transaction.precedes t' (l "a") (l "b"));
  check bool_t "Lb < Lc" true (Transaction.precedes t' (l "b") (l "c"))

(* Eswaran et al.: every system of 2PL transactions is safe (though not
   necessarily deadlock-free). *)
let two_phase_safe_prop =
  QCheck.Test.make ~name:"2PL systems are always safe (EGLT)" ~count:60
    QCheck.(int_bound 10_000_000)
    (fun seed ->
      let st = Fixtures.rng seed in
      let db = Ddlock_workload.Gentx.random_db ~sites:2 ~entities:3 in
      let mk () =
        let k = 1 + Random.State.int st 3 in
        Policy.make_two_phase
          (Ddlock_workload.Gentx.random_transaction st db
             ~entities:(Ddlock_workload.Gentx.random_entity_subset st db ~k)
             ~density:1.0)
      in
      let sys = System.create [ mk (); mk (); mk () ] in
      Result.is_ok (Explore.safe sys))

let test_two_phase_not_deadlock_free () =
  let t1, t2 = Ddlock_workload.Gentx.opposed_chain_pair 2 in
  check bool_t "both 2PL" true (Policy.is_two_phase t1 && Policy.is_two_phase t2);
  check bool_t "still deadlocks" false
    (Explore.deadlock_free (System.create [ t1; t2 ]))

(* ------------------------------------------------------------------ *)
(* Tree protocol                                                       *)
(* ------------------------------------------------------------------ *)

let tree_db () = Db.single_site [ "r"; "a"; "b"; "c"; "d" ]

let tree () =
  Policy.Tree.create (tree_db ()) ~root:"r"
    ~edges:[ ("r", "a"); ("r", "b"); ("a", "c"); ("a", "d") ]

let test_tree_create_errors () =
  let db = tree_db () in
  Alcotest.check_raises "orphan"
    (Invalid_argument "Policy.Tree.create: entity without parent") (fun () ->
      ignore (Policy.Tree.create db ~root:"r" ~edges:[ ("r", "a") ]));
  Alcotest.check_raises "dup child"
    (Invalid_argument "Policy.Tree.create: duplicate child") (fun () ->
      ignore
        (Policy.Tree.create db ~root:"r"
           ~edges:
             [ ("r", "a"); ("r", "b"); ("a", "c"); ("a", "d"); ("b", "d") ]))

let test_tree_structure () =
  let tr = tree () in
  let db = tree_db () in
  let e x = Db.find_entity_exn db x in
  check (Alcotest.option int_t) "root no parent" None
    (Policy.Tree.parent tr (e "r"));
  check (Alcotest.option int_t) "parent of c" (Some (e "a"))
    (Policy.Tree.parent tr (e "c"));
  check int_t "digraph arcs" 4
    (Ddlock_graph.Digraph.edge_count (Policy.Tree.to_digraph tr))

let test_tree_obeys () =
  let tr = tree () in
  let db = tree_db () in
  (* r -> a -> c while releasing r early: legal, not 2PL. *)
  let good =
    Builder.total_exn db
      Builder.[ L "r"; L "a"; U "r"; L "c"; U "a"; U "c" ]
  in
  check bool_t "good obeys" true (Policy.Tree.obeys tr good = Ok ());
  check bool_t "good is not 2PL" false (Policy.is_two_phase good);
  (* Locking c while a is no longer held: violation. *)
  let bad =
    Builder.total_exn db
      Builder.[ L "a"; U "a"; L "c"; U "c" ]
  in
  (match Policy.Tree.obeys tr bad with
  | Error (Policy.Tree.Parent_not_held { child }) ->
      check Alcotest.string "child c" "c" (Db.entity_name db child)
  | _ -> Alcotest.fail "expected Parent_not_held");
  (* First lock may be anything. *)
  let deep = Builder.total_exn db Builder.[ L "c"; U "c" ] in
  check bool_t "first lock free" true (Policy.Tree.obeys tr deep = Ok ())

let tree_generator_obeys_prop =
  QCheck.Test.make ~name:"tree generator output obeys the protocol" ~count:100
    QCheck.(int_bound 10_000_000)
    (fun seed ->
      let st = Fixtures.rng seed in
      let tr = tree () in
      let t = Policy.Tree.random_transaction st tr ~steps:4 in
      Policy.Tree.obeys tr t = Ok ())

(* Silberschatz–Kedem: systems of tree-protocol transactions are
   serializable AND deadlock-free, without being two-phase. *)
let tree_protocol_safe_df_prop =
  QCheck.Test.make
    ~name:"tree-protocol systems are safe and deadlock-free (SK)" ~count:40
    QCheck.(int_bound 10_000_000)
    (fun seed ->
      let st = Fixtures.rng seed in
      let tr = tree () in
      let mk () = Policy.Tree.random_transaction st tr ~steps:3 in
      let sys = System.create [ mk (); mk () ] in
      Result.is_ok (Explore.safe sys) && Explore.deadlock_free sys)

let qtests =
  List.map Fixtures.to_alcotest
    [ two_phase_safe_prop; tree_generator_obeys_prop; tree_protocol_safe_df_prop ]

let suite =
  [
    Alcotest.test_case "2PL violations" `Quick test_violations;
    Alcotest.test_case "make_two_phase" `Quick test_make_two_phase;
    Alcotest.test_case "2PL not deadlock-free" `Quick
      test_two_phase_not_deadlock_free;
    Alcotest.test_case "tree create errors" `Quick test_tree_create_errors;
    Alcotest.test_case "tree structure" `Quick test_tree_structure;
    Alcotest.test_case "tree obeys" `Quick test_tree_obeys;
  ]
  @ qtests
