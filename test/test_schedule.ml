open Ddlock_graph
open Ddlock_model
open Ddlock_schedule

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let simple_pair () =
  (* Two 2PL chains over the same two entities, same order: safe & DF. *)
  let db = Db.one_site_per_entity [ "a"; "b" ] in
  let t = Builder.two_phase_chain db [ "a"; "b" ] in
  System.create [ t; Builder.two_phase_chain db [ "a"; "b" ] ]

let opposed_pair () =
  let db = Db.one_site_per_entity [ "a"; "b" ] in
  System.create
    [
      Builder.two_phase_chain db [ "a"; "b" ];
      Builder.two_phase_chain db [ "b"; "a" ];
    ]

let steps_of sys spec =
  (* spec: (txn, op, entity-name) list *)
  List.map
    (fun (i, op, name) ->
      let tx = System.txn sys i in
      let e = Db.find_entity_exn (System.db sys) name in
      let node =
        match op with
        | `L -> Transaction.lock_node_exn tx e
        | `U -> Transaction.unlock_node_exn tx e
      in
      Step.v i node)
    spec

(* ------------------------------------------------------------------ *)
(* Legality                                                            *)
(* ------------------------------------------------------------------ *)

let test_serial_legal () =
  let sys = simple_pair () in
  let s = Schedule.serial sys [ 0; 1 ] in
  check bool_t "legal" true (Schedule.is_legal sys s);
  check bool_t "complete" true (Schedule.is_complete sys s);
  check bool_t "serializable" true (Dgraph.is_serializable sys s)

let test_lock_respected () =
  let sys = simple_pair () in
  (* T1 locks a; T2 tries to lock a while held. *)
  let s = steps_of sys [ (0, `L, "a"); (1, `L, "a") ] in
  (match Schedule.check sys s with
  | Error (Schedule.Lock_held (st, holder)) ->
      check int_t "holder" 0 holder;
      check int_t "txn" 1 st.Step.txn
  | _ -> Alcotest.fail "expected Lock_held");
  (* After unlock it is fine. *)
  let s =
    steps_of sys
      [ (0, `L, "a"); (0, `L, "b"); (0, `U, "a"); (1, `L, "a") ]
  in
  check bool_t "relock after unlock" true (Schedule.is_legal sys s)

let test_precedence_respected () =
  let sys = simple_pair () in
  let s = steps_of sys [ (0, `L, "b") ] in
  (* In the 2PL chain La < Lb, so Lb first is Not_minimal. *)
  (match Schedule.check sys s with
  | Error (Schedule.Not_minimal _) -> ()
  | _ -> Alcotest.fail "expected Not_minimal");
  let s = steps_of sys [ (0, `L, "a"); (0, `L, "a") ] in
  (match Schedule.check sys s with
  | Error (Schedule.Node_repeated _) -> ()
  | _ -> Alcotest.fail "expected Node_repeated")

(* ------------------------------------------------------------------ *)
(* D(S)                                                                *)
(* ------------------------------------------------------------------ *)

let test_dgraph_serial () =
  let sys = simple_pair () in
  let s = Schedule.serial sys [ 0; 1 ] in
  let g = Dgraph.graph sys s in
  check bool_t "0 -> 1" true (Digraph.mem_edge g 0 1);
  check bool_t "no 1 -> 0" false (Digraph.mem_edge g 1 0)

let test_dgraph_partial_includes_unlocked_accessors () =
  let sys = simple_pair () in
  (* Only T1's La executed: D must already have T1 -> T2 labelled a. *)
  let s = steps_of sys [ (0, `L, "a") ] in
  let arcs = Dgraph.arcs sys s in
  check int_t "arcs" 1 (List.length arcs);
  let a = List.hd arcs in
  check int_t "src" 0 a.Dgraph.src;
  check int_t "dst" 1 a.Dgraph.dst

let test_dgraph_interleaved_cycle () =
  let sys = opposed_pair () in
  (* T1: La Lb Ua Ub ; T2: Lb La Ub Ua.  Interleave the first locks:
     T1.La, T2.Lb -> arcs T1->T2 (a) and T2->T1 (b): cyclic. *)
  let s = steps_of sys [ (0, `L, "a"); (1, `L, "b") ] in
  check bool_t "cyclic D" false (Dgraph.is_serializable sys s);
  match Dgraph.find_cycle sys s with
  | Some c -> check bool_t "cycle len 2" true (List.length c = 2)
  | None -> Alcotest.fail "expected cycle"

(* ------------------------------------------------------------------ *)
(* Explore                                                             *)
(* ------------------------------------------------------------------ *)

let test_explore_counts () =
  (* Single transaction La Ua: states = 3 (ε, {La}, {La,Ua}). *)
  let db = Db.one_site_per_entity [ "a" ] in
  let t = Builder.two_phase_chain db [ "a" ] in
  let sp = Explore.explore (System.create [ t ]) in
  check int_t "3 states" 3 (Explore.state_count sp);
  (* Two such transactions on the same entity: lock exclusion prunes the
     product: states where both hold a are unreachable. *)
  let sys = System.create [ t; Builder.two_phase_chain db [ "a" ] ] in
  let sp = Explore.explore sys in
  check int_t "8 states" 8 (Explore.state_count sp)

let test_explore_exact_cap () =
  (* The 8-state system of test_explore_counts: a budget of exactly 8
     succeeds, 7 raises Too_large 7 (held states, not an overshoot), and
     0 raises Too_large 0 before the initial state is inserted. *)
  let db = Db.one_site_per_entity [ "a" ] in
  let t = Builder.two_phase_chain db [ "a" ] in
  let sys = System.create [ t; Builder.two_phase_chain db [ "a" ] ] in
  check int_t "exact budget fits" 8
    (Explore.state_count (Explore.explore ~max_states:8 sys));
  (match Explore.explore ~max_states:7 sys with
  | exception Explore.Too_large n -> check int_t "held at raise" 7 n
  | _ -> Alcotest.fail "expected Too_large");
  (match Explore.explore ~max_states:0 sys with
  | exception Explore.Too_large n -> check int_t "no room for init" 0 n
  | _ -> Alcotest.fail "expected Too_large 0")

let test_find_deadlock_exact_cap () =
  (* opposed_pair BFS ranks: init=0, {T1:La}=1, {T2:Lb}=2, {T1:La Lb}=3,
     deadlock {T1:La | T2:Lb}=4 — so 5 states suffice, 4 do not. *)
  let sys = opposed_pair () in
  (match Explore.find_deadlock ~max_states:5 sys with
  | Some (_, st) -> check bool_t "deadlock at the cap" true
        (State.is_deadlock sys st)
  | None -> Alcotest.fail "expected a deadlock within 5 states");
  match Explore.find_deadlock ~max_states:4 sys with
  | exception Explore.Too_large n -> check int_t "held at raise" 4 n
  | _ -> Alcotest.fail "expected Too_large"

let test_explore_schedule_to () =
  let sys = simple_pair () in
  let sp = Explore.explore sys in
  let target = State.final sys in
  (match Explore.schedule_to sp target with
  | None -> Alcotest.fail "final state unreachable"
  | Some steps ->
      check bool_t "legal" true (Schedule.is_legal sys steps);
      check bool_t "complete" true (Schedule.is_complete sys steps));
  check bool_t "reachable" true (Explore.is_reachable sp target)

let test_deadlock_found () =
  let sys = opposed_pair () in
  match Explore.find_deadlock sys with
  | None -> Alcotest.fail "opposed pair must deadlock"
  | Some (steps, st) ->
      check bool_t "schedule legal" true (Schedule.is_legal sys steps);
      check bool_t "state is deadlock" true (State.is_deadlock sys st);
      check bool_t "prefix vector matches" true
        (State.equal (Schedule.prefix_vector sys steps) st)

let test_deadlock_free_simple () =
  check bool_t "same-order 2PL is deadlock free" true
    (Explore.deadlock_free (simple_pair ()))

let test_safe_and_df () =
  (match Explore.safe_and_deadlock_free (simple_pair ()) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "simple pair must be safe&DF");
  match Explore.safe_and_deadlock_free (opposed_pair ()) with
  | Ok () -> Alcotest.fail "opposed pair must fail"
  | Error cex ->
      check bool_t "cex schedule legal" true
        (Schedule.is_legal (opposed_pair ()) cex.Explore.steps);
      check bool_t "cex cycle nonempty" true (cex.Explore.cycle <> [])

let test_safety_alone () =
  (* Non-2PL pair that is unsafe: T1 = La Ua Lb Ub, T2 = La Lb Ua Ub...
     classic: T1 unlocks a before locking b; T2 can sneak in between. *)
  let db = Db.one_site_per_entity [ "a"; "b" ] in
  let t1 = Builder.total_exn db Builder.[ L "a"; U "a"; L "b"; U "b" ] in
  let t2 = Builder.two_phase_chain db [ "a"; "b" ] in
  let sys = System.create [ t1; t2 ] in
  (match Explore.safe sys with
  | Ok () -> Alcotest.fail "expected unsafe"
  | Error cex ->
      check bool_t "complete" true (Schedule.is_complete sys cex.Explore.steps);
      check bool_t "not serializable" false
        (Dgraph.is_serializable sys cex.Explore.steps));
  (* 2PL systems are always safe (Eswaran et al.): *)
  check bool_t "2PL safe" true (Result.is_ok (Explore.safe (opposed_pair ())))

let test_has_schedule () =
  let sys = opposed_pair () in
  (* Target: both transactions executed their first Lock. *)
  let target = State.initial sys in
  let la0 =
    Transaction.lock_node_exn (System.txn sys 0)
      (Db.find_entity_exn (System.db sys) "a")
  in
  let lb1 =
    Transaction.lock_node_exn (System.txn sys 1)
      (Db.find_entity_exn (System.db sys) "b")
  in
  Bitset.set target.(0) la0;
  Bitset.set target.(1) lb1;
  (match Explore.has_schedule sys target with
  | None -> Alcotest.fail "prefix must have a schedule"
  | Some steps ->
      check bool_t "legal" true (Schedule.is_legal sys steps);
      check bool_t "reaches target" true
        (State.equal (Schedule.prefix_vector sys steps) target));
  (* An illegal target: both hold a simultaneously. *)
  let bad = State.initial sys in
  Bitset.set bad.(0) la0;
  let la1 =
    Transaction.lock_node_exn (System.txn sys 1)
      (Db.find_entity_exn (System.db sys) "a")
  in
  Bitset.set bad.(1)
    (Transaction.lock_node_exn (System.txn sys 1)
       (Db.find_entity_exn (System.db sys) "b"));
  Bitset.set bad.(1) la1;
  check bool_t "unschedulable prefix" true (Explore.has_schedule sys bad = None)

let test_complete_schedules_count () =
  (* Two independent transactions La Ua / Lb Ub: interleavings of 2+2 =
     C(4,2) = 6. *)
  let db = Db.one_site_per_entity [ "a"; "b" ] in
  let sys =
    System.create
      [ Builder.two_phase_chain db [ "a" ]; Builder.two_phase_chain db [ "b" ] ]
  in
  check int_t "6 interleavings" 6 (Explore.count_complete_schedules sys)

let test_random_run () =
  let st = Fixtures.rng 42 in
  let sys = simple_pair () in
  for _ = 1 to 20 do
    match Explore.random_run st sys with
    | Explore.Completed steps ->
        check bool_t "complete" true (Schedule.is_complete sys steps)
    | Explore.Deadlocked _ -> Alcotest.fail "simple pair cannot deadlock"
  done;
  (* The opposed pair must deadlock for SOME seed over many runs. *)
  let sys = opposed_pair () in
  let saw_deadlock = ref false in
  for _ = 1 to 200 do
    match Explore.random_run st sys with
    | Explore.Deadlocked (steps, dstate) ->
        saw_deadlock := true;
        check bool_t "deadlock state" true (State.is_deadlock sys dstate);
        check bool_t "steps legal" true (Schedule.is_legal sys steps)
    | Explore.Completed _ -> ()
  done;
  check bool_t "saw deadlock" true !saw_deadlock

(* Lemma 1 sanity on random systems: the Lemma-1 decider must equal
   (safe alone) ∧ (deadlock-free alone). *)
let lemma1_decomposition_prop =
  QCheck.Test.make ~name:"Lemma 1: safe∧DF = safe × deadlock-free" ~count:60
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let st = Fixtures.rng seed in
      let sys = Fixtures.small_random_pair st in
      let both = Result.is_ok (Explore.safe_and_deadlock_free sys) in
      let safe = Result.is_ok (Explore.safe sys) in
      let df = Explore.deadlock_free sys in
      both = (safe && df))

(* ------------------------------------------------------------------ *)
(* Narration                                                           *)
(* ------------------------------------------------------------------ *)

let test_narrate () =
  let sys = opposed_pair () in
  let steps = steps_of sys [ (0, `L, "a"); (1, `L, "b") ] in
  let lines = Narrate.narrate sys steps in
  check int_t "3 lines" 3 (List.length lines);
  check bool_t "deadlock status" true (List.mem "DEADLOCK" lines);
  check bool_t "ordering note" true
    (List.exists
       (fun l ->
         l = "T1 locks a  (orders T1 before T2 on a)")
       lines);
  let full = Narrate.explain_deadlock sys steps in
  check bool_t "blocked lines" true
    (List.mem "T1 is blocked: needs b, held by T2" full
    && List.mem "T2 is blocked: needs a, held by T1" full)

let test_narrate_complete () =
  let sys = simple_pair () in
  let s = Schedule.serial sys [ 0; 1 ] in
  let lines = Narrate.narrate sys s in
  check bool_t "finished status" true
    (List.mem "all transactions finished" lines);
  check int_t "one line per step + status" (List.length s + 1)
    (List.length lines)

let narrate_linewise_prop =
  QCheck.Test.make ~name:"narration length & status match the run" ~count:60
    QCheck.(int_bound 10_000_000)
    (fun seed ->
      let st = Fixtures.rng seed in
      let sys = Fixtures.small_random_system st ~txns:2 in
      match Explore.random_run st sys with
      | Explore.Completed steps ->
          let lines = Narrate.narrate sys steps in
          List.length lines = List.length steps + 1
          && List.mem "all transactions finished" lines
      | Explore.Deadlocked (steps, _) ->
          List.mem "DEADLOCK" (Narrate.narrate sys steps))

let sched_text_roundtrip_prop =
  QCheck.Test.make ~name:"schedule text round-trips" ~count:80
    QCheck.(int_bound 10_000_000)
    (fun seed ->
      let st = Fixtures.rng seed in
      let sys = Fixtures.small_random_system st ~txns:2 in
      let steps =
        match Explore.random_run st sys with
        | Explore.Completed s | Explore.Deadlocked (s, _) -> s
      in
      match Sched_text.parse sys (Sched_text.to_text sys steps) with
      | Ok steps' -> steps = steps'
      | Error _ -> false)

let test_sched_text_errors () =
  let sys = simple_pair () in
  let bad = [ "T9 L a"; "T1 X a"; "T1 L nope"; "garbage" ] in
  List.iter
    (fun line ->
      match Sched_text.parse sys line with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "expected parse error for %S" line)
    bad;
  (* Comments and blanks are fine. *)
  match Sched_text.parse sys "# c

T1 L a
" with
  | Ok [ _ ] -> ()
  | _ -> Alcotest.fail "expected one step"

let qtests =
  List.map Fixtures.to_alcotest
    [ lemma1_decomposition_prop; narrate_linewise_prop; sched_text_roundtrip_prop ]

let suite =
  [
    Alcotest.test_case "serial legal" `Quick test_serial_legal;
    Alcotest.test_case "lock respected" `Quick test_lock_respected;
    Alcotest.test_case "precedence respected" `Quick test_precedence_respected;
    Alcotest.test_case "dgraph serial" `Quick test_dgraph_serial;
    Alcotest.test_case "dgraph partial arcs" `Quick
      test_dgraph_partial_includes_unlocked_accessors;
    Alcotest.test_case "dgraph interleaved cycle" `Quick
      test_dgraph_interleaved_cycle;
    Alcotest.test_case "explore counts" `Quick test_explore_counts;
    Alcotest.test_case "explore exact cap" `Quick test_explore_exact_cap;
    Alcotest.test_case "find_deadlock exact cap" `Quick
      test_find_deadlock_exact_cap;
    Alcotest.test_case "explore schedule_to" `Quick test_explore_schedule_to;
    Alcotest.test_case "deadlock found" `Quick test_deadlock_found;
    Alcotest.test_case "deadlock free simple" `Quick test_deadlock_free_simple;
    Alcotest.test_case "safe and df" `Quick test_safe_and_df;
    Alcotest.test_case "safety alone" `Quick test_safety_alone;
    Alcotest.test_case "has_schedule" `Quick test_has_schedule;
    Alcotest.test_case "complete schedules count" `Quick
      test_complete_schedules_count;
    Alcotest.test_case "random runs" `Quick test_random_run;
    Alcotest.test_case "narrate deadlock" `Quick test_narrate;
    Alcotest.test_case "narrate complete" `Quick test_narrate_complete;
    Alcotest.test_case "sched text errors" `Quick test_sched_text_errors;
  ]
  @ qtests
