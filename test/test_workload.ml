(* Workload generator battery: well-formedness, seed-determinism, skew
   and replication-coverage properties of the scenario-matrix generators
   (Gentx.tpcc_... and Gentx.replicated_...), plus the zipf hotspot
   generator's determinism.

   "Well-formed" here leans on the model layer: every generator builds
   via Transaction.make_exn / Builder.two_phase_chain, so an invalid
   site order or duplicate access would raise at construction.  The
   properties below check the *advertised workload shape* on top: site
   locality of every lock request, ROWA replica grouping, zipf/TPC-C
   skew bounds, and byte-level reproducibility from the seed. *)

open Ddlock_model
module Gentx = Ddlock_workload.Gentx

let bool_t = Alcotest.bool
let check = Alcotest.check

(* Render a system to its concrete source text: equal strings are the
   strongest determinism witness we have (schema and all arc sets). *)
let source_of sys =
  Parser.to_source (System.db sys)
    (List.mapi
       (fun i t -> (Printf.sprintf "T%d" (i + 1), t))
       (Array.to_list (System.txns sys)))

let tpcc_of_seed seed =
  let st = Fixtures.rng seed in
  let warehouses = 1 + Random.State.int st 3 in
  let txns = 1 + Random.State.int st 5 in
  let theta = Random.State.float st 2.0 in
  ( warehouses,
    txns,
    Gentx.tpcc_system (Fixtures.rng (seed + 1)) ~warehouses ~txns ~theta )

(* 1. TPC-C well-formedness: the advertised schema shape, every
   transaction a two-phase total order, every entity on the site of the
   warehouse its name says it belongs to. *)
let tpcc_well_formed_prop =
  QCheck.Test.make ~name:"tpcc_system: warehouse-sharded, two-phase"
    ~count:60
    QCheck.(int_bound 10_000_000)
    (fun seed ->
      let warehouses, txns, sys = tpcc_of_seed seed in
      let db = System.db sys in
      (* defaults: 2 districts + 4 stock + 2 customers + the warehouse row *)
      System.size sys = txns
      && Db.site_count db = warehouses
      && Db.entity_count db = warehouses * 9
      && Array.for_all Transaction.is_two_phase (System.txns sys)
      && List.for_all
           (fun e ->
             (* w3.d1 lives on site wh3: the prefix before '.' names it *)
             let name = Db.entity_name db e in
             let w =
               match String.index_opt name '.' with
               | Some i -> String.sub name 1 (i - 1)
               | None -> String.sub name 1 (String.length name - 1)
             in
             Db.site_name db (Db.site_of db e) = "wh" ^ w)
           (List.init (Db.entity_count db) Fun.id))

(* 2. Every lock request names an entity of the home-warehouse site
   unless it is a remote stock/customer access; with remote_prob = 0
   every transaction is single-site. *)
let tpcc_local_when_no_remote_prop =
  QCheck.Test.make ~name:"tpcc_system: remote_prob=0 => single-site txns"
    ~count:60
    QCheck.(int_bound 10_000_000)
    (fun seed ->
      let st = Fixtures.rng seed in
      let sys =
        Gentx.tpcc_system st ~warehouses:3 ~txns:4 ~theta:1.0 ~remote_prob:0.0
      in
      let db = System.db sys in
      Array.for_all
        (fun t ->
          match Transaction.entities t with
          | [] -> false
          | e :: rest ->
              List.for_all (fun e' -> Db.same_site db e e') rest)
        (System.txns sys))

(* 3. ... and with remote_prob = 1 every new-order spans >= 2 sites. *)
let tpcc_remote_spans_sites_prop =
  QCheck.Test.make ~name:"tpcc_system: remote_prob=1 => cross-site new-orders"
    ~count:60
    QCheck.(int_bound 10_000_000)
    (fun seed ->
      let st = Fixtures.rng seed in
      let sys =
        Gentx.tpcc_system st ~warehouses:2 ~txns:4 ~theta:1.0 ~remote_prob:1.0
          ~new_order_frac:1.0
      in
      let db = System.db sys in
      Array.for_all
        (fun t ->
          let sites =
            List.sort_uniq compare
              (List.map (Db.site_of db) (Transaction.entities t))
          in
          List.length sites >= 2)
        (System.txns sys))

(* 4. Seed determinism: same seed, byte-identical systems. *)
let tpcc_seed_deterministic_prop =
  QCheck.Test.make ~name:"tpcc_system: seed-deterministic" ~count:40
    QCheck.(int_bound 10_000_000)
    (fun seed ->
      let _, _, a = tpcc_of_seed seed in
      let _, _, b = tpcc_of_seed seed in
      source_of a = source_of b)

(* 5. Skew bound: at theta = 1.8 the rank-1 warehouse row is locked at
   least as often as the rank-6 one across many generated systems (a
   fixed-seed aggregate, like the zipf test in test_sim). *)
let test_tpcc_skews_hot_warehouse () =
  let st = Fixtures.rng 77 in
  let uses = Array.make 6 0 in
  for _ = 1 to 80 do
    let sys = Gentx.tpcc_system st ~warehouses:6 ~txns:3 ~theta:1.8 in
    let db = System.db sys in
    Array.iter
      (fun t ->
        List.iter
          (fun e ->
            let name = Db.entity_name db e in
            if String.index_opt name '.' = None then
              (* a bare warehouse row w<i> *)
              let w = int_of_string (String.sub name 1 (String.length name - 1)) in
              uses.(w - 1) <- uses.(w - 1) + 1)
          (Transaction.entities t))
      (System.txns sys)
  done;
  check bool_t
    (Printf.sprintf "theta=1.8 skews to w1 (%d vs %d)" uses.(0) uses.(5))
    true
    (uses.(0) > 3 * uses.(5))

(* 6. Replication coverage: every logical entity has exactly
   [replication] replicas on pairwise-distinct sites (>= 2 sites when
   replication >= 2 is requested). *)
let replicated_coverage_prop =
  QCheck.Test.make
    ~name:"replicated_db: every entity on [replication] distinct sites"
    ~count:80
    QCheck.(int_bound 10_000_000)
    (fun seed ->
      let st = Fixtures.rng seed in
      let sites = 2 + Random.State.int st 4 in
      let entities = 1 + Random.State.int st 6 in
      let replication = 2 + Random.State.int st (sites - 1) in
      let rep = Gentx.replicated_db ~sites ~entities ~replication in
      let db = rep.Gentx.rep_db in
      rep.Gentx.logical = entities
      && Array.for_all
           (fun replicas ->
             let s = List.map (Db.site_of db) replicas in
             List.length replicas = replication
             && List.length (List.sort_uniq compare s) = replication)
           rep.Gentx.replicas)

(* 7. Every lock request names an entity its site replicates: each
   accessed physical entity belongs to the replica set of its logical
   entity, and per transaction the accesses group into all-replicas
   (a ROWA write) or exactly one replica (a read). *)
let replicated_rowa_prop =
  QCheck.Test.make
    ~name:"replicated_system: accesses are ROWA writes or one-replica reads"
    ~count:60
    QCheck.(int_bound 10_000_000)
    (fun seed ->
      let st = Fixtures.rng seed in
      let sites = 2 + Random.State.int st 3 in
      let entities = 2 + Random.State.int st 4 in
      let rep = Gentx.replicated_db ~sites ~entities ~replication:2 in
      let sys =
        Gentx.replicated_system (Fixtures.rng (seed + 1)) rep
          ~txns:(1 + Random.State.int st 4)
          ~entities_per_txn:(1 + Random.State.int st 2)
      in
      Array.for_all
        (fun t ->
          let by_logical = Hashtbl.create 7 in
          List.for_all
            (fun e ->
              match Gentx.logical_of rep e with
              | None -> false (* a lock on an entity no site replicates *)
              | Some l ->
                  Hashtbl.replace by_logical l
                    (e :: (try Hashtbl.find by_logical l with Not_found -> []));
                  List.mem e rep.Gentx.replicas.(l))
            (Transaction.entities t)
          && Hashtbl.fold
               (fun l es acc ->
                 acc
                 && (List.length es = 1
                    || List.sort compare es
                       = List.sort compare rep.Gentx.replicas.(l)))
               by_logical true)
        (System.txns sys))

(* 8. write_prob extremes: 1.0 locks the full replica set of every
   chosen entity; 0.0 locks exactly one replica per chosen entity. *)
let replicated_write_prob_extremes_prop =
  QCheck.Test.make
    ~name:"replicated_system: write_prob extremes lock all / one replica"
    ~count:60
    QCheck.(int_bound 10_000_000)
    (fun seed ->
      let rep = Gentx.replicated_db ~sites:3 ~entities:4 ~replication:2 in
      let all =
        Gentx.replicated_system ~write_prob:1.0 (Fixtures.rng seed) rep
          ~txns:3 ~entities_per_txn:2
      in
      let one =
        Gentx.replicated_system ~write_prob:0.0 (Fixtures.rng seed) rep
          ~txns:3 ~entities_per_txn:2
      in
      Array.for_all
        (fun t -> List.length (Transaction.entities t) = 2 * 2)
        (System.txns all)
      && Array.for_all
           (fun t -> List.length (Transaction.entities t) = 2)
           (System.txns one))

(* 9. Seed determinism for replicated and zipf systems. *)
let replicated_seed_deterministic_prop =
  QCheck.Test.make ~name:"replicated_system: seed-deterministic" ~count:40
    QCheck.(int_bound 10_000_000)
    (fun seed ->
      let rep = Gentx.replicated_db ~sites:4 ~entities:5 ~replication:3 in
      let mk () =
        Gentx.replicated_system (Fixtures.rng seed) rep ~txns:3
          ~entities_per_txn:2
      in
      source_of (mk ()) = source_of (mk ()))

let zipf_seed_deterministic_prop =
  QCheck.Test.make ~name:"zipf_system: seed-deterministic" ~count:40
    QCheck.(int_bound 10_000_000)
    (fun seed ->
      let mk () =
        Gentx.zipf_system (Fixtures.rng seed) ~sites:2 ~entities:5 ~txns:3
          ~theta:1.2
      in
      source_of (mk ()) = source_of (mk ()))

(* Parameter validation: bad generator parameters raise Invalid_argument
   (the CLI turns these into one-line errors + exit 2). *)
let test_params_validated () =
  let raises f =
    match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  check bool_t "theta < 0" true
    (raises (fun () ->
         Gentx.tpcc_system (Fixtures.rng 1) ~warehouses:2 ~txns:2 ~theta:(-1.0)));
  check bool_t "warehouses < 1" true
    (raises (fun () -> Gentx.tpcc_db ~warehouses:0 ~districts:1 ~items:1 ~customers:1));
  check bool_t "items_per_order > items" true
    (raises (fun () ->
         Gentx.tpcc_system (Fixtures.rng 1) ~warehouses:2 ~txns:2 ~theta:1.0
           ~items:2 ~items_per_order:3));
  check bool_t "new_order_frac > 1" true
    (raises (fun () ->
         Gentx.tpcc_system (Fixtures.rng 1) ~warehouses:2 ~txns:2 ~theta:1.0
           ~new_order_frac:1.5));
  check bool_t "replication > sites" true
    (raises (fun () -> Gentx.replicated_db ~sites:2 ~entities:3 ~replication:3));
  check bool_t "replication < 1" true
    (raises (fun () -> Gentx.replicated_db ~sites:2 ~entities:3 ~replication:0));
  check bool_t "entities_per_txn > logical" true
    (raises (fun () ->
         let rep = Gentx.replicated_db ~sites:2 ~entities:2 ~replication:1 in
         Gentx.replicated_system (Fixtures.rng 1) rep ~txns:1
           ~entities_per_txn:3))

let qtests =
  List.map Fixtures.to_alcotest
    [
      tpcc_well_formed_prop;
      tpcc_local_when_no_remote_prop;
      tpcc_remote_spans_sites_prop;
      tpcc_seed_deterministic_prop;
      replicated_coverage_prop;
      replicated_rowa_prop;
      replicated_write_prob_extremes_prop;
      replicated_seed_deterministic_prop;
      zipf_seed_deterministic_prop;
    ]

let suite =
  [
    Alcotest.test_case "tpcc skews hot warehouse" `Quick
      test_tpcc_skews_hot_warehouse;
    Alcotest.test_case "generator params validated" `Quick
      test_params_validated;
  ]
  @ qtests
