open Ddlock_model
open Ddlock_schedule
open Ddlock_semantics

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let asystem_of rng ~per_entity sys =
  Array.map
    (fun t -> Herbrand.with_actions rng t ~per_entity)
    (System.txns sys)

let steps_of sys spec =
  List.map
    (fun (i, op, name) ->
      let tx = System.txn sys i in
      let e = Db.find_entity_exn (System.db sys) name in
      Step.v i
        (match op with
        | `L -> Transaction.lock_node_exn tx e
        | `U -> Transaction.unlock_node_exn tx e))
    spec

(* ------------------------------------------------------------------ *)
(* Basics                                                              *)
(* ------------------------------------------------------------------ *)

let simple_pair () =
  let db = Db.one_site_per_entity [ "a"; "b" ] in
  System.create
    [
      Builder.two_phase_chain db [ "a"; "b" ];
      Builder.two_phase_chain db [ "a"; "b" ];
    ]

let test_actions_inserted () =
  let rng = Fixtures.rng 51 in
  let sys = simple_pair () in
  let asys = asystem_of rng ~per_entity:2 sys in
  Array.iter
    (fun a -> check int_t "2 entities x2" 4 (Herbrand.action_count a))
    asys

let test_eval_initial () =
  (* An empty schedule leaves every entity at its initial value. *)
  let rng = Fixtures.rng 52 in
  let sys = simple_pair () in
  let asys = asystem_of rng ~per_entity:1 sys in
  let final = Herbrand.eval asys [] in
  Array.iteri
    (fun e t -> check bool_t "init" true (t = Herbrand.Init e))
    final

let test_serial_chains () =
  (* After a serial run, each entity's term is T2's function applied over
     T1's — a chain of depth 2. *)
  let rng = Fixtures.rng 53 in
  let sys = simple_pair () in
  let asys = asystem_of rng ~per_entity:1 sys in
  let final = Herbrand.eval asys (Schedule.serial sys [ 0; 1 ]) in
  Array.iter
    (fun t ->
      match t with
      | Herbrand.App (f2, args) ->
          check bool_t "outer is T2's" true (String.length f2 > 1 && f2.[1] = '2');
          check bool_t "inner is T1's" true
            (List.exists
               (function
                 | Herbrand.App (f1, _) -> f1.[1] = '1'
                 | _ -> false)
               args)
      | _ -> Alcotest.fail "expected App")
    final

let test_lost_update_not_serializable () =
  (* The classic anomaly needs a non-2PL schedule; our lock model forbids
     interleavings while held, so build the early-unlock pair:
     T1 = La Ua Lb Ub, T2 = La Lb Ua Ub and interleave so that
     T1 acts on a first but on b second. *)
  let db = Db.one_site_per_entity [ "a"; "b" ] in
  let t1 = Builder.total_exn db Builder.[ L "a"; U "a"; L "b"; U "b" ] in
  let t2 = Builder.two_phase_chain db [ "a"; "b" ] in
  let sys = System.create [ t1; t2 ] in
  let rng = Fixtures.rng 54 in
  let asys = asystem_of rng ~per_entity:1 sys in
  let steps =
    steps_of sys
      [
        (0, `L, "a"); (0, `U, "a");
        (1, `L, "a"); (1, `L, "b"); (1, `U, "a"); (1, `U, "b");
        (0, `L, "b"); (0, `U, "b");
      ]
  in
  check bool_t "legal" true (Schedule.is_legal sys steps);
  check bool_t "D(S) cyclic" false (Dgraph.is_serializable sys steps);
  check bool_t "not semantically serializable" false
    (Herbrand.serializable asys steps);
  (* And a clean serial run IS serializable. *)
  check bool_t "serial ok" true
    (Herbrand.serializable asys (Schedule.serial sys [ 1; 0 ]))

(* ------------------------------------------------------------------ *)
(* The [EGLT] theorem: D(S) acyclic ⇔ semantically serializable       *)
(* ------------------------------------------------------------------ *)

let eglt_prop =
  QCheck.Test.make
    ~name:"[EGLT] D(S) acyclic ⇔ Herbrand-serializable (random schedules)"
    ~count:60
    QCheck.(int_bound 10_000_000)
    (fun seed ->
      let st = Fixtures.rng seed in
      let sys = Fixtures.small_random_pair st in
      match Explore.random_run st sys with
      | Explore.Deadlocked _ -> QCheck.assume_fail ()
      | Explore.Completed steps ->
          let asys =
            asystem_of st ~per_entity:(1 + Random.State.int st 2) sys
          in
          Dgraph.is_serializable sys steps = Herbrand.serializable asys steps)

(* Equivalence is exactly "same per-entity lock order": permuting two
   independent entities' schedules preserves final terms. *)
let equivalence_lock_order_prop =
  QCheck.Test.make
    ~name:"equivalent ⇔ equal per-entity lock orders" ~count:40
    QCheck.(int_bound 10_000_000)
    (fun seed ->
      let st = Fixtures.rng seed in
      let sys = Fixtures.small_random_pair st in
      match (Explore.random_run st sys, Explore.random_run st sys) with
      | Explore.Completed s1, Explore.Completed s2 ->
          let asys = asystem_of st ~per_entity:1 sys in
          let per_entity steps =
            let raw =
              List.filter_map
                (fun (s : Step.t) ->
                  let nd = Transaction.node (System.txn sys s.txn) s.node in
                  match nd.Node.op with
                  | Node.Lock -> Some (nd.Node.entity, s.txn)
                  | Node.Unlock -> None)
                steps
            in
            List.map
              (fun e -> List.filter (fun (e', _) -> e' = e) raw)
              (Ddlock_graph.Bitset.to_list (System.accessed_entities sys))
          in
          (per_entity s1 = per_entity s2) = Herbrand.equivalent asys s1 s2
      | _ -> QCheck.assume_fail ())

(* The paper's position-irrelevance: different random action placements
   on the same skeleton give the same serializability verdicts. *)
let position_irrelevance_prop =
  QCheck.Test.make
    ~name:"action positions do not affect serializability (§2 remark)"
    ~count:40
    QCheck.(int_bound 10_000_000)
    (fun seed ->
      let st = Fixtures.rng seed in
      let sys = Fixtures.small_random_pair st in
      match Explore.random_run st sys with
      | Explore.Deadlocked _ -> QCheck.assume_fail ()
      | Explore.Completed steps ->
          let a1 = asystem_of st ~per_entity:2 sys in
          let a2 = asystem_of st ~per_entity:2 sys in
          Herbrand.serializable a1 steps = Herbrand.serializable a2 steps)

let qtests =
  List.map Fixtures.to_alcotest
    [ eglt_prop; equivalence_lock_order_prop; position_irrelevance_prop ]

let suite =
  [
    Alcotest.test_case "actions inserted" `Quick test_actions_inserted;
    Alcotest.test_case "eval initial" `Quick test_eval_initial;
    Alcotest.test_case "serial chains" `Quick test_serial_chains;
    Alcotest.test_case "lost update" `Quick test_lost_update_not_serializable;
  ]
  @ qtests
