(* Telemetry layer: histogram bucket arithmetic, shard merging under
   real domain parallelism, snapshot determinism, trace well-formedness,
   and the jobs-invariance of the engine counters. *)

open Ddlock_schedule
module Obs = Ddlock_obs
module Metrics = Obs.Metrics
module Trace = Obs.Trace
module Par = Ddlock_par.Par_explore

let check = Alcotest.check
let int_t = Alcotest.int
let bool_t = Alcotest.bool

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* Each test runs with a clean registry state and leaves the switch
   off, so suites running after this one see the default-off world. *)
let with_obs f =
  Metrics.reset ();
  Trace.clear ();
  Obs.Control.on ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Control.off ();
      Metrics.reset ();
      Trace.clear ())
    f

(* ------------------------------------------------------------------ *)
(* Histogram buckets                                                   *)
(* ------------------------------------------------------------------ *)

let test_bucket_boundaries () =
  let b = Metrics.Histogram.bucket_of in
  List.iter
    (fun (v, expect) ->
      check int_t (Printf.sprintf "bucket_of %d" v) expect (b v))
    [
      (Int.min_int, 0);
      (-1, 0);
      (0, 0);
      (1, 0);
      (2, 1);
      (3, 1);
      (4, 2);
      (7, 2);
      (8, 3);
      (1023, 9);
      (1024, 10);
      (1025, 10);
      (* max_int = 2^62 - 1 on 64-bit, hence floor(log2) = 61 *)
      (Int.max_int, 61);
    ];
  (* Bucket i >= 1 covers [2^i, 2^(i+1)): both endpoints land right. *)
  for i = 1 to 20 do
    let lo = Metrics.Histogram.bucket_lower i in
    check int_t "lower endpoint in bucket" i (b lo);
    check int_t "below lower endpoint in previous" (i - 1) (b (lo - 1))
  done

let test_histogram_observe () =
  with_obs @@ fun () ->
  let h = Metrics.Histogram.make "test.hist" in
  List.iter (Metrics.Histogram.observe h) [ 0; 1; 2; 3; 900; 1024 ];
  match List.assoc "test.hist" (Metrics.snapshot ()) with
  | Metrics.Hist { count; sum; buckets } ->
      check int_t "count" 6 count;
      check int_t "sum" (0 + 1 + 2 + 3 + 900 + 1024) sum;
      check
        Alcotest.(list (pair int_t int_t))
        "buckets" [ (0, 2); (1, 2); (9, 1); (10, 1) ] buckets
  | _ -> Alcotest.fail "test.hist must be a histogram"

(* ------------------------------------------------------------------ *)
(* Sharded counters under real domains                                 *)
(* ------------------------------------------------------------------ *)

let test_counter_shard_merge () =
  with_obs @@ fun () ->
  let c = Metrics.Counter.make "test.sharded" in
  let per_domain = 10_000 and domains = 4 in
  let worker () =
    for _ = 1 to per_domain do
      Metrics.Counter.incr c
    done
  in
  let ds = List.init domains (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join ds;
  (* The merge is a plain sum over shards, so the total is exact and
     independent of which domain landed on which shard. *)
  check int_t "merged total" ((domains + 1) * per_domain)
    (Metrics.Counter.value c);
  check int_t "by name" ((domains + 1) * per_domain)
    (Metrics.counter_value "test.sharded")

let test_gauge_set_max () =
  with_obs @@ fun () ->
  let g = Metrics.Gauge.make "test.gauge" in
  Metrics.Gauge.set g 5;
  Metrics.Gauge.set_max g 3;
  check int_t "set_max keeps larger" 5 (Metrics.Gauge.value g);
  Metrics.Gauge.set_max g 9;
  check int_t "set_max raises" 9 (Metrics.Gauge.value g)

(* ------------------------------------------------------------------ *)
(* Snapshots, gating, reset                                            *)
(* ------------------------------------------------------------------ *)

let test_snapshot_deterministic () =
  with_obs @@ fun () ->
  let c = Metrics.Counter.make "test.snap.c" in
  let h = Metrics.Histogram.make "test.snap.h" in
  Metrics.Counter.add c 7;
  Metrics.Histogram.observe h 42;
  let s1 = Metrics.snapshot () and s2 = Metrics.snapshot () in
  check bool_t "snapshots equal" true (s1 = s2);
  let names = List.map fst s1 in
  check bool_t "sorted by name" true (names = List.sort compare names)

let test_off_is_noop () =
  Metrics.reset ();
  Obs.Control.off ();
  let c = Metrics.Counter.make "test.off" in
  Metrics.Counter.incr c;
  Metrics.Counter.add c 10;
  check int_t "no recording while off" 0 (Metrics.Counter.value c);
  Trace.clear ();
  Trace.span "test.off.span" (fun () -> ());
  check int_t "no spans while off" 0 (List.length (Trace.events ()))

let test_reset () =
  with_obs @@ fun () ->
  let c = Metrics.Counter.make "test.reset" in
  Metrics.Counter.add c 3;
  Metrics.reset ();
  check int_t "reset zeroes" 0 (Metrics.Counter.value c);
  Metrics.Counter.add c 2;
  check int_t "still usable after reset" 2 (Metrics.Counter.value c)

(* ------------------------------------------------------------------ *)
(* Quantiles, deltas, exposition                                       *)
(* ------------------------------------------------------------------ *)

let test_histogram_record_ungated () =
  Metrics.reset ();
  Obs.Control.off ();
  let h = Metrics.Histogram.make "test.record" in
  Metrics.Histogram.observe h 5;
  Metrics.Histogram.record h 5;
  (match List.assoc "test.record" (Metrics.snapshot ()) with
  | Metrics.Hist { count; _ } ->
      check int_t "only record lands while off" 1 count
  | _ -> Alcotest.fail "test.record must be a histogram");
  Metrics.reset ()

let test_quantile () =
  with_obs @@ fun () ->
  let h = Metrics.Histogram.make "test.quant" in
  (* 100 samples of 1000 (bucket 9, [512, 1024)). *)
  for _ = 1 to 100 do
    Metrics.Histogram.observe h 1000
  done;
  match List.assoc "test.quant" (Metrics.snapshot ()) with
  | Metrics.Hist h ->
      check bool_t "empty hist quantile is 0" true
        (Metrics.quantile { Metrics.count = 0; sum = 0; buckets = [] } 0.5
         = 0.0);
      (* Log2 buckets: the estimate must land inside the sample's
         bucket, i.e. within a factor of 2. *)
      List.iter
        (fun q ->
          let v = Metrics.quantile h q in
          check bool_t
            (Printf.sprintf "q=%.2f in bucket" q)
            true
            (v >= 512.0 && v <= 1024.0))
        [ 0.01; 0.5; 0.9; 0.99; 1.0 ]
  | _ -> Alcotest.fail "test.quant must be a histogram"

let test_delta () =
  with_obs @@ fun () ->
  let c = Metrics.Counter.make "test.delta.c" in
  let g = Metrics.Gauge.make "test.delta.g" in
  let h = Metrics.Histogram.make "test.delta.h" in
  Metrics.Counter.add c 5;
  Metrics.Gauge.set g 10;
  Metrics.Histogram.observe h 3;
  let before = Metrics.snapshot () in
  Metrics.Counter.add c 7;
  Metrics.Gauge.set g 4;
  Metrics.Histogram.observe h 900;
  let after = Metrics.snapshot () in
  let d = Metrics.delta ~before ~after in
  (match List.assoc "test.delta.c" d with
  | Metrics.Counter n -> check int_t "counter delta" 7 n
  | _ -> Alcotest.fail "counter expected");
  (match List.assoc "test.delta.g" d with
  | Metrics.Gauge n -> check int_t "gauge keeps after value" 4 n
  | _ -> Alcotest.fail "gauge expected");
  match List.assoc "test.delta.h" d with
  | Metrics.Hist { count; sum; buckets } ->
      check int_t "hist count delta" 1 count;
      check int_t "hist sum delta" 900 sum;
      check
        Alcotest.(list (pair int_t int_t))
        "only the new bucket" [ (9, 1) ] buckets
  | _ -> Alcotest.fail "histogram expected"

let test_render_prometheus () =
  with_obs @@ fun () ->
  let c = Metrics.Counter.make "test.prom.total" in
  let h = Metrics.Histogram.make "test.prom.ns" in
  Metrics.Counter.add c 3;
  Metrics.Histogram.observe h 1;
  Metrics.Histogram.observe h 700;
  let text = Metrics.render_prometheus (Metrics.snapshot ()) in
  List.iter
    (fun needle ->
      check bool_t needle true (contains text needle))
    [
      (* '.' sanitized to '_' *)
      "# TYPE test_prom_total counter";
      "test_prom_total 3";
      "# TYPE test_prom_ns histogram";
      "test_prom_ns_bucket{le=\"1\"} 1";
      (* bucket 9 = [512, 1024), inclusive upper bound 1023, cumulative *)
      "test_prom_ns_bucket{le=\"1023\"} 2";
      "test_prom_ns_bucket{le=\"+Inf\"} 2";
      "test_prom_ns_sum 701";
      "test_prom_ns_count 2";
    ]

(* ------------------------------------------------------------------ *)
(* Flight-recorder ring                                                *)
(* ------------------------------------------------------------------ *)

let test_ring_basics () =
  let r = Obs.Ring.create 4 in
  check int_t "capacity" 4 (Obs.Ring.capacity r);
  check bool_t "empty" true (Obs.Ring.to_list r = []);
  List.iter (Obs.Ring.push r) [ 1; 2; 3 ];
  check Alcotest.(list int_t) "newest first" [ 3; 2; 1 ] (Obs.Ring.to_list r);
  List.iter (Obs.Ring.push r) [ 4; 5; 6 ];
  check int_t "pushed counts everything" 6 (Obs.Ring.pushed r);
  check
    Alcotest.(list int_t)
    "only the last capacity retained" [ 6; 5; 4; 3 ] (Obs.Ring.to_list r);
  check bool_t "find newest match" true (Obs.Ring.find r (fun v -> v > 4) = Some 6);
  check bool_t "find miss" true (Obs.Ring.find r (fun v -> v > 9) = None)

let test_ring_concurrent () =
  let r = Obs.Ring.create 64 in
  let per_domain = 5_000 and domains = 4 in
  let ds =
    List.init domains (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              Obs.Ring.push r ((d * per_domain) + i)
            done))
  in
  List.iter Domain.join ds;
  check int_t "every push counted" (domains * per_domain) (Obs.Ring.pushed r);
  (* Reads are best-effort, but quiescent reads see a full ring. *)
  check int_t "full after quiescence" 64 (List.length (Obs.Ring.to_list r))

(* ------------------------------------------------------------------ *)
(* Request context and request-tagged tracing                          *)
(* ------------------------------------------------------------------ *)

let test_request_context () =
  check int_t "no ambient request" Obs.Request.none (Obs.Request.current ());
  let inner =
    Obs.Request.with_id 7 (fun () ->
        let mid = Obs.Request.current () in
        (try Obs.Request.with_id 9 (fun () -> raise Exit) with Exit -> ());
        (mid, Obs.Request.current ()))
  in
  check (Alcotest.pair int_t int_t) "nested install and restore" (7, 7) inner;
  check int_t "restored after exit" Obs.Request.none (Obs.Request.current ())

let test_take_request () =
  with_obs @@ fun () ->
  Obs.Request.with_id 3 (fun () ->
      Trace.span "test.req.a" (fun () ->
          Trace.span "test.req.b" (fun () -> ())));
  Trace.span "test.unrelated" (fun () -> ());
  let mine = Trace.take_request 3 in
  check int_t "both tagged events taken" 2 (List.length mine);
  check bool_t "chronological (outer first)" true
    (match mine with
    | [ a; b ] -> a.Trace.name = "test.req.a" && b.Trace.name = "test.req.b"
    | _ -> false);
  check bool_t "ids carried" true
    (List.for_all (fun ev -> ev.Trace.req = 3) mine);
  (match Trace.events () with
  | [ ev ] -> check Alcotest.string "untagged event stays" "test.unrelated" ev.Trace.name
  | evs -> Alcotest.failf "expected 1 remaining event, got %d" (List.length evs));
  check int_t "second take is empty" 0 (List.length (Trace.take_request 3));
  (* The request id round-trips into the chrome args. *)
  Obs.Request.with_id 5 (fun () -> Trace.span "test.req.c" (fun () -> ()));
  let json = Trace.chrome_json (Trace.take_request 5) in
  (match Obs.Json.validate json with
  | Ok () -> ()
  | Error e -> Alcotest.failf "invalid chrome json: %s" e);
  check bool_t "req arg emitted" true (contains json {|"req":"5"|})

let test_request_propagates_to_child_domains () =
  with_obs @@ fun () ->
  let sys =
    Ddlock_model.System.copies (Ddlock_workload.Gentx.guard_ring 4) 2
  in
  Obs.Request.with_id 11 (fun () ->
      ignore (Par.find_deadlock ~jobs:3 sys));
  let evs = Trace.events () in
  check bool_t "spans recorded" true (evs <> []);
  check bool_t "every span carries the request id" true
    (List.for_all (fun ev -> ev.Trace.req = 11) evs)

(* ------------------------------------------------------------------ *)
(* Tracing                                                             *)
(* ------------------------------------------------------------------ *)

let test_span_records () =
  with_obs @@ fun () ->
  let r = Trace.span "test.span" (fun () -> 41 + 1) in
  check int_t "span returns body result" 42 r;
  (match Trace.events () with
  | [ ev ] ->
      check Alcotest.string "name" "test.span" ev.Trace.name;
      check bool_t "duration recorded" true (ev.Trace.dur_ns >= 0)
  | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs));
  (* Spans survive the exceptions the engines escape with. *)
  (try Trace.span "test.raises" (fun () -> raise Exit) with Exit -> ());
  check int_t "event recorded on raise" 2 (List.length (Trace.events ()))

let test_chrome_json_valid () =
  with_obs @@ fun () ->
  Trace.span "test.outer" (fun () ->
      Trace.span "test.inner" (fun () -> ());
      Trace.instant "test.mark");
  let path = Filename.temp_file "ddlock_trace" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      Trace.write_chrome_json oc;
      close_out oc;
      let ic = open_in_bin path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      (match Obs.Json.validate s with
      | Ok () -> ()
      | Error e -> Alcotest.failf "invalid trace JSON: %s" e);
      check bool_t "has traceEvents" true (contains s "\"traceEvents\""))

let test_json_validate () =
  let ok s = check bool_t s true (Result.is_ok (Obs.Json.validate s)) in
  let bad s = check bool_t s true (Result.is_error (Obs.Json.validate s)) in
  ok {|{"a": [1, 2.5, -3e4], "b": "x\nA", "c": [true, false, null]}|};
  ok {|[]|};
  ok {|"lone string"|};
  bad {|{"a": 1,}|};
  bad {|{"a" 1}|};
  bad {|[1, 2|};
  bad {|{"a": 1} trailing|};
  bad {|{'a': 1}|};
  bad ""

(* ------------------------------------------------------------------ *)
(* Engine counters are jobs-invariant                                  *)
(* ------------------------------------------------------------------ *)

let engine_counts f =
  Metrics.reset ();
  ignore (f ());
  ( Metrics.counter_value "explore.states_visited",
    Metrics.counter_value "explore.deadlock_witnesses" )

let test_counters_jobs_invariant_fig2 () =
  with_obs @@ fun () ->
  let sys =
    Ddlock_model.System.copies (Ddlock_workload.Gentx.guard_ring 4) 2
  in
  let seq = engine_counts (fun () -> Explore.find_deadlock sys) in
  check bool_t "a witness was found" true (snd seq = 1);
  List.iter
    (fun jobs ->
      let par = engine_counts (fun () -> Par.find_deadlock ~jobs sys) in
      check bool_t (Printf.sprintf "jobs=%d equals sequential" jobs) true
        (par = seq))
    [ 1; 2; 4 ]

let counters_invariant_prop =
  QCheck.Test.make ~name:"counter totals invariant under jobs" ~count:25
    QCheck.(pair (int_bound 1_000_000) (int_range 1 3))
    (fun (seed, jobs) ->
      let st = Fixtures.rng seed in
      let sys = Fixtures.small_random_system st ~txns:3 in
      Metrics.reset ();
      Trace.clear ();
      Obs.Control.on ();
      Fun.protect
        ~finally:(fun () ->
          Obs.Control.off ();
          Metrics.reset ();
          Trace.clear ())
        (fun () ->
          let seq = engine_counts (fun () -> Explore.find_deadlock sys) in
          let par =
            engine_counts (fun () -> Par.find_deadlock ~jobs sys)
          in
          seq = par))

let qtests = List.map Fixtures.to_alcotest [ counters_invariant_prop ]

let suite =
  [
    Alcotest.test_case "histogram bucket boundaries" `Quick
      test_bucket_boundaries;
    Alcotest.test_case "histogram observe" `Quick test_histogram_observe;
    Alcotest.test_case "counter shard merge" `Quick test_counter_shard_merge;
    Alcotest.test_case "gauge set_max" `Quick test_gauge_set_max;
    Alcotest.test_case "snapshot deterministic" `Quick
      test_snapshot_deterministic;
    Alcotest.test_case "off is a no-op" `Quick test_off_is_noop;
    Alcotest.test_case "reset" `Quick test_reset;
    Alcotest.test_case "histogram record is ungated" `Quick
      test_histogram_record_ungated;
    Alcotest.test_case "quantile" `Quick test_quantile;
    Alcotest.test_case "snapshot delta" `Quick test_delta;
    Alcotest.test_case "prometheus exposition" `Quick test_render_prometheus;
    Alcotest.test_case "ring basics" `Quick test_ring_basics;
    Alcotest.test_case "ring concurrent pushes" `Quick test_ring_concurrent;
    Alcotest.test_case "request context" `Quick test_request_context;
    Alcotest.test_case "take_request" `Quick test_take_request;
    Alcotest.test_case "request id reaches child domains" `Quick
      test_request_propagates_to_child_domains;
    Alcotest.test_case "span records" `Quick test_span_records;
    Alcotest.test_case "chrome trace JSON valid" `Quick test_chrome_json_valid;
    Alcotest.test_case "json validator" `Quick test_json_validate;
    Alcotest.test_case "engine counters jobs-invariant" `Quick
      test_counters_jobs_invariant_fig2;
  ]
  @ qtests
