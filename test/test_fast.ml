(* Differential battery for the relaxed work-stealing engine
   ([~mode:`Fast] of Ddlock_par.Par_explore) and its hash-consing
   substrate (Ddlock_schedule.Intern).

   The fast engine trades the deterministic engine's bit-identical
   discovery order for throughput; what it keeps — and what this suite
   pins — is the contract of Par_explore.mli:
   - verdicts equal the sequential ground truth (same dedup relation);
   - [find_deadlock]/[safe]/[safe_and_deadlock_free] re-canonicalize,
     so their output is byte-identical to the sequential engines, for
     any combination of [?symmetry]/[?por];
   - raw [bfs] witnesses are valid: a legal schedule whose replay ends
     in its goal-satisfying endpoint;
   - the cap never undercounts: [Too_large n] is raised iff the space
     exceeds [max_states], with [n >= max_states] (overshoot bounded
     by work in flight, undershoot impossible);
   - the intern table is injective and idempotent. *)

open Ddlock_model
open Ddlock_schedule
module Par = Ddlock_par.Par_explore
module Prefix_search = Ddlock_deadlock.Prefix_search
module Reduction = Ddlock_deadlock.Reduction
module Gentx = Ddlock_workload.Gentx

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let fast_jobs = [ 1; 2; 4 ]

let fig2ish () = System.copies (Gentx.guard_ring 4) 2
let phil3 () = Gentx.dining_philosophers 3

let opposed_pair () =
  let db = Db.one_site_per_entity [ "a"; "b" ] in
  System.create
    [
      Builder.two_phase_chain db [ "a"; "b" ];
      Builder.two_phase_chain db [ "b"; "a" ];
    ]

let safe_pair () =
  let db = Db.one_site_per_entity [ "a"; "b" ] in
  System.create
    [
      Builder.two_phase_chain db [ "a"; "b" ];
      Builder.two_phase_chain db [ "a"; "b" ];
    ]

let eight_state_sys () =
  let db = Db.one_site_per_entity [ "a" ] in
  let t = Builder.two_phase_chain db [ "a" ] in
  System.create [ t; Builder.two_phase_chain db [ "a" ] ]

(* ------------------------------------------------------------------ *)
(* Unit: the intern table                                              *)
(* ------------------------------------------------------------------ *)

let test_intern_basics () =
  let t = Intern.create ~equal:String.equal ~hash:Hashtbl.hash () in
  let a, new_a = Intern.intern t "a" in
  check bool_t "first intern is new" true new_a;
  let a', again = Intern.intern t "a" in
  check int_t "idempotent id" a a';
  check bool_t "re-intern not new" false again;
  let b, new_b = Intern.intern t "b" in
  check bool_t "distinct value is new" true new_b;
  check bool_t "distinct ids" true (a <> b);
  check int_t "count" 2 (Intern.count t);
  check int_t "hits" 1 (Intern.hits t);
  check bool_t "find hit" true (Intern.find t "a" = Some a);
  check bool_t "find miss" true (Intern.find t "zzz" = None);
  check bool_t "get roundtrip" true (String.equal (Intern.get t b) "b");
  match Intern.get t 99 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "get out of range must raise"

let test_intern_growth () =
  (* Push the arena through several doublings; ids stay dense and
     stable, every value reads back, re-interning is pure hit. *)
  let t = Intern.create ~capacity:4 ~equal:Int.equal ~hash:Hashtbl.hash () in
  let n = 1000 in
  for i = 0 to n - 1 do
    let id, was_new = Intern.intern t (i * 7) in
    check int_t "dense id" i id;
    check bool_t "new" true was_new
  done;
  check int_t "count after growth" n (Intern.count t);
  for i = 0 to n - 1 do
    check int_t "readback" (i * 7) (Intern.get t i);
    let id, was_new = Intern.intern t (i * 7) in
    check int_t "stable id" i id;
    check bool_t "hit" false was_new
  done;
  check int_t "hits counted" n (Intern.hits t);
  let seen = ref 0 in
  Intern.iter
    (fun v ->
      check int_t "iter in id order" (!seen * 7) v;
      incr seen)
    t;
  check int_t "iter covers all" n !seen

(* ------------------------------------------------------------------ *)
(* Unit: verdicts and counts vs the sequential ground truth            *)
(* ------------------------------------------------------------------ *)

let test_fast_counts () =
  List.iter
    (fun sys ->
      let seq = Explore.state_count (Explore.explore sys) in
      let seq_sym =
        Explore.state_count (Explore.explore ~symmetry:true sys)
      in
      List.iter
        (fun jobs ->
          check int_t
            (Printf.sprintf "fast count jobs=%d" jobs)
            seq
            (Par.state_count (Par.explore ~mode:`Fast ~jobs sys));
          (* Canonical dedup keeps the representative set deterministic,
             so even the relaxed engine lands on the same orbit count. *)
          check int_t
            (Printf.sprintf "fast+sym count jobs=%d" jobs)
            seq_sym
            (Par.state_count
               (Par.explore ~mode:`Fast ~symmetry:true ~jobs sys));
          (* The reduced set depends on arrival order, but it is always
             a sound reduction: never above plain. *)
          check bool_t
            (Printf.sprintf "fast+por count bound jobs=%d" jobs)
            true
            (Par.state_count (Par.explore ~mode:`Fast ~por:true ~jobs sys)
            <= seq))
        fast_jobs)
    [ fig2ish (); phil3 (); opposed_pair () ]

let test_fast_find_deadlock_identical () =
  (* Re-canonicalization makes the output byte-identical to the plain
     sequential engine, whatever reductions the fast search used. *)
  List.iter
    (fun sys ->
      let seq = Explore.find_deadlock sys in
      List.iter
        (fun jobs ->
          List.iter
            (fun (symmetry, por) ->
              check bool_t
                (Printf.sprintf "find_deadlock jobs=%d sym=%b por=%b" jobs
                   symmetry por)
                true
                (Par.find_deadlock ~mode:`Fast ~symmetry ~por ~jobs sys = seq))
            [ (false, false); (true, false); (false, true); (true, true) ])
        fast_jobs)
    [ fig2ish (); phil3 (); opposed_pair (); safe_pair () ]

let test_fast_lemma1_identical () =
  List.iter
    (fun sys ->
      List.iter
        (fun jobs ->
          check bool_t
            (Printf.sprintf "safe_and_deadlock_free jobs=%d" jobs)
            true
            (Par.safe_and_deadlock_free ~mode:`Fast ~jobs sys
            = Explore.safe_and_deadlock_free sys);
          check bool_t
            (Printf.sprintf "safe jobs=%d" jobs)
            true
            (Par.safe ~mode:`Fast ~jobs sys = Explore.safe sys))
        fast_jobs)
    [ opposed_pair (); safe_pair (); fig2ish () ]

let test_fast_witness_valid () =
  (* The raw relaxed witness (no re-canonicalization) is whichever
     deadlock a worker reached first: any such schedule must be legal
     and replay to its deadlocked endpoint. *)
  let sys = fig2ish () in
  (match Par.bfs ~mode:`Fast ~jobs:4 sys ~found:(State.is_deadlock sys) with
  | None -> Alcotest.fail "fig2ish deadlocks"
  | Some (sched, stf) ->
      check bool_t "legal" true (Schedule.is_legal sys sched);
      check bool_t "endpoint" true
        (State.equal (Schedule.prefix_vector sys sched) stf);
      check bool_t "deadlocked" true (State.is_deadlock sys stf));
  let safe = safe_pair () in
  check bool_t "safe system: no witness" true
    (Par.bfs ~mode:`Fast ~jobs:4 safe ~found:(State.is_deadlock safe) = None)

let test_fast_cap_never_undercounts () =
  (* Exact-fit budgets succeed (the cap can never fire on a space that
     fits); a cap below the space always raises, carrying n >= cap. *)
  let sys = eight_state_sys () in
  List.iter
    (fun jobs ->
      check int_t "exact budget fits" 8
        (Par.state_count (Par.explore ~mode:`Fast ~max_states:8 ~jobs sys));
      (match Par.explore ~mode:`Fast ~max_states:7 ~jobs sys with
      | exception Explore.Too_large n ->
          check bool_t "overshoot only" true (n >= 7)
      | _ -> Alcotest.fail "expected Too_large");
      match Par.explore ~mode:`Fast ~max_states:0 ~jobs sys with
      | exception Explore.Too_large _ -> ()
      | _ -> Alcotest.fail "expected Too_large 0")
    fast_jobs

let test_fast_prefix_and_minimize () =
  let sys = fig2ish () in
  check bool_t "prefix verdict" true
    (Prefix_search.deadlock_free ~fast:true ~jobs:2 sys
    = Prefix_search.deadlock_free sys);
  (match Prefix_search.find ~fast:true ~jobs:2 sys with
  | None -> Alcotest.fail "fig2ish must have a deadlock prefix"
  | Some w ->
      check bool_t "schedule legal" true
        (Schedule.is_legal sys w.Prefix_search.schedule);
      check bool_t "prefix realized" true
        (State.equal
           (Schedule.prefix_vector sys w.Prefix_search.schedule)
           w.Prefix_search.prefix);
      check bool_t "reduction graph cyclic" true
        (Reduction.has_cycle (Reduction.make sys w.Prefix_search.prefix)));
  check bool_t "all ~fast finds the same set" true
    (List.sort compare
       (List.map State.key
          (List.of_seq (Prefix_search.all ~fast:true ~jobs:2 sys)))
    = List.sort compare
        (List.map State.key (List.of_seq (Prefix_search.all sys))));
  match
    ( Ddlock.Minimize.deadlock_core sys,
      Ddlock.Minimize.deadlock_core ~fast:true ~jobs:2 sys )
  with
  | Some a, Some b ->
      check bool_t "same minimized core" true
        (a.Ddlock.Minimize.kept_txns = b.Ddlock.Minimize.kept_txns
        && a.Ddlock.Minimize.dropped_entities
           = b.Ddlock.Minimize.dropped_entities)
  | _ -> Alcotest.fail "fig2ish must minimize"

(* ------------------------------------------------------------------ *)
(* Properties: differential vs the sequential engine                   *)
(* ------------------------------------------------------------------ *)

let seed_and_jobs = QCheck.(pair (int_bound 1_000_000) (int_range 2 4))

let fast_verdict_prop =
  QCheck.Test.make
    ~name:"fast find_deadlock ≡ sequential (any sym/por combination)"
    ~count:30
    QCheck.(
      triple (int_bound 1_000_000) (int_range 2 4) (pair bool bool))
    (fun (seed, jobs, (symmetry, por)) ->
      let st = Fixtures.rng seed in
      let sys = Fixtures.small_random_system st ~txns:3 in
      Par.find_deadlock ~mode:`Fast ~symmetry ~por ~jobs sys
      = Explore.find_deadlock sys)

let fast_count_prop =
  QCheck.Test.make ~name:"fast explore ≡ sequential (state set size)"
    ~count:30 seed_and_jobs
    (fun (seed, jobs) ->
      let st = Fixtures.rng seed in
      let sys = Fixtures.small_random_system st ~txns:3 in
      Par.state_count (Par.explore ~mode:`Fast ~jobs sys)
      = Explore.state_count (Explore.explore sys))

let fast_lemma1_prop =
  QCheck.Test.make ~name:"fast Lemma-1 ≡ sequential (exact counterexample)"
    ~count:25 seed_and_jobs
    (fun (seed, jobs) ->
      let st = Fixtures.rng seed in
      let sys = Fixtures.small_random_pair st in
      Par.safe_and_deadlock_free ~mode:`Fast ~jobs sys
      = Explore.safe_and_deadlock_free sys
      && Par.safe ~mode:`Fast ~jobs sys = Explore.safe sys)

let fast_witness_valid_prop =
  QCheck.Test.make ~name:"fast raw witness is a legal deadlock replay"
    ~count:30 seed_and_jobs
    (fun (seed, jobs) ->
      let st = Fixtures.rng seed in
      let sys = Fixtures.small_random_system st ~txns:3 in
      let seq_deadlocks = Explore.find_deadlock sys <> None in
      match Par.bfs ~mode:`Fast ~jobs sys ~found:(State.is_deadlock sys) with
      | None -> not seq_deadlocks
      | Some (sched, stf) ->
          seq_deadlocks
          && Schedule.is_legal sys sched
          && State.equal (Schedule.prefix_vector sys sched) stf
          && State.is_deadlock sys stf)

let fast_cap_prop =
  (* The relaxed cap may overshoot (bounded by work in flight) but can
     never undercount: it raises iff the space exceeds the budget, and
     the carried total is never below the budget. *)
  QCheck.Test.make ~name:"fast cap raises iff space exceeds it, n >= cap"
    ~count:40
    QCheck.(triple (int_bound 1_000_000) (int_range 2 4) (int_range 1 40))
    (fun (seed, jobs, max_states) ->
      let st = Fixtures.rng seed in
      let sys = Fixtures.small_random_system st ~txns:2 in
      let true_count = Explore.state_count (Explore.explore sys) in
      match Par.explore ~mode:`Fast ~max_states ~jobs sys with
      | sp -> true_count <= max_states && Par.state_count sp = true_count
      | exception Explore.Too_large n ->
          true_count > max_states && n >= max_states)

let intern_prop =
  QCheck.Test.make ~name:"intern injective + idempotent on random keys"
    ~count:50
    QCheck.(small_list small_int)
    (fun xs ->
      let t = Intern.create ~capacity:2 ~equal:Int.equal ~hash:Hashtbl.hash () in
      let ids = List.map (fun x -> fst (Intern.intern t x)) xs in
      List.for_all2
        (fun x id ->
          (* idempotent: re-interning returns the same id, no growth *)
          fst (Intern.intern t x) = id && Int.equal (Intern.get t id) x)
        xs ids
      && List.for_all2
           (fun x id ->
             List.for_all2
               (fun y id' -> Int.equal x y = (id = id'))
               xs ids)
           xs ids
      && Intern.count t = List.length (List.sort_uniq compare xs))

let qtests =
  List.map Fixtures.to_alcotest
    [
      fast_verdict_prop;
      fast_count_prop;
      fast_lemma1_prop;
      fast_witness_valid_prop;
      fast_cap_prop;
      intern_prop;
    ]

let suite =
  [
    Alcotest.test_case "intern basics" `Quick test_intern_basics;
    Alcotest.test_case "intern growth" `Quick test_intern_growth;
    Alcotest.test_case "counts match" `Quick test_fast_counts;
    Alcotest.test_case "find_deadlock byte-identical" `Quick
      test_fast_find_deadlock_identical;
    Alcotest.test_case "lemma1 identical" `Quick test_fast_lemma1_identical;
    Alcotest.test_case "raw witness valid" `Quick test_fast_witness_valid;
    Alcotest.test_case "cap never undercounts" `Quick
      test_fast_cap_never_undercounts;
    Alcotest.test_case "prefix search and minimize" `Quick
      test_fast_prefix_and_minimize;
  ]
  @ qtests
