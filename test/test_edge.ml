(* Edge cases across the whole API surface: empty/degenerate inputs,
   single transactions, trivial systems. *)

open Ddlock_graph
open Ddlock_model
open Ddlock_schedule

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let test_empty_transaction () =
  let db = Db.one_site_per_entity [ "a" ] in
  let t = Transaction.make_exn db [||] [] in
  check int_t "no nodes" 0 (Transaction.node_count t);
  check bool_t "accesses nothing" true (Transaction.entities t = []);
  check bool_t "two phase" true (Transaction.is_two_phase t);
  check int_t "one (empty) extension" 1 (Transaction.count_linear_extensions t);
  (* Pairs with an empty transaction are trivially safe & DF. *)
  let u = Ddlock_workload.Gentx.guard_ring 3 in
  let t' = Transaction.make_exn (Transaction.db u) [||] [] in
  check bool_t "pair with empty" true (Ddlock_safety.Pair.safe_and_deadlock_free t' u)

let test_single_transaction_system () =
  let db = Db.one_site_per_entity [ "a"; "b" ] in
  let sys = System.create [ Builder.two_phase_chain db [ "a"; "b" ] ] in
  check bool_t "deadlock free" true (Explore.deadlock_free sys);
  check bool_t "safe&df" true (Result.is_ok (Explore.safe_and_deadlock_free sys));
  check bool_t "theorem 4" true (Ddlock_safety.Many.safe_and_deadlock_free sys);
  check int_t "one complete schedule" 1 (Explore.count_complete_schedules sys);
  (* Prefix search agrees. *)
  check bool_t "prefix search" true (Ddlock_deadlock.Prefix_search.deadlock_free sys)

let test_copies_one () =
  let t = Ddlock_workload.Gentx.guard_ring 3 in
  let sys = System.copies t 1 in
  check int_t "size 1" 1 (System.size sys);
  check bool_t "alone is fine" true (Explore.deadlock_free sys);
  Alcotest.check_raises "k=0 rejected" (Invalid_argument "System.copies: k < 1")
    (fun () -> ignore (System.copies t 0))

let test_single_entity_pair () =
  (* One shared entity: condition 1 is satisfiable trivially, condition 2
     is vacuous; always safe & deadlock-free. *)
  let db = Db.one_site_per_entity [ "x" ] in
  let t () = Builder.two_phase_chain db [ "x" ] in
  check bool_t "pair" true (Ddlock_safety.Pair.safe_and_deadlock_free (t ()) (t ()));
  check bool_t "exhaustive" true
    (Result.is_ok (Explore.safe_and_deadlock_free (System.create [ t (); t () ])))

let test_reduction_of_full_prefix () =
  let sys = Ddlock_workload.Gentx.dining_philosophers 3 in
  let r = Ddlock_deadlock.Reduction.make sys (State.final sys) in
  check bool_t "empty graph acyclic" false (Ddlock_deadlock.Reduction.has_cycle r);
  check bool_t "no cycle" true (Ddlock_deadlock.Reduction.find_cycle r = None)

let test_empty_schedule () =
  let sys = Ddlock_workload.Gentx.dining_philosophers 3 in
  check bool_t "legal" true (Schedule.is_legal sys []);
  check bool_t "not complete" false (Schedule.is_complete sys []);
  check bool_t "serializable" true (Dgraph.is_serializable sys []);
  check int_t "no arcs" 0 (List.length (Dgraph.arcs sys []))

let test_geometry_disjoint_pair () =
  let db = Db.single_site [ "a"; "b" ] in
  let t1 = Builder.two_phase_chain db [ "a" ] in
  let t2 = Builder.two_phase_chain db [ "b" ] in
  check bool_t "df" true (Ddlock_safety.Geometry.deadlock_free t1 t2);
  check bool_t "safe" true (Ddlock_safety.Geometry.safe t1 t2)

let test_analysis_single_site () =
  (* Purely centralized systems flow through the same pipeline. *)
  let db = Db.single_site [ "a"; "b"; "c" ] in
  let sys =
    System.create
      [
        Builder.two_phase_chain db [ "a"; "b"; "c" ];
        Builder.two_phase_chain db [ "a"; "c" ];
      ]
  in
  let r = Ddlock.Analysis.report sys in
  check int_t "one site" 1 r.Ddlock.Analysis.site_count;
  check bool_t "safe" true
    (r.Ddlock.Analysis.safety = Ddlock.Analysis.Safe_and_deadlock_free)

let test_dpll_trivial () =
  let open Ddlock_conp in
  check bool_t "empty formula sat" true
    (Dpll.satisfiable Formula.{ n_vars = 0; clauses = [] });
  check bool_t "empty clause unsat" false
    (Dpll.satisfiable Formula.{ n_vars = 1; clauses = [ [] ] });
  check int_t "0 vars 1 model" 1
    (Dpll.count_models Formula.{ n_vars = 0; clauses = [] })

let test_tree_root_only () =
  let db = Db.single_site [ "r" ] in
  let tr = Ddlock_safety.Policy.Tree.create db ~root:"r" ~edges:[] in
  let t = Builder.two_phase_chain db [ "r" ] in
  check bool_t "root-only obeys" true (Ddlock_safety.Policy.Tree.obeys tr t = Ok ())

let test_early_unlock_single_entity () =
  let db = Db.single_site [ "a" ] in
  let sys =
    System.create
      [ Builder.two_phase_chain db [ "a" ]; Builder.two_phase_chain db [ "a" ] ]
  in
  let _, stats = Ddlock_safety.Early_unlock.minimize_spans sys in
  (* Spans of single-entity chains are already minimal. *)
  check int_t "no swaps" 0 stats.Ddlock_safety.Early_unlock.swaps

let test_narrate_empty () =
  let sys = Ddlock_workload.Gentx.dining_philosophers 2 in
  check (Alcotest.list Alcotest.string) "status only" [ "(partial)" ]
    (Narrate.narrate sys [])

let test_state_holder_none () =
  let sys = Ddlock_workload.Gentx.dining_philosophers 2 in
  let st = State.initial sys in
  check bool_t "nothing held" true (State.holder sys st 0 = None);
  check bool_t "not deadlock" false (State.is_deadlock sys st);
  check bool_t "not finished" false (State.all_finished sys st)

let test_db_empty_site () =
  let db = Db.create [ ("s1", [ "x" ]); ("s2", []) ] in
  check int_t "two sites" 2 (Db.site_count db);
  check (Alcotest.list int_t) "empty site" [] (Db.entities_of_site db 1)

let test_bitset_zero_capacity () =
  let s = Bitset.create 0 in
  check bool_t "empty" true (Bitset.is_empty s);
  check int_t "cardinal" 0 (Bitset.cardinal s);
  check bool_t "choose" true (Bitset.choose s = None)

let test_guard_ring_two () =
  (* k=2 ring: even, so 2 copies deadlock (the smallest even case). *)
  let t = Ddlock_workload.Gentx.guard_ring 2 in
  check bool_t "2 copies deadlock" false (Explore.deadlock_free (System.copies t 2))

let suite =
  [
    Alcotest.test_case "empty transaction" `Quick test_empty_transaction;
    Alcotest.test_case "single-transaction system" `Quick
      test_single_transaction_system;
    Alcotest.test_case "copies k=1 / k=0" `Quick test_copies_one;
    Alcotest.test_case "single shared entity" `Quick test_single_entity_pair;
    Alcotest.test_case "reduction of full prefix" `Quick
      test_reduction_of_full_prefix;
    Alcotest.test_case "empty schedule" `Quick test_empty_schedule;
    Alcotest.test_case "geometry disjoint" `Quick test_geometry_disjoint_pair;
    Alcotest.test_case "analysis single site" `Quick test_analysis_single_site;
    Alcotest.test_case "dpll trivial" `Quick test_dpll_trivial;
    Alcotest.test_case "tree root only" `Quick test_tree_root_only;
    Alcotest.test_case "early unlock single entity" `Quick
      test_early_unlock_single_entity;
    Alcotest.test_case "narrate empty" `Quick test_narrate_empty;
    Alcotest.test_case "state holder none" `Quick test_state_holder_none;
    Alcotest.test_case "db empty site" `Quick test_db_empty_site;
    Alcotest.test_case "bitset zero capacity" `Quick test_bitset_zero_capacity;
    Alcotest.test_case "guard ring k=2" `Quick test_guard_ring_two;
  ]
