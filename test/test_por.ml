(* Differential conformance battery for partial-order reduction: the
   static independence predicate of Sched.Indep must be sound w.r.t.
   the dynamic commutation oracle on every enabled pair of every
   reachable state, and every observable of the persistent/sleep-set
   reduced engines (?por threaded through Explore / Par_explore /
   Prefix_search / Analysis / Minimize) must agree with the plain
   ground truth — verdicts, canonicalized witnesses, state-count upper
   bounds, exact cap accounting, counter totals — across jobs ∈ {1,4}
   and symmetry ∈ {on,off}. *)

open Ddlock_model
open Ddlock_schedule
module Par = Ddlock_par.Par_explore
module Prefix_search = Ddlock_deadlock.Prefix_search
module Reduction = Ddlock_deadlock.Reduction
module Gentx = Ddlock_workload.Gentx

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let fig2ish () = System.copies (Gentx.guard_ring 4) 2
let phil3 () = Gentx.dining_philosophers 3

let opposed_pair () =
  let db = Db.one_site_per_entity [ "a"; "b" ] in
  System.create
    [
      Builder.two_phase_chain db [ "a"; "b" ];
      Builder.two_phase_chain db [ "b"; "a" ];
    ]

let eight_state_sys () =
  let db = Db.one_site_per_entity [ "a" ] in
  let t = Builder.two_phase_chain db [ "a" ] in
  System.create [ t; Builder.two_phase_chain db [ "a" ] ]

let fixtures () = [ fig2ish (); phil3 (); opposed_pair (); eight_state_sys () ]

let witness_valid sys (sched, stf) =
  Schedule.is_legal sys sched
  && State.equal (Schedule.prefix_vector sys sched) stf
  && State.is_deadlock sys stf

(* Distinct reachable states sampled along one random run. *)
let states_of_run st sys =
  let steps =
    match Explore.random_run st sys with
    | Explore.Completed s | Explore.Deadlocked (s, _) -> s
  in
  let sts, _ =
    List.fold_left
      (fun (acc, cur) step ->
        let nxt = State.apply cur step in
        (nxt :: acc, nxt))
      ([ State.initial sys ], State.initial sys)
      steps
  in
  sts

(* ------------------------------------------------------------------ *)
(* Unit: Indep static predicate, exhaustively on the fixtures          *)
(* ------------------------------------------------------------------ *)

(* Satellite contract: over EVERY reachable state and EVERY enabled
   pair, the static predicate must never claim "independent" for a
   pair the dynamic oracle rejects (no false positives), and must be
   irreflexive and symmetric. *)
let test_indep_sound_exhaustive () =
  List.iter
    (fun sys ->
      Seq.iter
        (fun st ->
          let en = State.enabled sys st in
          List.iter
            (fun s ->
              List.iter
                (fun t ->
                  check bool_t "symmetric" (Indep.independent sys s t)
                    (Indep.independent sys t s);
                  if Step.equal s t then
                    check bool_t "irreflexive" false (Indep.independent sys s t)
                  else if Indep.independent sys s t then
                    check bool_t "static independent ⇒ dynamic commutes" true
                      (Indep.commutes sys st s t))
                en)
            en)
        (Explore.states (Explore.explore sys)))
    (fixtures ())

let test_persistent_props () =
  List.iter
    (fun sys ->
      Seq.iter
        (fun st ->
          let en = State.enabled sys st in
          let p = Indep.persistent sys st in
          check bool_t "persistent ⊆ enabled" true
            (List.for_all (fun s -> List.mem s en) p);
          check bool_t "persistent nonempty iff enabled nonempty"
            (en <> []) (p <> []);
          check bool_t "persistent has no duplicates" true
            (List.length (List.sort_uniq Step.compare p) = List.length p))
        (Explore.states (Explore.explore sys)))
    (fixtures ())

let test_has_independent_pair () =
  check bool_t "philosophers have independent steps" true
    (Indep.has_independent_pair (phil3 ()));
  check bool_t "opposed chains have independent steps" true
    (Indep.has_independent_pair (opposed_pair ()));
  (* Two copies of [L a < U a]: every cross-transaction pair shares the
     one entity, every same-transaction pair is order-comparable. *)
  check bool_t "single-entity copies have none" false
    (Indep.has_independent_pair (eight_state_sys ()))

let test_sleep_covered () =
  let sys = phil3 () in
  let en =
    List.sort Step.compare (State.enabled sys (State.initial sys))
  in
  let s0, s1 =
    match en with a :: b :: _ -> (a, b) | _ -> assert false
  in
  check bool_t "empty stored is covered" true
    (Indep.sleep_covered ~stored:[] ~incoming:[ s0 ] = `Covered);
  check bool_t "subset stored is covered" true
    (Indep.sleep_covered ~stored:[ s0 ] ~incoming:[ s0; s1 ] = `Covered);
  check bool_t "non-subset shrinks to the intersection" true
    (Indep.sleep_covered ~stored:[ s0; s1 ] ~incoming:[ s1 ]
    = `Shrink [ s1 ]);
  check bool_t "disjoint shrinks to empty" true
    (Indep.sleep_covered ~stored:[ s0 ] ~incoming:[ s1 ] = `Shrink [])

(* Reduced counts on the fixtures: never more states than plain, same
   deadlock verdict, and a genuine cut where independence exists. *)
let test_fixture_counts () =
  List.iter
    (fun sys ->
      let plain = Explore.state_count (Explore.explore sys) in
      let reduced = Explore.state_count (Explore.explore ~por:true sys) in
      check bool_t "reduced ≤ plain" true (reduced <= plain);
      check bool_t "verdict preserved"
        (Explore.deadlock_free sys)
        (Explore.deadlock_free ~por:true sys))
    (fixtures ());
  let sys = phil3 () in
  check bool_t "philosophers: strictly fewer states" true
    (Explore.state_count (Explore.explore ~por:true sys)
    < Explore.state_count (Explore.explore sys))

let test_fixture_witnesses_canonical () =
  List.iter
    (fun sys ->
      let plain = Explore.find_deadlock sys in
      check bool_t "find_deadlock ~por byte-identical" true
        (Explore.find_deadlock ~por:true sys = plain);
      check bool_t "find_deadlock ~por ~symmetry byte-identical" true
        (Explore.find_deadlock ~por:true ~symmetry:true sys = plain);
      check bool_t "par find_deadlock ~por jobs=4 byte-identical" true
        (Par.find_deadlock ~por:true ~jobs:4 sys = plain))
    (fixtures ())

(* ------------------------------------------------------------------ *)
(* QCheck: the differential battery on random systems                  *)
(* ------------------------------------------------------------------ *)

let copies_arg = QCheck.(triple (int_bound 1_000_000) (int_range 2 3) bool)

let indep_sound_prop =
  QCheck.Test.make
    ~name:"Indep.independent sound w.r.t. Indep.commutes (random)" ~count:40
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let st = Fixtures.rng seed in
      let sys = Fixtures.small_random_system st ~txns:3 in
      List.for_all
        (fun cur ->
          let en = State.enabled sys cur in
          List.for_all
            (fun s ->
              List.for_all
                (fun t ->
                  Indep.independent sys s t = Indep.independent sys t s
                  && (not (Step.equal s t) || not (Indep.independent sys s t))
                  && ((not (Indep.independent sys s t))
                     || Indep.commutes sys cur s t))
                en)
            en)
        (states_of_run st sys))

let por_verdict_witness_prop =
  QCheck.Test.make
    ~name:"por verdict+witness ≡ plain across jobs × symmetry" ~count:40
    copies_arg
    (fun (seed, copies, extra) ->
      let st = Fixtures.rng seed in
      let sys = Gentx.random_copies_system ~extra st ~copies in
      let plain = Explore.find_deadlock sys in
      (match plain with None -> true | Some w -> witness_valid sys w)
      && Explore.find_deadlock ~por:true sys = plain
      && Explore.find_deadlock ~por:true ~symmetry:true sys = plain
      && Par.find_deadlock ~por:true ~jobs:1 sys = plain
      && Par.find_deadlock ~por:true ~jobs:4 sys = plain
      && Par.find_deadlock ~por:true ~symmetry:true ~jobs:4 sys = plain
      && Explore.deadlock_free ~por:true sys = (plain = None)
      && Par.deadlock_free ~por:true ~jobs:4 sys = (plain = None))

let por_state_bound_prop =
  QCheck.Test.make
    ~name:"reduced state count ≤ plain (with and without symmetry)"
    ~count:40 copies_arg
    (fun (seed, copies, extra) ->
      let st = Fixtures.rng seed in
      let sys = Gentx.random_copies_system ~extra st ~copies in
      let plain = Explore.state_count (Explore.explore sys) in
      let reduced = Explore.state_count (Explore.explore ~por:true sys) in
      let plain_sym =
        Explore.state_count (Explore.explore ~symmetry:true sys)
      in
      let reduced_sym =
        Explore.state_count (Explore.explore ~symmetry:true ~por:true sys)
      in
      reduced <= plain && reduced_sym <= plain_sym && reduced_sym <= reduced)

let por_par_seq_prop =
  QCheck.Test.make
    ~name:"par por ≡ seq por (states, ranks, witnesses) for every jobs"
    ~count:30
    QCheck.(pair copies_arg (int_range 1 4))
    (fun ((seed, copies, extra), jobs) ->
      let st = Fixtures.rng seed in
      let sys = Gentx.random_copies_system ~extra st ~copies in
      let keys sts = List.sort compare (List.of_seq (Seq.map State.key sts)) in
      let agree symmetry =
        let seq = Explore.explore ~symmetry ~por:true sys in
        let par = Par.explore ~symmetry ~por:true ~jobs sys in
        Par.state_count par = Explore.state_count seq
        && keys (Par.states par) = keys (Explore.states seq)
      in
      agree false && agree true
      && Par.find_deadlock ~por:true ~jobs sys
         = Explore.find_deadlock ~por:true sys)

let por_cap_outcome_prop =
  QCheck.Test.make
    ~name:"por cap outcome ≡ across jobs (exact Too_large)" ~count:40
    QCheck.(triple (int_bound 1_000_000) (int_range 2 4) (int_range 1 40))
    (fun (seed, jobs, max_states) ->
      let st = Fixtures.rng seed in
      let sys = Gentx.random_copies_system st ~copies:2 in
      let probe f =
        match f () with
        | Some w -> `Witness w
        | None -> `Deadlock_free
        | exception Explore.Too_large n -> `Too_large n
      in
      probe (fun () -> Explore.find_deadlock ~max_states ~por:true sys)
      = probe (fun () -> Par.find_deadlock ~max_states ~por:true ~jobs sys)
      && probe (fun () ->
             Explore.find_deadlock ~max_states ~symmetry:true ~por:true sys)
         = probe (fun () ->
               Par.find_deadlock ~max_states ~symmetry:true ~por:true ~jobs
                 sys))

let por_obs_counters_prop =
  QCheck.Test.make
    ~name:"por.pruned / por.persistent_size totals are jobs-invariant"
    ~count:20
    QCheck.(pair (int_bound 1_000_000) (int_range 2 4))
    (fun (seed, jobs) ->
      let st = Fixtures.rng seed in
      let sys = Gentx.random_copies_system st ~copies:2 ~extra:true in
      let counters_after f =
        Ddlock_obs.Metrics.reset ();
        ignore (f ());
        ( Ddlock_obs.Metrics.counter_value "explore.states_visited",
          Ddlock_obs.Metrics.counter_value "por.pruned",
          Ddlock_obs.Metrics.counter_value "por.persistent_size" )
      in
      Ddlock_obs.Control.on ();
      let seq =
        counters_after (fun () -> ignore (Explore.explore ~por:true sys))
      in
      let par =
        counters_after (fun () -> ignore (Par.explore ~por:true ~jobs sys))
      in
      Ddlock_obs.Control.off ();
      Ddlock_obs.Metrics.reset ();
      seq = par)

let por_prefix_search_prop =
  QCheck.Test.make
    ~name:"prefix search: por verdict ≡ plain, witness valid, all ⊆ plain"
    ~count:25
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let st = Fixtures.rng seed in
      let sys = Gentx.random_copies_system st ~copies:2 ~extra:true in
      let plain = Prefix_search.find sys in
      let reduced = Prefix_search.find ~por:true sys in
      Option.is_none plain = Option.is_none reduced
      && (match reduced with
         | None -> true
         | Some w ->
             Schedule.is_legal sys w.Prefix_search.schedule
             && State.equal
                  (Schedule.prefix_vector sys w.Prefix_search.schedule)
                  w.Prefix_search.prefix
             && Reduction.has_cycle (Reduction.make sys w.Prefix_search.prefix))
      && Prefix_search.find ~por:true ~jobs:4 sys = reduced
      && Prefix_search.deadlock_free ~por:true sys
         = Prefix_search.deadlock_free sys
      &&
      let keys f =
        List.sort_uniq compare (List.map State.key (List.of_seq (f ())))
      in
      let plain_all = keys (fun () -> Prefix_search.all sys) in
      let por_all = keys (fun () -> Prefix_search.all ~por:true sys) in
      List.for_all (fun k -> List.mem k plain_all) por_all
      && (plain_all = []) = (por_all = []))

let por_analysis_minimize_prop =
  QCheck.Test.make
    ~name:"Analysis bytes and Minimize core ≡ under por" ~count:10
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let st = Fixtures.rng seed in
      let sys = Gentx.random_copies_system st ~copies:2 ~extra:true in
      let plain = Ddlock.Analysis.render_full sys in
      Ddlock.Analysis.render_full ~por:true sys = plain
      && Ddlock.Analysis.render_full ~por:true ~symmetry:true ~jobs:4 sys
         = plain
      &&
      match
        ( Ddlock.Minimize.deadlock_core sys,
          Ddlock.Minimize.deadlock_core ~por:true sys )
      with
      | None, None -> true
      | Some a, Some b ->
          a.Ddlock.Minimize.kept_txns = b.Ddlock.Minimize.kept_txns
          && a.Ddlock.Minimize.dropped_entities
             = b.Ddlock.Minimize.dropped_entities
      | _ -> false)

let qtests =
  List.map Fixtures.to_alcotest
    [
      indep_sound_prop;
      por_verdict_witness_prop;
      por_state_bound_prop;
      por_par_seq_prop;
      por_cap_outcome_prop;
      por_obs_counters_prop;
      por_prefix_search_prop;
      por_analysis_minimize_prop;
    ]

let suite =
  [
    Alcotest.test_case "Indep sound on all reachable enabled pairs" `Quick
      test_indep_sound_exhaustive;
    Alcotest.test_case "persistent sets well-formed" `Quick
      test_persistent_props;
    Alcotest.test_case "independent-pair detector" `Quick
      test_has_independent_pair;
    Alcotest.test_case "sleep-set covering rule" `Quick test_sleep_covered;
    Alcotest.test_case "reduced counts on fixtures" `Quick test_fixture_counts;
    Alcotest.test_case "canonicalized witnesses on fixtures" `Quick
      test_fixture_witnesses_canonical;
  ]
  @ qtests
