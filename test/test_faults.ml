open Ddlock_model
open Ddlock_schedule
open Ddlock_sim

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* ------------------------------------------------------------------ *)
(* Chaos harness: invariants survive every seeded fault plan            *)
(* ------------------------------------------------------------------ *)

let test_chaos_sweep () =
  (* 6 cases x (5 schemes + 1 runtime probe) x 67 seeds = 2412 runs. *)
  let r =
    Chaos.sweep ~seeds:67 ~schemes:Chaos.default_schemes
      ~cases:(Chaos.default_cases ()) 0xc4a05
  in
  check bool_t "at least 1000 runs" true (r.Chaos.runs >= 1000);
  List.iter
    (fun (seed, where, _) ->
      Alcotest.failf "chaos violation in %s at seed %d" where seed)
    r.Chaos.violations;
  check int_t "every run clean" r.Chaos.runs r.Chaos.clean_runs

(* ------------------------------------------------------------------ *)
(* Timeout scheme                                                      *)
(* ------------------------------------------------------------------ *)

let test_timeout_resolves_reliable_deadlock () =
  (* Philosophers k=3 deadlock on nearly every seed under the plain
     runtime with the default config ... *)
  let sys = Ddlock_workload.Gentx.dining_philosophers 3 in
  let rng = Fixtures.rng 31 in
  let deadlocks = ref 0 in
  for _ = 1 to 50 do
    match (Runtime.run rng sys).Runtime.outcome with
    | Runtime.Deadlock _ -> incr deadlocks
    | Runtime.Finished _ -> ()
  done;
  check bool_t "plain runtime reliably deadlocks (>= 45/50)" true
    (!deadlocks >= 45);
  (* ... and the Timeout scheme commits 100% of them. *)
  let rng = Fixtures.rng 32 in
  let stats = Recovery.batch ~scheme:Recovery.default_timeout rng sys ~runs:50 in
  check int_t "100% commit rate" 0 stats.Recovery.timeouts;
  check int_t "traces legal" 0 stats.Recovery.illegal_traces;
  check int_t "traces serializable" 0 stats.Recovery.non_serializable_traces;
  check bool_t "timeouts actually fired" true (stats.Recovery.total_aborts > 0)

let test_timeout_quiet_when_conflict_free () =
  let db = Db.one_site_per_entity [ "a"; "b"; "c" ] in
  let sys =
    System.create
      [
        Builder.two_phase_chain db [ "a" ];
        Builder.two_phase_chain db [ "b" ];
        Builder.two_phase_chain db [ "c" ];
      ]
  in
  let rng = Fixtures.rng 33 in
  let stats = Recovery.batch ~scheme:Recovery.default_timeout rng sys ~runs:30 in
  check int_t "zero aborts" 0 stats.Recovery.total_aborts;
  check int_t "zero timeouts" 0 stats.Recovery.timeouts

(* ------------------------------------------------------------------ *)
(* Deterministic replay: seed + plan ⇒ byte-identical trace             *)
(* ------------------------------------------------------------------ *)

let test_deterministic_replay () =
  let sys = Ddlock_workload.Gentx.dining_philosophers 4 in
  let plan =
    Faults.random (Fixtures.rng 41) (System.db sys) ~intensity:0.8
      ~horizon:30.0
  in
  let a = Runtime.run ~faults:plan (Fixtures.rng 42) sys in
  let b = Runtime.run ~faults:plan (Fixtures.rng 42) sys in
  check bool_t "runtime traces identical" true
    (a.Runtime.trace = b.Runtime.trace && a.Runtime.outcome = b.Runtime.outcome);
  List.iter
    (fun (name, scheme) ->
      let r1 = Recovery.run ~scheme ~faults:plan (Fixtures.rng 43) sys in
      let r2 = Recovery.run ~scheme ~faults:plan (Fixtures.rng 43) sys in
      check bool_t (name ^ ": replay identical") true
        (r1.Recovery.committed_trace = r2.Recovery.committed_trace
        && r1.Recovery.stats = r2.Recovery.stats
        && r1.Recovery.aborts_by_txn = r2.Recovery.aborts_by_txn))
    Chaos.default_schemes;
  let names = "catalog" :: List.init 3 (fun i -> "row" ^ string_of_int i) in
  let db = Db.one_site_per_entity names in
  let catalog = Db.find_entity_exn db "catalog" in
  let mk i =
    let row = Db.find_entity_exn db ("row" ^ string_of_int i) in
    match
      Ddlock_rw.Rw_txn.of_total_order db
        [
          {
            Ddlock_rw.Rw_txn.entity = catalog;
            op = Ddlock_rw.Rw_txn.Lock Ddlock_rw.Rw_txn.Read;
          };
          {
            Ddlock_rw.Rw_txn.entity = row;
            op = Ddlock_rw.Rw_txn.Lock Ddlock_rw.Rw_txn.Write;
          };
          { Ddlock_rw.Rw_txn.entity = catalog; op = Ddlock_rw.Rw_txn.Unlock };
          { Ddlock_rw.Rw_txn.entity = row; op = Ddlock_rw.Rw_txn.Unlock };
        ]
    with
    | Ok t -> t
    | Error _ -> assert false
  in
  let rwsys = Ddlock_rw.Rw_system.create (List.init 3 mk) in
  let plan =
    Faults.random (Fixtures.rng 44)
      (Ddlock_rw.Rw_system.db rwsys)
      ~intensity:0.8 ~horizon:30.0
  in
  let a = Ddlock_rw.Rw_runtime.run ~faults:plan (Fixtures.rng 45) rwsys in
  let b = Ddlock_rw.Rw_runtime.run ~faults:plan (Fixtures.rng 45) rwsys in
  check bool_t "rw traces identical" true
    (a.Ddlock_rw.Rw_runtime.trace = b.Ddlock_rw.Rw_runtime.trace)

let test_empty_plan_is_identity () =
  (* The fault layer must be invisible when no plan is given: same seed,
     byte-identical trace with and without [~faults:Faults.none]. *)
  let sys = Ddlock_workload.Gentx.dining_philosophers 4 in
  let a = Runtime.run (Fixtures.rng 51) sys in
  let b = Runtime.run ~faults:Faults.none (Fixtures.rng 51) sys in
  check bool_t "runtime identical" true (a.Runtime.trace = b.Runtime.trace);
  let r1 = Recovery.run ~scheme:Recovery.Wound_wait (Fixtures.rng 52) sys in
  let r2 =
    Recovery.run ~scheme:Recovery.Wound_wait ~faults:Faults.none
      (Fixtures.rng 52) sys
  in
  check bool_t "recovery identical" true
    (r1.Recovery.committed_trace = r2.Recovery.committed_trace
    && r1.Recovery.stats = r2.Recovery.stats)

(* ------------------------------------------------------------------ *)
(* Per-transaction abort accounting and starvation visibility           *)
(* ------------------------------------------------------------------ *)

let test_abort_counts_sum () =
  let sys = Ddlock_workload.Gentx.dining_philosophers 4 in
  let r = Recovery.run ~scheme:Recovery.Wound_wait (Fixtures.rng 61) sys in
  check int_t "per-txn counts sum to aggregate" r.Recovery.stats.Recovery.aborts
    (Array.fold_left ( + ) 0 r.Recovery.aborts_by_txn)

let test_no_starvation_on_philosophers () =
  (* Wait-die and wound-wait keep timestamps across restarts, so no
     single transaction can rack up unbounded aborts: the worst per-txn
     abort count over 60 contended runs stays small. *)
  let sys = Ddlock_workload.Gentx.dining_philosophers 4 in
  List.iter
    (fun (name, scheme) ->
      let rng = Fixtures.rng 62 in
      let stats = Recovery.batch ~scheme rng sys ~runs:60 in
      check bool_t (name ^ ": some aborts") true (stats.Recovery.total_aborts > 0);
      check bool_t
        (name ^ ": max per-txn aborts bounded")
        true
        (stats.Recovery.max_aborts_single_txn <= 25);
      check bool_t
        (name ^ ": max <= total")
        true
        (stats.Recovery.max_aborts_single_txn <= stats.Recovery.total_aborts))
    [ ("wait-die", Recovery.Wait_die); ("wound-wait", Recovery.Wound_wait) ]

(* ------------------------------------------------------------------ *)
(* Crash and message-fault semantics                                    *)
(* ------------------------------------------------------------------ *)

let test_crash_drops_locks_and_recovers () =
  let sys = Ddlock_workload.Gentx.dining_philosophers 4 in
  let plan =
    {
      Faults.none with
      Faults.crashes =
        [
          { Faults.site = 0; from_t = 2.0; until_t = 8.0 };
          { Faults.site = 1; from_t = 5.0; until_t = 9.0 };
        ];
      horizon = 10.0;
    }
  in
  List.iter
    (fun (name, scheme) ->
      let r = Recovery.run ~scheme ~faults:plan (Fixtures.rng 71) sys in
      check bool_t (name ^ ": commits all") true
        (not r.Recovery.stats.Recovery.timed_out);
      check bool_t (name ^ ": trace legal") true
        (Schedule.is_complete sys r.Recovery.committed_trace);
      check bool_t (name ^ ": trace serializable") true
        (Dgraph.is_serializable sys r.Recovery.committed_trace))
    Chaos.default_schemes

let test_message_faults_preserve_safe_pair () =
  (* Heavy loss and duplication only delay a safe&DF system: it still
     finishes with a legal serializable trace and never deadlocks. *)
  let db = Db.one_site_per_entity [ "a"; "b" ] in
  let sys =
    System.create
      [
        Builder.two_phase_chain db [ "a"; "b" ];
        Builder.two_phase_chain db [ "a"; "b" ];
      ]
  in
  let plan =
    { Faults.none with Faults.loss = 0.5; dup = 0.5; horizon = 60.0; seed = 7 }
  in
  for i = 1 to 20 do
    let r = Runtime.run ~faults:plan (Fixtures.rng (80 + i)) sys in
    match r.Runtime.outcome with
    | Runtime.Deadlock _ -> Alcotest.fail "safe pair deadlocked under faults"
    | Runtime.Finished _ ->
        let s = Runtime.schedule_of_run r in
        check bool_t "complete" true (Schedule.is_complete sys s);
        check bool_t "serializable" true (Dgraph.is_serializable sys s)
  done

let test_rw_faults_preserve_serializability () =
  let names = "catalog" :: List.init 4 (fun i -> "row" ^ string_of_int i) in
  let db = Db.one_site_per_entity names in
  let catalog = Db.find_entity_exn db "catalog" in
  let mk i =
    let row = Db.find_entity_exn db ("row" ^ string_of_int i) in
    match
      Ddlock_rw.Rw_txn.of_total_order db
        [
          {
            Ddlock_rw.Rw_txn.entity = catalog;
            op = Ddlock_rw.Rw_txn.Lock Ddlock_rw.Rw_txn.Read;
          };
          {
            Ddlock_rw.Rw_txn.entity = row;
            op = Ddlock_rw.Rw_txn.Lock Ddlock_rw.Rw_txn.Write;
          };
          { Ddlock_rw.Rw_txn.entity = catalog; op = Ddlock_rw.Rw_txn.Unlock };
          { Ddlock_rw.Rw_txn.entity = row; op = Ddlock_rw.Rw_txn.Unlock };
        ]
    with
    | Ok t -> t
    | Error _ -> assert false
  in
  let rwsys = Ddlock_rw.Rw_system.create (List.init 4 mk) in
  let plan =
    { Faults.none with Faults.loss = 0.4; dup = 0.4; horizon = 60.0; seed = 9 }
  in
  let rng = Fixtures.rng 91 in
  for _ = 1 to 20 do
    let r = Ddlock_rw.Rw_runtime.run ~faults:plan rng rwsys in
    match r.Ddlock_rw.Rw_runtime.outcome with
    | Ddlock_rw.Rw_runtime.Deadlock _ ->
        Alcotest.fail "reader workload deadlocked under faults"
    | Ddlock_rw.Rw_runtime.Finished _ ->
        check bool_t "conflict serializable" true
          (Ddlock_rw.Rw_system.is_conflict_serializable rwsys
             r.Ddlock_rw.Rw_runtime.trace)
  done

(* ------------------------------------------------------------------ *)
(* Fault-plan generator sanity                                          *)
(* ------------------------------------------------------------------ *)

let test_random_plan_shapes () =
  let db = Db.one_site_per_entity [ "a"; "b"; "c" ] in
  let st = Fixtures.rng 99 in
  for _ = 1 to 100 do
    let p = Faults.random st db ~intensity:1.0 ~horizon:40.0 in
    check bool_t "loss < 1" true (p.Faults.loss < 1.0);
    check bool_t "dup < 1" true (p.Faults.dup < 1.0);
    List.iter
      (fun (w : Faults.window) ->
        check bool_t "window well-formed" true (w.Faults.from_t < w.Faults.until_t);
        check bool_t "site in range" true
          (w.Faults.site >= 0 && w.Faults.site < Db.site_count db))
      (p.Faults.crashes @ p.Faults.stalls)
  done;
  let p0 = Faults.random st db ~intensity:0.0 ~horizon:40.0 in
  check bool_t "zero intensity is fault-free" true (Faults.is_none p0)

let chaos_invariants_prop =
  QCheck.Test.make
    ~name:"chaos invariants hold on random systems under random fault plans"
    ~count:25
    QCheck.(int_bound 10_000_000)
    (fun seed ->
      let st = Fixtures.rng seed in
      let sys = Fixtures.small_random_system st ~txns:3 in
      let plan =
        Faults.random st (System.db sys)
          ~intensity:(Random.State.float st 0.8)
          ~horizon:30.0
      in
      List.for_all
        (fun (_, scheme) ->
          let vs, _ = Chaos.run_case ~scheme ~faults:plan st sys in
          vs = [])
        Chaos.default_schemes)

let qtests = List.map Fixtures.to_alcotest [ chaos_invariants_prop ]

let suite =
  [
    Alcotest.test_case "chaos sweep: 1000+ runs, zero violations" `Quick
      test_chaos_sweep;
    Alcotest.test_case "timeout resolves reliable deadlock" `Quick
      test_timeout_resolves_reliable_deadlock;
    Alcotest.test_case "timeout quiet when conflict-free" `Quick
      test_timeout_quiet_when_conflict_free;
    Alcotest.test_case "deterministic replay under faults" `Quick
      test_deterministic_replay;
    Alcotest.test_case "empty plan is identity" `Quick
      test_empty_plan_is_identity;
    Alcotest.test_case "per-txn abort counts sum" `Quick test_abort_counts_sum;
    Alcotest.test_case "no starvation on philosophers" `Quick
      test_no_starvation_on_philosophers;
    Alcotest.test_case "crash drops locks, schemes recover" `Quick
      test_crash_drops_locks_and_recovers;
    Alcotest.test_case "message faults preserve safe pair" `Quick
      test_message_faults_preserve_safe_pair;
    Alcotest.test_case "rw faults preserve serializability" `Quick
      test_rw_faults_preserve_serializability;
    Alcotest.test_case "random plan shapes" `Quick test_random_plan_shapes;
  ]
  @ qtests
