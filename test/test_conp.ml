open Ddlock_model
open Ddlock_schedule
open Ddlock_conp

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* ------------------------------------------------------------------ *)
(* Formulas                                                            *)
(* ------------------------------------------------------------------ *)

let test_formula_shape () =
  check bool_t "paper example is 3SAT'" true
    (Formula.is_3sat' Gen3sat.paper_example);
  check bool_t "tiny unsat is 3SAT'" true (Formula.is_3sat' Gen3sat.tiny_unsat);
  let bad = Formula.of_dimacs 1 [ [ 1 ]; [ 1 ] ] in
  check bool_t "wrong occurrence counts rejected" false (Formula.is_3sat' bad);
  let long = Formula.of_dimacs 2 [ [ 1; 1; 2; 2 ]; [ -1; -2 ] ] in
  check bool_t "long clause rejected" false (Formula.is_3sat' long)

let test_occurrences () =
  let h, k, l = Formula.occurrences Gen3sat.paper_example 0 in
  check (Alcotest.triple int_t int_t int_t) "x0" (0, 1, 2) (h, k, l);
  let h, k, l = Formula.occurrences Gen3sat.paper_example 1 in
  check (Alcotest.triple int_t int_t int_t) "x1" (0, 2, 1) (h, k, l)

let gen3sat_shape_prop =
  QCheck.Test.make ~name:"generator output is 3SAT'" ~count:100
    QCheck.(pair (int_bound 1_000_000) (int_range 3 8))
    (fun (seed, n) ->
      let st = Fixtures.rng seed in
      Formula.is_3sat' (Gen3sat.generate st ~n_vars:n))

(* ------------------------------------------------------------------ *)
(* DPLL                                                                *)
(* ------------------------------------------------------------------ *)

let random_cnf st ~n_vars ~n_clauses =
  Formula.
    {
      n_vars;
      clauses =
        List.init n_clauses (fun _ ->
            List.init
              (1 + Random.State.int st 3)
              (fun _ ->
                let v = Random.State.int st n_vars in
                if Random.State.bool st then Pos v else Neg v));
    }

let dpll_vs_brute_prop =
  QCheck.Test.make ~name:"DPLL = brute force on random CNFs" ~count:300
    QCheck.(int_bound 10_000_000)
    (fun seed ->
      let st = Fixtures.rng seed in
      let f =
        random_cnf st
          ~n_vars:(1 + Random.State.int st 6)
          ~n_clauses:(Random.State.int st 10)
      in
      Dpll.satisfiable f = Dpll.satisfiable_brute f)

let dpll_model_valid_prop =
  QCheck.Test.make ~name:"DPLL models satisfy the formula" ~count:300
    QCheck.(int_bound 10_000_000)
    (fun seed ->
      let st = Fixtures.rng seed in
      let f =
        random_cnf st
          ~n_vars:(1 + Random.State.int st 6)
          ~n_clauses:(Random.State.int st 10)
      in
      match Dpll.solve f with
      | None -> true
      | Some m -> Formula.satisfies m f)

let test_dpll_known () =
  check bool_t "paper example sat" true (Dpll.satisfiable Gen3sat.paper_example);
  check bool_t "tiny unsat" false (Dpll.satisfiable Gen3sat.tiny_unsat);
  check int_t "paper example models" 1 (Dpll.count_models Gen3sat.paper_example)

(* ------------------------------------------------------------------ *)
(* The Theorem 2 reduction                                             *)
(* ------------------------------------------------------------------ *)

let test_build_shape () =
  let r = Reduction_sat.build Gen3sat.paper_example in
  (* 3 clauses, 2 variables: entities = 2*3 + 3*2 = 12, nodes = 24. *)
  check int_t "entities" 12 (Db.entity_count r.Reduction_sat.db);
  check int_t "t1 nodes" 24 (Transaction.node_count r.Reduction_sat.t1);
  check int_t "t2 nodes" 24 (Transaction.node_count r.Reduction_sat.t2);
  (* One site per entity — the construction needs unboundedly many sites. *)
  check int_t "sites" 12 (Db.site_count r.Reduction_sat.db);
  (* Every entity is accessed by both transactions. *)
  check int_t "t1 accesses all" 12
    (List.length (Transaction.entities r.Reduction_sat.t1));
  check int_t "t2 accesses all" 12
    (List.length (Transaction.entities r.Reduction_sat.t2))

let test_paper_example_witness () =
  let r = Reduction_sat.build Gen3sat.paper_example in
  match Dpll.solve Gen3sat.paper_example with
  | None -> Alcotest.fail "paper example is satisfiable"
  | Some model -> (
      match Reduction_sat.deadlock_witness r model with
      | None -> Alcotest.fail "expected a deadlock witness"
      | Some (steps, cycle) ->
          check bool_t "schedule legal" true
            (Schedule.is_legal r.Reduction_sat.sys steps);
          check bool_t "cycle nonempty" true (cycle <> []);
          (* Soundness of the extraction: the cycle's assignment satisfies
             the formula. *)
          let a = Reduction_sat.assignment_of_cycle r cycle in
          check bool_t "extracted assignment satisfies" true
            (Formula.satisfies a Gen3sat.paper_example))

(* The constructive direction on random satisfiable 3SAT' instances:
   model -> deadlock prefix (legal schedule + cyclic reduction graph),
   and cycle -> satisfying assignment.  All checks are polynomial. *)
let reduction_soundness_prop =
  QCheck.Test.make
    ~name:"Theorem 2: model ⇒ deadlock prefix ⇒ model (random 3SAT')"
    ~count:60
    QCheck.(pair (int_bound 10_000_000) (int_range 3 7))
    (fun (seed, n) ->
      let st = Fixtures.rng seed in
      let f = Gen3sat.generate st ~n_vars:n in
      match Dpll.solve f with
      | None -> QCheck.assume_fail ()
      | Some model -> (
          let r = Reduction_sat.build f in
          match Reduction_sat.deadlock_witness r model with
          | None -> false
          | Some (steps, cycle) ->
              Schedule.is_legal r.Reduction_sat.sys steps
              && Formula.satisfies
                   (Reduction_sat.assignment_of_cycle r cycle)
                   f))

(* The prefix built from a model consists of locks only, with disjoint
   entity sets between the two prefixes (the paper's argument for "any
   ordering is a schedule"). *)
let prefix_shape_prop =
  QCheck.Test.make ~name:"canonical prefix: locks only, disjoint entities"
    ~count:60
    QCheck.(pair (int_bound 10_000_000) (int_range 3 7))
    (fun (seed, n) ->
      let st = Fixtures.rng seed in
      let f = Gen3sat.generate st ~n_vars:n in
      match Dpll.solve f with
      | None -> QCheck.assume_fail ()
      | Some model ->
          let r = Reduction_sat.build f in
          let p = Reduction_sat.prefix_of_assignment r model in
          let sys = r.Reduction_sat.sys in
          let locks_only i =
            Ddlock_graph.Bitset.for_all
              (fun v ->
                (Transaction.node (System.txn sys i) v).Node.op = Node.Lock)
              p.(i)
          in
          let held i = Transaction.held_in_prefix (System.txn sys i) p.(i) in
          locks_only 0 && locks_only 1
          && Ddlock_graph.Bitset.disjoint (held 0) (held 1)
          && State.is_valid sys p)

(* Statistical check of the unsat direction: the system built from an
   unsatisfiable formula should never deadlock under random execution.
   (Exhaustive search is exactly the coNP-hard problem.) *)
let test_unsat_never_deadlocks_statistically () =
  let r = Reduction_sat.build Gen3sat.tiny_unsat in
  let st = Fixtures.rng 7 in
  for _ = 1 to 500 do
    match Explore.random_run st r.Reduction_sat.sys with
    | Explore.Completed _ -> ()
    | Explore.Deadlocked _ ->
        Alcotest.fail "unsat reduction system deadlocked"
  done

(* And the mirrored statistical check: for a satisfiable formula the
   canonical deadlock prefix IS reachable by ordinary execution — replay
   its schedule, then confirm the state cannot complete. *)
let test_sat_prefix_cannot_complete () =
  let r = Reduction_sat.build Gen3sat.paper_example in
  let model = Option.get (Dpll.solve Gen3sat.paper_example) in
  let steps, _ = Option.get (Reduction_sat.deadlock_witness r model) in
  let sys = r.Reduction_sat.sys in
  let st = Schedule.to_state sys steps in
  (* From this state, every random continuation must eventually get stuck
     (the reduction graph is cyclic, so completion is impossible). *)
  let rng = Fixtures.rng 11 in
  for _ = 1 to 50 do
    let rec run state =
      match State.enabled sys state with
      | [] -> check bool_t "stuck, not finished" false (State.all_finished sys state)
      | steps ->
          let s = List.nth steps (Random.State.int rng (List.length steps)) in
          run (State.apply state s)
    in
    run st
  done

(* ------------------------------------------------------------------ *)
(* Normalization: general CNF -> 3SAT'                                 *)
(* ------------------------------------------------------------------ *)

let random_general_cnf st ~n_vars ~n_clauses ~max_len =
  Formula.
    {
      n_vars;
      clauses =
        List.init n_clauses (fun _ ->
            List.init
              (Random.State.int st (max_len + 1))
              (fun _ ->
                let v = Random.State.int st n_vars in
                if Random.State.bool st then Pos v else Neg v));
    }

let normalize_shape_prop =
  QCheck.Test.make ~name:"normalize output is 3SAT'" ~count:150
    QCheck.(int_bound 10_000_000)
    (fun seed ->
      let st = Fixtures.rng seed in
      let f =
        random_general_cnf st
          ~n_vars:(1 + Random.State.int st 5)
          ~n_clauses:(Random.State.int st 8)
          ~max_len:5
      in
      Formula.is_3sat' (Normalize.normalize f).Normalize.formula)

let normalize_equisat_prop =
  QCheck.Test.make ~name:"normalize preserves satisfiability + models map back"
    ~count:150
    QCheck.(int_bound 10_000_000)
    (fun seed ->
      let st = Fixtures.rng seed in
      let f =
        random_general_cnf st
          ~n_vars:(1 + Random.State.int st 4)
          ~n_clauses:(Random.State.int st 7)
          ~max_len:5
      in
      let nz = Normalize.normalize f in
      match (Dpll.solve f, Dpll.solve nz.Normalize.formula) with
      | None, None -> true
      | Some _, Some m -> Formula.satisfies (nz.Normalize.back m) f
      | Some _, None | None, Some _ -> false)

let test_normalize_empty_clause () =
  let f = Formula.{ n_vars = 1; clauses = [ []; [ Pos 0 ] ] } in
  let nz = Normalize.normalize f in
  check bool_t "shape" true (Formula.is_3sat' nz.Normalize.formula);
  check bool_t "unsat" false (Dpll.satisfiable nz.Normalize.formula)

let test_normalize_long_clause () =
  let f =
    Formula.{ n_vars = 6; clauses = [ [ Pos 0; Neg 1; Pos 2; Neg 3; Pos 4; Neg 5 ] ] }
  in
  let nz = Normalize.normalize f in
  check bool_t "shape" true (Formula.is_3sat' nz.Normalize.formula);
  check bool_t "sat" true (Dpll.satisfiable nz.Normalize.formula)

let test_dimacs () =
  let src = "c a comment
p cnf 3 2
1 -2 0
2 3 -1 0
" in
  (match Normalize.parse_dimacs src with
  | Ok f ->
      check int_t "vars" 3 f.Formula.n_vars;
      check int_t "clauses" 2 (List.length f.Formula.clauses);
      check bool_t "first clause" true
        (List.hd f.Formula.clauses = Formula.[ Pos 0; Neg 1 ])
  | Error e -> Alcotest.failf "parse failed: %s" e);
  (match Normalize.parse_dimacs "1 2 0" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "clause before p line must fail");
  match Normalize.parse_dimacs "p cnf 1 1
5 0" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "out-of-range literal must fail"

(* End-to-end: arbitrary CNF -> 3SAT' -> Theorem-2 gadget round trip. *)
let normalize_gadget_roundtrip_prop =
  QCheck.Test.make
    ~name:"general CNF through normalize + Theorem 2 gadget" ~count:30
    QCheck.(int_bound 10_000_000)
    (fun seed ->
      let st = Fixtures.rng seed in
      let f =
        random_general_cnf st
          ~n_vars:(1 + Random.State.int st 3)
          ~n_clauses:(1 + Random.State.int st 4)
          ~max_len:4
      in
      let nz = Normalize.normalize f in
      match Dpll.solve nz.Normalize.formula with
      | None -> Dpll.solve f = None
      | Some model -> (
          let r = Reduction_sat.build nz.Normalize.formula in
          match Reduction_sat.deadlock_witness r model with
          | None -> false
          | Some (steps, cycle) ->
              Ddlock_schedule.Schedule.is_legal r.Reduction_sat.sys steps
              && Formula.satisfies
                   (Reduction_sat.assignment_of_cycle r cycle)
                   nz.Normalize.formula))

let qtests =
  List.map Fixtures.to_alcotest
    [
      normalize_shape_prop;
      normalize_equisat_prop;
      normalize_gadget_roundtrip_prop;
      gen3sat_shape_prop;
      dpll_vs_brute_prop;
      dpll_model_valid_prop;
      reduction_soundness_prop;
      prefix_shape_prop;
    ]

let suite =
  [
    Alcotest.test_case "formula shape" `Quick test_formula_shape;
    Alcotest.test_case "occurrences" `Quick test_occurrences;
    Alcotest.test_case "dpll known" `Quick test_dpll_known;
    Alcotest.test_case "reduction shape" `Quick test_build_shape;
    Alcotest.test_case "paper example witness" `Quick
      test_paper_example_witness;
    Alcotest.test_case "unsat: no deadlock (statistical)" `Quick
      test_unsat_never_deadlocks_statistically;
    Alcotest.test_case "sat: prefix cannot complete" `Quick
      test_sat_prefix_cannot_complete;
    Alcotest.test_case "normalize: empty clause" `Quick
      test_normalize_empty_clause;
    Alcotest.test_case "normalize: long clause" `Quick
      test_normalize_long_clause;
    Alcotest.test_case "dimacs" `Quick test_dimacs;
  ]
  @ qtests
