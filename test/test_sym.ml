(* Differential conformance battery for symmetry reduction: every
   observable of the orbit-canonicalized engines (Sched.Canon threaded
   through Explore / Par_explore / Prefix_search / Analysis / Minimize)
   must agree with the plain ground truth — verdicts, witness validity,
   state-count bounds, cap accounting, counter totals — for seq and par
   alike, plus the permutation-soundness contracts of Canon itself. *)

open Ddlock_model
open Ddlock_schedule
module Par = Ddlock_par.Par_explore
module Prefix_search = Ddlock_deadlock.Prefix_search
module Reduction = Ddlock_deadlock.Reduction
module Gentx = Ddlock_workload.Gentx

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let fig2ish () = System.copies (Gentx.guard_ring 4) 2
let phil3 () = Gentx.dining_philosophers 3

let eight_state_sys () =
  let db = Db.one_site_per_entity [ "a" ] in
  let t = Builder.two_phase_chain db [ "a" ] in
  System.create [ t; Builder.two_phase_chain db [ "a" ] ]

(* A witness of the symmetric search must be a genuine schedule of the
   ORIGINAL system deadlocking at exactly the returned state. *)
let witness_valid sys (sched, stf) =
  Schedule.is_legal sys sched
  && State.equal (Schedule.prefix_vector sys sched) stf
  && State.is_deadlock sys stf

(* Distinct reachable states sampled along one random run. *)
let states_of_run st sys =
  let steps =
    match Explore.random_run st sys with
    | Explore.Completed s | Explore.Deadlocked (s, _) -> s
  in
  let sts, _ =
    List.fold_left
      (fun (acc, cur) step ->
        let nxt = State.apply cur step in
        (nxt :: acc, nxt))
      ([ State.initial sys ], State.initial sys)
      steps
  in
  sts

(* ------------------------------------------------------------------ *)
(* Unit: Canon group detection                                         *)
(* ------------------------------------------------------------------ *)

let test_detect () =
  let c = Canon.detect (fig2ish ()) in
  check bool_t "copies are interchangeable" true (Canon.nontrivial c);
  check int_t "orbit 2!" 2 (Canon.orbit_size c);
  check bool_t "one class {0,1}" true (Canon.groups c = [ [ 0; 1 ] ]);
  let c3 = Canon.detect (System.copies (Gentx.guard_ring 3) 3) in
  check int_t "orbit 3!" 6 (Canon.orbit_size c3);
  (* Philosophers lock DIFFERENT forks: pairwise distinct, trivial group. *)
  let cp = Canon.detect (phil3 ()) in
  check bool_t "philosophers asymmetric" false (Canon.nontrivial cp);
  check int_t "trivial orbit" 1 (Canon.orbit_size cp);
  check bool_t "all classes singletons" true
    (List.for_all (fun g -> List.length g = 1) (Canon.groups cp));
  (* Mixed: 2 copies + 1 distinct transaction → one pair, one singleton. *)
  let db = Db.one_site_per_entity [ "a"; "b" ] in
  let t = Builder.two_phase_chain db [ "a"; "b" ] in
  let lone = Builder.two_phase_chain db [ "b"; "a" ] in
  let c = Canon.detect (System.create [ t; Builder.two_phase_chain db [ "a"; "b" ]; lone ]) in
  check bool_t "mixed classes" true (Canon.groups c = [ [ 0; 1 ]; [ 2 ] ]);
  check int_t "mixed orbit" 2 (Canon.orbit_size c)

let test_trivial_fallback () =
  (* With a trivial group the symmetric engines must be BIT-identical to
     the plain ones (they fall back, no canonicalization overhead). *)
  let sys = phil3 () in
  check bool_t "witness identical" true
    (Explore.find_deadlock ~symmetry:true sys = Explore.find_deadlock sys);
  check int_t "count identical"
    (Explore.state_count (Explore.explore sys))
    (Explore.state_count (Explore.explore ~symmetry:true sys))

(* ------------------------------------------------------------------ *)
(* Unit: exact cap accounting under symmetry (satellite regression)    *)
(* ------------------------------------------------------------------ *)

let test_sym_exact_cap () =
  (* 2 copies of Lock a; Unlock a: 8 raw states in 5 orbits.  A pruned
     orbit member is deduped BEFORE the budget check, so it never counts
     against max_states: the symmetric budget boundary sits at 5/4, the
     plain one at 8/7. *)
  let sys = eight_state_sys () in
  check int_t "plain fits at 8" 8
    (Explore.state_count (Explore.explore ~max_states:8 sys));
  (match Explore.explore ~max_states:7 sys with
  | exception Explore.Too_large n -> check int_t "plain held at raise" 7 n
  | _ -> Alcotest.fail "expected Too_large");
  check int_t "sym fits at 5" 5
    (Explore.state_count (Explore.explore ~max_states:5 ~symmetry:true sys));
  (match Explore.explore ~max_states:4 ~symmetry:true sys with
  | exception Explore.Too_large n -> check int_t "sym held at raise" 4 n
  | _ -> Alcotest.fail "expected Too_large");
  (* Same exact boundary on the parallel engine, at any jobs. *)
  List.iter
    (fun jobs ->
      check int_t
        (Printf.sprintf "par sym fits at 5 (jobs=%d)" jobs)
        5
        (Par.state_count (Par.explore ~max_states:5 ~symmetry:true ~jobs sys));
      match Par.explore ~max_states:4 ~symmetry:true ~jobs sys with
      | exception Explore.Too_large n ->
          check int_t "par sym held at raise" 4 n
      | _ -> Alcotest.fail "expected Too_large")
    [ 2; 3; 4 ]

(* ------------------------------------------------------------------ *)
(* Unit: schedule_to reaches arbitrary orbit members                   *)
(* ------------------------------------------------------------------ *)

let test_sym_schedule_to () =
  (* The symmetric space stores only representatives, but schedule_to
     must reach EVERY raw reachable state, via realize_to. *)
  let sys = fig2ish () in
  let sym = Explore.explore ~symmetry:true sys in
  Seq.iter
    (fun st ->
      check bool_t "reachable in quotient" true (Explore.is_reachable sym st);
      match Explore.schedule_to sym st with
      | None -> Alcotest.fail "schedule_to must succeed"
      | Some steps ->
          check bool_t "legal" true (Schedule.is_legal sys steps);
          check bool_t "reaches the exact state" true
            (State.equal (Schedule.prefix_vector sys steps) st))
    (Explore.states (Explore.explore sys))

(* ------------------------------------------------------------------ *)
(* Unit: guard-ring edge cases (generator satellite)                   *)
(* ------------------------------------------------------------------ *)

let test_guard_ring_edges () =
  (match Gentx.guard_ring 1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "guard_ring 1 must be rejected");
  (* k=2, the smallest ring: 2 entities, 4 nodes, 7 order ideals; two
     copies deadlock (even ring) and symmetry halves nothing at the
     verdict level. *)
  let t = Gentx.guard_ring 2 in
  check int_t "2 entities" 2 (List.length (Transaction.entities t));
  check int_t "4 nodes" 4 (Transaction.node_count t);
  check int_t "7 ideals" 7
    (Explore.state_count (Explore.explore (System.create [ t ])));
  let sys = System.copies t 2 in
  check bool_t "2 copies of 2-ring deadlock" false (Explore.deadlock_free sys);
  check bool_t "symmetric verdict agrees" false
    (Explore.deadlock_free ~symmetry:true sys);
  match Explore.find_deadlock ~symmetry:true sys with
  | None -> Alcotest.fail "expected witness"
  | Some w -> check bool_t "witness valid" true (witness_valid sys w)

(* ------------------------------------------------------------------ *)
(* Properties: Canon's own contracts                                   *)
(* ------------------------------------------------------------------ *)

let copies_arg =
  QCheck.(triple (int_bound 1_000_000) (int_range 2 3) bool)

let canon_perm_soundness_prop =
  QCheck.Test.make
    ~name:"canon (σ·s) = canon s for every group element σ" ~count:60
    copies_arg
    (fun (seed, copies, extra) ->
      let st = Fixtures.rng seed in
      let sys = Gentx.random_copies_system ~extra st ~copies in
      let c = Canon.detect sys in
      List.for_all
        (fun s ->
          let sigma = Canon.random_group_perm st c in
          Canon.canon_key c (Canon.apply_perm sigma s) = Canon.canon_key c s)
        (states_of_run st sys))

let normalize_soundness_prop =
  QCheck.Test.make
    ~name:"normalize: rep = π·s, idempotent, key-consistent" ~count:60
    copies_arg
    (fun (seed, copies, extra) ->
      let st = Fixtures.rng seed in
      let sys = Gentx.random_copies_system ~extra st ~copies in
      let c = Canon.detect sys in
      let identity = Array.init (System.size sys) Fun.id in
      List.for_all
        (fun s ->
          let rep, pi = Canon.normalize c s in
          State.equal rep (Canon.apply_perm pi s)
          && Canon.canon_key c s = State.key rep
          (* A representative is its own representative, via the
             identity (the tiebreak makes normalize stable). *)
          && snd (Canon.normalize c rep) = identity
          && State.equal (fst (Canon.normalize c rep)) rep)
        (states_of_run st sys))

(* ------------------------------------------------------------------ *)
(* Properties: reduced engine ≡ plain engine                           *)
(* ------------------------------------------------------------------ *)

let sym_verdict_copies_prop =
  QCheck.Test.make
    ~name:"sym verdict ≡ plain on identical-copy systems (+ witness valid)"
    ~count:50 copies_arg
    (fun (seed, copies, extra) ->
      let st = Fixtures.rng seed in
      let sys = Gentx.random_copies_system ~extra st ~copies in
      match (Explore.find_deadlock sys, Explore.find_deadlock ~symmetry:true sys)
      with
      | None, None -> true
      | Some _, Some w -> witness_valid sys w
      | _ -> false)

let sym_verdict_generic_prop =
  QCheck.Test.make
    ~name:"sym verdict ≡ plain on generic random systems" ~count:50
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let st = Fixtures.rng seed in
      let sys = Fixtures.small_random_system st ~txns:3 in
      match (Explore.find_deadlock sys, Explore.find_deadlock ~symmetry:true sys)
      with
      | None, None -> true
      | Some _, Some w -> witness_valid sys w
      | _ -> false)

let sym_state_bounds_prop =
  QCheck.Test.make
    ~name:"orbit quotient: sym ≤ raw ≤ sym·|G| and exact orbit partition"
    ~count:40 copies_arg
    (fun (seed, copies, extra) ->
      let st = Fixtures.rng seed in
      let sys = Gentx.random_copies_system ~extra st ~copies in
      let c = Canon.detect sys in
      let raw_space = Explore.explore sys in
      let sym_space = Explore.explore ~symmetry:true sys in
      let raw = Explore.state_count raw_space in
      let reduced = Explore.state_count sym_space in
      (* The stored canonical states are exactly the orbit
         representatives of the raw reachable set: same canonical key
         set, no more, no fewer. *)
      let raw_orbits =
        List.sort_uniq compare
          (List.of_seq (Seq.map (Canon.canon_key c) (Explore.states raw_space)))
      in
      let sym_keys =
        List.sort compare
          (List.of_seq (Seq.map State.key (Explore.states sym_space)))
      in
      reduced <= raw
      && raw <= reduced * Canon.orbit_size c
      && raw_orbits = sym_keys)

let sym_par_seq_prop =
  QCheck.Test.make
    ~name:"par symmetric ≡ seq symmetric (count + exact witness)" ~count:40
    QCheck.(pair copies_arg (int_range 1 4))
    (fun ((seed, copies, extra), jobs) ->
      let st = Fixtures.rng seed in
      let sys = Gentx.random_copies_system ~extra st ~copies in
      Par.state_count (Par.explore ~symmetry:true ~jobs sys)
      = Explore.state_count (Explore.explore ~symmetry:true sys)
      && Par.find_deadlock ~symmetry:true ~jobs sys
         = Explore.find_deadlock ~symmetry:true sys)

let sym_prefix_search_prop =
  QCheck.Test.make
    ~name:"prefix search: sym verdict ≡ plain, witness valid, jobs-invariant"
    ~count:30
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let st = Fixtures.rng seed in
      let sys = Gentx.random_copies_system st ~copies:2 ~extra:true in
      let plain = Prefix_search.find sys in
      let sym = Prefix_search.find ~symmetry:true sys in
      Option.is_none plain = Option.is_none sym
      && (match sym with
         | None -> true
         | Some w ->
             Schedule.is_legal sys w.Prefix_search.schedule
             && State.equal
                  (Schedule.prefix_vector sys w.Prefix_search.schedule)
                  w.Prefix_search.prefix
             && Reduction.has_cycle (Reduction.make sys w.Prefix_search.prefix))
      && Prefix_search.find ~symmetry:true ~jobs:4 sys = sym
      && Prefix_search.deadlock_free ~symmetry:true sys
         = Prefix_search.deadlock_free sys)

let sym_prefix_all_prop =
  QCheck.Test.make
    ~name:"prefix search `all`: one representative per deadlock-prefix orbit"
    ~count:30 copies_arg
    (fun (seed, copies, extra) ->
      let st = Fixtures.rng seed in
      let sys = Gentx.random_copies_system ~extra st ~copies in
      let c = Canon.detect sys in
      let plain_orbits =
        List.sort_uniq compare
          (List.map (Canon.canon_key c) (List.of_seq (Prefix_search.all sys)))
      in
      let sym_keys =
        List.sort compare
          (List.map State.key
             (List.of_seq (Prefix_search.all ~symmetry:true sys)))
      in
      plain_orbits = sym_keys
      && sym_keys
         = List.sort compare
             (List.map State.key
                (List.of_seq (Prefix_search.all ~symmetry:true ~jobs:3 sys))))

let sym_cap_outcome_prop =
  QCheck.Test.make
    ~name:"sym cap outcome ≡ across jobs (exact Too_large)" ~count:40
    QCheck.(triple (int_bound 1_000_000) (int_range 2 4) (int_range 1 40))
    (fun (seed, jobs, max_states) ->
      let st = Fixtures.rng seed in
      let sys = Gentx.random_copies_system st ~copies:2 in
      let probe f =
        match f () with
        | Some w -> `Witness w
        | None -> `Deadlock_free
        | exception Explore.Too_large n -> `Too_large n
      in
      probe (fun () -> Explore.find_deadlock ~max_states ~symmetry:true sys)
      = probe (fun () ->
            Par.find_deadlock ~max_states ~symmetry:true ~jobs sys))

let sym_obs_counters_prop =
  QCheck.Test.make
    ~name:"canon.hits / states_visited totals are jobs-invariant" ~count:25
    QCheck.(pair (int_bound 1_000_000) (int_range 2 4))
    (fun (seed, jobs) ->
      let st = Fixtures.rng seed in
      let sys = Gentx.random_copies_system st ~copies:2 ~extra:true in
      let counters_after f =
        Ddlock_obs.Metrics.reset ();
        ignore (f ());
        ( Ddlock_obs.Metrics.counter_value "explore.states_visited",
          Ddlock_obs.Metrics.counter_value "canon.hits" )
      in
      Ddlock_obs.Control.on ();
      let seq =
        counters_after (fun () -> Explore.find_deadlock ~symmetry:true sys)
      in
      let par =
        counters_after (fun () ->
            Par.find_deadlock ~symmetry:true ~jobs sys)
      in
      Ddlock_obs.Control.off ();
      Ddlock_obs.Metrics.reset ();
      seq = par)

let sym_analysis_minimize_prop =
  QCheck.Test.make
    ~name:"Analysis verdict shape and Minimize core ≡ under symmetry"
    ~count:15
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let st = Fixtures.rng seed in
      let sys = Gentx.random_copies_system st ~copies:2 ~extra:true in
      let shape = function
        | Ddlock.Analysis.Deadlock_free -> 0
        | Ddlock.Analysis.Deadlocks _ -> 1
        | Ddlock.Analysis.Gave_up _ -> 2
      in
      shape (Ddlock.Analysis.deadlock_free ~symmetry:true sys)
      = shape (Ddlock.Analysis.deadlock_free sys)
      && (* The greedy shrink consults only verdicts, so the core is
            symmetry-invariant even though witnesses may differ. *)
      match
        (Ddlock.Minimize.deadlock_core sys,
         Ddlock.Minimize.deadlock_core ~symmetry:true sys)
      with
      | None, None -> true
      | Some a, Some b ->
          a.Ddlock.Minimize.kept_txns = b.Ddlock.Minimize.kept_txns
          && a.Ddlock.Minimize.dropped_entities
             = b.Ddlock.Minimize.dropped_entities
      | _ -> false)

let qtests =
  List.map Fixtures.to_alcotest
    [
      canon_perm_soundness_prop;
      normalize_soundness_prop;
      sym_verdict_copies_prop;
      sym_verdict_generic_prop;
      sym_state_bounds_prop;
      sym_par_seq_prop;
      sym_prefix_search_prop;
      sym_prefix_all_prop;
      sym_cap_outcome_prop;
      sym_obs_counters_prop;
      sym_analysis_minimize_prop;
    ]

let suite =
  [
    Alcotest.test_case "group detection" `Quick test_detect;
    Alcotest.test_case "trivial-symmetry fallback" `Quick test_trivial_fallback;
    Alcotest.test_case "exact cap under symmetry" `Quick test_sym_exact_cap;
    Alcotest.test_case "schedule_to any orbit member" `Quick
      test_sym_schedule_to;
    Alcotest.test_case "guard ring edge cases" `Quick test_guard_ring_edges;
  ]
  @ qtests
