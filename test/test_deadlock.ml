open Ddlock_model
open Ddlock_schedule
open Ddlock_deadlock

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* ------------------------------------------------------------------ *)
(* Fig. 1: the worked example of §3                                    *)
(* ------------------------------------------------------------------ *)

let test_fig1_prefix_is_deadlock_prefix () =
  let sys = Fixtures.fig1 () in
  let p = Fixtures.fig1_deadlock_prefix sys in
  check bool_t "valid prefix vector" true (State.is_valid sys p);
  let r = Reduction.make sys p in
  check bool_t "reduction graph cyclic" true (Reduction.has_cycle r);
  check bool_t "is deadlock prefix" true (Reduction.is_deadlock_prefix sys p);
  match Reduction.deadlock_prefix_witness sys p with
  | None -> Alcotest.fail "expected witness"
  | Some (sched, cycle) ->
      check bool_t "schedule legal" true (Schedule.is_legal sys sched);
      check bool_t "schedule realizes prefix" true
        (State.equal (Schedule.prefix_vector sys sched) p);
      (* The cycle must pass through all three transactions. *)
      let txs = List.sort_uniq compare (List.map (fun s -> s.Step.txn) cycle) in
      check (Alcotest.list int_t) "cycle spans T1 T2 T3" [ 0; 1; 2 ] txs

let test_fig1_deadlocks () =
  let sys = Fixtures.fig1 () in
  check bool_t "not deadlock free (schedules)" false (Explore.deadlock_free sys);
  check bool_t "not deadlock free (prefixes)" false
    (Prefix_search.deadlock_free sys)

let test_fig1_reduction_arcs () =
  (* In the empty prefix the reduction graph is exactly the union of the
     transactions' own arcs: no lock arcs, hence acyclic. *)
  let sys = Fixtures.fig1 () in
  let r = Reduction.make sys (State.initial sys) in
  check bool_t "acyclic at start" false (Reduction.has_cycle r);
  (* The full prefix has an empty reduction graph. *)
  let r = Reduction.make sys (State.final sys) in
  check bool_t "empty at end" false (Reduction.has_cycle r)

(* ------------------------------------------------------------------ *)
(* Theorem 1                                                           *)
(* ------------------------------------------------------------------ *)

let theorem1_prop =
  QCheck.Test.make
    ~name:"Theorem 1: deadlock partial schedule ⇔ deadlock prefix" ~count:80
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let st = Fixtures.rng seed in
      let sys = Fixtures.small_random_pair st in
      let by_schedules, by_prefixes = Theorem1.verdicts sys in
      by_schedules = by_prefixes)

let theorem1_three_txn_prop =
  QCheck.Test.make ~name:"Theorem 1 on 3-transaction systems" ~count:30
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let st = Fixtures.rng seed in
      let sys = Fixtures.small_random_system st ~txns:3 in
      let by_schedules, by_prefixes = Theorem1.verdicts sys in
      by_schedules = by_prefixes)

let test_centralized_witness () =
  (* §3 remark: from a deadlock partial schedule, the projected total
     orders form a centralized system that also deadlocks. *)
  let sys = Fixtures.fig1 () in
  match Explore.find_deadlock sys with
  | None -> Alcotest.fail "fig1 deadlocks"
  | Some (steps, _) ->
      let centr = Theorem1.centralized_witness sys steps in
      check int_t "same size" 3 (System.size centr);
      check bool_t "projection deadlocks too" false
        (Explore.deadlock_free centr);
      (* The same step sequence must replay legally on the total orders
         once node ids are rebuilt; at minimum the witness system must be
         made of total orders. *)
      Array.iter
        (fun t ->
          check bool_t "total order" true (Ddlock_safety.Lemma2.is_total t))
        (System.txns centr)

(* ------------------------------------------------------------------ *)
(* Fig. 2 and Tirri                                                    *)
(* ------------------------------------------------------------------ *)

let test_fig2_tirri_misses_deadlock () =
  let _, t = Fixtures.fig2_txn () in
  let sys = Fixtures.fig2 () in
  check bool_t "Tirri claims deadlock-free" true
    (Tirri.claims_deadlock_free t t);
  check bool_t "but the system deadlocks" false (Explore.deadlock_free sys);
  check bool_t "prefix search agrees" false (Prefix_search.deadlock_free sys)

let test_fig2_four_entity_cycle () =
  (* The witness reduction-graph cycle involves more than two entities. *)
  let sys = Fixtures.fig2 () in
  match Prefix_search.find sys with
  | None -> Alcotest.fail "expected deadlock prefix"
  | Some w ->
      check bool_t "schedule legal" true
        (Schedule.is_legal sys w.Prefix_search.schedule);
      let entities_on_cycle =
        List.sort_uniq compare
          (List.map
             (fun (s : Step.t) ->
               (Transaction.node (System.txn sys s.txn) s.node).Node.entity)
             w.Prefix_search.cycle)
      in
      check bool_t "cycle uses > 2 entities" true
        (List.length entities_on_cycle > 2)

let test_tirri_finds_classic_pair () =
  (* On the classic opposed pair Tirri's premise does hold. *)
  let db = Db.one_site_per_entity [ "a"; "b" ] in
  let t1 = Builder.two_phase_chain db [ "a"; "b" ] in
  let t2 = Builder.two_phase_chain db [ "b"; "a" ] in
  check bool_t "pair found" false (Tirri.claims_deadlock_free t1 t2)

(* Tirri soundness direction that DOES hold: whenever Tirri finds no pair
   on two centralized (total order) transactions, the pair really is
   deadlock free.  (The error is specific to partial orders.) *)
let tirri_centralized_prop =
  QCheck.Test.make
    ~name:"on total orders, no-Tirri-pair implies deadlock-free" ~count:80
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let st = Fixtures.rng seed in
      let sys =
        Ddlock_workload.Gentx.small_random_pair ~sites:1 ~entities:4
          ~density:0.3 st
      in
      let t1 = System.txn sys 0 and t2 = System.txn sys 1 in
      QCheck.assume (Tirri.claims_deadlock_free t1 t2);
      Explore.deadlock_free sys)

(* ------------------------------------------------------------------ *)
(* Fig. 3                                                              *)
(* ------------------------------------------------------------------ *)

let test_fig3 () =
  let sys = Fixtures.fig3 () in
  check bool_t "distributed pair deadlock-free" true (Explore.deadlock_free sys);
  check bool_t "some extension pair deadlocks" true
    (Theorem1.extension_pair_deadlocks sys)

(* The converse reduction (§3): if the distributed system deadlocks, some
   extension tuple deadlocks. *)
let extension_reduction_prop =
  QCheck.Test.make
    ~name:"deadlock implies some extension pair deadlocks (§3)" ~count:40
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let st = Fixtures.rng seed in
      (* Keep transactions tiny: extension enumeration is factorial. *)
      let sys =
        Ddlock_workload.Gentx.small_random_system ~sites:2 ~entities:2
          ~density:0.3 st ~txns:2
      in
      QCheck.assume (not (Explore.deadlock_free sys));
      Theorem1.extension_pair_deadlocks sys)

(* ------------------------------------------------------------------ *)
(* Fig. 6 and guard rings                                              *)
(* ------------------------------------------------------------------ *)

let test_fig6 () =
  let t = Fixtures.fig6_txn () in
  check bool_t "2 copies deadlock-free" true
    (Explore.deadlock_free (System.copies t 2));
  check bool_t "3 copies deadlock" false
    (Explore.deadlock_free (System.copies t 3));
  (* Consistency with Theorem 5: the copies are NOT safe∧DF, so the
     theorem (about safe∧DF) is not contradicted. *)
  check bool_t "not safe&df" false (Ddlock_safety.Copies.safe_and_deadlock_free t)

let test_guard_ring_parity () =
  (* Two copies of a k-ring deadlock iff k is even: a reduction-graph
     cycle alternates the two transactions along the ring, which needs an
     even number of hops.  (Fig. 2 is the 4-ring, Fig. 6 the 3-ring.) *)
  List.iter
    (fun k ->
      let t = Ddlock_workload.Gentx.guard_ring k in
      let df = Explore.deadlock_free (System.copies t 2) in
      check bool_t
        (Printf.sprintf "2 copies of %d-ring: df=%b" k (k mod 2 = 1))
        (k mod 2 = 1) df)
    [ 2; 3; 4; 5; 6 ];
  (* Three copies of any ring deadlock. *)
  List.iter
    (fun k ->
      let t = Ddlock_workload.Gentx.guard_ring k in
      check bool_t
        (Printf.sprintf "3 copies of %d-ring deadlock" k)
        false
        (Explore.deadlock_free (System.copies t 3)))
    [ 3; 4 ]

(* §3 / [KP2]: safety (unlike DF) DOES reduce to extension pairs. *)
let kp2_safety_reduction_prop =
  QCheck.Test.make
    ~name:"[KP2] pair safety = all extension pairs safe" ~count:30
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let st = Fixtures.rng seed in
      let sys =
        Ddlock_workload.Gentx.small_random_system ~sites:2 ~entities:2
          ~density:0.3 st ~txns:2
      in
      Result.is_ok (Explore.safe sys) = Theorem1.extension_pairs_all_safe sys)

let qtests =
  List.map Fixtures.to_alcotest
    [
      theorem1_prop;
      kp2_safety_reduction_prop;
      theorem1_three_txn_prop;
      tirri_centralized_prop;
      extension_reduction_prop;
    ]

let suite =
  [
    Alcotest.test_case "fig1 deadlock prefix" `Quick
      test_fig1_prefix_is_deadlock_prefix;
    Alcotest.test_case "fig1 deadlocks" `Quick test_fig1_deadlocks;
    Alcotest.test_case "fig1 reduction arcs" `Quick test_fig1_reduction_arcs;
    Alcotest.test_case "centralized witness (§3)" `Quick
      test_centralized_witness;
    Alcotest.test_case "fig2: Tirri misses the deadlock" `Quick
      test_fig2_tirri_misses_deadlock;
    Alcotest.test_case "fig2: >2-entity cycle" `Quick
      test_fig2_four_entity_cycle;
    Alcotest.test_case "tirri finds classic pair" `Quick
      test_tirri_finds_classic_pair;
    Alcotest.test_case "fig3" `Quick test_fig3;
    Alcotest.test_case "fig6" `Quick test_fig6;
    Alcotest.test_case "guard ring parity" `Quick test_guard_ring_parity;
  ]
  @ qtests
