open Ddlock_model
open Ddlock_schedule
open Ddlock_safety

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* ------------------------------------------------------------------ *)
(* Theorem 3 (pair test)                                               *)
(* ------------------------------------------------------------------ *)

let test_pair_chain () =
  let t1, t2 = Ddlock_workload.Gentx.chain_pair 5 in
  check bool_t "same-order 2PL chains are safe&DF" true
    (Pair.safe_and_deadlock_free t1 t2)

let test_pair_opposed () =
  let t1, t2 = Ddlock_workload.Gentx.opposed_chain_pair 3 in
  (match Pair.check t1 t2 with
  | Error (Pair.No_common_first _) -> ()
  | Error (Pair.Unguarded _) -> Alcotest.fail "expected No_common_first"
  | Ok () -> Alcotest.fail "opposed chains must fail");
  check bool_t "exhaustive agrees" false
    (Result.is_ok (Explore.safe_and_deadlock_free (System.create [ t1; t2 ])))

let test_pair_unguarded () =
  (* Same first entity but an early unlock leaves y unguarded:
     T1 = La Ua Lb Ub (not 2PL), T2 = La Lb Ua Ub. *)
  let db = Db.one_site_per_entity [ "a"; "b" ] in
  let t1 = Builder.total_exn db Builder.[ L "a"; U "a"; L "b"; U "b" ] in
  let t2 = Builder.two_phase_chain db [ "a"; "b" ] in
  (match Pair.check t1 t2 with
  | Error (Pair.Unguarded { y; _ }) ->
      check Alcotest.string "y is b" "b" (Db.entity_name db y)
  | Error (Pair.No_common_first _) -> Alcotest.fail "expected Unguarded"
  | Ok () -> Alcotest.fail "must fail");
  check bool_t "exhaustive agrees" false
    (Result.is_ok (Explore.safe_and_deadlock_free (System.create [ t1; t2 ])))

let test_pair_disjoint () =
  let db = Db.one_site_per_entity [ "a"; "b" ] in
  let t1 = Builder.two_phase_chain db [ "a" ] in
  let t2 = Builder.two_phase_chain db [ "b" ] in
  check bool_t "disjoint pairs trivially pass" true
    (Pair.safe_and_deadlock_free t1 t2)

let test_common_first () =
  let t1, t2 = Ddlock_workload.Gentx.chain_pair 3 in
  let db = Transaction.db t1 in
  (match Pair.common_first t1 t2 with
  | Some x -> check Alcotest.string "e0 first" "e0" (Db.entity_name db x)
  | None -> Alcotest.fail "expected common first");
  let o1, o2 = Ddlock_workload.Gentx.opposed_chain_pair 3 in
  check bool_t "opposed: none" true (Pair.common_first o1 o2 = None)

(* The headline agreement property: Theorem 3 ≡ exhaustive Lemma-1 search
   on random distributed pairs. *)
let theorem3_agreement_prop =
  QCheck.Test.make
    ~name:"Theorem 3 = exhaustive safe∧DF (random distributed pairs)"
    ~count:150
    QCheck.(int_bound 10_000_000)
    (fun seed ->
      let st = Fixtures.rng seed in
      let sys = Fixtures.small_random_pair st in
      let fast =
        Pair.safe_and_deadlock_free (System.txn sys 0) (System.txn sys 1)
      in
      let slow = Result.is_ok (Explore.safe_and_deadlock_free sys) in
      fast = slow)

let minimal_prefix_agreement_prop =
  QCheck.Test.make ~name:"O(n³) minimal-prefix decider = Theorem 3" ~count:150
    QCheck.(int_bound 10_000_000)
    (fun seed ->
      let st = Fixtures.rng seed in
      let sys = Fixtures.small_random_pair st in
      let t1 = System.txn sys 0 and t2 = System.txn sys 1 in
      Minimal_prefix.safe_and_deadlock_free t1 t2
      = Pair.safe_and_deadlock_free t1 t2)

(* ------------------------------------------------------------------ *)
(* Lemma 2 (centralized pairs)                                         *)
(* ------------------------------------------------------------------ *)

let centralized_pair st =
  let db = Ddlock_workload.Gentx.random_db ~sites:1 ~entities:4 in
  let mk () =
    Ddlock_workload.Gentx.random_transaction st db
      ~entities:
        (Ddlock_workload.Gentx.random_entity_subset st db
           ~k:(1 + Random.State.int st 4))
      ~density:0.2
  in
  (db, mk (), mk ())

let lemma2_agreement_prop =
  QCheck.Test.make ~name:"Lemma 2 = exhaustive (centralized pairs)" ~count:150
    QCheck.(int_bound 10_000_000)
    (fun seed ->
      let st = Fixtures.rng seed in
      let _, t1, t2 = centralized_pair st in
      let fast = Lemma2.safe_and_deadlock_free t1 t2 in
      let slow =
        Result.is_ok (Explore.safe_and_deadlock_free (System.create [ t1; t2 ]))
      in
      fast = slow)

let lemma2_vs_theorem3_prop =
  QCheck.Test.make ~name:"Theorem 3 restricted to total orders = Lemma 2"
    ~count:150
    QCheck.(int_bound 10_000_000)
    (fun seed ->
      let st = Fixtures.rng seed in
      let _, t1, t2 = centralized_pair st in
      Lemma2.safe_and_deadlock_free t1 t2 = Pair.safe_and_deadlock_free t1 t2)

let test_lemma2_requires_total () =
  let _, t = Fixtures.fig3_txn () in
  check bool_t "fig3 txn is partial" false (Lemma2.is_total t);
  Alcotest.check_raises "raises"
    (Invalid_argument "Lemma2.check: transactions must be total orders")
    (fun () -> ignore (Lemma2.check t t))

(* ------------------------------------------------------------------ *)
(* Corollary 3 / Theorem 5 (copies)                                    *)
(* ------------------------------------------------------------------ *)

let test_copies_chain () =
  let db = Db.one_site_per_entity [ "a"; "b"; "c" ] in
  let t = Builder.two_phase_chain db [ "a"; "b"; "c" ] in
  check bool_t "2PL chain copies ok" true (Copies.safe_and_deadlock_free t)

let test_copies_failures () =
  let db = Db.one_site_per_entity [ "a"; "b" ] in
  (* Early unlock: a no longer guards b at Lb?  La Ua Lb Ub: no guard. *)
  let t = Builder.total_exn db Builder.[ L "a"; U "a"; L "b"; U "b" ] in
  (match Copies.check t with
  | Error (Copies.Unguarded y) ->
      check Alcotest.string "b unguarded" "b" (Db.entity_name db y)
  | _ -> Alcotest.fail "expected Unguarded");
  (* Fig 3 transaction: Lx and Ly incomparable: no first lock. *)
  let _, t3 = Fixtures.fig3_txn () in
  match Copies.check t3 with
  | Error Copies.No_first_lock -> ()
  | _ -> Alcotest.fail "expected No_first_lock"

let copies_vs_pair_prop =
  QCheck.Test.make ~name:"Corollary 3 = Theorem 3 on two copies" ~count:150
    QCheck.(int_bound 10_000_000)
    (fun seed ->
      let st = Fixtures.rng seed in
      let db = Ddlock_workload.Gentx.random_db ~sites:2 ~entities:4 in
      let t =
        Ddlock_workload.Gentx.random_transaction st db
          ~entities:
            (Ddlock_workload.Gentx.random_entity_subset st db
               ~k:(1 + Random.State.int st 4))
          ~density:0.3
      in
      Copies.safe_and_deadlock_free t = Pair.safe_and_deadlock_free t t)

let theorem5_prop =
  QCheck.Test.make
    ~name:"Theorem 5: 3 copies safe∧DF ⇔ 2 copies safe∧DF (exhaustive)"
    ~count:40
    QCheck.(int_bound 10_000_000)
    (fun seed ->
      let st = Fixtures.rng seed in
      let db = Ddlock_workload.Gentx.random_db ~sites:2 ~entities:3 in
      let t =
        Ddlock_workload.Gentx.random_transaction st db
          ~entities:
            (Ddlock_workload.Gentx.random_entity_subset st db
               ~k:(1 + Random.State.int st 2))
          ~density:0.3
      in
      let two = Result.is_ok (Explore.safe_and_deadlock_free (System.copies t 2)) in
      let three =
        Result.is_ok (Explore.safe_and_deadlock_free (System.copies t 3))
      in
      (two = three) && Copies.safe_and_deadlock_free t = two)

(* ------------------------------------------------------------------ *)
(* Theorem 4 (many transactions)                                       *)
(* ------------------------------------------------------------------ *)

let test_philosophers () =
  let sys = Ddlock_workload.Gentx.dining_philosophers 3 in
  (* Pairwise: every pair shares exactly one entity, hence safe&DF. *)
  for i = 0 to 2 do
    for j = i + 1 to 2 do
      check bool_t
        (Printf.sprintf "pair %d %d" i j)
        true
        (Pair.safe_and_deadlock_free (System.txn sys i) (System.txn sys j))
    done
  done;
  match Many.check sys with
  | Many.Cycle_fails w ->
      check int_t "cycle length 3" 3 (List.length w.Many.cycle);
      (* The witness S* must be a legal partial schedule with cyclic D. *)
      check bool_t "S* legal" true (Schedule.is_legal sys w.Many.schedule);
      check bool_t "D(S*) cyclic" false
        (Dgraph.is_serializable sys w.Many.schedule);
      (* And the system really does deadlock. *)
      check bool_t "deadlocks" false (Explore.deadlock_free sys)
  | v ->
      Alcotest.failf "expected Cycle_fails, got %s"
        (Format.asprintf "%a" (Many.pp_verdict sys) v)

let test_philosophers_sizes () =
  List.iter
    (fun k ->
      let sys = Ddlock_workload.Gentx.dining_philosophers k in
      check bool_t
        (Printf.sprintf "philosophers %d not safe&DF" k)
        false (Many.safe_and_deadlock_free sys))
    [ 3; 4; 5; 6 ]

let test_many_pair_failure_detected () =
  let t1, t2 = Ddlock_workload.Gentx.opposed_chain_pair 3 in
  let db = Transaction.db t1 in
  let t3 = Builder.two_phase_chain db [ "e0" ] in
  match Many.check (System.create [ t1; t2; t3 ]) with
  | Many.Pair_fails { i = 0; j = 1; _ } -> ()
  | v ->
      Alcotest.failf "expected Pair_fails(0,1), got %s"
        (Format.asprintf "%a"
           (Many.pp_verdict (System.create [ t1; t2; t3 ]))
           v)

let test_many_safe_system () =
  (* k transactions all locking in the same global order: safe&DF. *)
  let db = Db.one_site_per_entity [ "a"; "b"; "c" ] in
  let sys =
    System.create
      [
        Builder.two_phase_chain db [ "a"; "b"; "c" ];
        Builder.two_phase_chain db [ "a"; "b" ];
        Builder.two_phase_chain db [ "a"; "c" ];
      ]
  in
  check bool_t "verdict" true (Many.safe_and_deadlock_free sys);
  check bool_t "exhaustive agrees" true
    (Result.is_ok (Explore.safe_and_deadlock_free sys))

let theorem4_agreement_prop =
  QCheck.Test.make ~name:"Theorem 4 = exhaustive (random 3-txn systems)"
    ~count:60
    QCheck.(int_bound 10_000_000)
    (fun seed ->
      let st = Fixtures.rng seed in
      let sys = Fixtures.small_random_system st ~txns:3 in
      Many.safe_and_deadlock_free sys
      = Result.is_ok (Explore.safe_and_deadlock_free sys))

let theorem4_agreement_4txn_prop =
  QCheck.Test.make ~name:"Theorem 4 = exhaustive (random 4-txn systems)"
    ~count:25
    QCheck.(int_bound 10_000_000)
    (fun seed ->
      let st = Fixtures.rng seed in
      let sys = Fixtures.small_random_system st ~txns:4 in
      Many.safe_and_deadlock_free sys
      = Result.is_ok (Explore.safe_and_deadlock_free sys))

let theorem4_witness_prop =
  QCheck.Test.make
    ~name:"Theorem 4 cycle witness: S* legal with cyclic D" ~count:60
    QCheck.(int_bound 10_000_000)
    (fun seed ->
      let st = Fixtures.rng seed in
      let sys = Fixtures.small_random_system st ~txns:3 in
      match Many.check sys with
      | Many.Cycle_fails w ->
          Schedule.is_legal sys w.Many.schedule
          && not (Dgraph.is_serializable sys w.Many.schedule)
      | _ -> true)

let test_theorem4_predecessor_relock_regression () =
  (* Found by bin/fuzz.exe (seed 1, round 89): the canonical prefix of a
     cycle transaction may relock entities its predecessor's prefix has
     already unlocked; an avoid-set that includes the predecessor's full
     entity set misses this witness.  T2 must be allowed to lock e2
     (released by T3's prefix) and then e0. *)
  let db = Db.one_site_per_entity [ "e0"; "e1"; "e2" ] in
  let t1 =
    Builder.transaction_exn db
      ~chains:Builder.[ [ L "e0"; U "e0" ]; [ L "e1"; U "e1" ] ]
      ()
  in
  let t2 =
    Builder.transaction_exn db
      ~chains:Builder.[ [ L "e2"; L "e0"; U "e0"; U "e2" ] ]
      ()
  in
  let t3 =
    Builder.transaction_exn db
      ~chains:Builder.[ [ L "e2"; L "e1"; U "e1" ] ]
      ()
  in
  let sys = System.create [ t1; t2; t3 ] in
  check bool_t "exhaustive: not safe&df" false
    (Result.is_ok (Explore.safe_and_deadlock_free sys));
  match Many.check sys with
  | Many.Cycle_fails w ->
      check bool_t "witness legal" true (Schedule.is_legal sys w.Many.schedule);
      check bool_t "witness cyclic D" false
        (Dgraph.is_serializable sys w.Many.schedule)
  | v ->
      Alcotest.failf "expected Cycle_fails, got %s"
        (Format.asprintf "%a" (Many.pp_verdict sys) v)

let test_candidate_count () =
  (* Philosophers ring of k: exactly one undirected cycle, 2 directions,
     k last-choices each. *)
  let sys = Ddlock_workload.Gentx.dining_philosophers 5 in
  check int_t "ring candidates" 10 (Many.candidate_count sys)

(* ------------------------------------------------------------------ *)
(* Geometry ([LP]/[SW] technique, centralized pairs)                   *)
(* ------------------------------------------------------------------ *)

let test_geometry_known () =
  let db = Db.one_site_per_entity [ "a"; "b" ] in
  let chain = Builder.two_phase_chain db [ "a"; "b" ] in
  let opposed = Builder.two_phase_chain db [ "b"; "a" ] in
  check bool_t "chains df" true (Geometry.deadlock_free chain chain);
  check bool_t "chains safe" true (Geometry.safe chain chain);
  check bool_t "opposed deadlocks" false (Geometry.deadlock_free chain opposed);
  (* 2PL pairs are always safe even when they deadlock. *)
  check bool_t "opposed safe (2PL)" true (Geometry.safe chain opposed);
  (* The early-unlock shape: deadlock-free but unsafe. *)
  let t1 = Builder.total_exn db Builder.[ L "a"; U "a"; L "b"; U "b" ] in
  check bool_t "early-unlock pair df" true (Geometry.deadlock_free t1 chain);
  check bool_t "early-unlock pair unsafe" false (Geometry.safe t1 chain)

let test_geometry_deadlock_point () =
  let db = Db.one_site_per_entity [ "a"; "b" ] in
  let chain = Builder.two_phase_chain db [ "a"; "b" ] in
  let opposed = Builder.two_phase_chain db [ "b"; "a" ] in
  match Geometry.find_deadlock_point chain opposed with
  | Some (i, j) ->
      (* Trapped exactly after each grabbed its first lock. *)
      check (Alcotest.pair int_t int_t) "trap point" (1, 1) (i, j)
  | None -> Alcotest.fail "expected a deadlock point"

let geometry_df_agreement_prop =
  QCheck.Test.make
    ~name:"geometric deadlock test = exhaustive (centralized pairs)"
    ~count:150
    QCheck.(int_bound 10_000_000)
    (fun seed ->
      let st = Fixtures.rng seed in
      let _, t1, t2 = centralized_pair st in
      Geometry.deadlock_free t1 t2
      = Explore.deadlock_free (System.create [ t1; t2 ]))

let geometry_safe_agreement_prop =
  QCheck.Test.make
    ~name:"geometric safety test = exhaustive (centralized pairs)" ~count:150
    QCheck.(int_bound 10_000_000)
    (fun seed ->
      let st = Fixtures.rng seed in
      let _, t1, t2 = centralized_pair st in
      Geometry.safe t1 t2
      = Result.is_ok (Explore.safe (System.create [ t1; t2 ])))

let geometry_vs_lemma2_prop =
  QCheck.Test.make ~name:"geometric conjunction = Lemma 2" ~count:150
    QCheck.(int_bound 10_000_000)
    (fun seed ->
      let st = Fixtures.rng seed in
      let _, t1, t2 = centralized_pair st in
      Geometry.safe_and_deadlock_free t1 t2
      = Lemma2.safe_and_deadlock_free t1 t2)

let qtests =
  List.map Fixtures.to_alcotest
    [
      theorem3_agreement_prop;
      minimal_prefix_agreement_prop;
      lemma2_agreement_prop;
      lemma2_vs_theorem3_prop;
      copies_vs_pair_prop;
      theorem5_prop;
      theorem4_agreement_prop;
      theorem4_agreement_4txn_prop;
      theorem4_witness_prop;
      geometry_df_agreement_prop;
      geometry_safe_agreement_prop;
      geometry_vs_lemma2_prop;
    ]

let suite =
  [
    Alcotest.test_case "pair: chains" `Quick test_pair_chain;
    Alcotest.test_case "pair: opposed" `Quick test_pair_opposed;
    Alcotest.test_case "pair: unguarded" `Quick test_pair_unguarded;
    Alcotest.test_case "pair: disjoint" `Quick test_pair_disjoint;
    Alcotest.test_case "common first" `Quick test_common_first;
    Alcotest.test_case "lemma2 requires total" `Quick
      test_lemma2_requires_total;
    Alcotest.test_case "copies: chain" `Quick test_copies_chain;
    Alcotest.test_case "copies: failures" `Quick test_copies_failures;
    Alcotest.test_case "theorem4: philosophers" `Quick test_philosophers;
    Alcotest.test_case "theorem4: philosopher sizes" `Quick
      test_philosophers_sizes;
    Alcotest.test_case "theorem4: pair failure" `Quick
      test_many_pair_failure_detected;
    Alcotest.test_case "theorem4: safe system" `Quick test_many_safe_system;
    Alcotest.test_case "theorem4: candidate count" `Quick test_candidate_count;
    Alcotest.test_case "theorem4: predecessor relock regression" `Quick
      test_theorem4_predecessor_relock_regression;
    Alcotest.test_case "geometry: known pairs" `Quick test_geometry_known;
    Alcotest.test_case "geometry: deadlock point" `Quick
      test_geometry_deadlock_point;
  ]
  @ qtests
