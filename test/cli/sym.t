Symmetry reduction: --symmetry explores one state per orbit of the
identical-transaction automorphism group.  The verdict is unchanged and
the witness is translated back to the original system.  Two copies of a
4-ring (the paper's Fig. 2 shape):

  $ ../../bin/ddlock_cli.exe gen ring -n 4 --copies 2 > fig2.txn
  $ ../../bin/ddlock_cli.exe analyze fig2.txn --symmetry
  transactions:        2
  entities:            4
  sites:               4
  lock/unlock nodes:   16
  all two-phase:       true
  interaction edges:   1
  interaction cycles:  0
  safety ∧ DF:         pair (T1, T2) violates Theorem 3: no common first lock: T1 can lock g2 first while T2 locks g3 first
  deadlock-freedom:    deadlocks after:
                       L1.g3 L2.g2 L2.g0 L1.g1
  
  how the deadlock happens:
  T1 locks g3  (orders T1 before T2 on g3)
  T2 locks g2  (orders T2 before T1 on g2)
  T2 locks g0  (orders T2 before T1 on g0)
  T1 locks g1  (orders T1 before T2 on g1)
  DEADLOCK
  T1 is blocked: needs g0, held by T2
  T1 is blocked: needs g2, held by T2
  T2 is blocked: needs g1, held by T1
  T2 is blocked: needs g3, held by T1
  [1]

The symmetric search is deterministic across --jobs, like the plain one:

  $ ../../bin/ddlock_cli.exe analyze fig2.txn --symmetry --jobs 1 > sym1.out
  [1]
  $ ../../bin/ddlock_cli.exe analyze fig2.txn --symmetry --jobs 4 > sym4.out
  [1]
  $ diff sym1.out sym4.out

minimize finds the same core with and without symmetry (the shrink
consults only verdicts):

  $ ../../bin/ddlock_cli.exe minimize fig2.txn 2>/dev/null > min.out
  $ ../../bin/ddlock_cli.exe minimize fig2.txn --symmetry 2>/dev/null > minsym.out
  $ diff min.out minsym.out

On a system with no two identical transactions --symmetry is a warned
no-op, not an error — the analysis still runs (philosophers k=3
deadlocks, hence exit 1):

  $ ../../bin/ddlock_cli.exe gen philosophers -n 3 > phil.txn
  $ ../../bin/ddlock_cli.exe analyze phil.txn --symmetry > /dev/null
  ddlock: --symmetry: no two transactions are structurally identical; symmetry reduction is a no-op
  [1]

--copies 1 is the identity: byte-identical to the base generator:

  $ ../../bin/ddlock_cli.exe gen ring -n 4 --copies 1 > one.txn
  $ ../../bin/ddlock_cli.exe gen ring -n 4 > base.txn
  $ diff one.txn base.txn
