Graphviz output for the interaction graph:

  $ ../../bin/ddlock_cli.exe gen philosophers -n 3 > phil.txn
  $ ../../bin/ddlock_cli.exe dot phil.txn --what interaction
  graph interaction {
    node [shape=circle];
    0 [label="T1"];
    1 [label="T2"];
    2 [label="T3"];
    0 -- 1 [label="f1"];
    0 -- 2 [label="f0"];
    1 -- 2 [label="f2"];
  }
