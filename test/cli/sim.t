Seeded simulation runs are reproducible:

  $ ../../bin/ddlock_cli.exe gen philosophers -n 3 > phil.txn
  $ ../../bin/ddlock_cli.exe simulate phil.txn --runs 20 --seed 7 | head -1
  20 runs: 20 deadlocked, 0 non-serializable, mean makespan nan

Recovery schemes always drive the workload to completion:

  $ ../../bin/ddlock_cli.exe recover phil.txn --scheme detect --runs 20 --seed 7
  20 runs: 20 aborts (max 1 per txn), 0 timeouts, 0 illegal, 0 non-serializable, mean makespan 19.73

The lock-wait timeout scheme also clears the deadlock on every run:

  $ ../../bin/ddlock_cli.exe recover phil.txn --scheme timeout --runs 20 --seed 7
  20 runs: 37 aborts (max 1 per txn), 0 timeouts, 0 illegal, 0 non-serializable, mean makespan 36.14
