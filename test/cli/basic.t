Generate a philosophers system and validate it:

  $ ../../bin/ddlock_cli.exe gen philosophers -n 3 > phil.txn
  $ ../../bin/ddlock_cli.exe validate phil.txn
  phil.txn: OK (3 sites, 3 entities, 3 transactions)

Pairwise analysis passes, the full analysis does not:

  $ ../../bin/ddlock_cli.exe pair phil.txn T1 T2
  {T1, T2}: safe and deadlock-free (Theorem 3)

  $ ../../bin/ddlock_cli.exe analyze phil.txn
  transactions:        3
  entities:            3
  sites:               3
  lock/unlock nodes:   12
  all two-phase:       true
  interaction edges:   3
  interaction cycles:  1
  safety ∧ DF:         cycle T1 -> T3 -> T2 admits a partial schedule with cyclic D:
                         L1.f0 L3.f2 L2.f1
  deadlock-freedom:    deadlocks after:
                       L1.f0 L2.f1 L3.f2
  
  how the deadlock happens:
  T1 locks f0  (orders T1 before T3 on f0)
  T2 locks f1  (orders T2 before T1 on f1)
  T3 locks f2  (orders T3 before T2 on f2)
  DEADLOCK
  T1 is blocked: needs f1, held by T2
  T2 is blocked: needs f2, held by T3
  T3 is blocked: needs f0, held by T1
  [1]

Rings and the copies test (Corollary 3):

  $ ../../bin/ddlock_cli.exe gen ring -n 3 > ring.txn
  $ ../../bin/ddlock_cli.exe copies ring.txn T
  copies of T are NOT safe∧deadlock-free: no entity is locked before all other nodes
  [1]

Parse errors are reported with a line number:

  $ printf 'site s { x }\ntxn T { L q < U q; }\n' > bad.txn
  $ ../../bin/ddlock_cli.exe validate bad.txn
  bad.txn: line 2: unknown entity "q"
  [2]
