Feeding an arbitrary DIMACS CNF through normalization and the gadget:

  $ printf 'p cnf 2 2\n1 2 0\n-1 -2 0\n' > f.cnf
  $ ../../bin/ddlock_cli.exe sat-reduce --file f.cnf | head -3
  normalized 2 vars / 2 clauses to 3SAT' with 8 vars / 12 clauses
  formula: (x0 ∨ x4) ∧ (x3 ∨ x7) ∧ (¬x0 ∨ ¬x2) ∧ (x2 ∨ x1) ∧ (¬x1 ∨ ¬x3) ∧ (x3 ∨ x0) ∧ (¬x4 ∨ ¬x6) ∧ (x6 ∨ x5) ∧ (¬x5 ∨ ¬x7) ∧ (x7 ∨ x4) ∧ (x5 ∨ x6) ∧ (x1 ∨ x2)
  reduction: 48 entities, 96+96 nodes, 48 sites
