Each scenario-matrix workload shape generates, validates, analyzes, and
survives a chaos sweep from the command line.

TPC-C-style mix (new-order/payment over warehouse-sharded sites) — 2PL
chains, so the certified verdict is safe and deadlock-free whenever the
interaction graph is acyclic:

  $ ../../bin/ddlock_cli.exe gen tpcc --txns 3 --seed 7 > tpcc.txn
  $ ../../bin/ddlock_cli.exe validate tpcc.txn
  tpcc.txn: OK (2 sites, 18 entities, 3 transactions)
  $ ../../bin/ddlock_cli.exe analyze tpcc.txn
  transactions:        3
  entities:            18
  sites:               2
  lock/unlock nodes:   20
  all two-phase:       true
  interaction edges:   1
  interaction cycles:  0
  safety ∧ DF:         safe and deadlock-free
  deadlock-freedom:    deadlock-free
  $ ../../bin/ddlock_cli.exe chaos tpcc.txn --runs 10
  60 runs: 60 clean, 0 invariant violations, 42 aborts (max 3 per txn), mean makespan 27.53

Partial replication (ROWA writes over overlapping replica subsets) —
opposed replica chains can deadlock, which analyze reports with a
witness schedule:

  $ ../../bin/ddlock_cli.exe gen replicated -n 4 --txns 3 --seed 9 > rep.txn
  $ ../../bin/ddlock_cli.exe validate rep.txn
  rep.txn: OK (3 sites, 8 entities, 3 transactions)
  $ ../../bin/ddlock_cli.exe analyze rep.txn | head -5
  transactions:        3
  entities:            8
  sites:               3
  lock/unlock nodes:   16
  all two-phase:       true
  $ ../../bin/ddlock_cli.exe chaos rep.txn --runs 10
  60 runs: 60 clean, 0 invariant violations, 88 aborts (max 3 per txn), mean makespan 34.22

Zipfian hotspot:

  $ ../../bin/ddlock_cli.exe gen zipf -n 5 --txns 3 --theta 1.5 --seed 3 > zipf.txn
  $ ../../bin/ddlock_cli.exe validate zipf.txn
  zipf.txn: OK (2 sites, 5 entities, 3 transactions)

The bench matrix smoke sweep: 5 schemes x 4 families x 3 intensities,
self-validated JSON (Obs.Json.validate) and zero invariant violations:

  $ DDLOCK_MATRIX_RUNS=2 ../../bench/main.exe matrix | grep BENCH_matrix
    wrote BENCH_matrix.json (validated, 60 cells, 0 violations)

  $ python3 -c "import json; d = json.load(open('BENCH_matrix.json')); print(len(d['families']), len(d['schemes']), len(d['intensities']), d['violations'])"
  4 5 3 0
