The relaxed work-stealing engine: --fast trades the deterministic
engine's reproducible discovery order for throughput, but analyze and
minimize re-canonicalize every positive verdict with a plain sequential
re-search (the same contract as --por), so the rendered report is
byte-identical to the plain one — alone and composed with --symmetry
and --por.  Two copies of a 4-ring (the paper's Fig. 2 shape):

  $ ../../bin/ddlock_cli.exe gen ring -n 4 --copies 2 > fig2.txn
  $ ../../bin/ddlock_cli.exe analyze fig2.txn > plain.out
  [1]
  $ ../../bin/ddlock_cli.exe analyze fig2.txn --fast --jobs 2 > fast.out
  [1]
  $ diff plain.out fast.out
  $ ../../bin/ddlock_cli.exe analyze fig2.txn --fast --jobs 4 --symmetry > fastsym.out
  [1]
  $ diff plain.out fastsym.out
  $ ../../bin/ddlock_cli.exe analyze fig2.txn --fast --jobs 4 --por > fastpor.out
  [1]
  $ diff plain.out fastpor.out
  $ ../../bin/ddlock_cli.exe analyze fig2.txn --fast --jobs 4 --symmetry --por > fastall.out
  [1]
  $ diff plain.out fastall.out

minimize probes verdicts only, so the relaxed engine finds the same
core:

  $ ../../bin/ddlock_cli.exe gen philosophers -n 4 > phil.txn
  $ ../../bin/ddlock_cli.exe minimize phil.txn 2>/dev/null > min.out
  $ ../../bin/ddlock_cli.exe minimize phil.txn --fast --jobs 2 2>/dev/null > minfast.out
  $ diff min.out minfast.out

Relaxed mode only pays off with real parallelism, so the CLI refuses
--fast without an explicit --jobs N, N >= 2:

  $ ../../bin/ddlock_cli.exe analyze fig2.txn --fast
  ddlock: --fast requires --jobs N with N >= 2
  [2]
  $ ../../bin/ddlock_cli.exe analyze fig2.txn --fast --jobs 1
  ddlock: --fast requires --jobs N with N >= 2
  [2]
  $ ../../bin/ddlock_cli.exe minimize phil.txn --fast
  ddlock: --fast requires --jobs N with N >= 2
  [2]

The hash-consing substrate surfaces in --stats: a full exploration
(safe system, no early exit) dedups every re-derived state through the
intern tables, so par.intern_hits is live.  (par.steals and
par.arena_reuse are racy by design — present or zero depending on the
run — so only the deterministic counter is pinned here.)  A
non-two-phase pair defeats the polynomial test and forces the
exhaustive search:

  $ cat > pair.txn << 'EOF'
  > site s0 { a }
  > site s1 { b }
  > txn T_1 {
  >   L a < U a;
  >   U a < L b;
  >   L b < U b;
  > }
  > txn T_2 {
  >   L a < U a;
  >   U a < L b;
  >   L b < U b;
  > }
  > EOF
  $ ../../bin/ddlock_cli.exe analyze pair.txn --fast --jobs 2 --stats 2>&1 >/dev/null | grep -c "par.intern_hits"
  1
