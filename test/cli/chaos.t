A seeded chaos sweep replays fault plans (site crashes, message
loss/duplication, lock-manager stalls) over every recovery scheme and
checks the committed-trace invariants; clean sweeps exit 0:

  $ ../../bin/ddlock_cli.exe gen philosophers -n 3 > phil.txn
  $ ../../bin/ddlock_cli.exe chaos phil.txn --runs 25 --seed 11
  150 runs: 150 clean, 0 invariant violations, 229 aborts (max 4 per txn), mean makespan 27.52

A single scheme can be swept on its own:

  $ ../../bin/ddlock_cli.exe chaos phil.txn --runs 10 --seed 11 --scheme timeout
  20 runs: 20 clean, 0 invariant violations, 18 aborts (max 2 per txn), mean makespan 37.50
