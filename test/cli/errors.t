A missing input file is a one-line error and exit code 2, for every
subcommand that loads one:

  $ ../../bin/ddlock_cli.exe validate no-such-file.txn
  no-such-file.txn: No such file or directory
  [2]

  $ ../../bin/ddlock_cli.exe analyze no-such-file.txn
  no-such-file.txn: No such file or directory
  [2]

  $ ../../bin/ddlock_cli.exe chaos no-such-file.txn
  no-such-file.txn: No such file or directory
  [2]

So is a file that does not parse:

  $ printf 'this is not a system file\n' > garbage.txn
  $ ../../bin/ddlock_cli.exe validate garbage.txn
  garbage.txn: line 1: no site declarations
  [2]

Invalid generator parameters are one-line errors too, not tracebacks:

  $ ../../bin/ddlock_cli.exe gen ring --copies 0
  ddlock: --copies must be >= 1 (got 0)
  [2]

  $ ../../bin/ddlock_cli.exe gen random --txns 0
  ddlock: --txns must be >= 1 (got 0)
  [2]

  $ ../../bin/ddlock_cli.exe gen zipf --theta 0
  ddlock: --theta must be > 0 (got 0)
  [2]

  $ ../../bin/ddlock_cli.exe gen tpcc --theta=-1.5
  ddlock: --theta must be > 0 (got -1.5)
  [2]

  $ ../../bin/ddlock_cli.exe gen replicated --sites 2 --replication 3
  ddlock: --replication must be in [1, --sites] (got 3 with 2 sites)
  [2]

  $ ../../bin/ddlock_cli.exe gen replicated -n 0
  ddlock: -n must be >= 1 (got 0)
  [2]
