A missing input file is a one-line error and exit code 2, for every
subcommand that loads one:

  $ ../../bin/ddlock_cli.exe validate no-such-file.txn
  no-such-file.txn: No such file or directory
  [2]

  $ ../../bin/ddlock_cli.exe analyze no-such-file.txn
  no-such-file.txn: No such file or directory
  [2]

  $ ../../bin/ddlock_cli.exe chaos no-such-file.txn
  no-such-file.txn: No such file or directory
  [2]

So is a file that does not parse:

  $ printf 'this is not a system file\n' > garbage.txn
  $ ../../bin/ddlock_cli.exe validate garbage.txn
  garbage.txn: line 1: no site declarations
  [2]
