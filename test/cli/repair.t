Repairing the philosophers with a global lock order:

  $ ../../bin/ddlock_cli.exe gen philosophers -n 3 > phil.txn
  $ ../../bin/ddlock_cli.exe repair phil.txn > fixed.txn
  # cycle T1 -> T3 -> T2 admits a partial schedule with cyclic D:
    L1.f0 L3.f2 L2.f1
  $ cat fixed.txn
  site site_f0 { f0 }
  site site_f1 { f1 }
  site site_f2 { f2 }
  txn T1 {
    L f0 < L f1;
    L f1 < U f0;
    U f0 < U f1;
  }
  txn T2 {
    L f1 < L f2;
    L f2 < U f1;
    U f1 < U f2;
  }
  txn T3 {
    L f0 < L f2;
    L f2 < U f0;
    U f0 < U f2;
  }
  $ ../../bin/ddlock_cli.exe analyze fixed.txn | grep "safety"
  safety ∧ DF:         safe and deadlock-free
