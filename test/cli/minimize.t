A deadlocking system with irrelevant baggage shrinks to its core:

  $ cat > sys.txn <<'TXN'
  > site s1 { a }
  > site s2 { b }
  > site s3 { p }
  > txn T1 { L a < L p < L b < U a; L b < U p; U p < U b; }
  > txn T2 { L b < L a < U b; L a < U a; }
  > txn T3 { L p < U p; }
  > TXN
  $ ../../bin/ddlock_cli.exe minimize sys.txn 2>notes; cat notes
  site s1 { a }
  site s2 { b }
  site s3 { p }
  txn T1 {
    L a < L b;
    L b < U a;
    L b < U b;
  }
  txn T2 {
    L b < L a;
    L a < U b;
    L a < U a;
  }
  # kept transactions: T1, T2
  # dropped p from T1
  $ ../../bin/ddlock_cli.exe minimize sys.txn 2>/dev/null
  site s1 { a }
  site s2 { b }
  site s3 { p }
  txn T1 {
    L a < L b;
    L b < U a;
    L b < U b;
  }
  txn T2 {
    L b < L a;
    L a < U b;
    L a < U a;
  }
