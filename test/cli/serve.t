The analysis daemon and its client.  Requesting against a socket nobody
serves is a one-line error and exit 2:

  $ ../../bin/ddlock_cli.exe request --socket ./no.sock --ping
  ddlock: connect: ./no.sock: No such file or directory
  [2]

Start a daemon (with telemetry, so the trace verb has span trees to
serve) and wait for its socket to appear:

  $ ../../bin/ddlock_cli.exe serve --socket ./d.sock --stats 2> serve.log &
  $ SRV=$!
  $ for _ in $(seq 100); do test -S ./d.sock && break; sleep 0.1; done

Liveness probe:

  $ ../../bin/ddlock_cli.exe request --socket ./d.sock --ping
  pong

Served verdicts are byte-identical to the local analysis, and the exit
status carries the verdict (1 = unsafe/deadlocks):

  $ ../../bin/ddlock_cli.exe gen ring -n 4 --copies 2 > fig2.txn
  $ ../../bin/ddlock_cli.exe analyze fig2.txn > local.out
  [1]
  $ ../../bin/ddlock_cli.exe request --socket ./d.sock fig2.txn > served.out
  [1]
  $ cmp local.out served.out

A malformed frame gets a one-line error reply and exit 2 — the daemon
survives it:

  $ ../../bin/ddlock_cli.exe request --socket ./d.sock --raw 'nonsense frame'
  error bad magic "nonsense" (expected ddlock/1)
  [2]

So does an oversized request, refused before any body is read:

  $ ../../bin/ddlock_cli.exe request --socket ./d.sock --raw 'ddlock/1 analyze 99999999'
  error request too large (99999999 > 1048576 bytes)
  [2]

A deadline of zero on a system not yet in the verdict cache exceeds its
deadline and exits 4:

  $ ../../bin/ddlock_cli.exe gen philosophers -n 5 > phil.txn
  $ ../../bin/ddlock_cli.exe request --socket ./d.sock --deadline-ms 0 phil.txn
  ddlock: request deadline exceeded
  [4]

Binding a socket that is already being served is refused with a
one-line error:

  $ ../../bin/ddlock_cli.exe serve --socket ./d.sock
  ddlock: ./d.sock: a daemon is already serving on this socket
  [2]

After all that abuse the daemon still answers:

  $ ../../bin/ddlock_cli.exe request --socket ./d.sock --ping
  pong

--stats times the request on stderr (latency, cache status, request
id) and leaves the verdict on stdout untouched; --trace fetches the
request's span tree as Chrome trace-event JSON:

  $ ../../bin/ddlock_cli.exe request --socket ./d.sock --stats --trace t.json fig2.txn > stats.out 2> stats.err
  [1]
  $ cmp local.out stats.out
  $ grep -Ec '^ddlock: [0-9.]+ ms, cache hit, req [0-9]+$' stats.err
  1
  $ grep -c '"traceEvents"' t.json
  1
  $ grep -c '"name":"serve.request"' t.json
  1

The metrics verb speaks Prometheus text exposition, always-on latency
histogram included:

  $ ../../bin/ddlock_cli.exe request --socket ./d.sock --metrics > metrics.prom
  $ grep -c '^# TYPE daemon_requests_total counter$' metrics.prom
  1
  $ grep -c '^daemon_request_ns_bucket{le="+Inf"} ' metrics.prom
  1

The flight verb dumps the recorder ring as JSON:

  $ ../../bin/ddlock_cli.exe request --socket ./d.sock --flight | grep -c '"pushed"'
  1

One dashboard refresh:

  $ ../../bin/ddlock_cli.exe top --socket ./d.sock --count 1 | grep -c 'latency  p50'
  1

SIGTERM drains gracefully: the daemon exits 0 and unlinks its socket.

  $ kill -TERM $SRV
  $ wait $SRV
  $ test -S ./d.sock
  [1]
