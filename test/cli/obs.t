--stats collects telemetry and prints a metrics/span summary on stderr
when the command exits; the normal stdout report is untouched.  Counter
totals are deterministic (span timings are not, so only stable lines are
checked):

  $ ../../bin/ddlock_cli.exe gen ring -n 4 --copies 2 > fig2.txn
  $ ../../bin/ddlock_cli.exe analyze fig2.txn > plain.out
  [1]
  $ ../../bin/ddlock_cli.exe analyze fig2.txn --stats > stats.out 2> stats.err
  [1]
  $ diff plain.out stats.out
  $ grep -E 'explore\.(states_visited|searches|deadlock_witnesses)' stats.err
    explore.deadlock_witnesses             1
    explore.searches                       1
    explore.states_visited                 88
  $ grep -c -- '-- spans --' stats.err
  1

The counters are jobs-invariant — the parallel engine reports the same
totals:

  $ ../../bin/ddlock_cli.exe analyze fig2.txn --stats --jobs 4 >/dev/null 2> stats4.err
  [1]
  $ grep -E 'explore\.(states_visited|searches|deadlock_witnesses)' stats4.err
    explore.deadlock_witnesses             1
    explore.searches                       1
    explore.states_visited                 88

--trace additionally writes a Chrome trace-event JSON file:

  $ ../../bin/ddlock_cli.exe analyze fig2.txn --stats --trace trace.json >/dev/null 2>/dev/null
  [1]
  $ grep -c traceEvents trace.json
  1

minimize and chaos take the same flags:

  $ ../../bin/ddlock_cli.exe minimize fig2.txn --stats > /dev/null 2> min.err
  $ grep -E 'minimize\.candidates' min.err
    minimize.candidates                    9

  $ ../../bin/ddlock_cli.exe chaos fig2.txn --runs 1 --stats > /dev/null 2> chaos.err
  $ grep -E 'chaos\.runs' chaos.err
    chaos.runs                             6

--trace without --stats is rejected up front with exit code 2:

  $ ../../bin/ddlock_cli.exe analyze fig2.txn --trace trace.json
  ddlock: --trace requires --stats
  [2]

So is an unwritable trace path (checked before any work happens):

  $ ../../bin/ddlock_cli.exe analyze fig2.txn --stats --trace /nonexistent-dir/t.json
  /nonexistent-dir/t.json: No such file or directory
  [2]
