The Theorem 2 reduction round-trip on a seeded random 3SAT' instance:

  $ ../../bin/ddlock_cli.exe sat-reduce --vars 3 --seed 5
  formula: (x1 ∨ ¬x2 ∨ x0) ∧ (x1 ∨ x2 ∨ ¬x0) ∧ (¬x1 ∨ x0 ∨ x2)
  reduction: 15 entities, 30+30 nodes, 15 sites
  DPLL: satisfiable
  deadlock prefix schedule: L1.c0' L1.c1' L1.c2' L1.x0 L1.x1 L1.x0' L1.x1' L2.c0 L2.c1 L2.c2
  reduction-graph cycle:    L1.c0 U1.x0 L2.x0 U2.c1 L1.c1 U1.x1' L2.x1' U2.c2 L1.c2 U1.x0' L2.x0' U2.c0
  assignment extracted back from the cycle: x0=true, x1=true, x2=false
