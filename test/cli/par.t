The parallel engine is deterministic: analyze output is byte-identical
for every --jobs value.  Two copies of a 4-ring (the paper's Fig. 2
shape), generated with the new --copies option:

  $ ../../bin/ddlock_cli.exe gen ring -n 4 --copies 2 > fig2.txn
  $ ../../bin/ddlock_cli.exe analyze fig2.txn --jobs 1 > jobs1.out
  [1]
  $ ../../bin/ddlock_cli.exe analyze fig2.txn --jobs 2 > jobs2.out
  [1]
  $ ../../bin/ddlock_cli.exe analyze fig2.txn --jobs 4 > jobs4.out
  [1]
  $ diff jobs1.out jobs2.out
  $ diff jobs1.out jobs4.out

The (shared) output, for the record:

  $ cat jobs4.out
  transactions:        2
  entities:            4
  sites:               4
  lock/unlock nodes:   16
  all two-phase:       true
  interaction edges:   1
  interaction cycles:  0
  safety ∧ DF:         pair (T1, T2) violates Theorem 3: no common first lock: T1 can lock g2 first while T2 locks g3 first
  deadlock-freedom:    deadlocks after:
                       L1.g3 L1.g1 L2.g2 L2.g0
  
  how the deadlock happens:
  T1 locks g3  (orders T1 before T2 on g3)
  T1 locks g1  (orders T1 before T2 on g1)
  T2 locks g2  (orders T2 before T1 on g2)
  T2 locks g0  (orders T2 before T1 on g0)
  DEADLOCK
  T1 is blocked: needs g0, held by T2
  T1 is blocked: needs g2, held by T2
  T2 is blocked: needs g1, held by T1
  T2 is blocked: needs g3, held by T1


minimize is deterministic under --jobs too:

  $ ../../bin/ddlock_cli.exe minimize fig2.txn --jobs 1 2>/dev/null > min1.out
  $ ../../bin/ddlock_cli.exe minimize fig2.txn --jobs 4 2>/dev/null > min4.out
  $ diff min1.out min4.out

Invalid job counts are rejected up front with exit code 2:

  $ ../../bin/ddlock_cli.exe analyze fig2.txn --jobs 0
  ddlock: --jobs must be >= 1 (got 0)
  [2]

  $ ../../bin/ddlock_cli.exe analyze fig2.txn --jobs=-3
  ddlock: --jobs must be >= 1 (got -3)
  [2]

  $ ../../bin/ddlock_cli.exe gen ring -n 4 --copies 0
  ddlock: --copies must be >= 1 (got 0)
  [2]
