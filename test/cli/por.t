Partial-order reduction: --por runs the exhaustive search over a
persistent/sleep-set reduced state space (independent steps explored in
one order instead of all).  The verdict AND the reported witness are
byte-identical to the plain search, and the flag composes with
--symmetry and --jobs.  Two copies of a 4-ring (the paper's Fig. 2
shape):

  $ ../../bin/ddlock_cli.exe gen ring -n 4 --copies 2 > fig2.txn
  $ ../../bin/ddlock_cli.exe analyze fig2.txn > plain.out
  [1]
  $ ../../bin/ddlock_cli.exe analyze fig2.txn --por > por.out
  [1]
  $ diff plain.out por.out
  $ ../../bin/ddlock_cli.exe analyze fig2.txn --por --symmetry --jobs 4 > porsym.out
  [1]
  $ diff plain.out porsym.out

The reduction genuinely visits fewer states.  A non-two-phase pair that
locks a then b in the same order is deadlock-free but defeats the
polynomial test, so analyze must run the exhaustive search; --stats
shows the cut (and the por.* counters):

  $ cat > pair.txn << 'EOF'
  > site s0 { a }
  > site s1 { b }
  > txn T_1 {
  >   L a < U a;
  >   U a < L b;
  >   L b < U b;
  > }
  > txn T_2 {
  >   L a < U a;
  >   U a < L b;
  >   L b < U b;
  > }
  > EOF
  $ ../../bin/ddlock_cli.exe analyze pair.txn --stats 2>&1 >/dev/null | grep "explore.states_visited"
    explore.states_visited                 23
  $ ../../bin/ddlock_cli.exe analyze pair.txn --por --stats 2>&1 >/dev/null | grep -E "explore.states_visited|por\."
    explore.states_visited                 15
    por.persistent_size                    16
    por.pruned                             4

Philosophers have a trivial automorphism group (symmetry gives factor
1.0) but plenty of independence; minimize's verdict-only probes run
entirely on the reduced space, so --por strictly cuts the states the
whole minimization visits while finding the same core:

  $ ../../bin/ddlock_cli.exe gen philosophers -n 4 > phil.txn
  $ ../../bin/ddlock_cli.exe minimize phil.txn 2>/dev/null > min.out
  $ ../../bin/ddlock_cli.exe minimize phil.txn --por 2>/dev/null > minpor.out
  $ diff min.out minpor.out
  $ plain=$(../../bin/ddlock_cli.exe minimize phil.txn --stats 2>&1 >/dev/null | grep "explore.states_visited" | awk '{print $2}')
  $ por=$(../../bin/ddlock_cli.exe minimize phil.txn --por --stats 2>&1 >/dev/null | grep "explore.states_visited" | awk '{print $2}')
  $ test "$por" -lt "$plain" && echo "por visits fewer states"
  por visits fewer states

When no two steps are independent --por is a warned no-op, not an
error — the analysis still runs (two copies of a one-entity chain are
safe and deadlock-free, hence exit 0):

  $ cat > nodep.txn << 'EOF'
  > site s0 { a }
  > txn T_1 {
  >   L a < U a;
  > }
  > txn T_2 {
  >   L a < U a;
  > }
  > EOF
  $ ../../bin/ddlock_cli.exe analyze nodep.txn --por > /dev/null
  ddlock: --por: no two steps are independent; partial-order reduction is a no-op
