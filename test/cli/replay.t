Replaying a schedule against a system:

  $ ../../bin/ddlock_cli.exe gen philosophers -n 3 > phil.txn
  $ printf 'T1 L f0\nT2 L f1\nT3 L f2\n' > dead.sched
  $ ../../bin/ddlock_cli.exe replay phil.txn dead.sched
  T1 locks f0  (orders T1 before T3 on f0)
  T2 locks f1  (orders T2 before T1 on f1)
  T3 locks f2  (orders T3 before T2 on f2)
  DEADLOCK
  T1 is blocked: needs f1, held by T2
  T2 is blocked: needs f2, held by T3
  T3 is blocked: needs f0, held by T1
  serialization digraph: CYCLIC (T1 -> T3 -> T2)
  reduction graph:       CYCLIC (no continuation can complete)

Illegal schedules are rejected with the violated rule:

  $ printf 'T1 L f0\nT3 L f0\n' > bad.sched
  $ ../../bin/ddlock_cli.exe replay phil.txn bad.sched
  ILLEGAL: step L3.f0 executed before one of its predecessors
  [1]

A clean serial prefix:

  $ printf 'T1 L f0\nT1 L f1\nT1 U f0\nT1 U f1\n' > ok.sched
  $ ../../bin/ddlock_cli.exe replay phil.txn ok.sched
  T1 locks f0  (orders T1 before T3 on f0)
  T1 locks f1  (orders T1 before T2 on f1)
  T1 unlocks f0
  T1 unlocks f1
  (partial)
  serialization digraph: acyclic
  reduction graph:       acyclic
