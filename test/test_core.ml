open Ddlock
module Db = Model.Db
module Builder = Model.Builder
module System = Model.System
module Transaction = Model.Transaction

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* ------------------------------------------------------------------ *)
(* Analysis facade                                                     *)
(* ------------------------------------------------------------------ *)

let test_analysis_safe () =
  let db = Db.one_site_per_entity [ "a"; "b" ] in
  let sys =
    System.create
      [
        Builder.two_phase_chain db [ "a"; "b" ];
        Builder.two_phase_chain db [ "a"; "b" ];
      ]
  in
  let r = Analysis.report sys in
  check bool_t "safe verdict" true
    (r.Analysis.safety = Analysis.Safe_and_deadlock_free);
  check bool_t "df verdict" true (r.Analysis.deadlock = Analysis.Deadlock_free);
  check bool_t "two phase" true r.Analysis.all_two_phase;
  check int_t "txns" 2 r.Analysis.txn_count

let test_analysis_philosophers () =
  let sys = Workload.Gentx.dining_philosophers 3 in
  let r = Analysis.report sys in
  (match r.Analysis.safety with
  | Analysis.Cycle_violation _ -> ()
  | _ -> Alcotest.fail "expected cycle violation");
  match r.Analysis.deadlock with
  | Analysis.Deadlocks { schedule; state } ->
      check bool_t "witness legal" true (Sched.Schedule.is_legal sys schedule);
      check bool_t "state deadlocked" true (Sched.State.is_deadlock sys state)
  | _ -> Alcotest.fail "expected Deadlocks"

let test_analysis_gave_up () =
  (* A pairwise-failing but huge system forces the bounded search to give
     up when the budget is tiny. *)
  let sys = Workload.Gentx.dining_philosophers 8 in
  match Analysis.deadlock_free ~max_states:10 sys with
  | Analysis.Gave_up { states_explored } ->
      check bool_t "budget reported" true (states_explored >= 10)
  | Analysis.Deadlocks _ ->
      (* BFS may find the deadlock before the cap: also acceptable. *)
      ()
  | Analysis.Deadlock_free -> Alcotest.fail "cannot be deadlock free"

let test_analysis_polynomial_shortcut () =
  (* A certified-safe system never enters the exponential search, so a
     tiny budget must still answer Deadlock_free. *)
  let db = Db.one_site_per_entity [ "a"; "b" ] in
  let sys =
    System.create
      (List.init 4 (fun _ -> Builder.two_phase_chain db [ "a"; "b" ]))
  in
  check bool_t "polynomial path" true
    (Analysis.deadlock_free ~max_states:1 sys = Analysis.Deadlock_free)

(* ------------------------------------------------------------------ *)
(* Dot output                                                          *)
(* ------------------------------------------------------------------ *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_dot_outputs () =
  let sys = Workload.Gentx.dining_philosophers 3 in
  let t = System.txn sys 0 in
  let dt = Dot.transaction ~name:"T1" t in
  check bool_t "txn digraph" true (contains dt "digraph \"T1\"");
  check bool_t "txn node label" true (contains dt "Lf0");
  let ds = Dot.system sys in
  check bool_t "system clusters" true (contains ds "cluster_T3");
  let di = Dot.interaction sys in
  check bool_t "interaction edge label" true (contains di "f1");
  check bool_t "undirected" true (contains di "--");
  (* Reduction graph of the classic stuck prefix. *)
  let p = Sched.State.initial sys in
  for i = 0 to 2 do
    Ddlock_graph.Bitset.set p.(i)
      (Transaction.lock_node_exn (System.txn sys i)
         (Db.find_entity_exn (System.db sys) ("f" ^ string_of_int i)))
  done;
  let dr = Dot.reduction sys p in
  check bool_t "lock arcs dashed" true (contains dr "style=dashed");
  let steps =
    List.init 3 (fun i ->
        Sched.Step.v i
          (Transaction.lock_node_exn (System.txn sys i)
             (Db.find_entity_exn (System.db sys) ("f" ^ string_of_int i))))
  in
  let dd = Dot.dgraph sys steps in
  check bool_t "dgraph arcs labelled" true (contains dd "label=\"f");
  (* All outputs are balanced dot documents. *)
  List.iter
    (fun s ->
      check bool_t "ends with brace" true
        (String.length s > 0 && contains s "}\n"))
    [ dt; ds; di; dr; dd ]

(* ------------------------------------------------------------------ *)
(* Early unlock                                                        *)
(* ------------------------------------------------------------------ *)

let test_span () =
  let db = Db.one_site_per_entity [ "a"; "b" ] in
  let t = Builder.two_phase_chain db [ "a"; "b" ] in
  (* La Lb Ua Ub: span a = 2, span b = 2. *)
  let a = Db.find_entity_exn db "a" and b = Db.find_entity_exn db "b" in
  check int_t "span a" 2 (Safety.Early_unlock.span t a);
  check int_t "span b" 2 (Safety.Early_unlock.span t b)

let test_early_unlock_private_entities () =
  (* Entity p is private to T1: its span must shrink to 1 without losing
     the certificate.  Shared entities a,b keep their guards. *)
  let db = Db.one_site_per_entity [ "a"; "b"; "p" ] in
  let t1 = Builder.two_phase_chain db [ "a"; "p"; "b" ] in
  let t2 = Builder.two_phase_chain db [ "a"; "b" ] in
  let sys = System.create [ t1; t2 ] in
  assert (Safety.Many.safe_and_deadlock_free sys);
  let sys', stats = Safety.Early_unlock.minimize_spans sys in
  check bool_t "still safe&DF (Theorem 4)" true
    (Safety.Many.safe_and_deadlock_free sys');
  check bool_t "still safe&DF (exhaustive)" true
    (Result.is_ok (Sched.Explore.safe_and_deadlock_free sys'));
  check bool_t "span decreased" true
    (stats.Safety.Early_unlock.span_after
    < stats.Safety.Early_unlock.span_before);
  check bool_t "swaps happened" true (stats.Safety.Early_unlock.swaps > 0);
  let p = Db.find_entity_exn db "p" in
  check int_t "private span is 1" 1
    (Safety.Early_unlock.span (System.txn sys' 0) p)

let test_early_unlock_guards_kept () =
  (* Two identical 2PL chains over shared entities: no unlock can move
     without breaking the guard condition, so nothing changes. *)
  let db = Db.one_site_per_entity [ "a"; "b" ] in
  let sys =
    System.create
      [
        Builder.two_phase_chain db [ "a"; "b" ];
        Builder.two_phase_chain db [ "a"; "b" ];
      ]
  in
  let _, stats = Safety.Early_unlock.minimize_spans sys in
  check int_t "no swaps" 0 stats.Safety.Early_unlock.swaps

let test_early_unlock_uncertified_input () =
  let sys =
    System.create
      (let t1, t2 = Workload.Gentx.opposed_chain_pair 2 in
       [ t1; t2 ])
  in
  let sys', stats = Safety.Early_unlock.minimize_spans sys in
  check int_t "unchanged" 0 stats.Safety.Early_unlock.swaps;
  check bool_t "same system" true (sys == sys')

let early_unlock_preserves_prop =
  QCheck.Test.make
    ~name:"early unlock preserves safe∧DF and never increases spans"
    ~count:40
    QCheck.(int_bound 10_000_000)
    (fun seed ->
      let st = Fixtures.rng seed in
      let db = Workload.Gentx.random_db ~sites:1 ~entities:4 in
      let mk () =
        let k = 1 + Random.State.int st 4 in
        let names =
          List.map (Db.entity_name db)
            (Workload.Gentx.random_entity_subset st db ~k)
        in
        Builder.two_phase_chain db names
      in
      let sys = System.create [ mk (); mk (); mk () ] in
      let sys', stats = Safety.Early_unlock.minimize_spans sys in
      stats.Safety.Early_unlock.span_after
      <= stats.Safety.Early_unlock.span_before
      &&
      if Safety.Many.safe_and_deadlock_free sys then
        Safety.Many.safe_and_deadlock_free sys'
        && Result.is_ok (Sched.Explore.safe_and_deadlock_free sys')
      else true)

let test_repair () =
  let sys = Workload.Gentx.dining_philosophers 4 in
  (match Analysis.safe_and_deadlock_free sys with
  | Analysis.Safe_and_deadlock_free -> Alcotest.fail "philosophers must fail"
  | _ -> ());
  match Analysis.repair_with_global_order sys with
  | None -> Alcotest.fail "total orders are repairable"
  | Some sys' ->
      check bool_t "repaired certified" true
        (Analysis.safe_and_deadlock_free sys' = Analysis.Safe_and_deadlock_free);
      check bool_t "repaired exhaustively clean" true
        (Result.is_ok (Sched.Explore.safe_and_deadlock_free sys'));
      (* Access sets are preserved. *)
      Array.iteri
        (fun i t ->
          check bool_t
            (Printf.sprintf "T%d entities kept" (i + 1))
            true
            (Transaction.entities t
            = Transaction.entities (System.txn sys' i)))
        (System.txns sys)

let test_repair_rejects_partial_orders () =
  let sys = Fixtures.fig3 () in
  check bool_t "partial orders not repairable this way" true
    (Analysis.repair_with_global_order sys = None)

let repair_always_certifies_prop =
  QCheck.Test.make
    ~name:"global-order repair always yields a certified system" ~count:60
    QCheck.(int_bound 10_000_000)
    (fun seed ->
      let st = Fixtures.rng seed in
      let db = Workload.Gentx.random_db ~sites:1 ~entities:4 in
      let mk () =
        let k = 1 + Random.State.int st 4 in
        let names =
          List.map (Db.entity_name db)
            (Workload.Gentx.random_entity_subset st db ~k)
        in
        (* A random (possibly bad) lock order. *)
        Model.Builder.two_phase_chain db names
      in
      let sys = System.create [ mk (); mk (); mk () ] in
      match Analysis.repair_with_global_order sys with
      | None -> false
      | Some sys' ->
          Analysis.safe_and_deadlock_free sys' = Analysis.Safe_and_deadlock_free)

(* ------------------------------------------------------------------ *)
(* Pair counterexamples                                                *)
(* ------------------------------------------------------------------ *)

let test_pair_counterexample_opposed () =
  let t1, t2 = Workload.Gentx.opposed_chain_pair 3 in
  match Analysis.pair_counterexample t1 t2 with
  | None -> Alcotest.fail "failing pair must have a witness"
  | Some cex ->
      let sys = System.create [ t1; t2 ] in
      check bool_t "legal" true (Sched.Schedule.is_legal sys cex.Analysis.steps);
      check bool_t "D cyclic" false
        (Sched.Dgraph.is_serializable sys cex.Analysis.steps);
      check bool_t "cycle spans both" true
        (List.sort compare cex.Analysis.d_cycle = [ 0; 1 ])

let test_pair_counterexample_none_when_safe () =
  let t1, t2 = Workload.Gentx.chain_pair 3 in
  check bool_t "no witness" true (Analysis.pair_counterexample t1 t2 = None)

let pair_counterexample_prop =
  QCheck.Test.make
    ~name:"failing pairs always yield replayable cyclic-D witnesses"
    ~count:60
    QCheck.(int_bound 10_000_000)
    (fun seed ->
      let st = Fixtures.rng seed in
      let sys = Fixtures.small_random_pair st in
      let t1 = System.txn sys 0 and t2 = System.txn sys 1 in
      match Analysis.pair_counterexample t1 t2 with
      | None -> Safety.Pair.safe_and_deadlock_free t1 t2
      | Some cex ->
          Sched.Schedule.is_legal sys cex.Analysis.steps
          && not (Sched.Dgraph.is_serializable sys cex.Analysis.steps))

(* ------------------------------------------------------------------ *)
(* Witness minimization                                                *)
(* ------------------------------------------------------------------ *)

let test_minimize_philosophers () =
  (* 5 philosophers + 2 irrelevant transactions: the core should keep the
     ring and drop the bystanders. *)
  let ring = Workload.Gentx.dining_philosophers 5 in
  let db = System.db ring in
  let bystander = Model.Builder.two_phase_chain db [ "f0" ] in
  let sys =
    System.create (Array.to_list (System.txns ring) @ [ bystander; bystander ])
  in
  match Minimize.deadlock_core sys with
  | None -> Alcotest.fail "system deadlocks; expected a core"
  | Some r ->
      check bool_t "core still deadlocks" false
        (Sched.Explore.deadlock_free r.Minimize.core);
      check bool_t "no bystanders" true
        (List.for_all (fun i -> i < 5) r.Minimize.kept_txns);
      (* The philosophers ring is already minimal: all 5 stay. *)
      check int_t "ring kept" 5 (System.size r.Minimize.core)

let test_minimize_drops_entities () =
  (* An opposed pair plus a private entity each: the private accesses get
     stripped from the core. *)
  let db = Model.Db.one_site_per_entity [ "a"; "b"; "p"; "q" ] in
  let t1 = Model.Builder.two_phase_chain db [ "a"; "p"; "b" ] in
  let t2 = Model.Builder.two_phase_chain db [ "b"; "q"; "a" ] in
  let sys = System.create [ t1; t2 ] in
  match Minimize.deadlock_core sys with
  | None -> Alcotest.fail "expected a core"
  | Some r ->
      check int_t "2 txns" 2 (System.size r.Minimize.core);
      check bool_t "entities dropped" true
        (List.length r.Minimize.dropped_entities >= 2);
      Array.iter
        (fun t -> check int_t "core accesses only a,b" 2
            (List.length (Transaction.entities t)))
        (System.txns r.Minimize.core)

let test_minimize_none_for_deadlock_free () =
  let db = Model.Db.one_site_per_entity [ "a"; "b" ] in
  let sys =
    System.create
      [
        Model.Builder.two_phase_chain db [ "a"; "b" ];
        Model.Builder.two_phase_chain db [ "a"; "b" ];
      ]
  in
  check bool_t "no core for DF systems" true
    (Minimize.deadlock_core sys = None)

let minimize_core_minimal_prop =
  QCheck.Test.make
    ~name:"minimized cores deadlock and are txn-minimal" ~count:30
    QCheck.(int_bound 10_000_000)
    (fun seed ->
      let st = Fixtures.rng seed in
      let sys = Fixtures.small_random_system st ~txns:3 in
      match Minimize.deadlock_core sys with
      | None -> Sched.Explore.deadlock_free sys
      | Some r ->
          (not (Sched.Explore.deadlock_free r.Minimize.core))
          && (* dropping any single whole transaction breaks the deadlock *)
          (System.size r.Minimize.core < 2
          || List.for_all
               (fun drop ->
                 let rest =
                   List.filteri (fun i _ -> i <> drop)
                     (Array.to_list (System.txns r.Minimize.core))
                 in
                 List.length rest < 2
                 || Sched.Explore.deadlock_free (System.create rest))
               (List.init (System.size r.Minimize.core) Fun.id)))

let qtests =
  List.map Fixtures.to_alcotest
    [
      early_unlock_preserves_prop;
      repair_always_certifies_prop;
      minimize_core_minimal_prop;
      pair_counterexample_prop;
    ]

let suite =
  [
    Alcotest.test_case "analysis safe" `Quick test_analysis_safe;
    Alcotest.test_case "analysis philosophers" `Quick
      test_analysis_philosophers;
    Alcotest.test_case "analysis gave up" `Quick test_analysis_gave_up;
    Alcotest.test_case "analysis polynomial shortcut" `Quick
      test_analysis_polynomial_shortcut;
    Alcotest.test_case "dot outputs" `Quick test_dot_outputs;
    Alcotest.test_case "lock span" `Quick test_span;
    Alcotest.test_case "early unlock: private entities" `Quick
      test_early_unlock_private_entities;
    Alcotest.test_case "early unlock: guards kept" `Quick
      test_early_unlock_guards_kept;
    Alcotest.test_case "early unlock: uncertified input" `Quick
      test_early_unlock_uncertified_input;
    Alcotest.test_case "repair: philosophers" `Quick test_repair;
    Alcotest.test_case "repair: partial orders" `Quick
      test_repair_rejects_partial_orders;
    Alcotest.test_case "minimize: philosophers" `Quick
      test_minimize_philosophers;
    Alcotest.test_case "minimize: drops entities" `Quick
      test_minimize_drops_entities;
    Alcotest.test_case "minimize: none when DF" `Quick
      test_minimize_none_for_deadlock_free;
    Alcotest.test_case "pair cex: opposed" `Quick
      test_pair_counterexample_opposed;
    Alcotest.test_case "pair cex: none when safe" `Quick
      test_pair_counterexample_none_when_safe;
  ]
  @ qtests
