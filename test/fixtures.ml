(* Shared fixtures: machine-checked reconstructions of the paper's figures
   and common helpers.  The 1986 scan's figures are OCR-garbled, so each
   reconstruction is built to satisfy exactly the properties the paper
   uses it for; the test suites verify those properties. *)

open Ddlock_model

(* Paper figures now live in the library (Ddlock_workload.Figures); the
   fixtures simply re-export them for the test suites. *)
let fig1 = Ddlock_workload.Figures.fig1
let fig1_deadlock_prefix = Ddlock_workload.Figures.fig1_deadlock_prefix
let fig2_txn () =
  let t = Ddlock_workload.Figures.fig2_txn () in
  (Transaction.db t, t)
let fig2 = Ddlock_workload.Figures.fig2
let fig3_txn () =
  let t = Ddlock_workload.Figures.fig3_txn () in
  (Transaction.db t, t)
let fig3 = Ddlock_workload.Figures.fig3
let fig6_txn = Ddlock_workload.Figures.fig6_txn

(* Deterministic RNG for reproducible tests. *)
let rng seed = Random.State.make [| seed; 0xddf0c |]

(* Deterministic qcheck wrapper: a fixed seed per property, so the suite
   is reproducible run-to-run (QCHECK_SEED still overrides via env). *)
let to_alcotest test =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5eed2026 |]) test

(* Small random systems for ground-truth comparisons. *)
let small_random_pair st =
  let sites = 1 + Random.State.int st 3 in
  let entities = 2 + Random.State.int st 3 in
  let db = Ddlock_workload.Gentx.random_db ~sites ~entities in
  let density = Random.State.float st 0.5 in
  let k1 = 1 + Random.State.int st entities in
  let k2 = 1 + Random.State.int st entities in
  let e1 = Ddlock_workload.Gentx.random_entity_subset st db ~k:k1 in
  let e2 = Ddlock_workload.Gentx.random_entity_subset st db ~k:k2 in
  let t1 = Ddlock_workload.Gentx.random_transaction st db ~entities:e1 ~density in
  let t2 = Ddlock_workload.Gentx.random_transaction st db ~entities:e2 ~density in
  System.create [ t1; t2 ]

let small_random_system st ~txns =
  let sites = 1 + Random.State.int st 2 in
  let entities = 2 + Random.State.int st 2 in
  let db = Ddlock_workload.Gentx.random_db ~sites ~entities in
  let density = Random.State.float st 0.5 in
  System.create
    (List.init txns (fun _ ->
         let k = 1 + Random.State.int st entities in
         Ddlock_workload.Gentx.random_transaction st db
           ~entities:(Ddlock_workload.Gentx.random_entity_subset st db ~k)
           ~density))
