(* Shared fixtures: machine-checked reconstructions of the paper's figures
   and common helpers.  The 1986 scan's figures are OCR-garbled, so each
   reconstruction is built to satisfy exactly the properties the paper
   uses it for; the test suites verify those properties. *)

open Ddlock_model

(* Paper figures now live in the library (Ddlock_workload.Figures); the
   fixtures simply re-export them for the test suites. *)
let fig1 = Ddlock_workload.Figures.fig1
let fig1_deadlock_prefix = Ddlock_workload.Figures.fig1_deadlock_prefix
let fig2_txn () =
  let t = Ddlock_workload.Figures.fig2_txn () in
  (Transaction.db t, t)
let fig2 = Ddlock_workload.Figures.fig2
let fig3_txn () =
  let t = Ddlock_workload.Figures.fig3_txn () in
  (Transaction.db t, t)
let fig3 = Ddlock_workload.Figures.fig3
let fig6_txn = Ddlock_workload.Figures.fig6_txn

(* Deterministic RNG for reproducible tests. *)
let rng seed = Random.State.make [| seed; 0xddf0c |]

(* Deterministic qcheck wrapper: a fixed seed per property, so the suite
   is reproducible run-to-run (QCHECK_SEED still overrides via env). *)
let to_alcotest test =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0x5eed2026 |]) test

(* Small random systems for ground-truth comparisons — the shared
   generators live in Workload.Gentx (also used by fuzz and bench). *)
let small_random_pair st = Ddlock_workload.Gentx.small_random_pair st
let small_random_system st ~txns = Ddlock_workload.Gentx.small_random_system st ~txns
