(* Differential battery for the deterministic parallel engine: every
   observable of Ddlock_par.Par_explore must be bit-identical to the
   sequential Explore / Prefix_search ground truth, for every jobs. *)

open Ddlock_model
open Ddlock_schedule
module Par = Ddlock_par.Par_explore
module Prefix_search = Ddlock_deadlock.Prefix_search
module Reduction = Ddlock_deadlock.Reduction
module Gentx = Ddlock_workload.Gentx

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

let jobs_sweep = [ 1; 2; 3; 4; 8 ]

let fig2ish () = System.copies (Gentx.guard_ring 4) 2
let phil3 () = Gentx.dining_philosophers 3

let opposed_pair () =
  let db = Db.one_site_per_entity [ "a"; "b" ] in
  System.create
    [
      Builder.two_phase_chain db [ "a"; "b" ];
      Builder.two_phase_chain db [ "b"; "a" ];
    ]

let eight_state_sys () =
  let db = Db.one_site_per_entity [ "a" ] in
  let t = Builder.two_phase_chain db [ "a" ] in
  System.create [ t; Builder.two_phase_chain db [ "a" ] ]

(* ------------------------------------------------------------------ *)
(* Unit: counts, witnesses, spaces                                     *)
(* ------------------------------------------------------------------ *)

let test_counts_match () =
  List.iter
    (fun sys ->
      let seq = Explore.state_count (Explore.explore sys) in
      List.iter
        (fun jobs ->
          check int_t
            (Printf.sprintf "state_count jobs=%d" jobs)
            seq
            (Par.state_count (Par.explore ~jobs sys)))
        jobs_sweep)
    [ fig2ish (); phil3 (); opposed_pair () ]

let test_witness_identical () =
  List.iter
    (fun sys ->
      let seq = Explore.find_deadlock sys in
      List.iter
        (fun jobs ->
          let par = Par.find_deadlock ~jobs sys in
          check bool_t
            (Printf.sprintf "find_deadlock jobs=%d identical" jobs)
            true (par = seq))
        jobs_sweep)
    [ fig2ish (); phil3 (); opposed_pair () ]

let test_states_in_rank_order () =
  (* The parallel space enumerates states in the sequential BFS
     insertion order: keys must line up position by position with a
     sequential re-exploration that records insertion order. *)
  let sys = phil3 () in
  let order = ref [] in
  (match
     Explore.bfs sys ~found:(fun st ->
         order := State.key st :: !order;
         false)
   with
  | Some _ -> Alcotest.fail "predicate never holds"
  | None -> ());
  let seq_keys = List.rev !order in
  let par_keys =
    List.of_seq (Seq.map State.key (Par.states (Par.explore ~jobs:3 sys)))
  in
  (* Explore.bfs applies [found] to every discovered state including the
     initial one, in insertion order. *)
  check int_t "same length" (List.length seq_keys) (List.length par_keys);
  check bool_t "same order" true (seq_keys = par_keys)

let test_schedules_identical () =
  let sys = fig2ish () in
  let seq = Explore.explore sys in
  let par = Par.explore ~jobs:4 sys in
  check int_t "jobs recorded" 4 (Par.jobs par);
  Seq.iter
    (fun st ->
      check bool_t "reachable in par" true (Par.is_reachable par st);
      check bool_t "same schedule" true
        (Par.schedule_to par st = Explore.schedule_to seq st))
    (Explore.states seq);
  let unreachable = State.final (opposed_pair ()) in
  check bool_t "foreign state unreachable" false
    (Par.is_reachable par unreachable)

let test_lemma1_identical () =
  List.iter
    (fun sys ->
      List.iter
        (fun jobs ->
          check bool_t
            (Printf.sprintf "safe_and_deadlock_free jobs=%d" jobs)
            true
            (Par.safe_and_deadlock_free ~jobs sys
            = Explore.safe_and_deadlock_free sys);
          check bool_t
            (Printf.sprintf "safe jobs=%d" jobs)
            true
            (Par.safe ~jobs sys = Explore.safe sys))
        [ 1; 2; 3; 4 ])
    [ opposed_pair (); fig2ish () ]

let test_invalid_jobs () =
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  let sys = opposed_pair () in
  List.iter
    (fun jobs ->
      expect_invalid "explore" (fun () -> Par.explore ~jobs sys);
      expect_invalid "find_deadlock" (fun () -> Par.find_deadlock ~jobs sys);
      expect_invalid "prefix_search" (fun () ->
          Prefix_search.find ~jobs sys);
      expect_invalid "analysis" (fun () ->
          Ddlock.Analysis.deadlock_free ~jobs sys))
    [ 0; -1 ]

let test_par_exact_cap () =
  (* Same exact budget semantics as the sequential engine, at any jobs. *)
  let sys = eight_state_sys () in
  List.iter
    (fun jobs ->
      check int_t "exact budget fits" 8
        (Par.state_count (Par.explore ~max_states:8 ~jobs sys));
      (match Par.explore ~max_states:7 ~jobs sys with
      | exception Explore.Too_large n -> check int_t "held at raise" 7 n
      | _ -> Alcotest.fail "expected Too_large");
      match Par.explore ~max_states:0 ~jobs sys with
      | exception Explore.Too_large n -> check int_t "no room for init" 0 n
      | _ -> Alcotest.fail "expected Too_large 0")
    [ 2; 3; 4 ];
  let opp = opposed_pair () in
  List.iter
    (fun jobs ->
      check bool_t "witness at the cap" true
        (Par.find_deadlock ~max_states:5 ~jobs opp
        = Explore.find_deadlock ~max_states:5 opp);
      match Par.find_deadlock ~max_states:4 ~jobs opp with
      | exception Explore.Too_large n -> check int_t "held at raise" 4 n
      | _ -> Alcotest.fail "expected Too_large")
    [ 2; 3; 4 ]

let test_prefix_search_jobs () =
  let sys = fig2ish () in
  check bool_t "deadlock_free agrees" true
    (Prefix_search.deadlock_free ~jobs:3 sys = Prefix_search.deadlock_free sys);
  (match Prefix_search.find ~jobs:3 sys with
  | None -> Alcotest.fail "fig2ish must have a deadlock prefix"
  | Some w ->
      check bool_t "schedule legal" true (Schedule.is_legal sys w.Prefix_search.schedule);
      check bool_t "prefix realized" true
        (State.equal
           (Schedule.prefix_vector sys w.Prefix_search.schedule)
           w.Prefix_search.prefix);
      check bool_t "reduction graph cyclic" true
        (Reduction.has_cycle (Reduction.make sys w.Prefix_search.prefix));
      (* The parallel witness is the first in BFS order, hence of minimal
         depth among all deadlock prefixes. *)
      (match Prefix_search.find sys with
      | None -> Alcotest.fail "sequential must agree"
      | Some ws ->
          check bool_t "minimal depth" true
            (List.length w.Prefix_search.schedule
            <= List.length ws.Prefix_search.schedule)));
  let safe_sys =
    let db = Db.one_site_per_entity [ "a"; "b" ] in
    let t = Builder.two_phase_chain db [ "a"; "b" ] in
    System.create [ t; Builder.two_phase_chain db [ "a"; "b" ] ]
  in
  check bool_t "safe system has no prefix" true
    (Prefix_search.find ~jobs:4 safe_sys = None);
  check bool_t "all ~jobs finds the same set" true
    (List.sort compare
       (List.map State.key (List.of_seq (Prefix_search.all ~jobs:3 sys)))
    = List.sort compare
        (List.map State.key (List.of_seq (Prefix_search.all sys))))

let test_minimize_jobs () =
  let sys = fig2ish () in
  match
    (Ddlock.Minimize.deadlock_core sys, Ddlock.Minimize.deadlock_core ~jobs:2 sys)
  with
  | Some a, Some b ->
      check bool_t "same core" true
        (a.Ddlock.Minimize.kept_txns = b.Ddlock.Minimize.kept_txns
        && a.Ddlock.Minimize.dropped_entities = b.Ddlock.Minimize.dropped_entities)
  | _ -> Alcotest.fail "fig2ish must minimize"

(* ------------------------------------------------------------------ *)
(* Properties: differential vs the sequential engine                   *)
(* ------------------------------------------------------------------ *)

let seed_and_jobs = QCheck.(pair (int_bound 1_000_000) (int_range 2 4))

let par_explore_prop =
  QCheck.Test.make ~name:"par explore ≡ sequential (count + witness)" ~count:40
    seed_and_jobs
    (fun (seed, jobs) ->
      let st = Fixtures.rng seed in
      let sys = Fixtures.small_random_system st ~txns:3 in
      Par.state_count (Par.explore ~jobs sys)
      = Explore.state_count (Explore.explore sys)
      && Par.find_deadlock ~jobs sys = Explore.find_deadlock sys)

let par_lemma1_prop =
  QCheck.Test.make ~name:"par Lemma-1 ≡ sequential (exact counterexample)"
    ~count:30 seed_and_jobs
    (fun (seed, jobs) ->
      let st = Fixtures.rng seed in
      let sys = Fixtures.small_random_pair st in
      Par.safe_and_deadlock_free ~jobs sys = Explore.safe_and_deadlock_free sys
      && Par.safe ~jobs sys = Explore.safe sys)

let par_prefix_prop =
  QCheck.Test.make ~name:"par prefix search ≡ sequential (Theorem 1)" ~count:30
    seed_and_jobs
    (fun (seed, jobs) ->
      let st = Fixtures.rng seed in
      let sys = Fixtures.small_random_system st ~txns:3 in
      let seq = Prefix_search.find sys and par = Prefix_search.find ~jobs sys in
      Option.is_none seq = Option.is_none par
      && (match (seq, par) with
         | Some ws, Some wp ->
             (* Both witnesses are genuine deadlock prefixes; the
                parallel one is canonical, hence no deeper. *)
             Reduction.has_cycle (Reduction.make sys wp.Prefix_search.prefix)
             && Reduction.has_cycle (Reduction.make sys ws.Prefix_search.prefix)
             && List.length wp.Prefix_search.schedule
                <= List.length ws.Prefix_search.schedule
         | _ -> true)
      && Prefix_search.deadlock_free ~jobs sys = Prefix_search.deadlock_free sys)

let par_cap_prop =
  (* Budget exhaustion is part of the observable behaviour: for any small
     cap, sequential and parallel agree on witness / verdict / Too_large,
     including the exact count the exception carries. *)
  QCheck.Test.make ~name:"par cap outcome ≡ sequential (exact Too_large)"
    ~count:40
    QCheck.(triple (int_bound 1_000_000) (int_range 2 4) (int_range 1 40))
    (fun (seed, jobs, max_states) ->
      let st = Fixtures.rng seed in
      let sys = Fixtures.small_random_system st ~txns:2 in
      let probe f =
        match f () with
        | Some w -> `Witness w
        | None -> `Deadlock_free
        | exception Explore.Too_large n -> `Too_large n
      in
      probe (fun () -> Explore.find_deadlock ~max_states sys)
      = probe (fun () -> Par.find_deadlock ~max_states ~jobs sys))

(* ------------------------------------------------------------------ *)
(* Properties: the purity contracts the engine relies on               *)
(* ------------------------------------------------------------------ *)

let states_of_run st sys =
  (* A bag of distinct reachable states sampled along one random run. *)
  let steps =
    match Explore.random_run st sys with
    | Explore.Completed s | Explore.Deadlocked (s, _) -> s
  in
  let sts, _ =
    List.fold_left
      (fun (acc, cur) step ->
        let nxt = State.apply cur step in
        (nxt :: acc, nxt))
      ([ State.initial sys ], State.initial sys)
      steps
  in
  sts

let key_injective_prop =
  (* Sharding correctness rests on State.key being a perfect proxy for
     State.equal: equal states collide, distinct states never do. *)
  QCheck.Test.make ~name:"State.key injective on reachable states" ~count:50
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let st = Fixtures.rng seed in
      let sys = Fixtures.small_random_system st ~txns:2 in
      let sts = states_of_run st sys in
      List.for_all
        (fun a ->
          List.for_all
            (fun b -> State.equal a b = (State.key a = State.key b))
            sts)
        sts)

let commutation_prop =
  (* Independent enabled steps commute: both orders survive and land in
     the same state, or neither order survives.  This is what makes
     cross-shard handoff order irrelevant; the oracle now lives in
     Sched.Indep, shared with the partial-order reduction. *)
  QCheck.Test.make ~name:"enabled/apply commute on independent steps"
    ~count:50
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let st = Fixtures.rng seed in
      let sys = Fixtures.small_random_system st ~txns:3 in
      List.for_all
        (fun cur ->
          let en = State.enabled sys cur in
          List.for_all
            (fun s ->
              List.for_all
                (fun t -> Step.equal s t || Indep.commutes sys cur s t)
                en)
            en)
        (states_of_run st sys))

let qtests =
  List.map Fixtures.to_alcotest
    [
      par_explore_prop;
      par_lemma1_prop;
      par_prefix_prop;
      par_cap_prop;
      key_injective_prop;
      commutation_prop;
    ]

let suite =
  [
    Alcotest.test_case "counts match across jobs" `Quick test_counts_match;
    Alcotest.test_case "witness identical" `Quick test_witness_identical;
    Alcotest.test_case "states in rank order" `Quick test_states_in_rank_order;
    Alcotest.test_case "schedules identical" `Quick test_schedules_identical;
    Alcotest.test_case "lemma1 identical" `Quick test_lemma1_identical;
    Alcotest.test_case "invalid jobs" `Quick test_invalid_jobs;
    Alcotest.test_case "exact cap" `Quick test_par_exact_cap;
    Alcotest.test_case "prefix search with jobs" `Quick test_prefix_search_jobs;
    Alcotest.test_case "minimize with jobs" `Quick test_minimize_jobs;
  ]
  @ qtests
