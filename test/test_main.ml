let () =
  Alcotest.run "ddlock"
    [
      ("graph", Test_graph.suite);
      ("model", Test_model.suite);
      ("schedule", Test_schedule.suite);
      ("deadlock", Test_deadlock.suite);
      ("par", Test_par.suite);
      ("fast", Test_fast.suite);
      ("sym", Test_sym.suite);
      ("por", Test_por.suite);
      ("safety", Test_safety.suite);
      ("conp", Test_conp.suite);
      ("sim", Test_sim.suite);
      ("workload", Test_workload.suite);
      ("faults", Test_faults.suite);
      ("core", Test_core.suite);
      ("policy", Test_policy.suite);
      ("rw", Test_rw.suite);
      ("semantics", Test_semantics.suite);
      ("edge", Test_edge.suite);
      ("obs", Test_obs.suite);
      ("serve", Test_serve.suite);
    ]
