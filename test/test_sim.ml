open Ddlock_model
open Ddlock_schedule
open Ddlock_sim

let check = Alcotest.check
let bool_t = Alcotest.bool
let int_t = Alcotest.int

(* ------------------------------------------------------------------ *)
(* Event queue                                                         *)
(* ------------------------------------------------------------------ *)

let test_pqueue_order () =
  let q = Pqueue.create () in
  List.iter (fun (k, v) -> Pqueue.push q k v) [ (3.0, "c"); (1.0, "a"); (2.0, "b") ];
  check int_t "size" 3 (Pqueue.size q);
  check (Alcotest.option Alcotest.(float 0.0)) "peek" (Some 1.0) (Pqueue.peek_key q);
  let order = List.init 3 (fun _ -> snd (Option.get (Pqueue.pop q))) in
  check (Alcotest.list Alcotest.string) "sorted" [ "a"; "b"; "c" ] order;
  check bool_t "empty" true (Pqueue.is_empty q)

let test_pqueue_fifo_ties () =
  let q = Pqueue.create () in
  List.iter (fun v -> Pqueue.push q 1.0 v) [ "first"; "second"; "third" ];
  let order = List.init 3 (fun _ -> snd (Option.get (Pqueue.pop q))) in
  check (Alcotest.list Alcotest.string) "fifo" [ "first"; "second"; "third" ] order

let pqueue_sorted_prop =
  QCheck.Test.make ~name:"pqueue pops in key order" ~count:200
    QCheck.(small_list (pair (float_bound_inclusive 100.0) small_nat))
    (fun items ->
      let q = Pqueue.create () in
      List.iter (fun (k, v) -> Pqueue.push q k v) items;
      let rec drain acc =
        match Pqueue.pop q with
        | None -> List.rev acc
        | Some (k, _) -> drain (k :: acc)
      in
      let keys = drain [] in
      keys = List.sort compare keys)

(* ------------------------------------------------------------------ *)
(* Runtime                                                             *)
(* ------------------------------------------------------------------ *)

let safe_pair () =
  let db = Db.one_site_per_entity [ "a"; "b" ] in
  System.create
    [
      Builder.two_phase_chain db [ "a"; "b" ];
      Builder.two_phase_chain db [ "a"; "b" ];
    ]

let test_run_completes () =
  let sys = safe_pair () in
  let rng = Fixtures.rng 1 in
  for _ = 1 to 50 do
    let r = Runtime.run rng sys in
    (match r.Runtime.outcome with
    | Runtime.Finished { makespan } ->
        check bool_t "positive makespan" true (makespan > 0.0)
    | Runtime.Deadlock _ -> Alcotest.fail "safe pair cannot deadlock");
    let s = Runtime.schedule_of_run r in
    check bool_t "trace legal" true (Schedule.is_legal sys s);
    check bool_t "trace complete" true (Schedule.is_complete sys s);
    check bool_t "trace serializable" true (Dgraph.is_serializable sys s)
  done

let test_philosophers_deadlock_observed () =
  let sys = Ddlock_workload.Gentx.dining_philosophers 3 in
  let rng = Fixtures.rng 2 in
  let saw = ref false in
  for _ = 1 to 300 do
    if not !saw then
      match (Runtime.run rng sys).Runtime.outcome with
      | Runtime.Deadlock { waits_for; cycle; _ } ->
          saw := true;
          check bool_t "wait-for arcs present" true (waits_for <> []);
          check bool_t "cycle present" true (cycle <> []);
          (* Every wait-for arc must point at a real holder. *)
          List.iter
            (fun (w, _, h) ->
              check bool_t "w != h" true (w <> h))
            waits_for
      | Runtime.Finished _ -> ()
  done;
  check bool_t "deadlock observed" true !saw

let test_batch () =
  let rng = Fixtures.rng 3 in
  let stats = Runtime.batch rng (safe_pair ()) ~runs:40 in
  check int_t "runs" 40 stats.Runtime.runs;
  check int_t "no deadlocks" 0 stats.Runtime.deadlocks;
  check int_t "all serializable" 0 stats.Runtime.non_serializable;
  check bool_t "makespan finite" true (Float.is_finite stats.Runtime.mean_makespan);
  let stats = Runtime.batch rng (Ddlock_workload.Gentx.dining_philosophers 4) ~runs:200 in
  check bool_t "philosophers deadlock sometimes" true (stats.Runtime.deadlocks > 0)

(* E11 validation: a system certified safe∧DF by Theorem 4 never
   deadlocks nor produces a non-serializable trace under the simulator. *)
let certified_systems_clean_prop =
  QCheck.Test.make
    ~name:"simulator never refutes a Theorem-4 safe∧DF certificate"
    ~count:40
    QCheck.(int_bound 10_000_000)
    (fun seed ->
      let st = Fixtures.rng seed in
      let sys = Fixtures.small_random_system st ~txns:3 in
      QCheck.assume (Ddlock_safety.Many.safe_and_deadlock_free sys);
      let stats = Runtime.batch st sys ~runs:20 in
      stats.Runtime.deadlocks = 0 && stats.Runtime.non_serializable = 0)

(* Conversely the simulator's traces are always legal schedules. *)
let trace_legal_prop =
  QCheck.Test.make ~name:"simulator traces are legal schedules" ~count:60
    QCheck.(int_bound 10_000_000)
    (fun seed ->
      let st = Fixtures.rng seed in
      let sys = Fixtures.small_random_system st ~txns:3 in
      let r = Runtime.run st sys in
      let s = Runtime.schedule_of_run r in
      Schedule.is_legal sys s
      &&
      match r.Runtime.outcome with
      | Runtime.Finished _ -> Schedule.is_complete sys s
      | Runtime.Deadlock { cycle; _ } ->
          (* Runtime deadlock states are deadlock states of the model. *)
          cycle <> []
          && State.is_deadlock sys (Schedule.to_state sys s))

(* ------------------------------------------------------------------ *)
(* Recovery schemes (wound-wait / wait-die / detect-and-abort)          *)
(* ------------------------------------------------------------------ *)

let schemes =
  [
    ("wait-die", Recovery.Wait_die);
    ("wound-wait", Recovery.Wound_wait);
    ("detect", Recovery.Detect { period = 5.0 });
    ("probabilistic", Recovery.Probabilistic);
  ]

let test_recovery_resolves_philosophers () =
  (* Under the plain runtime the philosophers deadlock; every recovery
     scheme must always drive them to completion, with legal serializable
     committed traces. *)
  let sys = Ddlock_workload.Gentx.dining_philosophers 4 in
  List.iter
    (fun (name, scheme) ->
      let rng = Fixtures.rng 21 in
      let stats = Recovery.batch ~scheme rng sys ~runs:60 in
      check int_t (name ^ ": no timeouts") 0 stats.Recovery.timeouts;
      check int_t (name ^ ": traces legal") 0 stats.Recovery.illegal_traces;
      check int_t
        (name ^ ": traces serializable")
        0 stats.Recovery.non_serializable_traces)
    schemes

let test_recovery_aborts_happen () =
  (* On a contended deadlocking workload the schemes must actually abort
     sometimes (otherwise they are not being exercised). *)
  let sys = Ddlock_workload.Gentx.dining_philosophers 4 in
  List.iter
    (fun (name, scheme) ->
      let rng = Fixtures.rng 22 in
      let stats = Recovery.batch ~scheme rng sys ~runs:60 in
      check bool_t (name ^ ": some aborts") true (stats.Recovery.total_aborts > 0))
    schemes

let test_recovery_no_aborts_when_safe () =
  (* Wait-die may die spuriously on plain contention; wound-wait wounds
     only on conflict, detect aborts only on real cycles.  On a
     conflict-free system (disjoint entities) no scheme should abort. *)
  let db = Db.one_site_per_entity [ "a"; "b"; "c" ] in
  let sys =
    System.create
      [
        Builder.two_phase_chain db [ "a" ];
        Builder.two_phase_chain db [ "b" ];
        Builder.two_phase_chain db [ "c" ];
      ]
  in
  List.iter
    (fun (name, scheme) ->
      let rng = Fixtures.rng 23 in
      let stats = Recovery.batch ~scheme rng sys ~runs:30 in
      check int_t (name ^ ": zero aborts") 0 stats.Recovery.total_aborts;
      check int_t (name ^ ": zero timeouts") 0 stats.Recovery.timeouts)
    schemes

let test_detect_only_aborts_on_cycles () =
  (* Ordered 2PL chains contend heavily but never deadlock: the detector
     must never fire. *)
  let db = Db.one_site_per_entity [ "a"; "b"; "c" ] in
  let sys =
    System.create
      (List.init 4 (fun _ -> Builder.two_phase_chain db [ "a"; "b"; "c" ]))
  in
  let rng = Fixtures.rng 24 in
  let stats =
    Recovery.batch ~scheme:(Recovery.Detect { period = 2.0 }) rng sys ~runs:40
  in
  check int_t "no aborts" 0 stats.Recovery.total_aborts;
  check int_t "no timeouts" 0 stats.Recovery.timeouts

(* ------------------------------------------------------------------ *)
(* Probabilistic scheme (random priorities, O&B arXiv:1010.4411)        *)
(* ------------------------------------------------------------------ *)

let test_probabilistic_no_deadlock () =
  (* Wait arcs ascend the random-priority order, so no run may ever get
     stuck — even on workloads that reliably deadlock without a scheme
     and under heavy ring contention. *)
  List.iter
    (fun sys ->
      let rng = Fixtures.rng 31 in
      let stats = Recovery.batch ~scheme:Recovery.Probabilistic rng sys ~runs:80 in
      check int_t "no timeouts" 0 stats.Recovery.timeouts;
      check int_t "traces legal" 0 stats.Recovery.illegal_traces;
      check int_t "traces serializable" 0 stats.Recovery.non_serializable_traces)
    [
      Ddlock_workload.Gentx.dining_philosophers 5;
      System.copies (Ddlock_workload.Gentx.guard_ring 4) 2;
    ]

let test_probabilistic_bounded_starvation () =
  (* Redraw-on-abort: no single transaction may be wounded unboundedly
     often.  80 contended runs with a generous per-transaction ceiling —
     a starving scheme blows through it (wound-wait's fixed-priority
     analogue with inverted priorities would). *)
  let sys = Ddlock_workload.Gentx.dining_philosophers 5 in
  let rng = Fixtures.rng 32 in
  let stats = Recovery.batch ~scheme:Recovery.Probabilistic rng sys ~runs:80 in
  check bool_t "some aborts (scheme exercised)" true
    (stats.Recovery.total_aborts > 0);
  check bool_t
    (Printf.sprintf "per-txn aborts bounded (max %d)"
       stats.Recovery.max_aborts_single_txn)
    true
    (stats.Recovery.max_aborts_single_txn <= 12)

(* ------------------------------------------------------------------ *)
(* Zipfian hotspot generator                                           *)
(* ------------------------------------------------------------------ *)

let zipf_well_formed_prop =
  QCheck.Test.make ~name:"zipf_system generates valid hotspot systems"
    ~count:60
    QCheck.(int_bound 10_000_000)
    (fun seed ->
      let st = Fixtures.rng seed in
      let sites = 1 + Random.State.int st 3 in
      let entities = 2 + Random.State.int st 4 in
      let txns = 1 + Random.State.int st 4 in
      let theta = Random.State.float st 2.0 in
      let sys =
        Ddlock_workload.Gentx.zipf_system st ~sites ~entities ~txns ~theta
      in
      (* Construction already validates via Transaction.make_exn; check
         the advertised shape on top. *)
      System.size sys = txns
      && Db.entity_count (System.db sys) = entities
      && Db.site_count (System.db sys) = sites
      && Array.for_all
           (fun t -> List.length (Transaction.entities t) = 2)
           (System.txns sys))

let test_zipf_skews_hot_entities () =
  (* At theta = 1.5 entity e0 must be touched far more often than the
     tail entity; at theta = 0 the draw is uniform.  Count over many
     systems with a fixed seed. *)
  let count_uses ~theta =
    let st = Fixtures.rng 33 in
    let uses = Array.make 8 0 in
    for _ = 1 to 60 do
      let sys =
        Ddlock_workload.Gentx.zipf_system st ~sites:2 ~entities:8 ~txns:3
          ~theta
      in
      Array.iter
        (fun t ->
          List.iter (fun e -> uses.(e) <- uses.(e) + 1) (Transaction.entities t))
        (System.txns sys)
    done;
    uses
  in
  let hot = count_uses ~theta:1.5 in
  check bool_t
    (Printf.sprintf "theta=1.5 skews to e0 (%d vs %d)" hot.(0) hot.(7))
    true
    (hot.(0) > 3 * hot.(7))

let recovery_always_commits_prop =
  QCheck.Test.make
    ~name:"recovery schemes always commit random deadlocking systems"
    ~count:30
    QCheck.(int_bound 10_000_000)
    (fun seed ->
      let st = Fixtures.rng seed in
      let sys = Fixtures.small_random_system st ~txns:3 in
      List.for_all
        (fun (_, scheme) ->
          let r = Recovery.run ~scheme st sys in
          (not r.Recovery.stats.Recovery.timed_out)
          && r.Recovery.stats.Recovery.commits = System.size sys
          && Schedule.is_complete sys r.Recovery.committed_trace)
        schemes)

(* ------------------------------------------------------------------ *)
(* Scenario-matrix chaos: seeded metamorphic sweep over the TPC-C and  *)
(* partial-replication scenarios across all five schemes               *)
(* ------------------------------------------------------------------ *)

let matrix_scenarios () =
  [
    {
      Chaos.label = "tpcc";
      system =
        Ddlock_workload.Gentx.tpcc_system
          (Fixtures.rng 0x7cc1)
          ~warehouses:2 ~txns:4 ~theta:1.2;
    };
    {
      Chaos.label = "partial-replication";
      system =
        (let rep =
           Ddlock_workload.Gentx.replicated_db ~sites:3 ~entities:4
             ~replication:2
         in
         Ddlock_workload.Gentx.replicated_system
           (Fixtures.rng 0x9e9c)
           rep ~txns:3 ~entities_per_txn:2);
    };
  ]

let test_matrix_scenarios_chaos_clean () =
  (* 2 scenarios x (5 schemes + 1 runtime probe) x 40 seeds, full fault
     intensity envelope: liveness, legality, mutual exclusion and
     serializability must survive every plan. *)
  let r =
    Chaos.sweep ~seeds:40 ~schemes:Chaos.default_schemes
      ~cases:(matrix_scenarios ()) 0x3a70
  in
  check int_t "runs" (2 * 6 * 40) r.Chaos.runs;
  List.iter
    (fun (seed, where, _) ->
      Alcotest.failf "matrix chaos violation in %s at seed %d" where seed)
    r.Chaos.violations;
  check int_t "all clean" r.Chaos.runs r.Chaos.clean_runs;
  (* Metamorphic: the sweep is a pure function of the base seed. *)
  let r' =
    Chaos.sweep ~seeds:40 ~schemes:Chaos.default_schemes
      ~cases:(matrix_scenarios ()) 0x3a70
  in
  check int_t "reproducible aborts" r.Chaos.total_aborts r'.Chaos.total_aborts;
  check (Alcotest.float 1e-9) "reproducible makespan" r.Chaos.mean_makespan
    r'.Chaos.mean_makespan

let matrix_zero_intensity_prop =
  (* Metamorphic: a random fault plan at intensity 0 is the empty plan —
     every scheme's run on the new scenarios is bit-identical to the
     fault-free run from the same simulator seed. *)
  QCheck.Test.make
    ~name:"matrix scenarios: intensity-0 plans behave like no faults"
    ~count:30
    QCheck.(int_bound 10_000_000)
    (fun seed ->
      List.for_all
        (fun { Chaos.system = sys; _ } ->
          let plan =
            Faults.random (Fixtures.rng seed) (System.db sys) ~intensity:0.0
              ~horizon:40.0
          in
          List.for_all
            (fun (_, scheme) ->
              let faulted =
                Recovery.run ~scheme ~faults:plan (Fixtures.rng (seed + 1)) sys
              in
              let plain =
                Recovery.run ~scheme ~faults:Faults.none
                  (Fixtures.rng (seed + 1))
                  sys
              in
              faulted.Recovery.stats = plain.Recovery.stats
              && faulted.Recovery.committed_trace
                 = plain.Recovery.committed_trace)
            Chaos.default_schemes)
        (matrix_scenarios ()))

let qtests =
  List.map Fixtures.to_alcotest
    [
      pqueue_sorted_prop;
      certified_systems_clean_prop;
      trace_legal_prop;
      recovery_always_commits_prop;
      zipf_well_formed_prop;
      matrix_zero_intensity_prop;
    ]

let suite =
  [
    Alcotest.test_case "pqueue order" `Quick test_pqueue_order;
    Alcotest.test_case "pqueue fifo ties" `Quick test_pqueue_fifo_ties;
    Alcotest.test_case "runs complete" `Quick test_run_completes;
    Alcotest.test_case "philosophers deadlock observed" `Quick
      test_philosophers_deadlock_observed;
    Alcotest.test_case "batch stats" `Quick test_batch;
    Alcotest.test_case "recovery resolves philosophers" `Quick
      test_recovery_resolves_philosophers;
    Alcotest.test_case "recovery aborts happen" `Quick
      test_recovery_aborts_happen;
    Alcotest.test_case "recovery quiet when conflict-free" `Quick
      test_recovery_no_aborts_when_safe;
    Alcotest.test_case "detect fires only on cycles" `Quick
      test_detect_only_aborts_on_cycles;
    Alcotest.test_case "probabilistic never deadlocks" `Quick
      test_probabilistic_no_deadlock;
    Alcotest.test_case "probabilistic bounded starvation" `Quick
      test_probabilistic_bounded_starvation;
    Alcotest.test_case "zipf skews hot entities" `Quick
      test_zipf_skews_hot_entities;
    Alcotest.test_case "matrix scenarios survive chaos sweep" `Quick
      test_matrix_scenarios_chaos_clean;
  ]
  @ qtests
