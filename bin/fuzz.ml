(* Differential soak tester: run the polynomial deciders against the
   exhaustive ground truth on endless random systems, printing any
   disagreement with its seed (none are known).

     dune exec bin/fuzz.exe -- [--rounds N] [--seed S] [--txns K]

   Checks per round:
   - Theorem 3 and the O(n³) minimal-prefix decider vs the exhaustive
     Lemma-1 search (pairs);
   - the [LP]/[SW] geometric deciders vs the exhaustive safety and
     deadlock searches (centralized pairs);
   - Theorem 4 vs exhaustive (k-transaction systems);
   - Theorem 1: deadlock-schedule search vs deadlock-prefix search;
   - Corollary 3 vs the pair test on two copies;
   - recovery-scheme invariants: wound-wait always commits with a legal
     committed trace, which is serializable whenever the system is safe
     (on unsafe systems non-serializable committed traces are expected);
   - chaos invariants: a random fault plan (site crashes, message
     loss/duplication, manager stalls) over wound-wait and the timeout
     scheme never breaks the committed-trace invariants of Sim.Chaos;
   - scenario-matrix shapes: small TPC-C-style and partial-replication
     systems (Workload.Gentx.tpcc_system / replicated_system) get the
     Theorem-4-vs-exhaustive cross-check and the chaos invariants under
     wound-wait and the probabilistic scheme every round;
   - rw invariants: exclusive-abstraction deadlock-freedom implies rw
     deadlock-freedom (2 transactions);
   - with [--jobs n], n > 1: the deterministic parallel engine
     (Par.Par_explore) vs the sequential explorer — identical state
     counts, identical deadlock witnesses, identical Lemma-1
     counterexamples, identical Theorem-1 prefix verdicts;
   - with [--symmetry]: the orbit-canonicalized engines (Sched.Canon)
     vs the plain ones — identical deadlock verdicts on both generic
     and identical-copy systems, witness legality, canonical state
     counts within [raw/orbit_size, raw], Theorem-1 prefix verdicts,
     and (under --jobs) par-vs-seq symmetric equality plus identical
     explore.states_visited / canon.hits counter totals;
   - with [--por]: the persistent/sleep-set reduced engines
     (Sched.Indep) vs the plain ones — byte-identical deadlock
     witnesses, reduced state counts never above plain, Theorem-1
     prefix verdicts, composition with --symmetry on copies systems,
     and (under --jobs) par-vs-seq reduced equality plus identical
     por.pruned / por.persistent_size counter totals;
   - with [--fast] (requires --jobs >= 2): the relaxed work-stealing
     engine (Par_explore ~mode:`Fast) vs the sequential ground truth —
     byte-identical find_deadlock results (fast re-canonicalizes its
     witness exactly like --por), identical state counts, identical
     Lemma-1 counterexamples, Theorem-1 prefix verdicts, legality /
     endpoint / deadlock of the raw (un-canonicalized) bfs witness via
     Schedule replay, and composition with --symmetry / --por.  The
     par.steals / par.intern_hits / par.arena_reuse counters are
     intentionally NOT cross-checked: they are racy by design and the
     jobs-invariance contract exempts them.

   The every-100-rounds summary line also reports cumulative per-engine
   wall-clock, so long soaks double as a coarse perf regression check.
*)

open Ddlock
module System = Model.System

let () =
  let rounds = ref 500 and seed = ref 1 and txns = ref 3 and jobs = ref 1 in
  let symmetry = ref false in
  let por = ref false in
  let fast = ref false in
  let args =
    [
      ("--rounds", Arg.Set_int rounds, "number of rounds (default 500)");
      ("--seed", Arg.Set_int seed, "base seed (default 1)");
      ("--txns", Arg.Set_int txns, "transactions per system (default 3)");
      ( "--jobs",
        Arg.Set_int jobs,
        "also cross-check the parallel engine with 2..jobs domains \
         (default 1 = off)" );
      ( "--symmetry",
        Arg.Set symmetry,
        "also cross-check the symmetry-reduced engines against the plain \
         ones every round" );
      ( "--por",
        Arg.Set por,
        "also cross-check the persistent/sleep-set reduced engines against \
         the plain ones every round" );
      ( "--fast",
        Arg.Set fast,
        "also cross-check the relaxed work-stealing engine against the \
         sequential ground truth every round (requires --jobs >= 2)" );
    ]
  in
  Arg.parse args (fun _ -> ()) "fuzz [options]";
  if !jobs < 1 then begin
    prerr_endline "fuzz: --jobs must be >= 1";
    exit 2
  end;
  if !fast && !jobs < 2 then begin
    prerr_endline "fuzz: --fast requires --jobs N with N >= 2";
    exit 2
  end;
  (* Cumulative wall-clock per engine family, reported every 100 rounds. *)
  let timers = Hashtbl.create 8 in
  let timed name f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let dt = Unix.gettimeofday () -. t0 in
    Hashtbl.replace timers name
      ((try Hashtbl.find timers name with Not_found -> 0.) +. dt);
    r
  in
  let timer_summary () =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) timers []
    |> List.sort compare
    |> List.map (fun (k, v) -> Printf.sprintf "%s %.2fs" k v)
    |> String.concat " "
  in
  let failures = ref 0 in
  let report name round =
    incr failures;
    Format.printf "DISAGREEMENT in %s at round %d (seed %d)@." name round !seed
  in
  for round = 1 to !rounds do
    let st = Random.State.make [| !seed; round |] in
    (* --- pairs --- *)
    let pair_sys = Workload.Gentx.small_random_pair st in
    let t1 = System.txn pair_sys 0 and t2 = System.txn pair_sys 1 in
    let exh =
      timed "seq" (fun () ->
          Result.is_ok (Sched.Explore.safe_and_deadlock_free pair_sys))
    in
    if Safety.Pair.safe_and_deadlock_free t1 t2 <> exh then
      report "Theorem 3" round;
    if Safety.Minimal_prefix.safe_and_deadlock_free t1 t2 <> exh then
      report "minimal-prefix" round;
    let df1, df2 = Deadlock.Theorem1.verdicts pair_sys in
    if df1 <> df2 then report "Theorem 1" round;
    if
      Safety.Copies.safe_and_deadlock_free t1
      <> Safety.Pair.safe_and_deadlock_free t1 t1
    then report "Corollary 3" round;
    (* --- centralized geometry --- *)
    let csys =
      Workload.Gentx.small_random_pair ~sites:1 ~entities:4 ~density:0.2 st
    in
    let c1 = System.txn csys 0 and c2 = System.txn csys 1 in
    if Safety.Geometry.deadlock_free c1 c2 <> Sched.Explore.deadlock_free csys
    then report "geometry deadlock" round;
    if Safety.Geometry.safe c1 c2 <> Result.is_ok (Sched.Explore.safe csys)
    then report "geometry safety" round;
    (* --- k transactions --- *)
    let sys = Workload.Gentx.small_random_system ~sites:2 ~entities:3 st ~txns:!txns in
    let sys_safe_df =
      timed "seq" (fun () ->
          Result.is_ok (Sched.Explore.safe_and_deadlock_free sys))
    in
    if Safety.Many.safe_and_deadlock_free sys <> sys_safe_df then
      report "Theorem 4" round;
    (* --- recovery invariants --- *)
    let r =
      timed "sim" (fun () ->
          Sim.Recovery.run ~scheme:Sim.Recovery.Wound_wait st sys)
    in
    if r.Sim.Recovery.stats.Sim.Recovery.timed_out then
      report "wound-wait timeout" round
    else if
      not (Sched.Schedule.is_complete sys r.Sim.Recovery.committed_trace)
    then report "wound-wait trace legality" round
    else if
      sys_safe_df
      && not (Sched.Dgraph.is_serializable sys r.Sim.Recovery.committed_trace)
    then report "wound-wait serializability" round;
    (* --- chaos invariants under a random fault plan --- *)
    let plan =
      Sim.Faults.random st (System.db sys)
        ~intensity:(Random.State.float st 0.8)
        ~horizon:30.0
    in
    List.iter
      (fun (sname, scheme) ->
        match Sim.Chaos.run_case ~scheme ~faults:plan st sys with
        | [], _ -> ()
        | vs, _ ->
            List.iter
              (fun v ->
                Format.printf "  %s: %a@." sname
                  (Sim.Chaos.pp_violation (System.db sys))
                  v)
              vs;
            report ("chaos/" ^ sname) round)
      [
        ("wound-wait", Sim.Recovery.Wound_wait);
        ("timeout", Sim.Recovery.default_timeout);
      ];
    (* --- scenario-matrix shapes: TPC-C and partial replication --- *)
    let tpcc_sys =
      Workload.Gentx.tpcc_system st
        ~warehouses:(1 + Random.State.int st 2)
        ~districts:2 ~items:3 ~customers:2
        ~items_per_order:(1 + Random.State.int st 2)
        ~txns:(2 + Random.State.int st 2)
        ~theta:(Random.State.float st 1.5)
    in
    let rep =
      Workload.Gentx.replicated_db
        ~sites:(2 + Random.State.int st 2)
        ~entities:(2 + Random.State.int st 2)
        ~replication:2
    in
    let rep_sys =
      Workload.Gentx.replicated_system st rep
        ~txns:(2 + Random.State.int st 2)
        ~entities_per_txn:(1 + Random.State.int st 2)
    in
    List.iter
      (fun (shape, ssys) ->
        (* 2PL chains keep the state spaces tiny, so the Theorem-4
           polynomial verdict is cross-checked exhaustively too. *)
        if
          Safety.Many.safe_and_deadlock_free ssys
          <> timed "seq" (fun () ->
                 Result.is_ok (Sched.Explore.safe_and_deadlock_free ssys))
        then report ("Theorem 4 (" ^ shape ^ ")") round;
        let splan =
          Sim.Faults.random st (System.db ssys)
            ~intensity:(Random.State.float st 0.8)
            ~horizon:30.0
        in
        List.iter
          (fun (sname, scheme) ->
            match Sim.Chaos.run_case ~scheme ~faults:splan st ssys with
            | [], _ -> ()
            | vs, r ->
                List.iter
                  (fun v ->
                    Format.printf "  %s: %a@." sname
                      (Sim.Chaos.pp_violation (System.db ssys))
                      v)
                  vs;
                List.iter
                  (fun (w, _, h) ->
                    Format.printf "  stuck: T%d waits on T%d@." (w + 1) (h + 1))
                  r.Sim.Recovery.stuck_waits;
                print_string
                  (Model.Parser.to_source (System.db ssys)
                     (List.mapi
                        (fun i t -> (Printf.sprintf "T%d" (i + 1), t))
                        (Array.to_list (System.txns ssys))));
                report (Printf.sprintf "chaos/%s/%s" shape sname) round)
          [
            ("wound-wait", Sim.Recovery.Wound_wait);
            ("probabilistic", Sim.Recovery.Probabilistic);
          ])
      [ ("tpcc", tpcc_sys); ("replicated", rep_sys) ];
    (* --- parallel engine vs sequential ground truth --- *)
    if !jobs > 1 then begin
      timed "par" @@ fun () ->
      let j = 2 + (round mod (!jobs - 1)) in
      if
        Par.Par_explore.find_deadlock ~jobs:j sys
        <> Sched.Explore.find_deadlock sys
      then report "par find_deadlock" round;
      if
        Par.Par_explore.state_count (Par.Par_explore.explore ~jobs:j sys)
        <> Sched.Explore.state_count (Sched.Explore.explore sys)
      then report "par state count" round;
      if
        Par.Par_explore.safe_and_deadlock_free ~jobs:j pair_sys
        <> Sched.Explore.safe_and_deadlock_free pair_sys
      then report "par lemma1" round;
      if
        Deadlock.Prefix_search.find ~jobs:j sys = None
        <> (Deadlock.Prefix_search.find sys = None)
      then report "par prefix search" round;
      (* Telemetry cross-check: both engines must report the same
         counter totals — the parallel reduction replays the sequential
         insertion order, so the counts are jobs-invariant. *)
      let counters_after f =
        Obs.Metrics.reset ();
        ignore (f ());
        ( Obs.Metrics.counter_value "explore.states_visited",
          Obs.Metrics.counter_value "explore.deadlock_witnesses" )
      in
      Obs.Control.on ();
      let seq_counts = counters_after (fun () -> Sched.Explore.find_deadlock sys) in
      let par_counts =
        counters_after (fun () -> Par.Par_explore.find_deadlock ~jobs:j sys)
      in
      Obs.Control.off ();
      Obs.Metrics.reset ();
      if seq_counts <> par_counts then report "obs counter determinism" round
    end;
    (* --- symmetry-reduced engines vs plain ground truth --- *)
    if !symmetry then begin
      timed "sym" @@ fun () ->
      (* Generic k-transaction system: same verdict, legal witness. *)
      (match
         ( Sched.Explore.find_deadlock sys,
           Sched.Explore.find_deadlock ~symmetry:true sys )
       with
      | None, None -> ()
      | None, Some _ | Some _, None -> report "sym verdict" round
      | Some _, Some (sched, stf) ->
          if not (Sched.Schedule.is_legal sys sched) then
            report "sym witness legality" round
          else if not (Sched.State.equal (Sched.Schedule.prefix_vector sys sched) stf)
          then report "sym witness endpoint" round
          else if not (Sched.State.is_deadlock sys stf) then
            report "sym witness deadlock" round);
      if
        Deadlock.Prefix_search.deadlock_free ~symmetry:true sys
        <> Deadlock.Prefix_search.deadlock_free sys
      then report "sym prefix verdict" round;
      (* Identical copies: counts bounded by the orbit size, same verdict. *)
      let copies = 2 + (round mod 2) in
      let ksys = Workload.Gentx.random_copies_system st ~copies in
      let canon = Sched.Canon.detect ksys in
      let raw = Sched.Explore.state_count (Sched.Explore.explore ksys) in
      let reduced =
        Sched.Explore.state_count (Sched.Explore.explore ~symmetry:true ksys)
      in
      if reduced > raw || raw > reduced * Sched.Canon.orbit_size canon then
        report "sym state-count bound" round;
      if
        (Sched.Explore.find_deadlock ksys = None)
        <> (Sched.Explore.find_deadlock ~symmetry:true ksys = None)
      then report "sym copies verdict" round;
      if !jobs > 1 then begin
        let j = 2 + (round mod (!jobs - 1)) in
        if
          Par.Par_explore.find_deadlock ~symmetry:true ~jobs:j ksys
          <> Sched.Explore.find_deadlock ~symmetry:true ksys
        then report "sym par witness" round;
        if
          Par.Par_explore.state_count
            (Par.Par_explore.explore ~symmetry:true ~jobs:j ksys)
          <> reduced
        then report "sym par state count" round;
        (* Counter totals must be jobs-invariant under symmetry too. *)
        let counters_after f =
          Obs.Metrics.reset ();
          ignore (f ());
          ( Obs.Metrics.counter_value "explore.states_visited",
            Obs.Metrics.counter_value "canon.hits" )
        in
        Obs.Control.on ();
        let seq_counts =
          counters_after (fun () ->
              Sched.Explore.find_deadlock ~symmetry:true ksys)
        in
        let par_counts =
          counters_after (fun () ->
              Par.Par_explore.find_deadlock ~symmetry:true ~jobs:j ksys)
        in
        Obs.Control.off ();
        Obs.Metrics.reset ();
        if seq_counts <> par_counts then
          report "sym counter determinism" round
      end
    end;
    (* --- partial-order-reduced engines vs plain ground truth --- *)
    if !por then begin
      timed "por" @@ fun () ->
      (* Verdict AND witness are byte-identical: the reduced search
         decides, a plain re-search canonicalizes the witness. *)
      let plain = Sched.Explore.find_deadlock sys in
      if Sched.Explore.find_deadlock ~por:true sys <> plain then
        report "por find_deadlock" round;
      if
        Sched.Explore.state_count (Sched.Explore.explore ~por:true sys)
        > Sched.Explore.state_count (Sched.Explore.explore sys)
      then report "por state-count bound" round;
      if
        Deadlock.Prefix_search.deadlock_free ~por:true sys
        <> Deadlock.Prefix_search.deadlock_free sys
      then report "por prefix verdict" round;
      (* Composition with the orbit quotient on an identical-copies
         system: the canonicalized witness is still the plain one. *)
      let copies = 2 + (round mod 2) in
      let ksys = Workload.Gentx.random_copies_system st ~copies in
      if
        Sched.Explore.find_deadlock ~por:true ~symmetry:true ksys
        <> Sched.Explore.find_deadlock ksys
      then report "por+sym verdict" round;
      if !jobs > 1 then begin
        let j = 2 + (round mod (!jobs - 1)) in
        if Par.Par_explore.find_deadlock ~por:true ~jobs:j sys <> plain then
          report "por par witness" round;
        if
          Par.Par_explore.state_count
            (Par.Par_explore.explore ~por:true ~jobs:j sys)
          <> Sched.Explore.state_count (Sched.Explore.explore ~por:true sys)
        then report "por par state count" round;
        (* POR telemetry totals are jobs-invariant: the work-item
           multiset is the same whichever engine expands it. *)
        let counters_after f =
          Obs.Metrics.reset ();
          ignore (f ());
          ( Obs.Metrics.counter_value "explore.states_visited",
            Obs.Metrics.counter_value "por.pruned",
            Obs.Metrics.counter_value "por.persistent_size" )
        in
        Obs.Control.on ();
        let seq_counts =
          counters_after (fun () -> Sched.Explore.explore ~por:true sys)
        in
        let par_counts =
          counters_after (fun () ->
              Par.Par_explore.explore ~por:true ~jobs:j sys)
        in
        Obs.Control.off ();
        Obs.Metrics.reset ();
        if seq_counts <> par_counts then
          report "por counter determinism" round
      end
    end;
    (* --- relaxed work-stealing engine vs sequential ground truth --- *)
    if !fast then begin
      timed "fast" @@ fun () ->
      let j = 2 + (round mod (!jobs - 1)) in
      let plain = Sched.Explore.find_deadlock sys in
      (* find_deadlock re-canonicalizes (same contract as --por), so the
         result is byte-identical to the sequential engine's. *)
      if Par.Par_explore.find_deadlock ~mode:`Fast ~jobs:j sys <> plain then
        report "fast find_deadlock" round;
      if
        Par.Par_explore.state_count
          (Par.Par_explore.explore ~mode:`Fast ~jobs:j sys)
        <> Sched.Explore.state_count (Sched.Explore.explore sys)
      then report "fast state count" round;
      if
        Par.Par_explore.safe_and_deadlock_free ~mode:`Fast ~jobs:j pair_sys
        <> Sched.Explore.safe_and_deadlock_free pair_sys
      then report "fast lemma1" round;
      if
        Deadlock.Prefix_search.find ~fast:true ~jobs:j sys = None
        <> (Deadlock.Prefix_search.find sys = None)
      then report "fast prefix verdict" round;
      (* The raw relaxed witness (before canonicalization) is whichever
         deadlock a worker reached first: not deterministic, but always a
         legal schedule whose replay ends in its deadlocked endpoint. *)
      (match
         Par.Par_explore.bfs ~mode:`Fast ~jobs:j sys
           ~found:(Sched.State.is_deadlock sys)
       with
      | None -> if plain <> None then report "fast bfs verdict" round
      | Some (sched, stf) ->
          if plain = None then report "fast bfs verdict" round
          else if not (Sched.Schedule.is_legal sys sched) then
            report "fast witness legality" round
          else if
            not (Sched.State.equal (Sched.Schedule.prefix_vector sys sched) stf)
          then report "fast witness endpoint" round
          else if not (Sched.State.is_deadlock sys stf) then
            report "fast witness deadlock" round);
      (* Composition: re-canonicalization makes fast+sym / fast+por land
         on the plain sequential result too. *)
      if !symmetry then
        if
          Par.Par_explore.find_deadlock ~mode:`Fast ~symmetry:true ~jobs:j sys
          <> plain
        then report "fast+sym verdict" round;
      if !por then begin
        if
          Par.Par_explore.find_deadlock ~mode:`Fast ~por:true ~jobs:j sys
          <> plain
        then report "fast+por verdict" round;
        if
          Par.Par_explore.state_count
            (Par.Par_explore.explore ~mode:`Fast ~por:true ~jobs:j sys)
          > Sched.Explore.state_count (Sched.Explore.explore sys)
        then report "fast por state-count bound" round
      end
    end;
    (* --- rw invariants --- *)
    let rwdb = Workload.Gentx.random_db ~sites:1 ~entities:3 in
    let rwmk () =
      let k = 1 + Random.State.int st 3 in
      let ents = Workload.Gentx.random_entity_subset st rwdb ~k in
      let nodes =
        List.map
          (fun e ->
            let m = if Random.State.bool st then Rw.Rw_txn.Read else Rw.Rw_txn.Write in
            { Rw.Rw_txn.entity = e; op = Rw.Rw_txn.Lock m })
          ents
        @ List.map (fun e -> { Rw.Rw_txn.entity = e; op = Rw.Rw_txn.Unlock }) ents
      in
      match Rw.Rw_txn.of_total_order rwdb nodes with
      | Ok t -> t
      | Error _ -> assert false
    in
    let rwsys = Rw.Rw_system.create [ rwmk (); rwmk () ] in
    if
      Sched.Explore.deadlock_free (Rw.Rw_system.to_exclusive rwsys)
      && not (Rw.Rw_system.deadlock_free rwsys)
    then report "rw abstraction soundness" round;
    if round mod 100 = 0 then
      Format.printf "round %d/%d: %d disagreements [%s]@." round !rounds
        !failures (timer_summary ())
  done;
  Format.printf "done: %d rounds, %d disagreements@." !rounds !failures;
  exit (if !failures = 0 then 0 else 1)
