(* ddlock — static safety/deadlock analysis of distributed locked
   transactions (Wolfson & Yannakakis, PODS'85), plus a runtime
   simulator and the Theorem-2 SAT reduction. *)

open Cmdliner
open Ddlock
module Db = Model.Db
module Transaction = Model.Transaction
module System = Model.System
module Parser = Model.Parser

let read_file path =
  match open_in_bin path with
  | exception Sys_error msg ->
      prerr_endline msg;
      exit 2
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          try really_input_string ic (in_channel_length ic)
          with Sys_error msg ->
            prerr_endline msg;
            exit 2)

let load path =
  match Parser.parse (read_file path) with
  | Ok r -> r
  | Error e ->
      Format.eprintf "%s: %a@." path Parser.pp_error e;
      exit 2

let find_txn r name =
  match List.assoc_opt name r.Parser.named with
  | Some t -> t
  | None ->
      Format.eprintf "unknown transaction %S (have: %s)@." name
        (String.concat ", " (List.map fst r.Parser.named));
      exit 2

(* ----------------------------- arguments --------------------------- *)

(* Plain strings, not [Arg.file]: existence is checked by [read_file],
   which reports a one-line error and exits 2 — same path for missing
   files and unreadable ones. *)
let file_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE"
       ~doc:"Transaction-system source file (see ddlock gen for the format).")

let max_states_arg =
  Arg.(value & opt int 500_000 & info [ "max-states" ]
       ~doc:"State budget for the exhaustive deadlock search.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.")

let jobs_arg =
  Arg.(value & opt int 1 & info [ "jobs" ]
       ~doc:"Worker domains for the exhaustive search (results are \
             identical for every value; 1 = sequential).")

let check_jobs jobs =
  if jobs < 1 then begin
    Format.eprintf "ddlock: --jobs must be >= 1 (got %d)@." jobs;
    exit 2
  end

let symmetry_arg =
  Arg.(value & flag & info [ "symmetry" ]
       ~doc:"Exploit identical-transaction symmetry in the exhaustive \
             search: states are canonicalized to one representative per \
             orbit of the automorphism group (verdict unchanged; \
             reported schedules are mapped back to the original \
             transaction indices).  A warning is printed when no two \
             transactions are identical (the flag is then a no-op).")

(* --symmetry on a system with a trivial automorphism group is
   legitimate (the engines silently fall back to the plain search), but
   the user probably expected a reduction — warn, don't fail. *)
let check_symmetry ~symmetry sys =
  if symmetry && not (Sched.Canon.nontrivial (Sched.Canon.detect sys)) then
    Format.eprintf
      "ddlock: --symmetry: no two transactions are structurally identical; \
       symmetry reduction is a no-op@."

let por_arg =
  Arg.(value & flag & info [ "por" ]
       ~doc:"Partial-order reduction: run the exhaustive search over a \
             persistent/sleep-set reduced state space (independent \
             steps are explored in one order instead of all).  The \
             verdict — and for $(b,analyze), the reported witness \
             schedule — is identical to the plain search; composes \
             with --symmetry and --jobs.  A warning is printed when no \
             two steps are independent (the flag is then a no-op).")

(* Same contract as check_symmetry: a --por run on a system with no
   independent step pair (and no same-transaction diamond) explores
   exactly the plain space — warn, don't fail. *)
let check_por ~por sys =
  if por && not (Sched.Indep.has_independent_pair sys) then
    Format.eprintf
      "ddlock: --por: no two steps are independent; partial-order \
       reduction is a no-op@."

let fast_arg =
  Arg.(value & flag & info [ "fast" ]
       ~doc:"Relaxed work-stealing exhaustive search: drops the \
             deterministic engine's per-level barrier for real \
             multicore speedup.  The verdict — and for $(b,analyze), \
             the reported witness schedule — is identical to the plain \
             search (witnesses are re-canonicalized by a sequential \
             re-search, as with --por); composes with --symmetry and \
             --por.  Requires --jobs N with N >= 2.")

(* Fast mode with one domain would silently be a slower way to spell
   the sequential engine's verdict; require an explicit worker count
   so the flag always means "use the cores". *)
let check_fast ~fast jobs =
  if fast && jobs < 2 then begin
    Format.eprintf "ddlock: --fast requires --jobs N with N >= 2@.";
    exit 2
  end

(* --------------------------- observability ------------------------- *)

let stats_arg =
  Arg.(value & flag & info [ "stats" ]
       ~doc:"Collect telemetry during the run and print a metrics and \
             span summary on stderr when the command finishes.")

let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
       ~doc:"With --stats: also write the recorded spans as Chrome \
             trace-event JSON to $(docv) (loadable in Perfetto or \
             chrome://tracing).")

(* Validate the flag combination and open the trace sink before any work
   happens, so file errors surface as the usual one-line message with
   exit 2.  The summary (and the trace file) are emitted from an
   [at_exit] hook: the analysis commands exit with meaningful codes from
   several places, and the hook covers them all. *)
let obs_start ~stats ~trace =
  (match (trace, stats) with
  | Some _, false ->
      prerr_endline "ddlock: --trace requires --stats";
      exit 2
  | _ -> ());
  if stats then begin
    let sink =
      match trace with
      | None -> None
      | Some path -> (
          match open_out_bin path with
          | exception Sys_error msg ->
              prerr_endline msg;
              exit 2
          | oc -> Some oc)
    in
    Obs.Metrics.reset ();
    Obs.Trace.clear ();
    Obs.Control.on ();
    at_exit (fun () ->
        Obs.Control.off ();
        Format.eprintf "@[<v>-- stats --@,%a-- spans --@,%a@]@?"
          Obs.Metrics.pp_summary (Obs.Metrics.snapshot ())
          Obs.Trace.pp_summary (Obs.Trace.summary ());
        match sink with
        | None -> ()
        | Some oc ->
            Fun.protect
              ~finally:(fun () -> close_out_noerr oc)
              (fun () -> Obs.Trace.write_chrome_json oc))
  end

(* ----------------------------- validate ---------------------------- *)

let validate_cmd =
  let run file =
    let r = load file in
    Format.printf "%s: OK (%d sites, %d entities, %d transactions)@." file
      (Db.site_count r.Parser.db)
      (Db.entity_count r.Parser.db)
      (List.length r.Parser.named)
  in
  Cmd.v (Cmd.info "validate" ~doc:"Parse and validate a system file.")
    Term.(const run $ file_arg)

(* ----------------------------- analyze ----------------------------- *)

let analyze_cmd =
  let run file max_states jobs symmetry por fast stats trace =
    check_jobs jobs;
    check_fast ~fast jobs;
    obs_start ~stats ~trace;
    let r = load file in
    let sys = Parser.system_of_result r in
    check_symmetry ~symmetry sys;
    check_por ~por sys;
    let text, status, _report =
      Analysis.render_full ~max_states ~jobs ~symmetry ~por ~fast sys
    in
    print_string text;
    exit status
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Full analysis: Theorem 3/4 safety∧deadlock-freedom plus bounded \
          exhaustive deadlock search.")
    Term.(
      const run $ file_arg $ max_states_arg $ jobs_arg $ symmetry_arg
      $ por_arg $ fast_arg $ stats_arg $ trace_arg)

(* ------------------------------- pair ------------------------------ *)

let pair_cmd =
  let t1_arg = Arg.(required & pos 1 (some string) None & info [] ~docv:"T1") in
  let t2_arg = Arg.(required & pos 2 (some string) None & info [] ~docv:"T2") in
  let run file n1 n2 =
    let r = load file in
    let t1 = find_txn r n1 and t2 = find_txn r n2 in
    match Safety.Pair.check t1 t2 with
    | Ok () ->
        Format.printf "{%s, %s}: safe and deadlock-free (Theorem 3)@." n1 n2
    | Error f ->
        Format.printf "{%s, %s}: NOT safe∧deadlock-free: %a@." n1 n2
          (Safety.Pair.pp_failure r.Parser.db)
          f;
        exit 1
  in
  Cmd.v
    (Cmd.info "pair" ~doc:"Theorem 3 O(n²) test on two named transactions.")
    Term.(const run $ file_arg $ t1_arg $ t2_arg)

(* ------------------------------ copies ----------------------------- *)

let copies_cmd =
  let t_arg = Arg.(required & pos 1 (some string) None & info [] ~docv:"T") in
  let run file name =
    let r = load file in
    let t = find_txn r name in
    match Safety.Copies.check t with
    | Ok () ->
        Format.printf
          "any number of copies of %s is safe and deadlock-free (Cor. 3 + Thm 5)@."
          name
    | Error f ->
        Format.printf "copies of %s are NOT safe∧deadlock-free: %a@." name
          (Safety.Copies.pp_failure r.Parser.db)
          f;
        exit 1
  in
  Cmd.v
    (Cmd.info "copies"
       ~doc:"Corollary 3 test: are copies of a transaction safe∧DF?")
    Term.(const run $ file_arg $ t_arg)

(* ----------------------------- simulate ---------------------------- *)

let simulate_cmd =
  let runs_arg =
    Arg.(value & opt int 100 & info [ "runs" ] ~doc:"Number of executions.")
  in
  let run file runs seed =
    let r = load file in
    let sys = Parser.system_of_result r in
    let rng = Random.State.make [| seed |] in
    let stats = Sim.Runtime.batch rng sys ~runs in
    Format.printf "%a@." Sim.Runtime.pp_batch stats;
    (* Show one deadlocked trace if any occurred. *)
    if stats.Sim.Runtime.deadlocks > 0 then begin
      let rng = Random.State.make [| seed |] in
      let rec find k =
        if k = 0 then ()
        else
          let one = Sim.Runtime.run rng sys in
          match one.Sim.Runtime.outcome with
          | Sim.Runtime.Deadlock _ as o ->
              Format.printf "example: %a@." (Sim.Runtime.pp_outcome sys) o
          | _ -> find (k - 1)
      in
      find (10 * runs)
    end
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Execute the system repeatedly on the discrete-event runtime.")
    Term.(const run $ file_arg $ runs_arg $ seed_arg)

(* ------------------------------- gen ------------------------------- *)

let gen_cmd =
  let kind_arg =
    Arg.(
      required
      & pos 0 (some (enum
           [ ("philosophers", `Phil); ("ring", `Ring); ("random", `Random);
             ("zipf", `Zipf); ("tpcc", `Tpcc); ("replicated", `Replicated) ]))
          None
      & info [] ~docv:"KIND"
          ~doc:"philosophers | ring | random | zipf | tpcc | replicated")
  in
  let size_arg =
    Arg.(value & opt int 3
         & info [ "n" ] ~doc:"Size parameter (k / entities).")
  in
  let txns_arg =
    Arg.(value & opt int 3
         & info [ "txns" ] ~doc:"Transactions (random/zipf/tpcc/replicated).")
  in
  let copies_arg =
    Arg.(value & opt int 1 & info [ "copies" ]
         ~doc:"Emit this many copies of every generated transaction \
               (e.g. ring -n 4 --copies 2 is the paper's Fig. 2 shape).")
  in
  let theta_arg =
    Arg.(value & opt float 1.2 & info [ "theta" ]
         ~doc:"Zipf skew exponent (zipf/tpcc kinds); must be > 0.")
  in
  let warehouses_arg =
    Arg.(value & opt int 2 & info [ "warehouses" ]
         ~doc:"Warehouses (tpcc kind).")
  in
  let sites_arg =
    Arg.(value & opt int 3 & info [ "sites" ] ~doc:"Sites (replicated kind).")
  in
  let replication_arg =
    Arg.(value & opt int 2 & info [ "replication" ]
         ~doc:"Replicas per logical entity (replicated kind); must be in \
               [1, --sites].")
  in
  let run kind n txns copies seed theta warehouses sites replication =
    if copies < 1 then begin
      Format.eprintf "ddlock: --copies must be >= 1 (got %d)@." copies;
      exit 2
    end;
    if txns < 1 then begin
      Format.eprintf "ddlock: --txns must be >= 1 (got %d)@." txns;
      exit 2
    end;
    if n < 1 then begin
      Format.eprintf "ddlock: -n must be >= 1 (got %d)@." n;
      exit 2
    end;
    (match kind with
    | `Zipf | `Tpcc when theta <= 0.0 ->
        Format.eprintf "ddlock: --theta must be > 0 (got %g)@." theta;
        exit 2
    | `Tpcc when warehouses < 1 ->
        Format.eprintf "ddlock: --warehouses must be >= 1 (got %d)@." warehouses;
        exit 2
    | `Replicated when sites < 1 ->
        Format.eprintf "ddlock: --sites must be >= 1 (got %d)@." sites;
        exit 2
    | `Replicated when replication < 1 || replication > sites ->
        Format.eprintf
          "ddlock: --replication must be in [1, --sites] (got %d with %d \
           sites)@."
          replication sites;
        exit 2
    | _ -> ());
    let named sys =
      List.mapi
        (fun i t -> (Printf.sprintf "T%d" (i + 1), t))
        (Array.to_list (System.txns sys))
    in
    let db, pairs =
      match kind with
      | `Phil ->
          let sys = Workload.Gentx.dining_philosophers n in
          (System.db sys, named sys)
      | `Ring ->
          let t = Workload.Gentx.guard_ring n in
          (Transaction.db t, [ ("T", t) ])
      | `Random ->
          let st = Random.State.make [| seed |] in
          let db = Workload.Gentx.random_db ~sites:(max 1 (n / 2)) ~entities:n in
          let sys =
            Workload.Gentx.random_system st db ~txns ~entities_per_txn:(max 1 (n / 2))
              ~density:0.3
          in
          (db, named sys)
      | `Zipf ->
          let st = Random.State.make [| seed |] in
          let sys =
            Workload.Gentx.zipf_system st ~sites:(max 1 (n / 2)) ~entities:n
              ~txns ~theta
          in
          (System.db sys, named sys)
      | `Tpcc ->
          let st = Random.State.make [| seed |] in
          let sys = Workload.Gentx.tpcc_system st ~warehouses ~txns ~theta in
          (System.db sys, named sys)
      | `Replicated ->
          let st = Random.State.make [| seed |] in
          let rep =
            Workload.Gentx.replicated_db ~sites ~entities:n ~replication
          in
          let sys =
            Workload.Gentx.replicated_system st rep ~txns
              ~entities_per_txn:(min 2 n)
          in
          (System.db sys, named sys)
    in
    let pairs =
      if copies = 1 then pairs
      else
        List.concat_map
          (fun c ->
            List.map
              (fun (name, t) -> (Printf.sprintf "%s_%d" name (c + 1), t))
              pairs)
          (List.init copies Fun.id)
    in
    print_string (Parser.to_source db pairs)
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a system file on stdout.")
    Term.(
      const run $ kind_arg $ size_arg $ txns_arg $ copies_arg $ seed_arg
      $ theta_arg $ warehouses_arg $ sites_arg $ replication_arg)

(* ----------------------------- sat-reduce -------------------------- *)

let sat_reduce_cmd =
  let vars_arg =
    Arg.(value & opt int 3 & info [ "vars" ] ~doc:"Variables in the random 3SAT' formula.")
  in
  let file_opt_arg =
    Arg.(value & opt (some string) None & info [ "file" ]
         ~doc:"DIMACS CNF file; normalized to 3SAT' before the reduction.")
  in
  let run vars seed file =
    let st = Random.State.make [| seed |] in
    let f =
      match file with
      | None -> Conp.Gen3sat.generate st ~n_vars:vars
      | Some path -> (
          match Conp.Normalize.parse_dimacs (read_file path) with
          | Error e ->
              Format.eprintf "%s: %s@." path e;
              exit 2
          | Ok general ->
              let nz = Conp.Normalize.normalize general in
              Format.printf
                "normalized %d vars / %d clauses to 3SAT' with %d vars / %d clauses@."
                general.Conp.Formula.n_vars
                (List.length general.Conp.Formula.clauses)
                nz.Conp.Normalize.formula.Conp.Formula.n_vars
                (List.length nz.Conp.Normalize.formula.Conp.Formula.clauses);
              nz.Conp.Normalize.formula)
    in
    let vars = f.Conp.Formula.n_vars in
    Format.printf "formula: %a@." Conp.Formula.pp f;
    let r = Conp.Reduction_sat.build f in
    Format.printf "reduction: %d entities, %d+%d nodes, %d sites@."
      (Db.entity_count r.Conp.Reduction_sat.db)
      (Transaction.node_count r.Conp.Reduction_sat.t1)
      (Transaction.node_count r.Conp.Reduction_sat.t2)
      (Db.site_count r.Conp.Reduction_sat.db);
    match Conp.Dpll.solve f with
    | None ->
        Format.printf
          "DPLL: unsatisfiable — {T1,T2} has no deadlock prefix (Theorem 2)@."
    | Some model -> (
        Format.printf "DPLL: satisfiable@.";
        match Conp.Reduction_sat.deadlock_witness r model with
        | None -> Format.eprintf "internal error: witness construction failed@."
        | Some (steps, cycle) ->
            Format.printf "deadlock prefix schedule: %a@."
              (Sched.Step.pp_schedule r.Conp.Reduction_sat.sys)
              steps;
            Format.printf "reduction-graph cycle:    %a@."
              (Sched.Step.pp_schedule r.Conp.Reduction_sat.sys)
              cycle;
            let a = Conp.Reduction_sat.assignment_of_cycle r cycle in
            Format.printf "assignment extracted back from the cycle: %s@."
              (String.concat ", "
                 (List.init vars (fun j ->
                      Printf.sprintf "x%d=%b" j a.(j)))))
  in
  Cmd.v
    (Cmd.info "sat-reduce"
       ~doc:"Demonstrate the Theorem 2 reduction on a random 3SAT' formula.")
    Term.(const run $ vars_arg $ seed_arg $ file_opt_arg)

(* ------------------------------ repair ----------------------------- *)

let repair_cmd =
  let run file =
    let r = load file in
    let sys = Parser.system_of_result r in
    match Analysis.safe_and_deadlock_free sys with
    | Analysis.Safe_and_deadlock_free ->
        Format.printf "# already safe and deadlock-free; nothing to repair@."
    | v -> (
        Format.eprintf "# %a@." (Analysis.pp_safety_verdict sys) v;
        match Analysis.repair_with_global_order sys with
        | None ->
            Format.eprintf
              "cannot repair: transactions are not total orders@.";
            exit 1
        | Some sys' ->
            let named =
              List.mapi
                (fun i t -> (Printf.sprintf "T%d" (i + 1), t))
                (Array.to_list (System.txns sys'))
            in
            print_string (Parser.to_source (System.db sys') named))
  in
  Cmd.v
    (Cmd.info "repair"
       ~doc:
         "Rewrite a failing system of total orders with a global lock           order (2PL, ascending entities); emits the certified system.")
    Term.(const run $ file_arg)

(* ----------------------------- minimize ---------------------------- *)

let minimize_cmd =
  let run file max_states jobs symmetry por fast stats trace =
    check_jobs jobs;
    check_fast ~fast jobs;
    obs_start ~stats ~trace;
    let r = load file in
    let sys = Parser.system_of_result r in
    check_symmetry ~symmetry sys;
    check_por ~por sys;
    match Minimize.deadlock_core ~max_states ~jobs ~symmetry ~por ~fast sys with
    | None ->
        Format.printf
          "# no deadlock found (deadlock-free, or search budget exceeded)@.";
        exit 1
    | Some core ->
        Format.eprintf "# kept transactions: %s@."
          (String.concat ", "
             (List.map
                (fun i -> "T" ^ string_of_int (i + 1))
                core.Minimize.kept_txns));
        List.iter
          (fun (i, e) ->
            Format.eprintf "# dropped %s from T%d@."
              (Db.entity_name (System.db sys) e)
              (i + 1))
          core.Minimize.dropped_entities;
        let named =
          List.mapi
            (fun i t -> (Printf.sprintf "T%d" (i + 1), t))
            (Array.to_list (System.txns core.Minimize.core))
        in
        print_string (Parser.to_source (System.db core.Minimize.core) named)
  in
  Cmd.v
    (Cmd.info "minimize"
       ~doc:
         "Shrink a deadlocking system to a minimal core that still           deadlocks (drops transactions and entity accesses).")
    Term.(
      const run $ file_arg $ max_states_arg $ jobs_arg $ symmetry_arg
      $ por_arg $ fast_arg $ stats_arg $ trace_arg)

(* ------------------------------- dot ------------------------------- *)

let dot_cmd =
  let what_arg =
    Arg.(
      value
      & opt (enum [ ("system", `System); ("interaction", `Interaction) ]) `System
      & info [ "what" ] ~doc:"system | interaction")
  in
  let run file what =
    let r = load file in
    let sys = Parser.system_of_result r in
    print_string
      (match what with
      | `System -> Dot.system sys
      | `Interaction -> Dot.interaction sys)
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Emit Graphviz for a system or its interaction graph.")
    Term.(const run $ file_arg $ what_arg)

(* ------------------------------ recover ---------------------------- *)

let recover_cmd =
  let scheme_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("wait-die", Sim.Recovery.Wait_die);
               ("wound-wait", Sim.Recovery.Wound_wait);
               ("detect", Sim.Recovery.Detect { period = 5.0 });
               ("timeout", Sim.Recovery.default_timeout);
               ("probabilistic", Sim.Recovery.Probabilistic);
             ])
          Sim.Recovery.Wound_wait
      & info [ "scheme" ]
          ~doc:"wait-die | wound-wait | detect | timeout | probabilistic")
  in
  let runs_arg =
    Arg.(value & opt int 100 & info [ "runs" ] ~doc:"Number of executions.")
  in
  let run file scheme runs seed =
    let r = load file in
    let sys = Parser.system_of_result r in
    let rng = Random.State.make [| seed |] in
    let stats = Sim.Recovery.batch ~scheme rng sys ~runs in
    Format.printf "%a@." Sim.Recovery.pp_batch stats
  in
  Cmd.v
    (Cmd.info "recover"
       ~doc:
         "Execute under a deadlock-handling scheme (wound-wait, wait-die, \
          periodic detection or lock-wait timeout) and report aborts/commits.")
    Term.(const run $ file_arg $ scheme_arg $ runs_arg $ seed_arg)

(* ------------------------------- chaos ----------------------------- *)

let chaos_cmd =
  let runs_arg =
    Arg.(value & opt int 50 & info [ "runs" ]
         ~doc:"Seeds to sweep (each seed derives one fault plan per scheme).")
  in
  let intensity_arg =
    Arg.(value & opt float 0.8 & info [ "intensity" ]
         ~doc:"Fault-plan severity ceiling in [0,1].")
  in
  let horizon_arg =
    Arg.(value & opt float 40.0 & info [ "horizon" ]
         ~doc:"Sim time after which no new fault fires (keeps plans finite).")
  in
  let scheme_arg =
    Arg.(
      value
      & opt
          (enum
             (("all", None)
             :: List.map
                  (fun (n, s) -> (n, Some (n, s)))
                  Sim.Chaos.default_schemes))
          None
      & info [ "scheme" ]
          ~doc:"all | wait-die | wound-wait | detect | timeout | probabilistic")
  in
  let run file runs seed intensity horizon scheme stats trace =
    obs_start ~stats ~trace;
    let r = load file in
    let sys = Parser.system_of_result r in
    let schemes =
      match scheme with None -> Sim.Chaos.default_schemes | Some s -> [ s ]
    in
    let cases = [ { Sim.Chaos.label = Filename.basename file; system = sys } ] in
    let report =
      Sim.Chaos.sweep ~seeds:runs ~schemes ~cases ~intensity ~horizon seed
    in
    Format.printf "%a@." Sim.Chaos.pp_report report;
    if report.Sim.Chaos.violations <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Sweep seeded fault plans (site crashes, message loss/duplication, \
          lock-manager stalls) over the recovery schemes and check the \
          safety/liveness invariants on every committed trace.")
    Term.(
      const run $ file_arg $ runs_arg $ seed_arg $ intensity_arg $ horizon_arg
      $ scheme_arg $ stats_arg $ trace_arg)

(* ------------------------------- serve ----------------------------- *)

let socket_arg =
  Arg.(required & opt (some string) None & info [ "socket" ] ~docv:"PATH"
       ~doc:"Unix-domain socket path of the analysis daemon.")

let serve_cmd =
  let workers_arg =
    Arg.(value & opt int 2 & info [ "workers" ]
         ~doc:"Worker domains running analyses.")
  in
  let queue_cap_arg =
    Arg.(value & opt int 16 & info [ "queue-cap" ]
         ~doc:"Admission-queue bound; a full queue answers 'busy'.")
  in
  let cache_cap_arg =
    Arg.(value & opt int 128 & info [ "cache-cap" ]
         ~doc:"LRU verdict-cache entries (0 disables the cache).")
  in
  let max_request_arg =
    Arg.(value & opt int Ddlock_serve.Protocol.default_max_request
         & info [ "max-request-bytes" ]
           ~doc:"Reject analyze bodies larger than this.")
  in
  let serve_max_states_arg =
    Arg.(value & opt (some int) None & info [ "max-states" ]
         ~doc:"Default state budget for requests that name none.")
  in
  let deadline_arg =
    Arg.(value & opt (some int) None & info [ "deadline-ms" ]
         ~doc:"Default per-request deadline for requests that name none.")
  in
  let idle_timeout_arg =
    Arg.(value & opt int 5_000 & info [ "idle-timeout-ms" ]
         ~doc:"Per-read deadline on client sockets (slowloris guard).")
  in
  let flight_cap_arg =
    Arg.(value & opt int 256 & info [ "flight-cap" ]
         ~doc:"Flight-recorder ring: retain the last $(docv) completed \
               request summaries." ~docv:"N")
  in
  let slow_ms_arg =
    Arg.(value & opt int 250 & info [ "slow-ms" ]
         ~doc:"Pin the span trees of requests slower than $(docv) ms (and \
               of every timeout) in the slow ring for later 'trace' \
               retrieval." ~docv:"MS")
  in
  let run socket workers queue_cap cache_cap max_request_bytes
      default_max_states default_deadline_ms jobs idle_timeout_ms flight_cap
      slow_ms stats trace =
    check_jobs jobs;
    if workers < 1 then begin
      Format.eprintf "ddlock: --workers must be >= 1 (got %d)@." workers;
      exit 2
    end;
    obs_start ~stats ~trace;
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let cfg =
      {
        (Ddlock_serve.Server.default_config ~socket_path:socket) with
        Ddlock_serve.Server.workers;
        queue_cap;
        cache_cap;
        max_request_bytes;
        default_max_states;
        default_deadline_ms;
        jobs;
        idle_timeout_ms;
        flight_cap;
        slow_ms;
      }
    in
    let t =
      match Ddlock_serve.Server.start cfg with
      | t -> t
      | exception Failure msg ->
          Format.eprintf "ddlock: %s@." msg;
          exit 2
      | exception Unix.Unix_error (e, _, _) ->
          Format.eprintf "ddlock: %s: %s@." socket (Unix.error_message e);
          exit 2
    in
    let stop _ = Ddlock_serve.Server.request_stop t in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
    Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
    Sys.set_signal Sys.sigusr1
      (Sys.Signal_handle (fun _ -> Ddlock_serve.Server.flight_dump t stderr));
    Format.eprintf "ddlock: serving on %s (workers=%d queue=%d cache=%d)@."
      socket workers queue_cap cache_cap;
    Ddlock_serve.Server.wait t;
    exit 0
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the analysis daemon on a Unix-domain socket: cached verdicts, \
          bounded admission with busy backpressure, per-request deadlines, \
          graceful drain on SIGTERM/SIGINT.  SIGUSR1 dumps the flight \
          recorder to stderr.")
    Term.(
      const run $ socket_arg $ workers_arg $ queue_cap_arg $ cache_cap_arg
      $ max_request_arg $ serve_max_states_arg $ deadline_arg $ jobs_arg
      $ idle_timeout_arg $ flight_cap_arg $ slow_ms_arg $ stats_arg
      $ trace_arg)

(* ------------------------------ request ---------------------------- *)

let request_cmd =
  let file_opt_arg =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE"
         ~doc:"Transaction-system source file to analyze.")
  in
  let req_max_states_arg =
    Arg.(value & opt (some int) None & info [ "max-states" ]
         ~doc:"State budget for this request.")
  in
  let deadline_arg =
    Arg.(value & opt (some int) None & info [ "deadline-ms" ]
         ~doc:"Deadline for this request; exceeding it exits 4.")
  in
  let ping_arg =
    Arg.(value & flag & info [ "ping" ] ~doc:"Liveness check only.")
  in
  let req_stats_arg =
    Arg.(value & flag & info [ "stats" ]
         ~doc:"Without FILE: print the daemon's counters.  With FILE: \
               print this request's wall-clock latency and cache-hit \
               status on stderr.")
  in
  let raw_arg =
    Arg.(value & opt (some string) None & info [ "raw" ] ~docv:"LINE"
         ~doc:"Debugging: send $(docv) verbatim (newline appended) and \
               print whatever comes back; exits 2 on an error reply.")
  in
  let req_trace_arg =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"OUT"
         ~doc:"With FILE: after the reply, fetch this request's span tree \
               from the daemon and write it to $(docv) as Chrome \
               trace-event JSON (the daemon must be tracing: --stats or \
               DDLOCK_OBS=1).")
  in
  let metrics_flag =
    Arg.(value & flag & info [ "metrics" ]
         ~doc:"Print the daemon's Prometheus text exposition.")
  in
  let flight_flag =
    Arg.(value & flag & info [ "flight" ]
         ~doc:"Print the daemon's flight-recorder JSON.")
  in
  let run socket file max_states symmetry deadline_ms ping stats raw
      trace_out metrics flight =
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let fail err =
      Format.eprintf "ddlock: %a@." Ddlock_serve.Client.pp_error err;
      exit 2
    in
    let print_body = function
      | Error err -> fail err
      | Ok body ->
          print_string body;
          exit 0
    in
    let finish = function
      | Ddlock_serve.Client.Verdict { status; body } ->
          print_string body;
          exit status
      | Ddlock_serve.Client.Busy { retry_after_ms } ->
          Format.eprintf "ddlock: server busy (retry after %dms)@."
            retry_after_ms;
          exit 3
      | Ddlock_serve.Client.Timeout ->
          Format.eprintf "ddlock: request deadline exceeded@.";
          exit 4
      | Ddlock_serve.Client.Server_error msg ->
          Format.eprintf "ddlock: server error: %s@." msg;
          exit 2
      | Ddlock_serve.Client.Pong ->
          print_endline "pong";
          exit 0
    in
    match (raw, ping, metrics, flight, file) with
    | Some line, _, _, _, _ -> (
        match Ddlock_serve.Client.raw ~socket (line ^ "\n") with
        | Error err -> fail err
        | Ok reply ->
            print_string reply;
            exit (if String.length reply >= 5 && String.sub reply 0 5 = "error"
                  then 2 else 0))
    | None, true, _, _, _ -> (
        match Ddlock_serve.Client.ping ~socket with
        | Error err -> fail err
        | Ok reply -> finish reply)
    | None, false, true, _, _ -> print_body (Ddlock_serve.Client.metrics ~socket)
    | None, false, false, true, _ ->
        print_body (Ddlock_serve.Client.flight ~socket)
    | None, false, false, false, Some file -> (
        let source = read_file file in
        let t0 = Obs.Clock.now_ns () in
        match
          Ddlock_serve.Client.analyze_ex ~socket ?max_states ~symmetry
            ?deadline_ms source
        with
        | Error err -> fail err
        | Ok (reply, meta) ->
            let ms = float_of_int (Obs.Clock.now_ns () - t0) /. 1e6 in
            if stats then
              Format.eprintf "ddlock: %.1f ms%s%s@." ms
                (match meta.Ddlock_serve.Client.cached with
                | Some true -> ", cache hit"
                | Some false -> ", cache miss"
                | None -> "")
                (match meta.Ddlock_serve.Client.req_id with
                | Some id -> Printf.sprintf ", req %d" id
                | None -> "");
            (match (trace_out, meta.Ddlock_serve.Client.req_id) with
            | None, _ -> ()
            | Some _, None ->
                Format.eprintf "ddlock: trace: server sent no request id@."
            | Some path, Some id -> (
                match Ddlock_serve.Client.trace ~socket id with
                | Error err ->
                    (* The verdict already arrived; a missing trace only
                       warns, it does not change the exit status. *)
                    Format.eprintf "ddlock: trace: %a@."
                      Ddlock_serve.Client.pp_error err
                | Ok json -> (
                    match open_out_bin path with
                    | exception Sys_error msg ->
                        prerr_endline msg;
                        exit 2
                    | oc ->
                        Fun.protect
                          ~finally:(fun () -> close_out_noerr oc)
                          (fun () -> output_string oc json))));
            finish reply)
    | None, false, false, false, None ->
        if stats then
          match Ddlock_serve.Client.stats ~socket with
          | Error err -> fail err
          | Ok reply -> finish reply
        else begin
          Format.eprintf
            "ddlock: request needs a FILE (or --ping, --stats, --raw, \
             --metrics, --flight)@.";
          exit 2
        end
  in
  Cmd.v
    (Cmd.info "request"
       ~doc:
         "Submit a system to a running analysis daemon and print its verdict \
          (exit status: 0 safe, 1 unsafe/deadlocks, 2 errors, 3 busy, \
          4 deadline exceeded).")
    Term.(
      const run $ socket_arg $ file_opt_arg $ req_max_states_arg
      $ symmetry_arg $ deadline_arg $ ping_arg $ req_stats_arg $ raw_arg
      $ req_trace_arg $ metrics_flag $ flight_flag)

(* -------------------------------- top ------------------------------ *)

(* Parse the daemon's Prometheus exposition back into a metrics
   snapshot, so the interval arithmetic reuses [Obs.Metrics.delta] and
   [Obs.Metrics.quantile].  Only the shapes the daemon emits are
   understood: "name value" scalars and 'name_bucket{le="N"} cum'
   histogram lines (which are exact re-encodings of the log2 buckets,
   so the bucket index round-trips through [bucket_of]). *)
let snapshot_of_exposition text =
  let scalars : (string, float) Hashtbl.t = Hashtbl.create 64 in
  let buckets : (string, (float * float) list) Hashtbl.t = Hashtbl.create 8 in
  let bucket_suffix = "_bucket" in
  List.iter
    (fun line ->
      if line <> "" && line.[0] <> '#' then
        match String.index_opt line ' ' with
        | None -> ()
        | Some sp -> (
            let lhs = String.sub line 0 sp in
            let rhs = String.sub line (sp + 1) (String.length line - sp - 1) in
            let v =
              if rhs = "+Inf" then Some infinity else float_of_string_opt rhs
            in
            match (v, String.index_opt lhs '{') with
            | None, _ -> ()
            | Some v, None -> Hashtbl.replace scalars lhs v
            | Some v, Some br ->
                let head = String.sub lhs 0 br in
                let labels =
                  String.sub lhs br (String.length lhs - br)
                in
                let is_bucket =
                  String.length head > String.length bucket_suffix
                  && String.sub head
                       (String.length head - String.length bucket_suffix)
                       (String.length bucket_suffix)
                     = bucket_suffix
                in
                let le =
                  let prefix = {|{le="|} in
                  let plen = String.length prefix in
                  if
                    String.length labels > plen + 1
                    && String.sub labels 0 plen = prefix
                  then
                    let inner =
                      String.sub labels plen (String.length labels - plen - 2)
                    in
                    if inner = "+Inf" then Some infinity
                    else float_of_string_opt inner
                  else None
                in
                (match (is_bucket, le) with
                | true, Some le ->
                    let base =
                      String.sub head 0
                        (String.length head - String.length bucket_suffix)
                    in
                    let prev =
                      Option.value ~default:[] (Hashtbl.find_opt buckets base)
                    in
                    Hashtbl.replace buckets base ((le, v) :: prev)
                | _ -> ())))
    (String.split_on_char '\n' text);
  let scalar name =
    int_of_float (Option.value ~default:0.0 (Hashtbl.find_opt scalars name))
  in
  let hists =
    Hashtbl.fold
      (fun base les acc ->
        let les =
          List.sort (fun (a, _) (b, _) -> compare a b) les
        in
        let _, rev_buckets =
          List.fold_left
            (fun (prev_cum, acc) (le, cum) ->
              let n = int_of_float cum - prev_cum in
              let idx =
                if le = infinity then Obs.Metrics.Histogram.max_bucket
                else Obs.Metrics.Histogram.bucket_of (int_of_float le)
              in
              (int_of_float cum, if n > 0 then (idx, n) :: acc else acc))
            (0, []) les
        in
        ( base,
          Obs.Metrics.Hist
            {
              Obs.Metrics.count = scalar (base ^ "_count");
              sum = scalar (base ^ "_sum");
              buckets = List.rev rev_buckets;
            } )
        :: acc)
      buckets []
  in
  let is_hist_aux name =
    Hashtbl.fold
      (fun base _ acc ->
        acc || name = base ^ "_sum" || name = base ^ "_count")
      buckets false
  in
  let ends_with suffix s =
    String.length s >= String.length suffix
    && String.sub s (String.length s - String.length suffix)
         (String.length suffix)
       = suffix
  in
  let others =
    Hashtbl.fold
      (fun name v acc ->
        if is_hist_aux name then acc
        else
          let n = int_of_float v in
          ( name,
            if ends_with "_total" name then Obs.Metrics.Counter n
            else Obs.Metrics.Gauge n )
          :: acc)
      scalars []
  in
  List.sort (fun (a, _) (b, _) -> String.compare a b) (hists @ others)

let top_cmd =
  let interval_arg =
    Arg.(value & opt int 1_000 & info [ "interval-ms" ]
         ~doc:"Refresh interval.")
  in
  let count_arg =
    Arg.(value & opt int 0 & info [ "count" ]
         ~doc:"Stop after $(docv) refreshes (0 = run until interrupted)."
         ~docv:"N")
  in
  let run socket interval_ms count =
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let fetch () =
      match Ddlock_serve.Client.metrics ~socket with
      | Ok text -> snapshot_of_exposition text
      | Error err ->
          Format.eprintf "ddlock: %a@." Ddlock_serve.Client.pp_error err;
          exit 2
    in
    let num name snap =
      match List.assoc_opt name snap with
      | Some (Obs.Metrics.Counter n) | Some (Obs.Metrics.Gauge n) ->
          float_of_int n
      | _ -> 0.0
    in
    let hist name snap =
      match List.assoc_opt name snap with
      | Some (Obs.Metrics.Hist h) -> h
      | _ -> { Obs.Metrics.count = 0; sum = 0; buckets = [] }
    in
    let clear = Unix.isatty Unix.stdout in
    let interval_s = float_of_int (max 1 interval_ms) /. 1000. in
    let render now d =
      if clear then print_string "\027[2J\027[H";
      let requests = num "daemon_requests_total" d in
      let hits = num "daemon_cache_hits_total" d in
      let misses = num "daemon_cache_misses_total" d in
      let lookups = hits +. misses in
      (* Quantiles prefer this interval's histogram; a quiet interval
         falls back to the cumulative distribution. *)
      let interval_h = hist "daemon_request_ns" d in
      let h, h_scope =
        if interval_h.Obs.Metrics.count > 0 then (interval_h, "interval")
        else (hist "daemon_request_ns" now, "cumulative")
      in
      let q p = Obs.Metrics.quantile h p /. 1e6 in
      let pct part = 100. *. part /. Float.max 1.0 requests in
      Format.printf "ddlock top — %s (every %.1fs)@." socket interval_s;
      Format.printf
        "  req/s    %8.1f    inflight %3.0f   queue %3.0f   workers %.0f@."
        (requests /. interval_s)
        (num "daemon_inflight" now)
        (num "daemon_queue_depth" now)
        (num "daemon_workers" now);
      Format.printf
        "  latency  p50 %.2f ms   p90 %.2f ms   p99 %.2f ms   (%s, n=%d)@."
        (q 0.50) (q 0.90) (q 0.99) h_scope h.Obs.Metrics.count;
      Format.printf "  cache    hit %5.1f%%  (hits %.0f, misses %.0f)@."
        (if lookups > 0. then 100. *. hits /. lookups else 0.0)
        hits misses;
      Format.printf
        "  busy     %5.1f%%   timeouts %5.1f%%   errors %5.1f%%@."
        (pct (num "daemon_busy_total" d))
        (pct (num "daemon_timeouts_total" d))
        (pct (num "daemon_errors_total" d));
      Format.print_flush ()
    in
    let prev = ref (fetch ()) in
    let n = ref 0 in
    while count = 0 || !n < count do
      incr n;
      Unix.sleepf interval_s;
      let now = fetch () in
      let d = Obs.Metrics.delta ~before:!prev ~after:now in
      prev := now;
      render now d
    done;
    exit 0
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live daemon dashboard: poll the 'metrics' verb and display \
          request rate, latency quantiles, cache hit rate and \
          busy/timeout/error rates per refresh interval.")
    Term.(const run $ socket_arg $ interval_arg $ count_arg)

(* ------------------------------ replay ----------------------------- *)

let replay_cmd =
  let sched_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"SCHEDULE"
         ~doc:"Schedule file: one 'T<i> L|U <entity>' step per line.")
  in
  let run file sched =
    let r = load file in
    let sys = Parser.system_of_result r in
    match Sched.Sched_text.parse sys (read_file sched) with
    | Error e ->
        Format.eprintf "%s: %a@." sched Sched.Sched_text.pp_error e;
        exit 2
    | Ok steps -> (
        match Sched.Schedule.check sys steps with
        | Error v ->
            Format.printf "ILLEGAL: %a@."
              (Sched.Schedule.pp_violation sys) v;
            exit 1
        | Ok st ->
            Format.printf "%a@." (Sched.Narrate.pp sys) steps;
            if Sched.State.is_deadlock sys st then
              List.iter
                (fun line -> Format.printf "%s@." line)
                (List.filteri
                   (fun i _ -> i > List.length steps)
                   (Sched.Narrate.explain_deadlock sys steps));
            Format.printf "serialization digraph: %s@."
              (match Sched.Dgraph.find_cycle sys steps with
              | None -> "acyclic"
              | Some cycle ->
                  Format.asprintf "CYCLIC (%a)"
                    (Format.pp_print_list
                       ~pp_sep:(fun ppf () ->
                         Format.pp_print_string ppf " -> ")
                       (fun ppf i -> Format.fprintf ppf "T%d" (i + 1)))
                    cycle);
            let red = Deadlock.Reduction.make sys st in
            Format.printf "reduction graph:       %s@."
              (if Deadlock.Reduction.has_cycle red then
                 "CYCLIC (no continuation can complete)"
               else "acyclic"))
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Replay a schedule file against a system: legality, narration,           D-graph and reduction-graph verdicts.")
    Term.(const run $ file_arg $ sched_arg)

(* ------------------------------- main ------------------------------ *)

let () =
  let doc =
    "Deadlock-freedom and safety of distributed locked transactions \
     (Wolfson & Yannakakis, PODS'85/JCSS'86)."
  in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "ddlock" ~version:"1.0.0" ~doc)
          [
            validate_cmd;
            analyze_cmd;
            pair_cmd;
            copies_cmd;
            simulate_cmd;
            gen_cmd;
            sat_reduce_cmd;
            dot_cmd;
            recover_cmd;
            chaos_cmd;
            repair_cmd;
            minimize_cmd;
            replay_cmd;
            serve_cmd;
            request_cmd;
            top_cmd;
          ]))
