(* Quickstart: build two distributed transactions with the DSL, run the
   paper's O(n²) pair test (Theorem 3), inspect the verdict, and
   cross-check with the exhaustive decider.

     dune exec examples/quickstart.exe
*)

open Ddlock
module Db = Model.Db
module Builder = Model.Builder
module System = Model.System

let () =
  (* A two-site database: account table on site 1, audit log on site 2. *)
  let db = Db.create [ ("db1", [ "accounts" ]); ("db2", [ "audit" ]) ] in

  (* Both transactions lock the accounts first, then the audit log,
     two-phase style: Laccounts < Laudit < Uaccounts < Uaudit. *)
  let t1 = Builder.two_phase_chain db [ "accounts"; "audit" ] in
  let t2 = Builder.two_phase_chain db [ "accounts"; "audit" ] in

  Format.printf "T1 = %a@.@." Model.Transaction.pp t1;

  (* Theorem 3: the polynomial pair test. *)
  (match Safety.Pair.check t1 t2 with
  | Ok () -> Format.printf "Theorem 3: safe and deadlock-free@."
  | Error f ->
      Format.printf "Theorem 3 fails: %a@." (Safety.Pair.pp_failure db) f);

  (* Cross-check with the exponential ground truth (Lemma 1 search). *)
  let sys = System.create [ t1; t2 ] in
  Format.printf "exhaustive:  %s@.@."
    (match Sched.Explore.safe_and_deadlock_free sys with
    | Ok () -> "safe and deadlock-free"
    | Error _ -> "NOT safe and deadlock-free");

  (* Now break it: reverse the lock order in T2. *)
  let t2' = Builder.two_phase_chain db [ "audit"; "accounts" ] in
  (match Safety.Pair.check t1 t2' with
  | Ok () -> assert false
  | Error f ->
      Format.printf "opposed variant fails as expected: %a@."
        (Safety.Pair.pp_failure db) f);

  (* The one-call API produces a full report. *)
  let sys' = System.create [ t1; t2' ] in
  Format.printf "@.%a@." (Analysis.pp_report sys') (Analysis.report sys')
