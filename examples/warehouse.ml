(* A mini-warehouse spanning three database sites, exercising the whole
   toolkit in one realistic flow:

   1. write the workload's transactions naively (each locks in its own
      "natural" order);
   2. Theorem 4 rejects the system and its witness is replayed;
   3. the minimizer isolates the deadlocking core;
   4. the simulator quantifies how often it actually deadlocks, and
      wound-wait shows the runtime cost of not fixing it statically;
   5. the global-lock-order repair produces a certified system;
   6. the early-unlock optimizer then shortens lock spans without
      losing the certificate;
   7. the repaired system runs clean.

     dune exec examples/warehouse.exe
*)

open Ddlock
module Db = Model.Db
module Builder = Model.Builder
module System = Model.System
module Transaction = Model.Transaction

let db =
  Db.create
    [
      ("warehouse", [ "stock"; "orders" ]);
      ("accounting", [ "ledger" ]);
      ("customers", [ "profiles" ]);
    ]

(* Naive lock orders: each transaction locks "what it touches first". *)
let new_order = Builder.two_phase_chain db [ "orders"; "stock"; "ledger" ]
let payment = Builder.two_phase_chain db [ "profiles"; "ledger"; "orders" ]
let restock = Builder.two_phase_chain db [ "stock"; "orders" ]
let audit = Builder.two_phase_chain db [ "ledger"; "profiles" ]
let naive = System.create [ new_order; payment; restock; audit ]

let () =
  Format.printf "== naive warehouse workload ==@.";
  let report = Analysis.report naive in
  Format.printf "%a@.@." (Analysis.pp_report naive) report;

  (* 2. The witness, replayed and narrated.  Here the failure is already
     pairwise: payment and audit lock ledger/profiles in opposite orders. *)
  (match report.Analysis.safety with
  | Analysis.Pair_violation { i; j; _ } ->
      (match
         Analysis.pair_counterexample (System.txn naive i) (System.txn naive j)
       with
      | Some cex ->
          let pair = System.create [ System.txn naive i; System.txn naive j ] in
          Format.printf "counterexample for (T%d, T%d):@.%a@.@." (i + 1)
            (j + 1) (Sched.Narrate.pp pair) cex.Analysis.steps;
          assert (not (Sched.Dgraph.is_serializable pair cex.Analysis.steps))
      | None -> assert false)
  | Analysis.Cycle_violation w ->
      Format.printf "Theorem 4 witness S*:@.%a@.@." (Sched.Narrate.pp naive)
        w.Safety.Many.schedule;
      assert (Sched.Schedule.is_legal naive w.Safety.Many.schedule);
      assert (not (Sched.Dgraph.is_serializable naive w.Safety.Many.schedule))
  | Analysis.Safe_and_deadlock_free -> assert false);

  (* 3. The deadlocking core. *)
  (match Minimize.deadlock_core naive with
  | Some core ->
      Format.printf "minimal deadlocking core: %s@."
        (String.concat ", "
           (List.map
              (fun i -> "T" ^ string_of_int (i + 1))
              core.Minimize.kept_txns));
      List.iter
        (fun (i, e) ->
          Format.printf "  (T%d's access to %s is irrelevant)@." (i + 1)
            (Db.entity_name db e))
        core.Minimize.dropped_entities
  | None -> assert false);

  (* 4. Dynamic cost of shipping it anyway. *)
  let rng = Random.State.make [| 42 |] in
  let plain = Sim.Runtime.batch rng naive ~runs:300 in
  Format.printf "@.simulated untreated:  %a@." Sim.Runtime.pp_batch plain;
  let rng = Random.State.make [| 42 |] in
  let ww = Sim.Recovery.batch ~scheme:Sim.Recovery.Wound_wait rng naive ~runs:300 in
  Format.printf "simulated wound-wait: %a@.@." Sim.Recovery.pp_batch ww;

  (* 5. Repair with a global lock order. *)
  let repaired = Option.get (Analysis.repair_with_global_order naive) in
  Format.printf "== repaired (global lock order) ==@.";
  (match Analysis.safe_and_deadlock_free repaired with
  | Analysis.Safe_and_deadlock_free ->
      Format.printf "Theorem 4: safe and deadlock-free@."
  | _ -> assert false);

  (* 6. Early unlock: shrink spans while keeping the certificate. *)
  let optimized, stats = Safety.Early_unlock.minimize_spans repaired in
  Format.printf "early unlock: span %d -> %d (%d moves), still certified: %b@."
    stats.Safety.Early_unlock.span_before stats.Safety.Early_unlock.span_after
    stats.Safety.Early_unlock.swaps
    (Safety.Many.safe_and_deadlock_free optimized);

  (* 7. Clean runs. *)
  let rng = Random.State.make [| 42 |] in
  let fixed = Sim.Runtime.batch rng optimized ~runs:300 in
  Format.printf "simulated repaired:   %a@." Sim.Runtime.pp_batch fixed;
  assert (fixed.Sim.Runtime.deadlocks = 0);
  assert (fixed.Sim.Runtime.non_serializable = 0)
