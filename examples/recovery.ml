(* The dynamic alternative to the paper's static guarantees: when a
   workload is NOT statically deadlock-free, a database falls back to
   runtime schemes — timestamp ordering (wound-wait / wait-die, RSL'78)
   or periodic detection-and-abort.  This example pits all three against
   the dining-philosophers workload that Theorem 4 rejects, and shows
   the trade: the static certificate costs nothing at runtime, the
   dynamic schemes pay in aborted work.

     dune exec examples/recovery.exe
*)

open Ddlock
module System = Model.System

let schemes =
  [
    ("wait-die", Sim.Recovery.Wait_die);
    ("wound-wait", Sim.Recovery.Wound_wait);
    ("detect(5)", Sim.Recovery.Detect { period = 5.0 });
  ]

let () =
  let sys = Workload.Gentx.dining_philosophers 5 in
  Format.printf "workload: 5 dining philosophers@.";
  (match Safety.Many.check sys with
  | Safety.Many.Cycle_fails _ ->
      Format.printf "static verdict: NOT safe∧deadlock-free (Theorem 4)@.@."
  | v -> Format.printf "static verdict: %a@.@." (Safety.Many.pp_verdict sys) v);

  (* Without any handling, most runs deadlock. *)
  let rng = Random.State.make [| 5 |] in
  let plain = Sim.Runtime.batch rng sys ~runs:200 in
  Format.printf "no handling:    %a@.@." Sim.Runtime.pp_batch plain;

  (* Each scheme completes every run, at the price of aborted work. *)
  List.iter
    (fun (name, scheme) ->
      let rng = Random.State.make [| 6 |] in
      let stats = Sim.Recovery.batch ~scheme rng sys ~runs:200 in
      Format.printf "%-14s %a@." (name ^ ":") Sim.Recovery.pp_batch stats;
      assert (stats.Sim.Recovery.timeouts = 0);
      assert (stats.Sim.Recovery.illegal_traces = 0);
      assert (stats.Sim.Recovery.non_serializable_traces = 0))
    schemes;

  (* The statically-fixed workload (a global lock order): the DETECTOR
     never fires (there is no cycle to find), while the timestamp schemes
     keep aborting on plain contention — prevention is conservative.
     This is exactly the value of the paper's static certificate: it
     tells you the detector-free, abort-free configuration is safe. *)
  let db = Model.Db.one_site_per_entity [ "f0"; "f1"; "f2"; "f3"; "f4" ] in
  let ordered =
    System.create
      (List.init 5 (fun i ->
           let a = "f" ^ string_of_int (min i ((i + 1) mod 5)) in
           let b = "f" ^ string_of_int (max i ((i + 1) mod 5)) in
           Model.Builder.two_phase_chain db [ a; b ]))
  in
  (match Safety.Many.check ordered with
  | Safety.Many.Safe_and_deadlock_free ->
      Format.printf
        "@.ordered variant (lock smaller fork first): safe∧DF by Theorem 4@."
  | v ->
      Format.printf "@.unexpected: %a@." (Safety.Many.pp_verdict ordered) v);
  List.iter
    (fun (name, scheme) ->
      let rng = Random.State.make [| 7 |] in
      let stats = Sim.Recovery.batch ~scheme rng ordered ~runs:200 in
      Format.printf "%-14s %a@." (name ^ ":") Sim.Recovery.pp_batch stats)
    schemes
