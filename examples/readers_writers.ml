(* Shared/exclusive locks (the [EGLT] generalization of the paper's
   model): k transactions read a shared catalog and write a private
   entity each.  Under the paper's exclusive-only model the catalog
   serializes everyone; with Read/Write modes the readers overlap.

     dune exec examples/readers_writers.exe -- [k]
*)

open Ddlock
module Db = Model.Db

let () =
  let k = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 6 in
  let names = "catalog" :: List.init k (fun i -> "row" ^ string_of_int i) in
  let db = Db.one_site_per_entity names in
  let catalog = Db.find_entity_exn db "catalog" in
  let mk i =
    let row = Db.find_entity_exn db ("row" ^ string_of_int i) in
    match
      Rw.Rw_txn.of_total_order db
        [
          { Rw.Rw_txn.entity = catalog; op = Rw.Rw_txn.Lock Rw.Rw_txn.Read };
          { Rw.Rw_txn.entity = row; op = Rw.Rw_txn.Lock Rw.Rw_txn.Write };
          { Rw.Rw_txn.entity = catalog; op = Rw.Rw_txn.Unlock };
          { Rw.Rw_txn.entity = row; op = Rw.Rw_txn.Unlock };
        ]
    with
    | Ok t -> t
    | Error _ -> assert false
  in
  let rw_sys = Rw.Rw_system.create (List.init k mk) in
  let excl_sys = Rw.Rw_system.to_exclusive rw_sys in

  Format.printf "%d transactions, each: R(catalog) W(row_i) U U@.@." k;

  (* Static analysis of the exclusive abstraction. *)
  (match Safety.Many.check excl_sys with
  | Safety.Many.Safe_and_deadlock_free ->
      Format.printf "exclusive abstraction: safe∧DF (Theorem 4)@."
  | v ->
      Format.printf "exclusive abstraction: %a@."
        (Safety.Many.pp_verdict excl_sys) v);

  (* Dynamic comparison: same workload, both lock disciplines. *)
  let rng = Random.State.make [| 11 |] in
  let excl = Sim.Runtime.batch rng excl_sys ~runs:200 in
  let rng = Random.State.make [| 11 |] in
  let rw = Rw.Rw_runtime.batch rng rw_sys ~runs:200 in
  Format.printf "@.exclusive locks: %a@." Sim.Runtime.pp_batch excl;
  Format.printf "read/write locks: %a@." Rw.Rw_runtime.pp_batch rw;
  Format.printf "@.readers-share speedup on makespan: %.2fx@."
    (excl.Sim.Runtime.mean_makespan /. rw.Rw.Rw_runtime.mean_makespan);
  assert (rw.Rw.Rw_runtime.deadlocks = 0);
  assert (rw.Rw.Rw_runtime.non_serializable = 0)
