(* Machine-checked reconstructions of the paper's figures.  The 1986 scan
   is OCR-garbled, so each figure is rebuilt to satisfy exactly the
   properties the text uses it for, and those properties are verified
   here (and again in the test suite).

     dune exec examples/paper_figures.exe
*)

open Ddlock
module Db = Model.Db
module Builder = Model.Builder
module System = Model.System
module Transaction = Model.Transaction

let header s = Format.printf "@.=== %s ===@." s

(* ----------------------------- Fig. 1 ------------------------------ *)

let fig1 () =
  header "Fig. 1 — a deadlock prefix across three transactions";
  let sys = Workload.Figures.fig1 () in
  let p = Workload.Figures.fig1_deadlock_prefix sys in
  let r = Deadlock.Reduction.make sys p in
  Format.printf "%a@." (Deadlock.Reduction.pp sys) r;
  (match Deadlock.Reduction.deadlock_prefix_witness sys p with
  | Some (sched, cycle) ->
      Format.printf "a schedule of the prefix: %a@."
        (Sched.Step.pp_schedule sys) sched;
      Format.printf "reduction-graph cycle:    %a@."
        (Sched.Step.pp_schedule sys) cycle
  | None -> assert false);
  assert (not (Sched.Explore.deadlock_free sys))

(* ----------------------------- Fig. 2 ------------------------------ *)

let fig2 () =
  header "Fig. 2 — Tirri's premise misses a 4-entity deadlock cycle";
  let t = Workload.Figures.fig2_txn () in
  Format.printf "T (both transactions have this syntax):@.%a@." Transaction.pp t;
  Format.printf "Tirri finds an entity pair: %b@."
    (Deadlock.Tirri.find_pair t t <> None);
  let sys = System.copies t 2 in
  Format.printf "deadlock-free in reality:  %b@." (Sched.Explore.deadlock_free sys);
  (match Deadlock.Prefix_search.find sys with
  | Some w ->
      Format.printf "deadlock-prefix cycle:     %a@."
        (Sched.Step.pp_schedule sys) w.Deadlock.Prefix_search.cycle
  | None -> assert false);
  assert (Deadlock.Tirri.claims_deadlock_free t t);
  assert (not (Sched.Explore.deadlock_free sys))

(* ----------------------------- Fig. 3 ------------------------------ *)

let fig3 () =
  header "Fig. 3 — DF as partial orders, deadlock as total orders";
  let t = Workload.Figures.fig3_txn () in
  Format.printf "T:@.%a@." Transaction.pp t;
  let sys = System.copies t 2 in
  Format.printf "{T, T} deadlock-free:                 %b@."
    (Sched.Explore.deadlock_free sys);
  Format.printf "some extension pair {t1, t2} deadlocks: %b@."
    (Deadlock.Theorem1.extension_pair_deadlocks sys);
  assert (Sched.Explore.deadlock_free sys);
  assert (Deadlock.Theorem1.extension_pair_deadlocks sys)

(* ------------------------- Figs. 4 and 5 --------------------------- *)

let fig45 () =
  header "Figs. 4 & 5 — the Theorem 2 gadget on the paper's formula";
  let f = Conp.Gen3sat.paper_example in
  Format.printf "formula: %a@." Conp.Formula.pp f;
  let r = Conp.Reduction_sat.build f in
  Format.printf "gadget sizes: %d entities on %d sites; %d nodes per transaction@."
    (Db.entity_count r.Conp.Reduction_sat.db)
    (Db.site_count r.Conp.Reduction_sat.db)
    (Transaction.node_count r.Conp.Reduction_sat.t1);
  let model = Option.get (Conp.Dpll.solve f) in
  assert (Conp.Reduction_sat.deadlock_witness r model <> None);
  Format.printf "satisfiable ⇒ deadlock prefix exists: verified@."

(* ----------------------------- Fig. 6 ------------------------------ *)

let fig6 () =
  header "Fig. 6 — Theorem 5 fails for deadlock-freedom alone";
  let t = Workload.Figures.fig6_txn () in
  Format.printf "T:@.%a@." Transaction.pp t;
  List.iter
    (fun k ->
      Format.printf "%d copies deadlock-free: %b@." k
        (Sched.Explore.deadlock_free (System.copies t k)))
    [ 2; 3 ];
  assert (Sched.Explore.deadlock_free (System.copies t 2));
  assert (not (Sched.Explore.deadlock_free (System.copies t 3)))

let () =
  fig1 ();
  fig2 ();
  fig3 ();
  fig45 ();
  fig6 ();
  Format.printf "@.all figure properties verified.@."
