(* A two-branch bank: funds transfers between accounts held at different
   sites.  We compare a naive locking discipline (each transfer locks its
   source branch first) against an ordered discipline (every transaction
   locks branches in one global order), statically — with the paper's
   algorithms — and dynamically, on the discrete-event simulator.

     dune exec examples/banking.exe
*)

open Ddlock
module Db = Model.Db
module Builder = Model.Builder
module System = Model.System

let db =
  Db.create
    [ ("branch_east", [ "east_ledger" ]); ("branch_west", [ "west_ledger" ]) ]

(* Naive: transfer east->west locks east first; west->east locks west
   first.  Classic opposed ordering. *)
let transfer_naive_ew = Builder.two_phase_chain db [ "east_ledger"; "west_ledger" ]
let transfer_naive_we = Builder.two_phase_chain db [ "west_ledger"; "east_ledger" ]

(* Ordered: everyone locks east before west, whatever the direction. *)
let transfer_ordered_ew = Builder.two_phase_chain db [ "east_ledger"; "west_ledger" ]
let transfer_ordered_we = Builder.two_phase_chain db [ "east_ledger"; "west_ledger" ]

let describe name sys =
  Format.printf "== %s ==@." name;
  let report = Analysis.report sys in
  Format.printf "%a@." (Analysis.pp_report sys) report;
  let rng = Random.State.make [| 2024 |] in
  let stats = Sim.Runtime.batch rng sys ~runs:500 in
  Format.printf "simulation:          %a@.@." Sim.Runtime.pp_batch stats;
  report

let () =
  let naive = System.create [ transfer_naive_ew; transfer_naive_we ] in
  let ordered = System.create [ transfer_ordered_ew; transfer_ordered_we ] in
  let naive_report = describe "naive (source branch first)" naive in
  let ordered_report = describe "ordered (east before west)" ordered in
  (* The static verdicts and the dynamic behaviour must line up. *)
  (match naive_report.Analysis.safety with
  | Analysis.Safe_and_deadlock_free -> assert false
  | _ -> Format.printf "static analysis correctly rejects the naive scheme@.");
  (match ordered_report.Analysis.safety with
  | Analysis.Safe_and_deadlock_free ->
      Format.printf "static analysis certifies the ordered scheme@."
  | _ -> assert false);

  (* Show an actual deadlocked execution of the naive scheme. *)
  let rng = Random.State.make [| 7 |] in
  let rec hunt n =
    if n = 0 then Format.printf "(no deadlock sampled this time)@."
    else
      match (Sim.Runtime.run rng naive).Sim.Runtime.outcome with
      | Sim.Runtime.Deadlock _ as o ->
          Format.printf "@.example run: %a@." (Sim.Runtime.pp_outcome naive) o
      | Sim.Runtime.Finished _ -> hunt (n - 1)
  in
  hunt 1000
