(* The §4 coNP-hardness construction end-to-end (Theorem 2):

   1. take a 3SAT' formula (the paper's own example from Fig. 5);
   2. build the two distributed transactions T1, T2 of the reduction;
   3. solve the formula with the DPLL substrate;
   4. turn the model into an explicit deadlock prefix: a legal partial
      schedule whose reduction graph is cyclic;
   5. extract a truth assignment back out of the reduction-graph cycle
      and check that it satisfies the formula.

     dune exec examples/sat_reduction.exe
*)

open Ddlock
module R = Conp.Reduction_sat

let () =
  let f = Conp.Gen3sat.paper_example in
  Format.printf "formula (paper Fig. 5): %a@.@." Conp.Formula.pp f;

  let r = R.build f in
  let sys = r.R.sys in
  Format.printf "T1:@.%a@.@." Model.Transaction.pp r.R.t1;
  Format.printf "T2:@.%a@.@." Model.Transaction.pp r.R.t2;

  (match Conp.Dpll.solve f with
  | None -> Format.printf "unsatisfiable: no deadlock prefix exists@."
  | Some model ->
      Format.printf "DPLL model: %s@."
        (String.concat ", "
           (List.init f.Conp.Formula.n_vars (fun j ->
                Printf.sprintf "x%d=%b" j model.(j))));
      (match R.deadlock_witness r model with
      | None -> assert false
      | Some (steps, cycle) ->
          Format.printf "@.deadlock prefix (a legal partial schedule):@.  %a@."
            (Sched.Step.pp_schedule sys) steps;
          Format.printf "reduction-graph cycle (no continuation can finish):@.  %a@."
            (Sched.Step.pp_schedule sys) cycle;
          let a = R.assignment_of_cycle r cycle in
          Format.printf "@.assignment recovered from the cycle: %s@."
            (String.concat ", "
               (List.init f.Conp.Formula.n_vars (fun j ->
                    Printf.sprintf "x%d=%b" j a.(j))));
          assert (Conp.Formula.satisfies a f);
          Format.printf "it satisfies the formula — Theorem 2 round trip.@."));

  (* For contrast, an unsatisfiable 3SAT' formula: random execution of
     its reduction system never deadlocks. *)
  let g = Conp.Gen3sat.tiny_unsat in
  Format.printf "@.unsat formula: %a@." Conp.Formula.pp g;
  let r2 = R.build g in
  let rng = Random.State.make [| 3 |] in
  let stats = Sim.Runtime.batch rng r2.R.sys ~runs:300 in
  Format.printf "its reduction system under simulation: %a@."
    Sim.Runtime.pp_batch stats
