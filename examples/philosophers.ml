(* Dining philosophers as distributed transactions: k forks on k sites,
   transaction i 2PL-locks fork i then fork i+1.  Every PAIR of
   transactions passes Theorem 3, yet the length-k interaction-graph
   cycle deadlocks — exactly the situation Theorem 4 is built to detect,
   and the reason pairwise checking is not enough.

     dune exec examples/philosophers.exe -- [k]
*)

open Ddlock
module System = Model.System

let () =
  let k =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 5
  in
  let sys = Workload.Gentx.dining_philosophers k in
  Format.printf "%d philosophers, one fork per site@.@." k;

  (* 1. Pairwise analysis finds nothing wrong. *)
  let all_pairs_ok = ref true in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      if not (Safety.Pair.safe_and_deadlock_free (System.txn sys i) (System.txn sys j))
      then all_pairs_ok := false
    done
  done;
  Format.printf "all %d pairs safe&DF by Theorem 3: %b@." (k * (k - 1) / 2)
    !all_pairs_ok;

  (* 2. Theorem 4 inspects the interaction-graph cycles and finds the
     witness partial schedule S*. *)
  (match Safety.Many.check sys with
  | Safety.Many.Cycle_fails w ->
      Format.printf "Theorem 4 finds the global violation:@.  %a@."
        (Safety.Many.pp_verdict sys)
        (Safety.Many.Cycle_fails w);
      (* The witness is a real partial schedule with a cyclic D-graph. *)
      assert (Sched.Schedule.is_legal sys w.Safety.Many.schedule);
      assert (not (Sched.Dgraph.is_serializable sys w.Safety.Many.schedule))
  | v ->
      Format.printf "unexpected verdict: %a@." (Safety.Many.pp_verdict sys) v);

  (* 3. The simulator reproduces the deadlock dynamically. *)
  let rng = Random.State.make [| 13 |] in
  let stats = Sim.Runtime.batch rng sys ~runs:300 in
  Format.printf "@.simulation: %a@." Sim.Runtime.pp_batch stats;
  let rec show n =
    if n > 0 then
      match (Sim.Runtime.run rng sys).Sim.Runtime.outcome with
      | Sim.Runtime.Deadlock _ as o ->
          Format.printf "%a@." (Sim.Runtime.pp_outcome sys) o
      | Sim.Runtime.Finished _ -> show (n - 1)
  in
  show 2000
