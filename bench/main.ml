(* Benchmark & experiment harness.

   The paper (PODS'85/JCSS'86) is a theory paper with no measured tables;
   EXPERIMENTS.md defines experiments E1-E11 that operationalize its
   figures, theorems and complexity claims.  This executable regenerates
   every series:

   - agreement tables (polynomial algorithms vs exhaustive ground truth);
   - Bechamel micro-benchmarks for the polynomial kernels (Theorem 3,
     the O(n³) minimal-prefix ablation, Corollary 3, reduction graphs,
     DPLL, the Theorem-2 gadget construction);
   - wall-clock macro series for Theorem 4 (interaction-graph cycles),
     the exponential exhaustive searches, and the simulator.

   Run with:  dune exec bench/main.exe                 (everything)
              dune exec bench/main.exe -- SECTION...   (a subset)
   Sections: agreement micro theorem4 exhaustive sim crossover recovery
             faults sm geometry rw par obs sym serve matrix
*)

open Bechamel
open Toolkit
open Ddlock
module System = Model.System
module Transaction = Model.Transaction

let rng seed = Random.State.make [| seed; 0xbe7c4 |]

(* ------------------------------------------------------------------ *)
(* Bechamel plumbing                                                   *)
(* ------------------------------------------------------------------ *)

let ols =
  Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]

let benchmark_and_print tests =
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name v acc -> (name, v) :: acc) results [] in
  List.iter
    (fun (name, v) ->
      let est =
        match Analyze.OLS.estimates v with
        | Some [ e ] -> e
        | _ -> Float.nan
      in
      let unit, scale =
        if est > 1e9 then ("s ", 1e9)
        else if est > 1e6 then ("ms", 1e6)
        else if est > 1e3 then ("us", 1e3)
        else ("ns", 1.0)
      in
      Format.printf "  %-42s %10.2f %s/run%s@." name (est /. scale) unit
        (match Analyze.OLS.r_square v with
        | Some r when r < 0.9 -> Printf.sprintf "   (r²=%.2f)" r
        | _ -> ""))
    (List.sort compare rows)

let wall f =
  let t0 = Sys.time () in
  let r = f () in
  (r, (Sys.time () -. t0) *. 1000.0)

let header title = Format.printf "@.== %s ==@." title

(* ------------------------------------------------------------------ *)
(* Agreement tables (E5-E10 correctness side)                          *)
(* ------------------------------------------------------------------ *)

let random_pair st = Workload.Gentx.small_random_pair st

let agreement () =
  header "E6/E7/E8 agreement: pair deciders vs exhaustive (500 random pairs)";
  let st = rng 1 in
  let n = 500 in
  let agree_t3 = ref 0 and agree_mp = ref 0 and positives = ref 0 in
  for _ = 1 to n do
    let sys = random_pair st in
    let t1 = System.txn sys 0 and t2 = System.txn sys 1 in
    let exh = Result.is_ok (Sched.Explore.safe_and_deadlock_free sys) in
    if exh then incr positives;
    if Safety.Pair.safe_and_deadlock_free t1 t2 = exh then incr agree_t3;
    if Safety.Minimal_prefix.safe_and_deadlock_free t1 t2 = exh then
      incr agree_mp
  done;
  Format.printf "  %-36s %4d/%d@." "Theorem 3 = exhaustive" !agree_t3 n;
  Format.printf "  %-36s %4d/%d@." "minimal-prefix = exhaustive" !agree_mp n;
  Format.printf "  %-36s %4d/%d@." "safe&DF systems in sample" !positives n;

  header "E10 agreement: Theorem 4 vs exhaustive (200 random 3-txn systems)";
  let st = rng 2 in
  let n = 200 in
  let agree = ref 0 in
  for _ = 1 to n do
    let sites = 1 + Random.State.int st 2 in
    let entities = 2 + Random.State.int st 2 in
    let db = Workload.Gentx.random_db ~sites ~entities in
    let density = Random.State.float st 0.5 in
    let sys =
      System.create
        (List.init 3 (fun _ ->
             Workload.Gentx.random_transaction st db
               ~entities:
                 (Workload.Gentx.random_entity_subset st db
                    ~k:(1 + Random.State.int st entities))
               ~density))
    in
    if
      Safety.Many.safe_and_deadlock_free sys
      = Result.is_ok (Sched.Explore.safe_and_deadlock_free sys)
    then incr agree
  done;
  Format.printf "  %-36s %4d/%d@." "Theorem 4 = exhaustive" !agree n;

  header "E1 agreement: Theorem 1 (deadlock ⇔ deadlock prefix, 200 pairs)";
  let st = rng 3 in
  let n = 200 in
  let agree = ref 0 and deadlocking = ref 0 in
  for _ = 1 to n do
    let sys = random_pair st in
    let a, b = Deadlock.Theorem1.verdicts sys in
    if a = b then incr agree;
    if not a then incr deadlocking
  done;
  Format.printf "  %-36s %4d/%d@." "schedule-search = prefix-search" !agree n;
  Format.printf "  %-36s %4d/%d@." "deadlocking systems in sample" !deadlocking
    n;

  header "E4 agreement: Theorem 2 reduction vs DPLL (100 random 3SAT')";
  let st = rng 4 in
  let n = 100 in
  let ok = ref 0 and sat = ref 0 in
  for _ = 1 to n do
    let f = Conp.Gen3sat.generate st ~n_vars:(3 + Random.State.int st 5) in
    match Conp.Dpll.solve f with
    | None -> incr ok (* nothing to verify constructively *)
    | Some model -> (
        incr sat;
        let r = Conp.Reduction_sat.build f in
        match Conp.Reduction_sat.deadlock_witness r model with
        | Some (_, cycle)
          when Conp.Formula.satisfies
                 (Conp.Reduction_sat.assignment_of_cycle r cycle)
                 f ->
            incr ok
        | _ -> ())
  done;
  Format.printf "  %-36s %4d/%d@." "model ⇒ deadlock prefix ⇒ model" !ok n;
  Format.printf "  %-36s %4d/%d@." "satisfiable in sample" !sat n

(* ------------------------------------------------------------------ *)
(* Micro benchmarks (Bechamel)                                         *)
(* ------------------------------------------------------------------ *)

let micro () =
  header "E7 Theorem 3 pair test — O(n²) scaling (n = entities)";
  let tests =
    List.map
      (fun n ->
        let t1, t2 = Workload.Gentx.chain_pair n in
        Test.make
          ~name:(Printf.sprintf "pair/theorem3/n=%d" n)
          (Staged.stage (fun () ->
               ignore (Safety.Pair.safe_and_deadlock_free t1 t2))))
      [ 32; 64; 128; 256 ]
  in
  benchmark_and_print (Test.make_grouped ~name:"theorem3" tests);

  header "E8 ablation: O(n³) minimal-prefix algorithm on the same inputs";
  let tests =
    List.map
      (fun n ->
        let t1, t2 = Workload.Gentx.chain_pair n in
        Test.make
          ~name:(Printf.sprintf "pair/minimal-prefix/n=%d" n)
          (Staged.stage (fun () ->
               ignore (Safety.Minimal_prefix.safe_and_deadlock_free t1 t2))))
      [ 32; 64; 128 ]
  in
  benchmark_and_print (Test.make_grouped ~name:"minimal-prefix" tests);

  header "E9 Corollary 3 copies test";
  let tests =
    List.map
      (fun n ->
        let t = Workload.Gentx.guard_ring n in
        Test.make
          ~name:(Printf.sprintf "copies/corollary3/k=%d" n)
          (Staged.stage (fun () ->
               ignore (Safety.Copies.safe_and_deadlock_free t))))
      [ 32; 128; 512 ]
  in
  benchmark_and_print (Test.make_grouped ~name:"copies" tests);

  header "E1 reduction-graph construction + cycle check (k-ring, 3 copies)";
  let tests =
    List.map
      (fun k ->
        let t = Workload.Gentx.guard_ring k in
        let sys = System.copies t 3 in
        (* Prefix: copy i holds entity i. *)
        let p = Sched.State.initial sys in
        for i = 0 to 2 do
          Ddlock_graph.Bitset.set p.(i) (Transaction.lock_node_exn t i)
        done;
        Test.make
          ~name:(Printf.sprintf "reduction-graph/k=%d" k)
          (Staged.stage (fun () ->
               ignore
                 (Deadlock.Reduction.has_cycle (Deadlock.Reduction.make sys p)))))
      [ 8; 32; 128 ]
  in
  benchmark_and_print (Test.make_grouped ~name:"reduction" tests);

  header "E4 DPLL and Theorem-2 gadget construction (random 3SAT', n vars)";
  let st = rng 5 in
  let dpll_tests =
    List.map
      (fun n ->
        let f = Conp.Gen3sat.generate st ~n_vars:n in
        Test.make
          ~name:(Printf.sprintf "dpll/n=%d" n)
          (Staged.stage (fun () -> ignore (Conp.Dpll.satisfiable f))))
      [ 10; 20; 40 ]
  in
  let build_tests =
    List.map
      (fun n ->
        let f = Conp.Gen3sat.generate st ~n_vars:n in
        Test.make
          ~name:(Printf.sprintf "reduction-build/n=%d" n)
          (Staged.stage (fun () -> ignore (Conp.Reduction_sat.build f))))
      [ 5; 10; 20 ]
  in
  benchmark_and_print (Test.make_grouped ~name:"conp" (dpll_tests @ build_tests));

  header "substrate: transitive closure (random DAG, n nodes)";
  let st = rng 6 in
  let tests =
    List.map
      (fun n ->
        let edges = ref [] in
        for u = 0 to n - 1 do
          for v = u + 1 to n - 1 do
            if Random.State.float st 1.0 < 0.05 then edges := (u, v) :: !edges
          done
        done;
        let g = Ddlock_graph.Digraph.create n !edges in
        Test.make
          ~name:(Printf.sprintf "closure/n=%d" n)
          (Staged.stage (fun () -> ignore (Ddlock_graph.Closure.closure g))))
      [ 64; 256; 1024 ]
  in
  benchmark_and_print (Test.make_grouped ~name:"closure" tests)

(* ------------------------------------------------------------------ *)
(* Theorem 4 macro series                                              *)
(* ------------------------------------------------------------------ *)

let theorem4 () =
  header "E10 Theorem 4 vs interaction-graph cycles (philosopher rings)";
  Format.printf "  %-10s %-12s %-12s %-12s@." "k" "candidates" "verdict"
    "time (ms)";
  List.iter
    (fun k ->
      let sys = Workload.Gentx.dining_philosophers k in
      let candidates = Safety.Many.candidate_count sys in
      let verdict, ms =
        wall (fun () -> Safety.Many.safe_and_deadlock_free sys)
      in
      Format.printf "  %-10d %-12d %-12s %-12.2f@." k candidates
        (if verdict then "safe&DF" else "violation")
        ms)
    [ 3; 4; 5; 6; 8; 10; 12 ];

  Format.printf
    "@.  dense interaction graphs (philosophers + one hot transaction):@.";
  Format.printf "  %-10s %-12s %-12s@." "k" "cycles" "time (ms)";
  List.iter
    (fun k ->
      let base = Workload.Gentx.dining_philosophers k in
      let db = System.db base in
      let all_forks = List.init k (fun i -> "f" ^ string_of_int i) in
      let hot = Model.Builder.two_phase_chain db all_forks in
      let sys = System.create (Array.to_list (System.txns base) @ [ hot ]) in
      let cycles =
        Seq.length (Ddlock_graph.Ungraph.cycles (System.interaction_graph sys))
      in
      let _, ms = wall (fun () -> Safety.Many.safe_and_deadlock_free sys) in
      Format.printf "  %-10d %-12d %-12.2f@." k cycles ms)
    [ 3; 4; 5; 6; 7 ]

(* ------------------------------------------------------------------ *)
(* Exhaustive-search scaling (the coNP-hardness shape)                 *)
(* ------------------------------------------------------------------ *)

let exhaustive () =
  header "E2/E4 exhaustive search blow-up (reachable states)";
  Format.printf "  %-26s %-12s %-12s@." "system" "states" "time (ms)";
  List.iter
    (fun k ->
      let sys = Workload.Gentx.dining_philosophers k in
      let sp, ms = wall (fun () -> Sched.Explore.explore sys) in
      Format.printf "  %-26s %-12d %-12.2f@."
        (Printf.sprintf "philosophers k=%d" k)
        (Sched.Explore.state_count sp)
        ms)
    [ 2; 3; 4; 5; 6 ];
  List.iter
    (fun k ->
      let t = Workload.Gentx.guard_ring k in
      let sys = System.copies t 2 in
      let sp, ms = wall (fun () -> Sched.Explore.explore sys) in
      Format.printf "  %-26s %-12d %-12.2f@."
        (Printf.sprintf "2 copies of %d-ring" k)
        (Sched.Explore.state_count sp)
        ms)
    [ 3; 4; 5; 6 ]

(* ------------------------------------------------------------------ *)
(* Crossover: polynomial vs exhaustive on the same instances           *)
(* ------------------------------------------------------------------ *)

let crossover () =
  header "E7 crossover: Theorem 3 vs exhaustive on growing chain pairs";
  Format.printf "  %-8s %-16s %-16s@." "n" "theorem3 (ms)" "exhaustive (ms)";
  List.iter
    (fun n ->
      let t1, t2 = Workload.Gentx.chain_pair n in
      let sys = System.create [ t1; t2 ] in
      let _, fast =
        wall (fun () -> Safety.Pair.safe_and_deadlock_free t1 t2)
      in
      let _, slow = wall (fun () -> Sched.Explore.safe_and_deadlock_free sys) in
      Format.printf "  %-8d %-16.3f %-16.3f@." n fast slow)
    [ 2; 3; 4; 5; 6; 7 ]

(* ------------------------------------------------------------------ *)
(* Simulator                                                           *)
(* ------------------------------------------------------------------ *)

let sim () =
  header "E11 simulator: certified vs deadlocking workloads (200 runs each)";
  Format.printf "  %-26s %-12s %-16s %-12s@." "workload" "deadlocks"
    "non-serializable" "time (ms)";
  let bench name sys =
    let st = rng 7 in
    let stats, ms = wall (fun () -> Sim.Runtime.batch st sys ~runs:200) in
    Format.printf "  %-26s %-12d %-16d %-12.2f@." name
      stats.Sim.Runtime.deadlocks stats.Sim.Runtime.non_serializable ms
  in
  let db = Model.Db.one_site_per_entity [ "a"; "b"; "c"; "d" ] in
  let ordered =
    System.create
      (List.init 4 (fun _ ->
           Model.Builder.two_phase_chain db [ "a"; "b"; "c"; "d" ]))
  in
  bench "ordered 2PL x4 (safe&DF)" ordered;
  bench "philosophers k=5" (Workload.Gentx.dining_philosophers 5);
  bench "3 copies of 3-ring" (System.copies (Workload.Gentx.guard_ring 3) 3);
  bench "2 copies of 4-ring (Fig2)" (System.copies (Workload.Gentx.guard_ring 4) 2)

(* ------------------------------------------------------------------ *)
(* [SM] fixed transactions + fixed sites: polynomial exhaustive method *)
(* ------------------------------------------------------------------ *)

let sm_fixed () =
  header
    "E15 [SM]: exhaustive deadlock test is polynomial for fixed (txns, sites)";
  Format.printf
    "  2 transactions over s sites, n entities each (states ~ n^(2s)):@.";
  Format.printf "  %-8s %-8s %-12s %-12s %-10s@." "s" "n" "states" "time (ms)"
    "growth";
  let prev = ref 0.0 in
  List.iter
    (fun (s, n) ->
      let db = Workload.Gentx.random_db ~sites:s ~entities:n in
      let st = rng 9 in
      let all = List.init n Fun.id in
      let mk () =
        Workload.Gentx.random_transaction st db ~entities:all ~density:0.0
      in
      let sys = System.create [ mk (); mk () ] in
      let sp, ms = wall (fun () -> Sched.Explore.explore sys) in
      let states = float_of_int (Sched.Explore.state_count sp) in
      Format.printf "  %-8d %-8d %-12.0f %-12.2f %-10s@." s n states ms
        (if !prev > 0.0 then Printf.sprintf "%.1fx" (states /. !prev) else "-");
      prev := states)
    [ (1, 4); (1, 8); (1, 16); (2, 4); (2, 8); (2, 16); (3, 6); (3, 12) ]

(* ------------------------------------------------------------------ *)
(* Geometry ([LP]/[SW]) micro benchmarks                               *)
(* ------------------------------------------------------------------ *)

let geometry () =
  header "E16 geometric deciders for centralized pairs ([LP]/[SW])";
  let centralized_chain_pair n =
    let db =
      Model.Db.single_site (List.init n (fun i -> "e" ^ string_of_int i))
    in
    let names = List.init n (fun i -> "e" ^ string_of_int i) in
    ( Model.Builder.two_phase_chain db names,
      Model.Builder.two_phase_chain db (List.rev names) )
  in
  let tests =
    List.concat_map
      (fun n ->
        let t1, t2 = centralized_chain_pair n in
        [
          Test.make
            ~name:(Printf.sprintf "geometry/deadlock/n=%d" n)
            (Staged.stage (fun () -> ignore (Safety.Geometry.deadlock_free t1 t2)));
          Test.make
            ~name:(Printf.sprintf "geometry/safe/n=%d" n)
            (Staged.stage (fun () -> ignore (Safety.Geometry.safe t1 t2)));
        ])
      [ 16; 32; 64 ]
  in
  benchmark_and_print (Test.make_grouped ~name:"geometry" tests)

(* ------------------------------------------------------------------ *)
(* Recovery schemes                                                    *)
(* ------------------------------------------------------------------ *)

let recovery () =
  header
    "E12 runtime deadlock handling: wound-wait / wait-die / detect (RSL'78)";
  Format.printf "  %-26s %-12s %-10s %-10s %-12s@." "workload" "scheme"
    "aborts" "timeouts" "makespan";
  let schemes =
    [
      ("wait-die", Sim.Recovery.Wait_die);
      ("wound-wait", Sim.Recovery.Wound_wait);
      ("detect(5)", Sim.Recovery.Detect { period = 5.0 });
    ]
  in
  let bench name sys =
    List.iter
      (fun (sname, scheme) ->
        let st = rng 8 in
        let stats = Sim.Recovery.batch ~scheme st sys ~runs:100 in
        Format.printf "  %-26s %-12s %-10d %-10d %-12.2f@." name sname
          stats.Sim.Recovery.total_aborts stats.Sim.Recovery.timeouts
          stats.Sim.Recovery.mean_makespan)
      schemes
  in
  bench "philosophers k=5" (Workload.Gentx.dining_philosophers 5);
  bench "3 copies of 3-ring" (System.copies (Workload.Gentx.guard_ring 3) 3);
  let db = Model.Db.one_site_per_entity [ "a"; "b"; "c"; "d" ] in
  bench "ordered 2PL x4 (safe&DF)"
    (System.create
       (List.init 4 (fun _ ->
            Model.Builder.two_phase_chain db [ "a"; "b"; "c"; "d" ])))

(* ------------------------------------------------------------------ *)
(* Fault injection: recovery schemes under increasing fault rates      *)
(* ------------------------------------------------------------------ *)

let faults () =
  header
    "E19 fault injection: scheme robustness vs fault-plan severity \
     (philosophers k=5, 100 runs per cell)";
  Format.printf "  %-10s %-12s %-10s %-8s %-10s %-12s@." "intensity" "scheme"
    "commit%" "aborts" "max/txn" "makespan";
  let sys = Workload.Gentx.dining_philosophers 5 in
  let schemes =
    [
      ("wait-die", Sim.Recovery.Wait_die);
      ("wound-wait", Sim.Recovery.Wound_wait);
      ("detect(5)", Sim.Recovery.Detect { period = 5.0 });
      ("timeout", Sim.Recovery.default_timeout);
    ]
  in
  List.iter
    (fun intensity ->
      let plan =
        Sim.Faults.random (rng 11) (System.db sys) ~intensity ~horizon:40.0
      in
      List.iter
        (fun (sname, scheme) ->
          let st = rng 12 in
          let stats = Sim.Recovery.batch ~scheme ~faults:plan st sys ~runs:100 in
          let commits =
            100.0
            *. float_of_int (stats.Sim.Recovery.runs - stats.Sim.Recovery.timeouts)
            /. float_of_int stats.Sim.Recovery.runs
          in
          Format.printf "  %-10.2f %-12s %-10.0f %-8d %-10d %-12.2f@." intensity
            sname commits stats.Sim.Recovery.total_aborts
            stats.Sim.Recovery.max_aborts_single_txn
            stats.Sim.Recovery.mean_makespan)
        schemes)
    [ 0.0; 0.2; 0.4; 0.6; 0.8 ]

(* ------------------------------------------------------------------ *)
(* Parallel exploration: jobs sweep on the biggest state spaces        *)
(* ------------------------------------------------------------------ *)

(* [Sys.time] measures CPU time summed over domains, which makes a
   parallel run look slower the better it scales; the jobs sweep needs
   wall clock. *)
let wall_clock f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, (Unix.gettimeofday () -. t0) *. 1000.0)

let par () =
  header "E20 parallel exploration: jobs sweep (deterministic vs fast engines)";
  (* The physical parallelism actually available to the run: speedups in
     BENCH_par.json are only meaningful relative to this. *)
  let cores = Domain.recommended_domain_count () in
  Format.printf "  recommended domain count on this machine: %d@." cores;
  let jobs_list = [ 1; 2; 4; 8 ] in
  let workloads =
    [
      ("philosophers k=5", Workload.Gentx.dining_philosophers 5);
      ("philosophers k=6", Workload.Gentx.dining_philosophers 6);
      ("2 copies of 6-ring", System.copies (Workload.Gentx.guard_ring 6) 2);
    ]
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "{\n  \"bench\": \"par\",\n  \"cores\": %d,\n  \"series\": [" cores);
  Format.printf "  %-22s %-10s %-6s %-10s %-8s %-10s %-8s@." "workload"
    "states" "jobs" "det (ms)" "det" "fast (ms)" "fast";
  List.iteri
    (fun wi (name, sys) ->
      (* Sequential reference: states and the Theorem-1 verdict. *)
      let seq_space, seq_ms = wall_clock (fun () -> Sched.Explore.explore sys) in
      let seq_states = Sched.Explore.state_count seq_space in
      Format.printf "  %-22s %-10d %-6s %-10.1f %-8s@." name seq_states "seq"
        seq_ms "1.00x";
      if wi > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n    { \"workload\": %S, \"states\": %d, \"seq_ms\": %.2f, \"runs\": ["
           name seq_states seq_ms);
      List.iteri
        (fun ji jobs ->
          let space, ms =
            wall_clock (fun () -> Par.Par_explore.explore ~jobs sys)
          in
          let states = Par.Par_explore.state_count space in
          assert (states = seq_states);
          (* Same space on the relaxed engine: identical state count,
             different (unordered) discovery — the speedup headline. *)
          let fspace, fast_ms =
            wall_clock (fun () ->
                Par.Par_explore.explore ~mode:`Fast ~jobs sys)
          in
          assert (Par.Par_explore.state_count fspace = seq_states);
          let speedup = seq_ms /. ms in
          let fast_speedup = seq_ms /. fast_ms in
          Format.printf "  %-22s %-10d %-6d %-10.1f %-8s %-10.1f %-8s@." ""
            states jobs ms
            (Printf.sprintf "%.2fx" speedup)
            fast_ms
            (Printf.sprintf "%.2fx" fast_speedup);
          if ji > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf
            (Printf.sprintf
               "\n      { \"jobs\": %d, \"ms\": %.2f, \"speedup\": %.2f, \
                \"fast_ms\": %.2f, \"fast_speedup\": %.2f }"
               jobs ms speedup fast_ms fast_speedup))
        jobs_list;
      Buffer.add_string buf "\n    ] }")
    workloads;
  (* Theorem-1 prefix search with the predicate evaluated in parallel. *)
  (match Analysis.repair_with_global_order (Workload.Gentx.dining_philosophers 6) with
  | None -> ()
  | Some repaired ->
      Format.printf "@.  prefix search (repaired philosophers k=6, deadlock-free):@.";
      List.iter
        (fun jobs ->
          let df, ms =
            wall_clock (fun () ->
                Deadlock.Prefix_search.deadlock_free ~jobs repaired)
          in
          assert df;
          let fdf, fms =
            wall_clock (fun () ->
                Deadlock.Prefix_search.deadlock_free ~fast:true ~jobs repaired)
          in
          assert fdf;
          Format.printf "  %-22s %-10s %-6d %-10.1f %-8s %-10.1f@."
            "prefix-search" "-" jobs ms "" fms)
        jobs_list);
  Buffer.add_string buf "\n  ]\n}\n";
  let oc = open_out "BENCH_par.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Format.printf "  wrote BENCH_par.json@."

(* ------------------------------------------------------------------ *)
(* Observability overhead: telemetry on vs off on the same search      *)
(* ------------------------------------------------------------------ *)

let obs () =
  header "E21 observability overhead: telemetry on vs off (jobs=1)";
  let workloads =
    [
      ("philosophers k=5", Workload.Gentx.dining_philosophers 5);
      ("philosophers k=6", Workload.Gentx.dining_philosophers 6);
      ("2 copies of 5-ring", System.copies (Workload.Gentx.guard_ring 5) 2);
    ]
  in
  (* Best-of-k wall clock: the quantity of interest is the cost the
     instrumentation adds to the hot path, so take the minimum, which
     strips scheduler noise. *)
  let best_of k f =
    let best = ref infinity in
    for _ = 1 to k do
      let _, ms = wall_clock f in
      if ms < !best then best := ms
    done;
    !best
  in
  Format.printf "  %-22s %-12s %-12s %-10s@." "workload" "off (ms)" "on (ms)"
    "overhead";
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\n  \"bench\": \"obs\",\n  \"series\": [";
  List.iteri
    (fun i (name, sys) ->
      let body () = ignore (Sched.Explore.explore sys) in
      Obs.Control.off ();
      body ();
      (* warm-up *)
      let off_ms = best_of 5 body in
      Obs.Metrics.reset ();
      Obs.Trace.clear ();
      Obs.Control.on ();
      let on_ms = best_of 5 body in
      Obs.Control.off ();
      Obs.Metrics.reset ();
      Obs.Trace.clear ();
      let overhead = 100.0 *. (on_ms -. off_ms) /. off_ms in
      Format.printf "  %-22s %-12.2f %-12.2f %+.1f%%@." name off_ms on_ms
        overhead;
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n    { \"workload\": %S, \"off_ms\": %.3f, \"on_ms\": %.3f, \
            \"overhead_pct\": %.2f }"
           name off_ms on_ms overhead))
    workloads;
  Buffer.add_string buf "\n  ]\n}\n";
  let oc = open_out "BENCH_obs.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Format.printf "  wrote BENCH_obs.json@."

(* ------------------------------------------------------------------ *)
(* Symmetry reduction: orbit-quotient state counts vs copies           *)
(* ------------------------------------------------------------------ *)

let sym () =
  header "E22 symmetry reduction: states visited, plain vs orbit quotient";
  (* Copies of a guard ring are the worst case the paper's counterexample
     figures are built from, and the best case for symmetry: the whole
     automorphism group is the symmetric group on the copies, so the
     quotient approaches raw/c! as the copies stop interacting. *)
  let workloads =
    List.map
      (fun c -> (Printf.sprintf "%d copies of 3-ring" c, System.copies (Workload.Gentx.guard_ring 3) c, c))
      [ 2; 3; 4 ]
    @ List.map
        (fun c -> (Printf.sprintf "%d copies of 2-ring" c, System.copies (Workload.Gentx.guard_ring 2) c, c))
        [ 2; 3; 4; 5; 6 ]
    (* Philosophers have pairwise-distinct transactions: the group is
       trivial and --symmetry must degrade to a no-op (factor 1.0). *)
    @ [ ("philosophers k=4 (no-op)", Workload.Gentx.dining_philosophers 4, 1) ]
  in
  Format.printf "  %-26s %-8s %-10s %-10s %-8s %-12s %-12s@." "workload"
    "copies" "raw" "reduced" "factor" "raw (ms)" "sym (ms)";
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"bench\": \"sym\",\n  \"series\": [";
  List.iteri
    (fun i (name, sys, copies) ->
      let raw_space, raw_ms = wall_clock (fun () -> Sched.Explore.explore sys) in
      let raw = Sched.Explore.state_count raw_space in
      let sym_space, sym_ms =
        wall_clock (fun () -> Sched.Explore.explore ~symmetry:true sys)
      in
      let reduced = Sched.Explore.state_count sym_space in
      let orbit = Sched.Canon.orbit_size (Sched.Canon.detect sys) in
      assert (reduced <= raw && raw <= reduced * orbit);
      let factor = float_of_int raw /. float_of_int reduced in
      Format.printf "  %-26s %-8d %-10d %-10d %-8.2f %-12.2f %-12.2f@." name
        copies raw reduced factor raw_ms sym_ms;
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n    { \"workload\": %S, \"copies\": %d, \"orbit\": %d, \
            \"raw_states\": %d, \"sym_states\": %d, \"factor\": %.2f, \
            \"raw_ms\": %.2f, \"sym_ms\": %.2f }"
           name copies orbit raw reduced factor raw_ms sym_ms))
    workloads;
  Buffer.add_string buf "\n  ]\n}\n";
  let oc = open_out "BENCH_sym.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Format.printf "  wrote BENCH_sym.json@."

(* ------------------------------------------------------------------ *)
(* Partial-order reduction: persistent/sleep-set state counts          *)
(* ------------------------------------------------------------------ *)

let por () =
  header
    "E24 partial-order reduction: states visited, plain vs persistent/sleep \
     sets";
  (* Asymmetric workloads are where POR earns its keep: philosophers are
     pairwise distinct (trivial automorphism group, so --symmetry is a
     no-op, factor 1.0 in BENCH_sym.json) yet almost all interleavings
     of far-apart philosophers commute.  Single guard-ring transactions
     have wide diamonds and no copies at all.  The copies workload shows
     the reduction composing with a nontrivial group. *)
  let workloads =
    List.map
      (fun k ->
        ( Printf.sprintf "philosophers k=%d" k,
          Workload.Gentx.dining_philosophers k ))
      [ 4; 5; 6 ]
    @ [
        ("single 6-ring txn", System.create [ Workload.Gentx.guard_ring 6 ]);
        ("single 8-ring txn", System.create [ Workload.Gentx.guard_ring 8 ]);
        ("2 copies of 4-ring", System.copies (Workload.Gentx.guard_ring 4) 2);
      ]
  in
  Format.printf "  %-22s %-10s %-10s %-8s %-10s %-12s %-12s@." "workload"
    "plain" "reduced" "factor" "sym-fact" "plain (ms)" "por (ms)";
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"bench\": \"por\",\n  \"series\": [";
  List.iteri
    (fun i (name, sys) ->
      let plain_space, plain_ms =
        wall_clock (fun () -> Sched.Explore.explore sys)
      in
      let plain = Sched.Explore.state_count plain_space in
      let por_space, por_ms =
        wall_clock (fun () -> Sched.Explore.explore ~por:true sys)
      in
      let reduced = Sched.Explore.state_count por_space in
      let sym_states =
        Sched.Explore.state_count (Sched.Explore.explore ~symmetry:true sys)
      in
      assert (reduced <= plain);
      assert (
        Sched.Explore.deadlock_free ~por:true sys
        = Sched.Explore.deadlock_free sys);
      let factor = float_of_int plain /. float_of_int reduced in
      let sym_factor = float_of_int plain /. float_of_int sym_states in
      Format.printf "  %-22s %-10d %-10d %-8.2f %-10.2f %-12.2f %-12.2f@."
        name plain reduced factor sym_factor plain_ms por_ms;
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n    { \"workload\": %S, \"plain_states\": %d, \
            \"por_states\": %d, \"factor\": %.2f, \"sym_factor\": %.2f, \
            \"plain_ms\": %.2f, \"por_ms\": %.2f }"
           name plain reduced factor sym_factor plain_ms por_ms))
    workloads;
  Buffer.add_string buf "\n  ]\n}\n";
  let oc = open_out "BENCH_por.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Format.printf "  wrote BENCH_por.json@."

(* ------------------------------------------------------------------ *)
(* Analysis daemon: served latency and verdict-cache collapse          *)
(* ------------------------------------------------------------------ *)

let json_counter key s =
  (* Extract ["key": N] from the daemon's one-line stats JSON. *)
  let needle = Printf.sprintf "\"%s\": " key in
  let nl = String.length needle and n = String.length s in
  let rec find i =
    if i + nl > n then None
    else if String.sub s i nl = needle then Some (i + nl)
    else find (i + 1)
  in
  match find 0 with
  | None -> 0
  | Some i ->
      let j = ref i in
      while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do
        incr j
      done;
      int_of_string (String.sub s i (!j - i))

let serve_bench () =
  header "E23 analysis daemon: served latency, cache collapse, zipf workload";
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ddlock-bench-%d.sock" (Unix.getpid ()))
  in
  let t =
    Ddlock_serve.Server.start
      { (Ddlock_serve.Server.default_config ~socket_path:socket) with
        Ddlock_serve.Server.cache_cap = 256 }
  in
  Fun.protect
    ~finally:(fun () ->
      Ddlock_serve.Server.request_stop t;
      Ddlock_serve.Server.wait t)
  @@ fun () ->
  let analyze source =
    let t0 = Unix.gettimeofday () in
    match Ddlock_serve.Client.analyze ~socket source with
    | Ok (Ddlock_serve.Client.Verdict _) -> (Unix.gettimeofday () -. t0) *. 1000.0
    | _ -> failwith "bench serve: daemon did not return a verdict"
  in
  (* K-copies workload: many clients submitting permuted renderings of
     the same few copies-of-a-ring systems.  Canon.system_key collapses
     the permutations, so everything after the first sighting of each
     shape must be a cache hit (the ISSUE floor is a 90% hit rate). *)
  let st = rng 23 in
  let bases =
    [
      System.copies (Workload.Gentx.guard_ring 3) 2;
      System.copies (Workload.Gentx.guard_ring 3) 3;
      System.copies (Workload.Gentx.guard_ring 4) 2;
    ]
  in
  let permuted_source sys =
    let named =
      Array.of_list
        (List.mapi
           (fun i txn -> (Printf.sprintf "T%d" (i + 1), txn))
           (Array.to_list (System.txns sys)))
    in
    (* Shuffle which copy gets which name: a different source text with
       the same structural key. *)
    let txns = Array.map snd named in
    for i = Array.length txns - 1 downto 1 do
      let j = Random.State.int st (i + 1) in
      let tmp = txns.(i) in
      txns.(i) <- txns.(j);
      txns.(j) <- tmp
    done;
    Model.Parser.to_source (System.db sys)
      (Array.to_list (Array.mapi (fun i txn -> (fst named.(i), txn)) txns))
  in
  let requests = 48 in
  let lat = Array.make requests 0.0 in
  for i = 0 to requests - 1 do
    lat.(i) <- analyze (permuted_source (List.nth bases (i mod List.length bases)))
  done;
  let stats = Ddlock_serve.Server.stats_json t in
  let hits = json_counter "cache_hits" stats in
  let misses = json_counter "cache_misses" stats in
  let hit_rate = float_of_int hits /. float_of_int (hits + misses) in
  let mean a = Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a) in
  let miss_lat = Array.sub lat 0 (List.length bases) in
  let hit_lat = Array.sub lat (List.length bases) (requests - List.length bases) in
  Format.printf
    "  k-copies stream: %d requests over %d shapes: %d hits / %d misses \
     (%.0f%% hit rate)@."
    requests (List.length bases) hits misses (100.0 *. hit_rate);
  Format.printf "  mean served latency: %.2f ms cold, %.3f ms cached@."
    (mean miss_lat) (mean hit_lat);
  assert (hit_rate >= 0.9);
  (* Zipf hotspot workload: fresh systems (all cache misses) across the
     contention spectrum, uniform to heavily skewed. *)
  let zipf_rows =
    List.map
      (fun theta ->
        let sys =
          Workload.Gentx.zipf_system st ~sites:2 ~entities:5 ~txns:4 ~theta
        in
        let ms = analyze (Model.Parser.to_source (System.db sys)
                            (List.mapi (fun i txn -> (Printf.sprintf "T%d" (i + 1), txn))
                               (Array.to_list (System.txns sys))))
        in
        Format.printf "  zipf theta=%-4.1f served in %.2f ms@." theta ms;
        (theta, ms))
      [ 0.0; 0.8; 1.5 ]
  in
  (* Tracing overhead on the served path: the same cached request with
     the Obs switch off vs on.  With tracing on every request records a
     span tree and retires it into the rings, so this measures the whole
     per-request observability cost (ISSUE 9 budget: <= 5%). *)
  let overhead_src =
    Model.Parser.to_source
      (System.db (List.hd bases))
      (List.mapi
         (fun i txn -> (Printf.sprintf "T%d" (i + 1), txn))
         (Array.to_list (System.txns (List.hd bases))))
  in
  ignore (analyze overhead_src);
  (* primed *)
  let timed_cached n =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to n do
      ignore (analyze overhead_src)
    done;
    (Unix.gettimeofday () -. t0) *. 1000.0 /. float_of_int n
  in
  Obs.Control.off ();
  ignore (timed_cached 50);
  (* warm-up *)
  let off_ms = timed_cached 200 in
  Obs.Metrics.reset ();
  Obs.Trace.clear ();
  Obs.Control.on ();
  let on_ms = timed_cached 200 in
  Obs.Control.off ();
  Obs.Metrics.reset ();
  Obs.Trace.clear ();
  let overhead_pct = 100.0 *. (on_ms -. off_ms) /. off_ms in
  Format.printf
    "  tracing overhead (cached request): %.3f ms off, %.3f ms on \
     (%+.1f%%)@."
    off_ms on_ms overhead_pct;
  (* Saturation sweep: fresh systems (all cache misses) offered at an
     increasing open-loop rate until the bounded admission queue starts
     rejecting.  Sources are pre-generated so the submitter threads only
     pace and send. *)
  let fresh_sources n =
    Array.init n (fun _ ->
        let sys =
          Workload.Gentx.zipf_system st ~sites:2 ~entities:6 ~txns:5
            ~theta:0.8
        in
        Model.Parser.to_source (System.db sys)
          (List.mapi
             (fun i txn -> (Printf.sprintf "T%d" (i + 1), txn))
             (Array.to_list (System.txns sys))))
  in
  let saturation_point rate =
    let window = 0.6 in
    let n = max 1 (int_of_float (rate *. window)) in
    let sources = fresh_sources n in
    let results = Array.make n `Pending in
    let threads =
      List.init n (fun i ->
          Thread.create
            (fun () ->
              Thread.delay (float_of_int i /. rate);
              let t0 = Unix.gettimeofday () in
              results.(i) <-
                (match Ddlock_serve.Client.analyze ~socket sources.(i) with
                | Ok (Ddlock_serve.Client.Verdict _) ->
                    `Ok ((Unix.gettimeofday () -. t0) *. 1000.0)
                | Ok (Ddlock_serve.Client.Busy _) -> `Busy
                | Ok Ddlock_serve.Client.Timeout -> `Timeout
                | _ -> `Err))
            ())
    in
    let t0 = Unix.gettimeofday () in
    List.iter Thread.join threads;
    let elapsed = Unix.gettimeofday () -. t0 in
    let oks =
      Array.to_list results
      |> List.filter_map (function `Ok ms -> Some ms | _ -> None)
      |> List.sort compare |> Array.of_list
    in
    let count p = Array.fold_left (fun acc r -> if p r then acc + 1 else acc) 0 results in
    let busy = count (function `Busy -> true | _ -> false) in
    let quant q =
      if Array.length oks = 0 then 0.0
      else oks.(min (Array.length oks - 1)
                  (int_of_float (q *. float_of_int (Array.length oks))))
    in
    ( n,
      float_of_int (Array.length oks) /. elapsed,
      float_of_int busy /. float_of_int n,
      quant 0.5,
      quant 0.99 )
  in
  Format.printf "  %-14s %-14s %-10s %-10s %-10s@." "offered req/s"
    "served req/s" "busy" "p50 ms" "p99 ms";
  let saturation_rows =
    let rec sweep acc = function
      | [] -> List.rev acc
      | rate :: rest ->
          let n, achieved, busy_rate, p50, p99 = saturation_point rate in
          Format.printf "  %-14.0f %-14.1f %-10.2f %-10.2f %-10.2f@." rate
            achieved busy_rate p50 p99;
          let acc = (rate, n, achieved, busy_rate, p50, p99) :: acc in
          (* Past busy onset the queue is already the bottleneck; higher
             offered rates only add rejected requests. *)
          if busy_rate > 0.2 then List.rev acc else sweep acc rest
    in
    sweep [] [ 25.0; 50.0; 100.0; 200.0; 400.0 ]
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\n  \"bench\": \"serve\",\n  \"kcopies\": { \"requests\": %d, \
        \"shapes\": %d, \"hits\": %d, \"misses\": %d, \"hit_rate\": %.3f, \
        \"cold_ms\": %.3f, \"cached_ms\": %.4f },\n  \"zipf\": ["
       requests (List.length bases) hits misses hit_rate (mean miss_lat)
       (mean hit_lat));
  List.iteri
    (fun i (theta, ms) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "\n    { \"theta\": %.1f, \"ms\": %.3f }" theta ms))
    zipf_rows;
  Buffer.add_string buf
    (Printf.sprintf
       "\n  ],\n  \"tracing_overhead\": { \"off_ms\": %.4f, \"on_ms\": \
        %.4f, \"overhead_pct\": %.2f },\n  \"saturation\": ["
       off_ms on_ms overhead_pct);
  List.iteri
    (fun i (rate, n, achieved, busy_rate, p50, p99) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n    { \"offered_rps\": %.0f, \"requests\": %d, \
            \"served_rps\": %.1f, \"busy_rate\": %.3f, \"p50_ms\": %.3f, \
            \"p99_ms\": %.3f }"
           rate n achieved busy_rate p50 p99))
    saturation_rows;
  Buffer.add_string buf "\n  ]\n}\n";
  let oc = open_out "BENCH_serve.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Format.printf "  wrote BENCH_serve.json@."

(* ------------------------------------------------------------------ *)
(* Read/write modes: readers-share speedup                             *)
(* ------------------------------------------------------------------ *)

let rw_modes () =
  header "E17 read/write modes: catalog-reader workload, rw vs exclusive";
  Format.printf "  %-6s %-18s %-18s %-10s@." "k" "exclusive makespan"
    "rw makespan" "speedup";
  List.iter
    (fun k ->
      let names = "catalog" :: List.init k (fun i -> "row" ^ string_of_int i) in
      let db = Model.Db.one_site_per_entity names in
      let catalog = Model.Db.find_entity_exn db "catalog" in
      let mk i =
        let row = Model.Db.find_entity_exn db ("row" ^ string_of_int i) in
        match
          Rw.Rw_txn.of_total_order db
            [
              { Rw.Rw_txn.entity = catalog; op = Rw.Rw_txn.Lock Rw.Rw_txn.Read };
              { Rw.Rw_txn.entity = row; op = Rw.Rw_txn.Lock Rw.Rw_txn.Write };
              { Rw.Rw_txn.entity = catalog; op = Rw.Rw_txn.Unlock };
              { Rw.Rw_txn.entity = row; op = Rw.Rw_txn.Unlock };
            ]
        with
        | Ok t -> t
        | Error _ -> assert false
      in
      let rw_sys = Rw.Rw_system.create (List.init k mk) in
      let excl_sys = Rw.Rw_system.to_exclusive rw_sys in
      let st = rng 10 in
      let excl = Sim.Runtime.batch st excl_sys ~runs:100 in
      let st = rng 10 in
      let rwb = Rw.Rw_runtime.batch st rw_sys ~runs:100 in
      Format.printf "  %-6d %-18.2f %-18.2f %-10.2fx@." k
        excl.Sim.Runtime.mean_makespan rwb.Rw.Rw_runtime.mean_makespan
        (excl.Sim.Runtime.mean_makespan /. rwb.Rw.Rw_runtime.mean_makespan))
    [ 2; 4; 8; 16 ]

(* ------------------------------------------------------------------ *)
(* Scenario matrix: schemes x workload families x fault intensity      *)
(* ------------------------------------------------------------------ *)

let matrix () =
  header "E27 scenario matrix: 5 schemes x 4 families x fault intensity";
  (* Runs per (family, scheme, intensity) cell; DDLOCK_MATRIX_RUNS
     shrinks it for the cram/CI smoke sweeps. *)
  let runs =
    match Sys.getenv_opt "DDLOCK_MATRIX_RUNS" with
    | Some s -> (
        match int_of_string_opt s with
        | Some n when n > 0 -> n
        | _ ->
            Format.eprintf "bench: bad DDLOCK_MATRIX_RUNS %S@." s;
            exit 2)
    | None -> 30
  in
  let horizon = 40.0 in
  let intensities = [ 0.0; 0.4; 0.8 ] in
  (* A finite commit budget (vs the near-unbounded chaos default) so a
     scheme that thrashes under faults shows up as commit-rate loss
     rather than an ever-longer run. *)
  let config =
    { Sim.Recovery.default_config with Sim.Recovery.max_time = 240.0 }
  in
  let families =
    [
      ("ring", System.copies (Workload.Gentx.guard_ring 3) 2);
      ("tpcc", Workload.Gentx.tpcc_system (rng 271) ~warehouses:2 ~txns:4 ~theta:1.2);
      ( "partial-replication",
        let rep =
          Workload.Gentx.replicated_db ~sites:3 ~entities:4 ~replication:2
        in
        Workload.Gentx.replicated_system (rng 272) rep ~txns:3
          ~entities_per_txn:2 );
      ( "zipf-hotspot",
        Workload.Gentx.zipf_system (rng 273) ~sites:2 ~entities:4 ~txns:4
          ~theta:1.2 );
    ]
  in
  let schemes = Sim.Chaos.default_schemes in
  let violations_total = ref 0 in
  let buf = Buffer.create 8192 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\n  \"bench\": \"matrix\",\n  \"runs_per_cell\": %d,\n  \
        \"horizon\": %.1f,\n  \"max_time\": %.1f,\n  \"schemes\": [%s],\n  \
        \"intensities\": [%s],\n  \"families\": ["
       runs horizon config.Sim.Recovery.max_time
       (String.concat ", "
          (List.map (fun (n, _) -> Printf.sprintf "\"%s\"" n) schemes))
       (String.concat ", " (List.map (Printf.sprintf "%.1f") intensities)));
  Format.printf "  %-20s %-14s %-10s %-8s %-8s %-8s %-8s@." "family" "scheme"
    "intensity" "commit" "aborts" "p50" "p99";
  List.iteri
    (fun fi (fname, sys) ->
      let n = System.size sys in
      if fi > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "\n    { \"family\": \"%s\", \"txns\": %d, \"cells\": ["
           fname n);
      let first_cell = ref true in
      List.iteri
        (fun si (sname, scheme) ->
          List.iteri
            (fun ii intensity ->
              let commits = ref 0 and aborts = ref 0 and timeouts = ref 0 in
              let total_makespan = ref 0.0 and completed = ref 0 in
              let buckets =
                Array.make (Obs.Metrics.Histogram.max_bucket + 1) 0
              in
              let sum_ms = ref 0 in
              for seed = 0 to runs - 1 do
                (* The fault plan is keyed by (family, intensity, seed)
                   only, so all five schemes face the same plans
                   head-to-head; the simulator rng is per-scheme. *)
                let plan_rng = Random.State.make [| 0x3a7c; fi; ii; seed |] in
                let plan =
                  Sim.Faults.random plan_rng (System.db sys) ~intensity
                    ~horizon
                in
                let sim_rng =
                  Random.State.make [| 0x3a7d; fi; si; ii; seed |]
                in
                let r = Sim.Recovery.run ~scheme ~config ~faults:plan sim_rng sys in
                commits := !commits + r.Sim.Recovery.stats.Sim.Recovery.commits;
                aborts := !aborts + r.Sim.Recovery.stats.Sim.Recovery.aborts;
                if r.Sim.Recovery.stats.Sim.Recovery.timed_out then
                  incr timeouts
                else begin
                  incr completed;
                  let mk = r.Sim.Recovery.stats.Sim.Recovery.makespan in
                  total_makespan := !total_makespan +. mk;
                  let ms = int_of_float (mk *. 1000.0) in
                  sum_ms := !sum_ms + ms;
                  buckets.(Obs.Metrics.Histogram.bucket_of ms) <-
                    buckets.(Obs.Metrics.Histogram.bucket_of ms) + 1;
                  (* Legality/mutex/serializability on every committed
                     trace; timeouts are commit-rate data, not
                     violations, under the finite budget. *)
                  violations_total :=
                    !violations_total
                    + List.length (Sim.Chaos.check_run sys r)
                end
              done;
              let offered = runs * n in
              let commit_rate = float_of_int !commits /. float_of_int offered in
              let abort_rate = float_of_int !aborts /. float_of_int offered in
              let timeout_rate =
                float_of_int !timeouts /. float_of_int runs
              in
              let mean_makespan =
                if !completed = 0 then 0.0
                else !total_makespan /. float_of_int !completed
              in
              let hist =
                {
                  Obs.Metrics.count = !completed;
                  sum = !sum_ms;
                  buckets =
                    List.filter
                      (fun (_, c) -> c > 0)
                      (List.init (Array.length buckets) (fun i ->
                           (i, buckets.(i))));
                }
              in
              let p50 = Obs.Metrics.quantile hist 0.5 in
              let p99 = Obs.Metrics.quantile hist 0.99 in
              Format.printf "  %-20s %-14s %-10.1f %-8.2f %-8.2f %-8.0f %-8.0f@."
                fname sname intensity commit_rate abort_rate p50 p99;
              if not !first_cell then Buffer.add_char buf ',';
              first_cell := false;
              Buffer.add_string buf
                (Printf.sprintf
                   "\n      { \"scheme\": \"%s\", \"intensity\": %.1f, \
                    \"runs\": %d, \"commit_rate\": %.4f, \"abort_rate\": \
                    %.4f, \"timeout_rate\": %.4f, \"mean_makespan\": %.3f, \
                    \"p50_ms\": %.1f, \"p99_ms\": %.1f, \"latency_ms\": [%s] }"
                   sname intensity runs commit_rate abort_rate timeout_rate
                   mean_makespan p50 p99
                   (String.concat ", "
                      (List.map
                         (fun (i, c) ->
                           Printf.sprintf
                             "{ \"lo\": %d, \"count\": %d }"
                             (Obs.Metrics.Histogram.bucket_lower i)
                             c)
                         hist.Obs.Metrics.buckets))))
            intensities)
        schemes;
      Buffer.add_string buf "\n    ] }")
    families;
  Buffer.add_string buf
    (Printf.sprintf "\n  ],\n  \"violations\": %d\n}\n" !violations_total);
  let json = Buffer.contents buf in
  (match Obs.Json.validate json with
  | Ok () -> ()
  | Error msg ->
      Format.eprintf "bench: BENCH_matrix.json invalid: %s@." msg;
      exit 1);
  if !violations_total > 0 then begin
    Format.eprintf "bench: %d invariant violations in the matrix sweep@."
      !violations_total;
    exit 1
  end;
  let oc = open_out "BENCH_matrix.json" in
  output_string oc json;
  close_out oc;
  Format.printf
    "  wrote BENCH_matrix.json (validated, %d cells, 0 violations)@."
    (List.length families * List.length schemes * List.length intensities)

let () =
  let sections =
    [
      ("agreement", agreement);
      ("micro", micro);
      ("theorem4", theorem4);
      ("exhaustive", exhaustive);
      ("crossover", crossover);
      ("sim", sim);
      ("recovery", recovery);
      ("faults", faults);
      ("sm", sm_fixed);
      ("geometry", geometry);
      ("rw", rw_modes);
      ("par", par);
      ("obs", obs);
      ("sym", sym);
      ("por", por);
      ("serve", serve_bench);
      ("matrix", matrix);
    ]
  in
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map fst sections
  in
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f -> f ()
      | None ->
          Format.eprintf "unknown section %S (have: %s)@." name
            (String.concat ", " (List.map fst sections));
          exit 2)
    requested;
  Format.printf "@.done.@."
