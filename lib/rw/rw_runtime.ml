open Ddlock_graph
open Ddlock_model
module Pqueue = Ddlock_sim.Pqueue
module Rcfg = Ddlock_sim.Runtime
module Faults = Ddlock_sim.Faults

type outcome =
  | Finished of { makespan : float }
  | Deadlock of { time : float; waits_for : (int * Db.entity * int) list }

type run = { outcome : outcome; trace : Rw_system.step list }

type event = Arrive of Rw_system.step | Complete of Rw_system.step

type lock_state = {
  mutable holders : int list; (* readers, or a single writer *)
  mutable write_mode : bool;
  waiters : Rw_system.step Queue.t;
}

let run ?(config = Rcfg.default_config) ?(faults = Faults.none) rng sys =
  let n = Rw_system.size sys in
  let db = Rw_system.db sys in
  let ne = Db.entity_count db in
  let inj = Faults.injector faults in
  let locks =
    Array.init ne (fun _ ->
        { holders = []; write_mode = false; waiters = Queue.create () })
  in
  let executed = Array.init n (fun i -> Rw_txn.empty_prefix (Rw_system.txn sys i)) in
  let started = Array.init n (fun i -> Rw_txn.empty_prefix (Rw_system.txn sys i)) in
  (* Requests already processed by a lock manager, for dedup of
     duplicated deliveries. *)
  let arrived = Array.init n (fun i -> Rw_txn.empty_prefix (Rw_system.txn sys i)) in
  let last_site = Array.make n (-1) in
  let events : event Pqueue.t = Pqueue.create () in
  let trace = ref [] in
  let now = ref 0.0 in
  let duration i e =
    let d =
      config.Rcfg.min_duration
      +. Random.State.float rng
           (max 1e-9 (config.Rcfg.max_duration -. config.Rcfg.min_duration))
    in
    let site = Db.site_of db e in
    let extra =
      if last_site.(i) >= 0 && last_site.(i) <> site then
        config.Rcfg.site_latency
      else 0.0
    in
    last_site.(i) <- site;
    d +. extra
  in
  let node_of (s : Rw_system.step) = Rw_txn.node (Rw_system.txn sys s.txn) s.node in
  let mode_of_step s =
    match (node_of s).Rw_txn.op with
    | Rw_txn.Lock m -> m
    | Rw_txn.Unlock -> assert false
  in
  let rec start (s : Rw_system.step) =
    let nd = node_of s in
    Bitset.set started.(s.txn) s.node;
    let site = Db.site_of db nd.Rw_txn.entity in
    match nd.Rw_txn.op with
    | Rw_txn.Unlock ->
        let d = duration s.txn nd.Rw_txn.entity in
        Pqueue.push events
          (Faults.deliver inj ~site ~now:!now ~transit:d)
          (Complete s)
    | Rw_txn.Lock _ ->
        let transit = Random.State.float rng (max 1e-9 config.Rcfg.request_jitter) in
        Pqueue.push events (Faults.deliver inj ~site ~now:!now ~transit) (Arrive s);
        if Faults.duplicated inj ~now:!now then
          Pqueue.push events
            (Faults.deliver inj ~site ~now:!now ~transit)
            (Arrive s)
  and start_ready i =
    List.iter
      (fun v ->
        if not (Bitset.mem started.(i) v) then start { Rw_system.txn = i; node = v })
      (Rw_txn.minimal_remaining (Rw_system.txn sys i) executed.(i))
  in
  let grant_now (s : Rw_system.step) =
    let nd = node_of s in
    let l = locks.(nd.Rw_txn.entity) in
    l.holders <- s.txn :: l.holders;
    l.write_mode <- mode_of_step s = Rw_txn.Write;
    Pqueue.push events
      (Faults.deliver inj
         ~site:(Db.site_of db nd.Rw_txn.entity)
         ~now:!now
         ~transit:(duration s.txn nd.Rw_txn.entity))
      (Complete s)
  in
  (* Grant from the queue: the head, plus — if the head is a Read — every
     consecutive Read behind it. *)
  let rec drain_queue e =
    let l = locks.(e) in
    match Queue.peek_opt l.waiters with
    | None -> ()
    | Some w -> (
        match mode_of_step w with
        | Rw_txn.Write ->
            if l.holders = [] then begin
              ignore (Queue.pop l.waiters);
              grant_now w
            end
        | Rw_txn.Read ->
            if (not l.write_mode) || l.holders = [] then begin
              ignore (Queue.pop l.waiters);
              grant_now w;
              drain_queue e
            end)
  in
  for i = 0 to n - 1 do
    start_ready i
  done;
  let finished () =
    let rec go i =
      i >= n
      || (Bitset.cardinal executed.(i) = Rw_txn.node_count (Rw_system.txn sys i)
         && go (i + 1))
    in
    go 0
  in
  let rec loop () =
    match Pqueue.pop events with
    | None -> ()
    | Some (t, Arrive s) ->
        now := t;
        (* Duplicated deliveries of the same request are ignored. *)
        if not (Bitset.mem arrived.(s.txn) s.node) then begin
          Bitset.set arrived.(s.txn) s.node;
          let nd = node_of s in
          let l = locks.(nd.Rw_txn.entity) in
          let compatible =
            l.holders = []
            || ((not l.write_mode)
               && mode_of_step s = Rw_txn.Read
               && Queue.is_empty l.waiters)
          in
          if compatible then grant_now s else Queue.push s l.waiters
        end;
        loop ()
    | Some (t, Complete s) ->
        now := t;
        trace := s :: !trace;
        Bitset.set executed.(s.txn) s.node;
        let nd = node_of s in
        (match nd.Rw_txn.op with
        | Rw_txn.Unlock ->
            let l = locks.(nd.Rw_txn.entity) in
            l.holders <- List.filter (fun j -> j <> s.txn) l.holders;
            if l.holders = [] then l.write_mode <- false;
            drain_queue nd.Rw_txn.entity
        | Rw_txn.Lock _ -> ());
        start_ready s.txn;
        loop ()
  in
  loop ();
  let trace = List.rev !trace in
  let outcome =
    if finished () then Finished { makespan = !now }
    else begin
      let waits_for = ref [] in
      Array.iteri
        (fun e l ->
          Queue.iter
            (fun (w : Rw_system.step) ->
              List.iter (fun h -> waits_for := (w.txn, e, h) :: !waits_for) l.holders)
            l.waiters)
        locks;
      Deadlock { time = !now; waits_for = List.rev !waits_for }
    end
  in
  { outcome; trace }

type batch_stats = {
  runs : int;
  deadlocks : int;
  non_serializable : int;
  mean_makespan : float;
}

let batch ?config ?faults rng sys ~runs =
  let deadlocks = ref 0 and bad = ref 0 in
  let total = ref 0.0 and completed = ref 0 in
  for _ = 1 to runs do
    let r = run ?config ?faults rng sys in
    match r.outcome with
    | Deadlock _ -> incr deadlocks
    | Finished { makespan } ->
        incr completed;
        total := !total +. makespan;
        if not (Rw_system.is_conflict_serializable sys r.trace) then incr bad
  done;
  {
    runs;
    deadlocks = !deadlocks;
    non_serializable = !bad;
    mean_makespan =
      (if !completed = 0 then Float.nan else !total /. float_of_int !completed);
  }

let pp_batch ppf s =
  Format.fprintf ppf
    "%d runs: %d deadlocked, %d non-serializable, mean makespan %.2f" s.runs
    s.deadlocks s.non_serializable s.mean_makespan
