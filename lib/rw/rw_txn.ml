open Ddlock_graph
open Ddlock_model

type mode = Read | Write
type op = Lock of mode | Unlock
type node = { entity : Db.entity; op : op }

let node_to_string db n =
  (match n.op with
  | Lock Read -> "R"
  | Lock Write -> "W"
  | Unlock -> "U")
  ^ Db.entity_name db n.entity

type error =
  | Cyclic
  | Bad_entity_ops of Db.entity
  | Unlock_before_lock of Db.entity
  | Site_unordered of int * int

let pp_error db ppf = function
  | Cyclic -> Format.fprintf ppf "precedence arcs are cyclic"
  | Bad_entity_ops e ->
      Format.fprintf ppf "entity %s must have exactly one Lock and one Unlock"
        (Db.entity_name db e)
  | Unlock_before_lock e ->
      Format.fprintf ppf "entity %s unlocked before locked" (Db.entity_name db e)
  | Site_unordered (u, v) ->
      Format.fprintf ppf "same-site nodes %d and %d are incomparable" u v

type t = {
  db : Db.t;
  labels : node array;
  arcs : Digraph.t;
  closure : Closure.t;
  lock_of : int array;
  unlock_of : int array;
  mode_of : mode array; (* per entity; meaningful when accessed *)
  entity_set : Bitset.t;
}

let make db labels arc_list =
  let n = Array.length labels in
  let ne = Db.entity_count db in
  let arcs = Digraph.create n arc_list in
  if not (Topo.is_acyclic arcs) then Error [ Cyclic ]
  else begin
    let closure = Closure.closure arcs in
    let errors = ref [] in
    let lock_of = Array.make ne (-1)
    and unlock_of = Array.make ne (-1)
    and modes = Array.make ne Read
    and lock_count = Array.make ne 0
    and unlock_count = Array.make ne 0 in
    Array.iteri
      (fun i nd ->
        match nd.op with
        | Lock m ->
            lock_of.(nd.entity) <- i;
            modes.(nd.entity) <- m;
            lock_count.(nd.entity) <- lock_count.(nd.entity) + 1
        | Unlock ->
            unlock_of.(nd.entity) <- i;
            unlock_count.(nd.entity) <- unlock_count.(nd.entity) + 1)
      labels;
    let entity_set = Bitset.create ne in
    for e = 0 to ne - 1 do
      match (lock_count.(e), unlock_count.(e)) with
      | 0, 0 -> ()
      | 1, 1 ->
          Bitset.set entity_set e;
          if not (Bitset.mem closure.(lock_of.(e)) unlock_of.(e)) then
            errors := Unlock_before_lock e :: !errors
      | _ -> errors := Bad_entity_ops e :: !errors
    done;
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        if
          Db.same_site db labels.(u).entity labels.(v).entity
          && (not (Bitset.mem closure.(u) v))
          && not (Bitset.mem closure.(v) u)
        then errors := Site_unordered (u, v) :: !errors
      done
    done;
    match !errors with
    | [] ->
        Ok
          {
            db;
            labels;
            arcs;
            closure;
            lock_of;
            unlock_of;
            mode_of = modes;
            entity_set;
          }
    | es -> Error (List.rev es)
  end

let make_exn db labels arc_list =
  match make db labels arc_list with
  | Ok t -> t
  | Error es ->
      invalid_arg
        ("Rw_txn.make_exn: "
        ^ String.concat "; "
            (List.map (fun e -> Format.asprintf "%a" (pp_error db) e) es))

let of_total_order db steps =
  let labels = Array.of_list steps in
  make db labels
    (List.init (max 0 (Array.length labels - 1)) (fun i -> (i, i + 1)))

let db t = t.db
let node_count t = Array.length t.labels
let node t i = t.labels.(i)
let precedes t u v = Bitset.mem t.closure.(u) v
let arcs t = t.arcs
let entity_set t = t.entity_set
let entities t = Bitset.to_list t.entity_set
let accesses t e = Bitset.mem t.entity_set e
let mode_of t e = t.mode_of.(e)
let lock_node_exn t e = if t.lock_of.(e) >= 0 then t.lock_of.(e) else raise Not_found
let unlock_node_exn t e =
  if t.unlock_of.(e) >= 0 then t.unlock_of.(e) else raise Not_found

let minimal_remaining t p =
  List.filter
    (fun u ->
      (not (Bitset.mem p u))
      && Array.for_all (Bitset.mem p) (Digraph.pred t.arcs u))
    (List.init (node_count t) Fun.id)

let empty_prefix t = Bitset.create (node_count t)

let to_exclusive t =
  let labels =
    Array.map
      (fun nd ->
        match nd.op with
        | Lock _ -> Ddlock_model.Node.lock nd.entity
        | Unlock -> Ddlock_model.Node.unlock nd.entity)
      t.labels
  in
  Transaction.make_exn t.db labels (Digraph.edges t.arcs)

let is_two_phase t =
  not
    (Bitset.exists
       (fun x ->
         Bitset.exists
           (fun y -> precedes t t.unlock_of.(x) t.lock_of.(y))
           t.entity_set)
       t.entity_set)

let pp ppf t =
  Format.fprintf ppf "@[<v>rw-txn (%d nodes)" (node_count t);
  List.iter
    (fun (u, v) ->
      Format.fprintf ppf "@,%s < %s"
        (node_to_string t.db t.labels.(u))
        (node_to_string t.db t.labels.(v)))
    (Digraph.edges (Closure.reduction t.arcs));
  Format.fprintf ppf "@]"
