open Ddlock_graph
open Ddlock_model

type t = { db : Db.t; txns : Rw_txn.t array }

let create = function
  | [] -> invalid_arg "Rw_system.create: empty"
  | t0 :: _ as l ->
      let db = Rw_txn.db t0 in
      List.iter
        (fun t ->
          if Rw_txn.db t != db then
            invalid_arg "Rw_system.create: different schemas")
        l;
      { db; txns = Array.of_list l }

let size t = Array.length t.txns
let txn t i = t.txns.(i)
let txns t = t.txns
let db t = t.db

let to_exclusive t =
  System.create (List.map Rw_txn.to_exclusive (Array.to_list t.txns))

type step = { txn : int; node : int }

let step_to_string sys s =
  Printf.sprintf "%s^%d"
    (Rw_txn.node_to_string sys.db (Rw_txn.node sys.txns.(s.txn) s.node))
    (s.txn + 1)

type state = Bitset.t array

let initial sys = Array.map Rw_txn.empty_prefix sys.txns

let apply st (s : step) =
  let st' = Array.map Bitset.copy st in
  Bitset.set st'.(s.txn) s.node;
  st'

let holders sys st e =
  let hs = ref [] and mode = ref None in
  Array.iteri
    (fun i tx ->
      if Rw_txn.accesses tx e then begin
        let l = Rw_txn.lock_node_exn tx e and u = Rw_txn.unlock_node_exn tx e in
        if Bitset.mem st.(i) l && not (Bitset.mem st.(i) u) then begin
          hs := i :: !hs;
          mode := Some (Rw_txn.mode_of tx e)
        end
      end)
    sys.txns;
  (List.rev !hs, !mode)

let lock_compatible sys st i e =
  let hs, mode = holders sys st e in
  let others = List.filter (fun j -> j <> i) hs in
  match (others, mode) with
  | [], _ -> true
  | _ :: _, Some Rw_txn.Read -> Rw_txn.mode_of sys.txns.(i) e = Rw_txn.Read
  | _ :: _, Some Rw_txn.Write -> false
  | _ :: _, None -> assert false

let enabled sys st =
  let steps = ref [] in
  for i = size sys - 1 downto 0 do
    let tx = sys.txns.(i) in
    List.iter
      (fun v ->
        let nd = Rw_txn.node tx v in
        let ok =
          match nd.Rw_txn.op with
          | Rw_txn.Unlock -> true
          | Rw_txn.Lock _ -> lock_compatible sys st i nd.Rw_txn.entity
        in
        if ok then steps := { txn = i; node = v } :: !steps)
      (Rw_txn.minimal_remaining tx st.(i))
  done;
  !steps

let finished sys st i =
  Bitset.cardinal st.(i) = Rw_txn.node_count sys.txns.(i)

let all_finished sys st =
  let rec go i = i >= size sys || (finished sys st i && go (i + 1)) in
  go 0

let is_deadlock sys st =
  let some_unfinished = ref false and ok = ref true in
  Array.iteri
    (fun i tx ->
      if not (finished sys st i) then begin
        some_unfinished := true;
        List.iter
          (fun v ->
            let nd = Rw_txn.node tx v in
            match nd.Rw_txn.op with
            | Rw_txn.Unlock -> ok := false
            | Rw_txn.Lock _ ->
                if lock_compatible sys st i nd.Rw_txn.entity then ok := false)
          (Rw_txn.minimal_remaining tx st.(i))
      end)
    sys.txns;
  !some_unfinished && !ok

exception Too_large of int

let key st =
  let buf = Buffer.create 64 in
  Array.iter
    (fun s ->
      Bitset.iter (fun i -> Buffer.add_string buf (string_of_int i ^ ",")) s;
      Buffer.add_char buf '|')
    st;
  Buffer.contents buf

let bfs ?(max_states = 2_000_000) sys ~found =
  let table = Hashtbl.create 1024 in
  let q = Queue.create () in
  let init = initial sys in
  Hashtbl.replace table (key init) ();
  Queue.push (init, []) q;
  let result = ref None in
  (try
     if found init then begin
       result := Some ([], init);
       raise Exit
     end;
     while not (Queue.is_empty q) do
       let st, rev = Queue.pop q in
       List.iter
         (fun s ->
           let st' = apply st s in
           let k = key st' in
           if not (Hashtbl.mem table k) then begin
             if Hashtbl.length table >= max_states then
               raise (Too_large (Hashtbl.length table));
             Hashtbl.replace table k ();
             let rev' = s :: rev in
             if found st' then begin
               result := Some (List.rev rev', st');
               raise Exit
             end;
             Queue.push (st', rev') q
           end)
         (enabled sys st)
     done
   with Exit -> ());
  !result

let find_deadlock ?max_states sys =
  bfs ?max_states sys ~found:(fun st -> is_deadlock sys st)

let deadlock_free ?max_states sys = find_deadlock ?max_states sys = None

let conflicting sys i k e =
  Rw_txn.mode_of sys.txns.(i) e = Rw_txn.Write
  || Rw_txn.mode_of sys.txns.(k) e = Rw_txn.Write

let conflict_graph sys steps =
  let ne = Db.entity_count sys.db in
  let lock_order = Array.make ne [] in
  List.iter
    (fun (s : step) ->
      let nd = Rw_txn.node sys.txns.(s.txn) s.node in
      match nd.Rw_txn.op with
      | Rw_txn.Lock _ ->
          lock_order.(nd.Rw_txn.entity) <-
            s.txn :: lock_order.(nd.Rw_txn.entity)
      | Rw_txn.Unlock -> ())
    steps;
  let es = ref [] in
  for e = 0 to ne - 1 do
    let rec pairs = function
      | [] -> ()
      | i :: rest ->
          List.iter
            (fun j -> if j <> i && conflicting sys i j e then es := (i, j) :: !es)
            rest;
          pairs rest
    in
    pairs (List.rev lock_order.(e))
  done;
  Digraph.create (size sys) !es

let is_conflict_serializable sys steps =
  Topo.is_acyclic (conflict_graph sys steps)

(* Exhaustive safety: explore (state, accumulated conflict arcs); judge
   acyclicity at complete states.  Arcs are added when a Lock executes:
   one arc i -> k for every conflicting accessor k that has not locked
   the entity yet (on complete schedules this is exactly the conflict
   graph). *)
module Edge_set = Set.Make (struct
  type t = int * int

  let compare = compare
end)

let safe ?(max_states = 2_000_000) sys =
  let table = Hashtbl.create 1024 in
  let q = Queue.create () in
  let init = initial sys in
  let ekey es =
    String.concat ";"
      (List.map (fun (a, b) -> Printf.sprintf "%d-%d" a b) (Edge_set.elements es))
  in
  let kk st es = key st ^ "#" ^ ekey es in
  Hashtbl.replace table (kk init Edge_set.empty) ();
  Queue.push (init, Edge_set.empty, []) q;
  let result = ref (Ok ()) in
  (try
     while not (Queue.is_empty q) do
       let st, es, rev = Queue.pop q in
       List.iter
         (fun (s : step) ->
           let nd = Rw_txn.node sys.txns.(s.txn) s.node in
           let es' =
             match nd.Rw_txn.op with
             | Rw_txn.Unlock -> es
             | Rw_txn.Lock _ ->
                 let e = nd.Rw_txn.entity in
                 let acc = ref es in
                 for k = 0 to size sys - 1 do
                   if
                     k <> s.txn
                     && Rw_txn.accesses sys.txns.(k) e
                     && conflicting sys s.txn k e
                     && not
                          (Bitset.mem st.(k) (Rw_txn.lock_node_exn sys.txns.(k) e))
                   then acc := Edge_set.add (s.txn, k) !acc
                 done;
                 !acc
           in
           let st' = apply st s in
           let k' = kk st' es' in
           if not (Hashtbl.mem table k') then begin
             if Hashtbl.length table >= max_states then
               raise (Too_large (Hashtbl.length table));
             Hashtbl.replace table k' ();
             let rev' = s :: rev in
             if
               all_finished sys st'
               && not
                    (Topo.is_acyclic
                       (Digraph.create (size sys) (Edge_set.elements es')))
             then begin
               result := Error (List.rev rev');
               raise Exit
             end;
             Queue.push (st', es', rev') q
           end)
         (enabled sys st)
     done
   with Exit -> ());
  !result

type run = Completed of step list | Deadlocked of step list

let random_run rng sys =
  let rec go st rev =
    if all_finished sys st then Completed (List.rev rev)
    else
      match enabled sys st with
      | [] -> Deadlocked (List.rev rev)
      | steps ->
          let s = List.nth steps (Random.State.int rng (List.length steps)) in
          go (apply st s) (s :: rev)
  in
  go (initial sys) []
