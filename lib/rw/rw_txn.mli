open Ddlock_graph
open Ddlock_model

(** Distributed transactions with shared/exclusive lock modes — the
    [EGLT]-style generalization of the paper's exclusive-only model.

    Per accessed entity a transaction has exactly one Lock (of a fixed
    mode, Read or Write), one Unlock, Lock ≺ Unlock; same-site nodes are
    totally ordered.  Two Read locks on the same entity may be held
    simultaneously by different transactions; a Write lock excludes
    everyone. *)

type mode = Read | Write

type op = Lock of mode | Unlock

type node = { entity : Db.entity; op : op }

val node_to_string : Db.t -> node -> string

type error =
  | Cyclic
  | Bad_entity_ops of Db.entity  (** not exactly one Lock and one Unlock *)
  | Unlock_before_lock of Db.entity
  | Site_unordered of int * int

val pp_error : Db.t -> Format.formatter -> error -> unit

type t

val make : Db.t -> node array -> (int * int) list -> (t, error list) result
val make_exn : Db.t -> node array -> (int * int) list -> t

(** Total order from an explicit step list. *)
val of_total_order : Db.t -> node list -> (t, error list) result

val db : t -> Db.t
val node_count : t -> int
val node : t -> int -> node
val precedes : t -> int -> int -> bool
val arcs : t -> Digraph.t
val entities : t -> Db.entity list
val entity_set : t -> Bitset.t
val accesses : t -> Db.entity -> bool

(** Mode of the transaction's access to an entity it touches. *)
val mode_of : t -> Db.entity -> mode

val lock_node_exn : t -> Db.entity -> int
val unlock_node_exn : t -> Db.entity -> int

(** Candidates for execution next given a prefix (downward-closed set). *)
val minimal_remaining : t -> Bitset.t -> int list

val empty_prefix : t -> Bitset.t

(** [to_exclusive t] — forget modes: the same partial order in the
    paper's exclusive model.  The conservative abstraction compared in
    the E17 experiment. *)
val to_exclusive : t -> Transaction.t

(** [is_two_phase t] — no Lock after an Unlock. *)
val is_two_phase : t -> bool

val pp : Format.formatter -> t -> unit
