open Ddlock_graph
open Ddlock_model

(** Systems of shared/exclusive transactions, their schedules and the
    exhaustive deciders (states, deadlock, conflict-serializability). *)

type t

val create : Rw_txn.t list -> t
val size : t -> int
val txn : t -> int -> Rw_txn.t
val txns : t -> Rw_txn.t array
val db : t -> Db.t

(** The exclusive-model abstraction of the whole system. *)
val to_exclusive : t -> System.t

(** {1 States and steps} *)

type step = { txn : int; node : int }

val step_to_string : t -> step -> string

type state = Bitset.t array

val initial : t -> state
val apply : state -> step -> state

(** Transactions currently holding [e], with the holding mode (all
    holders of one entity share the mode). *)
val holders : t -> state -> Db.entity -> int list * Rw_txn.mode option

(** Enabled steps: minimal remaining nodes whose Lock (if any) is
    compatible — Read needs no Write holder, Write needs no holder. *)
val enabled : t -> state -> step list

val all_finished : t -> state -> bool

(** Deadlock state: someone unfinished, every unfinished transaction's
    minimal remaining nodes are all incompatible Locks. *)
val is_deadlock : t -> state -> bool

(** {1 Exhaustive analysis} *)

exception Too_large of int

(** Reachable deadlock state with a witness step sequence. *)
val find_deadlock : ?max_states:int -> t -> (step list * state) option

val deadlock_free : ?max_states:int -> t -> bool

(** Conflict graph of a complete schedule: an arc [Ti -> Tj] labelled [x]
    when both access [x], at least one writes, and [Ti] locks [x] first. *)
val conflict_graph : t -> step list -> Digraph.t

val is_conflict_serializable : t -> step list -> bool

(** Safety: every complete schedule is conflict-serializable.  [Error]
    returns a non-serializable complete schedule. *)
val safe : ?max_states:int -> t -> (unit, step list) result

(** Uniformly-random run (for statistical checks). *)
type run = Completed of step list | Deadlocked of step list

val random_run : Random.State.t -> t -> run
