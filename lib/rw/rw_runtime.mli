open Ddlock_model

(** Discrete-event execution of shared/exclusive systems — the runtime
    counterpart of {!Ddlock_sim.Runtime} with compatibility-aware lock
    managers: an entity may be held by many readers or one writer, and a
    Write request waits for every current reader to release.

    Requests are FIFO per entity with one refinement: a Read request is
    granted immediately when the entity is in read mode {e and} no Write
    request is already queued (avoiding writer starvation). *)

type outcome =
  | Finished of { makespan : float }
  | Deadlock of { time : float; waits_for : (int * Db.entity * int) list }

type run = { outcome : outcome; trace : Rw_system.step list }

(** [run ?config ?faults rng sys] — [faults] injects message loss with
    retransmission, duplicated lock requests (deduplicated at the
    manager), and crash/stall unavailability windows, exactly as in
    {!Ddlock_sim.Runtime}. *)
val run :
  ?config:Ddlock_sim.Runtime.config ->
  ?faults:Ddlock_sim.Faults.plan ->
  Random.State.t ->
  Rw_system.t ->
  run

type batch_stats = {
  runs : int;
  deadlocks : int;
  non_serializable : int;
  mean_makespan : float;
}

val batch :
  ?config:Ddlock_sim.Runtime.config ->
  ?faults:Ddlock_sim.Faults.plan ->
  Random.State.t ->
  Rw_system.t ->
  runs:int ->
  batch_stats

val pp_batch : Format.formatter -> batch_stats -> unit
