open Ddlock_model

(** Schedules and partial schedules (§2, §3).

    A (partial) schedule is a sequence of steps that merges prefixes of
    the transactions while respecting both each transaction's precedence
    and the locks (at most one holder of an entity at any moment — the
    "between every two Lx there is a Ux" condition). *)

type violation =
  | Node_repeated of Step.t
  | Not_minimal of Step.t  (** executed before one of its predecessors *)
  | Lock_held of Step.t * int  (** Lock while transaction [i] holds it *)
  | Bad_txn_index of Step.t

val pp_violation : System.t -> Format.formatter -> violation -> unit

(** [check sys steps] replays the sequence; [Ok st] is the reached state. *)
val check : System.t -> Step.t list -> (State.t, violation) result

val is_legal : System.t -> Step.t list -> bool

(** [is_complete sys steps] iff legal and every transaction finished. *)
val is_complete : System.t -> Step.t list -> bool

(** Final state of a legal schedule.  Raises [Invalid_argument] if illegal. *)
val to_state : System.t -> Step.t list -> State.t

(** [serial sys order] is the serial schedule running whole transactions
    in the given order, each by a deterministic linear extension.
    Raises if [order] is not a permutation of the transaction indices. *)
val serial : System.t -> int list -> Step.t list

(** [of_extensions sys exts order] runs the given linear extensions
    serially in the given transaction order (used for S* witnesses);
    checks nothing. *)
val of_extensions : System.t -> int list array -> int list -> Step.t list

(** The prefix of each transaction executed by a schedule (no legality
    check). *)
val prefix_vector : System.t -> Step.t list -> State.t

(** Steps of one transaction, in schedule order. *)
val project : Step.t list -> int -> int list
