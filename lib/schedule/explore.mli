open Ddlock_model

(** Exhaustive exploration of the schedule state space.

    These are the (exponential) ground-truth deciders against which the
    paper's polynomial algorithms are validated.  A state is a vector of
    transaction prefixes; transitions execute enabled steps
    ({!State.enabled}).  Every reachable state corresponds to at least one
    partial schedule and vice versa. *)

exception Too_large of int
(** Raised when exploration would exceed the [max_states] cap.  The cap
    is exact: a search holds at most [max_states] states (the initial
    state included), and discovering one more raises [Too_large n] where
    [n] is the number of states held at that point (i.e. [max_states],
    or [0] when the budget cannot even cover the initial state). *)

val default_cap : int
(** Default [max_states] budget (2_000_000 states). *)

(** {2 Cancellation}

    Every search polls {!Ddlock_obs.Cancel} on its budget path (the
    state-insertion cap check), so a poll installed with
    [Ddlock_obs.Cancel.with_poll] — e.g. a deadline — aborts the search
    with [Ddlock_obs.Cancel.Cancelled] between state insertions.  With
    no poll installed the cost is one domain-local read per state. *)

type space

(** [explore ?max_states ?symmetry sys] computes the reachable state
    space with parent pointers.  Default cap: {!default_cap} states.

    With [~symmetry:true] the space is the {e quotient} under the
    automorphism group of identical-transaction permutations
    ({!Canon.detect}): only orbit representatives are stored, and a
    successor that lands in an already-stored orbit is deduplicated
    {e before} the cap check, so pruned orbit members never count
    against [max_states].  When the group is trivial this is exactly
    the plain exploration.

    With [~por:true] the space is the {e reduced} space of the
    persistent/sleep-set selective search ({!Indep}): a subset of the
    reachable states (never more than the plain search holds) that
    still contains every reachable deadlock state.  Stored states have
    parent pointers, so [schedule_to] works for them; [is_reachable]
    answers membership in the {e reduced} space only.  Composes with
    [~symmetry:true] (reduction over orbit representatives). *)
val explore :
  ?max_states:int -> ?symmetry:bool -> ?por:bool -> System.t -> space

val system : space -> System.t
val state_count : space -> int

(** Stored states: all reachable states, or one representative per
    reachable orbit for a [~symmetry:true] space. *)
val states : space -> State.t Seq.t

(** Membership (of the state's orbit, for a symmetric space). *)
val is_reachable : space -> State.t -> bool

(** A (shortest) partial schedule realizing a reachable state.  For a
    symmetric space the stored canonical path is replayed through the
    orbit permutations, so the schedule reaches exactly [st] (any orbit
    member may be asked for). *)
val schedule_to : space -> State.t -> Step.t list option

(** The canonicalizer a symmetric search uses: [None] when [symmetry] is
    false or the automorphism group of [sys] is trivial.  Exposed for the
    parallel engine and the CLI no-op warning. *)
val active_canon : symmetry:bool -> System.t -> Canon.t option

(** {1 Goal-directed search} *)

(** [bfs ?max_states ?restrict ?symmetry sys ~found] — first state in
    BFS insertion order satisfying [found] (among states satisfying
    [restrict]), with the schedule reaching it.  With [~symmetry:true]
    the search runs over orbit representatives — [found] and [restrict]
    must be invariant under identical-transaction permutations — and the
    returned schedule/state are translated back to the original system
    (the schedule is legal for [sys] and reaches the returned state).

    With [~por:true] the search runs over the persistent/sleep-set
    reduced space.  Sound only for predicates implied by deadlock
    (e.g. {!State.is_deadlock} itself, or a cyclic reduction graph):
    the reduction preserves reachability of deadlock states, not of
    arbitrary targets.  The returned witness is the first hit in the
    {e reduced} insertion order — valid but not necessarily the plain
    BFS-minimal one. *)
val bfs :
  ?max_states:int ->
  ?restrict:(State.t -> bool) ->
  ?symmetry:bool ->
  ?por:bool ->
  System.t ->
  found:(State.t -> bool) ->
  (Step.t list * State.t) option

(** {1 Deadlock (Theorem 1 ground truth)} *)

(** First deadlock state found, with a partial schedule reaching it.

    With [~por:true] the verdict comes from the reduced search; on a
    positive verdict the witness is canonicalized by re-running the
    plain non-symmetric engine, so the result is byte-identical to the
    plain [find_deadlock] under every flag combination (falling back
    to the valid reduced witness only if the re-search exceeds
    [max_states]). *)
val find_deadlock :
  ?max_states:int ->
  ?symmetry:bool ->
  ?por:bool ->
  System.t ->
  (Step.t list * State.t) option

(** [deadlock_free ?por] — verdict only; with [~por:true] a single
    reduced search (no witness canonicalization cost). *)
val deadlock_free :
  ?max_states:int -> ?symmetry:bool -> ?por:bool -> System.t -> bool

(** {1 Safety and Lemma 1} *)

type counterexample = {
  steps : Step.t list;  (** a partial schedule *)
  cycle : int list;  (** a cycle of D(steps), as transaction indices *)
}

(** Lemma 1 decider: [Error cex] when some partial schedule has a cyclic
    serialization digraph (system is not safe ∧ deadlock-free).  The
    Lemma-1 searches run over the extended (prefix vector + D-arc)
    space, which has no cheap orbit canonicalization, so they take no
    [?symmetry] parameter. *)
val safe_and_deadlock_free :
  ?max_states:int -> System.t -> (unit, counterexample) result

(** Safety alone: [Error cex] when some complete schedule is not
    serializable. *)
val safe : ?max_states:int -> System.t -> (unit, counterexample) result

(** The Lemma-1 extended state (prefix vector + accumulated D-arcs),
    exposed so the parallel engine ({!Ddlock_par.Par_explore}) explores
    exactly the graph of the sequential Lemma-1 searches. *)
module Lemma1 : sig
  type node

  val initial : System.t -> node
  val key : node -> string
  val state : node -> State.t

  (** Successors in the canonical ({!State.enabled}) order. *)
  val next : System.t -> node -> (Step.t * node) list

  (** A cycle of the accumulated serialization digraph, if any. *)
  val cycle : System.t -> node -> int list option

  val complete : System.t -> node -> bool
end

(** {1 Schedules} *)

(** [has_schedule sys target] — does the prefix vector [target] have a
    (partial) schedule?  Searches only through sub-states of [target].
    Returns a witness schedule. *)
val has_schedule : System.t -> State.t -> Step.t list option

(** All complete schedules (DFS; heavily exponential — tiny systems). *)
val complete_schedules : System.t -> Step.t list Seq.t

val count_complete_schedules : System.t -> int

(** {1 Random runs} *)

type run = Completed of Step.t list | Deadlocked of Step.t list * State.t

(** Execute uniformly-random enabled steps until completion or deadlock. *)
val random_run : Random.State.t -> System.t -> run
