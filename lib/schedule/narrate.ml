open Ddlock_graph
open Ddlock_model

let entity_name sys e = Db.entity_name (System.db sys) e

let narrate sys steps =
  let st = ref (State.initial sys) in
  let lines = ref [] in
  let emit fmt = Format.kasprintf (fun s -> lines := s :: !lines) fmt in
  List.iter
    (fun (s : Step.t) ->
      let tx = System.txn sys s.txn in
      let nd = Transaction.node tx s.node in
      let e = nd.Node.entity in
      (match nd.Node.op with
      | Node.Lock ->
          (* Serialization arcs this lock creates. *)
          let accessors =
            List.filter
              (fun k ->
                k <> s.txn
                && Transaction.accesses (System.txn sys k) e
                && not
                     (Bitset.mem !st.(k)
                        (Transaction.lock_node_exn (System.txn sys k) e)))
              (List.init (System.size sys) Fun.id)
          in
          emit "T%d locks %s%s" (s.txn + 1) (entity_name sys e)
            (if accessors = [] then ""
             else
               Printf.sprintf "  (orders T%d before %s on %s)" (s.txn + 1)
                 (String.concat ", "
                    (List.map (fun k -> "T" ^ string_of_int (k + 1)) accessors))
                 (entity_name sys e))
      | Node.Unlock -> emit "T%d unlocks %s" (s.txn + 1) (entity_name sys e));
      st := State.apply !st s)
    steps;
  let status =
    if State.all_finished sys !st then "all transactions finished"
    else if State.is_deadlock sys !st then "DEADLOCK"
    else "(partial)"
  in
  List.rev (status :: !lines)

let pp sys ppf steps =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Format.pp_print_string)
    (narrate sys steps)

let explain_deadlock sys steps =
  let st = Schedule.to_state sys steps in
  let blocked =
    List.concat_map
      (fun i ->
        if
          Bitset.cardinal st.(i)
          = Transaction.node_count (System.txn sys i)
        then []
        else
          List.filter_map
            (fun v ->
              let nd = Transaction.node (System.txn sys i) v in
              match nd.Node.op with
              | Node.Lock -> (
                  match State.holder sys st nd.Node.entity with
                  | Some j when j <> i ->
                      Some
                        (Printf.sprintf "T%d is blocked: needs %s, held by T%d"
                           (i + 1)
                           (entity_name sys nd.Node.entity)
                           (j + 1))
                  | _ -> None)
              | Node.Unlock -> None)
            (Transaction.minimal_remaining (System.txn sys i) st.(i)))
      (List.init (System.size sys) Fun.id)
  in
  narrate sys steps @ blocked
