open Ddlock_graph
open Ddlock_model

(** Execution states: one prefix (downward-closed node set) per
    transaction — the "prefix A′ of A" of §3. *)

type t = Bitset.t array

val initial : System.t -> t
val final : System.t -> t
val copy : t -> t
val equal : t -> t -> bool

(** Stable structural key for hashtables. *)
val key : t -> string

(** Structural hash, compatible with {!equal}: equal states hash
    equally.  Far cheaper than hashing {!key} — no string is built —
    which is what the relaxed parallel engine's intern tables rely on. *)
val hash : t -> int

(** [is_valid sys st] iff every component is a prefix of its transaction. *)
val is_valid : System.t -> t -> bool

(** [holder sys st x] is [Some i] when transaction [i] has locked but not
    unlocked entity [x] in [st].  Legal states have at most one holder. *)
val holder : System.t -> t -> Db.entity -> int option

(** Entities held per transaction. *)
val held : System.t -> t -> int -> Bitset.t

(** [finished sys st i] iff transaction [i] has executed all its nodes. *)
val finished : System.t -> t -> int -> bool

val all_finished : System.t -> t -> bool

(** Steps executable next: node [v] of [Tᵢ] is enabled iff it is minimal
    among the remaining nodes of [Tᵢ] and, when [v] is a Lock on [x], no
    other transaction currently holds [x]. *)
val enabled : System.t -> t -> Step.t list

(** [apply st step] — fresh state with the step's node added. *)
val apply : t -> Step.t -> t

(** A deadlock state (§3): some transaction is unfinished, and every
    unfinished transaction's minimal remaining nodes are all Lock
    operations on entities held by other transactions. *)
val is_deadlock : System.t -> t -> bool

(** Number of executed nodes. *)
val size : t -> int

val pp : System.t -> Format.formatter -> t -> unit
