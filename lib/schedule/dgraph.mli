open Ddlock_graph
open Ddlock_model

(** The serialization digraph D(S′) of a (partial) schedule (§2, §5).

    Nodes are transactions.  There is an arc [Tᵢ → Tⱼ] labelled [x] iff
    both access [x] and [Tᵢ] locks [x] in S′ before [Tⱼ] does — including
    the case where [Tⱼ] has not yet locked [x] in S′ (§5). *)

type labelled_arc = { src : int; dst : int; entity : Db.entity }

(** All labelled arcs of D(S′). *)
val arcs : System.t -> Step.t list -> labelled_arc list

(** D(S′) as a digraph over transaction indices. *)
val graph : System.t -> Step.t list -> Digraph.t

(** [is_serializable sys s] iff D(s) is acyclic.  For complete schedules
    this is the serializability criterion of §2; for partial schedules
    acyclicity of D is the safety ∧ deadlock-freedom criterion of
    Lemma 1. *)
val is_serializable : System.t -> Step.t list -> bool

(** A cycle of D(S′) (transaction indices), if any. *)
val find_cycle : System.t -> Step.t list -> int list option

(** Incremental interface used by the exhaustive Lemma-1 search: the set
    of D-arcs is a monotone function of the executed lock steps.
    [arcs_added_by_lock sys ~locked_before i x] is the arcs contributed
    when [Tᵢ] executes [Lx]: one arc [i → k] for every other accessor [k]
    of [x] that has not locked [x] yet ([locked_before k] false). *)
val arcs_added_by_lock :
  System.t -> locked_before:(int -> bool) -> int -> Db.entity -> (int * int) list
