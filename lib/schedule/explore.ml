open Ddlock_graph
open Ddlock_model

exception Too_large of int

(* Telemetry: both exploration engines increment the same counters at
   state-insertion time, so totals are invariant under [jobs] (the
   parallel reduction replays the sequential insertion sequence).  All
   recording is a no-op unless Ddlock_obs.Control is switched on. *)
module Obs = struct
  module T = Ddlock_obs.Trace

  let states_visited = Ddlock_obs.Metrics.Counter.make "explore.states_visited"

  let deadlock_witnesses =
    Ddlock_obs.Metrics.Counter.make "explore.deadlock_witnesses"

  let searches = Ddlock_obs.Metrics.Counter.make "explore.searches"
  let visit () = Ddlock_obs.Metrics.Counter.incr states_visited

  (* Symmetry-reduction telemetry.  [canon_hits] counts inserted states
     whose generating successor differed from its orbit representative;
     like [states_visited] it is bumped at insertion time, so totals are
     jobs-invariant.  [orbit_gauge] records the largest automorphism
     group order seen by a symmetric search. *)
  let canon_hits = Ddlock_obs.Metrics.Counter.make "canon.hits"
  let orbit_gauge = Ddlock_obs.Metrics.Gauge.make "canon.orbit_size"
  let hit moved = if moved then Ddlock_obs.Metrics.Counter.incr canon_hits

  (* Partial-order-reduction telemetry, bumped once per work-item
     expansion.  The work-item multiset is invariant under [jobs] (the
     parallel engine replays the sequential covering-rule decisions in
     candidate order), so both totals are jobs-invariant.
     [por_pruned] sums the enabled transitions not expanded;
     [por_persistent_size] sums the persistent-set sizes. *)
  let por_pruned = Ddlock_obs.Metrics.Counter.make "por.pruned"

  let por_persistent_size =
    Ddlock_obs.Metrics.Counter.make "por.persistent_size"

  let por_expand ~enabled ~persistent ~selected =
    Ddlock_obs.Metrics.Counter.add por_pruned (enabled - selected);
    Ddlock_obs.Metrics.Counter.add por_persistent_size persistent
end

type entry = { state : State.t; parent : string option; via : Step.t option }

type space = {
  sys : System.t;
  table : (string, entry) Hashtbl.t;
  canon : Canon.t option;  (* Some ⇒ the table holds orbit representatives *)
}

(* The canonicalizer a symmetric search should use: [None] when symmetry
   is off or the automorphism group is trivial (then canonicalization is
   the identity and the plain engine is already optimal). *)
let active_canon ~symmetry sys =
  if not symmetry then None
  else
    let c = Canon.detect sys in
    if Canon.nontrivial c then begin
      Ddlock_obs.Metrics.Gauge.set_max Obs.orbit_gauge (Canon.orbit_size c);
      Some c
    end
    else None

(* Successor normalization: identity when no canonicalizer is active;
   otherwise the orbit representative plus whether the raw successor was
   moved (feeds the [canon.hits] counter at insertion). *)
let normalizer = function
  | None -> fun st -> (st, false)
  | Some c ->
      fun st ->
        let rep, _ = Canon.normalize c st in
        (rep, not (State.equal st rep))

let default_cap = 2_000_000

(* Exact cap: a search may hold at most [max_states] states; discovering
   one more raises [Too_large] with the number already held.  The check
   covers the initial state too, so the table never exceeds the budget.
   The cancellation poll rides the same path: an installed deadline
   bounds the search in time exactly as [max_states] bounds it in
   space (one domain-local read per insertion when no poll is set). *)
let check_room count max_states =
  Ddlock_obs.Cancel.poll ();
  if count >= max_states then raise (Too_large count)

let system sp = sp.sys
let state_count sp = Hashtbl.length sp.table
let states sp = Seq.map (fun (_, e) -> e.state) (Hashtbl.to_seq sp.table)

let lookup_key sp st =
  match sp.canon with
  | None -> State.key st
  | Some c -> Canon.canon_key c st

let is_reachable sp st = Hashtbl.mem sp.table (lookup_key sp st)

let path_to sp key =
  let rec go key acc =
    match Hashtbl.find_opt sp.table key with
    | None -> None
    | Some { parent = None; _ } -> Some acc
    | Some { parent = Some p; via = Some s; _ } -> go p (s :: acc)
    | Some { parent = Some _; via = None; _ } -> assert false
  in
  go key []

let schedule_to sp st =
  match sp.canon with
  | None -> path_to sp (State.key st)
  | Some c ->
      (* The stored path reaches the representative of [st]'s orbit;
         replay it through the permutations to reach [st] itself. *)
      Option.map
        (fun steps -> Canon.realize_to c steps st)
        (path_to sp (Canon.canon_key c st))

(* Persistent/sleep-set selective search (partial-order reduction).
   Work items are (state, key, sleep set); [Indep.expand] selects the
   persistent steps not in the sleep set and computes each successor's
   inherited sleep set.  Re-arriving at a stored state with a
   non-covering sleep set shrinks the stored set to the intersection
   and re-expands the state (Godefroid's covering rule), so sleeping
   never suppresses the only path into a deadlock.  Stored sleep sets
   only shrink, which bounds re-expansions; the table is keyed by
   state alone, so the reduced search never holds more states than the
   plain engine.  [found] must be implied by deadlock (evaluated at
   first insertion only): the persistent-set construction preserves
   reachability of deadlock states, not of arbitrary targets. *)
let por_search ?(max_states = default_cap) ?(restrict = fun _ -> true)
    ?(symmetry = false) sys ~found =
  Ddlock_obs.Metrics.Counter.incr Obs.searches;
  Obs.T.span "explore.por" @@ fun () ->
  let canon = active_canon ~symmetry sys in
  let table = Hashtbl.create 1024 in
  let sleeps : (string, Step.t list) Hashtbl.t = Hashtbl.create 1024 in
  let q = Queue.create () in
  let init, _ = normalizer canon (State.initial sys) in
  check_room 0 max_states;
  let ikey = State.key init in
  Hashtbl.replace table ikey { state = init; parent = None; via = None };
  Obs.visit ();
  Hashtbl.replace sleeps ikey [];
  let sp = { sys; table; canon } in
  let finish (steps, st) =
    match canon with None -> (steps, st) | Some c -> Canon.realize c steps
  in
  let result = ref None in
  if found init then result := Some (finish ([], init))
  else begin
    Queue.push (init, ikey, []) q;
    try
      while not (Queue.is_empty q) do
        let st, k, sleep = Queue.pop q in
        let exp = Indep.expand ?canon sys st ~sleep in
        Obs.por_expand ~enabled:exp.Indep.enabled_count
          ~persistent:exp.Indep.persistent_count
          ~selected:(List.length exp.Indep.succs);
        List.iter
          (fun { Indep.step; succ; moved; sleep = child } ->
            if restrict succ then begin
              let k' = State.key succ in
              match Hashtbl.find_opt sleeps k' with
              | None ->
                  check_room (Hashtbl.length table) max_states;
                  Hashtbl.replace table k'
                    { state = succ; parent = Some k; via = Some step };
                  Obs.visit ();
                  Obs.hit moved;
                  Hashtbl.replace sleeps k' child;
                  if found succ then begin
                    result := Some (finish (Option.get (path_to sp k'), succ));
                    raise Exit
                  end;
                  Queue.push (succ, k', child) q
              | Some stored -> (
                  match Indep.sleep_covered ~stored ~incoming:child with
                  | `Covered -> ()
                  | `Shrink z ->
                      Hashtbl.replace sleeps k' z;
                      Queue.push ((Hashtbl.find table k').state, k', z) q)
            end)
          exp.Indep.succs
      done
    with Exit -> ()
  end;
  (!result, sp)

let explore ?(max_states = default_cap) ?(symmetry = false) ?(por = false) sys =
  if por then
    snd (por_search ~max_states ~symmetry sys ~found:(fun _ -> false))
  else begin
    Ddlock_obs.Metrics.Counter.incr Obs.searches;
    Obs.T.span "explore.explore" @@ fun () ->
    let canon = active_canon ~symmetry sys in
    let norm = normalizer canon in
    let table = Hashtbl.create 1024 in
    let q = Queue.create () in
    let init, _ = norm (State.initial sys) in
    check_room 0 max_states;
    Hashtbl.replace table (State.key init)
      { state = init; parent = None; via = None };
    Obs.visit ();
    Queue.push init q;
    while not (Queue.is_empty q) do
      let st = Queue.pop q in
      let k = State.key st in
      List.iter
        (fun step ->
          (* Canonical dedup happens before the cap check: a successor that
             merely lands in an already-stored orbit never counts against
             [max_states]. *)
          let st', moved = norm (State.apply st step) in
          let k' = State.key st' in
          if not (Hashtbl.mem table k') then begin
            check_room (Hashtbl.length table) max_states;
            Hashtbl.replace table k'
              { state = st'; parent = Some k; via = Some step };
            Obs.visit ();
            Obs.hit moved;
            Queue.push st' q
          end)
        (State.enabled sys st)
    done;
    { sys; table; canon }
  end

(* Breadth-first search with a found predicate, shared by the deadlock and
   targeted searches. *)
let bfs ?(max_states = default_cap) ?(restrict = fun _ -> true)
    ?(symmetry = false) ?(por = false) sys ~found =
  if por then fst (por_search ~max_states ~restrict ~symmetry sys ~found)
  else begin
  Ddlock_obs.Metrics.Counter.incr Obs.searches;
  Obs.T.span "explore.bfs" @@ fun () ->
  let canon = active_canon ~symmetry sys in
  let norm = normalizer canon in
  (* With a canonicalizer active, [found] and [restrict] are evaluated on
     orbit representatives; both must be invariant under the group (the
     deadlock and reduction-cycle predicates are).  The canonical witness
     path is translated back to the original system on the way out. *)
  let finish (steps, st) =
    match canon with None -> (steps, st) | Some c -> Canon.realize c steps
  in
  let table = Hashtbl.create 1024 in
  let q = Queue.create () in
  let init, _ = norm (State.initial sys) in
  check_room 0 max_states;
  Hashtbl.replace table (State.key init) { state = init; parent = None; via = None };
  Obs.visit ();
  let sp = { sys; table; canon } in
  if found init then Some (finish ([], init))
  else begin
    Queue.push init q;
    let result = ref None in
    (try
       while not (Queue.is_empty q) do
         let st = Queue.pop q in
         let k = State.key st in
         List.iter
           (fun step ->
             let st', moved = norm (State.apply st step) in
             if restrict st' then begin
               let k' = State.key st' in
               if not (Hashtbl.mem table k') then begin
                 check_room (Hashtbl.length table) max_states;
                 Hashtbl.replace table k'
                   { state = st'; parent = Some k; via = Some step };
                 Obs.visit ();
                 Obs.hit moved;
                 if found st' then begin
                   result := Some (finish (Option.get (path_to sp k'), st'));
                   raise Exit
                 end;
                 Queue.push st' q
               end
             end)
           (State.enabled sys st)
       done
     with Exit -> ());
    !result
  end
  end

let find_deadlock ?max_states ?symmetry ?(por = false) sys =
  let dead st = State.is_deadlock sys st in
  let r =
    if por then
      (* Verdict from the reduced search; witness from a plain
         non-symmetric re-search so [--por] output is byte-identical to
         plain [analyze] under every flag combination.  When the plain
         re-search blows the budget the reduced witness — valid, just
         not BFS-minimal — is returned instead. *)
      match bfs ?max_states ?symmetry ~por:true sys ~found:dead with
      | None -> None
      | Some raw -> (
          match bfs ?max_states sys ~found:dead with
          | Some w -> Some w
          | None -> Some raw
          | exception Too_large _ -> Some raw)
    else bfs ?max_states ?symmetry sys ~found:dead
  in
  if r <> None then begin
    Ddlock_obs.Metrics.Counter.incr Obs.deadlock_witnesses;
    Obs.T.instant "explore.deadlock_witness"
  end;
  r

let deadlock_free ?max_states ?symmetry ?(por = false) sys =
  if por then
    bfs ?max_states ?symmetry ~por:true sys
      ~found:(fun st -> State.is_deadlock sys st)
    = None
  else find_deadlock ?max_states ?symmetry sys = None

type counterexample = { steps : Step.t list; cycle : int list }

(* Extended state: prefix vector plus the accumulated D-arcs (a monotone
   function of the executed lock steps and their order). *)
module Edge_set = Set.Make (struct
  type t = int * int

  let compare = compare
end)

let edges_key es =
  String.concat ";"
    (List.map (fun (a, b) -> Printf.sprintf "%d-%d" a b) (Edge_set.elements es))

let d_arcs_of_step sys st (step : Step.t) =
  let tx = System.txn sys step.txn in
  let nd = Transaction.node tx step.node in
  match nd.Node.op with
  | Node.Unlock -> []
  | Node.Lock ->
      Dgraph.arcs_added_by_lock sys
        ~locked_before:(fun k ->
          let tk = System.txn sys k in
          match Transaction.lock_node tk nd.entity with
          | None -> false
          | Some l -> Bitset.mem st.(k) l)
        step.txn nd.entity

let edge_graph n es = Digraph.create n (Edge_set.elements es)

(* The Lemma-1 extended state: a prefix vector plus the accumulated
   D-arcs.  Exposed so the parallel engine explores exactly the same
   graph as [lemma1_search]. *)
module Lemma1 = struct
  type node = { st : State.t; es : Edge_set.t }

  let initial sys = { st = State.initial sys; es = Edge_set.empty }
  let key n = State.key n.st ^ "#" ^ edges_key n.es
  let state n = n.st

  let next sys n =
    List.map
      (fun step ->
        let new_arcs = d_arcs_of_step sys n.st step in
        let es' =
          List.fold_left (fun acc e -> Edge_set.add e acc) n.es new_arcs
        in
        (step, { st = State.apply n.st step; es = es' }))
      (State.enabled sys n.st)

  let cycle sys n = Topo.find_cycle (edge_graph (System.size sys) n.es)
  let complete sys n = State.all_finished sys n.st
end

let lemma1_search ?(max_states = default_cap) sys ~report =
  (* report: `All_cyclic  -> stop on the first cyclic-D extended state
             `Complete_cyclic -> stop on cyclic D at a complete state *)
  Ddlock_obs.Metrics.Counter.incr Obs.searches;
  Obs.T.span "explore.lemma1_search" @@ fun () ->
  let table : (string, unit) Hashtbl.t = Hashtbl.create 1024 in
  let q = Queue.create () in
  let init = Lemma1.initial sys in
  check_room 0 max_states;
  Hashtbl.replace table (Lemma1.key init) ();
  Obs.visit ();
  Queue.push (init, []) q;
  let result = ref None in
  let check node rev_steps =
    match Lemma1.cycle sys node with
    | Some cycle ->
        let fire =
          match report with
          | `All_cyclic -> true
          | `Complete_cyclic -> Lemma1.complete sys node
        in
        if fire then begin
          result := Some { steps = List.rev rev_steps; cycle };
          true
        end
        else false
    | None -> false
  in
  (try
     while not (Queue.is_empty q) do
       let node, rev_steps = Queue.pop q in
       List.iter
         (fun (step, node') ->
           let k' = Lemma1.key node' in
           if not (Hashtbl.mem table k') then begin
             check_room (Hashtbl.length table) max_states;
             let rev' = step :: rev_steps in
             Hashtbl.replace table k' ();
             Obs.visit ();
             if check node' rev' then raise Exit;
             Queue.push (node', rev') q
           end)
         (Lemma1.next sys node)
     done
   with Exit -> ());
  !result

let safe_and_deadlock_free ?max_states sys =
  match lemma1_search ?max_states sys ~report:`All_cyclic with
  | None -> Ok ()
  | Some cex -> Error cex

let safe ?max_states sys =
  match lemma1_search ?max_states sys ~report:`Complete_cyclic with
  | None -> Ok ()
  | Some cex -> Error cex

let has_schedule sys target =
  let sub st = Array.for_all2 (fun a b -> Bitset.subset a b) st target in
  match
    bfs sys ~restrict:sub ~found:(fun st -> State.equal st target)
  with
  | Some (steps, _) -> Some steps
  | None -> None

let complete_schedules sys =
  let rec go st rev_steps () =
    if State.all_finished sys st then
      Seq.Cons (List.rev rev_steps, Seq.empty)
    else
      Seq.concat_map
        (fun step -> go (State.apply st step) (step :: rev_steps))
        (List.to_seq (State.enabled sys st))
        ()
  in
  go (State.initial sys) []

let count_complete_schedules sys = Seq.length (complete_schedules sys)

type run = Completed of Step.t list | Deadlocked of Step.t list * State.t

let random_run rng sys =
  let rec go st rev_steps =
    if State.all_finished sys st then Completed (List.rev rev_steps)
    else
      match State.enabled sys st with
      | [] -> Deadlocked (List.rev rev_steps, st)
      | steps ->
          let step = List.nth steps (Random.State.int rng (List.length steps)) in
          go (State.apply st step) (step :: rev_steps)
  in
  go (State.initial sys) []
