open Ddlock_model

(** Human-readable narration of schedules — used by the CLI and examples
    to explain witnesses: which locks are acquired, who waits for whom,
    which serialization arcs appear, and where the schedule gets stuck or
    goes wrong. *)

(** One narration line per executed step, plus a final status line. *)
val narrate : System.t -> Step.t list -> string list

(** The same as a formatted block. *)
val pp : System.t -> Format.formatter -> Step.t list -> unit

(** [explain_deadlock sys steps] — narration for a partial schedule that
    ends in a deadlock state: the step lines followed by per-transaction
    "blocked on" lines.  Raises [Invalid_argument] if the schedule is
    illegal. *)
val explain_deadlock : System.t -> Step.t list -> string list
