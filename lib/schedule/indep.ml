open Ddlock_graph
open Ddlock_model

let entity_of sys (s : Step.t) =
  (Transaction.node (System.txn sys s.Step.txn) s.Step.node).Node.entity

let independent sys (s : Step.t) (t : Step.t) =
  s.Step.txn <> t.Step.txn && entity_of sys s <> entity_of sys t

let commutes sys st (s : Step.t) (t : Step.t) =
  let after_s = State.apply st s in
  let after_t = State.apply st t in
  let t_alive = List.mem t (State.enabled sys after_s) in
  let s_alive = List.mem s (State.enabled sys after_t) in
  match (t_alive, s_alive) with
  | false, false -> true (* conflict both ways: no diamond to check *)
  | true, true ->
      State.key (State.apply after_s t) = State.key (State.apply after_t s)
  | _ -> false

let has_independent_pair sys =
  let n = System.size sys in
  let cross = ref false in
  for i = 0 to n - 1 do
    let ti = System.txn sys i in
    for j = i + 1 to n - 1 do
      let tj = System.txn sys j in
      for u = 0 to Transaction.node_count ti - 1 do
        for v = 0 to Transaction.node_count tj - 1 do
          if
            (Transaction.node ti u).Node.entity
            <> (Transaction.node tj v).Node.entity
          then cross := true
        done
      done
    done
  done;
  let diamond = ref false in
  for i = 0 to n - 1 do
    let ti = System.txn sys i in
    let m = Transaction.node_count ti in
    for u = 0 to m - 1 do
      for v = u + 1 to m - 1 do
        if (not (Transaction.precedes ti u v)) && not (Transaction.precedes ti v u)
        then diamond := true
      done
    done
  done;
  !cross || !diamond

(* Stubborn closure over unexecuted (txn, node) transitions, seeded
   with one enabled step.  The closure invariant: any transition
   outside the closure is independent (in every reachable future) of
   every enabled member, and every disabled member has a
   necessary-enabling transition inside.  Same-transaction pairs need
   no treatment: two unexecuted nodes of one transaction either are
   order-comparable (only one can fire first) or are both minimal,
   in which case firing one neither disables the other nor changes
   the resulting state's dependence on order. *)
let closure_from sys st (seed : Step.t) =
  let w : (int * int, unit) Hashtbl.t = Hashtbl.create 16 in
  let q = Queue.create () in
  let add i u =
    if not (Hashtbl.mem w (i, u)) then begin
      Hashtbl.replace w (i, u) ();
      Queue.push (i, u) q
    end
  in
  add seed.Step.txn seed.Step.node;
  let n = System.size sys in
  while not (Queue.is_empty q) do
    let i, u = Queue.pop q in
    let tx = System.txn sys i in
    let nd = Transaction.node tx u in
    if not (List.mem u (Transaction.minimal_remaining tx st.(i))) then begin
      (* Disabled by its own partial order: any path enabling it first
         executes every predecessor, so one unexecuted predecessor is a
         necessary-enabling set.  Prefer one already in the closure (no
         growth); else the smallest id, for determinism. *)
      let preds = ref [] in
      for v = Transaction.node_count tx - 1 downto 0 do
        if Transaction.precedes tx v u && not (Bitset.mem st.(i) v) then
          preds := v :: !preds
      done;
      match List.find_opt (fun v -> Hashtbl.mem w (i, v)) !preds with
      | Some _ -> ()
      | None -> (
          match !preds with v :: _ -> add i v | [] -> assert false)
    end
    else
      match (nd.Node.op, State.holder sys st nd.Node.entity) with
      | Node.Lock, Some k when k <> i ->
          (* Blocked on the holder: the holder's Unlock is the unique
             necessary-enabling transition. *)
          add k (Transaction.unlock_node_exn (System.txn sys k) nd.Node.entity)
      | _ ->
          (* Enabled: pull in every unexecuted same-entity node of the
             other transactions.  Unlock/Unlock pairs are skipped —
             two transactions never hold the same entity, so those are
             never co-enabled and never affect each other. *)
          for j = 0 to n - 1 do
            if j <> i then begin
              let txj = System.txn sys j in
              for v = 0 to Transaction.node_count txj - 1 do
                if not (Bitset.mem st.(j) v) then begin
                  let ndj = Transaction.node txj v in
                  if
                    ndj.Node.entity = nd.Node.entity
                    && not (nd.Node.op = Node.Unlock && ndj.Node.op = Node.Unlock)
                  then add j v
                end
              done
            end
          done
  done;
  w

let persistent sys st =
  match State.enabled sys st with
  | ([] | [ _ ]) as enabled -> enabled
  | enabled ->
      let filter w =
        List.filter (fun s -> Hashtbl.mem w (s.Step.txn, s.Step.node)) enabled
      in
      let best = ref None in
      List.iter
        (fun seed ->
          match !best with
          | Some b when List.length b = 1 -> ()
          | _ -> (
              let p = filter (closure_from sys st seed) in
              match !best with
              | Some b when List.length b <= List.length p -> ()
              | _ -> best := Some p))
        enabled;
      Option.get !best

type succ = {
  step : Step.t;
  succ : State.t;
  moved : bool;
  sleep : Step.t list;
}

type expansion = {
  enabled_count : int;
  persistent_count : int;
  succs : succ list;
}

let expand ?canon sys st ~sleep =
  let enabled = State.enabled sys st in
  let pers = persistent sys st in
  let selected = List.filter (fun s -> not (List.mem s sleep)) pers in
  (* The sleep set inherited by the successor of the i-th selected step
     keeps the members of [sleep] and the earlier-selected steps that
     are independent of it — those were enabled here, stay enabled in
     the successor, and exploring them there would only duplicate an
     interleaving explored from a sibling. *)
  let rec go acc = function
    | [] -> []
    | s :: rest ->
        let raw = State.apply st s in
        let child0 = List.filter (fun t -> independent sys t s) acc in
        let succ, moved, child =
          match canon with
          | None -> (raw, false, child0)
          | Some c ->
              let rep, pi = Canon.normalize c raw in
              (rep, not (State.equal raw rep), Canon.rename_schedule pi child0)
        in
        { step = s; succ; moved; sleep = List.sort Step.compare child }
        :: go (s :: acc) rest
  in
  {
    enabled_count = List.length enabled;
    persistent_count = List.length pers;
    succs = go sleep selected;
  }

(* [stored ⊆ incoming], both sorted by Step.compare. *)
let rec subset stored incoming =
  match (stored, incoming) with
  | [], _ -> true
  | _ :: _, [] -> false
  | s :: srest, t :: trest ->
      let c = Step.compare s t in
      if c = 0 then subset srest trest
      else if c > 0 then subset stored trest
      else false

let rec inter a b =
  match (a, b) with
  | [], _ | _, [] -> []
  | s :: srest, t :: trest ->
      let c = Step.compare s t in
      if c = 0 then s :: inter srest trest
      else if c < 0 then inter srest b
      else inter a trest

let sleep_covered ~stored ~incoming =
  if subset stored incoming then `Covered else `Shrink (inter stored incoming)
