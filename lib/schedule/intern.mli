(** Hash-consing intern tables: dense integer ids for structural values.

    [intern] maps a value to a stable id (its insertion index); equal
    values get equal ids, so equality downstream is integer equality
    and visited sets can store ints instead of keys.  Backing storage
    is a growable arena with amortized doubling.  Not thread-safe; the
    parallel engine shards tables behind per-shard mutexes. *)

type 'a t

(** [create ~equal ~hash ()] — [hash] must be compatible with [equal]
    (equal values hash equally). *)
val create :
  ?capacity:int -> equal:('a -> 'a -> bool) -> hash:('a -> int) -> unit -> 'a t

(** [intern t x] is [(id, was_new)]: the id of the value equal to [x]
    in [t], inserting [x] with the next dense id when absent.
    Idempotent: a second intern of an equal value returns the same id
    with [was_new = false].  Injective: distinct ids hold non-equal
    values. *)
val intern : 'a t -> 'a -> int * bool

(** [find t x] — id of the interned value equal to [x], if any. *)
val find : 'a t -> 'a -> int option

(** [get t id] — the value with id [id].  Raises [Invalid_argument] on
    out-of-range ids. *)
val get : 'a t -> int -> 'a

(** Number of interned values (also the next fresh id). *)
val count : 'a t -> int

(** Number of [intern] calls that found an existing value (dedup hits). *)
val hits : 'a t -> int

(** Iterate values in id order. *)
val iter : ('a -> unit) -> 'a t -> unit
