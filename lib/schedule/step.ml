open Ddlock_model

type t = { txn : int; node : int }

let v txn node = { txn; node }
let equal a b = a = b
let compare = compare

let to_string sys s =
  let tx = System.txn sys s.txn in
  let nd = Transaction.node tx s.node in
  let op = match nd.Node.op with Node.Lock -> "L" | Node.Unlock -> "U" in
  Printf.sprintf "%s%d.%s" op (s.txn + 1)
    (Db.entity_name (System.db sys) nd.Node.entity)

let pp sys ppf s = Format.pp_print_string ppf (to_string sys s)

let pp_schedule sys ppf steps =
  Format.fprintf ppf "@[<hov>%a@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
       (pp sys))
    steps
