open Ddlock_model

(** Plain-text (partial) schedules, for saving witnesses and replaying
    them with the CLI.

    One step per line: [T<i> L <entity>] or [T<i> U <entity>], [#]
    comments and blank lines ignored. *)

val to_text : System.t -> Step.t list -> string

type error = { line : int; message : string }

val pp_error : Format.formatter -> error -> unit

(** Parse against a system (transaction indices and entity names are
    resolved; node ids are looked up in the transactions). *)
val parse : System.t -> string -> (Step.t list, error) result
