open Ddlock_model

let to_text sys steps =
  let buf = Buffer.create 128 in
  List.iter
    (fun (s : Step.t) ->
      let nd = Transaction.node (System.txn sys s.txn) s.node in
      Buffer.add_string buf
        (Printf.sprintf "T%d %s %s\n" (s.txn + 1)
           (match nd.Node.op with Node.Lock -> "L" | Node.Unlock -> "U")
           (Db.entity_name (System.db sys) nd.Node.entity)))
    steps;
  Buffer.contents buf

type error = { line : int; message : string }

let pp_error ppf e = Format.fprintf ppf "line %d: %s" e.line e.message

let parse sys text =
  let db = System.db sys in
  let err line message = Error { line; message } in
  let rec go acc lineno = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        let line' = String.trim line in
        if line' = "" || line'.[0] = '#' then go acc (lineno + 1) rest
        else
          match
            List.filter (fun s -> s <> "") (String.split_on_char ' ' line')
          with
          | [ t; op; e ] -> (
              let txn =
                if String.length t >= 2 && t.[0] = 'T' then
                  int_of_string_opt (String.sub t 1 (String.length t - 1))
                else None
              in
              match (txn, Db.find_entity db e) with
              | None, _ -> err lineno ("bad transaction " ^ t)
              | Some i, _ when i < 1 || i > System.size sys ->
                  err lineno ("transaction out of range: " ^ t)
              | _, None -> err lineno ("unknown entity " ^ e)
              | Some i, Some entity -> (
                  let tx = System.txn sys (i - 1) in
                  let node =
                    match op with
                    | "L" -> Transaction.lock_node tx entity
                    | "U" -> Transaction.unlock_node tx entity
                    | _ -> None
                  in
                  match node with
                  | None ->
                      err lineno
                        (Printf.sprintf "T%d has no %s step on %s" i op e)
                  | Some v -> go (Step.v (i - 1) v :: acc) (lineno + 1) rest))
          | _ -> err lineno "expected: T<i> L|U <entity>")
  in
  go [] 1 (String.split_on_char '\n' text)
