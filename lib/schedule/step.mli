open Ddlock_model

(** One step of a schedule: node [node] of transaction [txn]. *)
type t = { txn : int; node : int }

val v : int -> int -> t
val equal : t -> t -> bool
val compare : t -> t -> int

(** ["L²x"]-style rendering: op, transaction superscript, entity. *)
val to_string : System.t -> t -> string

val pp : System.t -> Format.formatter -> t -> unit
val pp_schedule : System.t -> Format.formatter -> t list -> unit
