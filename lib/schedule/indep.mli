open Ddlock_model

(** Independence of transaction steps, and the persistent/sleep-set
    machinery built on it (partial-order reduction).

    Two steps are {e independent} when executing them in either order
    from any state where both are enabled reaches the same state, and
    neither can enable or disable the other.  For lock systems this
    holds statically whenever the steps belong to different
    transactions and touch different entities: [State.apply] only sets
    a bit in the step's own transaction row, and enabledness of an
    operation on entity [x] depends only on its own transaction's
    prefix and on the holder of [x].

    The static predicate is deliberately conservative (lock-set
    disjointness); the dynamic [commutes] oracle is the ground truth
    the test batteries check it against. *)

(** [independent sys s t] — sound static independence: [s] and [t]
    belong to different transactions and operate on different
    entities.  Unconditional: valid in {e every} state, which is what
    sleep-set inheritance requires.  Irreflexive and symmetric. *)
val independent : System.t -> Step.t -> Step.t -> bool

(** [commutes sys st s t] — dynamic commutation oracle (used only by
    tests).  Precondition: [s] and [t] are enabled in [st] (behaviour
    on other inputs is unspecified but total).  Holds iff either both
    orders of execution are possible and converge to the same state,
    or neither step survives the other (a genuine conflict, where no
    diamond exists to check).  One-sided survival — [t] enabled after
    [s] but not vice versa — is a non-commuting pair. *)
val commutes : System.t -> State.t -> Step.t -> Step.t -> bool

(** [has_independent_pair sys] — can partial-order reduction ever cut
    anything on [sys]?  True iff some two steps of different
    transactions touch different entities, or some single transaction
    has two order-incomparable nodes (a same-transaction diamond).
    Used for the CLI [--por] no-op warning. *)
val has_independent_pair : System.t -> bool

(** [persistent sys st] — a deadlock-preserving persistent subset of
    [State.enabled sys st], in enabled order.  Computed as a stubborn
    closure over unexecuted (txn, node) transitions seeded with each
    enabled step in turn, keeping the smallest result:

    - an enabled member pulls in every unexecuted same-entity node of
      the other transactions (its potential conflicts);
    - a non-minimal member pulls in one unexecuted predecessor (a
      necessary-enabling set), preferring one already in the closure;
    - a minimal Lock blocked by holder [k] pulls in [k]'s Unlock of
      that entity.

    Nonempty whenever [enabled] is nonempty, so selective search
    reaches every deadlock state.  Deterministic. *)
val persistent : System.t -> State.t -> Step.t list

(** {1 Selective expansion (shared by both POR engines)} *)

(** One selected successor: the step taken, the (normalized) successor
    state, whether canonicalization moved it, and the sleep set the
    successor inherits (sorted by [Step.compare], renamed into the
    representative's frame under symmetry). *)
type succ = {
  step : Step.t;
  succ : State.t;
  moved : bool;
  sleep : Step.t list;
}

type expansion = {
  enabled_count : int;  (** [|State.enabled sys st|] *)
  persistent_count : int;  (** [|persistent sys st|] *)
  succs : succ list;  (** persistent minus sleep, in enabled order *)
}

(** [expand ?canon sys st ~sleep] — selective successor generation for
    one work item: persistent steps not in [sleep], each with its
    inherited sleep set (members of [sleep] and earlier-selected
    steps that are statically independent of the step taken).  A pure
    function of its arguments; both engines call it so their work-item
    streams are identical.  [st] must already be a representative when
    [canon] is given. *)
val expand : ?canon:Canon.t -> System.t -> State.t -> sleep:Step.t list -> expansion

(** [sleep_covered ~stored ~incoming] — the covering rule at a
    re-visited state (both lists sorted by [Step.compare]):
    [`Covered] when [incoming ⊇ stored] (the arrival explores nothing
    new), else [`Shrink z] with [z = stored ∩ incoming], the strictly
    smaller sleep set to store and re-expand with. *)
val sleep_covered :
  stored:Step.t list ->
  incoming:Step.t list ->
  [ `Covered | `Shrink of Step.t list ]
