open Ddlock_graph
open Ddlock_model

type t = {
  sys : System.t;
  classes : int array array;  (* class id -> members, ascending *)
  nontrivial : bool;
  orbit : int;
}

(* Transactions are interchangeable iff they carry the same node labels
   under the same numbering and the same (closed) precedence between
   them.  Node labels determine entities and hence sites, so the
   permutations are site-respecting by construction.  Comparing over the
   concrete numbering (rather than up to label isomorphism, as
   [Transaction.equal] does) is what lets [apply_perm] swap prefix
   bitsets verbatim. *)
let structural_key tx =
  ( Array.to_list (Transaction.nodes tx),
    List.sort compare
      (Digraph.edges (Closure.closure_graph (Transaction.given_arcs tx))) )

(* Semantic cache key: schema (with names — verdict texts print them)
   plus the in-order transaction structural keys.  Interchangeable
   transactions have {e equal} structural keys, so the key is invariant
   under permuting them — the K-copies systems identical clients submit
   all collapse onto one digest — while systems differing in any way
   that can change a rendered verdict (names, placement, the order of
   {e distinct} transactions) get distinct digests. *)
let system_key sys =
  let db = System.db sys in
  let schema =
    List.init (Db.site_count db) (fun s ->
        ( Db.site_name db s,
          List.map (Db.entity_name db) (Db.entities_of_site db s) ))
  in
  let txns =
    List.map structural_key (Array.to_list (System.txns sys))
  in
  Digest.to_hex (Digest.string (Marshal.to_string (schema, txns) []))

let detect sys =
  let n = System.size sys in
  let tbl = Hashtbl.create 7 in
  let next = ref 0 in
  let class_of =
    Array.init n (fun i ->
        let k = structural_key (System.txn sys i) in
        match Hashtbl.find_opt tbl k with
        | Some c -> c
        | None ->
            let c = !next in
            incr next;
            Hashtbl.add tbl k c;
            c)
  in
  let members = Array.make !next [] in
  for i = n - 1 downto 0 do
    members.(class_of.(i)) <- i :: members.(class_of.(i))
  done;
  let classes = Array.map Array.of_list members in
  let rec fact k = if k <= 1 then 1 else k * fact (k - 1) in
  {
    sys;
    classes;
    nontrivial = Array.exists (fun g -> Array.length g > 1) classes;
    orbit = Array.fold_left (fun acc g -> acc * fact (Array.length g)) 1 classes;
  }

let system c = c.sys
let nontrivial c = c.nontrivial
let groups c = Array.to_list (Array.map Array.to_list c.classes)
let orbit_size c = c.orbit
let identity n = Array.init n Fun.id

let normalize c (st : State.t) =
  let n = Array.length st in
  let rep = Array.copy st in
  let perm = identity n in
  Array.iter
    (fun g ->
      let k = Array.length g in
      if k > 1 then begin
        let order = Array.map (fun i -> (st.(i), i)) g in
        Array.sort
          (fun (a, i) (b, j) ->
            match Bitset.compare a b with 0 -> Int.compare i j | cmp -> cmp)
          order;
        Array.iteri
          (fun slot (p, orig) ->
            rep.(g.(slot)) <- p;
            perm.(orig) <- g.(slot))
          order
      end)
    c.classes;
  (rep, perm)

let canon_key c st = State.key (fst (normalize c st))

let apply_perm perm (st : State.t) : State.t =
  let n = Array.length st in
  let out = Array.make n st.(0) in
  Array.iteri (fun i p -> out.(perm.(i)) <- p) st;
  out

let rename_schedule perm steps =
  List.map (fun (s : Step.t) -> Step.v perm.(s.Step.txn) s.Step.node) steps

let invert perm =
  let inv = Array.make (Array.length perm) 0 in
  Array.iteri (fun i j -> inv.(j) <- i) perm;
  inv

let compose d t = Array.init (Array.length t) (fun i -> d.(t.(i)))

let random_group_perm rng c =
  let perm = identity (System.size c.sys) in
  Array.iter
    (fun g ->
      let k = Array.length g in
      if k > 1 then begin
        let img = Array.copy g in
        for i = k - 1 downto 1 do
          let j = Random.State.int rng (i + 1) in
          let tmp = img.(i) in
          img.(i) <- img.(j);
          img.(j) <- tmp
        done;
        Array.iteri (fun slot orig -> perm.(orig) <- img.(slot)) g
      end)
    c.classes;
  perm

(* Replay the quotient-space path while tracking the renaming τ that maps
   the current representative onto the actual state of the original
   system: actual = apply_perm τ rep.  A quotient edge (rep, s) leads to
   rep' with rep' = σ·(apply rep s); the matching real step is s renamed
   by τ, and the new tracking permutation is τ ∘ σ⁻¹. *)
let realize_perm c steps =
  let n = System.size c.sys in
  let tau = ref (identity n) in
  let rep = ref (fst (normalize c (State.initial c.sys))) in
  let real =
    List.map
      (fun (s : Step.t) ->
        let real_step = Step.v !tau.(s.Step.txn) s.Step.node in
        let rep', sigma = normalize c (State.apply !rep s) in
        tau := compose !tau (invert sigma);
        rep := rep';
        real_step)
      steps
  in
  (real, apply_perm !tau !rep, !tau)

let realize c steps =
  let real, final, _ = realize_perm c steps in
  (real, final)

let realize_to c steps target =
  let real, _, tau = realize_perm c steps in
  let _, pi = normalize c target in
  (* real reaches τ·rep; renaming it by δ = π⁻¹ ∘ τ⁻¹ yields a schedule
     reaching δ·τ·rep = π⁻¹·rep = target. *)
  rename_schedule (compose (invert pi) (invert tau)) real
