open Ddlock_graph
open Ddlock_model

type t = Bitset.t array

let initial sys =
  Array.init (System.size sys) (fun i ->
      Transaction.empty_prefix (System.txn sys i))

let final sys =
  Array.init (System.size sys) (fun i ->
      Transaction.full_prefix (System.txn sys i))

let copy st = Array.map Bitset.copy st
let equal a b = Array.length a = Array.length b && Array.for_all2 Bitset.equal a b

let hash st =
  let h = ref (Array.length st) in
  Array.iter (fun s -> h := (!h * 486187739) + Bitset.hash s) st;
  !h land max_int

let key st =
  let buf = Buffer.create 64 in
  Array.iter
    (fun s ->
      Bitset.iter (fun i -> Buffer.add_string buf (string_of_int i ^ ",")) s;
      Buffer.add_char buf '|')
    st;
  Buffer.contents buf

let is_valid sys st =
  Array.length st = System.size sys
  && Array.for_all2
       (fun tx p -> Transaction.is_prefix tx p)
       (System.txns sys) st

let holder sys st x =
  let n = System.size sys in
  let rec go i =
    if i >= n then None
    else
      let tx = System.txn sys i in
      if Transaction.accesses tx x then
        let l = Transaction.lock_node_exn tx x
        and u = Transaction.unlock_node_exn tx x in
        if Bitset.mem st.(i) l && not (Bitset.mem st.(i) u) then Some i
        else go (i + 1)
      else go (i + 1)
  in
  go 0

let held sys st i = Transaction.held_in_prefix (System.txn sys i) st.(i)

let finished sys st i =
  Bitset.cardinal st.(i) = Transaction.node_count (System.txn sys i)

let all_finished sys st =
  let n = System.size sys in
  let rec go i = i >= n || (finished sys st i && go (i + 1)) in
  go 0

let enabled sys st =
  let n = System.size sys in
  let steps = ref [] in
  for i = n - 1 downto 0 do
    let tx = System.txn sys i in
    List.iter
      (fun v ->
        let nd = Transaction.node tx v in
        let ok =
          match nd.Node.op with
          | Node.Unlock -> true
          | Node.Lock -> (
              match holder sys st nd.Node.entity with
              | None -> true
              | Some j -> j = i)
        in
        if ok then steps := Step.v i v :: !steps)
      (Transaction.minimal_remaining tx st.(i))
  done;
  !steps

let apply st (step : Step.t) =
  let st' = copy st in
  Bitset.set st'.(step.Step.txn) step.Step.node;
  st'

let is_deadlock sys st =
  let n = System.size sys in
  let some_unfinished = ref false in
  let ok = ref true in
  for i = 0 to n - 1 do
    if not (finished sys st i) then begin
      some_unfinished := true;
      let tx = System.txn sys i in
      List.iter
        (fun v ->
          let nd = Transaction.node tx v in
          match nd.Node.op with
          | Node.Unlock -> ok := false
          | Node.Lock -> (
              match holder sys st nd.Node.entity with
              | Some j when j <> i -> ()
              | _ -> ok := false))
        (Transaction.minimal_remaining tx st.(i))
    end
  done;
  !some_unfinished && !ok

let size st = Array.fold_left (fun acc s -> acc + Bitset.cardinal s) 0 st

let pp sys ppf st =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i p ->
      let tx = System.txn sys i in
      Format.fprintf ppf "T%d: {" (i + 1);
      Bitset.iter
        (fun v ->
          Format.fprintf ppf " %s"
            (Node.to_string (System.db sys) (Transaction.node tx v)))
        p;
      Format.fprintf ppf " }@,")
    st;
  Format.fprintf ppf "@]"
