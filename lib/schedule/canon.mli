open Ddlock_model

(** Symmetry reduction: orbit canonicalization of exploration states.

    Two transactions of a system are {e interchangeable} when they are the
    same labelled partial order with the same node numbering — e.g. the
    copies produced by {!System.copies} or [gen --copies].  Permuting the
    prefixes of interchangeable transactions is an automorphism of the
    interleaving transition system: it preserves {!State.enabled},
    {!State.is_deadlock} and the reduction-graph predicates, because every
    lock/unlock label (and hence every site) is identical across the
    class.  The automorphism group is the direct product of the symmetric
    groups over each class; its order is {!orbit_size}.

    [Canon] picks one representative per orbit — within each class the
    member prefixes are sorted by a fixed total order on bitsets — so a
    search that stores only representatives visits at most one state per
    orbit.  The map is exact: [canon (σ·s) = canon s] for every group
    element [σ].  {!realize} and {!realize_to} translate a schedule found
    in the quotient space back into a schedule of the original system.

    Permutation convention: a permutation [π : int array] sends
    transaction [i] to slot [π.(i)], i.e. [(apply_perm π st).(π.(i)) =
    st.(i)], and [compose d t] is [d ∘ t] ([i ↦ d.(t.(i))]). *)

type t

(** [detect sys] groups the transactions of [sys] into interchangeability
    classes by structural key (node labelling plus transitively closed
    precedence, both over the concrete node numbering). *)
val detect : System.t -> t

val system : t -> System.t

(** Structural hash of a whole system, for semantic caching (the
    analysis daemon's verdict cache).  Two systems get equal keys iff
    they have the same named schema (site and entity names, placement)
    and transaction lists equal up to permuting {e interchangeable}
    transactions (the classes of {!detect}) — the automorphisms the
    quotient search exploits.  In particular the K-copies systems that
    many identical clients generate all share one key, while any
    difference that can change a rendered verdict (names, placement,
    the order of distinct transactions) yields a distinct key. *)
val system_key : System.t -> string

(** Whether any class has ≥ 2 members (i.e. the group is non-trivial).
    When [false], canonicalization is the identity and symmetry-aware
    searches fall back to the plain engines. *)
val nontrivial : t -> bool

(** The interchangeability classes, each in ascending transaction order.
    Singleton classes are included. *)
val groups : t -> int list list

(** Order of the automorphism group: the product over classes of the
    factorial of the class size.  The raw state count is at most
    [orbit_size] times the canonical state count. *)
val orbit_size : t -> int

(** [normalize c st] is [(rep, π)] where [rep = apply_perm π st] is the
    orbit representative of [st]: within each class, prefixes sorted by
    {!Ddlock_graph.Bitset.compare} (ties broken by original index, so
    [normalize] of a representative is the identity).  [rep] shares the
    (immutable-by-convention) bitsets of [st]. *)
val normalize : t -> State.t -> State.t * int array

(** [canon_key c st] is [State.key (fst (normalize c st))] — equal on two
    states iff they lie in the same orbit. *)
val canon_key : t -> State.t -> string

(** [apply_perm π st] permutes the prefix vector: slot [π.(i)] of the
    result is [st.(i)]. *)
val apply_perm : int array -> State.t -> State.t

(** [rename_schedule π steps] renames the transaction index of each step
    through [π]. *)
val rename_schedule : int array -> Step.t list -> Step.t list

val invert : int array -> int array

(** [compose d t] is the permutation [i ↦ d.(t.(i))] ([d ∘ t]). *)
val compose : int array -> int array -> int array

(** A uniformly random element of the automorphism group (independent
    Fisher–Yates shuffle within each class). *)
val random_group_perm : Random.State.t -> t -> int array

(** [realize c steps] replays a schedule [steps] of the {e quotient}
    space — each step taken from a representative, with the successor
    re-normalized, exactly as the symmetric engines search — and returns
    the corresponding schedule of the original system together with the
    state it reaches (an arbitrary member of the final orbit). *)
val realize : t -> Step.t list -> Step.t list * State.t

(** [realize_to c steps target] is {!realize} composed with a final
    renaming so that the returned schedule reaches exactly [target],
    which must lie in the orbit of the final representative of
    [steps]. *)
val realize_to : t -> Step.t list -> State.t -> Step.t list
