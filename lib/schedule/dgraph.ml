open Ddlock_graph
open Ddlock_model

type labelled_arc = { src : int; dst : int; entity : Db.entity }

let arcs sys steps =
  let n = System.size sys in
  let db = System.db sys in
  let ne = Db.entity_count db in
  (* For each entity, the transactions that lock it in the schedule, in
     order of their Lock step. *)
  let lockers = Array.make ne [] in
  List.iter
    (fun (s : Step.t) ->
      let tx = System.txn sys s.txn in
      let nd = Transaction.node tx s.node in
      match nd.Node.op with
      | Node.Lock -> lockers.(nd.entity) <- s.txn :: lockers.(nd.entity)
      | Node.Unlock -> ())
    steps;
  let result = ref [] in
  for x = 0 to ne - 1 do
    let locked = List.rev lockers.(x) in
    let locked_set = List.sort_uniq compare locked in
    let accessors =
      List.filter
        (fun i -> Transaction.accesses (System.txn sys i) x)
        (List.init n Fun.id)
    in
    (* Arcs between successive lockers... in fact from each locker to every
       later locker, and to every accessor that never locked in S'. *)
    let rec pairs = function
      | [] -> ()
      | i :: rest ->
          List.iter
            (fun j -> if j <> i then result := { src = i; dst = j; entity = x } :: !result)
            rest;
          pairs rest
    in
    pairs locked;
    List.iter
      (fun i ->
        List.iter
          (fun k ->
            if k <> i && not (List.mem k locked_set) then
              result := { src = i; dst = k; entity = x } :: !result)
          accessors)
      locked_set
  done;
  List.rev !result

let graph sys steps =
  Digraph.create (System.size sys)
    (List.map (fun a -> (a.src, a.dst)) (arcs sys steps))

let is_serializable sys steps = Topo.is_acyclic (graph sys steps)
let find_cycle sys steps = Topo.find_cycle (graph sys steps)

let arcs_added_by_lock sys ~locked_before i x =
  let n = System.size sys in
  let acc = ref [] in
  for k = 0 to n - 1 do
    if k <> i && Transaction.accesses (System.txn sys k) x && not (locked_before k)
    then acc := (i, k) :: !acc
  done;
  !acc
