open Ddlock_graph
open Ddlock_model

type violation =
  | Node_repeated of Step.t
  | Not_minimal of Step.t
  | Lock_held of Step.t * int
  | Bad_txn_index of Step.t

let pp_violation sys ppf = function
  | Node_repeated s ->
      Format.fprintf ppf "step %s executed twice" (Step.to_string sys s)
  | Not_minimal s ->
      Format.fprintf ppf "step %s executed before one of its predecessors"
        (Step.to_string sys s)
  | Lock_held (s, i) ->
      Format.fprintf ppf "step %s while T%d holds the lock"
        (Step.to_string sys s) (i + 1)
  | Bad_txn_index s ->
      Format.fprintf ppf "step references unknown transaction %d"
        (s.Step.txn + 1)

let check sys steps =
  let n = System.size sys in
  let st = State.initial sys in
  let rec go st = function
    | [] -> Ok st
    | (s : Step.t) :: rest ->
        if s.txn < 0 || s.txn >= n then Error (Bad_txn_index s)
        else
          let tx = System.txn sys s.txn in
          if Bitset.mem st.(s.txn) s.node then Error (Node_repeated s)
          else if
            not
              (Array.for_all
                 (Bitset.mem st.(s.txn))
                 (Digraph.pred (Transaction.given_arcs tx) s.node))
          then Error (Not_minimal s)
          else
            let nd = Transaction.node tx s.node in
            let blocked =
              match nd.Node.op with
              | Node.Unlock -> None
              | Node.Lock -> (
                  match State.holder sys st nd.Node.entity with
                  | Some j when j <> s.txn -> Some j
                  | _ -> None)
            in
            (match blocked with
            | Some j -> Error (Lock_held (s, j))
            | None -> go (State.apply st s) rest)
  in
  go st steps

let is_legal sys steps = Result.is_ok (check sys steps)

let is_complete sys steps =
  match check sys steps with
  | Error _ -> false
  | Ok st -> State.all_finished sys st

let to_state sys steps =
  match check sys steps with
  | Ok st -> st
  | Error v ->
      invalid_arg
        (Format.asprintf "Schedule.to_state: illegal schedule: %a"
           (pp_violation sys) v)

let serial sys order =
  let n = System.size sys in
  let sorted = List.sort compare order in
  if sorted <> List.init n Fun.id then
    invalid_arg "Schedule.serial: not a permutation";
  List.concat_map
    (fun i ->
      let tx = System.txn sys i in
      match Ddlock_graph.Topo.sort (Transaction.given_arcs tx) with
      | Some ext -> List.map (Step.v i) ext
      | None -> assert false)
    order

let of_extensions _sys exts order =
  List.concat_map (fun i -> List.map (Step.v i) exts.(i)) order

let prefix_vector sys steps =
  let st = State.initial sys in
  List.iter (fun (s : Step.t) -> Bitset.set st.(s.txn) s.node) steps;
  st

let project steps i =
  List.filter_map
    (fun (s : Step.t) -> if s.txn = i then Some s.node else None)
    steps
