(* Hash-consing intern table: maps values to dense integer ids so that
   downstream structures (visited sets, parent arrays) can store ints
   and compare with [==]-style integer equality instead of re-hashing
   or re-comparing structural values.

   The arena is a growable array with amortized doubling; buckets map a
   structural hash to the (few) arena ids sharing it.  Not thread-safe
   by itself — the parallel engine wraps one table per shard behind the
   shard mutex. *)

type 'a t = {
  equal : 'a -> 'a -> bool;
  hash : 'a -> int;
  buckets : (int, int list) Hashtbl.t;
  mutable arena : 'a array;
  mutable len : int;
  mutable hits : int;
}

let create ?(capacity = 256) ~equal ~hash () =
  { equal; hash; buckets = Hashtbl.create capacity; arena = [||]; len = 0;
    hits = 0 }

let count t = t.len
let hits t = t.hits

let get t id =
  if id < 0 || id >= t.len then invalid_arg "Intern.get: id out of range";
  t.arena.(id)

let ensure_room t x =
  let cap = Array.length t.arena in
  if t.len >= cap then begin
    let ncap = if cap = 0 then 16 else 2 * cap in
    let arr = Array.make ncap x in
    Array.blit t.arena 0 arr 0 t.len;
    t.arena <- arr
  end

let find t x =
  let h = t.hash x land max_int in
  match Hashtbl.find_opt t.buckets h with
  | None -> None
  | Some ids -> List.find_opt (fun id -> t.equal t.arena.(id) x) ids

let intern t x =
  let h = t.hash x land max_int in
  let ids = Option.value ~default:[] (Hashtbl.find_opt t.buckets h) in
  match List.find_opt (fun id -> t.equal t.arena.(id) x) ids with
  | Some id ->
      t.hits <- t.hits + 1;
      (id, false)
  | None ->
      ensure_room t x;
      let id = t.len in
      t.arena.(id) <- x;
      t.len <- t.len + 1;
      Hashtbl.replace t.buckets h (id :: ids);
      (id, true)

let iter f t =
  for id = 0 to t.len - 1 do
    f t.arena.(id)
  done
