type op = Lock | Unlock
type t = { entity : Db.entity; op : op }

let lock entity = { entity; op = Lock }
let unlock entity = { entity; op = Unlock }
let equal a b = a = b
let compare = compare

let to_string db t =
  (match t.op with Lock -> "L" | Unlock -> "U") ^ Db.entity_name db t.entity

let pp db ppf t = Format.pp_print_string ppf (to_string db t)
