type step = L of string | U of string

let node_of_step db = function
  | L name -> Node.lock (Db.find_entity_exn db name)
  | U name -> Node.unlock (Db.find_entity_exn db name)

let collect db ~chains ~arcs =
  let tbl = Hashtbl.create 17 in
  let labels = ref [] in
  let count = ref 0 in
  let id_of step =
    let nd = node_of_step db step in
    match Hashtbl.find_opt tbl nd with
    | Some i -> i
    | None ->
        let i = !count in
        incr count;
        Hashtbl.add tbl nd i;
        labels := nd :: !labels;
        i
  in
  let arc_list = ref [] in
  List.iter
    (fun chain ->
      let ids = List.map id_of chain in
      let rec link = function
        | a :: (b :: _ as rest) ->
            arc_list := (a, b) :: !arc_list;
            link rest
        | _ -> ()
      in
      link ids)
    chains;
  List.iter (fun (a, b) -> arc_list := (id_of a, id_of b) :: !arc_list) arcs;
  (* Materialize the matching op for every mentioned entity and the
     implicit Lx < Ux arc. *)
  let mentioned = Hashtbl.fold (fun (nd : Node.t) _ acc -> nd.entity :: acc) tbl [] in
  List.iter
    (fun e ->
      let l = id_of (L (Db.entity_name db e)) in
      let u = id_of (U (Db.entity_name db e)) in
      arc_list := (l, u) :: !arc_list)
    (List.sort_uniq compare mentioned);
  (Array.of_list (List.rev !labels), !arc_list)

let transaction db ?(chains = []) ?(arcs = []) () =
  let labels, arc_list = collect db ~chains ~arcs in
  Transaction.make db labels arc_list

let transaction_exn db ?(chains = []) ?(arcs = []) () =
  let labels, arc_list = collect db ~chains ~arcs in
  Transaction.make_exn db labels arc_list

let total db steps =
  Transaction.of_total_order db (List.map (node_of_step db) steps)

let total_exn db steps =
  match total db steps with
  | Ok t -> t
  | Error es ->
      invalid_arg
        ("Builder.total_exn: "
        ^ String.concat "; "
            (List.map (Transaction.error_to_string db) es))

let two_phase_chain db names =
  total_exn db (List.map (fun n -> L n) names @ List.map (fun n -> U n) names)
