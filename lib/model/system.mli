open Ddlock_graph

(** Transaction systems: a finite set of transactions over one schema. *)

type t

(** [create txns] — all transactions must share the same schema (physical
    equality of [Db.t]); raises [Invalid_argument] otherwise or on empty
    input. *)
val create : Transaction.t list -> t

(** [copies t k] is the system of [k] copies of [t]. *)
val copies : Transaction.t -> int -> t

val db : t -> Db.t
val size : t -> int
val txn : t -> int -> Transaction.t
val txns : t -> Transaction.t array

(** Entities accessed by both transactions [i] and [j] — "R" of Theorem 3. *)
val common_entities : t -> int -> int -> Bitset.t

(** Interaction graph G(A) (§5): transactions as nodes, an edge whenever
    two transactions share an entity. *)
val interaction_graph : t -> Ungraph.t

(** Entities accessed by at least one transaction. *)
val accessed_entities : t -> Bitset.t

(** Total number of nodes across all transactions. *)
val total_nodes : t -> int

val pp : Format.formatter -> t -> unit
