open Ddlock_graph

(** Distributed locked transactions (paper, §2).

    A transaction is a partial order of Lock/Unlock nodes such that

    - for each accessed entity there is exactly one Lock and one Unlock
      node, with Lock preceding Unlock;
    - nodes whose entities reside at the same site are totally ordered.

    Construction validates both conditions plus acyclicity, and caches the
    strict transitive closure of the precedence relation so that
    [precedes] is O(1) — the "transitively closed form" assumed by the
    paper's O(n²) bounds.

    A {e prefix} of a transaction is a downward-closed set of its nodes,
    represented as a {!Ddlock_graph.Bitset.t} over node ids. *)

type error =
  | Cyclic of int list  (** precedence arcs contain this cycle *)
  | Duplicate_op of Db.entity * Node.op
  | Missing_lock of Db.entity
  | Missing_unlock of Db.entity
  | Unlock_before_lock of Db.entity
  | Site_unordered of int * int
      (** two same-site nodes that the partial order leaves incomparable *)

val pp_error : Db.t -> Format.formatter -> error -> unit
val error_to_string : Db.t -> error -> string

type t

(** [make db nodes arcs] validates and builds a transaction whose node
    ids are the indices of [nodes] and whose precedence is the transitive
    closure of [arcs]. *)
val make : Db.t -> Node.t array -> (int * int) list -> (t, error list) result

(** [make_exn] raises [Invalid_argument] with a rendered error list. *)
val make_exn : Db.t -> Node.t array -> (int * int) list -> t

val db : t -> Db.t
val node_count : t -> int

(** The node labelling.  Do not mutate. *)
val nodes : t -> Node.t array

val node : t -> int -> Node.t

(** The precedence arcs as given (before closure). *)
val given_arcs : t -> Digraph.t

(** Hasse diagram (transitive reduction) of the partial order. *)
val hasse : t -> Digraph.t

(** Strict precedence: [precedes t u v] iff node [u] < node [v]. O(1). *)
val precedes : t -> int -> int -> bool

(** [lock_node t x] is the id of node [Lx], if [x] is accessed. *)
val lock_node : t -> Db.entity -> int option

val unlock_node : t -> Db.entity -> int option
val lock_node_exn : t -> Db.entity -> int
val unlock_node_exn : t -> Db.entity -> int
val accesses : t -> Db.entity -> bool

(** Accessed entities R(T) as a bitset over entity ids. *)
val entity_set : t -> Bitset.t

(** Accessed entities, ascending. *)
val entities : t -> Db.entity list

(** {1 The paper's R/L sets (§5)} *)

(** [r_set t s] — entities [z] whose Lock strictly precedes node [s]. *)
val r_set : t -> int -> Bitset.t

(** [l_set t s] — entities [z ≠ entity(s)] with [s ≺ Uz] and not
    [s ≺ Lz]: held-but-not-yet-unlocked right before [s] in an extension
    scheduling after [s] only its successors. *)
val l_set : t -> int -> Bitset.t

(** {1 Prefixes} *)

(** The empty prefix. *)
val empty_prefix : t -> Bitset.t

(** The complete prefix (all nodes). *)
val full_prefix : t -> Bitset.t

(** [is_prefix t s] iff [s] is downward-closed under the precedence. *)
val is_prefix : t -> Bitset.t -> bool

(** [down_closure t ns] is the least prefix containing the nodes [ns]. *)
val down_closure : t -> int list -> Bitset.t

(** Nodes not in the prefix all of whose predecessors are in the prefix —
    the candidates for execution next. *)
val minimal_remaining : t -> Bitset.t -> int list

(** All prefixes (downward-closed sets).  Exponential; small inputs only. *)
val prefixes : t -> Bitset.t Seq.t

(** Entities locked in the prefix — R(T′) of §5 ([Ly] in the prefix). *)
val locked_in_prefix : t -> Bitset.t -> Bitset.t

(** Entities locked but not unlocked in the prefix ("held"). *)
val held_in_prefix : t -> Bitset.t -> Bitset.t

(** Y(T′) of §5: accessed entities whose Unlock is not in the prefix
    (equivalently, entities mentioned by the remaining steps). *)
val y_set : t -> Bitset.t -> Bitset.t

(** [max_prefix_avoiding t ys] is the unique maximal prefix T* that locks
    no entity of [ys]: drop each [Ly], y ∈ ys, and its successors (§5). *)
val max_prefix_avoiding : t -> Bitset.t -> Bitset.t

(** {1 Linear extensions} *)

(** All total orders compatible with the partial order ("t ∈ T"). *)
val linear_extensions : t -> int list Seq.t

val count_linear_extensions : t -> int
val random_linear_extension : Random.State.t -> t -> int list

(** [of_total_order db steps] builds a centralized-style transaction from
    an explicit sequence of nodes (arcs chain consecutive steps). *)
val of_total_order : Db.t -> Node.t list -> (t, error list) result

(** [restrict_to_prefix t p] is the sub-partial-order induced by prefix
    [p] as a digraph over the original node ids (arcs of the Hasse
    diagram between prefix nodes). *)
val restrict_to_prefix : t -> Bitset.t -> Digraph.t

(** Two-phase-locked check: no Lock follows an Unlock (no [Ux ≺ Ly]). *)
val is_two_phase : t -> bool

(** [drop_entity t x] — remove the Lock/Unlock nodes of [x], keeping the
    partial order induced on the remaining nodes.  No-op if [x] is not
    accessed. *)
val drop_entity : t -> Db.entity -> t

(** Human-readable rendering (Hasse arcs, grouped). *)
val pp : Format.formatter -> t -> unit

(** Equality of labelled partial orders: same (entity, op) node labels
    and the same precedence between them, regardless of node numbering. *)
val equal : t -> t -> bool
