type entity = int
type site = int

type t = {
  entity_names : string array;
  sites : int array; (* entity id -> site id *)
  site_names : string array;
  by_name : (string, int) Hashtbl.t;
}

let create site_specs =
  let site_names = Array.of_list (List.map fst site_specs) in
  let seen_sites = Hashtbl.create 7 in
  Array.iter
    (fun s ->
      if Hashtbl.mem seen_sites s then
        invalid_arg (Printf.sprintf "Db.create: duplicate site %S" s);
      Hashtbl.add seen_sites s ())
    site_names;
  let entity_names = ref [] and sites = ref [] in
  List.iteri
    (fun si (_, ents) ->
      List.iter
        (fun e ->
          entity_names := e :: !entity_names;
          sites := si :: !sites)
        ents)
    site_specs;
  let entity_names = Array.of_list (List.rev !entity_names) in
  let sites = Array.of_list (List.rev !sites) in
  let by_name = Hashtbl.create (Array.length entity_names) in
  Array.iteri
    (fun i e ->
      if Hashtbl.mem by_name e then
        invalid_arg (Printf.sprintf "Db.create: duplicate entity %S" e);
      Hashtbl.add by_name e i)
    entity_names;
  { entity_names; sites; site_names; by_name }

let single_site entities = create [ ("main", entities) ]

let one_site_per_entity entities =
  create (List.map (fun e -> ("site_" ^ e, [ e ])) entities)

let entity_count t = Array.length t.entity_names
let site_count t = Array.length t.site_names
let site_of t e = t.sites.(e)
let entity_name t e = t.entity_names.(e)
let site_name t s = t.site_names.(s)

let entities_of_site t s =
  List.filter
    (fun e -> t.sites.(e) = s)
    (List.init (entity_count t) Fun.id)

let find_entity t name = Hashtbl.find_opt t.by_name name

let find_entity_exn t name =
  match find_entity t name with Some e -> e | None -> raise Not_found

let same_site t x y = t.sites.(x) = t.sites.(y)

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun si sname ->
      Format.fprintf ppf "site %s {%a }@," sname
        (fun ppf ents ->
          List.iter (fun e -> Format.fprintf ppf " %s" t.entity_names.(e)) ents)
        (entities_of_site t si))
    t.site_names;
  Format.fprintf ppf "@]"
