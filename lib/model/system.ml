open Ddlock_graph

type t = { db : Db.t; txns : Transaction.t array }

let create = function
  | [] -> invalid_arg "System.create: empty system"
  | t0 :: _ as l ->
      let db = Transaction.db t0 in
      List.iter
        (fun t ->
          if Transaction.db t != db then
            invalid_arg "System.create: transactions over different schemas")
        l;
      { db; txns = Array.of_list l }

let copies t k =
  if k < 1 then invalid_arg "System.copies: k < 1";
  { db = Transaction.db t; txns = Array.make k t }

let db t = t.db
let size t = Array.length t.txns
let txn t i = t.txns.(i)
let txns t = t.txns

let common_entities t i j =
  Bitset.inter
    (Transaction.entity_set t.txns.(i))
    (Transaction.entity_set t.txns.(j))

let interaction_graph t =
  let n = size t in
  let es = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if not (Bitset.is_empty (common_entities t i j)) then
        es := (i, j) :: !es
    done
  done;
  Ungraph.create n !es

let accessed_entities t =
  let r = Bitset.create (Db.entity_count t.db) in
  Array.iter
    (fun tx -> Bitset.union_into ~into:r (Transaction.entity_set tx))
    t.txns;
  r

let total_nodes t =
  Array.fold_left (fun acc tx -> acc + Transaction.node_count tx) 0 t.txns

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i tx -> Format.fprintf ppf "T%d = %a@," (i + 1) Transaction.pp tx)
    t.txns;
  Format.fprintf ppf "@]"
