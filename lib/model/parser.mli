(** Textual format for distributed transaction systems.

    {v
    # comment until end of line
    site s1 { x y }
    site s2 { z }

    txn T1 {
      L x < U x;
      L x < L y < U y;
    }
    txn T2 { ... }
    v}

    Sites must be declared before transactions.  Within a [txn] block each
    statement is a chain of steps [L e] / [U e] joined by [<], contributing
    precedence arcs between consecutive steps; the implicit arc
    [L e < U e] is added for every mentioned entity, and both nodes are
    created even when only one is written. *)

type result = { db : Db.t; named : (string * Transaction.t) list }

type error = { line : int; message : string }

val pp_error : Format.formatter -> error -> unit

(** Parse a full source text. *)
val parse : string -> (result, error) Stdlib.result

val parse_exn : string -> result

(** [system_of_result r] builds the system in declaration order. *)
val system_of_result : result -> System.t

(** Render a schema + named transactions back to parseable source
    (Hasse-diagram chains). *)
val to_source : Db.t -> (string * Transaction.t) list -> string
