open Ddlock_graph

type result = { db : Db.t; named : (string * Transaction.t) list }
type error = { line : int; message : string }

let pp_error ppf e =
  Format.fprintf ppf "line %d: %s" e.line e.message

type token = Ident of string | Lbrace | Rbrace | Less | Semi | Kw_site | Kw_txn

exception Parse_error of error

let fail line fmt =
  Format.kasprintf (fun message -> raise (Parse_error { line; message })) fmt

(* Tokenizer: identifiers are runs of [A-Za-z0-9_.'-]; punctuation is
   { } < ; and # starts a comment. *)
let tokenize src =
  let toks = ref [] in
  let line = ref 1 in
  let n = String.length src in
  let is_ident c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = '.' || c = '\'' || c = '-'
  in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '#' then begin
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '{' then begin
      toks := (Lbrace, !line) :: !toks;
      incr i
    end
    else if c = '}' then begin
      toks := (Rbrace, !line) :: !toks;
      incr i
    end
    else if c = '<' then begin
      toks := (Less, !line) :: !toks;
      incr i
    end
    else if c = ';' then begin
      toks := (Semi, !line) :: !toks;
      incr i
    end
    else if is_ident c then begin
      let start = !i in
      while !i < n && is_ident src.[!i] do
        incr i
      done;
      let s = String.sub src start (!i - start) in
      let tok =
        match s with
        | "site" -> Kw_site
        | "txn" -> Kw_txn
        | _ -> Ident s
      in
      toks := (tok, !line) :: !toks
    end
    else fail !line "unexpected character %C" c
  done;
  List.rev !toks

type chain_step = Builder.step

let parse src =
  try
    let toks = ref (tokenize src) in
    let peek () = match !toks with [] -> None | t :: _ -> Some t in
    let cur_line () = match !toks with [] -> 0 | (_, l) :: _ -> l in
    let next () =
      match !toks with
      | [] -> fail 0 "unexpected end of input"
      | t :: rest ->
          toks := rest;
          t
    in
    let expect what p =
      let tok, line = next () in
      if not (p tok) then fail line "expected %s" what
    in
    let ident what =
      match next () with
      | Ident s, _ -> s
      | _, line -> fail line "expected %s" what
    in
    (* Phase 1: sites. *)
    let sites = ref [] in
    let rec parse_sites () =
      match peek () with
      | Some (Kw_site, _) ->
          ignore (next ());
          let name = ident "site name" in
          expect "'{'" (fun t -> t = Lbrace);
          let ents = ref [] in
          let rec ents_loop () =
            match next () with
            | Rbrace, _ -> ()
            | Ident e, _ ->
                ents := e :: !ents;
                ents_loop ()
            | _, line -> fail line "expected entity name or '}'"
          in
          ents_loop ();
          sites := (name, List.rev !ents) :: !sites;
          parse_sites ()
      | _ -> ()
    in
    parse_sites ();
    if !sites = [] then fail (cur_line ()) "no site declarations";
    let db =
      try Db.create (List.rev !sites)
      with Invalid_argument m -> fail 0 "%s" m
    in
    (* Phase 2: transactions. *)
    let named = ref [] in
    let parse_step () =
      let s = ident "step (L or U)" in
      let line = cur_line () in
      let e = ident "entity name" in
      if Db.find_entity db e = None then fail line "unknown entity %S" e;
      match s with
      | "L" -> (Builder.L e : chain_step)
      | "U" -> Builder.U e
      | _ -> fail line "expected L or U, got %S" s
    in
    let rec parse_txns () =
      match peek () with
      | None -> ()
      | Some (Kw_txn, _) ->
          ignore (next ());
          let name = ident "transaction name" in
          expect "'{'" (fun t -> t = Lbrace);
          let chains = ref [] in
          let rec stmts () =
            match peek () with
            | Some (Rbrace, _) -> ignore (next ())
            | Some _ ->
                let chain = ref [ parse_step () ] in
                let rec links () =
                  match peek () with
                  | Some (Less, _) ->
                      ignore (next ());
                      chain := parse_step () :: !chain;
                      links ()
                  | _ -> expect "';'" (fun t -> t = Semi)
                in
                links ();
                chains := List.rev !chain :: !chains;
                stmts ()
            | None -> fail 0 "unexpected end of input in txn block"
          in
          stmts ();
          (match Builder.transaction db ~chains:(List.rev !chains) () with
          | Ok t -> named := (name, t) :: !named
          | Error es ->
              fail 0 "invalid transaction %s: %s" name
                (String.concat "; "
                   (List.map (Transaction.error_to_string db) es)));
          parse_txns ()
      | Some (_, line) -> fail line "expected 'txn'"
    in
    parse_txns ();
    if !named = [] then fail 0 "no transactions declared";
    Ok { db; named = List.rev !named }
  with Parse_error e -> Error e

let parse_exn src =
  match parse src with
  | Ok r -> r
  | Error e -> invalid_arg (Format.asprintf "Parser.parse_exn: %a" pp_error e)

let system_of_result r = System.create (List.map snd r.named)

let to_source db named =
  let buf = Buffer.create 256 in
  for s = 0 to Db.site_count db - 1 do
    Buffer.add_string buf ("site " ^ Db.site_name db s ^ " {");
    List.iter
      (fun e -> Buffer.add_string buf (" " ^ Db.entity_name db e))
      (Db.entities_of_site db s);
    Buffer.add_string buf " }\n"
  done;
  List.iter
    (fun (name, t) ->
      Buffer.add_string buf ("txn " ^ name ^ " {\n");
      let step_str u =
        let nd = Transaction.node t u in
        (match nd.Node.op with Node.Lock -> "L " | Node.Unlock -> "U ")
        ^ Db.entity_name db nd.Node.entity
      in
      List.iter
        (fun (u, v) ->
          Buffer.add_string buf
            ("  " ^ step_str u ^ " < " ^ step_str v ^ ";\n"))
        (Digraph.edges (Transaction.hasse t));
      (* Isolated entities (both nodes unconnected to anything else) still
         need a mention; the L < U arc is always in the Hasse diagram, so
         nothing extra is required. *)
      Buffer.add_string buf "}\n")
    named;
  Buffer.contents buf
