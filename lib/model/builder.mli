(** Convenience DSL for constructing transactions in code and tests.

    Steps are written [L "x"] / [U "x"] with entity names resolved against
    the schema.  For every entity mentioned at all, both its Lock and its
    Unlock node are created and the implicit arc [Lx < Ux] is added, so a
    chain like [[L "x"; L "y"; U "x"]] is enough to describe a
    transaction touching x and y. *)

type step = L of string | U of string

(** [transaction db ~chains ~arcs ()] — [chains] contribute arcs between
    consecutive steps; [arcs] are extra individual arcs.  Validation as in
    {!Transaction.make}.  Raises [Not_found] for unknown entity names. *)
val transaction :
  Db.t ->
  ?chains:step list list ->
  ?arcs:(step * step) list ->
  unit ->
  (Transaction.t, Transaction.error list) result

(** Like {!transaction} but raising on validation errors. *)
val transaction_exn :
  Db.t ->
  ?chains:step list list ->
  ?arcs:(step * step) list ->
  unit ->
  Transaction.t

(** [total db steps] builds a centralized-style total order from explicit
    steps (no implicit nodes or arcs added beyond the chain). *)
val total : Db.t -> step list -> (Transaction.t, Transaction.error list) result

val total_exn : Db.t -> step list -> Transaction.t

(** [two_phase_chain db names] is the 2PL total order
    [Lx1 < ... < Lxk < Ux1 < ... < Uxk]. *)
val two_phase_chain : Db.t -> string list -> Transaction.t
