(** Lock/Unlock operations.

    Following §2 of the paper, action steps are omitted: safety and
    deadlock-freedom depend only on the Lock/Unlock steps and their
    precedence. *)

type op = Lock | Unlock

type t = { entity : Db.entity; op : op }

val lock : Db.entity -> t
val unlock : Db.entity -> t
val equal : t -> t -> bool
val compare : t -> t -> int

(** ["Lx"] or ["Ux"] given the schema for the entity name. *)
val to_string : Db.t -> t -> string

val pp : Db.t -> Format.formatter -> t -> unit
