open Ddlock_graph

type error =
  | Cyclic of int list
  | Duplicate_op of Db.entity * Node.op
  | Missing_lock of Db.entity
  | Missing_unlock of Db.entity
  | Unlock_before_lock of Db.entity
  | Site_unordered of int * int

let pp_error db ppf = function
  | Cyclic c ->
      Format.fprintf ppf "precedence arcs contain a cycle through nodes %a"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           Format.pp_print_int)
        c
  | Duplicate_op (e, op) ->
      Format.fprintf ppf "entity %s has more than one %s node"
        (Db.entity_name db e)
        (match op with Node.Lock -> "Lock" | Node.Unlock -> "Unlock")
  | Missing_lock e ->
      Format.fprintf ppf "entity %s is unlocked but never locked"
        (Db.entity_name db e)
  | Missing_unlock e ->
      Format.fprintf ppf "entity %s is locked but never unlocked"
        (Db.entity_name db e)
  | Unlock_before_lock e ->
      Format.fprintf ppf "entity %s: L%s does not precede U%s"
        (Db.entity_name db e) (Db.entity_name db e) (Db.entity_name db e)
  | Site_unordered (u, v) ->
      Format.fprintf ppf
        "nodes %d and %d act on entities of the same site but are incomparable"
        u v

let error_to_string db e = Format.asprintf "%a" (pp_error db) e

type t = {
  db : Db.t;
  node_labels : Node.t array;
  arcs : Digraph.t;
  closure : Closure.t;
  hasse : Digraph.t;
  lock_of : int array; (* entity -> node id or -1 *)
  unlock_of : int array;
  entity_set : Bitset.t;
}

let db t = t.db
let node_count t = Array.length t.node_labels
let nodes t = t.node_labels
let node t i = t.node_labels.(i)
let given_arcs t = t.arcs
let hasse t = t.hasse
let precedes t u v = Bitset.mem t.closure.(u) v

let make db node_labels arc_list =
  let n = Array.length node_labels in
  let ne = Db.entity_count db in
  let errors = ref [] in
  let arcs = Digraph.create n arc_list in
  (match Topo.find_cycle arcs with
  | Some c -> errors := [ Cyclic c ]
  | None -> ());
  if !errors <> [] then Error !errors
  else begin
    let closure = Closure.closure arcs in
    let lock_of = Array.make ne (-1) and unlock_of = Array.make ne (-1) in
    Array.iteri
      (fun i (nd : Node.t) ->
        let tbl = match nd.op with Node.Lock -> lock_of | Node.Unlock -> unlock_of in
        if tbl.(nd.entity) >= 0 then
          errors := Duplicate_op (nd.entity, nd.op) :: !errors
        else tbl.(nd.entity) <- i)
      node_labels;
    let entity_set = Bitset.create ne in
    for e = 0 to ne - 1 do
      match (lock_of.(e) >= 0, unlock_of.(e) >= 0) with
      | false, false -> ()
      | true, false -> errors := Missing_unlock e :: !errors
      | false, true -> errors := Missing_lock e :: !errors
      | true, true ->
          Bitset.set entity_set e;
          if not (Bitset.mem closure.(lock_of.(e)) unlock_of.(e)) then
            errors := Unlock_before_lock e :: !errors
    done;
    (* Same-site nodes must be totally ordered. *)
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        if
          Db.same_site db node_labels.(u).Node.entity
            node_labels.(v).Node.entity
          && (not (Bitset.mem closure.(u) v))
          && not (Bitset.mem closure.(v) u)
        then errors := Site_unordered (u, v) :: !errors
      done
    done;
    match !errors with
    | [] ->
        Ok
          {
            db;
            node_labels;
            arcs;
            closure;
            hasse = Closure.reduction arcs;
            lock_of;
            unlock_of;
            entity_set;
          }
    | es -> Error (List.rev es)
  end

let make_exn db node_labels arc_list =
  match make db node_labels arc_list with
  | Ok t -> t
  | Error es ->
      invalid_arg
        ("Transaction.make_exn: "
        ^ String.concat "; " (List.map (error_to_string db) es))

let lock_node t e = if t.lock_of.(e) >= 0 then Some t.lock_of.(e) else None
let unlock_node t e = if t.unlock_of.(e) >= 0 then Some t.unlock_of.(e) else None

let lock_node_exn t e =
  if t.lock_of.(e) >= 0 then t.lock_of.(e) else raise Not_found

let unlock_node_exn t e =
  if t.unlock_of.(e) >= 0 then t.unlock_of.(e) else raise Not_found

let accesses t e = Bitset.mem t.entity_set e
let entity_set t = t.entity_set
let entities t = Bitset.to_list t.entity_set

let r_set t s =
  let r = Bitset.create (Db.entity_count t.db) in
  Bitset.iter
    (fun e -> if Bitset.mem t.closure.(t.lock_of.(e)) s then Bitset.set r e)
    t.entity_set;
  r

let l_set t s =
  let r = Bitset.create (Db.entity_count t.db) in
  let se = t.node_labels.(s).Node.entity in
  Bitset.iter
    (fun e ->
      if
        e <> se
        && Bitset.mem t.closure.(s) t.unlock_of.(e)
        && not (Bitset.mem t.closure.(s) t.lock_of.(e))
      then Bitset.set r e)
    t.entity_set;
  r

let empty_prefix t = Bitset.create (node_count t)

let full_prefix t =
  let p = Bitset.create (node_count t) in
  for i = 0 to node_count t - 1 do
    Bitset.set p i
  done;
  p

let is_prefix t p =
  (* Downward closed: every predecessor (in the given arcs) of a member is
     a member. *)
  Bitset.for_all
    (fun u -> Array.for_all (Bitset.mem p) (Digraph.pred t.arcs u))
    p

let down_closure t ns =
  let p = Bitset.create (node_count t) in
  let rec add u =
    if not (Bitset.mem p u) then begin
      Bitset.set p u;
      Array.iter add (Digraph.pred t.arcs u)
    end
  in
  List.iter add ns;
  p

let minimal_remaining t p =
  List.filter
    (fun u ->
      (not (Bitset.mem p u))
      && Array.for_all (Bitset.mem p) (Digraph.pred t.arcs u))
    (List.init (node_count t) Fun.id)

let prefixes t =
  (* Enumerate order ideals by deciding nodes in topological order: a node
     may join the ideal only if all its predecessors did. *)
  let order =
    match Topo.sort t.arcs with Some o -> o | None -> assert false
  in
  let n = node_count t in
  let rec go acc = function
    | [] -> Seq.return (Bitset.copy acc)
    | u :: rest ->
        fun () ->
          let without = go acc rest in
          let with_ =
            if Array.for_all (Bitset.mem acc) (Digraph.pred t.arcs u) then begin
              let acc' = Bitset.copy acc in
              Bitset.set acc' u;
              go acc' rest
            end
            else Seq.empty
          in
          Seq.append without with_ ()
  in
  go (Bitset.create n) order

let locked_in_prefix t p =
  let r = Bitset.create (Db.entity_count t.db) in
  Bitset.iter
    (fun e -> if Bitset.mem p t.lock_of.(e) then Bitset.set r e)
    t.entity_set;
  r

let held_in_prefix t p =
  let r = Bitset.create (Db.entity_count t.db) in
  Bitset.iter
    (fun e ->
      if Bitset.mem p t.lock_of.(e) && not (Bitset.mem p t.unlock_of.(e)) then
        Bitset.set r e)
    t.entity_set;
  r

let y_set t p =
  let r = Bitset.create (Db.entity_count t.db) in
  Bitset.iter
    (fun e -> if not (Bitset.mem p t.unlock_of.(e)) then Bitset.set r e)
    t.entity_set;
  r

let max_prefix_avoiding t ys =
  let drop = Bitset.create (node_count t) in
  Bitset.iter
    (fun y ->
      if accesses t y then begin
        let l = t.lock_of.(y) in
        Bitset.set drop l;
        Bitset.union_into ~into:drop t.closure.(l)
      end)
    ys;
  let p = full_prefix t in
  Bitset.diff_into ~into:p drop;
  p

let linear_extensions t = Topo.linear_extensions t.arcs
let count_linear_extensions t = Topo.count_linear_extensions t.arcs
let random_linear_extension rng t = Topo.random_linear_extension rng t.arcs

let of_total_order db steps =
  let node_labels = Array.of_list steps in
  let arcs =
    List.init
      (max 0 (Array.length node_labels - 1))
      (fun i -> (i, i + 1))
  in
  make db node_labels arcs

let restrict_to_prefix t p =
  Digraph.create (node_count t)
    (List.filter
       (fun (u, v) -> Bitset.mem p u && Bitset.mem p v)
       (Digraph.edges t.hasse))

let is_two_phase t =
  not
    (Bitset.exists
       (fun x ->
         Bitset.exists
           (fun y -> precedes t t.unlock_of.(x) t.lock_of.(y))
           t.entity_set)
       t.entity_set)

let drop_entity t x =
  if not (accesses t x) then t
  else begin
    let keep v = t.node_labels.(v).Node.entity <> x in
    let closure_arcs = Digraph.edges (Closure.closure_graph t.arcs) in
    let renum = Array.make (node_count t) (-1) in
    let k = ref 0 in
    Array.iteri
      (fun v _ ->
        if keep v then begin
          renum.(v) <- !k;
          incr k
        end)
      t.node_labels;
    let labels =
      Array.of_list
        (List.filteri (fun v _ -> keep v) (Array.to_list t.node_labels))
    in
    let arcs =
      List.filter_map
        (fun (u, v) ->
          if keep u && keep v then Some (renum.(u), renum.(v)) else None)
        closure_arcs
    in
    make_exn t.db labels arcs
  end

let pp ppf t =
  Format.fprintf ppf "@[<v>txn (%d nodes)" (node_count t);
  List.iter
    (fun (u, v) ->
      Format.fprintf ppf "@,%s < %s"
        (Node.to_string t.db t.node_labels.(u))
        (Node.to_string t.db t.node_labels.(v)))
    (Digraph.edges t.hasse);
  Format.fprintf ppf "@]"

let equal a b =
  (* Nodes are identified by their (entity, op) label — unique within a
     well-formed transaction — so equality is label-set plus closure
     arcs under that naming, independent of node numbering. *)
  let labels t = List.sort compare (Array.to_list t.node_labels) in
  let arcs t =
    List.sort compare
      (List.map
         (fun (u, v) -> (t.node_labels.(u), t.node_labels.(v)))
         (Digraph.edges (Closure.closure_graph t.arcs)))
  in
  labels a = labels b && arcs a = arcs b
