(** Distributed database schemas.

    A schema is a finite set of named entities partitioned into named
    sites (paper, §2).  Entities and sites are referred to by dense
    integer ids elsewhere in the library. *)

type entity = int
type site = int
type t

(** [create sites] builds a schema from [(site_name, entity_names)]
    pairs.  Raises [Invalid_argument] on duplicate site or entity
    names. *)
val create : (string * string list) list -> t

(** [single_site entities] is a one-site ("centralized") schema. *)
val single_site : string list -> t

(** [one_site_per_entity entities] places every entity on its own site —
    the fully distributed schema used by the §4 coNP-hardness
    construction. *)
val one_site_per_entity : string list -> t

val entity_count : t -> int
val site_count : t -> int
val site_of : t -> entity -> site
val entity_name : t -> entity -> string
val site_name : t -> site -> string

(** Entities of a site, ascending. *)
val entities_of_site : t -> site -> entity list

(** [find_entity t name] is the id of the entity called [name]. *)
val find_entity : t -> string -> entity option

(** [find_entity_exn t name] raises [Not_found] when absent. *)
val find_entity_exn : t -> string -> entity

(** [same_site t x y] iff entities [x] and [y] reside at the same site. *)
val same_site : t -> entity -> entity -> bool

val pp : Format.formatter -> t -> unit
