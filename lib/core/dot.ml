open Ddlock_graph
open Ddlock_model
open Ddlock_schedule

let buf_printf = Printf.bprintf

let escape s =
  String.concat ""
    (List.map
       (fun c ->
         match c with
         | '"' -> "\\\""
         | '\\' -> "\\\\"
         | c -> String.make 1 c)
       (List.init (String.length s) (String.get s)))

let node_label db (nd : Node.t) = escape (Node.to_string db nd)

(* Emit one transaction's nodes (optionally prefixed to keep ids unique
   across a system) and its Hasse arcs. *)
let emit_txn b db ?(id_prefix = "") ?(indent = "  ") tx =
  let id v = Printf.sprintf "%s%d" id_prefix v in
  (* Group nodes by site. *)
  for s = 0 to Db.site_count db - 1 do
    let nodes =
      List.filter
        (fun v -> Db.site_of db (Transaction.node tx v).Node.entity = s)
        (List.init (Transaction.node_count tx) Fun.id)
    in
    if nodes <> [] then begin
      buf_printf b "%ssubgraph \"cluster_%s%s\" {\n" indent id_prefix
        (escape (Db.site_name db s));
      buf_printf b "%s  label=\"%s\"; style=dotted;\n" indent
        (escape (Db.site_name db s));
      List.iter
        (fun v ->
          buf_printf b "%s  %s [label=\"%s\"];\n" indent (id v)
            (node_label db (Transaction.node tx v)))
        nodes;
      buf_printf b "%s}\n" indent
    end
  done;
  List.iter
    (fun (u, v) -> buf_printf b "%s%s -> %s;\n" indent (id u) (id v))
    (Digraph.edges (Transaction.hasse tx))

let transaction ?(name = "T") tx =
  let b = Buffer.create 256 in
  let db = Transaction.db tx in
  buf_printf b "digraph \"%s\" {\n  rankdir=TB;\n  node [shape=box];\n"
    (escape name);
  emit_txn b db tx;
  Buffer.add_string b "}\n";
  Buffer.contents b

let system sys =
  let b = Buffer.create 1024 in
  let db = System.db sys in
  Buffer.add_string b "digraph system {\n  rankdir=TB;\n  node [shape=box];\n";
  Array.iteri
    (fun i tx ->
      buf_printf b "  subgraph \"cluster_T%d\" {\n    label=\"T%d\";\n" (i + 1)
        (i + 1);
      emit_txn b db ~id_prefix:(Printf.sprintf "t%d_" i) ~indent:"    " tx;
      Buffer.add_string b "  }\n")
    (System.txns sys);
  Buffer.add_string b "}\n";
  Buffer.contents b

let interaction sys =
  let b = Buffer.create 256 in
  let db = System.db sys in
  Buffer.add_string b "graph interaction {\n  node [shape=circle];\n";
  for i = 0 to System.size sys - 1 do
    buf_printf b "  %d [label=\"T%d\"];\n" i (i + 1)
  done;
  List.iter
    (fun (i, j) ->
      let shared =
        String.concat ","
          (List.map (Db.entity_name db)
             (Bitset.to_list (System.common_entities sys i j)))
      in
      buf_printf b "  %d -- %d [label=\"%s\"];\n" i j (escape shared))
    (Ungraph.edges (System.interaction_graph sys));
  Buffer.add_string b "}\n";
  Buffer.contents b

let reduction sys prefix =
  let r = Ddlock_deadlock.Reduction.make sys prefix in
  let g = Ddlock_deadlock.Reduction.graph r in
  let db = System.db sys in
  let b = Buffer.create 512 in
  Buffer.add_string b "digraph reduction {\n  node [shape=box];\n";
  (* Only nodes participating in arcs (remaining nodes). *)
  let mentioned = Hashtbl.create 32 in
  List.iter
    (fun (u, v) ->
      Hashtbl.replace mentioned u ();
      Hashtbl.replace mentioned v ())
    (Digraph.edges g);
  Hashtbl.iter
    (fun u () ->
      let step = Ddlock_deadlock.Reduction.step_of_id r u in
      buf_printf b "  %d [label=\"%s\"];\n" u (escape (Step.to_string sys step)))
    mentioned;
  List.iter
    (fun (u, v) ->
      let su = Ddlock_deadlock.Reduction.step_of_id r u in
      let sv = Ddlock_deadlock.Reduction.step_of_id r v in
      let lock_arc =
        su.Step.txn <> sv.Step.txn
        && (Transaction.node (System.txn sys su.Step.txn) su.Step.node)
             .Node.entity
           = (Transaction.node (System.txn sys sv.Step.txn) sv.Step.node)
               .Node.entity
      in
      if lock_arc then
        buf_printf b "  %d -> %d [style=dashed, label=\"%s\"];\n" u v
          (escape
             (Db.entity_name db
                (Transaction.node (System.txn sys su.Step.txn) su.Step.node)
                  .Node.entity))
      else buf_printf b "  %d -> %d;\n" u v)
    (Digraph.edges g);
  Buffer.add_string b "}\n";
  Buffer.contents b

let dgraph sys steps =
  let b = Buffer.create 256 in
  let db = System.db sys in
  Buffer.add_string b "digraph D {\n  node [shape=circle];\n";
  for i = 0 to System.size sys - 1 do
    buf_printf b "  %d [label=\"T%d\"];\n" i (i + 1)
  done;
  List.iter
    (fun (a : Dgraph.labelled_arc) ->
      buf_printf b "  %d -> %d [label=\"%s\"];\n" a.Dgraph.src a.Dgraph.dst
        (escape (Db.entity_name db a.Dgraph.entity)))
    (Dgraph.arcs sys steps);
  Buffer.add_string b "}\n";
  Buffer.contents b
