open Ddlock_graph
open Ddlock_model
open Ddlock_schedule

type safety_verdict =
  | Safe_and_deadlock_free
  | Pair_violation of { i : int; j : int; failure : Ddlock_safety.Pair.failure }
  | Cycle_violation of Ddlock_safety.Many.cycle_witness

let pp_safety_verdict sys ppf = function
  | Safe_and_deadlock_free -> Format.fprintf ppf "safe and deadlock-free"
  | Pair_violation { i; j; failure } ->
      Format.fprintf ppf "pair (T%d, T%d) violates Theorem 3: %a" (i + 1)
        (j + 1)
        (Ddlock_safety.Pair.pp_failure (System.db sys))
        failure
  | Cycle_violation w ->
      Format.fprintf ppf "%a"
        (Ddlock_safety.Many.pp_verdict sys)
        (Ddlock_safety.Many.Cycle_fails w)

let safe_and_deadlock_free sys =
  Ddlock_obs.Trace.span "analysis.safety" @@ fun () ->
  match Ddlock_safety.Many.check sys with
  | Ddlock_safety.Many.Safe_and_deadlock_free -> Safe_and_deadlock_free
  | Ddlock_safety.Many.Pair_fails { i; j; failure } ->
      Pair_violation { i; j; failure }
  | Ddlock_safety.Many.Cycle_fails w -> Cycle_violation w

type deadlock_verdict =
  | Deadlock_free
  | Deadlocks of { schedule : Step.t list; state : State.t }
  | Gave_up of { states_explored : int }

let pp_deadlock_verdict sys ppf = function
  | Deadlock_free -> Format.fprintf ppf "deadlock-free"
  | Deadlocks { schedule; _ } ->
      Format.fprintf ppf "@[<v>deadlocks after:@,%a@]"
        (Step.pp_schedule sys) schedule
  | Gave_up { states_explored } ->
      Format.fprintf ppf
        "unknown (search budget exhausted after %d states; the problem is coNP-hard)"
        states_explored

let deadlock_free ?(max_states = 500_000) ?(jobs = 1) ?(symmetry = false)
    ?(por = false) ?(fast = false) sys =
  Ddlock_par.Par_explore.validate_jobs jobs;
  match safe_and_deadlock_free sys with
  | Safe_and_deadlock_free -> Deadlock_free
  | _ -> (
      Ddlock_obs.Trace.span "analysis.deadlock_search"
        ~args:[ ("jobs", string_of_int jobs) ]
      @@ fun () ->
      match
        if jobs = 1 && not fast then
          Explore.find_deadlock ~max_states ~symmetry ~por sys
        else
          let mode = if fast then `Fast else `Deterministic in
          Ddlock_par.Par_explore.find_deadlock ~max_states ~symmetry ~por ~mode
            ~jobs sys
      with
      | Some (schedule, state) -> Deadlocks { schedule; state }
      | None -> Deadlock_free
      | exception Explore.Too_large n -> Gave_up { states_explored = n })

type report = {
  txn_count : int;
  entity_count : int;
  site_count : int;
  total_nodes : int;
  all_two_phase : bool;
  interaction_edges : int;
  interaction_cycles : int;
  safety : safety_verdict;
  deadlock : deadlock_verdict;
}

let report ?max_states ?jobs ?symmetry ?por ?fast sys =
  Ddlock_obs.Trace.span "analysis.report" @@ fun () ->
  let db = System.db sys in
  let g = System.interaction_graph sys in
  {
    txn_count = System.size sys;
    entity_count = Db.entity_count db;
    site_count = Db.site_count db;
    total_nodes = System.total_nodes sys;
    all_two_phase =
      Array.for_all Transaction.is_two_phase (System.txns sys);
    interaction_edges = Ungraph.edge_count g;
    interaction_cycles =
      (* Cycle enumeration can be exponential in dense graphs; polling
         per cycle lets a serve-side deadline bound the report. *)
      Seq.fold_left
        (fun acc _ ->
          Ddlock_obs.Cancel.poll ();
          acc + 1)
        0 (Ungraph.cycles g);
    safety = safe_and_deadlock_free sys;
    deadlock = deadlock_free ?max_states ?jobs ?symmetry ?por ?fast sys;
  }

type pair_counterexample = { steps : Step.t list; d_cycle : int list }

let pair_counterexample ?(max_states = 200_000) t1 t2 =
  match Ddlock_safety.Pair.check t1 t2 with
  | Ok () -> None
  | Error failure -> (
      let sys = System.create [ t1; t2 ] in
      let of_steps steps =
        match Dgraph.find_cycle sys steps with
        | Some d_cycle -> Some { steps; d_cycle }
        | None -> None
      in
      let direct =
        match failure with
        | Ddlock_safety.Pair.No_common_first { first1; first2 } -> (
            (* Both transactions lock their own first common entity: the
               D-graph then has arcs both ways. *)
            let target = State.initial sys in
            Bitset.union_into ~into:target.(0)
              (Transaction.down_closure t1
                 [ Transaction.lock_node_exn t1 first1 ]);
            Bitset.union_into ~into:target.(1)
              (Transaction.down_closure t2
                 [ Transaction.lock_node_exn t2 first2 ]);
            match Explore.has_schedule sys target with
            | Some steps -> of_steps steps
            | None -> None)
        | Ddlock_safety.Pair.Unguarded _ -> None
      in
      match direct with
      | Some _ as r -> r
      | None -> (
          (* Bounded Lemma-1 search always finds a witness when the pair
             fails, if the budget allows. *)
          match Explore.safe_and_deadlock_free ~max_states sys with
          | Error cex ->
              Some { steps = cex.Explore.steps; d_cycle = cex.Explore.cycle }
          | Ok () -> None
          | exception Explore.Too_large _ -> None))

let repair_with_global_order sys =
  let db = System.db sys in
  if
    not
      (Array.for_all Ddlock_safety.Lemma2.is_total (System.txns sys))
  then None
  else
    let rewrite t =
      let names =
        List.map (Db.entity_name db) (Transaction.entities t)
      in
      Builder.two_phase_chain db names
    in
    let sys' =
      System.create (List.map rewrite (Array.to_list (System.txns sys)))
    in
    assert (Ddlock_safety.Many.safe_and_deadlock_free sys');
    Some sys'

let pp_report sys ppf r =
  Format.fprintf ppf
    "@[<v>transactions:        %d@,entities:            %d@,\
     sites:               %d@,lock/unlock nodes:   %d@,\
     all two-phase:       %b@,interaction edges:   %d@,\
     interaction cycles:  %d@,safety ∧ DF:         %a@,\
     deadlock-freedom:    %a@]"
    r.txn_count r.entity_count r.site_count r.total_nodes r.all_two_phase
    r.interaction_edges r.interaction_cycles
    (pp_safety_verdict sys) r.safety
    (pp_deadlock_verdict sys) r.deadlock

(* The canonical rendering of a full analysis: exactly what [ddlock
   analyze] prints on stdout, byte for byte — the CLI prints this
   string verbatim, and the serve daemon caches it, so served verdicts
   stay diffable against the CLI by construction. *)
let render_full ?max_states ?jobs ?symmetry ?por ?fast sys =
  let r = report ?max_states ?jobs ?symmetry ?por ?fast sys in
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  Format.fprintf ppf "%a@." (pp_report sys) r;
  (match r.deadlock with
  | Deadlocks { schedule; _ } ->
      Format.fprintf ppf "@.how the deadlock happens:@.%a@."
        (Narrate.pp sys) schedule;
      List.iter
        (fun line -> Format.fprintf ppf "%s@." line)
        (List.filteri
           (fun i _ -> i >= List.length schedule + 1)
           (Narrate.explain_deadlock sys schedule))
  | _ -> ());
  Format.pp_print_flush ppf ();
  let status =
    match (r.safety, r.deadlock) with
    | Safe_and_deadlock_free, _ -> 0
    | _, Deadlocks _ -> 1
    | _ -> 1
  in
  (Buffer.contents buf, status, r)
