(** Umbrella module: the full public API of the library.

    - {!Analysis} — one-call verdicts (start here);
    - {!Model} — schemas, transactions, systems, parser and builder DSL;
    - {!Sched} — schedules, serialization digraphs, exhaustive exploration;
    - {!Deadlock} — reduction graphs, deadlock prefixes, Tirri baseline;
    - {!Par} — deterministic multicore state-space exploration;
    - {!Safety} — Lemma 2, Theorem 3, minimal-prefix, copies, Theorem 4;
    - {!Conp} — 3SAT′, DPLL, CNF normalization, the Theorem 2 reduction;
    - {!Semantics} — action nodes and Herbrand-term schedule semantics;
    - {!Sim} — the discrete-event multi-site runtime and recovery schemes;
    - {!Rw} — shared/exclusive lock modes and their runtime;
    - {!Obs} — telemetry: metrics registry, span tracing, trace export;
    - {!Workload} — generators and the paper's figures;
    - {!Dot} — Graphviz export;
    - {!Minimize} — deadlock-witness minimization;
    - {!Graph} — the graph substrate. *)

module Graph = Ddlock_graph
module Model = Ddlock_model
module Sched = Ddlock_schedule
module Deadlock = Ddlock_deadlock
module Par = Ddlock_par
module Safety = Ddlock_safety
module Conp = Ddlock_conp
module Sim = Ddlock_sim
module Workload = Ddlock_workload
module Rw = Ddlock_rw
module Semantics = Ddlock_semantics
module Obs = Ddlock_obs
module Analysis = Analysis
module Dot = Dot
module Minimize = Minimize
