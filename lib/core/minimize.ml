open Ddlock_model
open Ddlock_schedule

type result = {
  core : System.t;
  kept_txns : int list;
  dropped_entities : (int * Db.entity) list;
}

let obs_candidates = Ddlock_obs.Metrics.Counter.make "minimize.candidates"
let obs_shrunk = Ddlock_obs.Metrics.Counter.make "minimize.shrink_steps"

(* Conservative deadlockability: [None] means "unknown" (budget hit) and
   the candidate move is rejected.  Probes are verdict-only, so with
   [?por] they take the single reduced search (no witness
   canonicalization cost; see {!Explore.deadlock_free}). *)
let deadlocks ?max_states ?(jobs = 1) ?symmetry ?por ?(fast = false) sys =
  Ddlock_obs.Metrics.Counter.incr obs_candidates;
  match
    if jobs = 1 && not fast then
      Explore.deadlock_free ?max_states ?symmetry ?por sys
    else
      let mode = if fast then `Fast else `Deterministic in
      Ddlock_par.Par_explore.deadlock_free ?max_states ?symmetry ?por ~mode
        ~jobs sys
  with
  | false -> Some true
  | true -> Some false
  | exception Explore.Too_large _ -> None

let deadlock_core ?max_states ?(jobs = 1) ?symmetry ?por ?fast sys =
  Ddlock_par.Par_explore.validate_jobs jobs;
  Ddlock_obs.Trace.span "minimize.deadlock_core" @@ fun () ->
  match deadlocks ?max_states ~jobs ?symmetry ?por ?fast sys with
  | None | Some false -> None
  | Some true ->
      (* State: list of (original index, transaction). *)
      let current = ref (Array.to_list (Array.mapi (fun i t -> (i, t)) (System.txns sys))) in
      let dropped = ref [] in
      let mk txns = System.create (List.map snd txns) in
      let still_deadlocks txns =
        List.length txns >= 2
        && deadlocks ?max_states ~jobs ?symmetry ?por ?fast (mk txns)
           = Some true
      in
      let changed = ref true in
      while !changed do
        changed := false;
        (* Try dropping whole transactions. *)
        let rec drop_txn kept = function
          | [] -> ()
          | (i, t) :: rest ->
              let candidate = List.rev_append kept rest in
              if still_deadlocks candidate then begin
                Ddlock_obs.Metrics.Counter.incr obs_shrunk;
                current := candidate;
                changed := true
              end
              else drop_txn ((i, t) :: kept) rest
        in
        drop_txn [] !current;
        (* Try dropping single entity accesses. *)
        let rec drop_ent kept = function
          | [] -> ()
          | (i, t) :: rest ->
              let tried =
                List.find_map
                  (fun x ->
                    let t' = Transaction.drop_entity t x in
                    let candidate = List.rev_append kept ((i, t') :: rest) in
                    if still_deadlocks candidate then Some (x, candidate)
                    else None)
                  (Transaction.entities t)
              in
              (match tried with
              | Some (x, candidate) ->
                  Ddlock_obs.Metrics.Counter.incr obs_shrunk;
                  dropped := (i, x) :: !dropped;
                  current := candidate;
                  changed := true
              | None -> drop_ent ((i, t) :: kept) rest)
        in
        if not !changed then drop_ent [] !current
      done;
      Some
        {
          core = mk !current;
          kept_txns = List.map fst !current;
          dropped_entities = List.rev !dropped;
        }
