open Ddlock_model
open Ddlock_schedule

(** Graphviz (dot) renderings of the library's objects — handy for
    inspecting transactions, reduction graphs and serialization digraphs
    ([ddlock dot ... | dot -Tsvg]). *)

(** Hasse diagram of one transaction; nodes are grouped per site. *)
val transaction : ?name:string -> Transaction.t -> string

(** All transactions of a system as subgraph clusters. *)
val system : System.t -> string

(** The interaction graph G(A), with shared entities as edge labels. *)
val interaction : System.t -> string

(** The reduction graph R(A′) of a prefix: remaining precedence arcs
    (solid) and lock arcs Uⁱx → Lʲx (dashed, labelled by entity). *)
val reduction : System.t -> State.t -> string

(** The serialization digraph D(S′) of a (partial) schedule, arcs
    labelled by entities. *)
val dgraph : System.t -> Step.t list -> string
