open Ddlock_model

(** Witness minimization: shrink a deadlocking system to a small core
    that still deadlocks — the "delta debugging" companion to the
    analyzers, for pointing at the transactions and entities that
    actually matter.

    Reduction moves, applied greedily to fixpoint, re-checking
    deadlockability (bounded exhaustive search) after each:

    - drop a whole transaction;
    - remove one entity from one transaction (deleting its Lock and
      Unlock nodes, keeping the order induced on the rest). *)

type result = {
  core : System.t;
  kept_txns : int list;  (** original indices of the surviving transactions *)
  dropped_entities : (int * Db.entity) list;
      (** (original txn index, entity) accesses removed *)
}

(** [deadlock_core ?max_states ?jobs ?symmetry sys] — requires the input
    to deadlock (returns [None] otherwise or when the search budget is
    exceeded).  [jobs > 1] runs each deadlockability re-check on the
    parallel engine, and [~symmetry:true] makes every re-check store one
    state per identical-transaction orbit ({!Ddlock_schedule.Canon});
    the minimized core is identical for every [jobs] and either
    [symmetry] flag (the group is re-detected per candidate, so shrunk
    systems keep whatever symmetry they retain).  With [~por:true]
    every re-check is a verdict-only persistent/sleep-set reduced
    search ({!Ddlock_schedule.Indep}) — same core, fewer states per
    probe.  With [~fast:true] every re-check runs on the relaxed
    work-stealing engine ([~mode:`Fast] of {!Ddlock_par.Par_explore});
    verdicts are equivalent, so the minimized core is unchanged — the
    probes are just faster.  Raises [Invalid_argument] when
    [jobs < 1]. *)
val deadlock_core :
  ?max_states:int ->
  ?jobs:int ->
  ?symmetry:bool ->
  ?por:bool ->
  ?fast:bool ->
  System.t ->
  result option
