open Ddlock_model
open Ddlock_schedule

(** One-call analyses over a transaction system, choosing the paper's
    polynomial algorithms where they exist and falling back to bounded
    exhaustive search where the problem is coNP-hard. *)

(** {1 Safety ∧ deadlock-freedom (polynomial — Theorems 3 & 4)} *)

type safety_verdict =
  | Safe_and_deadlock_free
  | Pair_violation of {
      i : int;
      j : int;
      failure : Ddlock_safety.Pair.failure;
    }
  | Cycle_violation of Ddlock_safety.Many.cycle_witness

val pp_safety_verdict : System.t -> Format.formatter -> safety_verdict -> unit

(** Decide safety ∧ deadlock-freedom with Theorem 4 (which degenerates to
    Theorem 3 for two transactions and Corollary 3 for copies). *)
val safe_and_deadlock_free : System.t -> safety_verdict

(** {1 Deadlock-freedom alone (coNP-hard — bounded search)} *)

type deadlock_verdict =
  | Deadlock_free
  | Deadlocks of {
      schedule : Step.t list;  (** a partial schedule that deadlocks *)
      state : State.t;
    }
  | Gave_up of { states_explored : int }
      (** the bounded exhaustive search exceeded its budget *)

val pp_deadlock_verdict : System.t -> Format.formatter -> deadlock_verdict -> unit

(** [deadlock_free ?max_states ?jobs ?symmetry sys] — first tries the
    polynomial sufficient condition (safe ∧ DF ⇒ DF); otherwise runs the
    bounded exhaustive Theorem-1 search, on [jobs] worker domains when
    [jobs > 1] (the verdict and witness are identical for every [jobs];
    see {!Ddlock_par.Par_explore}).  With [~symmetry:true] that search
    stores one state per orbit of the identical-transaction automorphism
    group ({!Ddlock_schedule.Canon}) — same verdict, witness valid for
    the original system, and systems that exhaust the raw budget may fit
    the reduced one.  Default budget: 500_000 states.  Raises
    [Invalid_argument] when [jobs < 1].

    With [~por:true] the exhaustive search runs over the
    persistent/sleep-set reduced space ({!Ddlock_schedule.Indep});
    deadlock witnesses are canonicalized by a plain non-symmetric
    re-search (see {!Ddlock_schedule.Explore.find_deadlock}), so the
    verdict {e and} witness are identical to the plain analysis under
    every [jobs]/[symmetry] combination — only a [Gave_up] budget
    count can differ (it then reports reduced-search states).

    With [~fast:true] the exhaustive search uses the relaxed
    work-stealing engine ([~mode:`Fast] of {!Ddlock_par.Par_explore})
    instead of the deterministic one — same witness-canonicalization
    contract as [~por:true], so the verdict and witness are again
    identical to the plain analysis (only a [Gave_up] count can
    differ).  [fast] composes with [symmetry], [por] and any [jobs]
    (including 1, where it still swaps the representation-optimized
    engine in). *)
val deadlock_free :
  ?max_states:int ->
  ?jobs:int ->
  ?symmetry:bool ->
  ?por:bool ->
  ?fast:bool ->
  System.t ->
  deadlock_verdict

(** {1 Reports} *)

type report = {
  txn_count : int;
  entity_count : int;
  site_count : int;
  total_nodes : int;
  all_two_phase : bool;
  interaction_edges : int;
  interaction_cycles : int;
  safety : safety_verdict;
  deadlock : deadlock_verdict;
}

(** Full analysis: structural statistics plus both verdicts.  [jobs]
    parallelizes the exhaustive deadlock search, [symmetry] shrinks it
    to orbit representatives and [por] to a persistent/sleep-set
    reduced space (verdict unchanged any way). *)
val report :
  ?max_states:int ->
  ?jobs:int ->
  ?symmetry:bool ->
  ?por:bool ->
  ?fast:bool ->
  System.t ->
  report

val pp_report : System.t -> Format.formatter -> report -> unit

(** [render_full ?max_states ?jobs ?symmetry sys] is
    [(text, status, report)]: the exact bytes [ddlock analyze] prints
    on stdout for [sys] (report plus, for a [Deadlocks] verdict, the
    narrated schedule and explanation), together with the process exit
    status the CLI uses ([0] iff safe ∧ deadlock-free, else [1]).  The
    CLI and the serve daemon both call this, which is what makes served
    verdicts byte-equivalent to local analysis. *)
val render_full :
  ?max_states:int ->
  ?jobs:int ->
  ?symmetry:bool ->
  ?por:bool ->
  ?fast:bool ->
  System.t ->
  string * int * report

(** {1 Pair counterexamples}

    A failing Theorem 3 verdict is backed by a replayable witness: a
    partial schedule of the pair whose serialization digraph D is cyclic
    (the Lemma 1 characterization of "not safe ∧ deadlock-free"). *)

type pair_counterexample = {
  steps : Step.t list;
  d_cycle : int list;  (** a cycle of D(steps) over {0, 1} *)
}

(** [pair_counterexample ?max_states t1 t2] — [None] when the pair is
    safe ∧ deadlock-free or the bounded search gives up.  For
    [No_common_first] failures the witness is built directly (both
    first-lock prefixes); otherwise a bounded Lemma-1 search runs. *)
val pair_counterexample :
  ?max_states:int ->
  Transaction.t ->
  Transaction.t ->
  pair_counterexample option

(** {1 Repair}

    When a system of total-order transactions fails the Theorem 4 test,
    the classic fix is a global lock order: rewrite every transaction to
    lock its entities in one fixed order (ascending entity id) and
    unlock two-phase afterwards.  The rewrite preserves each
    transaction's access set; the result always passes Theorem 4 (2PL
    chains over a common order have common-first entities and guards). *)

(** [repair_with_global_order sys] — [None] if some transaction is not a
    total order; otherwise the rewritten, certified system. *)
val repair_with_global_order : System.t -> System.t option
