type t = { g : Digraph.t }

let create n es =
  List.iter
    (fun (u, v) ->
      if u = v then invalid_arg "Ungraph.create: self loop")
    es;
  let sym = List.concat_map (fun (u, v) -> [ (u, v); (v, u) ]) es in
  { g = Digraph.create n sym }

let node_count t = Digraph.node_count t.g
let edge_count t = Digraph.edge_count t.g / 2
let neighbours t u = Digraph.succ t.g u
let mem_edge t u v = Digraph.mem_edge t.g u v

let edges t =
  List.filter (fun (u, v) -> u < v) (Digraph.edges t.g)

let components t =
  let n = node_count t in
  let seen = Bitset.create n in
  let comps = ref [] in
  for u = 0 to n - 1 do
    if not (Bitset.mem seen u) then begin
      let r = Digraph.reachable t.g u in
      Bitset.union_into ~into:seen r;
      comps := Bitset.to_list r :: !comps
    end
  done;
  List.rev !comps

let directed_cycles t =
  (* Directed simple cycles of the symmetric digraph of length >= 3.
     Length-2 cycles (u, v, u) are artifacts of symmetrization. *)
  Seq.filter (fun c -> List.length c >= 3) (Cycles.simple_cycles t.g)

let cycles t =
  (* Keep the direction in which the node after the root is smaller than
     the node before the root. *)
  Seq.filter
    (fun c ->
      match c with
      | _root :: second :: _ ->
          let last = List.nth c (List.length c - 1) in
          second < last
      | _ -> true)
    (directed_cycles t)

let pp ppf t =
  Format.fprintf ppf "@[<v>graph(%d nodes, %d edges)" (node_count t)
    (edge_count t);
  List.iter (fun (u, v) -> Format.fprintf ppf "@,%d -- %d" u v) (edges t);
  Format.fprintf ppf "@]"
