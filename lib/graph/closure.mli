(** Transitive closure and reduction. *)

(** Reachability matrix as one bitset row per node.  [row.(u)] contains
    [v] iff there is a directed path from [u] to [v] of length >= 1
    ([u] itself is included only when [u] lies on a cycle). *)
type t = Bitset.t array

(** [closure g] computes the strict reachability matrix.  Works on any
    digraph: rows are computed by BFS per node, O(n·m/w) with bitset
    unions on DAGs (reverse topological order) and plain BFS otherwise. *)
val closure : Digraph.t -> t

(** [reaches c u v] iff there is a path of length >= 1 from [u] to [v]. *)
val reaches : t -> int -> int -> bool

(** [closure_graph g] is the digraph with an edge [u -> v] for every
    nonempty path [u -> ... -> v]. *)
val closure_graph : Digraph.t -> Digraph.t

(** [reduction g] is the transitive reduction (Hasse diagram) of a DAG:
    the unique minimal subgraph with the same reachability.  Raises
    [Invalid_argument] on cyclic input. *)
val reduction : Digraph.t -> Digraph.t

(** [descendants c u] is the row of [u] (do not mutate). *)
val descendants : t -> int -> Bitset.t

(** [ancestors c n u] collects all [v] with [reaches c v u], where [n] is
    the node count.  O(n). *)
val ancestors : t -> int -> int -> Bitset.t
