(** Fixed-capacity mutable bitsets.

    Used as the row representation of reachability matrices (transitive
    closures) and as compact node sets throughout the graph substrate.  All
    operations besides {!copy}, {!union}, {!inter} and {!diff} mutate in
    place.  Indices must lie in [0, capacity); out-of-range indices raise
    [Invalid_argument]. *)

type t

(** [create n] is an empty bitset with capacity [n] (all bits clear). *)
val create : int -> t

(** Capacity the set was created with. *)
val capacity : t -> int

val set : t -> int -> unit
val clear : t -> int -> unit
val mem : t -> int -> bool

(** Number of set bits. *)
val cardinal : t -> int

(** [is_empty s] iff no bit is set. *)
val is_empty : t -> bool

(** Fresh copy. *)
val copy : t -> t

(** [union_into ~into s] sets [into := into ∪ s].  Capacities must match. *)
val union_into : into:t -> t -> unit

(** [inter_into ~into s] sets [into := into ∩ s]. *)
val inter_into : into:t -> t -> unit

(** [diff_into ~into s] sets [into := into \ s]. *)
val diff_into : into:t -> t -> unit

(** Non-destructive set algebra (allocate a fresh set). *)
val union : t -> t -> t

val inter : t -> t -> t
val diff : t -> t -> t

(** [disjoint a b] iff [a ∩ b = ∅], without allocating. *)
val disjoint : t -> t -> bool

(** [subset a b] iff [a ⊆ b], without allocating. *)
val subset : t -> t -> bool

val equal : t -> t -> bool

(** Deterministic total order compatible with {!equal} (word-wise; the
    ordering itself is arbitrary but stable).  Capacities must match. *)
val compare : t -> t -> int

(** [iter f s] applies [f] to every set index in increasing order. *)
val iter : (int -> unit) -> t -> unit

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

(** Smallest set index, if any. *)
val choose : t -> int option

(** All set indices in increasing order. *)
val to_list : t -> int list

val of_list : int -> int list -> t

(** [exists p s] iff some set index satisfies [p]. *)
val exists : (int -> bool) -> t -> bool

(** [for_all p s] iff every set index satisfies [p]. *)
val for_all : (int -> bool) -> t -> bool

(** Structural hash, compatible with {!equal}. *)
val hash : t -> int

val pp : Format.formatter -> t -> unit
