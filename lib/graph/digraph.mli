(** Directed graphs over the node set [0 .. n-1].

    The representation is immutable after construction: adjacency is stored
    as sorted, deduplicated arrays of successors and predecessors.  Self
    loops are allowed; parallel edges are collapsed. *)

type t

(** [create n edges] is the graph with [n] nodes and the given directed
    edges.  Raises [Invalid_argument] if an endpoint is out of range. *)
val create : int -> (int * int) list -> t

(** Number of nodes. *)
val node_count : t -> int

(** Number of (distinct) edges. *)
val edge_count : t -> int

(** Sorted array of successors of a node.  Do not mutate. *)
val succ : t -> int -> int array

(** Sorted array of predecessors of a node.  Do not mutate. *)
val pred : t -> int -> int array

val out_degree : t -> int -> int
val in_degree : t -> int -> int

(** [mem_edge g u v] iff edge [u -> v] exists (binary search, O(log d)). *)
val mem_edge : t -> int -> int -> bool

(** All edges, lexicographically sorted. *)
val edges : t -> (int * int) list

(** [add_edges g es] is a new graph with the extra edges. *)
val add_edges : t -> (int * int) list -> t

(** Graph with every edge reversed. *)
val transpose : t -> t

(** [induced g keep] is the subgraph induced by the nodes for which
    [keep] holds, together with the (old -> new) node renumbering as an
    array where dropped nodes map to [-1]. *)
val induced : t -> (int -> bool) -> t * int array

(** [reachable g src] is the set of nodes reachable from [src] (including
    [src] itself). *)
val reachable : t -> int -> Bitset.t

(** [reachable_from_set g srcs] is the union of reachability from each
    source in [srcs]. *)
val reachable_from_set : t -> int list -> Bitset.t

val pp : Format.formatter -> t -> unit
