type t = { cap : int; words : int array }

let word_bits = Sys.int_size

let create cap =
  if cap < 0 then invalid_arg "Bitset.create: negative capacity";
  { cap; words = Array.make ((cap + word_bits - 1) / word_bits) 0 }

let capacity t = t.cap

let check t i =
  if i < 0 || i >= t.cap then invalid_arg "Bitset: index out of range"

let set t i =
  check t i;
  let w = i / word_bits and b = i mod word_bits in
  t.words.(w) <- t.words.(w) lor (1 lsl b)

let clear t i =
  check t i;
  let w = i / word_bits and b = i mod word_bits in
  t.words.(w) <- t.words.(w) land lnot (1 lsl b)

let mem t i =
  check t i;
  let w = i / word_bits and b = i mod word_bits in
  t.words.(w) land (1 lsl b) <> 0

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + 1) (x land (x - 1)) in
  go 0 x

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words
let is_empty t = Array.for_all (fun w -> w = 0) t.words
let copy t = { t with words = Array.copy t.words }

let check_cap a b =
  if a.cap <> b.cap then invalid_arg "Bitset: capacity mismatch"

let union_into ~into s =
  check_cap into s;
  Array.iteri (fun i w -> into.words.(i) <- into.words.(i) lor w) s.words

let inter_into ~into s =
  check_cap into s;
  Array.iteri (fun i w -> into.words.(i) <- into.words.(i) land w) s.words

let diff_into ~into s =
  check_cap into s;
  Array.iteri (fun i w -> into.words.(i) <- into.words.(i) land lnot w) s.words

let union a b =
  let r = copy a in
  union_into ~into:r b;
  r

let inter a b =
  let r = copy a in
  inter_into ~into:r b;
  r

let diff a b =
  let r = copy a in
  diff_into ~into:r b;
  r

let disjoint a b =
  check_cap a b;
  let n = Array.length a.words in
  let rec go i = i >= n || (a.words.(i) land b.words.(i) = 0 && go (i + 1)) in
  go 0

let subset a b =
  check_cap a b;
  let n = Array.length a.words in
  let rec go i =
    i >= n || (a.words.(i) land lnot b.words.(i) = 0 && go (i + 1))
  in
  go 0

let equal a b = a.cap = b.cap && a.words = b.words

let compare a b =
  check_cap a b;
  let n = Array.length a.words in
  let rec go i =
    if i >= n then 0
    else
      let c = Int.compare a.words.(i) b.words.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let iter f t =
  for w = 0 to Array.length t.words - 1 do
    let word = t.words.(w) in
    if word <> 0 then
      for b = 0 to word_bits - 1 do
        if word land (1 lsl b) <> 0 then f ((w * word_bits) + b)
      done
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

exception Found of int

let choose t =
  match iter (fun i -> raise (Found i)) t with
  | () -> None
  | exception Found i -> Some i

let to_list t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list cap l =
  let t = create cap in
  List.iter (set t) l;
  t

let exists p t =
  match iter (fun i -> if p i then raise (Found i)) t with
  | () -> false
  | exception Found _ -> true

let for_all p t = not (exists (fun i -> not (p i)) t)
let hash t = Hashtbl.hash (t.cap, t.words)

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    (to_list t)
