type t = { n : int; succ : int array array; pred : int array array; m : int }

let sort_dedup a =
  let a = Array.copy a in
  Array.sort compare a;
  let n = Array.length a in
  if n = 0 then a
  else begin
    let k = ref 1 in
    for i = 1 to n - 1 do
      if a.(i) <> a.(!k - 1) then begin
        a.(!k) <- a.(i);
        incr k
      end
    done;
    Array.sub a 0 !k
  end

let build n edges =
  let out_cnt = Array.make n 0 and in_cnt = Array.make n 0 in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Digraph.create: node out of range";
      out_cnt.(u) <- out_cnt.(u) + 1;
      in_cnt.(v) <- in_cnt.(v) + 1)
    edges;
  let succ = Array.init n (fun i -> Array.make out_cnt.(i) 0) in
  let pred = Array.init n (fun i -> Array.make in_cnt.(i) 0) in
  let oi = Array.make n 0 and ii = Array.make n 0 in
  List.iter
    (fun (u, v) ->
      succ.(u).(oi.(u)) <- v;
      oi.(u) <- oi.(u) + 1;
      pred.(v).(ii.(v)) <- u;
      ii.(v) <- ii.(v) + 1)
    edges;
  let succ = Array.map sort_dedup succ and pred = Array.map sort_dedup pred in
  let m = Array.fold_left (fun acc a -> acc + Array.length a) 0 succ in
  { n; succ; pred; m }

let create n edges = build n edges
let node_count t = t.n
let edge_count t = t.m
let succ t u = t.succ.(u)
let pred t u = t.pred.(u)
let out_degree t u = Array.length t.succ.(u)
let in_degree t u = Array.length t.pred.(u)

let mem_sorted a x =
  let rec go lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      if a.(mid) = x then true
      else if a.(mid) < x then go (mid + 1) hi
      else go lo mid
  in
  go 0 (Array.length a)

let mem_edge t u v = mem_sorted t.succ.(u) v

let edges t =
  let acc = ref [] in
  for u = t.n - 1 downto 0 do
    for i = Array.length t.succ.(u) - 1 downto 0 do
      acc := (u, t.succ.(u).(i)) :: !acc
    done
  done;
  !acc

let add_edges t es = build t.n (List.rev_append es (edges t))
let transpose t = { t with succ = t.pred; pred = t.succ }

let induced t keep =
  let renum = Array.make t.n (-1) in
  let k = ref 0 in
  for u = 0 to t.n - 1 do
    if keep u then begin
      renum.(u) <- !k;
      incr k
    end
  done;
  let es = ref [] in
  List.iter
    (fun (u, v) ->
      if renum.(u) >= 0 && renum.(v) >= 0 then
        es := (renum.(u), renum.(v)) :: !es)
    (edges t);
  (build !k !es, renum)

let reachable_from_set t srcs =
  let seen = Bitset.create t.n in
  let stack = ref [] in
  let push u =
    if not (Bitset.mem seen u) then begin
      Bitset.set seen u;
      stack := u :: !stack
    end
  in
  List.iter push srcs;
  let rec go () =
    match !stack with
    | [] -> ()
    | u :: rest ->
        stack := rest;
        Array.iter push t.succ.(u);
        go ()
  in
  go ();
  seen

let reachable t src = reachable_from_set t [ src ]

let pp ppf t =
  Format.fprintf ppf "@[<v>digraph(%d nodes, %d edges)" t.n t.m;
  List.iter (fun (u, v) -> Format.fprintf ppf "@,%d -> %d" u v) (edges t);
  Format.fprintf ppf "@]"
