(** Topological orders and linear extensions of directed acyclic graphs. *)

(** [sort g] is a topological order of [g] (nodes with smaller ids first
    among ready nodes, so the output is deterministic), or [None] if [g]
    has a cycle. *)
val sort : Digraph.t -> int list option

(** [is_acyclic g] iff [g] has no directed cycle. *)
val is_acyclic : Digraph.t -> bool

(** [find_cycle g] is [Some cycle] — a list of nodes [v0; v1; ...; vk-1]
    such that every [vi -> v(i+1 mod k)] is an edge — if [g] is cyclic,
    [None] otherwise. *)
val find_cycle : Digraph.t -> int list option

(** Minimal (no predecessor) nodes in ascending order. *)
val minimal : Digraph.t -> int list

(** Maximal (no successor) nodes in ascending order. *)
val maximal : Digraph.t -> int list

(** [linear_extensions g] enumerates every topological order of the dag.
    Exponential; intended for small graphs (ground-truth checking).
    Raises [Invalid_argument] if [g] is cyclic. *)
val linear_extensions : Digraph.t -> int list Seq.t

(** Number of linear extensions (computed by exhaustive enumeration with
    memoization on the remaining-set; exponential space in the antichain
    width, fine for small graphs). *)
val count_linear_extensions : Digraph.t -> int

(** [random_linear_extension rng g] samples a topological order by
    repeatedly picking a uniformly random ready node.  (Not uniform over
    all extensions, but covers all of them with positive probability.)
    Raises [Invalid_argument] if [g] is cyclic. *)
val random_linear_extension : Random.State.t -> Digraph.t -> int list

(** [is_linear_extension g order] iff [order] is a permutation of the
    nodes that respects every edge of [g]. *)
val is_linear_extension : Digraph.t -> int list -> bool
