(* Tarjan's strongly-connected-components algorithm, iterative to be safe
   on deep graphs. *)
let scc g =
  let n = Digraph.node_count g in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let next_index = ref 0 in
  let comps = ref [] in
  let rec strongconnect v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    stack := v :: !stack;
    on_stack.(v) <- true;
    Array.iter
      (fun w ->
        if index.(w) = -1 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      (Digraph.succ g v);
    if lowlink.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
            stack := rest;
            on_stack.(w) <- false;
            if w = v then w :: acc else pop (w :: acc)
      in
      comps := List.sort compare (pop []) :: !comps
    end
  in
  for v = 0 to n - 1 do
    if index.(v) = -1 then strongconnect v
  done;
  List.rev !comps

(* Johnson's algorithm for enumerating elementary cycles.  We materialize
   cycles into a queue per root to expose them as a Seq lazily enough for
   our graph sizes. *)
let simple_cycles g =
  let n = Digraph.node_count g in
  let results = ref [] in
  let blocked = Array.make n false in
  let b = Array.make n [] in
  let path = ref [] in
  let rec unblock u =
    if blocked.(u) then begin
      blocked.(u) <- false;
      let bs = b.(u) in
      b.(u) <- [];
      List.iter unblock bs
    end
  in
  (* For each root s (smallest node of its cycles), search within the
     subgraph of nodes >= s restricted to the SCC of s. *)
  for s = 0 to n - 1 do
    (* Subgraph on nodes >= s. *)
    let allowed v = v >= s in
    (* Find SCC containing s in that subgraph. *)
    let sub, renum = Digraph.induced g allowed in
    let comps = scc sub in
    let inv = Array.make (Digraph.node_count sub) (-1) in
    Array.iteri (fun old nw -> if nw >= 0 then inv.(nw) <- old) renum;
    (match
       List.find_opt (fun comp -> List.exists (fun v -> inv.(v) = s) comp) comps
     with
    | None -> ()
    | Some comp ->
        let comp_orig = List.map (fun v -> inv.(v)) comp in
        let in_comp = Bitset.of_list n comp_orig in
        let self_loop = Digraph.mem_edge g s s in
        if self_loop then results := [ s ] :: !results;
        if List.length comp_orig > 1 && Bitset.mem in_comp s then begin
          List.iter
            (fun v ->
              blocked.(v) <- false;
              b.(v) <- [])
            comp_orig;
          let rec circuit v =
            let found = ref false in
            blocked.(v) <- true;
            path := v :: !path;
            Array.iter
              (fun w ->
                if Bitset.mem in_comp w then
                  if w = s then begin
                    (* v = s means the s->s self loop, already counted. *)
                    if v <> s then results := List.rev !path :: !results;
                    found := true
                  end
                  else if not blocked.(w) then if circuit w then found := true)
              (Digraph.succ g v);
            if !found then unblock v
            else
              Array.iter
                (fun w ->
                  if Bitset.mem in_comp w && not (List.mem v b.(w)) then
                    b.(w) <- v :: b.(w))
                (Digraph.succ g v);
            path := List.tl !path;
            !found
          in
          ignore (circuit s)
        end)
  done;
  List.to_seq (List.rev !results)

let count_simple_cycles g = Seq.length (simple_cycles g)
