module IntSet = Set.Make (Int)

let in_degrees g =
  Array.init (Digraph.node_count g) (fun u -> Digraph.in_degree g u)

(* Kahn's algorithm with a ready-set ordered by node id, so the result is
   deterministic. *)
let sort g =
  let n = Digraph.node_count g in
  let deg = in_degrees g in
  let ready = ref IntSet.empty in
  for u = 0 to n - 1 do
    if deg.(u) = 0 then ready := IntSet.add u !ready
  done;
  let rec go acc k =
    match IntSet.min_elt_opt !ready with
    | None -> if k = n then Some (List.rev acc) else None
    | Some u ->
        ready := IntSet.remove u !ready;
        Array.iter
          (fun v ->
            deg.(v) <- deg.(v) - 1;
            if deg.(v) = 0 then ready := IntSet.add v !ready)
          (Digraph.succ g u);
        go (u :: acc) (k + 1)
  in
  go [] 0

let is_acyclic g = sort g <> None

(* Colored DFS; on finding a back edge, reconstruct the cycle from the
   gray stack. *)
let find_cycle g =
  let n = Digraph.node_count g in
  let color = Array.make n 0 in
  (* 0 white, 1 gray, 2 black *)
  let exception Cycle of int list in
  let rec visit path u =
    color.(u) <- 1;
    let path = u :: path in
    Array.iter
      (fun v ->
        if color.(v) = 1 then begin
          let rec take acc = function
            | [] -> acc
            | w :: rest -> if w = v then w :: acc else take (w :: acc) rest
          in
          raise (Cycle (take [] path))
        end
        else if color.(v) = 0 then visit path v)
      (Digraph.succ g u);
    color.(u) <- 2
  in
  try
    for u = 0 to n - 1 do
      if color.(u) = 0 then visit [] u
    done;
    None
  with Cycle c -> Some c

let minimal g =
  List.filter
    (fun u -> Digraph.in_degree g u = 0)
    (List.init (Digraph.node_count g) Fun.id)

let maximal g =
  List.filter
    (fun u -> Digraph.out_degree g u = 0)
    (List.init (Digraph.node_count g) Fun.id)

let require_acyclic g name =
  if not (is_acyclic g) then invalid_arg (name ^ ": graph is cyclic")

let linear_extensions g =
  require_acyclic g "Topo.linear_extensions";
  let n = Digraph.node_count g in
  (* Enumerate lazily: state = (in-degree array, ready set, prefix). *)
  let rec extend deg ready prefix k () =
    if k = n then Seq.Cons (List.rev prefix, Seq.empty)
    else
      let alts =
        IntSet.fold
          (fun u acc ->
            let deg' = Array.copy deg in
            let ready' = ref (IntSet.remove u ready) in
            Array.iter
              (fun v ->
                deg'.(v) <- deg'.(v) - 1;
                if deg'.(v) = 0 then ready' := IntSet.add v !ready')
              (Digraph.succ g u);
            extend deg' !ready' (u :: prefix) (k + 1) :: acc)
          ready []
      in
      Seq.concat (List.to_seq (List.rev alts)) ()
  in
  let deg = in_degrees g in
  let ready = ref IntSet.empty in
  for u = 0 to n - 1 do
    if deg.(u) = 0 then ready := IntSet.add u !ready
  done;
  extend deg !ready [] 0

let count_linear_extensions g =
  require_acyclic g "Topo.count_linear_extensions";
  let n = Digraph.node_count g in
  (* Memoize on the set of already-placed nodes (an order ideal). *)
  let memo = Hashtbl.create 97 in
  let rec count placed =
    if Bitset.cardinal placed = n then 1
    else
      let key = Bitset.hash placed in
      let bucket = try Hashtbl.find memo key with Not_found -> [] in
      match List.find_opt (fun (s, _) -> Bitset.equal s placed) bucket with
      | Some (_, c) -> c
      | None ->
          let total = ref 0 in
          for u = 0 to n - 1 do
            if
              (not (Bitset.mem placed u))
              && Array.for_all (Bitset.mem placed) (Digraph.pred g u)
            then begin
              let placed' = Bitset.copy placed in
              Bitset.set placed' u;
              total := !total + count placed'
            end
          done;
          Hashtbl.replace memo key ((Bitset.copy placed, !total) :: bucket);
          !total
  in
  count (Bitset.create n)

let random_linear_extension rng g =
  require_acyclic g "Topo.random_linear_extension";
  let n = Digraph.node_count g in
  let deg = in_degrees g in
  let ready = ref [] in
  for u = n - 1 downto 0 do
    if deg.(u) = 0 then ready := u :: !ready
  done;
  let rec go acc k =
    if k = n then List.rev acc
    else begin
      let len = List.length !ready in
      let idx = Random.State.int rng len in
      let u = List.nth !ready idx in
      ready := List.filter (fun v -> v <> u) !ready;
      Array.iter
        (fun v ->
          deg.(v) <- deg.(v) - 1;
          if deg.(v) = 0 then ready := v :: !ready)
        (Digraph.succ g u);
      go (u :: acc) (k + 1)
    end
  in
  go [] 0

let is_linear_extension g order =
  let n = Digraph.node_count g in
  let pos = Array.make n (-1) in
  let ok = ref (List.length order = n) in
  List.iteri
    (fun i u ->
      if u < 0 || u >= n || pos.(u) >= 0 then ok := false else pos.(u) <- i)
    order;
  !ok
  && List.for_all
       (fun (u, v) -> pos.(u) < pos.(v))
       (Digraph.edges g)
