(** Undirected simple graphs over [0 .. n-1], used for interaction graphs. *)

type t

(** [create n edges] builds the graph; loops are rejected, parallel edges
    collapsed.  Edge [(u, v)] is the same as [(v, u)]. *)
val create : int -> (int * int) list -> t

val node_count : t -> int
val edge_count : t -> int

(** Sorted array of neighbours.  Do not mutate. *)
val neighbours : t -> int -> int array

val mem_edge : t -> int -> int -> bool

(** Edges with [u < v], lexicographically sorted. *)
val edges : t -> (int * int) list

(** Connected components as sorted node lists. *)
val components : t -> int list list

(** All simple cycles of length >= 3, each reported once per traversal
    direction (so an undirected cycle yields two lists).  Each list is
    rooted at its smallest node and consecutive elements (cyclically) are
    adjacent.  This is exactly the set of "directed cycles" Theorem 4
    quantifies over. *)
val directed_cycles : t -> int list Seq.t

(** Undirected cycles: as {!directed_cycles} but keeping one canonical
    direction per cycle. *)
val cycles : t -> int list Seq.t

val pp : Format.formatter -> t -> unit
