(** Strongly connected components and simple-cycle enumeration. *)

(** [scc g] is the list of strongly connected components (each a sorted
    node list) in reverse topological order of the condensation. *)
val scc : Digraph.t -> int list list

(** [simple_cycles g] enumerates every simple directed cycle of [g]
    (Johnson's algorithm).  Each cycle is a node list [v0; ...; vk-1]
    rooted at its smallest node, with every [vi -> v(i+1 mod k)] an edge.
    Self-loops are reported as singleton lists. *)
val simple_cycles : Digraph.t -> int list Seq.t

(** Number of simple directed cycles. *)
val count_simple_cycles : Digraph.t -> int
