type t = Bitset.t array

let closure g =
  let n = Digraph.node_count g in
  let rows = Array.init n (fun _ -> Bitset.create n) in
  match Topo.sort g with
  | Some order ->
      (* DAG: in reverse topological order, row u = union of successor rows
         plus the successors themselves. *)
      List.iter
        (fun u ->
          Array.iter
            (fun v ->
              Bitset.set rows.(u) v;
              Bitset.union_into ~into:rows.(u) rows.(v))
            (Digraph.succ g u))
        (List.rev order);
      rows
  | None ->
      (* General digraph: BFS from each node. *)
      for u = 0 to n - 1 do
        let r = Digraph.reachable_from_set g (Array.to_list (Digraph.succ g u)) in
        Bitset.union_into ~into:rows.(u) r
      done;
      rows

let reaches c u v = Bitset.mem c.(u) v

let closure_graph g =
  let c = closure g in
  let n = Digraph.node_count g in
  let es = ref [] in
  for u = 0 to n - 1 do
    Bitset.iter (fun v -> es := (u, v) :: !es) c.(u)
  done;
  Digraph.create n !es

let reduction g =
  if not (Topo.is_acyclic g) then invalid_arg "Closure.reduction: cyclic";
  let c = closure g in
  (* Keep edge u->v iff no intermediate successor w of u reaches v. *)
  let keep (u, v) =
    not
      (Array.exists
         (fun w -> w <> v && Bitset.mem c.(w) v)
         (Digraph.succ g u))
  in
  Digraph.create (Digraph.node_count g) (List.filter keep (Digraph.edges g))

let descendants c u = c.(u)

let ancestors c n u =
  let r = Bitset.create n in
  for v = 0 to n - 1 do
    if Bitset.mem c.(v) u then Bitset.set r v
  done;
  r
