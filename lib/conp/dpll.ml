open Formula

(* Partial assignment: None = unassigned. *)
type pa = bool option array

let lit_value (a : pa) = function
  | Pos v -> a.(v)
  | Neg v -> Option.map not a.(v)

(* Simplification status of a clause under a partial assignment. *)
let clause_status a c =
  let rec go unassigned = function
    | [] -> (match unassigned with [] -> `Conflict | ls -> `Open ls)
    | l :: rest -> (
        match lit_value a l with
        | Some true -> `Satisfied
        | Some false -> go unassigned rest
        | None -> go (l :: unassigned) rest)
  in
  go [] c

exception Conflict

(* Unit propagation to fixpoint; raises Conflict. *)
let rec propagate f (a : pa) =
  let changed = ref false in
  List.iter
    (fun c ->
      match clause_status a c with
      | `Conflict -> raise Conflict
      | `Open [ l ] ->
          a.(var l) <- Some (match l with Pos _ -> true | Neg _ -> false);
          changed := true
      | `Open _ | `Satisfied -> ())
    f.clauses;
  if !changed then propagate f a

let pure_literals f (a : pa) =
  let pos = Array.make f.n_vars false and neg = Array.make f.n_vars false in
  List.iter
    (fun c ->
      match clause_status a c with
      | `Open ls ->
          List.iter
            (fun l ->
              match l with Pos v -> pos.(v) <- true | Neg v -> neg.(v) <- true)
            ls
      | `Satisfied | `Conflict -> ())
    f.clauses;
  for v = 0 to f.n_vars - 1 do
    if a.(v) = None then
      if pos.(v) && not neg.(v) then a.(v) <- Some true
      else if neg.(v) && not pos.(v) then a.(v) <- Some false
  done

let solve f =
  let rec go (a : pa) =
    match propagate f a with
    | exception Conflict -> None
    | () -> (
        pure_literals f a;
        (* Pure-literal assignment cannot conflict but may enable units. *)
        match propagate f a with
        | exception Conflict -> None
        | () -> (
            (* Pick a branching variable from an open clause. *)
            let branch =
              List.find_map
                (fun c ->
                  match clause_status a c with
                  | `Open (l :: _) -> Some (var l)
                  | _ -> None)
                f.clauses
            in
            match branch with
            | None ->
                (* All clauses satisfied. *)
                Some (Array.map (Option.value ~default:false) a)
            | Some v ->
                let try_with b =
                  let a' = Array.copy a in
                  a'.(v) <- Some b;
                  go a'
                in
                (match try_with true with
                | Some m -> Some m
                | None -> try_with false)))
  in
  match go (Array.make f.n_vars None) with
  | Some m ->
      assert (satisfies m f);
      Some m
  | None -> None

let satisfiable f = solve f <> None

let satisfiable_brute f =
  let n = f.n_vars in
  let rec go i a = if i = n then satisfies a f else (
    a.(i) <- false;
    go (i + 1) a
    ||
    (a.(i) <- true;
     go (i + 1) a))
  in
  go 0 (Array.make n false)

let count_models f =
  let n = f.n_vars in
  let count = ref 0 in
  let rec go i a =
    if i = n then (if satisfies a f then incr count)
    else begin
      a.(i) <- false;
      go (i + 1) a;
      a.(i) <- true;
      go (i + 1) a
    end
  in
  go 0 (Array.make n false);
  !count
