open Ddlock_graph
open Ddlock_model
open Ddlock_schedule
open Ddlock_deadlock

type t = {
  formula : Formula.t;
  db : Db.t;
  t1 : Transaction.t;
  t2 : Transaction.t;
  sys : System.t;
}

let c_name i = Printf.sprintf "c%d" i
let c'_name i = Printf.sprintf "c%d'" i
let x_name j = Printf.sprintf "x%d" j
let x'_name j = Printf.sprintf "x%d'" j
let x''_name j = Printf.sprintf "x%d''" j

let build formula =
  (match Formula.check_3sat' formula with
  | Ok () -> ()
  | Error es ->
      invalid_arg
        (Format.asprintf "Reduction_sat.build: not 3SAT': %a"
           (Format.pp_print_list ~pp_sep:Format.pp_print_space
              Formula.pp_shape_error)
           es));
  let r = List.length formula.Formula.clauses in
  let n = formula.Formula.n_vars in
  let names =
    List.init r c_name @ List.init r c'_name @ List.init n x_name
    @ List.init n x'_name @ List.init n x''_name
  in
  let db = Db.one_site_per_entity names in
  let e name = Db.find_entity_exn db name in
  let ne = Db.entity_count db in
  (* Node 2e is L(e), node 2e+1 is U(e), for every entity. *)
  let labels =
    Array.init (2 * ne) (fun i ->
        if i mod 2 = 0 then Node.lock (i / 2) else Node.unlock (i / 2))
  in
  let lock en = 2 * e en and unlock en = (2 * e en) + 1 in
  let base = List.init ne (fun x -> (2 * x, (2 * x) + 1)) in
  let succ i = (i + 1) mod r in
  let arcs1 = ref base and arcs2 = ref base in
  (* Lc'_i < Uc_i in both transactions. *)
  for i = 0 to r - 1 do
    arcs1 := (lock (c'_name i), unlock (c_name i)) :: !arcs1;
    arcs2 := (lock (c'_name i), unlock (c_name i)) :: !arcs2
  done;
  for j = 0 to n - 1 do
    let h, k, l = Formula.occurrences formula j in
    (* T1. *)
    arcs1 :=
      (lock (x_name j), unlock (x''_name j))
      :: (lock (c_name h), unlock (x_name j))
      :: (lock (c_name k), unlock (x'_name j))
      :: (lock (x'_name j), unlock (c_name (succ l)))
      :: (lock (x'_name j), unlock (c'_name (succ l)))
      :: !arcs1;
    (* T2. *)
    arcs2 :=
      (lock (x''_name j), unlock (x'_name j))
      :: (lock (c_name l), unlock (x_name j))
      :: (lock (x_name j), unlock (c_name (succ h)))
      :: (lock (x_name j), unlock (c'_name (succ h)))
      :: (lock (x'_name j), unlock (c_name (succ k)))
      :: (lock (x'_name j), unlock (c'_name (succ k)))
      :: !arcs2
  done;
  let t1 = Transaction.make_exn db labels !arcs1 in
  let t2 = Transaction.make_exn db labels !arcs2 in
  { formula; db; t1; t2; sys = System.create [ t1; t2 ] }

let c_entity t i = Db.find_entity_exn t.db (c_name i)
let c'_entity t i = Db.find_entity_exn t.db (c'_name i)
let x_entity t j = Db.find_entity_exn t.db (x_name j)
let x'_entity t j = Db.find_entity_exn t.db (x'_name j)
let x''_entity t j = Db.find_entity_exn t.db (x''_name j)

let prefix_of_assignment t a =
  if not (Formula.satisfies a t.formula) then
    invalid_arg "Reduction_sat.prefix_of_assignment: not a model";
  let st = State.initial t.sys in
  let add txn entity =
    let tx = System.txn t.sys txn in
    Bitset.set st.(txn) (Transaction.lock_node_exn tx entity)
  in
  List.iteri
    (fun i clause ->
      (* Pick the first literal of the clause satisfied by [a]. *)
      match List.find_opt (Formula.lit_holds a) clause with
      | None -> assert false
      | Some (Formula.Pos j) ->
          add 0 (x_entity t j);
          add 0 (x'_entity t j);
          add 0 (c'_entity t i);
          add 1 (c_entity t i)
      | Some (Formula.Neg j) ->
          add 1 (x_entity t j);
          add 1 (x'_entity t j);
          add 0 (x''_entity t j);
          add 0 (c_entity t i);
          add 1 (c'_entity t i))
    t.formula.Formula.clauses;
  st

let assignment_of_cycle t cycle =
  let a = Array.make t.formula.Formula.n_vars false in
  List.iter
    (fun (s : Step.t) ->
      let tx = System.txn t.sys s.txn in
      let nd = Transaction.node tx s.node in
      if nd.Node.op = Node.Unlock then
        for j = 0 to t.formula.Formula.n_vars - 1 do
          if
            s.txn = 0
            && (nd.Node.entity = x_entity t j || nd.Node.entity = x'_entity t j)
          then a.(j) <- true
        done)
    cycle;
  (* U²xⱼ forces false, which is the default; check for conflicts. *)
  List.iter
    (fun (s : Step.t) ->
      let tx = System.txn t.sys s.txn in
      let nd = Transaction.node tx s.node in
      if nd.Node.op = Node.Unlock && s.txn = 1 then
        for j = 0 to t.formula.Formula.n_vars - 1 do
          if nd.Node.entity = x_entity t j then
            if a.(j) then
              invalid_arg
                "Reduction_sat.assignment_of_cycle: inconsistent cycle"
        done)
    cycle;
  a

let deadlock_witness t a =
  let prefix = prefix_of_assignment t a in
  (* The prefix consists of Lock nodes only on disjoint entity sets, so
     executing T1's nodes then T2's in any order is a legal schedule. *)
  let steps =
    List.concat_map
      (fun i -> List.map (Step.v i) (Bitset.to_list prefix.(i)))
      [ 0; 1 ]
  in
  match Schedule.check t.sys steps with
  | Error _ -> None
  | Ok _ -> (
      match Reduction.find_cycle (Reduction.make t.sys prefix) with
      | None -> None
      | Some cycle -> Some (steps, cycle))

let satisfiable_via_deadlock_search ?max_states formula =
  let t = build formula in
  Prefix_search.find ?max_states t.sys <> None
