open Formula

type t = {
  formula : Formula.t;
  back : Formula.assignment -> Formula.assignment;
}

(* Stage 1: make every clause have 1..3 literals. *)
let split_clauses f =
  let fresh = ref f.n_vars in
  let new_var () =
    let v = !fresh in
    incr fresh;
    (v, Pos v)
  in
  let clauses =
    List.concat_map
      (fun c ->
        match c with
        | [] ->
            (* An empty clause is unsatisfiable: encode with a fresh q as
               (q) ∧ (¬q); the ring stage fixes the counts. *)
            let q, _ = new_var () in
            [ [ Pos q ]; [ Neg q ] ]
        | [ _ ] | [ _; _ ] | [ _; _; _ ] -> [ c ]
        | l1 :: l2 :: rest ->
            (* (l1 l2 z1) (¬z1 l3 z2) ... (¬z_last l_{k-1} l_k) *)
            let rec chain prev_z = function
              | [ a; b ] -> [ [ Neg prev_z; a; b ] ]
              | a :: (_ :: _ :: _ as more) ->
                  let z, zl = new_var () in
                  [ Neg prev_z; a; zl ] :: chain z more
              | [ a ] -> [ [ Neg prev_z; a ] ]
              | [] -> assert false
            in
            let z0, z0l = new_var () in
            [ l1; l2; z0l ] :: chain z0 rest)
      f.clauses
  in
  { n_vars = !fresh; clauses }

(* Stage 2: occurrence rings.  See the interface for the construction. *)
let ring_normalize f =
  (* Occurrence slots per variable, in clause order. *)
  let occs = Array.make f.n_vars [] in
  List.iteri
    (fun ci c ->
      List.iteri
        (fun li l -> occs.(var l) <- (ci, li, l) :: occs.(var l))
        c)
    f.clauses;
  Array.iteri (fun v l -> occs.(v) <- List.rev l) occs;
  let fresh = ref 0 in
  let new_var () =
    let v = !fresh in
    incr fresh;
    v
  in
  (* For the rewrite of original clauses: (clause, literal index) ->
     replacement literal. *)
  let replacement = Hashtbl.create 64 in
  let ring_clauses = ref [] in
  let pads = ref [] in
  let head_a = Array.make f.n_vars (-1) in
  for v = 0 to f.n_vars - 1 do
    let slots = occs.(v) in
    if slots <> [] then begin
      let p =
        List.length (List.filter (fun (_, _, l) -> l = Pos v) slots)
      in
      let n = List.length slots - p in
      let d = max 0 (max (p - (2 * n)) (n - (2 * p))) in
      let m = p + n + d in
      let a = Array.init m (fun _ -> new_var ()) in
      let b = Array.init m (fun _ -> new_var ()) in
      head_a.(v) <- a.(0);
      (* Implication cycle a_i -> ¬b_i -> a_{i+1}. *)
      for i = 0 to m - 1 do
        ring_clauses := [ Neg a.(i); Neg b.(i) ] :: !ring_clauses;
        ring_clauses := [ Pos b.(i); Pos a.((i + 1) mod m) ] :: !ring_clauses
      done;
      (* Occurrences take slots 0..p+n-1; unused senses go to pads. *)
      let unused_a = ref [] and unused_b = ref [] in
      List.iteri
        (fun i (ci, li, l) ->
          match l with
          | Pos _ ->
              Hashtbl.replace replacement (ci, li) (Pos a.(i));
              unused_b := b.(i) :: !unused_b
          | Neg _ ->
              Hashtbl.replace replacement (ci, li) (Pos b.(i));
              unused_a := a.(i) :: !unused_a)
        slots;
      for i = p + n to m - 1 do
        unused_a := a.(i) :: !unused_a;
        unused_b := b.(i) :: !unused_b
      done;
      (* Pads: each contains one complementary a/b pair (a tautology given
         the ring), 3-literal pads absorb the imbalance. *)
      let rec pad la lb =
        match (la, lb) with
        | [], [] -> ()
        | a1 :: ra, b1 :: b2 :: rb when List.length lb > List.length la ->
            pads := [ Pos a1; Pos b1; Pos b2 ] :: !pads;
            pad ra rb
        | a1 :: a2 :: ra, b1 :: rb when List.length la > List.length lb ->
            pads := [ Pos a1; Pos a2; Pos b1 ] :: !pads;
            pad ra rb
        | a1 :: ra, b1 :: rb ->
            pads := [ Pos a1; Pos b1 ] :: !pads;
            pad ra rb
        | _ -> assert false
      in
      pad !unused_a !unused_b
    end
  done;
  let rewritten =
    List.mapi
      (fun ci c -> List.mapi (fun li _ -> Hashtbl.find replacement (ci, li)) c)
      f.clauses
  in
  let formula =
    { n_vars = !fresh; clauses = rewritten @ List.rev !ring_clauses @ !pads }
  in
  let back (model : assignment) =
    Array.init f.n_vars (fun v ->
        if head_a.(v) >= 0 then model.(head_a.(v)) else false)
  in
  (formula, back)

let normalize f =
  let split = split_clauses f in
  let formula, back_ring = ring_normalize split in
  let back model =
    (* Drop the splitter variables: original vars are a prefix. *)
    Array.sub (back_ring model) 0 f.n_vars
  in
  { formula; back }

let parse_dimacs src =
  let lines = String.split_on_char '\n' src in
  let n_vars = ref (-1) in
  let clauses = ref [] in
  let current = ref [] in
  let error = ref None in
  List.iter
    (fun line ->
      if !error = None then
        let line = String.trim line in
        if line = "" || line.[0] = 'c' || line.[0] = '%' then ()
        else if line.[0] = 'p' then begin
          match
            List.filter (fun s -> s <> "") (String.split_on_char ' ' line)
          with
          | [ "p"; "cnf"; v; _ ] -> (
              match int_of_string_opt v with
              | Some v -> n_vars := v
              | None -> error := Some "bad variable count")
          | _ -> error := Some "malformed p line"
        end
        else
          List.iter
            (fun tok ->
              if tok <> "" && !error = None then
                match int_of_string_opt tok with
                | None -> error := Some ("bad literal " ^ tok)
                | Some 0 ->
                    clauses := List.rev !current :: !clauses;
                    current := []
                | Some i ->
                    if !n_vars < 0 then error := Some "clause before p line"
                    else if abs i > !n_vars then
                      error := Some ("literal out of range: " ^ tok)
                    else
                      current :=
                        (if i > 0 then Pos (i - 1) else Neg (-i - 1))
                        :: !current)
            (String.split_on_char ' ' line))
    lines;
  match !error with
  | Some e -> Error e
  | None ->
      if !n_vars < 0 then Error "missing p line"
      else begin
        if !current <> [] then clauses := List.rev !current :: !clauses;
        Ok { n_vars = !n_vars; clauses = List.rev !clauses }
      end
