(** Random 3SAT′ instance generation.

    Every variable contributes exactly three occurrence tokens (two
    positive, one negative); tokens are shuffled and dealt into clauses
    of size 3 (so the clause count is exactly the variable count),
    re-dealing when a clause would mention a variable twice. *)

(** [generate rng ~n_vars] — a random 3SAT′ formula with [n_vars]
    variables and [n_vars] clauses.  Requires [n_vars >= 3] so that a
    duplicate-free deal exists. *)
val generate : Random.State.t -> n_vars:int -> Formula.t

(** A fixed satisfiable example used in docs/tests: the paper's
    illustration (x₀ ∨ x₁) ∧ (x₀ ∨ ¬x₁) ∧ (¬x₀ ∨ x₁). *)
val paper_example : Formula.t

(** A small unsatisfiable 3SAT′ instance: (¬x₀) ∧ (x₀) ∧ (x₀). *)
val tiny_unsat : Formula.t
