(** CNF formulas and the 3SAT′ fragment used by the §4 reduction.

    Variables are integers [0 .. n-1].  3SAT′ is the NP-complete
    restriction where every clause has at most 3 literals and every
    variable occurs exactly twice positively and exactly once negatively
    across the whole formula. *)

type literal = Pos of int | Neg of int

type clause = literal list

type t = { n_vars : int; clauses : clause list }

val var : literal -> int
val negate : literal -> literal

(** An assignment maps each variable to a boolean. *)
type assignment = bool array

val lit_holds : assignment -> literal -> bool
val clause_holds : assignment -> clause -> bool
val satisfies : assignment -> t -> bool

type shape_error =
  | Clause_too_long of int  (** clause index with > 3 literals *)
  | Occurrence_mismatch of { var : int; pos : int; neg : int }
  | Var_out_of_range of int
  | Duplicate_in_clause of int  (** clause index with a repeated variable *)

val pp_shape_error : Format.formatter -> shape_error -> unit

(** [check_3sat' f] verifies the 3SAT′ shape. *)
val check_3sat' : t -> (unit, shape_error list) result

val is_3sat' : t -> bool

(** Positions of the variable's occurrences, required by the reduction:
    [occurrences f j] is [(h, k, l)] — the clause indices of the first
    positive, second positive and the negative occurrence of [j].
    Requires the 3SAT′ shape. *)
val occurrences : t -> int -> int * int * int

val pp : Format.formatter -> t -> unit

(** [of_lists n clauses] with clauses as int lists, negative integers for
    negated variables 1-based (DIMACS-style): [-2] is ¬x₁. *)
val of_dimacs : int -> int list list -> t
