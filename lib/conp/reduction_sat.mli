open Ddlock_model
open Ddlock_schedule

(** The §4 reduction: 3SAT′ → deadlock-freedom of two distributed
    transactions (Theorem 2).

    For a 3SAT′ formula with clauses [c₁ … c_r] and variables
    [x₁ … x_n], build transactions T₁, T₂ over entities
    [cᵢ, c′ᵢ, xⱼ, x′ⱼ, x″ⱼ] — each on its own site — such that
    {T₁, T₂} has a deadlock prefix iff the formula is satisfiable.

    Arc set (indices mod r; variable [xⱼ] occurring positively in
    [c_h], [c_k] and negatively in [c_l]); every entity also has its
    implicit Lock ≺ Unlock arc:

    - T₁: [Lxⱼ ≺ Ux″ⱼ]; [Lc′ᵢ ≺ Ucᵢ];
          [Lc_h ≺ Uxⱼ]; [Lc_k ≺ Ux′ⱼ];
          [Lx′ⱼ ≺ Uc_{l+1}]; [Lx′ⱼ ≺ Uc′_{l+1}].
    - T₂: [Lx″ⱼ ≺ Ux′ⱼ]; [Lc′ᵢ ≺ Ucᵢ];
          [Lc_l ≺ Uxⱼ];
          [Lxⱼ ≺ Uc_{h+1}]; [Lxⱼ ≺ Uc′_{h+1}];
          [Lx′ⱼ ≺ Uc_{k+1}]; [Lx′ⱼ ≺ Uc′_{k+1}]. *)

type t = {
  formula : Formula.t;
  db : Db.t;
  t1 : Transaction.t;
  t2 : Transaction.t;
  sys : System.t;  (** [t1; t2] *)
}

(** Build the reduction.  The formula must be in 3SAT′ shape. *)
val build : Formula.t -> t

(** Entity lookups (0-based clause/variable indices). *)
val c_entity : t -> int -> Db.entity

val c'_entity : t -> int -> Db.entity
val x_entity : t -> int -> Db.entity
val x'_entity : t -> int -> Db.entity
val x''_entity : t -> int -> Db.entity

(** [prefix_of_assignment r a] — the deadlock prefix of the constructive
    proof: for each clause pick a literal of [a] satisfying it and take
    the corresponding Zᵢ node set.  Requires [a] to satisfy the formula.
    The result consists of Lock nodes only, with disjoint entities
    between the two transactions. *)
val prefix_of_assignment : t -> Formula.assignment -> State.t

(** [assignment_of_cycle r cycle] — the truth assignment extracted from a
    reduction-graph cycle as in the completeness proof: [U¹xⱼ] or
    [U¹x′ⱼ] on the cycle ⇒ true; [U²xⱼ] ⇒ false; others default false. *)
val assignment_of_cycle : t -> Step.t list -> Formula.assignment

(** [deadlock_witness r a] — builds the prefix, checks it is a genuine
    deadlock prefix (schedulable: lock-only disjoint prefixes, so serial
    order works; cyclic reduction graph) and returns the schedule and the
    cycle. *)
val deadlock_witness :
  t -> Formula.assignment -> (Step.t list * Step.t list) option

(** Decide satisfiability by exhaustive deadlock-prefix search on the
    built system (exponential — tiny formulas only; the point of
    Theorem 2 is that this direction cannot be polynomial unless
    P = NP). *)
val satisfiable_via_deadlock_search : ?max_states:int -> Formula.t -> bool
