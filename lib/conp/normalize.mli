(** Normalization of arbitrary CNF into the 3SAT′ fragment required by
    the §4 reduction (≤3 literals per clause; every variable exactly
    twice positive, once negative), preserving satisfiability.

    Pipeline:

    + {e clause splitting}: a clause [l₁ ∨ … ∨ l_k] with [k > 3] becomes
      [(l₁ ∨ l₂ ∨ z₁) (¬z₁ ∨ l₃ ∨ z₂) … (¬z_{k-3} ∨ l_{k-1} ∨ l_k)];
    + {e occurrence rings}: every original variable [v] with [m]
      occurrence slots gets fresh pairs [aᵢ] ("v") / [bᵢ] ("¬v") tied by
      the implication cycle [a₁ → ¬b₁ → a₂ → … → ¬b_m → a₁] (clauses
      [(¬aᵢ ∨ ¬bᵢ)] and [(bᵢ ∨ a_{i+1})]), which forces all [aᵢ] equal
      and [bᵢ = ¬aᵢ].  A positive occurrence uses [aᵢ] (positively), a
      negative one uses [bᵢ] (positively);
    + {e tautological pads}: each ring sense not consumed by an
      occurrence still needs exactly one positive use; pads are clauses
      containing a complementary [a]/[b] pair from one ring (hence
      entailed by the ring, never constraining), with dummy ring slots
      added to absorb polarity imbalance.

    The result is 3SAT′ and equisatisfiable; moreover models restrict to
    models: the [a] variables of [v]'s ring all carry [v]'s value. *)

type t = {
  formula : Formula.t;  (** the 3SAT′ output *)
  back : Formula.assignment -> Formula.assignment;
      (** map a model of the output to a model of the input *)
}

(** [normalize f] — [f] may have clauses of any length and any occurrence
    counts; empty clauses are allowed (the output is then trivially
    unsatisfiable but still 3SAT′-shaped). *)
val normalize : Formula.t -> t

(** Parse DIMACS CNF text ("p cnf <vars> <clauses>" header, clauses as
    zero-terminated integer lists, "c" comment lines). *)
val parse_dimacs : string -> (Formula.t, string) result
