type literal = Pos of int | Neg of int
type clause = literal list
type t = { n_vars : int; clauses : clause list }

let var = function Pos v | Neg v -> v
let negate = function Pos v -> Neg v | Neg v -> Pos v

type assignment = bool array

let lit_holds a = function Pos v -> a.(v) | Neg v -> not a.(v)
let clause_holds a c = List.exists (lit_holds a) c
let satisfies a f = List.for_all (clause_holds a) f.clauses

type shape_error =
  | Clause_too_long of int
  | Occurrence_mismatch of { var : int; pos : int; neg : int }
  | Var_out_of_range of int
  | Duplicate_in_clause of int

let pp_shape_error ppf = function
  | Clause_too_long i -> Format.fprintf ppf "clause %d has more than 3 literals" i
  | Occurrence_mismatch { var; pos; neg } ->
      Format.fprintf ppf
        "variable %d occurs %d times positively and %d negatively (want 2/1)"
        var pos neg
  | Var_out_of_range v -> Format.fprintf ppf "variable %d out of range" v
  | Duplicate_in_clause i ->
      Format.fprintf ppf "clause %d mentions a variable twice" i

let check_3sat' f =
  let errors = ref [] in
  let pos = Array.make f.n_vars 0 and neg = Array.make f.n_vars 0 in
  List.iteri
    (fun i c ->
      if List.length c > 3 then errors := Clause_too_long i :: !errors;
      let vars = List.map var c in
      if List.length (List.sort_uniq compare vars) <> List.length vars then
        errors := Duplicate_in_clause i :: !errors;
      List.iter
        (fun l ->
          let v = var l in
          if v < 0 || v >= f.n_vars then errors := Var_out_of_range v :: !errors
          else
            match l with
            | Pos _ -> pos.(v) <- pos.(v) + 1
            | Neg _ -> neg.(v) <- neg.(v) + 1)
        c)
    f.clauses;
  for v = 0 to f.n_vars - 1 do
    if pos.(v) <> 2 || neg.(v) <> 1 then
      errors := Occurrence_mismatch { var = v; pos = pos.(v); neg = neg.(v) } :: !errors
  done;
  match !errors with [] -> Ok () | es -> Error (List.rev es)

let is_3sat' f = Result.is_ok (check_3sat' f)

let occurrences f j =
  let pos = ref [] and neg = ref [] in
  List.iteri
    (fun i c ->
      List.iter
        (function
          | Pos v when v = j -> pos := i :: !pos
          | Neg v when v = j -> neg := i :: !neg
          | _ -> ())
        c)
    f.clauses;
  match (List.rev !pos, !neg) with
  | [ h; k ], [ l ] -> (h, k, l)
  | _ -> invalid_arg "Formula.occurrences: not in 3SAT' shape"

let pp ppf f =
  let lit ppf = function
    | Pos v -> Format.fprintf ppf "x%d" v
    | Neg v -> Format.fprintf ppf "¬x%d" v
  in
  Format.fprintf ppf "@[<hov>%a@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ∧ ")
       (fun ppf c ->
         Format.fprintf ppf "(%a)"
           (Format.pp_print_list
              ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ∨ ")
              lit)
           c))
    f.clauses

let of_dimacs n clauses =
  {
    n_vars = n;
    clauses =
      List.map
        (List.map (fun i ->
             if i > 0 then Pos (i - 1)
             else if i < 0 then Neg (-i - 1)
             else invalid_arg "Formula.of_dimacs: zero literal"))
        clauses;
  }
