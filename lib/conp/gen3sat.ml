open Formula

let generate rng ~n_vars =
  if n_vars < 3 then invalid_arg "Gen3sat.generate: n_vars < 3";
  let tokens () =
    let a =
      Array.concat
        (List.init n_vars (fun v -> [| Pos v; Pos v; Neg v |]))
    in
    for i = Array.length a - 1 downto 1 do
      let j = Random.State.int rng (i + 1) in
      let t = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- t
    done;
    a
  in
  let rec attempt () =
    let a = tokens () in
    let clauses =
      List.init n_vars (fun i -> [ a.(3 * i); a.((3 * i) + 1); a.((3 * i) + 2) ])
    in
    let ok =
      List.for_all
        (fun c ->
          let vars = List.map var c in
          List.length (List.sort_uniq compare vars) = List.length vars)
        clauses
    in
    if ok then { n_vars; clauses } else attempt ()
  in
  attempt ()

let paper_example =
  (* (x0 + x1) . (x0 + ¬x1) . (¬x0 + x1) — the formula illustrated in
     Fig. 5 of the paper (variables renumbered from 1-based to 0-based). *)
  { n_vars = 2; clauses = [ [ Pos 0; Pos 1 ]; [ Pos 0; Neg 1 ]; [ Neg 0; Pos 1 ] ] }

let tiny_unsat =
  { n_vars = 1; clauses = [ [ Neg 0 ]; [ Pos 0 ]; [ Pos 0 ] ] }
