(** A DPLL SAT solver (unit propagation + pure-literal elimination +
    branching) — the independent ground truth for the §4 reduction. *)

(** [solve f] is [Some a] with [Formula.satisfies a f], or [None] when
    unsatisfiable. *)
val solve : Formula.t -> Formula.assignment option

val satisfiable : Formula.t -> bool

(** Brute-force model enumeration, for cross-checking the solver on tiny
    formulas (2^n). *)
val satisfiable_brute : Formula.t -> bool

(** Number of models (brute force). *)
val count_models : Formula.t -> int
