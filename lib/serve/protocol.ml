let max_line = 4096
let default_max_request = 1_048_576

type request =
  | Ping
  | Stats
  | Metrics
  | Flight
  | Trace_of of int
  | Analyze of {
      body_len : int;
      max_states : int option;
      symmetry : bool;
      deadline_ms : int option;
    }

type response =
  | Verdict of { status : int; body : string }
  | Error_line of string
  | Busy of { retry_after_ms : int }
  | Timeout
  | Pong

let one_line s =
  let s = String.map (function '\n' | '\r' -> ' ' | c -> c) s in
  let cap = max_line - 16 in
  if String.length s <= cap then s else String.sub s 0 cap

let int_of_token ~what tok =
  match int_of_string_opt tok with
  | Some n when n >= 0 -> Ok n
  | _ -> Error (Printf.sprintf "%s: expected a non-negative integer, got %S" what (one_line tok))

let parse_request line =
  match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
  | [] -> Error "empty request line"
  | magic :: rest when magic <> "ddlock/1" ->
      ignore rest;
      Error (Printf.sprintf "bad magic %S (expected ddlock/1)" (one_line magic))
  | _ :: [] ->
      Error "missing verb (expected analyze | ping | stats | metrics | flight | trace)"
  | _ :: "ping" :: [] -> Ok Ping
  | _ :: "stats" :: [] -> Ok Stats
  | _ :: "metrics" :: [] -> Ok Metrics
  | _ :: "flight" :: [] -> Ok Flight
  | _ :: "ping" :: _ | _ :: "stats" :: _ | _ :: "metrics" :: _
  | _ :: "flight" :: _ ->
      Error "ping/stats/metrics/flight take no arguments"
  | _ :: "trace" :: [ id ] -> (
      match int_of_token ~what:"trace request id" id with
      | Error _ as e -> e
      | Ok id -> Ok (Trace_of id))
  | _ :: "trace" :: _ -> Error "trace takes exactly one request id"
  | _ :: "analyze" :: [] -> Error "analyze: missing body length"
  | _ :: "analyze" :: len :: opts -> (
      match int_of_token ~what:"analyze length" len with
      | Error _ as e -> e
      | Ok body_len ->
          let rec go acc = function
            | [] -> Ok acc
            | "symmetry" :: rest ->
                let max_states, _, deadline_ms = acc in
                go (max_states, true, deadline_ms) rest
            | opt :: rest -> (
                match String.index_opt opt '=' with
                | Some i -> (
                    let k = String.sub opt 0 i in
                    let v = String.sub opt (i + 1) (String.length opt - i - 1) in
                    match k with
                    | "max-states" -> (
                        match int_of_token ~what:"max-states" v with
                        | Error _ as e -> e
                        | Ok n ->
                            let _, sym, deadline_ms = acc in
                            go (Some n, sym, deadline_ms) rest)
                    | "deadline-ms" -> (
                        match int_of_token ~what:"deadline-ms" v with
                        | Error _ as e -> e
                        | Ok n ->
                            let max_states, sym, _ = acc in
                            go (max_states, sym, Some n) rest)
                    | _ ->
                        Error
                          (Printf.sprintf "unknown option %S" (one_line k)))
                | None ->
                    Error (Printf.sprintf "unknown option %S" (one_line opt)))
          in
          (match go (None, false, None) opts with
          | Error _ as e -> e
          | Ok (max_states, symmetry, deadline_ms) ->
              Ok (Analyze { body_len; max_states; symmetry; deadline_ms })))
  | _ :: verb :: _ ->
      Error
        (Printf.sprintf
           "unknown verb %S (expected analyze | ping | stats | metrics | flight | trace)"
           (one_line verb))

let render_request_header ?max_states ?(symmetry = false) ?deadline_ms
    ~body_len () =
  let b = Buffer.create 64 in
  Buffer.add_string b (Printf.sprintf "ddlock/1 analyze %d" body_len);
  (match max_states with
  | Some n -> Buffer.add_string b (Printf.sprintf " max-states=%d" n)
  | None -> ());
  if symmetry then Buffer.add_string b " symmetry";
  (match deadline_ms with
  | Some n -> Buffer.add_string b (Printf.sprintf " deadline-ms=%d" n)
  | None -> ());
  Buffer.add_char b '\n';
  Buffer.contents b

let ping_header = "ddlock/1 ping\n"
let stats_header = "ddlock/1 stats\n"
let metrics_header = "ddlock/1 metrics\n"
let flight_header = "ddlock/1 flight\n"
let trace_header id = Printf.sprintf "ddlock/1 trace %d\n" id

type response_header =
  | Head_ok of { status : int; body_len : int }
  | Head_error of string
  | Head_busy of { retry_after_ms : int }
  | Head_timeout
  | Head_pong

let parse_response_header line =
  match String.split_on_char ' ' line with
  | "pong" :: _ -> Ok Head_pong
  | "timeout" :: _ -> Ok Head_timeout
  | "ok" :: status :: len :: _ -> (
      match (int_of_string_opt status, int_of_string_opt len) with
      | Some status, Some body_len when body_len >= 0 ->
          Ok (Head_ok { status; body_len })
      | _ -> Error (Printf.sprintf "malformed ok header %S" (one_line line)))
  | "busy" :: ms :: _ -> (
      match int_of_string_opt ms with
      | Some retry_after_ms when retry_after_ms >= 0 ->
          Ok (Head_busy { retry_after_ms })
      | _ -> Error (Printf.sprintf "malformed busy header %S" (one_line line)))
  | "error" :: _ ->
      let msg =
        if String.length line > 6 then String.sub line 6 (String.length line - 6)
        else ""
      in
      Ok (Head_error msg)
  | _ -> Error (Printf.sprintf "malformed response header %S" (one_line line))

(* Trailing [k=v] tokens appended to ok/busy/timeout header lines
   (e.g. [req=17 cache=hit]).  Older parsers — including pre-extras
   builds of this client — ignore the extra tokens, so the extras are
   backward- and forward-compatible.  [error] lines carry a free-form
   message that may itself contain '=', so they never have extras. *)
let header_extras line =
  match String.split_on_char ' ' line with
  | "error" :: _ -> []
  | toks ->
      List.filter_map
        (fun tok ->
          match String.index_opt tok '=' with
          | Some i when i > 0 ->
              Some
                ( String.sub tok 0 i,
                  String.sub tok (i + 1) (String.length tok - i - 1) )
          | _ -> None)
        toks

let render_extras = function
  | [] -> ""
  | kvs ->
      String.concat ""
        (List.map (fun (k, v) -> Printf.sprintf " %s=%s" k (one_line v)) kvs)

let render_response_header ?(extras = []) = function
  | Verdict { status; body } ->
      Printf.sprintf "ok %d %d%s\n" status (String.length body)
        (render_extras extras)
  | Error_line msg -> Printf.sprintf "error %s\n" (one_line msg)
  | Busy { retry_after_ms } ->
      Printf.sprintf "busy %d%s\n" retry_after_ms (render_extras extras)
  | Timeout -> Printf.sprintf "timeout%s\n" (render_extras extras)
  | Pong -> "pong\n"
