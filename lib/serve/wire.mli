(** Framed socket I/O shared by server and client.

    Read deadlines are enforced with [SO_RCVTIMEO] (set once per
    connection via {!set_read_timeout}); a blocked read then fails with
    [EAGAIN], which surfaces as [`Idle] (nothing read yet — the peer is
    merely quiet) or [`Slow] (a partial frame stalled — a slowloris).
    The distinction is what lets the server close idle keep-alive
    connections silently but answer a stalled frame with a one-line
    error. *)

type read_error =
  [ `Eof  (** clean close at a frame boundary *)
  | `Eof_mid  (** peer vanished inside a frame *)
  | `Idle  (** read timeout with zero bytes of the frame read *)
  | `Slow  (** read timeout inside a frame *)
  | `Too_long  (** header line exceeded {!Protocol.max_line} *)
  | `Closed  (** peer reset / descriptor error *) ]

val set_read_timeout : Unix.file_descr -> float -> unit
(** [set_read_timeout fd seconds]; [0.] disables the timeout. *)

val read_line : Unix.file_descr -> (string, read_error) result
(** One LF-terminated line, LF stripped (a trailing CR too). *)

val read_exact : Unix.file_descr -> int -> (string, read_error) result

val write_all : Unix.file_descr -> string -> (unit, [ `Closed ]) result
(** Never raises: [EPIPE]/reset surface as [Error `Closed]. *)
