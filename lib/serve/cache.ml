(* LRU: hash table to intrusive doubly-linked nodes; [first] is the
   most-recently-used end, eviction pops [last]. *)

type 'a node = {
  key : string;
  mutable value : 'a;
  mutable prev : 'a node option;  (* towards first (more recent) *)
  mutable next : 'a node option;  (* towards last (less recent) *)
}

type 'a t = {
  capacity : int;
  tbl : (string, 'a node) Hashtbl.t;
  mutable first : 'a node option;
  mutable last : 'a node option;
  mutable hits : int;
  mutable misses : int;
  lock : Mutex.t;
}

let create ~capacity =
  {
    capacity;
    tbl = Hashtbl.create 64;
    first = None;
    last = None;
    hits = 0;
    misses = 0;
    lock = Mutex.create ();
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let unlink t n =
  (match n.prev with
  | Some p -> p.next <- n.next
  | None -> t.first <- n.next);
  (match n.next with
  | Some s -> s.prev <- n.prev
  | None -> t.last <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.first;
  n.prev <- None;
  (match t.first with Some f -> f.prev <- Some n | None -> t.last <- Some n);
  t.first <- Some n

let find t key =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.tbl key with
  | None ->
      t.misses <- t.misses + 1;
      None
  | Some n ->
      t.hits <- t.hits + 1;
      unlink t n;
      push_front t n;
      Some n.value

let add t key value =
  if t.capacity > 0 then
    locked t @@ fun () ->
    (match Hashtbl.find_opt t.tbl key with
    | Some n ->
        n.value <- value;
        unlink t n;
        push_front t n
    | None ->
        let n = { key; value; prev = None; next = None } in
        Hashtbl.replace t.tbl key n;
        push_front t n);
    if Hashtbl.length t.tbl > t.capacity then
      match t.last with
      | Some n ->
          unlink t n;
          Hashtbl.remove t.tbl n.key
      | None -> assert false

let length t = locked t @@ fun () -> Hashtbl.length t.tbl
let hits t = locked t @@ fun () -> t.hits
let misses t = locked t @@ fun () -> t.misses
