type read_error =
  [ `Eof | `Eof_mid | `Idle | `Slow | `Too_long | `Closed ]

let set_read_timeout fd seconds =
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO seconds

(* Header lines are read a byte at a time so we never consume bytes of
   the body that follows; lines are tiny (≤ Protocol.max_line) and the
   protocol is one line per analysis, so the syscall count is
   irrelevant next to the analysis itself. *)
let read_line fd =
  let b = Buffer.create 128 in
  let one = Bytes.create 1 in
  let rec go () =
    if Buffer.length b > Protocol.max_line then Error `Too_long
    else
      match Unix.read fd one 0 1 with
      | 0 -> if Buffer.length b = 0 then Error `Eof else Error `Eof_mid
      | _ -> (
          match Bytes.get one 0 with
          | '\n' ->
              let s = Buffer.contents b in
              let n = String.length s in
              Ok (if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s)
          | c ->
              Buffer.add_char b c;
              go ())
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
          if Buffer.length b = 0 then Error `Idle else Error `Slow
      | exception Unix.Unix_error (EINTR, _, _) -> go ()
      | exception Unix.Unix_error (_, _, _) -> Error `Closed
  in
  go ()

let read_exact fd len =
  let buf = Bytes.create len in
  let rec go off =
    if off = len then Ok (Bytes.unsafe_to_string buf)
    else
      match Unix.read fd buf off (len - off) with
      | 0 -> Error `Eof_mid
      | n -> go (off + n)
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
          Error `Slow
      | exception Unix.Unix_error (EINTR, _, _) -> go off
      | exception Unix.Unix_error (_, _, _) -> Error `Closed
  in
  go 0

let write_all fd s =
  let len = String.length s in
  let rec go off =
    if off = len then Ok ()
    else
      match Unix.write_substring fd s off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (EINTR, _, _) -> go off
      | exception Unix.Unix_error (_, _, _) -> Error `Closed
  in
  go 0
