module Cell = struct
  type 'a t = {
    m : Mutex.t;
    c : Condition.t;
    mutable v : 'a option;
  }

  let create () = { m = Mutex.create (); c = Condition.create (); v = None }

  let fill t v =
    Mutex.lock t.m;
    (match t.v with
    | None ->
        t.v <- Some v;
        Condition.broadcast t.c
    | Some _ -> ());
    Mutex.unlock t.m

  let wait t =
    Mutex.lock t.m;
    let rec go () =
      match t.v with
      | Some v ->
          Mutex.unlock t.m;
          v
      | None ->
          Condition.wait t.c t.m;
          go ()
    in
    go ()
end

type t = {
  lock : Mutex.t;
  nonempty : Condition.t;
  queue : (unit -> unit) Queue.t;
  queue_cap : int;
  mutable stopping : bool;
  mutable joined : bool;
  mutable domains : unit Domain.t list;
}

(* Workers drain the queue even while [stopping] — graceful shutdown
   runs every accepted job — and exit only on (empty ∧ stopping). *)
let rec worker t =
  Mutex.lock t.lock;
  while Queue.is_empty t.queue && not t.stopping do
    Condition.wait t.nonempty t.lock
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.lock
  else begin
    let job = Queue.pop t.queue in
    Mutex.unlock t.lock;
    (try job () with _ -> ());
    worker t
  end

let create ~workers ~queue_cap =
  let t =
    {
      lock = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      queue_cap = max 0 queue_cap;
      stopping = false;
      joined = false;
      domains = [];
    }
  in
  t.domains <-
    List.init (max 1 workers) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let submit t job =
  Mutex.lock t.lock;
  let accepted =
    (not t.stopping) && Queue.length t.queue < t.queue_cap
  in
  if accepted then begin
    Queue.push job t.queue;
    Condition.signal t.nonempty
  end;
  Mutex.unlock t.lock;
  accepted

let queue_length t =
  Mutex.lock t.lock;
  let n = Queue.length t.queue in
  Mutex.unlock t.lock;
  n

let shutdown t =
  Mutex.lock t.lock;
  t.stopping <- true;
  let join = not t.joined in
  t.joined <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.lock;
  if join then List.iter Domain.join t.domains
