(** Wire protocol of the analysis daemon.

    Requests and responses are a single header line (LF-terminated,
    at most {!max_line} bytes) optionally followed by a length-prefixed
    body whose byte count appears on the header line — no quoting, no
    escaping, trivially parseable from any language:

    {v
    client:  ddlock/1 analyze <len> [max-states=N] [symmetry] [deadline-ms=N]
             <len bytes of system source>
    client:  ddlock/1 ping
    client:  ddlock/1 stats

    server:  ok <status> <len>        followed by <len> bytes of verdict
    server:  error <one-line message>
    server:  busy <retry-after-ms>
    server:  timeout
    server:  pong
    v}

    [ok]'s [<status>] is the exit status [ddlock analyze] would have
    used (0 = safe ∧ deadlock-free, 1 otherwise) and the body is the
    exact bytes it would have printed ({!Ddlock.Analysis.render_full}).
    A server answers requests on one connection sequentially until the
    client closes; after any [error] reply the server closes the
    connection (the stream position is no longer trustworthy). *)

val max_line : int
(** Cap on the header line length (bytes, excluding the LF).  Longer
    lines are a protocol error: the peer is malformed or malicious. *)

val default_max_request : int
(** Default cap on an [analyze] body (1 MiB). *)

type request =
  | Ping
  | Stats
  | Analyze of {
      body_len : int;
      max_states : int option;  (** [None] = server default *)
      symmetry : bool;
      deadline_ms : int option;  (** [None] = server default *)
    }

type response =
  | Verdict of { status : int; body : string }  (** [ok] *)
  | Error_line of string
  | Busy of { retry_after_ms : int }
  | Timeout
  | Pong

val parse_request : string -> (request, string) result
(** Parse a request header line (without the LF).  Errors are one-line,
    human-readable, and safe to echo back in an [error] reply. *)

val render_request_header :
  ?max_states:int -> ?symmetry:bool -> ?deadline_ms:int -> body_len:int ->
  unit -> string
(** The [analyze] header line (LF included) for a [body_len]-byte body. *)

val ping_header : string

val stats_header : string

type response_header =
  | Head_ok of { status : int; body_len : int }
  | Head_error of string
  | Head_busy of { retry_after_ms : int }
  | Head_timeout
  | Head_pong

val parse_response_header : string -> (response_header, string) result
(** Parse a response header line (without the LF); [Head_ok] tells the
    caller how many body bytes follow. *)

val render_response_header : response -> string
(** The header line (LF included) of [response]; for {!Verdict} the body
    must be written separately. *)

val one_line : string -> string
(** Sanitize an arbitrary message for embedding in an [error] reply:
    newlines become spaces, the result is truncated to fit the header
    line. *)
