(** Wire protocol of the analysis daemon.

    Requests and responses are a single header line (LF-terminated,
    at most {!max_line} bytes) optionally followed by a length-prefixed
    body whose byte count appears on the header line — no quoting, no
    escaping, trivially parseable from any language:

    {v
    client:  ddlock/1 analyze <len> [max-states=N] [symmetry] [deadline-ms=N]
             <len bytes of system source>
    client:  ddlock/1 ping
    client:  ddlock/1 stats
    client:  ddlock/1 metrics
    client:  ddlock/1 flight
    client:  ddlock/1 trace <request-id>

    server:  ok <status> <len> [k=v]...   followed by <len> bytes of body
    server:  error <one-line message>
    server:  busy <retry-after-ms> [k=v]...
    server:  timeout [k=v]...
    server:  pong
    v}

    [ok]'s [<status>] is the exit status [ddlock analyze] would have
    used (0 = safe ∧ deadlock-free, 1 otherwise) and the body is the
    exact bytes it would have printed ({!Ddlock.Analysis.render_full}).
    A server answers requests on one connection sequentially until the
    client closes; after any [error] reply the server closes the
    connection (the stream position is no longer trustworthy).

    [metrics] answers [ok 0 <len>] with a Prometheus text-exposition
    body; [flight] answers [ok 0 <len>] with the flight-recorder ring as
    a JSON document; [trace <id>] answers [ok 0 <len>] with the retained
    span tree of request [id] as Chrome trace-event JSON (or [error] if
    that request is unknown or has aged out).  Servers may append
    [k=v] extras to [ok]/[busy]/[timeout] header lines — e.g.
    [req=<id> cache=hit|miss] — which old clients skip by construction
    ({!parse_response_header} ignores trailing tokens). *)

val max_line : int
(** Cap on the header line length (bytes, excluding the LF).  Longer
    lines are a protocol error: the peer is malformed or malicious. *)

val default_max_request : int
(** Default cap on an [analyze] body (1 MiB). *)

type request =
  | Ping
  | Stats
  | Metrics
  | Flight
  | Trace_of of int  (** [trace <request-id>] *)
  | Analyze of {
      body_len : int;
      max_states : int option;  (** [None] = server default *)
      symmetry : bool;
      deadline_ms : int option;  (** [None] = server default *)
    }

type response =
  | Verdict of { status : int; body : string }  (** [ok] *)
  | Error_line of string
  | Busy of { retry_after_ms : int }
  | Timeout
  | Pong

val parse_request : string -> (request, string) result
(** Parse a request header line (without the LF).  Errors are one-line,
    human-readable, and safe to echo back in an [error] reply. *)

val render_request_header :
  ?max_states:int -> ?symmetry:bool -> ?deadline_ms:int -> body_len:int ->
  unit -> string
(** The [analyze] header line (LF included) for a [body_len]-byte body. *)

val ping_header : string

val stats_header : string

val metrics_header : string

val flight_header : string

val trace_header : int -> string
(** The [trace <id>] header line (LF included). *)

type response_header =
  | Head_ok of { status : int; body_len : int }
  | Head_error of string
  | Head_busy of { retry_after_ms : int }
  | Head_timeout
  | Head_pong

val parse_response_header : string -> (response_header, string) result
(** Parse a response header line (without the LF); [Head_ok] tells the
    caller how many body bytes follow.  Trailing extras are ignored —
    retrieve them from the raw line with {!header_extras}. *)

val header_extras : string -> (string * string) list
(** The trailing [k=v] tokens of a raw ok/busy/timeout response header
    line, in order ([[]] for [error] lines, whose free-form message may
    itself contain ['=']). *)

val render_response_header : ?extras:(string * string) list -> response ->
  string
(** The header line (LF included) of [response]; for {!Verdict} the body
    must be written separately.  [extras] are appended as [k=v] tokens
    (values sanitized with {!one_line}) on ok/busy/timeout lines and
    ignored on the others. *)

val one_line : string -> string
(** Sanitize an arbitrary message for embedding in an [error] reply:
    newlines become spaces, the result is truncated to fit the header
    line. *)
