(** Blocking client for the analysis daemon (used by [ddlock request],
    the chaos battery and the serve benchmark). *)

type reply =
  | Verdict of { status : int; body : string }
  | Busy of { retry_after_ms : int }
  | Timeout
  | Server_error of string
  | Pong

(** Errors raised before a well-formed reply arrives. *)
type error =
  | Connect of string  (** socket missing / refused / not a socket *)
  | Io of string  (** connection died or stalled mid-reply *)
  | Malformed of string  (** the peer is not speaking the protocol *)

val pp_error : Format.formatter -> error -> unit

val analyze :
  socket:string ->
  ?max_states:int ->
  ?symmetry:bool ->
  ?deadline_ms:int ->
  string ->
  (reply, error) result
(** [analyze ~socket source] submits the system source (the
    [ddlock analyze] input format) and waits for the reply.  One
    connection per call. *)

val ping : socket:string -> (reply, error) result

val stats : socket:string -> (reply, error) result
(** The daemon's {!Server.stats_json} counters as a {!Verdict} body. *)

val raw : socket:string -> string -> (string, error) result
(** Send [bytes] verbatim and return everything the server sends back
    until it closes the connection — the chaos battery's hammer for
    malformed frames.  A read timeout (server kept the connection open)
    also returns the bytes received so far. *)
