(** Blocking client for the analysis daemon (used by [ddlock request],
    the chaos battery and the serve benchmark). *)

type reply =
  | Verdict of { status : int; body : string }
  | Busy of { retry_after_ms : int }
  | Timeout
  | Server_error of string
  | Pong

(** Errors raised before a well-formed reply arrives. *)
type error =
  | Connect of string  (** socket missing / refused / not a socket *)
  | Io of string  (** connection died or stalled mid-reply *)
  | Malformed of string  (** the peer is not speaking the protocol *)
  | Refused of string
      (** well-formed [error] reply to a {!metrics} / {!flight} /
          {!trace} call (e.g. an unknown trace id) *)

val pp_error : Format.formatter -> error -> unit

type meta = {
  req_id : int option;  (** the server's [req=<id>] header extra *)
  cached : bool option;  (** [cache=hit|miss], analyze replies only *)
}

val no_meta : meta

val analyze :
  socket:string ->
  ?max_states:int ->
  ?symmetry:bool ->
  ?deadline_ms:int ->
  string ->
  (reply, error) result
(** [analyze ~socket source] submits the system source (the
    [ddlock analyze] input format) and waits for the reply.  One
    connection per call. *)

val analyze_ex :
  socket:string ->
  ?max_states:int ->
  ?symmetry:bool ->
  ?deadline_ms:int ->
  string ->
  (reply * meta, error) result
(** {!analyze}, additionally returning the reply-header extras: the
    server-assigned request id (the handle for a follow-up [trace]
    call) and whether the verdict came from the cache. *)

val ping : socket:string -> (reply, error) result

val stats : socket:string -> (reply, error) result
(** The daemon's {!Server.stats_json} counters as a {!Verdict} body. *)

val metrics : socket:string -> (string, error) result
(** The daemon's Prometheus text exposition
    ({!Server.metrics_text}). *)

val flight : socket:string -> (string, error) result
(** The daemon's flight-recorder JSON ({!Server.flight_json}). *)

val trace : socket:string -> int -> (string, error) result
(** [trace ~socket id] fetches request [id]'s span tree as Chrome
    trace-event JSON; {!Refused} when the id is unknown, was not
    traced, or has aged out of the daemon's rings. *)

val raw : socket:string -> string -> (string, error) result
(** Send [bytes] verbatim and return everything the server sends back
    until it closes the connection — the chaos battery's hammer for
    malformed frames.  A read timeout (server kept the connection open)
    also returns the bytes received so far. *)
