open Ddlock

type config = {
  socket_path : string;
  workers : int;
  queue_cap : int;
  cache_cap : int;
  max_request_bytes : int;
  default_max_states : int option;
  default_deadline_ms : int option;
  jobs : int;
  fast_under_pressure : bool;
      (* use the relaxed work-stealing engine for deadlined multi-domain
         requests: same rendered bytes (witnesses re-canonicalize), more
         headroom before the deadline *)
  idle_timeout_ms : int;
  busy_retry_ms : int;
  flight_cap : int;
  trace_cap : int;
  slow_ms : int;
}

let default_config ~socket_path =
  {
    socket_path;
    workers = 2;
    queue_cap = 16;
    cache_cap = 128;
    max_request_bytes = Protocol.default_max_request;
    default_max_states = None;
    default_deadline_ms = None;
    jobs = 1;
    fast_under_pressure = true;
    idle_timeout_ms = 5_000;
    busy_retry_ms = 100;
    flight_cap = 256;
    trace_cap = 64;
    slow_ms = 250;
  }

type counters = {
  received : int Atomic.t;
  verdicts : int Atomic.t;
  errors : int Atomic.t;
  busy : int Atomic.t;
  timeouts : int Atomic.t;
  connections : int Atomic.t;
}

(* One completed request, as retained by the flight recorder. *)
type flight_entry = {
  f_id : int;
  f_verb : string;
  f_key : string;  (* verdict-cache key digest, "" for non-analyze *)
  f_params : string;  (* rendered analyze options, "" when none *)
  f_lat_ns : int;
  f_status : int;  (* [ok] status, -1 when the reply carried none *)
  f_outcome : string;  (* verdict | error | busy | timeout | ok | pong *)
  f_cached : bool;
}

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  pool : Pool.t;
  cache : (int * string) Cache.t;  (* key -> (status, rendered verdict) *)
  stop : bool Atomic.t;
  c : counters;
  rid : int Atomic.t;  (* request-id source (ids start at 1) *)
  inflight : int Atomic.t;
  flight : flight_entry Obs.Ring.t;
  traces : (int * Obs.Trace.event list) Obs.Ring.t;
      (* span trees of the last [trace_cap] traced requests *)
  slow : (flight_entry * Obs.Trace.event list) Obs.Ring.t;
      (* requests over [slow_ms] or timed out, with their span trees *)
  conn_lock : Mutex.t;
  conn_done : Condition.t;
  conns : (Unix.file_descr, unit) Hashtbl.t;  (* live connections *)
  mutable accept_thread : Thread.t option;
}

(* Obs-side mirrors of the counters, so `ddlock serve --stats` folds the
   daemon into the standard telemetry summary. *)
let m_requests = Obs.Metrics.Counter.make "serve.requests"
let m_verdicts = Obs.Metrics.Counter.make "serve.verdicts"
let m_errors = Obs.Metrics.Counter.make "serve.errors"
let m_busy = Obs.Metrics.Counter.make "serve.busy"
let m_timeouts = Obs.Metrics.Counter.make "serve.timeouts"
let m_cache_hits = Obs.Metrics.Counter.make "serve.cache_hits"
let m_cache_misses = Obs.Metrics.Counter.make "serve.cache_misses"
let m_request_ns = Obs.Metrics.Histogram.make "serve.request_ns"

let stats_json t =
  Printf.sprintf
    {|{"received": %d, "verdicts": %d, "errors": %d, "busy": %d, "timeouts": %d, "cache_hits": %d, "cache_misses": %d, "cache_entries": %d, "queue_length": %d, "connections": %d, "workers": %d}|}
    (Atomic.get t.c.received) (Atomic.get t.c.verdicts)
    (Atomic.get t.c.errors) (Atomic.get t.c.busy)
    (Atomic.get t.c.timeouts) (Cache.hits t.cache) (Cache.misses t.cache)
    (Cache.length t.cache)
    (Pool.queue_length t.pool)
    (Atomic.get t.c.connections) t.cfg.workers

(* ------------------------- metrics exposition ---------------------- *)

(* The [daemon_*] section is synthesized from the server's own atomics
   at render time, so it is populated (and correct) whether or not the
   {!Obs.Control} switch is on — [ddlock top] must work against a
   production daemon that is not tracing.  The request-latency
   histogram is recorded through the gate-independent
   [Histogram.record] for the same reason.  The obs registry is
   rendered after it under a [ddlock_] prefix (distinct names, so the
   two sections cannot collide even though [serve.*] mirrors overlap
   semantically). *)
let metrics_text t =
  let snap = Obs.Metrics.snapshot () in
  let latency =
    match List.assoc_opt "serve.request_ns" snap with
    | Some (Obs.Metrics.Hist h) -> h
    | _ -> { Obs.Metrics.count = 0; sum = 0; buckets = [] }
  in
  let c n = Obs.Metrics.Counter n and g n = Obs.Metrics.Gauge n in
  let daemon =
    [
      ("daemon_requests_total", c (Atomic.get t.c.received));
      ("daemon_verdicts_total", c (Atomic.get t.c.verdicts));
      ("daemon_errors_total", c (Atomic.get t.c.errors));
      ("daemon_busy_total", c (Atomic.get t.c.busy));
      ("daemon_timeouts_total", c (Atomic.get t.c.timeouts));
      ("daemon_connections_total", c (Atomic.get t.c.connections));
      ("daemon_cache_hits_total", c (Cache.hits t.cache));
      ("daemon_cache_misses_total", c (Cache.misses t.cache));
      ("daemon_cache_entries", g (Cache.length t.cache));
      ("daemon_queue_depth", g (Pool.queue_length t.pool));
      ("daemon_inflight", g (Atomic.get t.inflight));
      ("daemon_workers", g t.cfg.workers);
      ("daemon_flight_pushed_total", c (Obs.Ring.pushed t.flight));
      ("daemon_request_ns", Obs.Metrics.Hist latency);
    ]
  in
  Obs.Metrics.render_prometheus daemon
  ^ Obs.Metrics.render_prometheus
      (List.map (fun (name, v) -> ("ddlock_" ^ name, v)) snap)

(* --------------------------- flight recorder ----------------------- *)

let flight_entry_json e =
  Printf.sprintf
    {|{"id": %d, "verb": "%s", "key": "%s", "params": "%s", "lat_ns": %d, "status": %d, "outcome": "%s", "cached": %b}|}
    e.f_id (Obs.Json.escape e.f_verb) (Obs.Json.escape e.f_key)
    (Obs.Json.escape e.f_params) e.f_lat_ns e.f_status
    (Obs.Json.escape e.f_outcome) e.f_cached

let flight_json t =
  let entries = Obs.Ring.to_list t.flight in
  let slow = Obs.Ring.to_list t.slow in
  Printf.sprintf
    {|{"pushed": %d, "capacity": %d, "entries": [%s], "slow": [%s]}|}
    (Obs.Ring.pushed t.flight)
    (Obs.Ring.capacity t.flight)
    (String.concat ", " (List.map flight_entry_json entries))
    (String.concat ", "
       (List.map
          (fun (e, evs) ->
            Printf.sprintf {|{"entry": %s, "events": %d}|}
              (flight_entry_json e) (List.length evs))
          slow))

let trace_events t id =
  match Obs.Ring.find t.traces (fun (i, _) -> i = id) with
  | Some (_, evs) -> Some evs
  | None -> (
      match Obs.Ring.find t.slow (fun (e, _) -> e.f_id = id) with
      | Some (_, evs) -> Some evs
      | None -> None)

(* Retire a completed request into the recorder: flight entry always;
   span tree pulled out of the shared trace buffer (keeping it bounded)
   whenever tracing produced one, retained twice for slow/timed-out
   requests so a burst of fast requests cannot evict the interesting
   tree before anyone asks for it. *)
let retire t entry =
  Obs.Ring.push t.flight entry;
  let evs = Obs.Trace.take_request entry.f_id in
  if evs <> [] then begin
    Obs.Ring.push t.traces (entry.f_id, evs);
    if
      entry.f_outcome = "timeout"
      || entry.f_lat_ns > t.cfg.slow_ms * 1_000_000
    then Obs.Ring.push t.slow (entry, evs)
  end

let flight_dump t oc =
  output_string oc (flight_json t);
  output_char oc '\n';
  flush oc

(* ------------------------- request handling ------------------------ *)

let cache_key ~max_states ~symmetry sys =
  let salt =
    String.concat "\x00"
      [
        Sched.Canon.system_key sys;
        (match max_states with None -> "-" | Some n -> string_of_int n);
        (if symmetry then "s" else "p");
      ]
  in
  Digest.to_hex (Digest.string salt)

type job_result =
  | Done of int * string  (* status, rendered verdict *)
  | Timed_out
  | Crashed of string

let run_analysis t ~max_states ~symmetry ~deadline_ns sys =
  try
    (* Deadlined multi-domain requests default to the relaxed engine:
       rendered bytes are unchanged (fast verdicts are equivalent and
       witnesses re-canonicalize, see {!Analysis.deadlock_free}), but
       the search races the deadline with real parallel speedup. *)
    let fast =
      t.cfg.fast_under_pressure && t.cfg.jobs > 1 && deadline_ns <> None
    in
    let run () =
      let text, status, _report =
        Analysis.render_full ?max_states ~jobs:t.cfg.jobs ~symmetry ~fast sys
      in
      Done (status, text)
    in
    match deadline_ns with
    | Some d when Obs.Clock.now_ns () > d ->
        Timed_out (* expired while queued: don't even start *)
    | Some d -> (
        try Obs.Cancel.with_poll (fun () -> Obs.Clock.now_ns () > d) run
        with Obs.Cancel.Cancelled -> Timed_out)
    | None -> run ()
  with exn -> Crashed (Printexc.to_string exn)

(* Mutable per-request scratch: the verb handlers fill it in as they
   learn things, and the completed record becomes the flight entry. *)
type req_info = {
  mutable i_verb : string;
  mutable i_key : string;
  mutable i_params : string;
  mutable i_status : int;
  mutable i_outcome : string;
  mutable i_cached : bool;
}

(* Per-request outcome: [`Continue] keeps the connection open for the
   next request, [`Close] ends it (error replies and dead peers). *)
let handle_analyze t fd ~req ~info ~max_states ~symmetry ~deadline_ms body =
  let reply ?(extras = []) r =
    let head =
      Protocol.render_response_header
        ~extras:(("req", string_of_int req) :: extras)
        r
    in
    let payload =
      match r with Protocol.Verdict { body; _ } -> head ^ body | _ -> head
    in
    match Wire.write_all fd payload with Ok () -> `Continue | Error `Closed -> `Close
  in
  let error msg =
    Atomic.incr t.c.errors;
    Obs.Metrics.Counter.incr m_errors;
    info.i_outcome <- "error";
    ignore (reply (Protocol.Error_line msg));
    `Close
  in
  match
    Obs.Trace.span "serve.parse" ~req @@ fun () -> Model.Parser.parse body
  with
  | Error e ->
      error
        ("parse: "
        ^ Protocol.one_line (Format.asprintf "%a" Model.Parser.pp_error e))
  | Ok r -> (
      let sys = Model.Parser.system_of_result r in
      let max_states =
        match max_states with Some _ as s -> s | None -> t.cfg.default_max_states
      in
      let deadline_ms =
        match deadline_ms with
        | Some _ as d -> d
        | None -> t.cfg.default_deadline_ms
      in
      let key = cache_key ~max_states ~symmetry sys in
      info.i_key <- key;
      info.i_params <-
        String.concat " "
          (List.concat
             [
               (match max_states with
               | Some n -> [ Printf.sprintf "max-states=%d" n ]
               | None -> []);
               (if symmetry then [ "symmetry" ] else []);
               (match deadline_ms with
               | Some n -> [ Printf.sprintf "deadline-ms=%d" n ]
               | None -> []);
             ]);
      match
        Obs.Trace.span "serve.cache" ~req @@ fun () -> Cache.find t.cache key
      with
      | Some (status, text) ->
          Obs.Metrics.Counter.incr m_cache_hits;
          Atomic.incr t.c.verdicts;
          Obs.Metrics.Counter.incr m_verdicts;
          info.i_status <- status;
          info.i_outcome <- "verdict";
          info.i_cached <- true;
          reply ~extras:[ ("cache", "hit") ]
            (Protocol.Verdict { status; body = text })
      | None -> (
          Obs.Metrics.Counter.incr m_cache_misses;
          let deadline_ns =
            Option.map
              (fun ms -> Obs.Clock.now_ns () + (ms * 1_000_000))
              deadline_ms
          in
          let cell = Pool.Cell.create () in
          let job () =
            (* The worker domain serves one request at a time, so the
               ambient slot is trustworthy there — and it propagates
               into the engines' child domains (see {!Obs.Request}). *)
            Obs.Request.with_id req @@ fun () ->
            Pool.Cell.fill cell
              (Obs.Trace.span "serve.analysis" (fun () ->
                   run_analysis t ~max_states ~symmetry ~deadline_ns sys))
          in
          if not (Pool.submit t.pool job) then begin
            Atomic.incr t.c.busy;
            Obs.Metrics.Counter.incr m_busy;
            info.i_outcome <- "busy";
            reply ~extras:[ ("cache", "miss") ]
              (Protocol.Busy { retry_after_ms = t.cfg.busy_retry_ms })
          end
          else
            match
              Obs.Trace.span "serve.wait" ~req @@ fun () -> Pool.Cell.wait cell
            with
            | Done (status, text) ->
                Cache.add t.cache key (status, text);
                Atomic.incr t.c.verdicts;
                Obs.Metrics.Counter.incr m_verdicts;
                info.i_status <- status;
                info.i_outcome <- "verdict";
                reply ~extras:[ ("cache", "miss") ]
                  (Protocol.Verdict { status; body = text })
            | Timed_out ->
                Atomic.incr t.c.timeouts;
                Obs.Metrics.Counter.incr m_timeouts;
                info.i_outcome <- "timeout";
                reply ~extras:[ ("cache", "miss") ] Protocol.Timeout
            | Crashed msg ->
                error ("analysis failed: " ^ Protocol.one_line msg)))

let handle_request t fd line =
  Atomic.incr t.c.received;
  Obs.Metrics.Counter.incr m_requests;
  let req = 1 + Atomic.fetch_and_add t.rid 1 in
  Atomic.incr t.inflight;
  let info =
    {
      i_verb = "?";
      i_key = "";
      i_params = "";
      i_status = -1;
      i_outcome = "error";
      i_cached = false;
    }
  in
  let t0 = Obs.Clock.now_ns () in
  let reply r =
    let head =
      Protocol.render_response_header
        ~extras:[ ("req", string_of_int req) ]
        r
    in
    let payload =
      match r with Protocol.Verdict { body; _ } -> head ^ body | _ -> head
    in
    match Wire.write_all fd payload with Ok () -> `Continue | Error `Closed -> `Close
  in
  let error msg =
    Atomic.incr t.c.errors;
    Obs.Metrics.Counter.incr m_errors;
    info.i_outcome <- "error";
    ignore (reply (Protocol.Error_line msg));
    `Close
  in
  let ok_body verb body =
    info.i_verb <- verb;
    info.i_status <- 0;
    info.i_outcome <- "ok";
    reply (Protocol.Verdict { status = 0; body })
  in
  let outcome =
    Fun.protect ~finally:(fun () -> Atomic.decr t.inflight) @@ fun () ->
    (* Connection threads are systhreads multiplexed on domain 0, so the
       domain-local ambient slot is not trustworthy here: every span on
       this thread names its request explicitly. *)
    Obs.Trace.span "serve.request" ~req @@ fun () ->
    match Protocol.parse_request line with
    | Error msg -> error msg
    | Ok Protocol.Ping ->
        info.i_verb <- "ping";
        info.i_outcome <- "pong";
        reply Protocol.Pong
    | Ok Protocol.Stats -> ok_body "stats" (stats_json t ^ "\n")
    | Ok Protocol.Metrics -> ok_body "metrics" (metrics_text t)
    | Ok Protocol.Flight -> ok_body "flight" (flight_json t ^ "\n")
    | Ok (Protocol.Trace_of id) -> (
        info.i_verb <- "trace";
        match trace_events t id with
        | Some evs -> ok_body "trace" (Obs.Trace.chrome_json evs)
        | None ->
            error
              (Printf.sprintf
                 "trace: request %d unknown (not traced, or aged out)" id))
    | Ok (Protocol.Analyze { body_len; max_states; symmetry; deadline_ms })
      -> (
        info.i_verb <- "analyze";
        if body_len > t.cfg.max_request_bytes then
          error
            (Printf.sprintf "request too large (%d > %d bytes)" body_len
               t.cfg.max_request_bytes)
        else
          match Wire.read_exact fd body_len with
          | Error `Slow -> error "slow client: body read timed out"
          | Error _ -> `Close (* peer vanished mid-body *)
          | Ok body ->
              handle_analyze t fd ~req ~info ~max_states ~symmetry
                ~deadline_ms body)
  in
  let lat_ns = Obs.Clock.now_ns () - t0 in
  Obs.Metrics.Histogram.record m_request_ns lat_ns;
  retire t
    {
      f_id = req;
      f_verb = info.i_verb;
      f_key = info.i_key;
      f_params = info.i_params;
      f_lat_ns = lat_ns;
      f_status = info.i_status;
      f_outcome = info.i_outcome;
      f_cached = info.i_cached;
    };
  outcome

let handle_connection t fd =
  Wire.set_read_timeout fd (float_of_int t.cfg.idle_timeout_ms /. 1000.);
  let rec loop () =
    if Atomic.get t.stop then ()
    else
      match Wire.read_line fd with
      | Error (`Eof | `Idle | `Eof_mid | `Closed) -> ()
      | Error `Slow ->
          Atomic.incr t.c.errors;
          Obs.Metrics.Counter.incr m_errors;
          ignore
            (Wire.write_all fd
               (Protocol.render_response_header
                  (Protocol.Error_line "slow client: header read timed out")))
      | Error `Too_long ->
          Atomic.incr t.c.errors;
          Obs.Metrics.Counter.incr m_errors;
          ignore
            (Wire.write_all fd
               (Protocol.render_response_header
                  (Protocol.Error_line
                     (Printf.sprintf "header line exceeds %d bytes"
                        Protocol.max_line))))
      | Ok line -> ( match handle_request t fd line with
          | `Continue -> loop ()
          | `Close -> ())
  in
  loop ()

(* ------------------------------ lifecycle -------------------------- *)

let claim_socket path =
  match Unix.lstat path with
  | exception Unix.Unix_error (ENOENT, _, _) -> ()
  | { Unix.st_kind = S_SOCK; _ } ->
      (* Probe: a connectable socket means a live daemon — refuse; a
         refused connection means a stale file — reclaim it. *)
      let probe = Unix.socket PF_UNIX SOCK_STREAM 0 in
      let alive =
        Fun.protect
          ~finally:(fun () -> try Unix.close probe with _ -> ())
          (fun () ->
            try
              Unix.connect probe (ADDR_UNIX path);
              true
            with Unix.Unix_error ((ECONNREFUSED | ENOENT), _, _) -> false)
      in
      if alive then
        failwith (path ^ ": a daemon is already serving on this socket")
      else Unix.unlink path
  | _ -> failwith (path ^ ": exists and is not a socket")

let register_conn t fd =
  Mutex.lock t.conn_lock;
  Hashtbl.replace t.conns fd ();
  Mutex.unlock t.conn_lock

let unregister_conn t fd =
  Mutex.lock t.conn_lock;
  Hashtbl.remove t.conns fd;
  Condition.broadcast t.conn_done;
  Mutex.unlock t.conn_lock

let accept_loop t =
  let rec go () =
    if Atomic.get t.stop then ()
    else
      match Unix.select [ t.listen_fd ] [] [] 0.2 with
      | exception Unix.Unix_error (EINTR, _, _) -> go ()
      | [], _, _ -> go ()
      | _ -> (
          match Unix.accept ~cloexec:true t.listen_fd with
          | exception
              Unix.Unix_error
                ((EAGAIN | EWOULDBLOCK | EINTR | ECONNABORTED), _, _) ->
              go ()
          | fd, _ ->
              Atomic.incr t.c.connections;
              register_conn t fd;
              ignore
                (Thread.create
                   (fun () ->
                     Fun.protect
                       ~finally:(fun () ->
                         (try Unix.close fd with Unix.Unix_error _ -> ());
                         unregister_conn t fd)
                       (fun () ->
                         try handle_connection t fd with _ -> ()))
                   ());
              go ())
  in
  go ()

let start cfg =
  let cfg = { cfg with workers = max 1 cfg.workers; jobs = max 1 cfg.jobs } in
  claim_socket cfg.socket_path;
  let listen_fd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
  (try
     Unix.bind listen_fd (ADDR_UNIX cfg.socket_path);
     Unix.listen listen_fd 64
   with e ->
     (try Unix.close listen_fd with _ -> ());
     raise e);
  let t =
    {
      cfg;
      listen_fd;
      pool = Pool.create ~workers:cfg.workers ~queue_cap:cfg.queue_cap;
      cache = Cache.create ~capacity:cfg.cache_cap;
      stop = Atomic.make false;
      c =
        {
          received = Atomic.make 0;
          verdicts = Atomic.make 0;
          errors = Atomic.make 0;
          busy = Atomic.make 0;
          timeouts = Atomic.make 0;
          connections = Atomic.make 0;
        };
      rid = Atomic.make 0;
      inflight = Atomic.make 0;
      flight = Obs.Ring.create cfg.flight_cap;
      traces = Obs.Ring.create cfg.trace_cap;
      slow = Obs.Ring.create cfg.trace_cap;
      conn_lock = Mutex.create ();
      conn_done = Condition.create ();
      conns = Hashtbl.create 16;
      accept_thread = None;
    }
  in
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  t

let request_stop t = Atomic.set t.stop true

let wait t =
  (match t.accept_thread with Some th -> Thread.join th | None -> ());
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ -> ());
  (* Nudge idle keep-alive connections: shutting down the read side
     makes their blocked header read return EOF, while in-flight
     requests keep their write side and still deliver their reply. *)
  Mutex.lock t.conn_lock;
  Hashtbl.iter
    (fun fd () ->
      try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
    t.conns;
  while Hashtbl.length t.conns > 0 do
    Condition.wait t.conn_done t.conn_lock
  done;
  Mutex.unlock t.conn_lock;
  Pool.shutdown t.pool
