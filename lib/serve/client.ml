type reply =
  | Verdict of { status : int; body : string }
  | Busy of { retry_after_ms : int }
  | Timeout
  | Server_error of string
  | Pong

type error =
  | Connect of string
  | Io of string
  | Malformed of string
  | Refused of string

let pp_error ppf = function
  | Connect msg -> Format.fprintf ppf "connect: %s" msg
  | Io msg -> Format.fprintf ppf "i/o: %s" msg
  | Malformed msg -> Format.fprintf ppf "malformed reply: %s" msg
  | Refused msg -> Format.fprintf ppf "server: %s" msg

let connect path =
  let fd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
  match Unix.connect fd (ADDR_UNIX path) with
  | () -> Ok fd
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with _ -> ());
      Error (Connect (Printf.sprintf "%s: %s" path (Unix.error_message e)))

let with_conn path f =
  match connect path with
  | Error _ as e -> e
  | Ok fd ->
      Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ()) (fun () ->
          (* Generous safety net so a wedged daemon cannot hang the
             client forever; the server's own deadlines fire first. *)
          Wire.set_read_timeout fd 120.;
          f fd)

type meta = { req_id : int option; cached : bool option }

let meta_of_extras extras =
  {
    req_id = Option.bind (List.assoc_opt "req" extras) int_of_string_opt;
    cached =
      (match List.assoc_opt "cache" extras with
      | Some "hit" -> Some true
      | Some "miss" -> Some false
      | _ -> None);
  }

let no_meta = { req_id = None; cached = None }

let read_reply_ex fd =
  match Wire.read_line fd with
  | Error e ->
      Error
        (Io
           (match e with
           | `Eof | `Eof_mid -> "server closed the connection"
           | `Idle | `Slow -> "server reply timed out"
           | `Too_long -> "reply header too long"
           | `Closed -> "connection reset"))
  | Ok line -> (
      let meta = meta_of_extras (Protocol.header_extras line) in
      match Protocol.parse_response_header line with
      | Error msg -> Error (Malformed msg)
      | Ok (Protocol.Head_ok { status; body_len }) -> (
          match Wire.read_exact fd body_len with
          | Error _ -> Error (Io "connection died mid-body")
          | Ok body -> Ok (Verdict { status; body }, meta))
      | Ok (Protocol.Head_error msg) -> Ok (Server_error msg, meta)
      | Ok (Protocol.Head_busy { retry_after_ms }) ->
          Ok (Busy { retry_after_ms }, meta)
      | Ok Protocol.Head_timeout -> Ok (Timeout, meta)
      | Ok Protocol.Head_pong -> Ok (Pong, meta))

let roundtrip_ex ~socket payload =
  with_conn socket @@ fun fd ->
  match Wire.write_all fd payload with
  | Error `Closed -> Error (Io "connection reset while sending")
  | Ok () -> read_reply_ex fd

let roundtrip ~socket payload = Result.map fst (roundtrip_ex ~socket payload)

let analyze_payload ?max_states ?symmetry ?deadline_ms source =
  Protocol.render_request_header ?max_states ?symmetry ?deadline_ms
    ~body_len:(String.length source) ()
  ^ source

let analyze ~socket ?max_states ?symmetry ?deadline_ms source =
  roundtrip ~socket (analyze_payload ?max_states ?symmetry ?deadline_ms source)

let analyze_ex ~socket ?max_states ?symmetry ?deadline_ms source =
  roundtrip_ex ~socket
    (analyze_payload ?max_states ?symmetry ?deadline_ms source)

let ping ~socket = roundtrip ~socket Protocol.ping_header
let stats ~socket = roundtrip ~socket Protocol.stats_header

let body_verb ~what ~socket payload =
  match roundtrip ~socket payload with
  | Error e -> Error e
  | Ok (Verdict { body; _ }) -> Ok body
  | Ok (Server_error msg) -> Error (Refused (what ^ ": " ^ msg))
  | Ok _ -> Error (Malformed (what ^ ": unexpected reply kind"))

let metrics ~socket = body_verb ~what:"metrics" ~socket Protocol.metrics_header
let flight ~socket = body_verb ~what:"flight" ~socket Protocol.flight_header

let trace ~socket id =
  body_verb ~what:"trace" ~socket (Protocol.trace_header id)

let raw ~socket bytes =
  with_conn socket @@ fun fd ->
  Wire.set_read_timeout fd 10.;
  match Wire.write_all fd bytes with
  | Error `Closed -> Error (Io "connection reset while sending")
  | Ok () ->
      let buf = Buffer.create 256 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        match Unix.read fd chunk 0 4096 with
        | 0 -> Ok (Buffer.contents buf)
        | n ->
            Buffer.add_subbytes buf chunk 0 n;
            drain ()
        | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
            Ok (Buffer.contents buf)
        | exception Unix.Unix_error (EINTR, _, _) -> drain ()
        | exception Unix.Unix_error (_, _, _) -> Ok (Buffer.contents buf)
      in
      drain ()
