(** The analysis daemon: a Unix-domain-socket server answering
    {!Protocol} requests from an LRU verdict cache backed by a bounded
    pool of worker domains.

    Robustness contract (exercised by the chaos battery):
    - Every accepted request gets exactly one reply: [ok], [error],
      [busy] or [timeout].  No reply path can hang: admission is
      non-blocking (full queue ⇒ [busy] with a retry hint), and a
      per-request deadline cancels in-flight analysis via the
      {!Ddlock.Obs.Cancel} budget hook (⇒ [timeout]).  A job whose
      deadline expired while still queued replies [timeout] without
      running at all.
    - Malformed, oversized or stalled (slowloris) frames get a one-line
      [error] reply and the connection is closed; they never crash the
      daemon or poison other connections.
    - Worker domains are exception-isolated: an analysis that raises
      replies [error analysis failed: ...] and the domain lives on.
    - {!request_stop} + {!wait} drain gracefully: the listener closes,
      in-flight requests finish and reply, queued jobs run, worker
      domains join, the socket file is unlinked.

    Deadlines bound the sequential engines (the worker installs the
    deadline poll in its own domain).  With [jobs > 1] the
    deterministic parallel engine's extra domains do not inherit the
    poll — but deadlined multi-domain requests default to the relaxed
    work-stealing engine ([fast_under_pressure]), whose coordinating
    worker runs in the polling domain and broadcasts cancellation to
    the others, so deadlines stay effective.  Configure [jobs = 1]
    (the default) when deadlines must be strict {e and}
    [fast_under_pressure] is off. *)

type config = {
  socket_path : string;
  workers : int;  (** worker domains (≥ 1) *)
  queue_cap : int;  (** queued-job bound; full ⇒ [busy] *)
  cache_cap : int;  (** LRU verdict-cache entries; [0] disables *)
  max_request_bytes : int;  (** [analyze] body cap; larger ⇒ [error] *)
  default_max_states : int option;
      (** when the request names none; [None] = analysis default *)
  default_deadline_ms : int option;  (** when the request names none *)
  jobs : int;  (** worker domains {e per analysis} (see above) *)
  fast_under_pressure : bool;
      (** deadlined requests with [jobs > 1] use the relaxed
          work-stealing engine — same rendered bytes, real speedup,
          and deadline polls reach the search (see above) *)
  idle_timeout_ms : int;  (** per-read deadline (slowloris guard) *)
  busy_retry_ms : int;  (** retry hint sent with [busy] *)
  flight_cap : int;  (** flight-recorder ring: last N request summaries *)
  trace_cap : int;  (** retained span trees (recent ring + slow ring) *)
  slow_ms : int;
      (** latency threshold (ms) above which a request's span tree is
          pinned in the slow ring (timeouts are always pinned) *)
}

val default_config : socket_path:string -> config
(** 2 workers, queue 16, cache 128, 1 MiB bodies, no default deadline,
    [jobs = 1], fast-under-pressure on, 5 s idle timeout, 100 ms retry
    hint, flight ring 256, trace rings 64, slow threshold 250 ms. *)

type t

val start : config -> t
(** Bind and serve (accept loop and connection handlers run on
    background threads; worker domains are spawned eagerly).  A stale
    socket file (no listener behind it) is replaced; a {e live} one —
    another daemon already serving — raises [Failure], as does a path
    that exists but is not a socket. *)

val request_stop : t -> unit
(** Begin a graceful drain.  Async-signal-safe (one atomic store): call
    it from a [SIGTERM]/[SIGINT] handler. *)

val wait : t -> unit
(** Block until the drain completes (listener closed, connections
    finished, queued jobs run, workers joined, socket unlinked).
    Call {!request_stop} first — or from a signal handler. *)

val stats_json : t -> string
(** One-line JSON counters: requests received, verdicts, errors, busy,
    timeouts, cache hits/misses/entries, queue length, connections,
    workers.  Also the body of the [stats] protocol verb. *)

(** {1 Request-scoped observability}

    Every accepted request gets an id (from 1, echoed to the client as a
    [req=<id>] header extra) and a root [serve.request] span; the parse,
    cache-lookup, pool-wait and analysis phases — including the engines'
    child domains — record child spans under that id.  On completion the
    request's span tree is pulled out of the shared trace buffer into a
    bounded ring, so a long-lived daemon's trace memory stays constant.  *)

val metrics_text : t -> string
(** Prometheus text exposition.  The [daemon_*] section (request /
    verdict / error / busy / timeout counters, cache hits and misses,
    queue depth, in-flight gauge, request-latency histogram) is
    synthesized from always-on server state, independent of the
    {!Ddlock.Obs.Control} switch; the full obs registry follows under a
    [ddlock_] prefix.  Also the body of the [metrics] protocol verb. *)

val flight_json : t -> string
(** The flight recorder as one JSON document: the last [flight_cap]
    completed request summaries (id, verb, cache-key digest, params,
    latency, status, outcome, cached) plus the slow-ring index.  Also
    the body of the [flight] protocol verb. *)

val flight_dump : t -> out_channel -> unit
(** [flight_json] plus a newline, flushed — the [SIGUSR1] dump. *)

val trace_events : t -> int -> Ddlock.Obs.Trace.event list option
(** The retained span tree of a completed request, if it was traced and
    has not aged out of the rings.  [trace <id>] serves this as Chrome
    trace-event JSON. *)
