(** Thread-safe LRU verdict cache.

    Keys are the {!Ddlock.Sched.Canon.system_key} structural digests
    (salted with the analysis parameters), so the daemon answers
    repeated — and symmetric-permuted — submissions without re-running
    the analysis.  All operations take one mutex; the critical sections
    are O(1) (hash table + intrusive doubly-linked recency list), so the
    lock is uncontended even under the chaos battery. *)

type 'a t

val create : capacity:int -> 'a t
(** [capacity <= 0] degenerates to a cache that stores nothing (every
    lookup misses) — useful for measuring the uncached path. *)

val find : 'a t -> string -> 'a option
(** Lookup; a hit promotes the entry to most-recently-used. *)

val add : 'a t -> string -> 'a -> unit
(** Insert (or overwrite) an entry, evicting the least-recently-used
    entry when over capacity. *)

val length : 'a t -> int

val hits : 'a t -> int

val misses : 'a t -> int
