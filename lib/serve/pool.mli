(** Bounded worker pool on OCaml 5 domains.

    Connection threads (systhreads on the main domain) submit jobs; a
    fixed set of worker {e domains} pops and runs them, so analyses of
    concurrent requests run in parallel and off the accept path.  The
    queue is bounded: {!submit} refuses rather than blocks when full,
    which is what the server turns into an explicit [busy] backpressure
    reply.  Worker domains never die from a job: every job is run under
    a catch-all (jobs are expected to do their own result plumbing via
    {!Cell} and catch their own exceptions; the catch-all is the second
    layer of isolation). *)

(** Single-assignment result cells: the connection thread blocks in
    {!Cell.wait} while a worker domain {!Cell.fill}s.  (A minimal ivar;
    [Mutex]/[Condition] work across domains.) *)
module Cell : sig
  type 'a t

  val create : unit -> 'a t

  val fill : 'a t -> 'a -> unit
  (** Later fills of an already-filled cell are ignored. *)

  val wait : 'a t -> 'a
end

type t

val create : workers:int -> queue_cap:int -> t
(** Spawns [max 1 workers] worker domains.  [queue_cap] bounds the
    number of {e queued} (not yet running) jobs. *)

val submit : t -> (unit -> unit) -> bool
(** Enqueue a job; [false] when the queue is at capacity or the pool is
    shutting down (the caller replies [busy]). *)

val queue_length : t -> int

val shutdown : t -> unit
(** Graceful drain: stop accepting submissions, run every queued job to
    completion, then join the worker domains.  Idempotent. *)
