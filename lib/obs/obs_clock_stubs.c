/* Monotonic clock for span tracing: CLOCK_MONOTONIC nanoseconds as a
   tagged OCaml int (62 bits of nanoseconds ~ 146 years — no boxing, no
   allocation, safe to call from any domain). */

#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value obs_monotonic_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
}
