type event = {
  name : string;
  cat : string;
  ts_ns : int;
  dur_ns : int;
  tid : int;
  args : (string * string) list;
}

(* Spans are per-phase and per-level, not per-state, so one global lock
   is fine; per-domain buffers would need collision handling anyway
   (domain ids grow without bound across the level-spawned workers). *)
let buf : event list ref = ref []
let lock = Mutex.create ()
let epoch = Clock.now_ns ()

let record ev =
  Mutex.lock lock;
  buf := ev :: !buf;
  Mutex.unlock lock

let span ?(cat = "ddlock") ?(args = []) name f =
  if not (Control.is_on ()) then f ()
  else begin
    let t0 = Clock.now_ns () in
    Fun.protect
      ~finally:(fun () ->
        let t1 = Clock.now_ns () in
        record
          {
            name;
            cat;
            ts_ns = t0 - epoch;
            dur_ns = t1 - t0;
            tid = (Domain.self () :> int);
            args;
          })
      f
  end

let instant ?(cat = "ddlock") ?(args = []) name =
  if Control.is_on () then
    record
      {
        name;
        cat;
        ts_ns = Clock.now_ns () - epoch;
        dur_ns = -1;
        tid = (Domain.self () :> int);
        args;
      }

let events () =
  Mutex.lock lock;
  let evs = !buf in
  Mutex.unlock lock;
  List.sort (fun a b -> compare (a.ts_ns, a.dur_ns) (b.ts_ns, b.dur_ns)) evs

let clear () =
  Mutex.lock lock;
  buf := [];
  Mutex.unlock lock

(* ----------------------- Chrome trace JSON ------------------------- *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let emit_event b ev =
  Buffer.add_string b
    (Printf.sprintf "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\",\"pid\":1,\"tid\":%d,\"ts\":%.3f"
       (escape ev.name) (escape ev.cat)
       (if ev.dur_ns < 0 then "i" else "X")
       ev.tid
       (Clock.ns_to_us ev.ts_ns));
  if ev.dur_ns >= 0 then
    Buffer.add_string b (Printf.sprintf ",\"dur\":%.3f" (Clock.ns_to_us ev.dur_ns))
  else Buffer.add_string b ",\"s\":\"t\"";
  (match ev.args with
  | [] -> ()
  | args ->
      Buffer.add_string b ",\"args\":{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b
            (Printf.sprintf "\"%s\":\"%s\"" (escape k) (escape v)))
        args;
      Buffer.add_char b '}');
  Buffer.add_char b '}'

let write_chrome_json oc =
  let evs = events () in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[";
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "\n  ";
      emit_event b ev)
    evs;
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ms\"}\n";
  output_string oc (Buffer.contents b)

let summary () =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun ev ->
      let n, ms = try Hashtbl.find tbl ev.name with Not_found -> (0, 0.0) in
      Hashtbl.replace tbl ev.name
        (n + 1, ms +. (float_of_int (max 0 ev.dur_ns) /. 1e6)))
    (events ());
  List.sort compare
    (Hashtbl.fold (fun name (n, ms) acc -> (name, n, ms) :: acc) tbl [])

let pp_summary ppf rows =
  if rows = [] then Format.fprintf ppf "  (no spans recorded)@,"
  else
    List.iter
      (fun (name, n, ms) ->
        Format.fprintf ppf "  %-38s x%-6d %.2f ms@," name n ms)
      rows
