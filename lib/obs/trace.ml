type event = {
  name : string;
  cat : string;
  ts_ns : int;
  dur_ns : int;
  tid : int;
  req : int;
  args : (string * string) list;
}

(* Spans are per-phase and per-level, not per-state, so one global lock
   is fine; per-domain buffers would need collision handling anyway
   (domain ids grow without bound across the level-spawned workers). *)
let buf : event list ref = ref []
let lock = Mutex.create ()
let epoch = Clock.now_ns ()

let record ev =
  Mutex.lock lock;
  buf := ev :: !buf;
  Mutex.unlock lock

let span ?(cat = "ddlock") ?req ?(args = []) name f =
  if not (Control.is_on ()) then f ()
  else begin
    (* Resolve the request id at entry: the ambient slot could change
       under a [Request.with_id] nested inside [f]. *)
    let req = match req with Some r -> r | None -> Request.current () in
    let t0 = Clock.now_ns () in
    Fun.protect
      ~finally:(fun () ->
        let t1 = Clock.now_ns () in
        record
          {
            name;
            cat;
            ts_ns = t0 - epoch;
            dur_ns = t1 - t0;
            tid = (Domain.self () :> int);
            req;
            args;
          })
      f
  end

let instant ?(cat = "ddlock") ?req ?(args = []) name =
  if Control.is_on () then
    let req = match req with Some r -> r | None -> Request.current () in
    record
      {
        name;
        cat;
        ts_ns = Clock.now_ns () - epoch;
        dur_ns = -1;
        tid = (Domain.self () :> int);
        req;
        args;
      }

let chronological evs =
  List.sort (fun a b -> compare (a.ts_ns, a.dur_ns) (b.ts_ns, b.dur_ns)) evs

let events () =
  Mutex.lock lock;
  let evs = !buf in
  Mutex.unlock lock;
  chronological evs

let take_request req =
  Mutex.lock lock;
  let mine, rest = List.partition (fun ev -> ev.req = req) !buf in
  buf := rest;
  Mutex.unlock lock;
  chronological mine

let clear () =
  Mutex.lock lock;
  buf := [];
  Mutex.unlock lock

(* ----------------------- Chrome trace JSON ------------------------- *)

let escape = Json.escape

let emit_event b ev =
  Buffer.add_string b
    (Printf.sprintf "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\",\"pid\":1,\"tid\":%d,\"ts\":%.3f"
       (escape ev.name) (escape ev.cat)
       (if ev.dur_ns < 0 then "i" else "X")
       ev.tid
       (Clock.ns_to_us ev.ts_ns));
  if ev.dur_ns >= 0 then
    Buffer.add_string b (Printf.sprintf ",\"dur\":%.3f" (Clock.ns_to_us ev.dur_ns))
  else Buffer.add_string b ",\"s\":\"t\"";
  let args =
    if ev.req = Request.none then ev.args
    else ("req", string_of_int ev.req) :: ev.args
  in
  (match args with
  | [] -> ()
  | args ->
      Buffer.add_string b ",\"args\":{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_string b
            (Printf.sprintf "\"%s\":\"%s\"" (escape k) (escape v)))
        args;
      Buffer.add_char b '}');
  Buffer.add_char b '}'

let buffer_chrome_json b evs =
  Buffer.add_string b "{\"traceEvents\":[";
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "\n  ";
      emit_event b ev)
    evs;
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ms\"}\n"

let chrome_json evs =
  let b = Buffer.create 4096 in
  buffer_chrome_json b evs;
  Buffer.contents b

let write_chrome_json oc = output_string oc (chrome_json (events ()))

let summary () =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun ev ->
      let n, ms = try Hashtbl.find tbl ev.name with Not_found -> (0, 0.0) in
      Hashtbl.replace tbl ev.name
        (n + 1, ms +. (float_of_int (max 0 ev.dur_ns) /. 1e6)))
    (events ());
  List.sort compare
    (Hashtbl.fold (fun name (n, ms) acc -> (name, n, ms) :: acc) tbl [])

let pp_summary ppf rows =
  if rows = [] then Format.fprintf ppf "  (no spans recorded)@,"
  else
    List.iter
      (fun (name, n, ms) ->
        Format.fprintf ppf "  %-38s x%-6d %.2f ms@," name n ms)
      rows
