(** Cooperative cancellation for long-running analyses.

    A per-domain poll function, installed for the duration of a
    computation; the exploration engines and candidate enumerations call
    {!poll} on their budget path (the same place the [max_states] cap is
    enforced), so an installed poll bounds a search in {e time} exactly
    as [max_states] bounds it in {e space}.  This is what lets the
    analysis daemon ({!Ddlock_serve}) enforce per-request deadlines:
    a worker installs a deadline poll, runs the analysis, and maps the
    resulting {!Cancelled} into a [timeout] reply instead of hanging the
    connection.

    The poll slot is domain-local, so concurrent worker domains cancel
    independently; with no poll installed (the default), {!poll} is a
    single domain-local read. *)

exception Cancelled

val with_poll : (unit -> bool) -> (unit -> 'a) -> 'a
(** [with_poll f body] installs [f] as the current domain's poll for the
    duration of [body] (restoring the previous poll on exit, normal or
    exceptional).  While installed, any {!poll} call for which [f ()]
    returns [true] raises {!Cancelled}. *)

val poll : unit -> unit
(** Raise {!Cancelled} iff an installed poll function returns [true].
    Safe to call on hot paths. *)
