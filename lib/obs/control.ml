let env_default =
  match Sys.getenv_opt "DDLOCK_OBS" with
  | None | Some "" | Some "0" -> false
  | Some _ -> true

let enabled = Atomic.make env_default
let on () = Atomic.set enabled true
let off () = Atomic.set enabled false
let is_on () = Atomic.get enabled
