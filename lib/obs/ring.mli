(** Fixed-size lock-free ring of the most recent values.

    The flight-recorder substrate: {!push} is one fetch-and-add plus one
    atomic store, safe from any number of domains and threads, and the
    ring always holds (up to) the last [capacity] pushed values.  Reads
    ({!to_list}, {!find}) are best-effort snapshots: they never block
    writers and may miss a value that is being overwritten at that very
    moment — acceptable by construction for a flight recorder, whose
    contract is "the recent past", not an exact log. *)

type 'a t

val create : int -> 'a t
(** [create n] holds the last [max 1 n] pushed values. *)

val capacity : 'a t -> int

val push : 'a t -> 'a -> unit

val pushed : 'a t -> int
(** Total number of values ever pushed (not the current occupancy). *)

val to_list : 'a t -> 'a list
(** The retained values, newest first. *)

val find : 'a t -> ('a -> bool) -> 'a option
(** First retained value (newest first) satisfying the predicate. *)
