exception Cancelled

(* One mutable slot per domain: engines poll from the domain that runs
   them, so no synchronization is needed beyond domain-local state. *)
let slot : (unit -> bool) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let with_poll f body =
  let r = Domain.DLS.get slot in
  let saved = !r in
  r := Some f;
  Fun.protect ~finally:(fun () -> r := saved) body

let poll () =
  match !(Domain.DLS.get slot) with
  | None -> ()
  | Some f -> if f () then raise Cancelled
