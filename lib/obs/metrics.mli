(** Metrics registry: counters, gauges and log2-bucketed histograms.

    Counter and histogram cells are sharded by domain id, so concurrent
    increments from {!Ddlock_par.Par_explore} worker domains land on
    different atomics and never contend on the common path; a snapshot
    merges the shards (addition — associative and commutative, so the
    merged totals are independent of domain scheduling).

    Every recording operation is a no-op while {!Control.is_on} is false.
    Metric {e registration} ([make]) is independent of the switch and
    idempotent: making the same name twice returns the same metric. *)

val num_shards : int
(** Number of per-domain shards (a power of two; domain ids are folded
    onto shards by masking). *)

module Counter : sig
  type t

  val make : string -> t
  val incr : t -> unit
  val add : t -> int -> unit

  val value : t -> int
  (** Merged total over all shards (reads are not atomic across shards;
      exact once concurrent writers are quiescent). *)
end

module Gauge : sig
  type t

  val make : string -> t
  val set : t -> int -> unit

  val set_max : t -> int -> unit
  (** Raise the gauge to [v] if [v] is larger (CAS loop). *)

  val value : t -> int
end

module Histogram : sig
  type t

  val make : string -> t

  val observe : t -> int -> unit
  (** Record one sample.  Samples [v <= 1] land in bucket 0; otherwise
      the bucket index is [floor (log2 v)], i.e. bucket [i >= 1] covers
      [2^i <= v < 2^(i+1)]. *)

  val record : t -> int -> unit
  (** Like [observe] but independent of the {!Control} switch — for
      always-on operational metrics (the daemon's request-latency
      histogram must populate [ddlock top] without requiring the
      whole tracing subsystem to be enabled). *)

  val bucket_of : int -> int
  (** The bucket index a sample lands in (exposed for tests). *)

  val bucket_lower : int -> int
  (** Inclusive lower bound of bucket [i] ([1] for bucket 0). *)

  val max_bucket : int
  (** Largest bucket index; samples beyond [2^max_bucket] are clamped. *)
end

(** {1 Snapshots} *)

type hist = {
  count : int;
  sum : int;
  buckets : (int * int) list;  (** (bucket index, count), non-empty buckets only, ascending *)
}

type value = Counter of int | Gauge of int | Hist of hist

val snapshot : unit -> (string * value) list
(** All registered metrics with merged values, sorted by name — the
    deterministic order makes snapshots directly comparable. *)

val counter_value : string -> int
(** Merged value of a registered counter, [0] when absent. *)

val reset : unit -> unit
(** Zero every registered metric (registrations are kept). *)

val quantile : hist -> float -> float
(** [quantile h q] estimates the [q]-th quantile ([0.0 <= q <= 1.0]) of
    the samples in [h], interpolating linearly inside the log2 bucket
    the rank falls in — so the estimate is within a factor of 2 of the
    true sample.  [0.0] when the histogram is empty. *)

val delta : before:(string * value) list -> after:(string * value) list ->
  (string * value) list
(** Interval view between two {!snapshot}s: counters and histograms
    become [after - before] (clamped at zero, so a [reset] between the
    snapshots yields zeros rather than negatives); gauges — which are
    instantaneous, not cumulative — keep the [after] value.  Metrics
    registered only after the first snapshot are passed through.  The
    basis of [ddlock top]'s per-interval rates. *)

val render_prometheus : (string * value) list -> string
(** Prometheus text-exposition rendering of a snapshot: metric names
    sanitized to [[a-zA-Z0-9_:]], one [# TYPE] line per metric,
    histograms as cumulative [_bucket{le="..."}] lines over the
    non-empty log2 buckets (ending with [+Inf]) plus [_sum] and
    [_count]. *)

val pp_summary : Format.formatter -> (string * value) list -> unit
(** Plain-text rendering of a snapshot (skips zero-valued metrics). *)
