(** Minimal JSON syntax checker (no external dependencies).

    Used by the tests and the CI leg to assert that emitted trace files
    are well-formed without pulling a JSON library into the build.
    Accepts the full JSON grammar (objects, arrays, strings with
    escapes, numbers, booleans, null); rejects trailing garbage. *)

val validate : string -> (unit, string) result
(** [Error msg] carries a position-annotated reason. *)

val escape : string -> string
(** Escape a string for embedding between double quotes in a JSON
    document (backslash, quote, control characters). *)
