exception Bad of int * string

let validate s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad (!pos, msg)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let hex_digit c =
    match c with '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true | _ -> false
  in
  let string_lit () =
    expect '"';
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
              advance ();
              go ()
          | Some 'u' ->
              advance ();
              for _ = 1 to 4 do
                match peek () with
                | Some c when hex_digit c -> advance ()
                | _ -> fail "bad \\u escape"
              done;
              go ()
          | _ -> fail "bad escape")
      | Some c when Char.code c < 0x20 -> fail "control char in string"
      | Some _ ->
          advance ();
          go ()
    in
    go ()
  in
  let number () =
    (match peek () with Some '-' -> advance () | _ -> ());
    let digits () =
      let saw = ref false in
      let rec go () =
        match peek () with
        | Some '0' .. '9' ->
            saw := true;
            advance ();
            go ()
        | _ -> ()
      in
      go ();
      if not !saw then fail "expected digit"
    in
    digits ();
    (match peek () with
    | Some '.' ->
        advance ();
        digits ()
    | _ -> ());
    match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ()
  in
  let literal lit =
    String.iter
      (fun c ->
        match peek () with
        | Some c' when c' = c -> advance ()
        | _ -> fail ("expected " ^ lit))
      lit
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then advance ()
        else begin
          let rec members () =
            skip_ws ();
            string_lit ();
            skip_ws ();
            expect ':';
            value ();
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          members ()
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then advance ()
        else begin
          let rec elements () =
            value ();
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          elements ()
        end
    | Some '"' -> string_lit ()
    | Some ('-' | '0' .. '9') -> number ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
    | None -> fail "unexpected end of input"
  in
  match
    value ();
    skip_ws ();
    if !pos <> n then fail "trailing garbage"
  with
  | () -> Ok ()
  | exception Bad (p, msg) -> Error (Printf.sprintf "at offset %d: %s" p msg)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b
