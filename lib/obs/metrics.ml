let num_shards = 64
let shard_mask = num_shards - 1
let shard () = (Domain.self () :> int) land shard_mask

(* Shards are independent heap-allocated atomics (not a flat array of
   immediates), so two domains' cells land on distinct words and the
   common no-contention case is a plain uncontended fetch-and-add. *)
let make_cells () = Array.init num_shards (fun _ -> Atomic.make 0)
let sum_cells cells = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 cells
let zero_cells cells = Array.iter (fun c -> Atomic.set c 0) cells

let on () = Atomic.get Control.enabled

module Histogram_repr = struct
  let max_bucket = 62

  let bucket_of v =
    if v <= 1 then 0
    else begin
      (* floor (log2 v): position of the highest set bit. *)
      let rec go v acc = if v <= 1 then acc else go (v lsr 1) (acc + 1) in
      min max_bucket (go v 0)
    end

  let bucket_lower i = 1 lsl i

  type t = {
    buckets : int Atomic.t array array;  (* shard -> bucket -> count *)
    sums : int Atomic.t array;
    counts : int Atomic.t array;
  }

  let create () =
    {
      buckets =
        Array.init num_shards (fun _ ->
            Array.init (max_bucket + 1) (fun _ -> Atomic.make 0));
      sums = make_cells ();
      counts = make_cells ();
    }

  let observe h v =
    let s = shard () in
    Atomic.incr h.buckets.(s).(bucket_of v);
    ignore (Atomic.fetch_and_add h.sums.(s) v);
    Atomic.incr h.counts.(s)

  let reset h =
    Array.iter zero_cells h.buckets;
    zero_cells h.sums;
    zero_cells h.counts
end

type metric =
  | M_counter of int Atomic.t array
  | M_gauge of int Atomic.t
  | M_hist of Histogram_repr.t

(* Registration is rare (module init time, mostly) but may in principle
   race with a snapshot from another domain, so the registry is locked.
   The hot recording paths never touch the registry. *)
let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let registry_lock = Mutex.create ()

let register name mk cast =
  Mutex.lock registry_lock;
  let m =
    match Hashtbl.find_opt registry name with
    | Some m -> m
    | None ->
        let m = mk () in
        Hashtbl.replace registry name m;
        m
  in
  Mutex.unlock registry_lock;
  cast name m

module Counter = struct
  type t = int Atomic.t array

  let make name =
    register name
      (fun () -> M_counter (make_cells ()))
      (fun name -> function
        | M_counter c -> c
        | _ -> invalid_arg ("Obs.Counter.make: " ^ name ^ " is not a counter"))

  let add c n = if on () then ignore (Atomic.fetch_and_add c.(shard ()) n)
  let incr c = add c 1
  let value c = sum_cells c
end

module Gauge = struct
  type t = int Atomic.t

  let make name =
    register name
      (fun () -> M_gauge (Atomic.make 0))
      (fun name -> function
        | M_gauge g -> g
        | _ -> invalid_arg ("Obs.Gauge.make: " ^ name ^ " is not a gauge"))

  let set g v = if on () then Atomic.set g v

  let set_max g v =
    if on () then begin
      let rec loop () =
        let cur = Atomic.get g in
        if v > cur && not (Atomic.compare_and_set g cur v) then loop ()
      in
      loop ()
    end

  let value g = Atomic.get g
end

module Histogram = struct
  type t = Histogram_repr.t

  let make name =
    register name
      (fun () -> M_hist (Histogram_repr.create ()))
      (fun name -> function
        | M_hist h -> h
        | _ ->
            invalid_arg ("Obs.Histogram.make: " ^ name ^ " is not a histogram"))

  let observe h v = if on () then Histogram_repr.observe h v
  let record = Histogram_repr.observe
  let bucket_of = Histogram_repr.bucket_of
  let bucket_lower = Histogram_repr.bucket_lower
  let max_bucket = Histogram_repr.max_bucket
end

type hist = { count : int; sum : int; buckets : (int * int) list }
type value = Counter of int | Gauge of int | Hist of hist

let merge_hist (h : Histogram_repr.t) =
  let buckets = ref [] in
  for i = Histogram_repr.max_bucket downto 0 do
    let n =
      Array.fold_left (fun acc sh -> acc + Atomic.get sh.(i)) 0 h.buckets
    in
    if n > 0 then buckets := (i, n) :: !buckets
  done;
  {
    count = sum_cells h.Histogram_repr.counts;
    sum = sum_cells h.Histogram_repr.sums;
    buckets = !buckets;
  }

let snapshot () =
  Mutex.lock registry_lock;
  let all = Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry [] in
  Mutex.unlock registry_lock;
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (List.map
       (fun (name, m) ->
         ( name,
           match m with
           | M_counter c -> Counter (sum_cells c)
           | M_gauge g -> Gauge (Atomic.get g)
           | M_hist h -> Hist (merge_hist h) ))
       all)

let counter_value name =
  Mutex.lock registry_lock;
  let m = Hashtbl.find_opt registry name in
  Mutex.unlock registry_lock;
  match m with Some (M_counter c) -> sum_cells c | _ -> 0

let reset () =
  Mutex.lock registry_lock;
  Hashtbl.iter
    (fun _ -> function
      | M_counter c -> zero_cells c
      | M_gauge g -> Atomic.set g 0
      | M_hist h -> Histogram_repr.reset h)
    registry;
  Mutex.unlock registry_lock

let quantile h q =
  if h.count <= 0 then 0.0
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let rank = q *. float_of_int h.count in
    let rec go seen = function
      | [] -> float_of_int h.sum /. float_of_int h.count
      | (i, n) :: rest ->
          let seen' = seen + n in
          if float_of_int seen' >= rank then begin
            (* Linear interpolation inside the log2 bucket.  Bucket 0
               covers [0, 1]; bucket i >= 1 covers [2^i, 2^(i+1)). *)
            let lo, width =
              if i = 0 then (0.0, 1.0)
              else
                ( float_of_int (Histogram_repr.bucket_lower i),
                  float_of_int (Histogram_repr.bucket_lower i) )
            in
            let into = (rank -. float_of_int seen) /. float_of_int n in
            lo +. (width *. Float.max 0.0 (Float.min 1.0 into))
          end
          else go seen' rest
    in
    go 0 h.buckets
  end

let delta ~before ~after =
  let prior = Hashtbl.create 32 in
  List.iter (fun (name, v) -> Hashtbl.replace prior name v) before;
  List.map
    (fun (name, v) ->
      let v' =
        match (v, Hashtbl.find_opt prior name) with
        | Counter a, Some (Counter b) -> Counter (max 0 (a - b))
        | Hist a, Some (Hist b) ->
            let was = Hashtbl.create 8 in
            List.iter (fun (i, n) -> Hashtbl.replace was i n) b.buckets;
            let buckets =
              List.filter_map
                (fun (i, n) ->
                  match
                    n - (Option.value ~default:0 (Hashtbl.find_opt was i))
                  with
                  | d when d > 0 -> Some (i, d)
                  | _ -> None)
                a.buckets
            in
            Hist
              {
                count = max 0 (a.count - b.count);
                sum = max 0 (a.sum - b.sum);
                buckets;
              }
        (* Gauges are instantaneous, not cumulative: keep the new value. *)
        | v, _ -> v
      in
      (name, v'))
    after

(* ------------------- Prometheus text exposition -------------------- *)

let prom_name name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

let render_prometheus_into b snap =
  List.iter
    (fun (name, v) ->
      let n = prom_name name in
      match v with
      | Counter c ->
          Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n" n);
          Buffer.add_string b (Printf.sprintf "%s %d\n" n c)
      | Gauge g ->
          Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n" n);
          Buffer.add_string b (Printf.sprintf "%s %d\n" n g)
      | Hist h ->
          Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" n);
          let cum = ref 0 in
          List.iter
            (fun (i, cnt) ->
              cum := !cum + cnt;
              (* Bucket i covers [2^i, 2^(i+1)) in integers, so its
                 inclusive upper bound is 2^(i+1) - 1 (1 for bucket 0).
                 The overflow bucket has no finite bound and is folded
                 into the final +Inf line below. *)
              if i < Histogram_repr.max_bucket then
                let le =
                  if i = 0 then 1 else (2 * Histogram_repr.bucket_lower i) - 1
                in
                Buffer.add_string b
                  (Printf.sprintf "%s_bucket{le=\"%d\"} %d\n" n le !cum))
            h.buckets;
          Buffer.add_string b
            (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" n (max !cum h.count));
          Buffer.add_string b (Printf.sprintf "%s_sum %d\n" n h.sum);
          Buffer.add_string b (Printf.sprintf "%s_count %d\n" n h.count))
    snap

let render_prometheus snap =
  let b = Buffer.create 1024 in
  render_prometheus_into b snap;
  Buffer.contents b

let pp_summary ppf snap =
  let nonzero = function
    | _, Counter 0 | _, Gauge 0 -> false
    | _, Hist { count = 0; _ } -> false
    | _ -> true
  in
  let snap = List.filter nonzero snap in
  if snap = [] then Format.fprintf ppf "  (no metrics recorded)@,"
  else
    List.iter
      (fun (name, v) ->
        match v with
        | Counter n -> Format.fprintf ppf "  %-38s %d@," name n
        | Gauge n -> Format.fprintf ppf "  %-38s %d (gauge)@," name n
        | Hist h ->
            Format.fprintf ppf "  %-38s count=%d mean=%.1f@," name h.count
              (float_of_int h.sum /. float_of_int (max 1 h.count));
            List.iter
              (fun (i, n) ->
                if i = 0 then Format.fprintf ppf "    %-36s %d@," "<= 1" n
                else
                  Format.fprintf ppf "    %-36s %d@,"
                    (Printf.sprintf "[%d, %d)" (Histogram.bucket_lower i)
                       (2 * Histogram.bucket_lower i))
                    n)
              h.buckets)
      snap
