(* One mutable slot per domain, exactly like Cancel: the serve worker
   domains run one request at a time, and the exploration engines install
   the id into each child domain they spawn.  Connection threads
   (systhreads multiplexed on domain 0) must NOT rely on this slot —
   they pass the id explicitly (Trace.span ?req). *)
let slot : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

let none = 0
let current () = !(Domain.DLS.get slot)

let with_id id f =
  let r = Domain.DLS.get slot in
  let saved = !r in
  r := id;
  Fun.protect ~finally:(fun () -> r := saved) f
