(** Monotonic time source for span tracing.

    Backed by [clock_gettime(CLOCK_MONOTONIC)] via a no-alloc C stub, so
    readings are immune to wall-clock adjustments and cheap enough for
    per-phase instrumentation on worker domains. *)

val now_ns : unit -> int
(** Monotonic nanoseconds since an arbitrary epoch. *)

val ns_to_us : int -> float
(** Nanoseconds to (fractional) microseconds — the unit of Chrome
    trace-event timestamps. *)
