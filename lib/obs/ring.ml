type 'a t = { slots : 'a option Atomic.t array; head : int Atomic.t }

let create capacity =
  {
    slots = Array.init (max 1 capacity) (fun _ -> Atomic.make None);
    head = Atomic.make 0;
  }

let capacity t = Array.length t.slots

let push t v =
  let i = Atomic.fetch_and_add t.head 1 in
  Atomic.set t.slots.(i mod Array.length t.slots) (Some v)

let pushed t = Atomic.get t.head

(* Reads race with concurrent pushes by design: a slot being overwritten
   may surface as the newer or the older value (both were pushed, so
   either is a truthful record); [None] slots — not yet written, or torn
   right at the wrap boundary — are skipped. *)
let to_list t =
  let cap = Array.length t.slots in
  let h = Atomic.get t.head in
  let n = min h cap in
  let out = ref [] in
  for k = n - 1 downto 0 do
    match Atomic.get t.slots.((h - 1 - k) mod cap) with
    | Some v -> out := v :: !out
    | None -> ()
  done;
  (* Newest first. *)
  !out

let find t p = List.find_opt p (to_list t)
