(** Request-scoped trace context.

    The analysis daemon ({!Ddlock_serve}) assigns each accepted request
    an id and installs it here for the duration of the work done on its
    behalf, so every {!Trace} event recorded along the way — cache
    lookup, admission wait, the search phases inside the exploration
    engines, cancellation — carries the id and the whole request can be
    reassembled into one span tree afterwards.

    The slot is {e domain}-local (one request at a time per serve worker
    domain; {!Ddlock_par.Par_explore} re-installs the id in the child
    domains it spawns).  Threads multiplexed on one domain — the
    daemon's connection threads — must not use the ambient slot and
    instead tag their spans explicitly via [Trace.span ?req]. *)

val none : int
(** The null id ([0]): no request context. *)

val current : unit -> int
(** The current domain's request id, {!none} when outside a request. *)

val with_id : int -> (unit -> 'a) -> 'a
(** [with_id id f] installs [id] as the current domain's request id for
    the duration of [f] (restored on exit, normal or exceptional). *)
