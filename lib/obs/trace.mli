(** Monotonic-clock span tracing with Chrome trace-event output.

    A span is a named interval measured on the {!Clock} monotonic clock
    and tagged with the recording domain's id, so spans from
    {!Ddlock_par.Par_explore} worker domains land on separate tracks when
    the JSON is loaded in Perfetto / [chrome://tracing].

    Every event also carries a {e request id} — the ambient
    {!Request.current} context unless overridden with [?req] — so the
    analysis daemon can pull one request's complete span tree out of the
    shared buffer ({!take_request}) after the request finishes.

    Recording is a no-op while {!Control.is_on} is false ([span] then
    just runs its body).  Span completion grabs one global lock; spans
    are per-phase / per-level, never per-state, so the lock is cold. *)

type event = {
  name : string;
  cat : string;
  ts_ns : int;  (** start, monotonic ns *)
  dur_ns : int;  (** [-1] for instant events *)
  tid : int;  (** recording domain id *)
  req : int;  (** request id, {!Request.none} outside a request *)
  args : (string * string) list;
}

val span :
  ?cat:string -> ?req:int -> ?args:(string * string) list -> string ->
  (unit -> 'a) -> 'a
(** [span name f] runs [f ()], recording a completed-duration event
    around it.  The event is recorded even when [f] raises (the
    exploration engines escape via [Too_large] and [Exit]).  [?req]
    overrides the ambient request context — required on threads that
    share a domain (the daemon's connection threads), where the ambient
    domain-local slot is not trustworthy. *)

val instant :
  ?cat:string -> ?req:int -> ?args:(string * string) list -> string -> unit
(** A zero-duration marker event. *)

val events : unit -> event list
(** Recorded events in chronological (start-time) order. *)

val take_request : int -> event list
(** [take_request id] removes and returns (chronologically) every
    buffered event recorded under request [id].  The daemon calls this
    once per completed request, which also keeps the shared buffer from
    accumulating per-request events over a long-lived process. *)

val clear : unit -> unit

(** {1 Output} *)

val chrome_json : event list -> string
(** The events as a Chrome trace-event JSON document
    ([{"traceEvents": [...]}], complete ["ph":"X"] events with
    microsecond timestamps, request ids as an ["req"] arg) — loadable
    in Perfetto and [chrome://tracing]. *)

val write_chrome_json : out_channel -> unit
(** [chrome_json] of all recorded events, written to a channel. *)

val summary : unit -> (string * int * float) list
(** Per-span-name totals: (name, occurrences, total milliseconds),
    sorted by name.  Instant events count with zero duration. *)

val pp_summary : Format.formatter -> (string * int * float) list -> unit
