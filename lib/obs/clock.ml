external now_ns : unit -> int = "obs_monotonic_ns" [@@noalloc]

let ns_to_us ns = float_of_int ns /. 1_000.0
