(** Global telemetry switch.

    Telemetry is {e off} by default: every instrumentation entry point
    ({!Metrics.Counter.incr}, {!Trace.span}, …) first reads this flag and
    returns immediately when it is clear, so the instrumented hot paths
    cost a single load-and-branch when observability is not wanted.

    The flag starts on when the [DDLOCK_OBS] environment variable is set
    to a non-empty value other than ["0"] — this lets a whole test suite
    or CI leg run with collection enabled without touching any caller. *)

val on : unit -> unit
val off : unit -> unit
val is_on : unit -> bool

val enabled : bool Atomic.t
(** The raw flag, exported so hot paths can inline the check. *)
