open Ddlock_model

type window = { site : Db.site; from_t : float; until_t : float }

type plan = {
  crashes : window list;
  stalls : window list;
  loss : float;
  dup : float;
  retransmit : float;
  horizon : float;
  seed : int;
}

let none =
  {
    crashes = [];
    stalls = [];
    loss = 0.0;
    dup = 0.0;
    retransmit = 2.0;
    horizon = 0.0;
    seed = 0;
  }

let is_none p =
  p.crashes = [] && p.stalls = [] && p.loss = 0.0 && p.dup = 0.0

let random st db ~intensity ~horizon =
  let intensity = Float.min 1.0 (Float.max 0.0 intensity) in
  let sites = max 1 (Db.site_count db) in
  let windows n max_len =
    List.init n (fun _ ->
        let site = Random.State.int st sites in
        let from_t = Random.State.float st horizon in
        let len = 0.5 +. Random.State.float st (max 1e-9 max_len) in
        { site; from_t; until_t = from_t +. len })
  in
  let count scale =
    if intensity = 0.0 then 0
    else Random.State.int st (1 + int_of_float (intensity *. scale))
  in
  {
    crashes = windows (count 2.5) (horizon /. 5.0);
    stalls = windows (count 3.5) (horizon /. 8.0);
    loss = intensity *. Random.State.float st 0.4;
    dup = intensity *. Random.State.float st 0.3;
    retransmit = 1.0 +. Random.State.float st 2.0;
    horizon;
    seed = Random.State.bits st;
  }

let pp_window db ppf w =
  Format.fprintf ppf "%s@%.1f..%.1f" (Db.site_name db w.site) w.from_t
    w.until_t

let pp db ppf p =
  let pp_list ppf ws =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
      (pp_window db) ppf ws
  in
  Format.fprintf ppf
    "loss=%.2f dup=%.2f retransmit=%.1f horizon=%.0f crashes=[%a] stalls=[%a]"
    p.loss p.dup p.retransmit p.horizon pp_list p.crashes pp_list p.stalls

type t = { plan : plan; rng : Random.State.t }

let injector plan = { plan; rng = Random.State.make [| plan.seed; 0xfa17 |] }
let plan t = t.plan

(* Fault-event telemetry: one counter per injection kind, incremented at
   the moment the injector decides to perturb a delivery. *)
let obs_lost = Ddlock_obs.Metrics.Counter.make "sim.faults.lost_messages"
let obs_dup = Ddlock_obs.Metrics.Counter.make "sim.faults.duplicated_requests"
let obs_crash_delay = Ddlock_obs.Metrics.Counter.make "sim.faults.crash_delays"
let obs_stall_delay = Ddlock_obs.Metrics.Counter.make "sim.faults.stall_delays"

(* Earliest time >= now outside every [ws] window of [site]; windows may
   overlap, so iterate to a fixpoint. *)
let rec past_windows ws ~site ~now =
  match
    List.find_opt
      (fun w -> w.site = site && w.from_t <= now && now < w.until_t)
      ws
  with
  | Some w -> past_windows ws ~site ~now:w.until_t
  | None -> now

let up_at t ~site ~now = past_windows t.plan.crashes ~site ~now

let deliver t ~site ~now ~transit =
  let p = t.plan in
  (* Each send attempt before the horizon may be lost; a loss is noticed
     and retransmitted after [p.retransmit]. *)
  let rec settle at =
    if p.loss > 0.0 && at < p.horizon && Random.State.float t.rng 1.0 < p.loss
    then begin
      Ddlock_obs.Metrics.Counter.incr obs_lost;
      settle (at +. p.retransmit)
    end
    else at
  in
  let arrival = settle now +. transit in
  let crash_free = past_windows p.crashes ~site ~now:arrival in
  if crash_free > arrival then Ddlock_obs.Metrics.Counter.incr obs_crash_delay;
  let stall_free = past_windows p.stalls ~site ~now:crash_free in
  if stall_free > crash_free then
    Ddlock_obs.Metrics.Counter.incr obs_stall_delay;
  stall_free

let duplicated t ~now =
  let p = t.plan in
  let dup =
    p.dup > 0.0 && now < p.horizon && Random.State.float t.rng 1.0 < p.dup
  in
  if dup then Ddlock_obs.Metrics.Counter.incr obs_dup;
  dup
