open Ddlock_graph
open Ddlock_model
open Ddlock_schedule

type config = {
  min_duration : float;
  max_duration : float;
  site_latency : float;
  request_jitter : float;
}

let default_config =
  { min_duration = 1.0; max_duration = 2.0; site_latency = 0.5; request_jitter = 2.0 }

type trace_entry = { time : float; step : Step.t }

type outcome =
  | Finished of { makespan : float }
  | Deadlock of {
      time : float;
      waits_for : (int * Db.entity * int) list;
      cycle : int list;
    }

type run = { outcome : outcome; trace : trace_entry list }

(* Waiters carry their enqueue time so the grant path can record the
   lock wait-time histogram. *)
type lock_state = {
  mutable holder : int option;
  waiters : (Step.t * float) Queue.t;
}

let obs_lock_wait = Ddlock_obs.Metrics.Histogram.make "sim.lock_wait_us"
let obs_queue_depth = Ddlock_obs.Metrics.Histogram.make "sim.queue_depth"
let obs_runs = Ddlock_obs.Metrics.Counter.make "sim.runs"
let obs_deadlocks = Ddlock_obs.Metrics.Counter.make "sim.deadlock_runs"

(* Sim time is abstract (float); wait times are recorded in micro-units
   so the log2 buckets resolve sub-unit waits. *)
let obs_wait ~since ~now =
  Ddlock_obs.Metrics.Histogram.observe obs_lock_wait
    (int_of_float ((now -. since) *. 1e6))

(* A Lock step first travels to the lock manager (Arrive), then, once
   granted, executes (Complete).  Unlocks only have a Complete phase. *)
type event = Arrive of Step.t | Complete of Step.t

let run ?(config = default_config) ?(faults = Faults.none) rng sys =
  let n = System.size sys in
  let db = System.db sys in
  let ne = Db.entity_count db in
  let inj = Faults.injector faults in
  let locks = Array.init ne (fun _ -> { holder = None; waiters = Queue.create () }) in
  let executed = Array.init n (fun i -> Transaction.empty_prefix (System.txn sys i)) in
  let started = Array.init n (fun i -> Transaction.empty_prefix (System.txn sys i)) in
  (* Requests already processed by a lock manager, for dedup of
     duplicated deliveries. *)
  let arrived = Array.init n (fun i -> Transaction.empty_prefix (System.txn sys i)) in
  let last_site = Array.make n (-1) in
  let events : event Pqueue.t = Pqueue.create () in
  let trace = ref [] in
  let now = ref 0.0 in
  let duration i e =
    let d =
      config.min_duration
      +. Random.State.float rng (max 1e-9 (config.max_duration -. config.min_duration))
    in
    let site = Db.site_of db e in
    let extra = if last_site.(i) >= 0 && last_site.(i) <> site then config.site_latency else 0.0 in
    last_site.(i) <- site;
    d +. extra
  in
  (* Begin executing a node whose predecessors are all done.  Locks first
     travel to the lock manager; everything else is scheduled directly.
     Every message (request, grant, release) goes through the fault
     injector, which may add loss-retransmission and crash/stall delays
     and duplicate lock requests. *)
  let rec start (step : Step.t) =
    let tx = System.txn sys step.txn in
    let nd = Transaction.node tx step.node in
    Bitset.set started.(step.txn) step.node;
    let site = Db.site_of db nd.entity in
    match nd.Node.op with
    | Node.Unlock ->
        let d = duration step.txn nd.entity in
        Pqueue.push events
          (Faults.deliver inj ~site ~now:!now ~transit:d)
          (Complete step)
    | Node.Lock ->
        let transit = Random.State.float rng (max 1e-9 config.request_jitter) in
        Pqueue.push events
          (Faults.deliver inj ~site ~now:!now ~transit)
          (Arrive step);
        if Faults.duplicated inj ~now:!now then
          Pqueue.push events
            (Faults.deliver inj ~site ~now:!now ~transit)
            (Arrive step)
  and start_ready i =
    List.iter
      (fun v ->
        if not (Bitset.mem started.(i) v) then start (Step.v i v))
      (Transaction.minimal_remaining (System.txn sys i) executed.(i))
  in
  for i = 0 to n - 1 do
    start_ready i
  done;
  let finished () =
    let rec go i =
      i >= n
      || (Bitset.cardinal executed.(i)
            = Transaction.node_count (System.txn sys i)
         && go (i + 1))
    in
    go 0
  in
  let entity_of (step : Step.t) =
    (Transaction.node (System.txn sys step.txn) step.node).Node.entity
  in
  (* The grant travels back from the manager to the transaction, so it is
     subject to the same message faults as requests. *)
  let grant_delivery (w : Step.t) e =
    Pqueue.push events
      (Faults.deliver inj
         ~site:(Db.site_of db e)
         ~now:!now
         ~transit:(duration w.Step.txn e))
      (Complete w)
  in
  let rec loop () =
    match Pqueue.pop events with
    | None -> ()
    | Some (t, Arrive step) ->
        now := t;
        (* Duplicated deliveries of the same request are ignored. *)
        if not (Bitset.mem arrived.(step.Step.txn) step.Step.node) then begin
          Bitset.set arrived.(step.Step.txn) step.Step.node;
          let l = locks.(entity_of step) in
          match l.holder with
          | None ->
              l.holder <- Some step.Step.txn;
              grant_delivery step (entity_of step)
          | Some _ ->
              Queue.push (step, t) l.waiters;
              Ddlock_obs.Metrics.Histogram.observe obs_queue_depth
                (Queue.length l.waiters)
        end;
        loop ()
    | Some (t, Complete step) ->
        now := t;
        trace := { time = t; step } :: !trace;
        Bitset.set executed.(step.txn) step.node;
        let tx = System.txn sys step.txn in
        let nd = Transaction.node tx step.node in
        (match nd.Node.op with
        | Node.Unlock ->
            let l = locks.(nd.entity) in
            l.holder <- None;
            (match Queue.take_opt l.waiters with
            | None -> ()
            | Some (w, since) ->
                obs_wait ~since ~now:!now;
                l.holder <- Some w.Step.txn;
                grant_delivery w nd.entity)
        | Node.Lock -> ());
        start_ready step.txn;
        loop ()
  in
  loop ();
  Ddlock_obs.Metrics.Counter.incr obs_runs;
  let trace = List.rev !trace in
  let outcome =
    if finished () then Finished { makespan = !now }
    else begin
      let waits_for = ref [] in
      Array.iteri
        (fun e l ->
          match l.holder with
          | Some h ->
              Queue.iter
                (fun ((w : Step.t), _) ->
                  waits_for := (w.txn, e, h) :: !waits_for)
                l.waiters
          | None -> ())
        locks;
      let g = Digraph.create n (List.map (fun (w, _, h) -> (w, h)) !waits_for) in
      let cycle = Option.value ~default:[] (Topo.find_cycle g) in
      Ddlock_obs.Metrics.Counter.incr obs_deadlocks;
      Deadlock { time = !now; waits_for = List.rev !waits_for; cycle }
    end
  in
  { outcome; trace }

let schedule_of_run r = List.map (fun e -> e.step) r.trace

type batch_stats = {
  runs : int;
  deadlocks : int;
  non_serializable : int;
  mean_makespan : float;
}

let batch ?config ?faults rng sys ~runs =
  let deadlocks = ref 0 and bad = ref 0 and total = ref 0.0 and completed = ref 0 in
  for _ = 1 to runs do
    let r = run ?config ?faults rng sys in
    match r.outcome with
    | Deadlock _ -> incr deadlocks
    | Finished { makespan } ->
        incr completed;
        total := !total +. makespan;
        if not (Dgraph.is_serializable sys (schedule_of_run r)) then incr bad
  done;
  {
    runs;
    deadlocks = !deadlocks;
    non_serializable = !bad;
    mean_makespan = (if !completed = 0 then Float.nan else !total /. float_of_int !completed);
  }

let pp_outcome sys ppf = function
  | Finished { makespan } -> Format.fprintf ppf "finished at t=%.2f" makespan
  | Deadlock { time; waits_for; cycle } ->
      Format.fprintf ppf "@[<v>deadlock at t=%.2f" time;
      List.iter
        (fun (w, e, h) ->
          Format.fprintf ppf "@,T%d waits for %s held by T%d" (w + 1)
            (Db.entity_name (System.db sys) e)
            (h + 1))
        waits_for;
      if cycle <> [] then
        Format.fprintf ppf "@,wait-for cycle: %a"
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " -> ")
             (fun ppf i -> Format.fprintf ppf "T%d" (i + 1)))
          cycle;
      Format.fprintf ppf "@]"

let pp_batch ppf s =
  Format.fprintf ppf
    "%d runs: %d deadlocked, %d non-serializable, mean makespan %.2f" s.runs
    s.deadlocks s.non_serializable s.mean_makespan
