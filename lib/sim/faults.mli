open Ddlock_model

(** Deterministic, seedable fault plans for the discrete-event runtimes.

    A {!plan} describes everything that can go wrong during one run:
    per-site crash windows, lock-manager stall windows, and probabilistic
    loss/duplication of the messages exchanged between transactions and
    lock managers (lock requests, grants, releases).  Plans are plain
    data: the same plan replayed against the same simulator seed yields a
    byte-identical trace, which the test suite relies on.

    Random fault decisions (which message is lost or duplicated) are
    drawn from a {e private} RNG stream seeded by [plan.seed], so
    enabling faults never perturbs the simulator's own randomness: a run
    with [Faults.none] is identical to a run without the fault layer.

    Fault semantics, as consumed by the runtimes:

    - a {e lost} message is retransmitted after [retransmit] time units,
      repeatedly, until a copy gets through — loss therefore shows up as
      delay, never as silent drop;
    - a {e duplicated} lock request is delivered twice; lock managers
      must treat requests idempotently (the runtimes dedupe on arrival);
    - a message addressed to a {e crashed} site is buffered and processed
      when the site comes back up;
    - a {e stalled} lock manager defers processing to the end of the
      stall window;
    - in {!Recovery} a crash additionally {e drops the site's lock
      tables}: transactions holding locks there are aborted (their
      in-flight grants die with the incarnation bump) and queued waiters
      must retransmit their requests.  {!Runtime} and [Rw_runtime] have
      no abort machinery, so for them a crash is pure unavailability
      (fail-stop with stable lock tables).

    Probabilistic faults only strike before [horizon]; after it the
    network is perfect and no site crashes, so every finite plan lets the
    system eventually quiesce — the liveness half of the chaos
    invariants. *)

type window = { site : Db.site; from_t : float; until_t : float }
(** Site [site] is down (or stalled) during [[from_t, until_t)]. *)

type plan = {
  crashes : window list;  (** crash/restart windows, per site *)
  stalls : window list;  (** lock-manager stall windows, per site *)
  loss : float;  (** per-attempt message-loss probability, in [[0, 1)] *)
  dup : float;  (** lock-request duplication probability, in [[0, 1)] *)
  retransmit : float;  (** retransmission timeout after a loss *)
  horizon : float;  (** probabilistic faults only strike before this time *)
  seed : int;  (** seeds the private fault-decision RNG stream *)
}

(** The empty plan: no faults, ever.  Runtimes take it as default. *)
val none : plan

val is_none : plan -> bool

(** [random st db ~intensity ~horizon] draws a plan for [db] whose
    severity scales with [intensity] (clamped to [[0, 1]]): number and
    length of crash/stall windows, loss and duplication probabilities.
    [intensity = 0.] yields a plan with no probabilistic faults and no
    windows.  The plan's [seed] is drawn from [st], so distinct calls
    yield independent fault streams. *)
val random : Random.State.t -> Db.t -> intensity:float -> horizon:float -> plan

val pp : Db.t -> Format.formatter -> plan -> unit

(** {1 Injectors — per-run mutable fault state} *)

type t
(** An injector owns the plan plus the private RNG stream; create a
    fresh one per run. *)

val injector : plan -> t
val plan : t -> plan

(** [deliver t ~site ~now ~transit] is the time at which a message sent
    at [now] with nominal transit time [transit] is {e processed} by
    [site]'s lock manager (or, for grant/release messages, by the
    transaction): loss-retransmission delays are drawn, then the arrival
    is pushed past any crash and stall window of [site].  Monotone:
    always [>= now +. transit]. *)
val deliver : t -> site:Db.site -> now:float -> transit:float -> float

(** [duplicated t ~now] — should a lock request sent at [now] be
    delivered twice?  Always [false] at or past the horizon. *)
val duplicated : t -> now:float -> bool

(** [up_at t ~site ~now] is the earliest time [>= now] at which [site]
    is not inside a crash window. *)
val up_at : t -> site:Db.site -> now:float -> float
