open Ddlock_model
open Ddlock_schedule

(** Chaos invariant harness: replay thousands of seeded
    (system × fault-plan × scheme) executions and assert that the safety
    and liveness invariants survive every fault plan.

    Invariants checked on each {!Recovery} run:

    - {e liveness}: under a finite fault plan every transaction commits
      before the [max_time] cutoff ({!Starved} otherwise);
    - {e legality}: the committed trace is a legal, complete schedule of
      the system ({!Illegal_trace});
    - {e mutual exclusion}: no entity is granted twice without an
      intervening release, checked by an independent lock-table replay of
      the committed trace ({!Double_grant});
    - {e serializability}: when the committed {e execution} is two-phase
      (per transaction, no lock step after one of its unlocks), the trace
      must be conflict-serializable ({!Non_serializable}). The gate is on
      the trace, not on {!Transaction.is_two_phase}: a two-phase partial
      order can still admit non-two-phase linearizations (the paper's
      safety question), which may legitimately be non-serializable.

    Plain {!Runtime} executions under the same plans are also probed for
    trace legality — the injection points must never fabricate steps. *)

type violation =
  | Starved of { committed : int; txns : int }
  | Illegal_trace
  | Double_grant of { entity : Db.entity; first : int; second : int }
      (** [entity] granted to [second] while [first] still held it *)
  | Non_serializable

val pp_violation : Db.t -> Format.formatter -> violation -> unit

(** Independent mutual-exclusion scan of a trace: replays a lock table
    and reports the first re-grant without an intervening release. *)
val double_grant : System.t -> Step.t list -> violation option

(** [check_run sys r] — all invariant violations of one recovery run.
    Serializability is only required when the committed execution is
    two-phase. *)
val check_run : System.t -> Recovery.run -> violation list

(** [run_case ~scheme ~faults ?config rng sys] — one seeded execution
    plus its violations. *)
val run_case :
  scheme:Recovery.scheme ->
  faults:Faults.plan ->
  ?config:Recovery.config ->
  Random.State.t ->
  System.t ->
  violation list * Recovery.run

type case = { label : string; system : System.t }

(** The default chaos menagerie: a 2PL workload that reliably deadlocks
    (dining philosophers), a non-two-phase deadlocking workload (copies
    of a guard ring), a certified safe∧DF ordered-2PL workload, a
    zipfian hotspot, a TPC-C-style new-order/payment mix
    ({!Ddlock_workload.Gentx.tpcc_system}) and a partial-replication
    ROWA workload ({!Ddlock_workload.Gentx.replicated_system}). *)
val default_cases : unit -> case list

(** All five recovery schemes with default parameters. *)
val default_schemes : (string * Recovery.scheme) list

type report = {
  runs : int;  (** total executions (recovery runs + runtime probes) *)
  clean_runs : int;  (** runs with no violation *)
  total_aborts : int;
  max_aborts_single_txn : int;
  mean_makespan : float;  (** over fully-committed runs *)
  violations : (int * string * violation) list;
      (** (seed, "case/scheme", violation), newest first *)
}

(** [sweep ~seeds ~schemes ~cases ?intensity ?horizon ?config base_seed]
    runs every (seed × case × scheme) combination: each seed derives a
    fresh random fault plan per case (severity up to [intensity], default
    [0.8]; fault horizon [horizon], default [40.]) and an independent
    simulator RNG, so the sweep is reproducible from [base_seed] alone. *)
val sweep :
  seeds:int ->
  schemes:(string * Recovery.scheme) list ->
  cases:case list ->
  ?intensity:float ->
  ?horizon:float ->
  ?config:Recovery.config ->
  int ->
  report

val pp_report : Format.formatter -> report -> unit
