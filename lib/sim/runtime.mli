open Ddlock_model
open Ddlock_schedule

(** Discrete-event execution of a transaction system on a multi-site
    database with per-entity lock managers.

    Each transaction executes its partial order with true intra-
    transaction concurrency: all ready steps proceed in parallel (one
    in-flight step per site, reflecting the model's site-total orders).
    A ready Lock on a busy entity enqueues the transaction in the
    entity's FIFO wait queue; Unlocks release and grant to the queue
    head.  Step durations are drawn from the configuration, so different
    seeds explore different interleavings.

    A run ends when all transactions finish, or when no event is in
    flight and someone is blocked — a runtime deadlock.  The trace is a
    legal schedule of the system by construction (re-checked in tests). *)

type config = {
  min_duration : float;  (** lower bound of a step's service time *)
  max_duration : float;  (** upper bound (uniform) *)
  site_latency : float;  (** added once per cross-site transition *)
  request_jitter : float;
      (** a Lock request reaches its entity's lock manager after a
          uniform [0, request_jitter) transit delay, so concurrent
          requests race in different orders on different seeds *)
}

val default_config : config

type trace_entry = { time : float; step : Step.t }

type outcome =
  | Finished of { makespan : float }
  | Deadlock of {
      time : float;
      waits_for : (int * Db.entity * int) list;
          (** (blocked txn, entity, holder) arcs of the wait-for graph *)
      cycle : int list;  (** a cycle of blocked transactions *)
    }

type run = { outcome : outcome; trace : trace_entry list }

(** [run ?config ?faults rng sys] executes one instance of the system.

    [faults] (default {!Faults.none}) injects message loss with
    retransmission, duplication of lock requests (deduplicated at the
    manager), and crash/stall windows during which a site buffers
    incoming messages.  This runtime has no abort machinery, so crashed
    sites keep their lock tables (fail-stop with stable storage); see
    {!Recovery} for crashes that drop lock state.  With [faults] absent
    the run is byte-identical to the fault-free simulator. *)
val run :
  ?config:config -> ?faults:Faults.plan -> Random.State.t -> System.t -> run

(** The schedule executed by a run (steps in time order). *)
val schedule_of_run : run -> Step.t list

type batch_stats = {
  runs : int;
  deadlocks : int;
  non_serializable : int;
      (** completed runs whose schedule is not serializable *)
  mean_makespan : float;  (** over completed runs; nan if none *)
}

(** [batch ?config ?faults rng sys ~runs] — repeated seeded executions
    with serializability checking of every completed trace.  The same
    fault plan is replayed each run (with a fresh injector), so only the
    simulator's randomness varies. *)
val batch :
  ?config:config ->
  ?faults:Faults.plan ->
  Random.State.t ->
  System.t ->
  runs:int ->
  batch_stats

val pp_outcome : System.t -> Format.formatter -> outcome -> unit
val pp_batch : Format.formatter -> batch_stats -> unit

(** Record one lock wait into the shared ["sim.lock_wait_us"] histogram
    (sim time is scaled to micro-units so log2 buckets resolve sub-unit
    waits).  Shared with {!Recovery}, whose runs feed the same metric. *)
val obs_wait : since:float -> now:float -> unit
