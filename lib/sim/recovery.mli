open Ddlock_model
open Ddlock_schedule

(** Runtime deadlock handling: the classic timestamp schemes of
    Rosenkrantz, Stearns & Lewis [RSL, cited by the paper], periodic
    detect-and-abort, and lock-wait timeout with exponential backoff —
    the {e dynamic} alternatives to the paper's static guarantees.

    Unlike {!Runtime}, transactions here can {e abort}: an aborted
    transaction releases all its locks, discards its progress, and
    restarts after a delay, keeping its {e original} timestamp (which is
    what makes wound-wait and wait-die starvation-free).

    - {b Wait-die} (non-preemptive): an older requester waits; a younger
      one dies (aborts itself).
    - {b Wound-wait} (preemptive): an older requester wounds the holder
      (the younger holder aborts); a younger requester waits.
    - {b Detect} : requests always wait; every [period] the wait-for
      graph is checked and the youngest transaction on a cycle aborts.
    - {b Timeout} : requests wait at most a deadline; a request still
      ungranted when its deadline fires aborts the transaction, which
      restarts after an exponential-backoff delay with jitter.  The wait
      window starts at [base], doubles with every timeout up to
      [max_retries] doublings, and is capped at [cap]; the jitter
      (uniform in [[0.5w, 1.5w)]) breaks symmetric restart races — the
      probabilistic cousin of the timestamp schemes.
    - {b Probabilistic} (preemptive): wound-wait with {e random}
      per-incarnation priorities instead of timestamps, after Oliveira &
      Barbosa's probabilistic deadlock-avoidance scheme
      (arXiv:1010.4411).  Every incarnation draws a fresh uniform
      priority; a higher-priority requester wounds the holder, a
      lower-priority one waits.  Wait arcs always ascend the strict
      (priority, index) order, so deadlock is impossible; because a
      wounded transaction {e redraws} on restart, it eventually outranks
      any fixed set of rivals with probability 1 — starvation-freedom
      holds probabilistically rather than by timestamp monotonicity, at
      the price of more aborts than wound-wait on skewed workloads.

    Wound-wait and wait-die can never deadlock; detect-and-abort resolves
    every deadlock it finds; timeout breaks every deadlock by timing out
    a participant.  These properties are validated in the test suite
    against workloads that reliably deadlock under {!Runtime}.

    All schemes accept a {!Faults.plan}.  On top of the message faults of
    {!Runtime}, a crash window here {e drops the site's lock tables}:
    transactions holding locks at the crashed site are aborted (their
    in-flight grants die with the incarnation bump) and queued waiters
    retransmit their requests once the site is back up. *)

type scheme =
  | Wait_die
  | Wound_wait
  | Detect of { period : float }
  | Timeout of { base : float; cap : float; max_retries : int }
  | Probabilistic

type config = {
  base : Runtime.config;
  restart_delay : float;  (** delay before an aborted transaction retries *)
  max_time : float;  (** safety cutoff; runs never exceed this clock *)
}

val default_config : config

(** [Timeout] with the default base/cap/retry budget, tuned to resolve
    the contended test workloads well before [max_time]. *)
val default_timeout : scheme

type stats = {
  commits : int;
  aborts : int;
  makespan : float;  (** time of the last commit *)
  timed_out : bool;  (** hit [max_time] before every transaction committed *)
}

type run = {
  stats : stats;
  aborts_by_txn : int array;
      (** per-transaction abort counts; a large single entry is
          starvation made visible *)
  committed_trace : Step.t list;
      (** steps of committed incarnations only, in completion order — a
          legal schedule of the system when [timed_out = false] *)
  stuck_waits : (int * int * int) list;
      (** diagnostic: (waiter txn, entity, holder txn) wait-for arcs when
          a run ends without all transactions committed *)
}

(** [run ~scheme ?config ?faults rng sys] executes until every
    transaction has committed (or [max_time]). *)
val run :
  scheme:scheme ->
  ?config:config ->
  ?faults:Faults.plan ->
  Random.State.t ->
  System.t ->
  run

(** Repeated seeded runs; accumulates commits/aborts and validates each
    committed trace's legality and serializability. *)
type batch_stats = {
  runs : int;
  total_aborts : int;
  max_aborts_single_txn : int;
      (** the worst abort count suffered by any single transaction in any
          run — bounded under wait-die/wound-wait (no starvation) *)
  timeouts : int;
  illegal_traces : int;
  non_serializable_traces : int;
  mean_makespan : float;
}

val batch :
  scheme:scheme ->
  ?config:config ->
  ?faults:Faults.plan ->
  Random.State.t ->
  System.t ->
  runs:int ->
  batch_stats

val pp_batch : Format.formatter -> batch_stats -> unit
