type 'a entry = { key : float; seq : int; value : 'a }
type 'a t = { mutable data : 'a entry array; mutable len : int; mutable seq : int }

let create () = { data = [||]; len = 0; seq = 0 }
let is_empty q = q.len = 0
let size q = q.len

let less a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let swap q i j =
  let t = q.data.(i) in
  q.data.(i) <- q.data.(j);
  q.data.(j) <- t

let rec up q i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if less q.data.(i) q.data.(p) then begin
      swap q i p;
      up q p
    end
  end

let rec down q i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let m = ref i in
  if l < q.len && less q.data.(l) q.data.(!m) then m := l;
  if r < q.len && less q.data.(r) q.data.(!m) then m := r;
  if !m <> i then begin
    swap q i !m;
    down q !m
  end

let push q key value =
  let entry = { key; seq = q.seq; value } in
  q.seq <- q.seq + 1;
  if q.len = Array.length q.data then begin
    let cap = max 16 (2 * q.len) in
    let data = Array.make cap entry in
    Array.blit q.data 0 data 0 q.len;
    q.data <- data
  end;
  q.data.(q.len) <- entry;
  q.len <- q.len + 1;
  up q (q.len - 1)

let pop q =
  if q.len = 0 then None
  else begin
    let top = q.data.(0) in
    q.len <- q.len - 1;
    if q.len > 0 then begin
      q.data.(0) <- q.data.(q.len);
      down q 0
    end;
    Some (top.key, top.value)
  end

let peek_key q = if q.len = 0 then None else Some q.data.(0).key
