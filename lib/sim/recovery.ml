open Ddlock_graph
open Ddlock_model
open Ddlock_schedule

type scheme =
  | Wait_die
  | Wound_wait
  | Detect of { period : float }
  | Timeout of { base : float; cap : float; max_retries : int }
  | Probabilistic

type config = {
  base : Runtime.config;
  restart_delay : float;
  max_time : float;
}

let default_config =
  { base = Runtime.default_config; restart_delay = 3.0; max_time = 100_000.0 }

let default_timeout = Timeout { base = 6.0; cap = 60.0; max_retries = 6 }

type stats = {
  commits : int;
  aborts : int;
  makespan : float;
  timed_out : bool;
}

type run = {
  stats : stats;
  aborts_by_txn : int array;
  committed_trace : Step.t list;
  stuck_waits : (int * int * int) list;
      (* (waiter, entity, holder) at end of a timed-out run *)
}

type event =
  | Arrive of Step.t * int  (** lock request reaches the manager *)
  | Complete of Step.t * int  (** step finishes executing *)
  | Restart of int * int  (** transaction, incarnation *)
  | Tick  (** detect-and-abort period *)
  | Crash of Db.site  (** site goes down and drops its lock tables *)
  | Deadline of Step.t * int  (** lock-wait timeout check *)

(* Waiters carry (step, incarnation, enqueue time); the time feeds the
   shared lock wait-time histogram and survives the re-queue that happens
   when a grant replays the remaining waiters against a new holder. *)
type lock_state = {
  mutable holder : int option;
  waiters : (Step.t * int * float) Queue.t;
}

let obs_aborts = Ddlock_obs.Metrics.Counter.make "sim.aborts"
let obs_retries = Ddlock_obs.Metrics.Counter.make "sim.retries"
let obs_lock_timeouts = Ddlock_obs.Metrics.Counter.make "sim.lock_timeouts"
let obs_commits = Ddlock_obs.Metrics.Counter.make "sim.commits"
let obs_crashes = Ddlock_obs.Metrics.Counter.make "sim.site_crashes"

let run ~scheme ?(config = default_config) ?(faults = Faults.none) rng sys =
  let n = System.size sys in
  let db = System.db sys in
  let ne = Db.entity_count db in
  let cfg = config.base in
  let inj = Faults.injector faults in
  let locks =
    Array.init ne (fun _ -> { holder = None; waiters = Queue.create () })
  in
  let executed =
    Array.init n (fun i -> Transaction.empty_prefix (System.txn sys i))
  in
  let started =
    Array.init n (fun i -> Transaction.empty_prefix (System.txn sys i))
  in
  (* Requests processed by a lock manager in the current incarnation, for
     dedup of duplicated deliveries. *)
  let arrived =
    Array.init n (fun i -> Transaction.empty_prefix (System.txn sys i))
  in
  let incarnation = Array.make n 0 in
  let committed = Array.make n false in
  (* Timeout-abort count per transaction: drives the exponential
     backoff. *)
  let attempts = Array.make n 0 in
  let aborts_by_txn = Array.make n 0 in
  (* Timestamp (priority): arrival order; kept across restarts. *)
  let ts i = i in
  (* Probabilistic scheme: a random priority per incarnation, redrawn on
     every abort.  Drawn only under [Probabilistic] so the other schemes'
     random streams are unchanged. *)
  let prio =
    match scheme with
    | Probabilistic -> Array.init n (fun _ -> Random.State.float rng 1.0)
    | Wait_die | Wound_wait | Detect _ | Timeout _ -> [||]
  in
  (* Strict total order on live incarnations (ties broken by index). *)
  let beats r h = prio.(r) > prio.(h) || (prio.(r) = prio.(h) && r < h) in
  let last_site = Array.make n (-1) in
  let events : event Pqueue.t = Pqueue.create () in
  let now = ref 0.0 in
  let commits = ref 0 and aborts = ref 0 and makespan = ref 0.0 in
  let trace = ref [] in
  (* (step, inc) completions, newest first *)
  let duration i e =
    let d =
      cfg.Runtime.min_duration
      +. Random.State.float rng
           (max 1e-9 (cfg.Runtime.max_duration -. cfg.Runtime.min_duration))
    in
    let site = Db.site_of db e in
    let extra =
      if last_site.(i) >= 0 && last_site.(i) <> site then
        cfg.Runtime.site_latency
      else 0.0
    in
    last_site.(i) <- site;
    d +. extra
  in
  let entity_of (step : Step.t) =
    (Transaction.node (System.txn sys step.txn) step.node).Node.entity
  in
  (* Exponential backoff with jitter: full window after [attempts]
     timeouts, growth capped at [max_retries] doublings and [cap]. *)
  let backoff_window base cap max_retries j =
    let k = min attempts.(j) max_retries in
    Float.min cap (base *. (2.0 ** float_of_int k))
  in
  let jittered w = w *. (0.5 +. Random.State.float rng 1.0) in
  let restart_backoff j =
    match scheme with
    | Timeout { base; cap; max_retries } ->
        jittered (backoff_window base cap max_retries j)
    | Wait_die | Wound_wait | Detect _ | Probabilistic -> 0.0
  in
  (* The grant message travels back from the manager, subject to faults. *)
  let push_grant (w : Step.t) winc e =
    Pqueue.push events
      (Faults.deliver inj
         ~site:(Db.site_of db e)
         ~now:!now
         ~transit:(duration w.Step.txn e))
      (Complete (w, winc))
  in
  let rec start (step : Step.t) =
    let nd = Transaction.node (System.txn sys step.txn) step.node in
    Bitset.set started.(step.txn) step.node;
    let inc = incarnation.(step.txn) in
    let site = Db.site_of db nd.entity in
    match nd.Node.op with
    | Node.Unlock ->
        let d = duration step.txn nd.entity in
        Pqueue.push events
          (Faults.deliver inj ~site ~now:!now ~transit:d)
          (Complete (step, inc))
    | Node.Lock ->
        let transit =
          Random.State.float rng (max 1e-9 cfg.Runtime.request_jitter)
        in
        Pqueue.push events
          (Faults.deliver inj ~site ~now:!now ~transit)
          (Arrive (step, inc));
        if Faults.duplicated inj ~now:!now then
          Pqueue.push events
            (Faults.deliver inj ~site ~now:!now ~transit)
            (Arrive (step, inc))
  and start_ready i =
    if not committed.(i) then
      List.iter
        (fun v -> if not (Bitset.mem started.(i) v) then start (Step.v i v))
        (Transaction.minimal_remaining (System.txn sys i) executed.(i))
  in
  (* Grant a free entity to the first still-valid waiter, then replay the
     remaining waiters against the new holder: the scheme's rule must be
     re-applied whenever the holder changes, otherwise forbidden wait
     directions (e.g. younger-waits-on-older under wait-die) leak in via
     the queue and can re-create deadlocks. *)
  let rec grant e =
    let l = locks.(e) in
    let rec pop_valid () =
      match Queue.take_opt l.waiters with
      | None -> None
      | Some ((w, winc, since) : Step.t * int * float) ->
          if winc = incarnation.(w.Step.txn) && not committed.(w.Step.txn)
          then Some (w, winc, since)
          else pop_valid ()
    in
    if l.holder = None then
      match pop_valid () with
      | None -> ()
      | Some (w, winc, since) ->
          Runtime.obs_wait ~since ~now:!now;
          l.holder <- Some w.Step.txn;
          push_grant w winc e;
          let rest = ref [] in
          let rec drain () =
            match pop_valid () with
            | None -> ()
            | Some entry ->
                rest := entry :: !rest;
                drain ()
          in
          drain ();
          List.iter
            (fun (w', winc', since') ->
              if winc' = incarnation.(w'.Step.txn) then
                match l.holder with
                | Some h -> on_lock_conflict w' winc' ~since:since' h
                | None ->
                    (* the scheme aborted the holder meanwhile *)
                    Runtime.obs_wait ~since:since' ~now:!now;
                    l.holder <- Some w'.Step.txn;
                    push_grant w' winc' e)
            (List.rev !rest)

  and abort j =
    incr aborts;
    Ddlock_obs.Metrics.Counter.incr obs_aborts;
    aborts_by_txn.(j) <- aborts_by_txn.(j) + 1;
    incarnation.(j) <- incarnation.(j) + 1;
    (match scheme with
    | Probabilistic ->
        (* Redraw: a repeatedly-wounded transaction eventually draws the
           top priority, which bounds starvation with probability 1. *)
        prio.(j) <- Random.State.float rng 1.0
    | Wait_die | Wound_wait | Detect _ | Timeout _ -> ());
    executed.(j) <- Transaction.empty_prefix (System.txn sys j);
    started.(j) <- Transaction.empty_prefix (System.txn sys j);
    arrived.(j) <- Transaction.empty_prefix (System.txn sys j);
    (* Release everything j holds; stale queue entries and in-flight
       events die via the incarnation check. *)
    for e = 0 to ne - 1 do
      if locks.(e).holder = Some j then begin
        locks.(e).holder <- None;
        grant e
      end
    done;
    Pqueue.push events
      (!now +. config.restart_delay +. restart_backoff j)
      (Restart (j, incarnation.(j)))

  and on_lock_conflict (step : Step.t) inc ?(since = Float.nan) holder =
    let since = if Float.is_nan since then !now else since in
    let r = step.Step.txn in
    match scheme with
    | Detect _ -> Queue.push (step, inc, since) locks.(entity_of step).waiters
    | Timeout { base; cap; max_retries } ->
        Queue.push (step, inc, since) locks.(entity_of step).waiters;
        let w = jittered (backoff_window base cap max_retries r) in
        Pqueue.push events (!now +. w) (Deadline (step, inc))
    | Wait_die ->
        if ts r < ts holder then
          Queue.push (step, inc, since) locks.(entity_of step).waiters
        else abort r (* younger requester dies *)
    | Wound_wait ->
        if ts r < ts holder then begin
          (* older requester wounds the younger holder and takes over *)
          abort holder;
          let l = locks.(entity_of step) in
          (* abort released the entity (holder was [holder]); it may have
             been re-granted to a queued waiter — re-apply the rule
             against the new holder.  Queueing unconditionally here would
             let an older transaction wait behind a younger one (a
             descending wait arc), and one such arc is enough to close a
             wait-for cycle that the scheme exists to preclude. *)
          match l.holder with
          | None ->
              l.holder <- Some r;
              push_grant step inc (entity_of step)
          | Some h' -> on_lock_conflict step inc ~since h'
        end
        else Queue.push (step, inc, since) locks.(entity_of step).waiters
    | Probabilistic ->
        (* Wound-wait with random per-incarnation priorities [O&B,
           arXiv:1010.4411]: a higher-priority requester preempts the
           holder, a lower-priority one waits.  Wait arcs then always
           ascend the (priority, index) total order, so the wait-for
           graph is acyclic — no deadlock — and the redraw-on-abort
           makes persistent starvation a probability-zero event. *)
        if beats r holder then begin
          abort holder;
          let l = locks.(entity_of step) in
          (* Same re-application as wound-wait above: the entity may have
             been re-granted to a queued waiter that [r] also beats, and
             waiting behind it would be a descending arc — the cycle
             seed.  (Found by the partial-replication chaos fuzz.) *)
          match l.holder with
          | None ->
              l.holder <- Some r;
              push_grant step inc (entity_of step)
          | Some h' -> on_lock_conflict step inc ~since h'
        end
        else Queue.push (step, inc, since) locks.(entity_of step).waiters
  in
  (* A site crash drops its lock tables: holders of its entities abort
     (their in-flight grants die with the incarnation bump) and queued
     waiters are lost — still-valid ones retransmit their requests, which
     the fault layer defers past the crash window. *)
  let on_crash s =
    Ddlock_obs.Metrics.Counter.incr obs_crashes;
    for e = 0 to ne - 1 do
      if Db.site_of db e = s then begin
        let l = locks.(e) in
        let rec drop () =
          match Queue.take_opt l.waiters with
          | None -> ()
          | Some ((w, winc, _) : Step.t * int * float) ->
              if winc = incarnation.(w.Step.txn) && not committed.(w.Step.txn)
              then begin
                Bitset.clear arrived.(w.Step.txn) w.Step.node;
                Pqueue.push events
                  (Faults.deliver inj ~site:s ~now:!now
                     ~transit:(Faults.plan inj).Faults.retransmit)
                  (Arrive (w, winc))
              end;
              drop ()
        in
        drop ();
        match l.holder with
        | Some h when not committed.(h) -> abort h
        | _ -> ()
      end
    done
  in
  (* The wait-for graph of currently-valid waiters. *)
  let wait_for_arcs () =
    let arcs = ref [] in
    Array.iteri
      (fun _e l ->
        match l.holder with
        | None -> ()
        | Some h ->
            Queue.iter
              (fun ((w, winc, _) : Step.t * int * float) ->
                if winc = incarnation.(w.Step.txn) then
                  arcs := (w.Step.txn, h) :: !arcs)
              l.waiters)
      locks;
    !arcs
  in
  for i = 0 to n - 1 do
    start_ready i
  done;
  (match scheme with
  | Detect { period } -> Pqueue.push events period Tick
  | Wait_die | Wound_wait | Timeout _ | Probabilistic -> ());
  List.iter
    (fun (w : Faults.window) ->
      Pqueue.push events w.Faults.from_t (Crash w.Faults.site))
    faults.Faults.crashes;
  let rec loop () =
    if !commits < n then
      match Pqueue.pop events with
      | None -> ()
      | Some (t, _) when t > config.max_time -> ()
      | Some (t, ev) ->
          now := t;
          (match ev with
          | Restart (j, inc) ->
              if inc = incarnation.(j) && not committed.(j) then begin
                Ddlock_obs.Metrics.Counter.incr obs_retries;
                start_ready j
              end
          | Crash s -> on_crash s
          | Deadline (step, inc) ->
              (* Still waiting (not granted, not executed) in the same
                 incarnation: time out, abort, restart with backoff. *)
              let j = step.Step.txn in
              if
                inc = incarnation.(j)
                && (not committed.(j))
                && (not (Bitset.mem executed.(j) step.Step.node))
                && locks.(entity_of step).holder <> Some j
              then begin
                attempts.(j) <- attempts.(j) + 1;
                Ddlock_obs.Metrics.Counter.incr obs_lock_timeouts;
                abort j
              end
          | Tick ->
              (match scheme with
              | Detect { period } ->
                  let arcs = wait_for_arcs () in
                  let g = Digraph.create n arcs in
                  (match Topo.find_cycle g with
                  | Some cycle ->
                      (* Abort the youngest (largest timestamp). *)
                      abort (List.fold_left max (List.hd cycle) cycle)
                  | None -> ());
                  if !commits < n then Pqueue.push events (t +. period) Tick
              | Wait_die | Wound_wait | Timeout _ | Probabilistic -> ())
          | Arrive (step, inc) ->
              if
                inc = incarnation.(step.Step.txn)
                && not (Bitset.mem arrived.(step.Step.txn) step.Step.node)
              then begin
                Bitset.set arrived.(step.Step.txn) step.Step.node;
                let l = locks.(entity_of step) in
                match l.holder with
                | None ->
                    l.holder <- Some step.Step.txn;
                    push_grant step inc (entity_of step)
                | Some h -> on_lock_conflict step inc h
              end
          | Complete (step, inc) ->
              if inc = incarnation.(step.Step.txn) then begin
                trace := (step, inc) :: !trace;
                Bitset.set executed.(step.txn) step.node;
                let nd =
                  Transaction.node (System.txn sys step.txn) step.node
                in
                (match nd.Node.op with
                | Node.Unlock ->
                    locks.(nd.entity).holder <- None;
                    grant nd.entity
                | Node.Lock -> ());
                if
                  Bitset.cardinal executed.(step.txn)
                  = Transaction.node_count (System.txn sys step.txn)
                then begin
                  committed.(step.txn) <- true;
                  incr commits;
                  Ddlock_obs.Metrics.Counter.incr obs_commits;
                  makespan := !now
                end
                else start_ready step.txn
              end);
          loop ()
  in
  loop ();
  let committed_trace =
    List.rev_map fst
      (List.filter
         (fun ((s : Step.t), inc) ->
           committed.(s.txn) && inc = incarnation.(s.txn))
         !trace)
  in
  let stuck_waits =
    if !commits < n then
      List.map (fun (w, h) -> (w, -1, h)) (wait_for_arcs ())
    else []
  in
  {
    stats =
      {
        commits = !commits;
        aborts = !aborts;
        makespan = !makespan;
        timed_out = !commits < n;
      };
    aborts_by_txn;
    committed_trace;
    stuck_waits;
  }

type batch_stats = {
  runs : int;
  total_aborts : int;
  max_aborts_single_txn : int;
  timeouts : int;
  illegal_traces : int;
  non_serializable_traces : int;
  mean_makespan : float;
}

let batch ~scheme ?config ?faults rng sys ~runs =
  let aborts = ref 0 and timeouts = ref 0 and max_single = ref 0 in
  let illegal = ref 0 and bad = ref 0 in
  let total = ref 0.0 and completed = ref 0 in
  for _ = 1 to runs do
    let r = run ~scheme ?config ?faults rng sys in
    aborts := !aborts + r.stats.aborts;
    Array.iter (fun a -> if a > !max_single then max_single := a) r.aborts_by_txn;
    if r.stats.timed_out then incr timeouts
    else begin
      incr completed;
      total := !total +. r.stats.makespan;
      if not (Schedule.is_complete sys r.committed_trace) then incr illegal;
      if not (Dgraph.is_serializable sys r.committed_trace) then incr bad
    end
  done;
  {
    runs;
    total_aborts = !aborts;
    max_aborts_single_txn = !max_single;
    timeouts = !timeouts;
    illegal_traces = !illegal;
    non_serializable_traces = !bad;
    mean_makespan =
      (if !completed = 0 then Float.nan else !total /. float_of_int !completed);
  }

let pp_batch ppf s =
  Format.fprintf ppf
    "%d runs: %d aborts (max %d per txn), %d timeouts, %d illegal, %d \
     non-serializable, mean makespan %.2f"
    s.runs s.total_aborts s.max_aborts_single_txn s.timeouts s.illegal_traces
    s.non_serializable_traces s.mean_makespan
