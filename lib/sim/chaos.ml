open Ddlock_model
open Ddlock_schedule

type violation =
  | Starved of { committed : int; txns : int }
  | Illegal_trace
  | Double_grant of { entity : Db.entity; first : int; second : int }
  | Non_serializable

let pp_violation db ppf = function
  | Starved { committed; txns } ->
      Format.fprintf ppf "starved: only %d/%d transactions committed"
        committed txns
  | Illegal_trace -> Format.fprintf ppf "committed trace is not a legal schedule"
  | Double_grant { entity; first; second } ->
      Format.fprintf ppf
        "%s granted to T%d while still held by T%d (no release in between)"
        (Db.entity_name db entity) (second + 1) (first + 1)
  | Non_serializable ->
      Format.fprintf ppf "committed two-phase execution is not serializable"

let double_grant sys trace =
  let db = System.db sys in
  let holder = Array.make (Db.entity_count db) None in
  let rec scan = function
    | [] -> None
    | (s : Step.t) :: rest -> (
        let nd = Transaction.node (System.txn sys s.txn) s.node in
        match nd.Node.op with
        | Node.Lock -> (
            match holder.(nd.entity) with
            | Some first when first <> s.txn ->
                Some (Double_grant { entity = nd.entity; first; second = s.txn })
            | _ ->
                holder.(nd.entity) <- Some s.txn;
                scan rest)
        | Node.Unlock ->
            holder.(nd.entity) <- None;
            scan rest)
  in
  scan trace

(* The static [Transaction.is_two_phase] predicate is not enough here:
   a partial order can be two-phase as a poset yet admit linearizations
   that release an entity before acquiring another (guard rings do).
   The classical 2PL serializability theorem is about the *execution*,
   so we gate on the committed trace itself: per transaction, no Lock
   step after one of its Unlock steps. *)
let execution_two_phase sys trace =
  let released = Array.make (System.size sys) false in
  List.for_all
    (fun (s : Step.t) ->
      let nd = Transaction.node (System.txn sys s.txn) s.node in
      match nd.Node.op with
      | Node.Lock -> not released.(s.txn)
      | Node.Unlock ->
          released.(s.txn) <- true;
          true)
    trace

let check_run sys (r : Recovery.run) =
  let n = System.size sys in
  if r.Recovery.stats.Recovery.timed_out then
    [ Starved { committed = r.Recovery.stats.Recovery.commits; txns = n } ]
  else
    let t = r.Recovery.committed_trace in
    let vs = if Schedule.is_complete sys t then [] else [ Illegal_trace ] in
    let vs = match double_grant sys t with Some v -> v :: vs | None -> vs in
    if execution_two_phase sys t && not (Dgraph.is_serializable sys t) then
      Non_serializable :: vs
    else vs

let run_case ~scheme ~faults ?config rng sys =
  let r = Recovery.run ~scheme ?config ~faults rng sys in
  (check_run sys r, r)

type case = { label : string; system : System.t }

let default_cases () =
  let gentx = Ddlock_workload.Gentx.dining_philosophers in
  let db = Db.one_site_per_entity [ "a"; "b"; "c" ] in
  [
    { label = "philosophers4"; system = gentx 4 };
    {
      label = "ring3x2";
      system = System.copies (Ddlock_workload.Gentx.guard_ring 3) 2;
    };
    {
      label = "ordered2pl";
      system =
        System.create
          (List.init 3 (fun _ -> Builder.two_phase_chain db [ "a"; "b"; "c" ]));
    };
    {
      (* Hotspot contention: 4 transactions fighting zipfian-hot
         entities — the skewed regime where preemptive schemes churn. *)
      label = "zipf-hotspot";
      system =
        Ddlock_workload.Gentx.zipf_system
          (Random.State.make [| 0x21bf |])
          ~sites:2 ~entities:4 ~txns:4 ~theta:1.2;
    };
    {
      (* TPC-C-style mix: new-orders and payments colliding on the hot
         warehouse/district rows, with cross-warehouse stock access. *)
      label = "tpcc2w";
      system =
        Ddlock_workload.Gentx.tpcc_system
          (Random.State.make [| 0x7cc0 |])
          ~warehouses:2 ~txns:4 ~theta:1.2;
    };
    {
      (* Partial replication: ROWA writes spanning overlapping replica
         subsets on 3 sites — cross-site lock chains by construction. *)
      label = "partrep3s";
      system =
        (let rep =
           Ddlock_workload.Gentx.replicated_db ~sites:3 ~entities:4
             ~replication:2
         in
         Ddlock_workload.Gentx.replicated_system
           (Random.State.make [| 0x9e9b |])
           rep ~txns:3 ~entities_per_txn:2);
    };
  ]

let default_schemes =
  [
    ("wait-die", Recovery.Wait_die);
    ("wound-wait", Recovery.Wound_wait);
    ("detect", Recovery.Detect { period = 5.0 });
    ("timeout", Recovery.default_timeout);
    ("probabilistic", Recovery.Probabilistic);
  ]

type report = {
  runs : int;
  clean_runs : int;
  total_aborts : int;
  max_aborts_single_txn : int;
  mean_makespan : float;
  violations : (int * string * violation) list;
}

let obs_runs = Ddlock_obs.Metrics.Counter.make "chaos.runs"
let obs_violations = Ddlock_obs.Metrics.Counter.make "chaos.violations"

let sweep ~seeds ~schemes ~cases ?(intensity = 0.8) ?(horizon = 40.0) ?config
    base_seed =
  Ddlock_obs.Trace.span "chaos.sweep"
    ~args:[ ("seeds", string_of_int seeds) ]
  @@ fun () ->
  let runs = ref 0 and clean = ref 0 in
  let aborts = ref 0 and max_single = ref 0 in
  let total_makespan = ref 0.0 and completed = ref 0 in
  let violations = ref [] in
  for seed = 0 to seeds - 1 do
    List.iteri
      (fun ci case ->
        let plan_rng = Random.State.make [| base_seed; seed; ci; 0xfa |] in
        let severity = intensity *. Random.State.float plan_rng 1.0 in
        let plan =
          Faults.random plan_rng
            (System.db case.system)
            ~intensity:severity ~horizon
        in
        (* Probe the abort-free runtime too: fault hooks must never break
           trace legality, whatever the outcome. *)
        let rt_rng = Random.State.make [| base_seed; seed; ci; 0x51 |] in
        let rt = Runtime.run ~faults:plan rt_rng case.system in
        incr runs;
        Ddlock_obs.Metrics.Counter.incr obs_runs;
        if
          Schedule.is_legal case.system (Runtime.schedule_of_run rt)
          && double_grant case.system (Runtime.schedule_of_run rt) = None
        then incr clean
        else begin
          Ddlock_obs.Metrics.Counter.incr obs_violations;
          violations :=
            (seed, case.label ^ "/runtime", Illegal_trace) :: !violations
        end;
        List.iteri
          (fun si (sname, scheme) ->
            let rng = Random.State.make [| base_seed; seed; ci; si; 0xc4 |] in
            let vs, r = run_case ~scheme ~faults:plan ?config rng case.system in
            incr runs;
            Ddlock_obs.Metrics.Counter.incr obs_runs;
            aborts := !aborts + r.Recovery.stats.Recovery.aborts;
            Array.iter
              (fun a -> if a > !max_single then max_single := a)
              r.Recovery.aborts_by_txn;
            if not r.Recovery.stats.Recovery.timed_out then begin
              incr completed;
              total_makespan :=
                !total_makespan +. r.Recovery.stats.Recovery.makespan
            end;
            match vs with
            | [] -> incr clean
            | vs ->
                List.iter
                  (fun v ->
                    Ddlock_obs.Metrics.Counter.incr obs_violations;
                    violations :=
                      (seed, case.label ^ "/" ^ sname, v) :: !violations)
                  vs)
          schemes)
      cases
  done;
  {
    runs = !runs;
    clean_runs = !clean;
    total_aborts = !aborts;
    max_aborts_single_txn = !max_single;
    mean_makespan =
      (if !completed = 0 then Float.nan
       else !total_makespan /. float_of_int !completed);
    violations = !violations;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "%d runs: %d clean, %d invariant violations, %d aborts (max %d per txn), \
     mean makespan %.2f"
    r.runs r.clean_runs
    (List.length r.violations)
    r.total_aborts r.max_aborts_single_txn r.mean_makespan;
  List.iteri
    (fun i (seed, where, _) ->
      if i < 10 then
        Format.fprintf ppf "@.  violation in %s at seed %d" where seed)
    r.violations
