(** A mutable binary min-heap keyed by float — the simulator's event
    queue.  Ties are broken by insertion order (FIFO), keeping runs
    deterministic for a fixed seed. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

(** [push q key v] *)
val push : 'a t -> float -> 'a -> unit

(** Smallest key with its value; [None] when empty. *)
val pop : 'a t -> (float * 'a) option

val peek_key : 'a t -> float option
