open Ddlock_model
open Ddlock_schedule

(** Exhaustive deadlock-prefix search — the Theorem-1 ground truth.

    By Theorem 1, a system is deadlock-free iff no prefix of it is a
    deadlock prefix.  A deadlock prefix must have a schedule, i.e. be a
    reachable state of {!Explore}; therefore it suffices to scan reachable
    states for a cyclic reduction graph. *)

type witness = {
  prefix : State.t;  (** the deadlock prefix A′ *)
  schedule : Step.t list;  (** a partial schedule realizing A′ *)
  cycle : Step.t list;  (** a cycle of R(A′) *)
}

(** First deadlock prefix found, scanning reachable states in BFS order. *)
val find : ?max_states:int -> System.t -> witness option

(** [deadlock_free sys] iff no reachable state has a cyclic reduction
    graph — by Theorem 1 this is equivalent to
    {!Ddlock_schedule.Explore.deadlock_free}. *)
val deadlock_free : ?max_states:int -> System.t -> bool

(** All deadlock prefixes (reachable states with cyclic R). *)
val all : ?max_states:int -> System.t -> State.t Seq.t
