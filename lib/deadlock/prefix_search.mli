open Ddlock_model
open Ddlock_schedule

(** Exhaustive deadlock-prefix search — the Theorem-1 ground truth.

    By Theorem 1, a system is deadlock-free iff no prefix of it is a
    deadlock prefix.  A deadlock prefix must have a schedule, i.e. be a
    reachable state of {!Explore}; therefore it suffices to scan reachable
    states for a cyclic reduction graph. *)

type witness = {
  prefix : State.t;  (** the deadlock prefix A′ *)
  schedule : Step.t list;  (** a partial schedule realizing A′ *)
  cycle : Step.t list;  (** a cycle of R(A′) *)
}

(** First deadlock prefix found.  With [jobs = 1] (the default) the
    exact historical sequential path runs: the whole space is explored,
    then scanned in table order.  With [jobs > 1] the search runs on the
    deterministic parallel engine ({!Ddlock_par.Par_explore}), evaluating
    the reduction-graph predicate concurrently, and returns the {e
    canonical} witness — the first deadlock prefix in BFS insertion
    order (hence of minimal depth) — identically for every [jobs > 1].
    Raises [Invalid_argument] when [jobs < 1].

    With [~symmetry:true] the search runs over orbit representatives of
    the identical-transaction automorphism group (sound because the
    reduction-graph predicate is invariant under those permutations);
    the returned schedule and prefix are translated back to the original
    system, identically for {e every} [jobs] (including [jobs = 1],
    which then also takes the BFS goal-directed path rather than the
    historical table-order scan).

    With [~por:true] the search runs over the persistent/sleep-set
    reduced space ({!Ddlock_schedule.Indep}) — sound here because a
    cyclic reduction graph is reachable iff a deadlock is (Theorem 1)
    and the reduction preserves every reachable deadlock state.  The
    verdict is identical to plain; the witness is the first cyclic
    prefix in the {e reduced} BFS order (valid, but possibly a
    different prefix than the plain engine returns), identical for
    every [jobs].

    With [~fast:true] the search runs on the relaxed work-stealing
    engine ([~mode:`Fast] of {!Ddlock_par.Par_explore}) for any [jobs]
    (including 1).  The verdict is identical to plain; the witness is
    whichever cyclic prefix a worker reached first — valid, but not
    deterministic across runs. *)
val find :
  ?max_states:int ->
  ?jobs:int ->
  ?symmetry:bool ->
  ?por:bool ->
  ?fast:bool ->
  System.t ->
  witness option

(** [deadlock_free sys] iff no reachable state has a cyclic reduction
    graph — by Theorem 1 this is equivalent to
    {!Ddlock_schedule.Explore.deadlock_free}.  The verdict is identical
    for every [jobs] and any combination of the [symmetry]/[por]
    flags. *)
val deadlock_free :
  ?max_states:int ->
  ?jobs:int ->
  ?symmetry:bool ->
  ?por:bool ->
  ?fast:bool ->
  System.t ->
  bool

(** All deadlock prefixes (reachable states with cyclic R).  With
    [jobs > 1] the result is in deterministic BFS discovery order; with
    [~symmetry:true] one representative per deadlock-prefix orbit; with
    [~por:true] the cyclic states of the reduced space — a subset of
    the plain result that is nonempty iff the plain result is.  With
    [~fast:true] the same state {e set} in fast shard order (or a
    valid reduced set, under [~por:true]). *)
val all :
  ?max_states:int ->
  ?jobs:int ->
  ?symmetry:bool ->
  ?por:bool ->
  ?fast:bool ->
  System.t ->
  State.t Seq.t
