open Ddlock_model
open Ddlock_schedule

(** Utilities around Theorem 1 and the §3 remarks. *)

(** Both deciders — deadlock partial schedule search and deadlock prefix
    search — must agree (Theorem 1).  Returns the two verdicts
    [(deadlock_free_by_schedules, deadlock_free_by_prefixes)]. *)
val verdicts : ?max_states:int -> System.t -> bool * bool

(** §3 remark: if the execution of partial schedule [s] results in a
    deadlock of A, then the total orders [tᵢ] = (projection of [s] on
    [Tᵢ]) ++ (a linear extension of the remainder) form a centralized
    system in which [s] also deadlocks.  Returns that system of total
    orders. *)
val centralized_witness : System.t -> Step.t list -> System.t

(** [extension_pair_deadlocks sys] — for a 2-transaction system: whether
    SOME pair of linear extensions (t₁, t₂) deadlocks (used to exhibit
    the Fig. 3 phenomenon: this may hold while the distributed pair is
    deadlock-free).  Exponential. *)
val extension_pair_deadlocks : System.t -> bool

(** [extension_pairs_all_safe sys] — for a 2-transaction system: whether
    EVERY pair of linear extensions is safe.  By the Kanellakis–
    Papadimitriou observation quoted in §3, this is equivalent to the
    distributed pair being safe — unlike deadlock-freedom, where only one
    direction holds.  Exponential. *)
val extension_pairs_all_safe : System.t -> bool
