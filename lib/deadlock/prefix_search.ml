open Ddlock_schedule

type witness = {
  prefix : State.t;
  schedule : Step.t list;
  cycle : Step.t list;
}

let scan ?max_states sys =
  let sp = Explore.explore ?max_states sys in
  Seq.filter_map
    (fun st ->
      let r = Reduction.make sys st in
      match Reduction.find_cycle r with
      | None -> None
      | Some cycle -> Some (st, cycle, sp))
    (Explore.states sp)

let find ?max_states sys =
  match scan ?max_states sys () with
  | Seq.Nil -> None
  | Seq.Cons ((prefix, cycle, sp), _) ->
      let schedule = Option.get (Explore.schedule_to sp prefix) in
      Some { prefix; schedule; cycle }

let deadlock_free ?max_states sys = find ?max_states sys = None

let all ?max_states sys =
  Seq.map (fun (st, _, _) -> st) (scan ?max_states sys)
