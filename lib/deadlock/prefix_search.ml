open Ddlock_schedule

type witness = {
  prefix : State.t;
  schedule : Step.t list;
  cycle : Step.t list;
}

module Obs_t = Ddlock_obs.Trace

let obs_prefix_witnesses =
  Ddlock_obs.Metrics.Counter.make "prefix_search.witnesses"

let scan ?max_states sys =
  let sp = Explore.explore ?max_states sys in
  Seq.filter_map
    (fun st ->
      let r = Reduction.make sys st in
      match Reduction.find_cycle r with
      | None -> None
      | Some cycle -> Some (st, cycle, sp))
    (Explore.states sp)

let cyclic sys st = Reduction.has_cycle (Reduction.make sys st)

(* The reduction-graph predicate is invariant under identical-transaction
   permutations (the graph is renamed node-for-node), so with
   [~symmetry:true] the goal-directed searches may evaluate it on orbit
   representatives; the engines hand back a schedule and prefix already
   translated to the original system, and the cycle is recomputed on that
   real prefix. *)
let find ?max_states ?(jobs = 1) ?(symmetry = false) ?(por = false)
    ?(fast = false) sys =
  Ddlock_par.Par_explore.validate_jobs jobs;
  Obs_t.span "prefix_search.find" @@ fun () ->
  (* With [~por:true] the goal-directed search is sound because a
     cyclic reduction graph is reachable iff a deadlock state is
     (Theorem 1), and the persistent/sleep-set reduction preserves
     every reachable deadlock state.  With [~por]/[~fast] the witness
     is the first cyclic prefix in the reduced/relaxed order — valid,
     not necessarily the plain engine's choice. *)
  let of_witness = function
    | None -> None
    | Some (schedule, prefix) ->
        let cycle =
          match Reduction.find_cycle (Reduction.make sys prefix) with
          | Some c -> c
          | None -> assert false
        in
        Some { prefix; schedule; cycle }
  in
  let goal_bfs ~por =
    if jobs = 1 && not fast then
      Explore.bfs ?max_states ~symmetry ~por sys ~found:(cyclic sys)
    else
      let mode = if fast then `Fast else `Deterministic in
      Ddlock_par.Par_explore.bfs ?max_states ~symmetry ~por ~mode ~jobs sys
        ~found:(cyclic sys)
  in
  let r =
    if por then of_witness (goal_bfs ~por:true)
    else if symmetry || fast then of_witness (goal_bfs ~por:false)
    else if jobs = 1 then
      match scan ?max_states sys () with
      | Seq.Nil -> None
      | Seq.Cons ((prefix, cycle, sp), _) ->
          let schedule = Option.get (Explore.schedule_to sp prefix) in
          Some { prefix; schedule; cycle }
    else of_witness (goal_bfs ~por:false)
  in
  if r <> None then Ddlock_obs.Metrics.Counter.incr obs_prefix_witnesses;
  r

let deadlock_free ?max_states ?jobs ?symmetry ?por ?fast sys =
  find ?max_states ?jobs ?symmetry ?por ?fast sys = None

let all ?max_states ?(jobs = 1) ?(symmetry = false) ?(por = false)
    ?(fast = false) sys =
  Ddlock_par.Par_explore.validate_jobs jobs;
  let par_states ~por =
    let mode = if fast then `Fast else `Deterministic in
    let sp =
      Ddlock_par.Par_explore.explore ?max_states ~symmetry ~por ~mode ~jobs sys
    in
    Seq.filter (cyclic sys) (Ddlock_par.Par_explore.states sp)
  in
  if por then
    (* Cyclic states of the reduced space: a subset of the plain
       result, nonempty iff the plain result is (Theorem 1 again). *)
    if jobs = 1 && not fast then
      let sp = Explore.explore ?max_states ~symmetry ~por:true sys in
      Seq.filter (cyclic sys) (Explore.states sp)
    else par_states ~por:true
  else if symmetry then
    if jobs = 1 && not fast then
      let sp = Explore.explore ?max_states ~symmetry sys in
      Seq.filter (cyclic sys) (Explore.states sp)
    else par_states ~por:false
  else if jobs = 1 && not fast then
    Seq.map (fun (st, _, _) -> st) (scan ?max_states sys)
  else par_states ~por:false
