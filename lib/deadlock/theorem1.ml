open Ddlock_graph
open Ddlock_model
open Ddlock_schedule

let verdicts ?max_states sys =
  ( Explore.deadlock_free ?max_states sys,
    Prefix_search.deadlock_free ?max_states sys )

let centralized_witness sys steps =
  let n = System.size sys in
  let db = System.db sys in
  let totals =
    List.init n (fun i ->
        let tx = System.txn sys i in
        let executed = Schedule.project steps i in
        let prefix = Transaction.down_closure tx executed in
        (* The projection is already consistent; append a linear extension
           of the remaining induced subgraph. *)
        let remaining_order =
          match Topo.sort (Transaction.given_arcs tx) with
          | Some o -> List.filter (fun v -> not (Bitset.mem prefix v)) o
          | None -> assert false
        in
        let order = executed @ remaining_order in
        let nodes = List.map (Transaction.node tx) order in
        match Transaction.of_total_order db nodes with
        | Ok t -> t
        | Error _ ->
            invalid_arg "Theorem1.centralized_witness: projection not total")
  in
  System.create totals

let extension_pairs sys =
  if System.size sys <> 2 then
    invalid_arg "Theorem1: needs exactly 2 transactions";
  let db = System.db sys in
  let tx i = System.txn sys i in
  let exts i =
    Seq.map
      (fun order ->
        match
          Transaction.of_total_order db
            (List.map (Transaction.node (tx i)) order)
        with
        | Ok t -> t
        | Error _ -> assert false)
      (Transaction.linear_extensions (tx i))
  in
  Seq.concat_map (fun t1 -> Seq.map (fun t2 -> (t1, t2)) (exts 1)) (exts 0)

let extension_pair_deadlocks sys =
  Seq.exists
    (fun (t1, t2) -> not (Explore.deadlock_free (System.create [ t1; t2 ])))
    (extension_pairs sys)

let extension_pairs_all_safe sys =
  Seq.for_all
    (fun (t1, t2) -> Result.is_ok (Explore.safe (System.create [ t1; t2 ])))
    (extension_pairs sys)
