open Ddlock_graph
open Ddlock_model

let find_pair t1 t2 =
  let common =
    Bitset.inter (Transaction.entity_set t1) (Transaction.entity_set t2)
  in
  let result = ref None in
  Bitset.iter
    (fun x ->
      Bitset.iter
        (fun y ->
          if x <> y && !result = None then begin
            let l1y = Transaction.lock_node_exn t1 y
            and u1x = Transaction.unlock_node_exn t1 x
            and l1x = Transaction.lock_node_exn t1 x
            and l2x = Transaction.lock_node_exn t2 x
            and u2y = Transaction.unlock_node_exn t2 y
            and l2y = Transaction.lock_node_exn t2 y in
            if
              Transaction.precedes t1 l1y u1x
              && Transaction.precedes t2 l2x u2y
              && (not (Transaction.precedes t1 l1y l1x))
              && not (Transaction.precedes t2 l2x l2y)
            then result := Some (x, y)
          end)
        common)
    common;
  !result

let claims_deadlock_free t1 t2 = find_pair t1 t2 = None
