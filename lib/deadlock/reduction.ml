open Ddlock_graph
open Ddlock_model
open Ddlock_schedule

type t = {
  sys : System.t;
  offsets : int array; (* txn -> first global id *)
  graph : Digraph.t;
  remaining : Bitset.t array; (* txn -> remaining node set *)
}

let global t (step : Step.t) = t.offsets.(step.txn) + step.node

let make sys prefix =
  let n = System.size sys in
  let offsets = Array.make n 0 in
  let total = ref 0 in
  for i = 0 to n - 1 do
    offsets.(i) <- !total;
    total := !total + Transaction.node_count (System.txn sys i)
  done;
  let remaining =
    Array.init n (fun i ->
        let tx = System.txn sys i in
        let r = Transaction.full_prefix tx in
        Bitset.diff_into ~into:r prefix.(i);
        r)
  in
  let es = ref [] in
  (* Remaining precedence arcs. *)
  for i = 0 to n - 1 do
    let tx = System.txn sys i in
    List.iter
      (fun (u, v) ->
        if Bitset.mem remaining.(i) u && Bitset.mem remaining.(i) v then
          es := (offsets.(i) + u, offsets.(i) + v) :: !es)
      (Digraph.edges (Transaction.given_arcs tx))
  done;
  (* Lock arcs: for every held entity x of Ti, Uix -> remaining Ljx. *)
  for i = 0 to n - 1 do
    let tx = System.txn sys i in
    Bitset.iter
      (fun x ->
        let ui = Transaction.unlock_node_exn tx x in
        for j = 0 to n - 1 do
          if j <> i then
            let tj = System.txn sys j in
            match Transaction.lock_node tj x with
            | Some lj when Bitset.mem remaining.(j) lj ->
                es := (offsets.(i) + ui, offsets.(j) + lj) :: !es
            | _ -> ()
        done)
      (Transaction.held_in_prefix tx prefix.(i))
  done;
  { sys; offsets; graph = Digraph.create !total !es; remaining }

let graph t = t.graph

let step_of_id t id =
  let n = System.size t.sys in
  let rec find i =
    if i = n - 1 || id < t.offsets.(i + 1) then Step.v i (id - t.offsets.(i))
    else find (i + 1)
  in
  find 0

let id_of_step t (step : Step.t) =
  if Bitset.mem t.remaining.(step.txn) step.node then Some (global t step)
  else None

let has_cycle t = not (Topo.is_acyclic t.graph)

let find_cycle t =
  Option.map (List.map (step_of_id t)) (Topo.find_cycle t.graph)

let is_deadlock_prefix sys prefix =
  has_cycle (make sys prefix) && Explore.has_schedule sys prefix <> None

let deadlock_prefix_witness sys prefix =
  match find_cycle (make sys prefix) with
  | None -> None
  | Some cycle -> (
      match Explore.has_schedule sys prefix with
      | None -> None
      | Some sched -> Some (sched, cycle))

let pp sys ppf t =
  Format.fprintf ppf "@[<v>reduction graph:";
  List.iter
    (fun (u, v) ->
      Format.fprintf ppf "@,%s -> %s"
        (Step.to_string sys (step_of_id t u))
        (Step.to_string sys (step_of_id t v)))
    (Digraph.edges t.graph);
  Format.fprintf ppf "@]"
