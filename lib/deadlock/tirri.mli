open Ddlock_model

(** The premise of Tirri's PODC'83 polynomial deadlock test — the baseline
    the paper refutes in §3.

    Tirri's algorithm assumes that a deadlock between two transactions
    implies the existence of two entities [x], [y] accessed by both such
    that [L¹y ≺ U¹x], [L²x ≺ U²y], [¬(L¹y ≺ L¹x)] and [¬(L²x ≺ L²y)].
    The paper's Fig. 2 shows a deadlock arising from a cycle through four
    entities with no such pair, so "no pair found" does {e not} imply
    deadlock-freedom. *)

(** [find_pair t1 t2] is a pair [(x, y)] satisfying Tirri's premise, if
    any. *)
val find_pair :
  Transaction.t -> Transaction.t -> (Db.entity * Db.entity) option

(** Tirri's (unsound) verdict: claims the pair deadlock-free iff no such
    entity pair exists. *)
val claims_deadlock_free : Transaction.t -> Transaction.t -> bool
