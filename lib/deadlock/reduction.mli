open Ddlock_graph
open Ddlock_model
open Ddlock_schedule

(** The reduction graph R(A′) of a prefix of a transaction system (§3).

    Nodes are the {e remaining} nodes of the transactions.  Arcs are the
    remaining precedence arcs, plus, for every entity [x]
    locked-but-not-unlocked in A′ by [Tᵢ], an arc from [Uⁱx] to the
    remaining [Lʲx] node of every other transaction.  A cycle means the
    partial schedule can never be completed. *)

type t

(** [make sys prefix] — [prefix] is a prefix vector (one downward-closed
    node set per transaction); no schedule-existence check is made. *)
val make : System.t -> State.t -> t

(** The underlying digraph over {e global} node ids. *)
val graph : t -> Digraph.t

(** Translate a global node id back to a schedule step. *)
val step_of_id : t -> int -> Step.t

(** Global id of a (remaining) step; [None] if the node is in the prefix. *)
val id_of_step : t -> Step.t -> int option

val has_cycle : t -> bool

(** A cycle as steps, if any. *)
val find_cycle : t -> Step.t list option

(** [is_deadlock_prefix sys prefix] — Definition §3: the prefix has a
    (legal partial) schedule and its reduction graph is cyclic.  The
    schedule check is the exponential {!Explore.has_schedule}. *)
val is_deadlock_prefix : System.t -> State.t -> bool

(** Like {!is_deadlock_prefix} but returning the witnesses: a schedule of
    the prefix and a reduction-graph cycle. *)
val deadlock_prefix_witness :
  System.t -> State.t -> (Step.t list * Step.t list) option

val pp : System.t -> Format.formatter -> t -> unit
