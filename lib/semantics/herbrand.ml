open Ddlock_graph
open Ddlock_model
open Ddlock_schedule

type term = Init of Db.entity | App of string * term list

let rec pp_term db ppf = function
  | Init e -> Format.fprintf ppf "%s₀" (Db.entity_name db e)
  | App (f, args) ->
      Format.fprintf ppf "%s(%a)" f
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           (pp_term db))
        args

let term_equal (a : term) b = a = b

(* Action-extended transaction: the skeleton plus an explicit extended
   partial order over skeleton nodes (ids kept) and action nodes
   (appended ids).  [action_entity] maps extended ids to entities. *)
type atxn = {
  skeleton : Transaction.t;
  n_skeleton : int;
  action_entity : Db.entity array; (* indexed by id - n_skeleton *)
  closure : Closure.t; (* of the extended order *)
}

let skeleton a = a.skeleton
let action_count a = Array.length a.action_entity

let with_actions rng t ~per_entity =
  if per_entity < 1 then invalid_arg "Herbrand.with_actions: per_entity < 1";
  let db = Transaction.db t in
  let n = Transaction.node_count t in
  let entities = Transaction.entities t in
  let n_actions = per_entity * List.length entities in
  let action_entity = Array.make n_actions (-1) in
  (* Per-site sequences of skeleton nodes, in skeleton order. *)
  let site_seq = Hashtbl.create 7 in
  (match Topo.sort (Transaction.given_arcs t) with
  | Some order ->
      List.iter
        (fun v ->
          let s = Db.site_of db (Transaction.node t v).Node.entity in
          Hashtbl.replace site_seq s
            (v :: (try Hashtbl.find site_seq s with Not_found -> [])))
        order;
      Hashtbl.iter (fun s l -> Hashtbl.replace site_seq s (List.rev l)) (Hashtbl.copy site_seq)
  | None -> assert false);
  (* Insert actions: for each entity, [per_entity] action ids woven into
     its site's sequence at random positions between Lx and Ux. *)
  let next_id = ref n in
  let insert_actions seq =
    (* seq: skeleton node list of one site (in order).  Returns the new
       sequence with action ids spliced in. *)
    let arr = ref (List.map (fun v -> `Skel v) seq) in
    List.iter
      (fun e ->
        let lx = Transaction.lock_node_exn t e
        and ux = Transaction.unlock_node_exn t e in
        if List.exists (fun x -> x = `Skel lx) !arr then
          for _ = 1 to per_entity do
            let id = !next_id in
            incr next_id;
            action_entity.(id - n) <- e;
            (* Legal positions: strictly after lx, before or at ux. *)
            let rec positions i = function
              | [] -> []
              | x :: rest ->
                  let tail = positions (i + 1) rest in
                  if x = `Skel ux then i :: tail
                  else if
                    List.exists (fun y -> y = `Skel lx)
                      (List.filteri (fun j _ -> j < i) !arr)
                    && not
                         (List.exists (fun y -> y = `Skel ux)
                            (List.filteri (fun j _ -> j < i) !arr))
                  then i :: tail
                  else tail
            in
            let ps = positions 0 !arr in
            let pos = List.nth ps (Random.State.int rng (List.length ps)) in
            arr :=
              List.concat
                (List.mapi
                   (fun j x -> if j = pos then [ `Act id; x ] else [ x ])
                   !arr)
          done)
      entities;
    !arr
  in
  let arcs = ref (Digraph.edges (Transaction.given_arcs t)) in
  Hashtbl.iter
    (fun _s seq ->
      let woven = insert_actions seq in
      let ids =
        List.map (function `Skel v -> v | `Act id -> id) woven
      in
      let rec chain = function
        | a :: (b :: _ as rest) ->
            arcs := (a, b) :: !arcs;
            chain rest
        | _ -> ()
      in
      chain ids)
    site_seq;
  let total = n + n_actions in
  let g = Digraph.create total !arcs in
  (match Topo.sort g with Some _ -> () | None -> assert false);
  { skeleton = t; n_skeleton = n; action_entity; closure = Closure.closure g }

type asystem = atxn array

let system sys =
  System.create (List.map (fun a -> a.skeleton) (Array.to_list sys))

(* Action ids of [a] on entity [e], in extended order. *)
let actions_on a e =
  let ids = ref [] in
  Array.iteri
    (fun j e' -> if e' = e then ids := (a.n_skeleton + j) :: !ids)
    a.action_entity;
  List.sort
    (fun u v -> if Closure.reaches a.closure u v then -1 else 1)
    !ids

(* Strict action predecessors of action id v. *)
let action_preds a v =
  let preds = ref [] in
  Array.iteri
    (fun j _ ->
      let u = a.n_skeleton + j in
      if u <> v && Closure.reaches a.closure u v then preds := u :: !preds)
    a.action_entity;
  List.sort compare !preds

let eval sys steps =
  let lock_sys = system sys in
  let db = System.db lock_sys in
  let ne = Db.entity_count db in
  (match Schedule.check lock_sys steps with
  | Ok _ -> ()
  | Error v ->
      invalid_arg
        (Format.asprintf "Herbrand.eval: illegal schedule: %a"
           (Schedule.pp_violation lock_sys) v));
  let cur = Array.init ne (fun e -> Init e) in
  (* snapshot.(i) : entity -> term option, taken at Lock time. *)
  let snapshot = Array.init (Array.length sys) (fun _ -> Array.make ne None) in
  (* Memoized read-values t_v of actions, per transaction. *)
  let tval : (int * int, term) Hashtbl.t = Hashtbl.create 64 in
  let rec t_value i v =
    match Hashtbl.find_opt tval (i, v) with
    | Some t -> t
    | None ->
        let a = sys.(i) in
        let e = a.action_entity.(v - a.n_skeleton) in
        (* Value of e right before action v: the snapshot at Lock time
           updated by this transaction's earlier actions on e. *)
        let earlier =
          List.filter
            (fun u -> u <> v && Closure.reaches a.closure u v)
            (actions_on a e)
        in
        let base =
          match snapshot.(i).(e) with Some t -> t | None -> assert false
        in
        let t =
          List.fold_left (fun _acc u -> written_value i u) base earlier
        in
        Hashtbl.replace tval (i, v) t;
        t
  and written_value i v =
    (* x <- f_v(t_u1, ..., t_uk, t_v) for action predecessors u of v. *)
    let a = sys.(i) in
    let args =
      List.map (t_value i) (action_preds a v) @ [ t_value i v ]
    in
    App (Printf.sprintf "f%d_%d" (i + 1) v, args)
  in
  List.iter
    (fun (s : Step.t) ->
      let a = sys.(s.txn) in
      let nd = Transaction.node a.skeleton s.node in
      match nd.Node.op with
      | Node.Lock -> snapshot.(s.txn).(nd.entity) <- Some cur.(nd.entity)
      | Node.Unlock ->
          (* Apply this transaction's chain on the entity. *)
          (match List.rev (actions_on a nd.entity) with
          | last :: _ -> cur.(nd.entity) <- written_value s.txn last
          | [] -> ()))
    steps;
  cur

let equivalent sys s1 s2 =
  let f1 = eval sys s1 and f2 = eval sys s2 in
  Array.for_all2 term_equal f1 f2

let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          List.map
            (fun rest -> x :: rest)
            (permutations (List.filter (fun y -> y <> x) l)))
        l

let serializable sys steps =
  let lock_sys = system sys in
  let final = eval sys steps in
  List.exists
    (fun order ->
      let serial = Schedule.serial lock_sys order in
      Array.for_all2 term_equal final (eval sys serial))
    (permutations (List.init (Array.length sys) Fun.id))
