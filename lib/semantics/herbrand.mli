open Ddlock_model
open Ddlock_schedule

(** The full §2 model: transactions with {e action} nodes and the
    Herbrand-style semantics the paper defines schedule equivalence by.

    An action [A.x] is the indivisible execution of [t_v ← x] (read)
    followed by [x ← f_v(t_{v1}, …, t_{vk})] (update), where [v1 … vk]
    are the action nodes preceding [v] in its transaction (including
    [v]) and [f_v] is an uninterpreted function symbol.  Two schedules
    are equivalent when they leave every entity with the same term under
    all interpretations of the [f_v] — i.e. with syntactically equal
    Herbrand terms.  A schedule is serializable iff it is equivalent to
    some serial schedule; the paper recalls [EGLT]'s theorem that this
    holds iff the serialization digraph D(S) is acyclic, which is what
    the rest of the library tests.  This module makes that foundation
    executable (and the test suite checks the [EGLT] equivalence on
    random systems).

    The paper also argues that the {e positions} of actions play no role
    for safety and deadlock; the test suite checks that too by placing
    actions randomly. *)

(** {1 Terms} *)

type term =
  | Init of Db.entity  (** the initial value of an entity *)
  | App of string * term list
      (** [f_v] applied to the read values of the action's predecessors *)

val pp_term : Db.t -> Format.formatter -> term -> unit
val term_equal : term -> term -> bool

(** {1 Action-extended transactions}

    A wrapper around a lock skeleton {!Transaction.t}: every accessed
    entity gets [k >= 1] action slots strictly between its Lock and its
    Unlock, woven into the entity's site order. *)

type atxn

(** [with_actions rng t ~per_entity] — insert [per_entity] actions per
    accessed entity at random legal positions.  Requires [per_entity >= 1]
    (the paper's assumption). *)
val with_actions : Random.State.t -> Transaction.t -> per_entity:int -> atxn

val skeleton : atxn -> Transaction.t

(** Number of action nodes. *)
val action_count : atxn -> int

(** {1 Evaluation} *)

type asystem = atxn array

(** [eval sys steps] — run a complete (or partial) lock schedule of the
    skeleton system, executing each transaction's pending actions for an
    entity right before that entity's Unlock (any placement between Lock
    and Unlock yields the same per-entity chains; the paper's
    position-irrelevance).  Returns the final term of every entity.
    The schedule must be legal for the skeletons. *)
val eval : asystem -> Step.t list -> term array

(** Schedules are equivalent iff all final terms coincide. *)
val equivalent : asystem -> Step.t list -> Step.t list -> bool

(** [serializable sys steps] — is the complete schedule equivalent to
    SOME serial schedule?  Tries all |sys|! serial orders. *)
val serializable : asystem -> Step.t list -> bool

(** The lock-skeleton system. *)
val system : asystem -> System.t
