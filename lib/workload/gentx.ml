open Ddlock_model

let random_db ~sites ~entities =
  if sites < 1 || entities < 0 then invalid_arg "Gentx.random_db";
  let specs =
    List.init sites (fun s ->
        let names =
          List.filter_map
            (fun e -> if e mod sites = s then Some ("e" ^ string_of_int e) else None)
            (List.init entities Fun.id)
        in
        ("s" ^ string_of_int s, names))
  in
  Db.create specs

let shuffle rng a =
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done

let random_transaction rng db ~entities ~density =
  let ents = Array.of_list entities in
  let k = Array.length ents in
  (* Nodes: 2i = L(ents.(i)), 2i+1 = U(ents.(i)). *)
  let labels =
    Array.init (2 * k) (fun i ->
        if i mod 2 = 0 then Node.lock ents.(i / 2) else Node.unlock ents.(i / 2))
  in
  (* A random global order with each L before its U: shuffle, then swap
     out-of-order L/U pairs. *)
  let order = Array.init (2 * k) Fun.id in
  shuffle rng order;
  let pos = Array.make (2 * k) 0 in
  Array.iteri (fun p v -> pos.(v) <- p) order;
  for i = 0 to k - 1 do
    let l = 2 * i and u = (2 * i) + 1 in
    if pos.(l) > pos.(u) then begin
      let pl = pos.(l) and pu = pos.(u) in
      order.(pl) <- u;
      order.(pu) <- l;
      pos.(l) <- pu;
      pos.(u) <- pl
    end
  done;
  let arcs = ref [] in
  (* L before U. *)
  for i = 0 to k - 1 do
    arcs := (2 * i, (2 * i) + 1) :: !arcs
  done;
  (* Per-site chains along the global order. *)
  let by_site = Hashtbl.create 7 in
  Array.iter
    (fun v ->
      let site = Db.site_of db labels.(v).Node.entity in
      let prev = Hashtbl.find_opt by_site site in
      (match prev with Some p -> arcs := (p, v) :: !arcs | None -> ());
      Hashtbl.replace by_site site v)
    order;
  (* Random cross arcs along the global order. *)
  for a = 0 to (2 * k) - 1 do
    for b = a + 1 to (2 * k) - 1 do
      if Random.State.float rng 1.0 < density then
        arcs := (order.(a), order.(b)) :: !arcs
    done
  done;
  Transaction.make_exn db labels !arcs

let random_entity_subset rng db ~k =
  let n = Db.entity_count db in
  if k > n then invalid_arg "Gentx.random_entity_subset: k > entities";
  let a = Array.init n Fun.id in
  shuffle rng a;
  List.sort compare (Array.to_list (Array.sub a 0 k))

(* Zipf(theta) over ranks 1..n by inverse-CDF on the exact normalized
   weights w_r = r^-theta.  n is small (a schema, not a key space), so
   building the cumulative table per call is fine. *)
let zipf_pick rng cumulative =
  let u = Random.State.float rng 1.0 in
  let n = Array.length cumulative in
  let rec bisect lo hi =
    (* invariant: cumulative.(hi) > u, lo-1 has cumulative <= u *)
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if cumulative.(mid) > u then bisect lo mid else bisect (mid + 1) hi
  in
  bisect 0 (n - 1)

let zipf_entity_subset rng ~cumulative ~k =
  let n = Array.length cumulative in
  if k > n then invalid_arg "Gentx.zipf_entity_subset: k > entities";
  let chosen = Hashtbl.create k in
  let rec draw () =
    let e = zipf_pick rng cumulative in
    if Hashtbl.mem chosen e then draw ()
    else Hashtbl.replace chosen e ()
  in
  for _ = 1 to k do
    draw ()
  done;
  List.sort compare (Hashtbl.fold (fun e () acc -> e :: acc) chosen [])

let zipf_cumulative ~n ~theta =
  let weights =
    Array.init n (fun r -> (1.0 /. float_of_int (r + 1)) ** theta)
  in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cumulative = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      acc := !acc +. (w /. total);
      cumulative.(i) <- !acc)
    weights;
  cumulative.(n - 1) <- 1.0;
  cumulative

let zipf_system ?(entities_per_txn = 2) ?(density = 0.3) rng ~sites ~entities
    ~txns ~theta =
  if theta < 0.0 then invalid_arg "Gentx.zipf_system: theta < 0";
  if txns < 1 then invalid_arg "Gentx.zipf_system: txns < 1";
  if entities < 1 then invalid_arg "Gentx.zipf_system: entities < 1";
  if entities_per_txn > entities then
    invalid_arg "Gentx.zipf_system: entities_per_txn > entities";
  let db = random_db ~sites ~entities in
  let cumulative = zipf_cumulative ~n:entities ~theta in
  System.create
    (List.init txns (fun _ ->
         random_transaction rng db
           ~entities:(zipf_entity_subset rng ~cumulative ~k:entities_per_txn)
           ~density))

let random_system rng db ~txns ~entities_per_txn ~density =
  System.create
    (List.init txns (fun _ ->
         random_transaction rng db
           ~entities:(random_entity_subset rng db ~k:entities_per_txn)
           ~density))

(* Shared small-system generators for the differential test batteries,
   the fuzzer and the benches (one audited generator instead of a
   hand-rolled copy per consumer).  Unspecified parameters are drawn
   from the rng, so the default call covers a spread of shapes. *)
let small_random_pair ?sites ?entities ?density rng =
  let draw v f = match v with Some v -> v | None -> f () in
  let sites = draw sites (fun () -> 1 + Random.State.int rng 3) in
  let entities = draw entities (fun () -> 2 + Random.State.int rng 3) in
  let db = random_db ~sites ~entities in
  let density = draw density (fun () -> Random.State.float rng 0.5) in
  let k1 = 1 + Random.State.int rng entities in
  let k2 = 1 + Random.State.int rng entities in
  let e1 = random_entity_subset rng db ~k:k1 in
  let e2 = random_entity_subset rng db ~k:k2 in
  let t1 = random_transaction rng db ~entities:e1 ~density in
  let t2 = random_transaction rng db ~entities:e2 ~density in
  System.create [ t1; t2 ]

let small_random_system ?sites ?entities ?density rng ~txns =
  let draw v f = match v with Some v -> v | None -> f () in
  let sites = draw sites (fun () -> 1 + Random.State.int rng 2) in
  let entities = draw entities (fun () -> 2 + Random.State.int rng 2) in
  let db = random_db ~sites ~entities in
  let density = draw density (fun () -> Random.State.float rng 0.5) in
  System.create
    (List.init txns (fun _ ->
         let k = 1 + Random.State.int rng entities in
         random_transaction rng db ~entities:(random_entity_subset rng db ~k)
           ~density))

let random_copies_system ?(extra = false) rng ~copies =
  if copies < 1 then invalid_arg "Gentx.random_copies_system: copies < 1";
  let sites = 1 + Random.State.int rng 2 in
  let entities = 2 + Random.State.int rng 2 in
  let db = random_db ~sites ~entities in
  let density = Random.State.float rng 0.5 in
  let mk () =
    random_transaction rng db
      ~entities:(random_entity_subset rng db ~k:(1 + Random.State.int rng entities))
      ~density
  in
  let base = mk () in
  let txns = List.init copies (fun _ -> base) in
  System.create (if extra then txns @ [ mk () ] else txns)

let two_phase_pair db names =
  (Builder.two_phase_chain db names, Builder.two_phase_chain db names)

let opposed_pair db names =
  (Builder.two_phase_chain db names, Builder.two_phase_chain db (List.rev names))

let dining_philosophers k =
  if k < 2 then invalid_arg "Gentx.dining_philosophers: k < 2";
  let names = List.init k (fun i -> "f" ^ string_of_int i) in
  let db = Db.one_site_per_entity names in
  let fork i = "f" ^ string_of_int (i mod k) in
  System.create
    (List.init k (fun i ->
         Builder.two_phase_chain db [ fork i; fork (i + 1) ]))

let guard_ring k =
  if k < 2 then invalid_arg "Gentx.guard_ring: k < 2";
  let names = List.init k (fun i -> "g" ^ string_of_int i) in
  let db = Db.one_site_per_entity names in
  let g i = "g" ^ string_of_int (i mod k) in
  Builder.transaction_exn db
    ~arcs:(List.init k (fun i -> (Builder.L (g i), Builder.U (g (i + 1)))))
    ()

let chain_db n = Db.one_site_per_entity (List.init n (fun i -> "e" ^ string_of_int i))

let chain_pair n =
  let db = chain_db n in
  two_phase_pair db (List.init n (fun i -> "e" ^ string_of_int i))

let opposed_chain_pair n =
  let db = chain_db n in
  opposed_pair db (List.init n (fun i -> "e" ^ string_of_int i))

(* ------------------------------------------------------------------ *)
(* TPC-C-style workloads *)

type tpcc = {
  tpcc_db : Db.t;
  warehouses : int;
  districts : int;
  items : int;
  customers : int;
}

let tpcc_db ~warehouses ~districts ~items ~customers =
  if warehouses < 1 then invalid_arg "Gentx.tpcc_db: warehouses < 1";
  if districts < 1 then invalid_arg "Gentx.tpcc_db: districts < 1";
  if items < 1 then invalid_arg "Gentx.tpcc_db: items < 1";
  if customers < 1 then invalid_arg "Gentx.tpcc_db: customers < 1";
  let specs =
    List.init warehouses (fun w ->
        let w = w + 1 in
        let wh = Printf.sprintf "w%d" w in
        let names =
          (wh
          :: List.init districts (fun d -> Printf.sprintf "%s.d%d" wh (d + 1)))
          @ List.init items (fun i -> Printf.sprintf "%s.s%d" wh (i + 1))
          @ List.init customers (fun c -> Printf.sprintf "%s.c%d" wh (c + 1))
        in
        (Printf.sprintf "wh%d" w, names))
  in
  { tpcc_db = Db.create specs; warehouses; districts; items; customers }

(* Rank 1 is the hottest warehouse/district/item throughout: all three
   draw spaces share the zipf exponent, so theta = 0. is uniform TPC-C
   and larger theta concentrates the load on w1/w1.d1 — the hot-row
   regime the recovery schemes must survive. *)
let tpcc_remote rng t ~remote_prob w =
  if t.warehouses > 1 && Random.State.float rng 1.0 < remote_prob then begin
    let r = 1 + Random.State.int rng (t.warehouses - 1) in
    if r >= w then r + 1 else r
  end
  else w

let tpcc_new_order ?(items_per_order = 2) ?(remote_prob = 0.1) rng t ~theta =
  if items_per_order < 1 || items_per_order > t.items then
    invalid_arg "Gentx.tpcc_new_order: items_per_order not in [1, items]";
  if theta < 0.0 then invalid_arg "Gentx.tpcc_new_order: theta < 0";
  let w = 1 + zipf_pick rng (zipf_cumulative ~n:t.warehouses ~theta) in
  let d = 1 + zipf_pick rng (zipf_cumulative ~n:t.districts ~theta) in
  let icum = zipf_cumulative ~n:t.items ~theta in
  let item_ids = zipf_entity_subset rng ~cumulative:icum ~k:items_per_order in
  (* Distinct item ids keep the stock names distinct even when some rows
     resolve to a remote warehouse (TPC-C's ~1% remote stock). *)
  let stock =
    List.map
      (fun i ->
        Printf.sprintf "w%d.s%d" (tpcc_remote rng t ~remote_prob w) (i + 1))
      item_ids
  in
  Builder.two_phase_chain t.tpcc_db
    ((Printf.sprintf "w%d" w) :: stock @ [ Printf.sprintf "w%d.d%d" w d ])

let tpcc_payment ?(remote_prob = 0.15) rng t ~theta =
  if theta < 0.0 then invalid_arg "Gentx.tpcc_payment: theta < 0";
  let w = 1 + zipf_pick rng (zipf_cumulative ~n:t.warehouses ~theta) in
  let d = 1 + zipf_pick rng (zipf_cumulative ~n:t.districts ~theta) in
  let c = 1 + zipf_pick rng (zipf_cumulative ~n:t.customers ~theta) in
  let cw = tpcc_remote rng t ~remote_prob w in
  Builder.two_phase_chain t.tpcc_db
    [
      Printf.sprintf "w%d" w;
      Printf.sprintf "w%d.d%d" w d;
      Printf.sprintf "w%d.c%d" cw c;
    ]

let tpcc_system ?(districts = 2) ?(items = 4) ?(customers = 2)
    ?(items_per_order = 2) ?(new_order_frac = 0.5) ?(remote_prob = 0.1) rng
    ~warehouses ~txns ~theta =
  if txns < 1 then invalid_arg "Gentx.tpcc_system: txns < 1";
  if theta < 0.0 then invalid_arg "Gentx.tpcc_system: theta < 0";
  if new_order_frac < 0.0 || new_order_frac > 1.0 then
    invalid_arg "Gentx.tpcc_system: new_order_frac not in [0, 1]";
  if remote_prob < 0.0 || remote_prob > 1.0 then
    invalid_arg "Gentx.tpcc_system: remote_prob not in [0, 1]";
  let t = tpcc_db ~warehouses ~districts ~items ~customers in
  System.create
    (List.init txns (fun _ ->
         if Random.State.float rng 1.0 < new_order_frac then
           tpcc_new_order ~items_per_order ~remote_prob rng t ~theta
         else tpcc_payment ~remote_prob rng t ~theta))

(* ------------------------------------------------------------------ *)
(* Partial replication (Sutra & Shapiro, arXiv:0802.0137) *)

type replicated = {
  rep_db : Db.t;
  logical : int;
  replication : int;
  replicas : Db.entity list array;
}

let replica_name i s = Printf.sprintf "x%d.s%d" i s

let replicated_db ~sites ~entities ~replication =
  if sites < 1 then invalid_arg "Gentx.replicated_db: sites < 1";
  if entities < 1 then invalid_arg "Gentx.replicated_db: entities < 1";
  if replication < 1 || replication > sites then
    invalid_arg "Gentx.replicated_db: replication not in [1, sites]";
  (* Logical entity i is hosted on the [replication] consecutive sites
     starting at i mod sites — deterministic overlapping subsets, every
     adjacent site pair shares entities, so cross-site transactions are
     the norm rather than the exception. *)
  let hosts i = List.init replication (fun j -> (i + j) mod sites) in
  let specs =
    List.init sites (fun s ->
        ( "s" ^ string_of_int s,
          List.filter_map
            (fun i -> if List.mem s (hosts i) then Some (replica_name i s) else None)
            (List.init entities Fun.id) ))
  in
  let db = Db.create specs in
  let replicas =
    Array.init entities (fun i ->
        List.map (fun s -> Db.find_entity_exn db (replica_name i s)) (hosts i))
  in
  { rep_db = db; logical = entities; replication; replicas }

let logical_of rep e =
  let rec find i =
    if i >= rep.logical then None
    else if List.mem e rep.replicas.(i) then Some i
    else find (i + 1)
  in
  find 0

let replicated_transaction ?(write_prob = 0.6) rng rep ~entities_per_txn =
  if entities_per_txn < 1 || entities_per_txn > rep.logical then
    invalid_arg
      "Gentx.replicated_transaction: entities_per_txn not in [1, entities]";
  if write_prob < 0.0 || write_prob > 1.0 then
    invalid_arg "Gentx.replicated_transaction: write_prob not in [0, 1]";
  let order = Array.init rep.logical Fun.id in
  shuffle rng order;
  let chosen = Array.to_list (Array.sub order 0 entities_per_txn) in
  (* ROWA: a write locks every replica of the logical entity (in the
     canonical ascending-site order); a read locks one random replica. *)
  let physical =
    List.concat_map
      (fun l ->
        let reps = rep.replicas.(l) in
        if Random.State.float rng 1.0 < write_prob then reps
        else [ List.nth reps (Random.State.int rng (List.length reps)) ])
      chosen
  in
  Builder.two_phase_chain rep.rep_db
    (List.map (Db.entity_name rep.rep_db) physical)

let replicated_system ?write_prob rng rep ~txns ~entities_per_txn =
  if txns < 1 then invalid_arg "Gentx.replicated_system: txns < 1";
  System.create
    (List.init txns (fun _ ->
         replicated_transaction ?write_prob rng rep ~entities_per_txn))
