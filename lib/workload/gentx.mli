open Ddlock_model

(** Random and parametric transaction generators.

    All generators produce validated {!Ddlock_model.Transaction.t} values;
    randomness comes from an explicit [Random.State.t] so tests and
    benches are reproducible. *)

(** [random_db rng ~sites ~entities] — a schema with [entities] entities
    spread round-robin over [sites] sites, named [e0, e1, …] /
    [s0, s1, …]. *)
val random_db : sites:int -> entities:int -> Db.t

(** [random_transaction rng db ~entities ~density] — a random distributed
    transaction accessing exactly the given entities.

    Construction: pick a uniformly random global order of the 2·k nodes
    with each Lock before its Unlock; orient per-site chains along it
    (giving the required site-total orders); add each remaining
    order-compatible pair as a cross arc with probability [density].
    Every valid transaction shape on those entities arises with positive
    probability at density 0–1 extremes. *)
val random_transaction :
  Random.State.t ->
  Db.t ->
  entities:Db.entity list ->
  density:float ->
  Transaction.t

(** [random_entity_subset rng db ~k] — [k] distinct entities. *)
val random_entity_subset : Random.State.t -> Db.t -> k:int -> Db.entity list

(** [zipf_system rng ~sites ~entities ~txns ~theta] — a hotspot
    workload: each of the [txns] transactions accesses
    [entities_per_txn] (default 2) {e distinct} entities drawn
    zipfian(θ) — entity [e{i}] has weight [(i+1)^-θ], so [theta = 0.] is
    uniform and larger [theta] concentrates contention on the first few
    entities (the serve bench and chaos sweep use it to model the
    realistic many-clients-few-hot-rows regime).  Transaction shape over
    the chosen entities is {!random_transaction} with [density]
    (default 0.3).  Raises [Invalid_argument] on [theta < 0.],
    [txns < 1] or [entities_per_txn > entities]. *)
val zipf_system :
  ?entities_per_txn:int ->
  ?density:float ->
  Random.State.t ->
  sites:int ->
  entities:int ->
  txns:int ->
  theta:float ->
  System.t

(** [random_system rng db ~txns ~entities_per_txn ~density] — each
    transaction accesses a random subset of entities. *)
val random_system :
  Random.State.t ->
  Db.t ->
  txns:int ->
  entities_per_txn:int ->
  density:float ->
  System.t

(** [small_random_pair rng] — a 2-transaction system over a small random
    schema, sized for exhaustive ground-truth comparison.  Unspecified
    parameters are drawn from the rng: sites ∈ [1,3], entities ∈ [2,4],
    density ∈ [0,0.5); each transaction accesses a random non-empty
    entity subset.  The one audited generator behind the differential
    test batteries, the fuzzer and the benches. *)
val small_random_pair :
  ?sites:int -> ?entities:int -> ?density:float -> Random.State.t -> System.t

(** [small_random_system rng ~txns] — like {!small_random_pair} with
    [txns] transactions over a smaller default schema (sites ∈ [1,2],
    entities ∈ [2,3]). *)
val small_random_system :
  ?sites:int ->
  ?entities:int ->
  ?density:float ->
  Random.State.t ->
  txns:int ->
  System.t

(** [random_copies_system rng ~copies] — [copies] physically identical
    copies of one small random transaction (a non-trivial automorphism
    group for [copies >= 2], cf. {!Ddlock_schedule.Canon}); with
    [~extra:true] one additional independent random transaction over the
    same schema is appended. *)
val random_copies_system :
  ?extra:bool -> Random.State.t -> copies:int -> System.t

(** [two_phase_pair db names] — both transactions lock [names] in the
    given order, 2PL-style; safe ∧ deadlock-free by Theorem 3. *)
val two_phase_pair : Db.t -> string list -> Transaction.t * Transaction.t

(** [opposed_pair db names] — T₁ locks in the given order, T₂ in reverse;
    the classic unsafe/deadlocking shape for [length >= 2]. *)
val opposed_pair : Db.t -> string list -> Transaction.t * Transaction.t

(** [dining_philosophers k] — [k] entities [f0 … f(k-1)] on [k] sites;
    transaction [i] 2PL-locks [fᵢ] then [f((i+1) mod k)].  Every pair is
    safe ∧ deadlock-free, but the length-[k] interaction cycle deadlocks
    (for k >= 3; [k >= 2] required). *)
val dining_philosophers : int -> System.t

(** [guard_ring k] — one transaction over [k] entities [g0 … g(k-1)] on
    [k] sites whose only non-trivial arcs are the rotational guards
    [Lgᵢ ≺ Ug(i+1 mod k)].  Copies of guard rings reproduce the paper's
    counterexample figures: the 4-ring is Fig. 2's shape (two copies
    deadlock although Tirri's premise finds nothing), and the 3-ring is
    Fig. 6's (two copies are deadlock-free, three deadlock).
    Requires [k >= 2]. *)
val guard_ring : int -> Transaction.t

(** [chain_pair n] — the safe ∧ DF pair of {!two_phase_pair} over [n]
    entities on [n] sites; used by scaling benches. *)
val chain_pair : int -> Transaction.t * Transaction.t

(** [opposed_chain_pair n] — the failing variant. *)
val opposed_chain_pair : int -> Transaction.t * Transaction.t
