open Ddlock_model

(** Random and parametric transaction generators.

    All generators produce validated {!Ddlock_model.Transaction.t} values;
    randomness comes from an explicit [Random.State.t] so tests and
    benches are reproducible. *)

(** [random_db rng ~sites ~entities] — a schema with [entities] entities
    spread round-robin over [sites] sites, named [e0, e1, …] /
    [s0, s1, …]. *)
val random_db : sites:int -> entities:int -> Db.t

(** [random_transaction rng db ~entities ~density] — a random distributed
    transaction accessing exactly the given entities.

    Construction: pick a uniformly random global order of the 2·k nodes
    with each Lock before its Unlock; orient per-site chains along it
    (giving the required site-total orders); add each remaining
    order-compatible pair as a cross arc with probability [density].
    Every valid transaction shape on those entities arises with positive
    probability at density 0–1 extremes. *)
val random_transaction :
  Random.State.t ->
  Db.t ->
  entities:Db.entity list ->
  density:float ->
  Transaction.t

(** [random_entity_subset rng db ~k] — [k] distinct entities. *)
val random_entity_subset : Random.State.t -> Db.t -> k:int -> Db.entity list

(** [zipf_system rng ~sites ~entities ~txns ~theta] — a hotspot
    workload: each of the [txns] transactions accesses
    [entities_per_txn] (default 2) {e distinct} entities drawn
    zipfian(θ) — entity [e{i}] has weight [(i+1)^-θ], so [theta = 0.] is
    uniform and larger [theta] concentrates contention on the first few
    entities (the serve bench and chaos sweep use it to model the
    realistic many-clients-few-hot-rows regime).  Transaction shape over
    the chosen entities is {!random_transaction} with [density]
    (default 0.3).  Raises [Invalid_argument] on [theta < 0.],
    [txns < 1] or [entities_per_txn > entities]. *)
val zipf_system :
  ?entities_per_txn:int ->
  ?density:float ->
  Random.State.t ->
  sites:int ->
  entities:int ->
  txns:int ->
  theta:float ->
  System.t

(** [random_system rng db ~txns ~entities_per_txn ~density] — each
    transaction accesses a random subset of entities. *)
val random_system :
  Random.State.t ->
  Db.t ->
  txns:int ->
  entities_per_txn:int ->
  density:float ->
  System.t

(** [small_random_pair rng] — a 2-transaction system over a small random
    schema, sized for exhaustive ground-truth comparison.  Unspecified
    parameters are drawn from the rng: sites ∈ [1,3], entities ∈ [2,4],
    density ∈ [0,0.5); each transaction accesses a random non-empty
    entity subset.  The one audited generator behind the differential
    test batteries, the fuzzer and the benches. *)
val small_random_pair :
  ?sites:int -> ?entities:int -> ?density:float -> Random.State.t -> System.t

(** [small_random_system rng ~txns] — like {!small_random_pair} with
    [txns] transactions over a smaller default schema (sites ∈ [1,2],
    entities ∈ [2,3]). *)
val small_random_system :
  ?sites:int ->
  ?entities:int ->
  ?density:float ->
  Random.State.t ->
  txns:int ->
  System.t

(** [random_copies_system rng ~copies] — [copies] physically identical
    copies of one small random transaction (a non-trivial automorphism
    group for [copies >= 2], cf. {!Ddlock_schedule.Canon}); with
    [~extra:true] one additional independent random transaction over the
    same schema is appended. *)
val random_copies_system :
  ?extra:bool -> Random.State.t -> copies:int -> System.t

(** [two_phase_pair db names] — both transactions lock [names] in the
    given order, 2PL-style; safe ∧ deadlock-free by Theorem 3. *)
val two_phase_pair : Db.t -> string list -> Transaction.t * Transaction.t

(** [opposed_pair db names] — T₁ locks in the given order, T₂ in reverse;
    the classic unsafe/deadlocking shape for [length >= 2]. *)
val opposed_pair : Db.t -> string list -> Transaction.t * Transaction.t

(** [dining_philosophers k] — [k] entities [f0 … f(k-1)] on [k] sites;
    transaction [i] 2PL-locks [fᵢ] then [f((i+1) mod k)].  Every pair is
    safe ∧ deadlock-free, but the length-[k] interaction cycle deadlocks
    (for k >= 3; [k >= 2] required). *)
val dining_philosophers : int -> System.t

(** [guard_ring k] — one transaction over [k] entities [g0 … g(k-1)] on
    [k] sites whose only non-trivial arcs are the rotational guards
    [Lgᵢ ≺ Ug(i+1 mod k)].  Copies of guard rings reproduce the paper's
    counterexample figures: the 4-ring is Fig. 2's shape (two copies
    deadlock although Tirri's premise finds nothing), and the 3-ring is
    Fig. 6's (two copies are deadlock-free, three deadlock).
    Requires [k >= 2]. *)
val guard_ring : int -> Transaction.t

(** [chain_pair n] — the safe ∧ DF pair of {!two_phase_pair} over [n]
    entities on [n] sites; used by scaling benches. *)
val chain_pair : int -> Transaction.t * Transaction.t

(** [opposed_chain_pair n] — the failing variant. *)
val opposed_chain_pair : int -> Transaction.t * Transaction.t

(** {1 TPC-C-style workloads}

    A warehouse-sharded schema in the TPC-C mould: site [wh{w}] hosts
    the warehouse row [w{w}], its districts [w{w}.d{j}], stock rows
    [w{w}.s{k}] and customers [w{w}.c{m}].  Transactions are 2PL chains
    ({!Builder.two_phase_chain}), so every generated transaction is
    two-phase and site-total-ordered by construction; contention comes
    from the zipf-skewed warehouse/district/item choices and the
    cross-warehouse ("remote") accesses. *)

type tpcc = {
  tpcc_db : Db.t;
  warehouses : int;
  districts : int;  (** per warehouse *)
  items : int;  (** stock rows per warehouse *)
  customers : int;  (** per warehouse *)
}

(** [tpcc_db ~warehouses ~districts ~items ~customers] — the sharded
    schema above.  Raises [Invalid_argument] when any count is [< 1]. *)
val tpcc_db :
  warehouses:int -> districts:int -> items:int -> customers:int -> tpcc

(** [tpcc_new_order rng t ~theta] — a new-order shape: read the home
    warehouse row, touch [items_per_order] (default 2) {e distinct}
    zipf(θ)-hot stock rows (each resolved to a remote warehouse with
    probability [remote_prob], default 0.1 — the cross-site case), then
    write the hot district row last.  Warehouse and district are also
    zipf(θ)-skewed, so rank-1 rows are the hotspots. *)
val tpcc_new_order :
  ?items_per_order:int ->
  ?remote_prob:float ->
  Random.State.t ->
  tpcc ->
  theta:float ->
  Transaction.t

(** [tpcc_payment rng t ~theta] — a payment shape: warehouse row,
    district row, then a customer row (remote with probability
    [remote_prob], default 0.15, per the TPC-C spec). *)
val tpcc_payment :
  ?remote_prob:float -> Random.State.t -> tpcc -> theta:float -> Transaction.t

(** [tpcc_system rng ~warehouses ~txns ~theta] — a mixed workload of
    [txns] transactions, each a new-order with probability
    [new_order_frac] (default 0.5) and a payment otherwise, over a fresh
    {!tpcc_db} (defaults: 2 districts, 4 stock rows, 2 customers per
    warehouse).  Raises [Invalid_argument] on [txns < 1], [theta < 0.],
    or probabilities outside [0, 1]. *)
val tpcc_system :
  ?districts:int ->
  ?items:int ->
  ?customers:int ->
  ?items_per_order:int ->
  ?new_order_frac:float ->
  ?remote_prob:float ->
  Random.State.t ->
  warehouses:int ->
  txns:int ->
  theta:float ->
  System.t

(** {1 Partial replication (Sutra & Shapiro, arXiv:0802.0137)}

    The model layer places each entity on exactly one site, so partial
    replication is expressed one level up: each {e logical} entity [i]
    is materialized as [replication] physical replica entities
    [x{i}.s{j}], one per hosting site, with hosting sets that overlap
    between neighbouring sites.  Transactions follow the
    read-one/write-all (ROWA) discipline over the replica sets. *)

type replicated = {
  rep_db : Db.t;
  logical : int;  (** number of logical entities *)
  replication : int;  (** replicas per logical entity *)
  replicas : Db.entity list array;
      (** physical replicas of logical entity [i], ascending site order *)
}

(** [replicated_db ~sites ~entities ~replication] — logical entity [i]
    is replicated on the [replication] consecutive sites starting at
    [i mod sites], so adjacent sites hold overlapping entity subsets.
    Raises [Invalid_argument] unless [1 <= replication <= sites] and
    [sites, entities >= 1]. *)
val replicated_db : sites:int -> entities:int -> replication:int -> replicated

(** [logical_of rep e] — the logical entity a physical replica belongs
    to, or [None] for an unknown entity. *)
val logical_of : replicated -> Db.entity -> int option

(** [replicated_transaction rng rep ~entities_per_txn] — a 2PL chain
    over [entities_per_txn] distinct logical entities: each is a write
    with probability [write_prob] (default 0.6, locking {e all} its
    replicas — ROWA) and otherwise a read (locking one random replica).
    Cross-site by construction whenever a write's replica set spans
    sites. *)
val replicated_transaction :
  ?write_prob:float ->
  Random.State.t ->
  replicated ->
  entities_per_txn:int ->
  Transaction.t

(** [replicated_system rng rep ~txns ~entities_per_txn] — [txns]
    independent {!replicated_transaction}s. *)
val replicated_system :
  ?write_prob:float ->
  Random.State.t ->
  replicated ->
  txns:int ->
  entities_per_txn:int ->
  System.t
