open Ddlock_graph
open Ddlock_model
open Ddlock_schedule

let prefix_of sys specs =
  let p = State.initial sys in
  List.iter
    (fun (i, names) ->
      let tx = System.txn sys i in
      List.iter
        (fun (nm, op) ->
          let e = Db.find_entity_exn (System.db sys) nm in
          let node =
            match op with
            | `L -> Transaction.lock_node_exn tx e
            | `U -> Transaction.unlock_node_exn tx e
          in
          Bitset.set p.(i) node)
        names)
    specs;
  p

let fig1 () =
  let db = Db.create [ ("site1", [ "x" ]); ("site2", [ "y"; "z" ]) ] in
  let l e = Builder.L e and u e = Builder.U e in
  let t1 =
    Builder.total_exn db [ l "x"; u "x"; l "y"; l "z"; u "y"; u "z" ]
  in
  let t2 = Builder.total_exn db [ l "x"; l "y"; u "x"; u "y" ] in
  let t3 = Builder.total_exn db [ l "z"; l "x"; u "z"; u "x" ] in
  System.create [ t1; t2; t3 ]

let fig1_deadlock_prefix sys =
  prefix_of sys
    [
      (0, [ ("x", `L); ("x", `U); ("y", `L) ]);
      (1, [ ("x", `L) ]);
      (2, [ ("z", `L) ]);
    ]

let fig2_txn () = Gentx.guard_ring 4
let fig2 () = System.copies (fig2_txn ()) 2

let fig3_txn () =
  let db = Db.create [ ("s1", [ "x" ]); ("s2", [ "y" ]) ] in
  Builder.transaction_exn db
    ~chains:Builder.[ [ L "x"; U "x"; U "y" ]; [ L "y"; U "y" ] ]
    ()

let fig3 () = System.copies (fig3_txn ()) 2
let fig6_txn () = Gentx.guard_ring 3
