open Ddlock_graph
open Ddlock_model
open Ddlock_schedule

(** The paper's figures as library values.

    The 1986 scan's figures are OCR-garbled; these are reconstructions
    with exactly the properties the text uses them for, machine-checked
    by the test suite and by [examples/paper_figures.exe]. *)

(** Fig. 1 — three transactions over two sites with a deadlock prefix
    whose reduction-graph cycle passes through all three: T1 holds y
    waiting for z, T2 holds x waiting for y, T3 holds z waiting for x,
    after T1 has already locked and unlocked x (the paper's U¹x → L²x
    arc). *)
val fig1 : unit -> System.t

(** The deadlock prefix of Fig. 1: T1 = \{Lx, Ux, Ly\}, T2 = \{Lx\},
    T3 = \{Lz\}. *)
val fig1_deadlock_prefix : System.t -> State.t

(** Fig. 2 — the 4-entity guard ring ({!Gentx.guard_ring}[ 4]): one
    partial order whose two copies deadlock through a cycle over four
    entities although no entity pair satisfies Tirri's premise. *)
val fig2_txn : unit -> Transaction.t

val fig2 : unit -> System.t

(** Fig. 3 — a partial order T with \{T, T\} deadlock-free although the
    extension pair (Lx Ly Ux Uy, Ly Lx Ux Uy) deadlocks. *)
val fig3_txn : unit -> Transaction.t

val fig3 : unit -> System.t

(** Fig. 6 — the 3-entity guard ring: two copies are deadlock-free,
    three deadlock (so Theorem 5 fails for deadlock-freedom alone). *)
val fig6_txn : unit -> Transaction.t

(** Helper used by Fig. 1: set the named lock/unlock nodes of the given
    transactions in a fresh prefix vector. *)
val prefix_of :
  System.t -> (int * (string * [ `L | `U ]) list) list -> Bitset.t array
