(* Multi-producer batch channel used to hand successors discovered by one
   worker domain over to the domain owning the destination shard.
   Producers push whole per-level batches (one lock acquisition per
   producer per level); the owner drains after the level barrier, so
   draining is uncontended. *)

type 'a t = { mutable batches : 'a list list; lock : Mutex.t }

let create () = { batches = []; lock = Mutex.create () }

let send t batch =
  Mutex.lock t.lock;
  t.batches <- batch :: t.batches;
  Mutex.unlock t.lock

let drain t =
  Mutex.lock t.lock;
  let bs = t.batches in
  t.batches <- [];
  Mutex.unlock t.lock;
  bs
