(** Multi-producer batch channel for cross-shard successor handoff.

    Producers {!send} whole batches under a mutex; the shard owner
    {!drain}s everything after a barrier, when no producer is active. *)

type 'a t

val create : unit -> 'a t

(** [send t batch] — atomically appends [batch] (kept as one block). *)
val send : 'a t -> 'a list -> unit

(** [drain t] — removes and returns all batches sent so far, in
    unspecified order. *)
val drain : 'a t -> 'a list list
