open Ddlock_model
open Ddlock_schedule

(** Deterministic multicore state-space exploration.

    A level-synchronous parallel BFS over [jobs] worker domains: the
    visited set is sharded by state-key hash (one lock-free hash table
    per shard), successors crossing shards are handed over on per-shard
    channels, and a deterministic reduction merges each level in the
    exact sequential BFS insertion order.  Consequently every observable
    — state counts, reachability, deadlock verdicts, the {e first}
    witness and its schedule, and the exact [max_states] cap behaviour —
    is bit-identical to {!Ddlock_schedule.Explore} for {e every} value
    of [jobs], including [jobs = 1].

    All functions raise [Invalid_argument] when [jobs < 1] and
    {!Ddlock_schedule.Explore.Too_large} on budget exhaustion, with the
    same exact-cap semantics as the sequential engine. *)

(** Raises [Invalid_argument] when [jobs < 1]. *)
val validate_jobs : int -> unit

(** Exploration mode.

    [`Deterministic] (the default) is the level-synchronous engine
    described above: bit-identical to the sequential engine for every
    [jobs], at the cost of a per-level barrier and a sequential
    rank-ordered reduction.

    [`Fast] is the relaxed work-stealing engine: per-domain deques with
    batch stealing, a hash-sharded visited set of intern tables (no
    string keys — {!Ddlock_schedule.State.hash} + structural equality,
    dense int ids, packed parent/via arenas), no barrier, and an
    early-exit broadcast on the first witness.  Guarantees kept:
    {ul
    {- {e verdicts} — the explored state {e set} equals the
       deterministic one (same dedup relation), so emptiness answers
       ([deadlock_free], [safe], budget-free [bfs = None]) coincide;}
    {- {e witness validity} — any returned schedule is a real path
       from the initial state to a state satisfying the goal;}
    {- {e cap soundness} — [Explore.Too_large n] is raised {e iff} the
       reachable set (truncated at the stop point) exceeds
       [max_states]; the carried [n >= max_states] may overshoot by
       the work in flight (at most one wave), never undershoot.}}
    Relaxed: discovery order, {e which} witness is found, and the
    [par.steals]/[par.intern_hits]/[par.arena_reuse] counters (racy by
    nature, not jobs-invariant — unlike every deterministic-mode
    counter).  [find_deadlock]/[safe]/[safe_and_deadlock_free]
    re-canonicalize positive verdicts with a plain sequential
    re-search — exactly the [--por] contract — so their output stays
    byte-identical to the deterministic engines on every workload whose
    re-search fits the budget.  Composes with [?symmetry], [?por] and
    {!Ddlock_obs.Cancel} deadlines (worker 0 runs in the calling domain
    and polls). *)
type mode = [ `Deterministic | `Fast ]

(** {1 Full state space} *)

type space

(** [explore ?max_states ?symmetry ~jobs sys] — the reachable state
    space, with parent pointers, computed on [jobs] domains.  Same
    states, counts and shortest schedules as {!Explore.explore}, for the
    same [symmetry] flag.  With [~symmetry:true] the canonical key
    replaces the raw state key in the dedup shard map (the stored nodes
    are orbit representatives, see {!Ddlock_schedule.Canon}), and orbit
    members pruned by canonical dedup never count against
    [max_states].

    With [~por:true] the space is the persistent/sleep-set reduced
    space ({!Ddlock_schedule.Indep}): bit-identical to
    [Explore.explore ~por:true] — same states, ranks and schedules —
    for every [jobs], and composes with [~symmetry:true].

    With [~mode:`Fast] the space holds the same state {e set} (for
    [~por:false]; a valid reduced set for [~por:true]) but no BFS
    ranks: {!states} enumerates in shard order and {!schedule_to}
    returns a valid (not necessarily shortest) schedule. *)
val explore :
  ?max_states:int ->
  ?symmetry:bool ->
  ?por:bool ->
  ?mode:mode ->
  jobs:int ->
  System.t ->
  space

val system : space -> System.t
val jobs : space -> int
val state_count : space -> int

(** States in discovery order — deterministic spaces: BFS rank order;
    fast spaces: shard-major order (deterministic for a given run
    only). *)
val states : space -> State.t Seq.t

val is_reachable : space -> State.t -> bool

(** A (shortest) partial schedule realizing a reachable state; identical
    to the sequential engine's choice. *)
val schedule_to : space -> State.t -> Step.t list option

(** {1 Goal-directed search} *)

(** [bfs ?max_states ?restrict ?symmetry ~jobs sys ~found] — first state
    (in BFS insertion order) satisfying [found], with the schedule
    reaching it; identical to {!Explore.bfs} output for every [jobs] and
    the same [symmetry] flag.  [found] and [restrict] are evaluated
    concurrently on worker domains and must be pure; with
    [~symmetry:true] they see orbit representatives and must be
    invariant under identical-transaction permutations.

    With [~por:true] the search runs over the reduced space and is
    bit-identical to [Explore.bfs ~por:true]; sound only for
    predicates implied by deadlock (see {!Explore.bfs}).

    With [~mode:`Fast] the returned witness is the first one {e some}
    worker reached — valid, but not the BFS-minimal one; [None] answers
    are still equivalent to the deterministic engine's. *)
val bfs :
  ?max_states:int ->
  ?restrict:(State.t -> bool) ->
  ?symmetry:bool ->
  ?por:bool ->
  ?mode:mode ->
  jobs:int ->
  System.t ->
  found:(State.t -> bool) ->
  (Step.t list * State.t) option

(** With [~por:true] or [~mode:`Fast], verdict from the reduced or
    relaxed search and witness from a plain sequential re-search —
    byte-identical to the sequential [find_deadlock] for every [jobs]
    (falling back to the valid raw witness when the re-search exceeds
    the budget). *)
val find_deadlock :
  ?max_states:int ->
  ?symmetry:bool ->
  ?por:bool ->
  ?mode:mode ->
  jobs:int ->
  System.t ->
  (Step.t list * State.t) option

val deadlock_free :
  ?max_states:int ->
  ?symmetry:bool ->
  ?por:bool ->
  ?mode:mode ->
  jobs:int ->
  System.t ->
  bool

(** {1 Lemma-1 searches (safety)}

    Parallel equivalents of {!Explore.safe_and_deadlock_free} and
    {!Explore.safe}, over the same extended state space
    ({!Explore.Lemma1}); counterexamples are identical to the sequential
    ones. *)

val safe_and_deadlock_free :
  ?max_states:int ->
  ?mode:mode ->
  jobs:int ->
  System.t ->
  (unit, Explore.counterexample) result

val safe :
  ?max_states:int ->
  ?mode:mode ->
  jobs:int ->
  System.t ->
  (unit, Explore.counterexample) result
