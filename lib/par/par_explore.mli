open Ddlock_model
open Ddlock_schedule

(** Deterministic multicore state-space exploration.

    A level-synchronous parallel BFS over [jobs] worker domains: the
    visited set is sharded by state-key hash (one lock-free hash table
    per shard), successors crossing shards are handed over on per-shard
    channels, and a deterministic reduction merges each level in the
    exact sequential BFS insertion order.  Consequently every observable
    — state counts, reachability, deadlock verdicts, the {e first}
    witness and its schedule, and the exact [max_states] cap behaviour —
    is bit-identical to {!Ddlock_schedule.Explore} for {e every} value
    of [jobs], including [jobs = 1].

    All functions raise [Invalid_argument] when [jobs < 1] and
    {!Ddlock_schedule.Explore.Too_large} on budget exhaustion, with the
    same exact-cap semantics as the sequential engine. *)

(** Raises [Invalid_argument] when [jobs < 1]. *)
val validate_jobs : int -> unit

(** {1 Full state space} *)

type space

(** [explore ?max_states ?symmetry ~jobs sys] — the reachable state
    space, with parent pointers, computed on [jobs] domains.  Same
    states, counts and shortest schedules as {!Explore.explore}, for the
    same [symmetry] flag.  With [~symmetry:true] the canonical key
    replaces the raw state key in the dedup shard map (the stored nodes
    are orbit representatives, see {!Ddlock_schedule.Canon}), and orbit
    members pruned by canonical dedup never count against
    [max_states].

    With [~por:true] the space is the persistent/sleep-set reduced
    space ({!Ddlock_schedule.Indep}): bit-identical to
    [Explore.explore ~por:true] — same states, ranks and schedules —
    for every [jobs], and composes with [~symmetry:true]. *)
val explore :
  ?max_states:int -> ?symmetry:bool -> ?por:bool -> jobs:int -> System.t -> space

val system : space -> System.t
val jobs : space -> int
val state_count : space -> int

(** States in deterministic BFS discovery order (rank order). *)
val states : space -> State.t Seq.t

val is_reachable : space -> State.t -> bool

(** A (shortest) partial schedule realizing a reachable state; identical
    to the sequential engine's choice. *)
val schedule_to : space -> State.t -> Step.t list option

(** {1 Goal-directed search} *)

(** [bfs ?max_states ?restrict ?symmetry ~jobs sys ~found] — first state
    (in BFS insertion order) satisfying [found], with the schedule
    reaching it; identical to {!Explore.bfs} output for every [jobs] and
    the same [symmetry] flag.  [found] and [restrict] are evaluated
    concurrently on worker domains and must be pure; with
    [~symmetry:true] they see orbit representatives and must be
    invariant under identical-transaction permutations.

    With [~por:true] the search runs over the reduced space and is
    bit-identical to [Explore.bfs ~por:true]; sound only for
    predicates implied by deadlock (see {!Explore.bfs}). *)
val bfs :
  ?max_states:int ->
  ?restrict:(State.t -> bool) ->
  ?symmetry:bool ->
  ?por:bool ->
  jobs:int ->
  System.t ->
  found:(State.t -> bool) ->
  (Step.t list * State.t) option

(** With [~por:true], verdict from the reduced search and witness from
    a plain non-symmetric re-search — byte-identical to the
    sequential [Explore.find_deadlock ~por:true] for every [jobs]. *)
val find_deadlock :
  ?max_states:int ->
  ?symmetry:bool ->
  ?por:bool ->
  jobs:int ->
  System.t ->
  (Step.t list * State.t) option

val deadlock_free :
  ?max_states:int -> ?symmetry:bool -> ?por:bool -> jobs:int -> System.t -> bool

(** {1 Lemma-1 searches (safety)}

    Parallel equivalents of {!Explore.safe_and_deadlock_free} and
    {!Explore.safe}, over the same extended state space
    ({!Explore.Lemma1}); counterexamples are identical to the sequential
    ones. *)

val safe_and_deadlock_free :
  ?max_states:int -> jobs:int -> System.t -> (unit, Explore.counterexample) result

val safe :
  ?max_states:int -> jobs:int -> System.t -> (unit, Explore.counterexample) result
