open Ddlock_model
open Ddlock_schedule

(* Deterministic multicore state-space exploration.

   The search is a level-synchronous BFS over [jobs] worker domains.
   The visited set is sharded by a hash of the state key, one hash table
   per shard, owned by one domain — no global lock.  Each level runs in
   three phases:

   A. expansion (parallel): workers take strided slices of the frontier,
      compute successors in the canonical enabled order, and hand each
      candidate to the channel of the shard owning its key;

   B. dedup (parallel): every shard owner drains its channel, drops
      candidates already in its table, keeps for each new key the
      candidate with the smallest (parent rank, successor index), sorts,
      and evaluates the goal predicate on the survivors;

   C. reduction (sequential, cheap): the per-shard sorted runs are merged
      on (parent rank, successor index).  That order IS the sequential
      BFS insertion order, so ranks, parent pointers, the [max_states]
      cap and the first goal state all come out bit-identical to the
      sequential engine, for every value of [jobs].

   Only phase C is sequential, and it does one hash-table insert per
   state; the expensive work — successor computation, key construction,
   goal predicates such as deadlock or reduction-graph checks — happens
   in phases A and B on all domains. *)

let validate_jobs jobs =
  if jobs < 1 then
    invalid_arg (Printf.sprintf "jobs must be >= 1 (got %d)" jobs)

(* Telemetry.  [explore.states_visited] is shared with the sequential
   engine and incremented in the deterministic reduction (phase C), which
   replays the sequential insertion sequence — so the total is invariant
   under [jobs] by construction.  The [par.*] metrics describe the
   parallel machinery itself (levels, handoffs, imbalance) and naturally
   depend on [jobs]. *)
module Obs = struct
  module T = Ddlock_obs.Trace
  module M = Ddlock_obs.Metrics

  let states_visited = M.Counter.make "explore.states_visited"
  let deadlock_witnesses = M.Counter.make "explore.deadlock_witnesses"
  let searches = M.Counter.make "explore.searches"
  let canon_hits = M.Counter.make "canon.hits"
  let levels = M.Counter.make "par.levels"
  let handoffs = M.Counter.make "par.handoffs"

  (* Fast-mode machinery.  These describe racy scheduling decisions
     (who stole what, which arrival deduplicated) and are NOT
     jobs-invariant — unlike every deterministic-mode counter.  The
     deterministic engine never touches them, so the fuzz counter
     cross-check can keep asserting jobs-invariance for it. *)
  let steals = M.Counter.make "par.steals"
  let intern_hits = M.Counter.make "par.intern_hits"
  let arena_reuse = M.Counter.make "par.arena_reuse"
  let frontier = M.Histogram.make "par.frontier_states"
  let imbalance = M.Histogram.make "par.shard_imbalance"
  let frontier_peak = M.Gauge.make "par.frontier_peak"

  (* Shared with the sequential reduced engine; bumped once per work-item
     expansion in phase A.  The work-item multiset is jobs-invariant (the
     covering-rule replay in phase C is sequential), so the totals are
     jobs-invariant like [explore.states_visited]. *)
  let por_pruned = M.Counter.make "por.pruned"
  let por_persistent_size = M.Counter.make "por.persistent_size"

  let por_expand ~enabled ~persistent ~selected =
    M.Counter.add por_pruned (enabled - selected);
    M.Counter.add por_persistent_size persistent
end

(* A search instance over an abstract node type: the plain state space
   and the Lemma-1 extended space both instantiate this. *)
type 'n ops = {
  key : 'n -> string;
  hash : 'n -> int;  (* compatible with [equal]; fast-mode intern tables *)
  equal : 'n -> 'n -> bool;
  next : 'n -> (Step.t * 'n) list;  (* canonical successor order *)
  restrict : 'n -> bool;
  found : 'n -> bool;
  moved : parent:'n -> Step.t -> 'n -> bool;
      (* whether the stored successor differs from the raw one (symmetry
         canonicalization); evaluated at insertion so the [canon.hits]
         total is jobs-invariant, and only while telemetry is on *)
}

type 'n entry = {
  node : 'n;
  parent : string option;
  via : Step.t option;
  rank : int;  (* sequential BFS insertion rank (initial state = 0) *)
}

type 'n table = {
  jobs : int;
  shards : (string, 'n entry) Hashtbl.t array;
  mutable total : int;
}

let shard_key ~jobs k = Hashtbl.hash k mod jobs
let find_entry t k = Hashtbl.find_opt t.shards.(shard_key ~jobs:t.jobs k) k

let path_to t k =
  let rec go k acc =
    match find_entry t k with
    | None -> None
    | Some { parent = None; _ } -> Some acc
    | Some { parent = Some p; via = Some s; _ } -> go p (s :: acc)
    | Some { parent = Some _; via = None; _ } -> assert false
  in
  go k []

type 'n cand = {
  ckey : string;
  cnode : 'n;
  parent_rank : int;
  parent_key : string;
  via_step : Step.t;
  ord : int;  (* index of this successor in the parent's enabled order *)
  mutable hit : bool;
}

let cand_order a b =
  match compare a.parent_rank b.parent_rank with
  | 0 -> compare a.ord b.ord
  | c -> c

(* Run [f 0 .. f (jobs-1)] concurrently; returning is the barrier.
   The spawning domain's request context is re-installed in each child
   so worker spans stay attributed to the request being served. *)
let run_phase ~jobs f =
  if jobs = 1 then f 0
  else begin
    let req = Ddlock_obs.Request.current () in
    let doms =
      Array.init (jobs - 1) (fun w ->
          Domain.spawn (fun () ->
              Ddlock_obs.Request.with_id req (fun () -> f (w + 1))))
    in
    f 0;
    Array.iter Domain.join doms
  end

type 'n outcome = Space of 'n table | Witness of Step.t list * 'n

let search_core ~max_states ~jobs ~ops init =
  validate_jobs jobs;
  Ddlock_obs.Metrics.Counter.incr Obs.searches;
  Obs.T.span "par.search" ~args:[ ("jobs", string_of_int jobs) ] @@ fun () ->
  let t =
    { jobs; shards = Array.init jobs (fun _ -> Hashtbl.create 256); total = 0 }
  in
  if max_states < 1 then raise (Explore.Too_large 0);
  let ikey = ops.key init in
  Hashtbl.add t.shards.(shard_key ~jobs ikey) ikey
    { node = init; parent = None; via = None; rank = 0 };
  t.total <- 1;
  Obs.M.Counter.incr Obs.states_visited;
  if ops.found init then Witness ([], init)
  else begin
    let frontier = ref [| (0, ikey, init) |] in
    let witness = ref None in
    let level = ref 0 in
    while Option.is_none !witness && Array.length !frontier > 0 do
      let fr = !frontier in
      let nfr = Array.length fr in
      Obs.M.Counter.incr Obs.levels;
      Obs.M.Histogram.observe Obs.frontier nfr;
      Obs.M.Gauge.set_max Obs.frontier_peak nfr;
      let level_arg =
        if Ddlock_obs.Control.is_on () then
          [ ("level", string_of_int !level); ("frontier", string_of_int nfr) ]
        else []
      in
      incr level;
      let chans = Array.init jobs (fun _ -> Par_channel.create ()) in
      (* Phase A: parallel expansion with cross-shard handoff. *)
      run_phase ~jobs (fun w ->
          Obs.T.span "par.expand" ~args:level_arg @@ fun () ->
          let buckets = Array.make jobs [] in
          let i = ref w in
          while !i < nfr do
            let prank, pkey, pnode = fr.(!i) in
            List.iteri
              (fun ord (step, node') ->
                if ops.restrict node' then begin
                  let ckey = ops.key node' in
                  let s = shard_key ~jobs ckey in
                  buckets.(s) <-
                    {
                      ckey;
                      cnode = node';
                      parent_rank = prank;
                      parent_key = pkey;
                      via_step = step;
                      ord;
                      hit = false;
                    }
                    :: buckets.(s)
                end)
              (ops.next pnode);
            i := !i + jobs
          done;
          Array.iteri
            (fun s b ->
              if b <> [] then begin
                Obs.M.Counter.add Obs.handoffs (List.length b);
                Par_channel.send chans.(s) b
              end)
            buckets);
      (* Phase B: per-shard dedup, sort, and goal evaluation. *)
      let per_shard = Array.make jobs [||] in
      run_phase ~jobs (fun j ->
          Obs.T.span "par.dedup" ~args:level_arg @@ fun () ->
          let best = Hashtbl.create 64 in
          List.iter
            (List.iter (fun c ->
                 if not (Hashtbl.mem t.shards.(j) c.ckey) then
                   match Hashtbl.find_opt best c.ckey with
                   | None -> Hashtbl.replace best c.ckey c
                   | Some c0 ->
                       if cand_order c c0 < 0 then Hashtbl.replace best c.ckey c))
            (Par_channel.drain chans.(j));
          let arr = Array.of_seq (Hashtbl.to_seq_values best) in
          Array.sort cand_order arr;
          Array.iter (fun c -> c.hit <- ops.found c.cnode) arr;
          per_shard.(j) <- arr);
      (if Ddlock_obs.Control.is_on () then
         let mx = ref 0 and mn = ref max_int in
         Array.iter
           (fun a ->
             let n = Array.length a in
             if n > !mx then mx := n;
             if n < !mn then mn := n)
           per_shard;
         Obs.M.Histogram.observe Obs.imbalance (max 0 (!mx - !mn)));
      (* Phase C: deterministic reduction — merge the sorted shard runs in
         sequential BFS insertion order, enforcing the cap exactly and
         stopping at the first goal state. *)
      Obs.T.span "par.reduce" ~args:level_arg @@ fun () ->
      let next = ref [] and nnext = ref 0 in
      let idx = Array.make jobs 0 in
      let stop = ref false in
      while not !stop do
        let bestj = ref (-1) in
        for j = 0 to jobs - 1 do
          if
            idx.(j) < Array.length per_shard.(j)
            && (!bestj < 0
               || cand_order per_shard.(j).(idx.(j))
                    per_shard.(!bestj).(idx.(!bestj))
                  < 0)
          then bestj := j
        done;
        if !bestj < 0 then stop := true
        else begin
          let j = !bestj in
          let c = per_shard.(j).(idx.(j)) in
          idx.(j) <- idx.(j) + 1;
          if t.total >= max_states then raise (Explore.Too_large t.total);
          let rank = t.total in
          Hashtbl.add t.shards.(j) c.ckey
            {
              node = c.cnode;
              parent = Some c.parent_key;
              via = Some c.via_step;
              rank;
            };
          t.total <- t.total + 1;
          Obs.M.Counter.incr Obs.states_visited;
          (if Ddlock_obs.Control.is_on () then
             match find_entry t c.parent_key with
             | Some pe ->
                 if ops.moved ~parent:pe.node c.via_step c.cnode then
                   Obs.M.Counter.incr Obs.canon_hits
             | None -> ());
          next := (rank, c.ckey, c.cnode) :: !next;
          incr nnext;
          if c.hit then begin
            witness := Some (Option.get (path_to t c.ckey), c.cnode);
            stop := true
          end
        end
      done;
      frontier :=
        (match !witness with
        | Some _ -> [||]
        | None ->
            let n = !nnext in
            let arr = Array.make n (0, ikey, init) in
            List.iteri (fun i x -> arr.(n - 1 - i) <- x) !next;
            arr)
    done;
    match !witness with
    | Some (steps, n) -> Witness (steps, n)
    | None -> Space t
  end

(* ------------------------- plain state space ---------------------- *)

let state_ops sys ~restrict ~found =
  {
    key = State.key;
    hash = State.hash;
    equal = State.equal;
    next =
      (fun st -> List.map (fun s -> (s, State.apply st s)) (State.enabled sys st));
    restrict;
    found;
    moved = (fun ~parent:_ _ _ -> false);
  }

(* Quotient-space instance: successors are orbit representatives, so the
   dedup shard map keys become canonical keys with no other change —
   [key] stays [State.key] because the stored nodes are already
   canonical.  [restrict]/[found] see representatives and must be
   group-invariant (see {!Explore.bfs}). *)
let sym_state_ops c sys ~restrict ~found =
  {
    key = State.key;
    hash = State.hash;
    equal = State.equal;
    next =
      (fun rep ->
        List.map
          (fun s -> (s, fst (Canon.normalize c (State.apply rep s))))
          (State.enabled sys rep));
    restrict;
    found;
    moved =
      (fun ~parent step rep' -> not (State.equal (State.apply parent step) rep'));
  }

let plain_or_sym_ops canon sys ~restrict ~found =
  match canon with
  | None -> state_ops sys ~restrict ~found
  | Some c -> sym_state_ops c sys ~restrict ~found

let initial_node canon sys =
  match canon with
  | None -> State.initial sys
  | Some c -> fst (Canon.normalize c (State.initial sys))

(* ---------------- partial-order reduced state space ----------------

   Persistent/sleep-set selective search ({!Ddlock_schedule.Indep}),
   parallelized with the same three-phase level discipline as
   [search_core].  Work items are (state, sleep set) pairs.  Unlike
   the plain engine, phase B performs NO deduplication: an arrival at
   an already-stored state still matters — the sequential
   covering-rule replay in phase C shrinks the stored sleep set to the
   intersection and re-enqueues the state when the arrival's sleep set
   does not cover it.  Phase C processes candidates in (parent
   work-item rank, successor index) order, which is exactly the
   sequential [Explore] reduced queue order, so tables, sleep sets,
   work-item streams, telemetry totals, the cap and the first goal
   state are all bit-identical to the sequential reduced engine for
   every [jobs]. *)

type por_item = {
  wrank : int;
  wkey : string;
  wnode : State.t;
  wsleep : Step.t list;
}

type por_cand = {
  pckey : string;
  pcnode : State.t;
  pcmoved : bool;
  pcsleep : Step.t list;
  pparent_rank : int;
  pparent_key : string;
  pvia : Step.t;
  pord : int;
  mutable phit : bool;
}

let por_cand_order a b =
  match compare a.pparent_rank b.pparent_rank with
  | 0 -> compare a.pord b.pord
  | c -> c

let por_core ~max_states ~jobs ~canon ~restrict ~found sys =
  validate_jobs jobs;
  Obs.M.Counter.incr Obs.searches;
  Obs.T.span "par.por" ~args:[ ("jobs", string_of_int jobs) ] @@ fun () ->
  let t =
    { jobs; shards = Array.init jobs (fun _ -> Hashtbl.create 256); total = 0 }
  in
  if max_states < 1 then raise (Explore.Too_large 0);
  let init = initial_node canon sys in
  let ikey = State.key init in
  Hashtbl.add t.shards.(shard_key ~jobs ikey) ikey
    { node = init; parent = None; via = None; rank = 0 };
  t.total <- 1;
  Obs.M.Counter.incr Obs.states_visited;
  let sleeps : (string, Step.t list) Hashtbl.t = Hashtbl.create 1024 in
  Hashtbl.replace sleeps ikey [];
  if found init then Witness ([], init)
  else begin
    let frontier =
      ref [| { wrank = 0; wkey = ikey; wnode = init; wsleep = [] } |]
    in
    let next_wrank = ref 1 in
    let witness = ref None in
    while Option.is_none !witness && Array.length !frontier > 0 do
      let fr = !frontier in
      let nfr = Array.length fr in
      Obs.M.Counter.incr Obs.levels;
      Obs.M.Histogram.observe Obs.frontier nfr;
      Obs.M.Gauge.set_max Obs.frontier_peak nfr;
      let chans = Array.init jobs (fun _ -> Par_channel.create ()) in
      (* Phase A: parallel selective expansion. *)
      run_phase ~jobs (fun w ->
          Obs.T.span "par.por_expand" @@ fun () ->
          let buckets = Array.make jobs [] in
          let i = ref w in
          while !i < nfr do
            let it = fr.(!i) in
            let exp = Indep.expand ?canon sys it.wnode ~sleep:it.wsleep in
            Obs.por_expand ~enabled:exp.Indep.enabled_count
              ~persistent:exp.Indep.persistent_count
              ~selected:(List.length exp.Indep.succs);
            List.iteri
              (fun ord { Indep.step; succ; moved; sleep } ->
                if restrict succ then begin
                  let ckey = State.key succ in
                  let s = shard_key ~jobs ckey in
                  buckets.(s) <-
                    {
                      pckey = ckey;
                      pcnode = succ;
                      pcmoved = moved;
                      pcsleep = sleep;
                      pparent_rank = it.wrank;
                      pparent_key = it.wkey;
                      pvia = step;
                      pord = ord;
                      phit = false;
                    }
                    :: buckets.(s)
                end)
              exp.Indep.succs;
            i := !i + jobs
          done;
          Array.iteri
            (fun s b ->
              if b <> [] then begin
                Obs.M.Counter.add Obs.handoffs (List.length b);
                Par_channel.send chans.(s) b
              end)
            buckets);
      (* Phase B: per-shard sort (no dedup — the covering rule needs
         every arrival) and goal pre-evaluation for possibly-new keys. *)
      let per_shard = Array.make jobs [||] in
      run_phase ~jobs (fun j ->
          Obs.T.span "par.por_collect" @@ fun () ->
          let arr =
            Array.of_list (List.concat (Par_channel.drain chans.(j)))
          in
          Array.sort por_cand_order arr;
          Array.iter
            (fun c ->
              if not (Hashtbl.mem t.shards.(j) c.pckey) then
                c.phit <- found c.pcnode)
            arr;
          per_shard.(j) <- arr);
      (* Phase C: sequential covering-rule replay in global candidate
         order. *)
      Obs.T.span "par.por_reduce" @@ fun () ->
      let next = ref [] and nnext = ref 0 in
      let idx = Array.make jobs 0 in
      let stop = ref false in
      while not !stop do
        let bestj = ref (-1) in
        for j = 0 to jobs - 1 do
          if
            idx.(j) < Array.length per_shard.(j)
            && (!bestj < 0
               || por_cand_order per_shard.(j).(idx.(j))
                    per_shard.(!bestj).(idx.(!bestj))
                  < 0)
          then bestj := j
        done;
        if !bestj < 0 then stop := true
        else begin
          let j = !bestj in
          let c = per_shard.(j).(idx.(j)) in
          idx.(j) <- idx.(j) + 1;
          match Hashtbl.find_opt sleeps c.pckey with
          | None ->
              if t.total >= max_states then raise (Explore.Too_large t.total);
              let rank = t.total in
              Hashtbl.add t.shards.(j) c.pckey
                {
                  node = c.pcnode;
                  parent = Some c.pparent_key;
                  via = Some c.pvia;
                  rank;
                };
              t.total <- t.total + 1;
              Obs.M.Counter.incr Obs.states_visited;
              if c.pcmoved then Obs.M.Counter.incr Obs.canon_hits;
              Hashtbl.replace sleeps c.pckey c.pcsleep;
              if c.phit then begin
                witness := Some (Option.get (path_to t c.pckey), c.pcnode);
                stop := true
              end
              else begin
                next :=
                  {
                    wrank = !next_wrank;
                    wkey = c.pckey;
                    wnode = c.pcnode;
                    wsleep = c.pcsleep;
                  }
                  :: !next;
                incr next_wrank;
                incr nnext
              end
          | Some stored -> (
              match Indep.sleep_covered ~stored ~incoming:c.pcsleep with
              | `Covered -> ()
              | `Shrink z ->
                  Hashtbl.replace sleeps c.pckey z;
                  let node = (Option.get (find_entry t c.pckey)).node in
                  next :=
                    { wrank = !next_wrank; wkey = c.pckey; wnode = node;
                      wsleep = z }
                    :: !next;
                  incr next_wrank;
                  incr nnext)
        end
      done;
      frontier :=
        (match !witness with
        | Some _ -> [||]
        | None ->
            let n = !nnext in
            let arr =
              Array.make n { wrank = 0; wkey = ikey; wnode = init; wsleep = [] }
            in
            List.iteri (fun i x -> arr.(n - 1 - i) <- x) !next;
            arr)
    done;
    match !witness with
    | Some (steps, n) -> Witness (steps, n)
    | None -> Space t
  end

(* ----------------------- relaxed fast engine -----------------------

   [`Fast] mode drops the per-level barrier and the sequential phase-C
   reduction entirely: [jobs] workers run independent work-stealing
   loops ({!Ws_deque}: LIFO owner end, batch FIFO steals), and the
   visited set is a fixed number of hash shards, each an intern table
   ({!Ddlock_schedule.Intern}) behind its own mutex.  States never grow
   string keys — dedup compares structural hashes and [ops.equal], and
   every stored state gets a dense integer id, so parent pointers and
   via-steps live in packed int arrays (the arena) instead of per-entry
   records.

   What is preserved exactly: the set of reachable states (when no
   witness/cap/cancel stops the search early), hence verdicts; witness
   VALIDITY (the parent chain is a real path from the initial state).
   What is relaxed: discovery order, which witness is found first, and
   which counters tick where ([par.steals] etc. are racy by nature).
   Callers that need byte-identical output re-canonicalize a positive
   verdict with a plain re-search, exactly as [`--por`] does.

   Termination: [pending] counts queued-but-unfinished work items
   (incremented before a push, decremented after the item's expansion
   completes), so an empty deque with [pending = 0] means the whole
   search is drained.  Early exit: any worker that finds a witness
   CASes its id into [witness] and raises the [stop] flag; the
   [max_states] cap works the same way, so the cap can overshoot by at
   most the items in flight (never undershoot — the overflow check
   happens after a genuinely new state is interned).  Worker 0 runs in
   the calling domain, where it polls {!Ddlock_obs.Cancel} (the poll
   slot is domain-local), raises [stop] on cancellation and re-raises
   after joining the other domains — that is how serve deadlines reach
   the child domains. *)

let fast_shards = 64

type 'n fshard = {
  flock : Mutex.t;
  fintern : 'n Intern.t;
  mutable fparent : int array;  (* global id of the parent; -1 at the root *)
  mutable fvia_txn : int array;  (* via step, packed; -1 at the root *)
  mutable fvia_node : int array;
  mutable fsleep : Step.t list array;  (* POR only: stored sleep sets *)
}

let fshard_create ~hash ~equal () =
  {
    flock = Mutex.create ();
    fintern = Intern.create ~equal ~hash ();
    fparent = [||];
    fvia_txn = [||];
    fvia_node = [||];
    fsleep = [||];
  }

(* Caller holds [flock].  Grow the packed arrays to cover [lid]. *)
let ensure_arrays sh lid =
  let cap = Array.length sh.fparent in
  if lid >= cap then begin
    let ncap = max 16 (max (lid + 1) (2 * cap)) in
    let grow a fill =
      let b = Array.make ncap fill in
      Array.blit a 0 b 0 cap;
      b
    in
    sh.fparent <- grow sh.fparent (-1);
    sh.fvia_txn <- grow sh.fvia_txn (-1);
    sh.fvia_node <- grow sh.fvia_node (-1);
    sh.fsleep <- grow sh.fsleep []
  end

let fast_shard_of ~hash n = hash n land max_int mod fast_shards
let fast_gid ~shard lid = (lid * fast_shards) + shard

(* Steps from the root to [gid], rebuilt from the packed parent/via
   chains (read-only after the worker domains have been joined). *)
let fast_path shards gid0 =
  let rec go gid acc =
    let sh = shards.(gid mod fast_shards) and lid = gid / fast_shards in
    let p = sh.fparent.(lid) in
    if p < 0 then acc
    else go p (Step.v sh.fvia_txn.(lid) sh.fvia_node.(lid) :: acc)
  in
  go gid0 []

let fast_node shards gid =
  Intern.get shards.(gid mod fast_shards).fintern (gid / fast_shards)

type 'n fast_space = { fshards : 'n fshard array; ftotal : int }
type 'n fast_outcome = FSpace of 'n fast_space | FWitness of Step.t list * 'n

(* The work-stealing worker loop shared by the plain and POR fast
   cores.  [process dq item] expands one work item, pushing children
   onto [dq]. *)
let fast_run ~jobs ~stop ~pending ~deques ~process =
  let worker w =
    let dq = deques.(w) in
    let rec steal tries v =
      if tries >= jobs then 0
      else if v = w then steal (tries + 1) ((v + 1) mod jobs)
      else
        let n = Ws_deque.steal_into dq ~victim:deques.(v) in
        if n > 0 then n else steal (tries + 1) ((v + 1) mod jobs)
    in
    let rec loop () =
      if w = 0 then Ddlock_obs.Cancel.poll ();
      if not (Atomic.get stop) then
        match Ws_deque.pop dq with
        | Some item ->
            process dq item;
            Atomic.decr pending;
            loop ()
        | None ->
            if Atomic.get pending = 0 then ()
            else begin
              let stolen = steal 0 ((w + 1) mod jobs) in
              if stolen > 0 then Obs.M.Counter.add Obs.steals stolen
              else Domain.cpu_relax ();
              loop ()
            end
    in
    loop ()
  in
  let cancelled = ref None in
  let req = Ddlock_obs.Request.current () in
  let doms =
    Array.init (jobs - 1) (fun i ->
        Domain.spawn (fun () ->
            Ddlock_obs.Request.with_id req (fun () ->
                try worker (i + 1)
                with e ->
                  Atomic.set stop true;
                  raise e)))
  in
  (try worker 0
   with Ddlock_obs.Cancel.Cancelled as e ->
     Atomic.set stop true;
     cancelled := Some e);
  Array.iter Domain.join doms;
  match !cancelled with Some e -> raise e | None -> ()

let fast_flush_structure_counters shards deques =
  Obs.M.Counter.add Obs.intern_hits
    (Array.fold_left (fun a sh -> a + Intern.hits sh.fintern) 0 shards);
  Obs.M.Counter.add Obs.arena_reuse
    (Array.fold_left (fun a d -> a + Ws_deque.reuses d) 0 deques)

let fast_finish ~witness ~overflow ~total ~shards =
  let wgid = Atomic.get witness in
  if wgid >= 0 then FWitness (fast_path shards wgid, fast_node shards wgid)
  else if Atomic.get overflow then raise (Explore.Too_large (Atomic.get total))
  else FSpace { fshards = shards; ftotal = Atomic.get total }

let fast_search_core ~max_states ~jobs ~ops init =
  validate_jobs jobs;
  Obs.M.Counter.incr Obs.searches;
  Obs.T.span "par.fast" ~args:[ ("jobs", string_of_int jobs) ] @@ fun () ->
  if max_states < 1 then raise (Explore.Too_large 0);
  let shards =
    Array.init fast_shards (fun _ ->
        fshard_create ~hash:ops.hash ~equal:ops.equal ())
  in
  let s0 = fast_shard_of ~hash:ops.hash init in
  let lid0, _ = Intern.intern shards.(s0).fintern init in
  ensure_arrays shards.(s0) lid0;
  Obs.M.Counter.incr Obs.states_visited;
  if ops.found init then FWitness ([], init)
  else begin
    let total = Atomic.make 1 in
    let stop = Atomic.make false in
    let witness = Atomic.make (-1) in
    let overflow = Atomic.make false in
    let pending = Atomic.make 1 in
    let deques = Array.init jobs (fun _ -> Ws_deque.create ()) in
    Ws_deque.push deques.(0) (fast_gid ~shard:s0 lid0, init);
    let telemetry = Ddlock_obs.Control.is_on () in
    let process dq (pgid, pnode) =
      List.iter
        (fun (step, node') ->
          if (not (Atomic.get stop)) && ops.restrict node' then begin
            let s = fast_shard_of ~hash:ops.hash node' in
            let sh = shards.(s) in
            Mutex.lock sh.flock;
            let lid, was_new = Intern.intern sh.fintern node' in
            if was_new then begin
              ensure_arrays sh lid;
              sh.fparent.(lid) <- pgid;
              sh.fvia_txn.(lid) <- step.Step.txn;
              sh.fvia_node.(lid) <- step.Step.node;
              Mutex.unlock sh.flock;
              let before = Atomic.fetch_and_add total 1 in
              if before >= max_states then begin
                Atomic.set overflow true;
                Atomic.set stop true
              end
              else begin
                Obs.M.Counter.incr Obs.states_visited;
                if telemetry && ops.moved ~parent:pnode step node' then
                  Obs.M.Counter.incr Obs.canon_hits;
                if ops.found node' then begin
                  ignore
                    (Atomic.compare_and_set witness (-1)
                       (fast_gid ~shard:s lid));
                  Atomic.set stop true
                end
                else begin
                  Atomic.incr pending;
                  Ws_deque.push dq (fast_gid ~shard:s lid, node')
                end
              end
            end
            else Mutex.unlock sh.flock
          end)
        (ops.next pnode)
    in
    fast_run ~jobs ~stop ~pending ~deques ~process;
    fast_flush_structure_counters shards deques;
    fast_finish ~witness ~overflow ~total ~shards
  end

(* Fast POR: same worker loop over (gid, state, sleep) work items.  The
   covering rule runs atomically under the shard lock — it is sound for
   ANY arrival order (sleeps only ever shrink toward the intersection,
   and every strict shrink re-expands the state), so no sequential
   replay is needed; the price is that the reduced space and the
   [por.*] counter totals depend on the race outcomes. *)
let fast_por_core ~max_states ~jobs ~canon ~restrict ~found sys =
  validate_jobs jobs;
  Obs.M.Counter.incr Obs.searches;
  Obs.T.span "par.fast_por" ~args:[ ("jobs", string_of_int jobs) ] @@ fun () ->
  if max_states < 1 then raise (Explore.Too_large 0);
  let init = initial_node canon sys in
  let shards =
    Array.init fast_shards (fun _ ->
        fshard_create ~hash:State.hash ~equal:State.equal ())
  in
  let s0 = fast_shard_of ~hash:State.hash init in
  let lid0, _ = Intern.intern shards.(s0).fintern init in
  ensure_arrays shards.(s0) lid0;
  Obs.M.Counter.incr Obs.states_visited;
  if found init then FWitness ([], init)
  else begin
    let total = Atomic.make 1 in
    let stop = Atomic.make false in
    let witness = Atomic.make (-1) in
    let overflow = Atomic.make false in
    let pending = Atomic.make 1 in
    let deques = Array.init jobs (fun _ -> Ws_deque.create ()) in
    Ws_deque.push deques.(0) (fast_gid ~shard:s0 lid0, init, []);
    let process dq (pgid, pnode, sleep) =
      let exp = Indep.expand ?canon sys pnode ~sleep in
      Obs.por_expand ~enabled:exp.Indep.enabled_count
        ~persistent:exp.Indep.persistent_count
        ~selected:(List.length exp.Indep.succs);
      List.iter
        (fun { Indep.step; succ; moved; sleep = z } ->
          if (not (Atomic.get stop)) && restrict succ then begin
            let s = fast_shard_of ~hash:State.hash succ in
            let sh = shards.(s) in
            Mutex.lock sh.flock;
            let lid, was_new = Intern.intern sh.fintern succ in
            if was_new then begin
              ensure_arrays sh lid;
              sh.fparent.(lid) <- pgid;
              sh.fvia_txn.(lid) <- step.Step.txn;
              sh.fvia_node.(lid) <- step.Step.node;
              sh.fsleep.(lid) <- z;
              Mutex.unlock sh.flock;
              let before = Atomic.fetch_and_add total 1 in
              if before >= max_states then begin
                Atomic.set overflow true;
                Atomic.set stop true
              end
              else begin
                Obs.M.Counter.incr Obs.states_visited;
                if moved then Obs.M.Counter.incr Obs.canon_hits;
                if found succ then begin
                  ignore
                    (Atomic.compare_and_set witness (-1)
                       (fast_gid ~shard:s lid));
                  Atomic.set stop true
                end
                else begin
                  Atomic.incr pending;
                  Ws_deque.push dq (fast_gid ~shard:s lid, succ, z)
                end
              end
            end
            else begin
              match
                Indep.sleep_covered ~stored:sh.fsleep.(lid) ~incoming:z
              with
              | `Covered -> Mutex.unlock sh.flock
              | `Shrink z' ->
                  sh.fsleep.(lid) <- z';
                  Mutex.unlock sh.flock;
                  Atomic.incr pending;
                  Ws_deque.push dq (fast_gid ~shard:s lid, succ, z')
            end
          end)
        exp.Indep.succs
    in
    fast_run ~jobs ~stop ~pending ~deques ~process;
    fast_flush_structure_counters shards deques;
    fast_finish ~witness ~overflow ~total ~shards
  end

(* ------------------------- public interface ------------------------ *)

type mode = [ `Deterministic | `Fast ]

type repr = Det of State.t table | Fst of State.t fast_space
type space = { sys : System.t; repr : repr; canon : Canon.t option; sjobs : int }

let explore ?(max_states = Explore.default_cap) ?(symmetry = false)
    ?(por = false) ?(mode = `Deterministic) ~jobs sys =
  let canon = Explore.active_canon ~symmetry sys in
  match mode with
  | `Deterministic -> (
      let outcome =
        if por then
          por_core ~max_states ~jobs ~canon ~restrict:(fun _ -> true)
            ~found:(fun _ -> false) sys
        else
          search_core ~max_states ~jobs
            ~ops:(plain_or_sym_ops canon sys ~restrict:(fun _ -> true)
                    ~found:(fun _ -> false))
            (initial_node canon sys)
      in
      match outcome with
      | Space tbl -> { sys; repr = Det tbl; canon; sjobs = jobs }
      | Witness _ -> assert false)
  | `Fast -> (
      let outcome =
        if por then
          fast_por_core ~max_states ~jobs ~canon ~restrict:(fun _ -> true)
            ~found:(fun _ -> false) sys
        else
          fast_search_core ~max_states ~jobs
            ~ops:(plain_or_sym_ops canon sys ~restrict:(fun _ -> true)
                    ~found:(fun _ -> false))
            (initial_node canon sys)
      in
      match outcome with
      | FSpace f -> { sys; repr = Fst f; canon; sjobs = jobs }
      | FWitness _ -> assert false)

let system sp = sp.sys
let jobs sp = sp.sjobs

let state_count sp =
  match sp.repr with Det t -> t.total | Fst f -> f.ftotal

let states sp =
  match sp.repr with
  | Det t ->
      let arr = Array.make t.total None in
      Array.iter
        (fun shard ->
          Hashtbl.iter (fun _ e -> arr.(e.rank) <- Some e.node) shard)
        t.shards;
      Seq.map Option.get (Array.to_seq arr)
  | Fst f ->
      (* Shard-major, id-minor: deterministic for a given run, but NOT
         the BFS rank order — fast spaces have none. *)
      Seq.concat
        (Seq.map
           (fun sh ->
             Seq.init (Intern.count sh.fintern) (fun i ->
                 Intern.get sh.fintern i))
           (Array.to_seq f.fshards))

let lookup_key sp st =
  match sp.canon with
  | None -> State.key st
  | Some c -> Canon.canon_key c st

let fast_find f st =
  let s = fast_shard_of ~hash:State.hash st in
  Option.map
    (fun lid -> fast_gid ~shard:s lid)
    (Intern.find f.fshards.(s).fintern st)

let lookup_rep sp st =
  match sp.canon with None -> st | Some c -> fst (Canon.normalize c st)

let is_reachable sp st =
  match sp.repr with
  | Det t -> find_entry t (lookup_key sp st) <> None
  | Fst f -> fast_find f (lookup_rep sp st) <> None

let schedule_to sp st =
  match sp.repr with
  | Det t -> (
      match sp.canon with
      | None -> path_to t (State.key st)
      | Some c ->
          Option.map
            (fun steps -> Canon.realize_to c steps st)
            (path_to t (Canon.canon_key c st)))
  | Fst f -> (
      match fast_find f (lookup_rep sp st) with
      | None -> None
      | Some gid -> (
          let steps = fast_path f.fshards gid in
          match sp.canon with
          | None -> Some steps
          | Some c -> Some (Canon.realize_to c steps st)))

let bfs ?(max_states = Explore.default_cap) ?(restrict = fun _ -> true)
    ?(symmetry = false) ?(por = false) ?(mode = `Deterministic) ~jobs sys
    ~found =
  let canon = Explore.active_canon ~symmetry sys in
  let witness =
    match mode with
    | `Deterministic -> (
        let outcome =
          if por then por_core ~max_states ~jobs ~canon ~restrict ~found sys
          else
            search_core ~max_states ~jobs
              ~ops:(plain_or_sym_ops canon sys ~restrict ~found)
              (initial_node canon sys)
        in
        match outcome with
        | Space _ -> None
        | Witness (steps, st) -> Some (steps, st))
    | `Fast -> (
        let outcome =
          if por then
            fast_por_core ~max_states ~jobs ~canon ~restrict ~found sys
          else
            fast_search_core ~max_states ~jobs
              ~ops:(plain_or_sym_ops canon sys ~restrict ~found)
              (initial_node canon sys)
        in
        match outcome with
        | FSpace _ -> None
        | FWitness (steps, st) -> Some (steps, st))
  in
  match witness with
  | None -> None
  | Some (steps, st) -> (
      match canon with
      | None -> Some (steps, st)
      | Some c -> Some (Canon.realize c steps))

let find_deadlock ?max_states ?symmetry ?(por = false) ?(mode = `Deterministic)
    ~jobs sys =
  let dead st = State.is_deadlock sys st in
  (* Witness-canonicalization contract, shared by [--por] and
     [--fast]: verdict from the reduced/relaxed search, witness from a
     plain sequential re-search (bit-identical to the deterministic
     engines), falling back to the valid raw witness if the re-search
     blows the budget. *)
  let canonicalize raw =
    match Explore.bfs ?max_states sys ~found:dead with
    | Some w -> Some w
    | None -> Some raw
    | exception Explore.Too_large _ -> Some raw
  in
  let r =
    match (mode, por) with
    | `Deterministic, false -> bfs ?max_states ?symmetry ~jobs sys ~found:dead
    | `Deterministic, true -> (
        match bfs ?max_states ?symmetry ~por:true ~jobs sys ~found:dead with
        | None -> None
        | Some raw -> canonicalize raw)
    | `Fast, _ -> (
        match
          bfs ?max_states ?symmetry ~por ~mode:`Fast ~jobs sys ~found:dead
        with
        | None -> None
        | Some raw -> canonicalize raw)
  in
  if r <> None then begin
    Obs.M.Counter.incr Obs.deadlock_witnesses;
    Obs.T.instant "explore.deadlock_witness"
  end;
  r

let deadlock_free ?max_states ?symmetry ?(por = false) ?(mode = `Deterministic)
    ~jobs sys =
  let dead st = State.is_deadlock sys st in
  match (mode, por) with
  | `Deterministic, true ->
      bfs ?max_states ?symmetry ~por:true ~jobs sys ~found:dead = None
  | `Deterministic, false ->
      Option.is_none (find_deadlock ?max_states ?symmetry ~jobs sys)
  | `Fast, _ ->
      (* Verdict only: a single relaxed search, no canonicalization. *)
      bfs ?max_states ?symmetry ~por ~mode:`Fast ~jobs sys ~found:dead = None

(* --------------------- Lemma-1 extended space ---------------------- *)

let lemma1_ops sys ~report =
  {
    key = Explore.Lemma1.key;
    hash = (fun n -> Hashtbl.hash (Explore.Lemma1.key n));
    equal = (fun a b -> String.equal (Explore.Lemma1.key a) (Explore.Lemma1.key b));
    next = (fun n -> Explore.Lemma1.next sys n);
    restrict = (fun _ -> true);
    found =
      (fun n ->
        match Explore.Lemma1.cycle sys n with
        | None -> false
        | Some _ -> (
            match report with
            | `All_cyclic -> true
            | `Complete_cyclic -> Explore.Lemma1.complete sys n));
    moved = (fun ~parent:_ _ _ -> false);
  }

let lemma1_search ?(max_states = Explore.default_cap) ?(mode = `Deterministic)
    ~jobs sys ~report =
  let witness =
    match mode with
    | `Deterministic -> (
        match
          search_core ~max_states ~jobs ~ops:(lemma1_ops sys ~report)
            (Explore.Lemma1.initial sys)
        with
        | Space _ -> None
        | Witness (steps, n) -> Some (steps, n))
    | `Fast -> (
        match
          fast_search_core ~max_states ~jobs ~ops:(lemma1_ops sys ~report)
            (Explore.Lemma1.initial sys)
        with
        | FSpace _ -> None
        | FWitness (steps, n) -> Some (steps, n))
  in
  match witness with
  | None -> None
  | Some (steps, n) ->
      let cycle =
        match Explore.Lemma1.cycle sys n with
        | Some c -> c
        | None -> assert false
      in
      Some { Explore.steps; cycle }

(* Fast-mode safety verdicts canonicalize their counterexample with a
   sequential re-search, mirroring [find_deadlock]. *)
let canonical_cex ~seq raw =
  match seq () with
  | Error cex -> Error cex
  | Ok () -> Error raw
  | exception Explore.Too_large _ -> Error raw

let safe_and_deadlock_free ?max_states ?(mode = `Deterministic) ~jobs sys =
  match lemma1_search ?max_states ~mode ~jobs sys ~report:`All_cyclic with
  | None -> Ok ()
  | Some cex -> (
      match mode with
      | `Deterministic -> Error cex
      | `Fast ->
          canonical_cex
            ~seq:(fun () -> Explore.safe_and_deadlock_free ?max_states sys)
            cex)

let safe ?max_states ?(mode = `Deterministic) ~jobs sys =
  match lemma1_search ?max_states ~mode ~jobs sys ~report:`Complete_cyclic with
  | None -> Ok ()
  | Some cex -> (
      match mode with
      | `Deterministic -> Error cex
      | `Fast ->
          canonical_cex ~seq:(fun () -> Explore.safe ?max_states sys) cex)
