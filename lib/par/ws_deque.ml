(* Work-stealing deque for the relaxed parallel engine.

   The owner pushes and pops at the tail (LIFO — good locality, and
   depth-first descent tends to reach deadlock witnesses quickly);
   thieves take a batch of the oldest items from the head (FIFO —
   stolen work is the coarsest-grained available).

   Each operation takes the deque's own mutex and nothing else: a steal
   extracts the batch from the victim under the victim's lock, releases
   it, and only then appends to the thief's deque under the thief's
   lock, so no two locks are ever held together.  Per-item work in the
   engine is microseconds (successor generation + interning), so short
   critical sections cost far less than a Chase–Lev memory-model dance
   would save.

   The backing array grows by amortized doubling and is *reused* when
   the live region can instead be shifted down (the common case once
   the deque reaches steady state): [reuses] counts those compactions
   so the engine can surface them as [par.arena_reuse]. *)

type 'a t = {
  lock : Mutex.t;
  mutable buf : 'a array;
  mutable head : int;  (* index of the oldest live item *)
  mutable tail : int;  (* one past the newest live item *)
  mutable reuses : int;
}

let create () = { lock = Mutex.create (); buf = [||]; head = 0; tail = 0;
                  reuses = 0 }

let length t =
  Mutex.lock t.lock;
  let n = t.tail - t.head in
  Mutex.unlock t.lock;
  n

let reuses t = t.reuses

(* Caller holds [t.lock].  Make room for one more item at the tail:
   shift the live region down when at least half the buffer is dead
   space (reusing the allocation), otherwise double. *)
let make_room t x =
  let cap = Array.length t.buf in
  if cap = 0 then t.buf <- Array.make 16 x
  else begin
    let live = t.tail - t.head in
    if t.head >= cap - t.head then begin
      Array.blit t.buf t.head t.buf 0 live;
      t.reuses <- t.reuses + 1
    end
    else begin
      let arr = Array.make (2 * cap) x in
      Array.blit t.buf t.head arr 0 live;
      t.buf <- arr
    end;
    t.head <- 0;
    t.tail <- live
  end

let push t x =
  Mutex.lock t.lock;
  if t.tail >= Array.length t.buf then make_room t x;
  t.buf.(t.tail) <- x;
  t.tail <- t.tail + 1;
  Mutex.unlock t.lock

let pop t =
  Mutex.lock t.lock;
  let r =
    if t.tail = t.head then None
    else begin
      t.tail <- t.tail - 1;
      let x = t.buf.(t.tail) in
      if t.tail = t.head then begin
        t.head <- 0;
        t.tail <- 0
      end;
      Some x
    end
  in
  Mutex.unlock t.lock;
  r

let steal_into t ~victim =
  if victim == t then 0
  else begin
    Mutex.lock victim.lock;
    let live = victim.tail - victim.head in
    let n = (live + 1) / 2 in
    let batch =
      if n = 0 then [||]
      else begin
        let b = Array.sub victim.buf victim.head n in
        victim.head <- victim.head + n;
        if victim.head = victim.tail then begin
          victim.head <- 0;
          victim.tail <- 0
        end;
        b
      end
    in
    Mutex.unlock victim.lock;
    if Array.length batch > 0 then begin
      Mutex.lock t.lock;
      Array.iter
        (fun x ->
          if t.tail >= Array.length t.buf then make_room t x;
          t.buf.(t.tail) <- x;
          t.tail <- t.tail + 1)
        batch;
      Mutex.unlock t.lock
    end;
    Array.length batch
  end
