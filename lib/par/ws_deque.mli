(** Mutex-based work-stealing deque (relaxed parallel engine).

    Owner pushes/pops at the tail (LIFO); thieves steal a batch of up
    to half the items from the head (FIFO).  Every operation locks only
    the deque it touches, so steals never hold two locks.  The backing
    array grows by amortized doubling and compacts in place when dead
    head-space can be reused instead — {!reuses} counts those. *)

type 'a t

val create : unit -> 'a t

(** Owner: push at the tail. *)
val push : 'a t -> 'a -> unit

(** Owner: pop the newest item (LIFO), [None] when empty. *)
val pop : 'a t -> 'a option

(** [steal_into t ~victim] moves up to half of [victim]'s items (the
    oldest ones) into [t]; returns how many moved (0 when [victim] is
    empty or is [t] itself). *)
val steal_into : 'a t -> victim:'a t -> int

(** Current number of items (takes the lock; a racy snapshot). *)
val length : 'a t -> int

(** In-place buffer compactions that avoided a reallocation. *)
val reuses : 'a t -> int
