open Ddlock_graph
open Ddlock_model

let is_total t =
  let n = Transaction.node_count t in
  let ok = ref true in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if (not (Transaction.precedes t u v)) && not (Transaction.precedes t v u)
      then ok := false
    done
  done;
  !ok

type failure =
  | Different_first of { first1 : Db.entity; first2 : Db.entity }
  | Unguarded of { y : Db.entity; in_txn : int }

let pp_failure db ppf = function
  | Different_first { first1; first2 } ->
      Format.fprintf ppf "first common entities differ: %s vs %s"
        (Db.entity_name db first1) (Db.entity_name db first2)
  | Unguarded { y; in_txn } ->
      Format.fprintf ppf "Q%d(%s) is empty" (in_txn + 1)
        (Db.entity_name db y)

(* The node sequence of a total order. *)
let sequence t =
  match Ddlock_graph.Topo.sort (Transaction.given_arcs t) with
  | Some o -> o
  | None -> assert false

let first_common t r =
  List.find_map
    (fun u ->
      let nd = Transaction.node t u in
      match nd.Node.op with
      | Node.Lock when Bitset.mem r nd.entity -> Some nd.entity
      | _ -> None)
    (sequence t)

(* Scan the sequence up to (excluding) the Ly step, tracking locked and
   held entities. *)
let scan_before t y =
  let ne = Db.entity_count (Transaction.db t) in
  let locked = Bitset.create ne and held = Bitset.create ne in
  let rec go = function
    | [] -> invalid_arg "Lemma2: entity not accessed"
    | u :: rest ->
        let nd = Transaction.node t u in
        if nd.Node.op = Node.Lock && nd.entity = y then (locked, held)
        else begin
          (match nd.Node.op with
          | Node.Lock ->
              Bitset.set locked nd.entity;
              Bitset.set held nd.entity
          | Node.Unlock -> Bitset.clear held nd.entity);
          go rest
        end
  in
  go (sequence t)

let check t1 t2 =
  if not (is_total t1 && is_total t2) then
    invalid_arg "Lemma2.check: transactions must be total orders";
  let r =
    Bitset.inter (Transaction.entity_set t1) (Transaction.entity_set t2)
  in
  if Bitset.is_empty r then Ok ()
  else
    let x1 = Option.get (first_common t1 r) in
    let x2 = Option.get (first_common t2 r) in
    if x1 <> x2 then Error (Different_first { first1 = x1; first2 = x2 })
    else
      let x = x1 in
      let bad =
        Bitset.fold
          (fun y acc ->
            match acc with
            | Some _ -> acc
            | None ->
                if y = x then None
                else
                  let _, held1 = scan_before t1 y in
                  let locked2, _ = scan_before t2 y in
                  let _, held2 = scan_before t2 y in
                  let locked1, _ = scan_before t1 y in
                  if Bitset.disjoint held1 locked2 then
                    Some (Unguarded { y; in_txn = 0 })
                  else if Bitset.disjoint held2 locked1 then
                    Some (Unguarded { y; in_txn = 1 })
                  else None)
          r None
      in
      (match bad with None -> Ok () | Some f -> Error f)

let safe_and_deadlock_free t1 t2 = Result.is_ok (check t1 t2)
