open Ddlock_graph
open Ddlock_model

type failure = No_first_lock | Unguarded of Db.entity

let pp_failure db ppf = function
  | No_first_lock ->
      Format.fprintf ppf "no entity is locked before all other nodes"
  | Unguarded y ->
      Format.fprintf ppf
        "entity %s has no guard z with Lz ≺ L%s ≺ Uz"
        (Db.entity_name db y) (Db.entity_name db y)

let check t =
  let ents = Transaction.entity_set t in
  if Bitset.is_empty ents then Ok ()
  else
    let n = Transaction.node_count t in
    let first =
      Bitset.fold
        (fun x acc ->
          match acc with
          | Some _ -> acc
          | None ->
              let lx = Transaction.lock_node_exn t x in
              let all_after = ref true in
              for u = 0 to n - 1 do
                if u <> lx && not (Transaction.precedes t lx u) then
                  all_after := false
              done;
              if !all_after then Some x else None)
        ents None
    in
    match first with
    | None -> Error No_first_lock
    | Some x ->
        let bad =
          Bitset.fold
            (fun y acc ->
              match acc with
              | Some _ -> acc
              | None ->
                  if y = x then None
                  else
                    let ly = Transaction.lock_node_exn t y in
                    let guarded =
                      Bitset.exists
                        (fun z ->
                          z <> y
                          && Transaction.precedes t
                               (Transaction.lock_node_exn t z)
                               ly
                          && Transaction.precedes t ly
                               (Transaction.unlock_node_exn t z))
                        ents
                    in
                    if guarded then None else Some (Unguarded y))
            ents None
        in
        (match bad with None -> Ok () | Some f -> Error f)

let safe_and_deadlock_free t = Result.is_ok (check t)
