open Ddlock_model

(** Lock-span minimization — a simplified form of Wolfson's early-unlock
    algorithm ([W2], cited by the paper §1), which "safely unlocks
    entities in a set of transactions while reducing the amount of time
    entities are kept locked".

    Restricted to systems of {e total-order} transactions (the common
    case; raises [Invalid_argument] otherwise).  The optimizer greedily
    moves Unlock steps earlier and Lock steps later, one adjacent swap at
    a time, accepting a swap only when the whole system still passes the
    Theorem 4 safety ∧ deadlock-freedom test.  The result is therefore
    certified safe∧DF whenever the input was, with pointwise smaller or
    equal lock spans. *)

(** [span t x] — number of steps strictly between [Lx] and [Ux] in the
    total order [t] plus one: the time [x] stays locked, in steps. *)
val span : Transaction.t -> Db.entity -> int

(** Sum of {!span} over all accessed entities of all transactions. *)
val total_span : System.t -> int

type stats = {
  swaps : int;  (** accepted adjacent swaps *)
  span_before : int;
  span_after : int;
}

(** [minimize_spans sys] — fixpoint of accepted swaps.  If the input is
    not safe∧DF it is returned unchanged (with zero swaps): there is no
    certificate to preserve. *)
val minimize_spans : System.t -> System.t * stats
