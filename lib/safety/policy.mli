open Ddlock_graph
open Ddlock_model

(** Classic safe locking policies, as referenced throughout the paper
    ([EGLT] two-phase locking, [SK] tree locking).  The paper's closing
    remark (§6) is that transactions are usually locked by {e some} safe
    policy, and then deadlock-freedom is the remaining question — these
    checkers identify that situation. *)

(** {1 Two-phase locking} *)

(** Pairs [(x, y)] with [Ux ≺ Ly]: each one violates 2PL. *)
val two_phase_violations : Transaction.t -> (Db.entity * Db.entity) list

val is_two_phase : Transaction.t -> bool

(** [make_two_phase t] — for a total order: keep the Lock steps in place
    (relative order preserved) and move every Unlock after the last
    Lock, preserving the Unlocks' relative order.  The result is 2PL and
    accesses the same entities.  Raises [Invalid_argument] on
    non-total-order input. *)
val make_two_phase : Transaction.t -> Transaction.t

(** {1 Tree (hierarchical) locking [SK]}

    Entities are arranged in a rooted tree.  A total-order transaction
    obeys the protocol iff: its first Lock is arbitrary; every later
    Lock's parent entity is locked-and-not-yet-unlocked at that moment;
    and no entity is locked twice (guaranteed by the model).  Tree-locked
    transactions are serializable {e and} deadlock-free even without
    being two-phase. *)

module Tree : sig
  type t

  (** [create db ~root ~edges] — [edges] are (parent, child) entity-name
      pairs; every entity of [db] must appear exactly once as a child or
      be the root.  Raises [Invalid_argument] on forests/cycles. *)
  val create : Db.t -> root:string -> edges:(string * string) list -> t

  val root : t -> Db.entity
  val parent : t -> Db.entity -> Db.entity option

  type violation =
    | Parent_not_held of { child : Db.entity }
        (** some Lock's parent is not held at that point *)
    | Not_total_order

  val pp_violation : Db.t -> Format.formatter -> violation -> unit

  (** [obeys tree t] — protocol check for a total-order transaction that
      only accesses entities of the tree. *)
  val obeys : t -> Transaction.t -> (unit, violation) result

  (** [random_transaction rng tree ~steps] — a random protocol-obeying
      total order: start by locking a random entity, then repeatedly
      either lock an unlocked child of a held entity or unlock a held
      entity, for about [steps] lock operations; finally unlock
      everything still held. *)
  val random_transaction :
    Random.State.t -> t -> steps:int -> Transaction.t

  (** The tree as a digraph over entity ids (for rendering). *)
  val to_digraph : t -> Digraph.t
end
