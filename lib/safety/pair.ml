open Ddlock_graph
open Ddlock_model

type failure =
  | No_common_first of { first1 : Db.entity; first2 : Db.entity }
  | Unguarded of { y : Db.entity; in_txn : int }

let pp_failure db ppf = function
  | No_common_first { first1; first2 } ->
      Format.fprintf ppf
        "no common first lock: T1 can lock %s first while T2 locks %s first"
        (Db.entity_name db first1) (Db.entity_name db first2)
  | Unguarded { y; in_txn } ->
      Format.fprintf ppf
        "entity %s is unguarded: L_T%d(L%s) ∩ R_T%d(L%s) = ∅"
        (Db.entity_name db y) (in_txn + 1) (Db.entity_name db y)
        (2 - in_txn) (Db.entity_name db y)

let common t1 t2 = Bitset.inter (Transaction.entity_set t1) (Transaction.entity_set t2)
let has_common t1 t2 = not (Bitset.is_empty (common t1 t2))

(* Minimal common entities of [t]: y in R such that no other Lz (z in R)
   strictly precedes Ly. *)
let minimal_common t r =
  Bitset.fold
    (fun y acc ->
      let ly = Transaction.lock_node_exn t y in
      let dominated =
        Bitset.exists
          (fun z ->
            z <> y && Transaction.precedes t (Transaction.lock_node_exn t z) ly)
          r
      in
      if dominated then acc else y :: acc)
    r []

let common_first t1 t2 =
  let r = common t1 t2 in
  if Bitset.is_empty r then None
  else
    let is_first t x =
      let lx = Transaction.lock_node_exn t x in
      Bitset.for_all
        (fun y ->
          y = x || Transaction.precedes t lx (Transaction.lock_node_exn t y))
        r
    in
    Bitset.fold
      (fun x acc ->
        match acc with
        | Some _ -> acc
        | None -> if is_first t1 x && is_first t2 x then Some x else None)
      r None

let guard t other y =
  let ly_t = Transaction.lock_node_exn t y in
  let ly_o = Transaction.lock_node_exn other y in
  Bitset.inter (Transaction.l_set t ly_t) (Transaction.r_set other ly_o)

let check t1 t2 =
  let r = common t1 t2 in
  if Bitset.is_empty r then Ok ()
  else
    match common_first t1 t2 with
    | None ->
        (* For the failure report, exhibit distinct first-lockable common
           entities, following the paper's argument. *)
        let m1 = minimal_common t1 r and m2 = minimal_common t2 r in
        let first1, first2 =
          match (m1, m2) with
          | y :: _, z :: _ when y <> z -> (y, z)
          | y :: rest1, z :: rest2 ->
              (* Same single minimal in both would imply a common first,
                 so one list has another element. *)
              (match (rest1, rest2) with
              | w :: _, _ -> (w, z)
              | _, w :: _ -> (y, w)
              | [], [] -> (y, z))
          | _ -> assert false
        in
        Error (No_common_first { first1; first2 })
    | Some x ->
        let bad =
          Bitset.fold
            (fun y acc ->
              match acc with
              | Some _ -> acc
              | None ->
                  if y = x then None
                  else if Bitset.is_empty (guard t1 t2 y) then
                    Some (Unguarded { y; in_txn = 0 })
                  else if Bitset.is_empty (guard t2 t1 y) then
                    Some (Unguarded { y; in_txn = 1 })
                  else None)
            r None
        in
        (match bad with None -> Ok () | Some f -> Error f)

let safe_and_deadlock_free t1 t2 = Result.is_ok (check t1 t2)
