open Ddlock_model

(** The geometric technique for two {e centralized} transactions
    (Lipski & Papadimitriou [LP]; Soisalon-Soininen & Wood [SW] — the
    O(n log n) line of work the paper's introduction surveys).

    Embed the pair into the integer grid: position [(i, j)] means "t₁ has
    executed its first [i] steps and t₂ its first [j]".  A point is
    {e forbidden} when both transactions hold a common entity there — the
    union of one rectangle

    {v  (pos₁ Lx , pos₁ Ux] × (pos₂ Lx , pos₂ Ux]  v}

    per common entity [x].  Legal schedules are exactly the monotone
    staircase paths from the origin to the top-right corner through free
    points.  Then:

    - the pair {e deadlocks} iff some reachable free point has both its
      right and its upper neighbour forbidden (a trapped corner);
    - a schedule is {e non-serializable} iff its path passes below-right
      of some entity's rectangle and above-left of another's, so the pair
      is {e unsafe} iff a free monotone path connects the origin, a
      below-right corner region of some [x], an above-left region of some
      [y], and the final corner (in either order of [x], [y]).

    Both deciders run in time polynomial in the grid (O(n²) for the
    deadlock test, O(m·n²) for safety with [m] common entities).  We use
    these as an independent implementation of the centralized case: the
    test suite cross-validates them against the exhaustive explorer and
    against Lemma 2 (for the conjunction). *)

(** [grid t1 t2] — dimensions [(n1+1) × (n2+1)] with [true] = forbidden.
    Both transactions must be total orders over the same schema. *)
val grid : Transaction.t -> Transaction.t -> bool array array

(** Deadlock-freedom alone, geometrically. *)
val deadlock_free : Transaction.t -> Transaction.t -> bool

(** A trapped corner reachable from the origin, if any, as the pair of
    executed-step counts [(i, j)]. *)
val find_deadlock_point : Transaction.t -> Transaction.t -> (int * int) option

(** Safety alone, geometrically. *)
val safe : Transaction.t -> Transaction.t -> bool

(** [safe_and_deadlock_free t1 t2] — the conjunction; equals
    {!Lemma2.safe_and_deadlock_free} on every input (property-tested). *)
val safe_and_deadlock_free : Transaction.t -> Transaction.t -> bool
