open Ddlock_model

(** Lemma 2 ([Y2], Theorem 2): safety ∧ deadlock-freedom of a pair of
    {e centralized} transactions (total orders).

    Implemented positionally (by scanning the sequences), independently of
    the Theorem 3 code, so the two can cross-validate on total orders. *)

(** [is_total t] iff the partial order of [t] is a total order. *)
val is_total : Transaction.t -> bool

type failure =
  | Different_first of { first1 : Db.entity; first2 : Db.entity }
  | Unguarded of { y : Db.entity; in_txn : int }

val pp_failure : Db.t -> Format.formatter -> failure -> unit

(** [check t1 t2] — both must satisfy {!is_total} ([Invalid_argument]
    otherwise). *)
val check : Transaction.t -> Transaction.t -> (unit, failure) result

val safe_and_deadlock_free : Transaction.t -> Transaction.t -> bool
