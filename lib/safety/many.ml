open Ddlock_graph
open Ddlock_model
open Ddlock_schedule

type verdict =
  | Safe_and_deadlock_free
  | Pair_fails of { i : int; j : int; failure : Pair.failure }
  | Cycle_fails of cycle_witness

and cycle_witness = {
  cycle : int list;
  prefixes : Bitset.t array;
  schedule : Step.t list;
}

let pp_verdict sys ppf = function
  | Safe_and_deadlock_free ->
      Format.fprintf ppf "safe and deadlock-free"
  | Pair_fails { i; j; failure } ->
      Format.fprintf ppf "pair (T%d, T%d) fails: %a" (i + 1) (j + 1)
        (Pair.pp_failure (System.db sys))
        failure
  | Cycle_fails { cycle; schedule; _ } ->
      Format.fprintf ppf
        "@[<v>cycle %a admits a partial schedule with cyclic D:@,%a@]"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " -> ")
           (fun ppf i -> Format.fprintf ppf "T%d" (i + 1)))
        cycle
        (Step.pp_schedule sys) schedule

let rotate l r =
  let rec split i acc = function
    | rest when i = 0 -> rest @ List.rev acc
    | [] -> List.rev acc
    | x :: rest -> split (i - 1) (x :: acc) rest
  in
  split r [] l

(* Linear extension of a prefix: a full topological order filtered to the
   prefix (any topological order restricted to a downward-closed set is a
   linear extension of that set). *)
let extension_of_prefix tx prefix =
  match Topo.sort (Transaction.given_arcs tx) with
  | Some o -> List.filter (Bitset.mem prefix) o
  | None -> assert false

let try_cycle sys order =
  let txs = Array.of_list order in
  let k = Array.length txs in
  let tx i = System.txn sys txs.(i) in
  let ents i = Transaction.entity_set (tx i) in
  let ne = Db.entity_count (System.db sys) in
  let x =
    Array.init k (fun i ->
        match Pair.common_first (tx i) (tx ((i + 1) mod k)) with
        | Some e -> e
        | None -> assert false (* cycle edges share entities; pairs passed *))
  in
  let prefixes = Array.make k (Bitset.create 0) in
  let others i =
    (* ⋃ R(Tj) over cycle positions j that must be avoided wholesale.
       The successor (i+1) is exempt (the cycle arc i -> i+1 runs through
       x_i, which both access).  The predecessor (i-1) is exempt for
       i >= 1 because it is constrained through Y(T*_{i-1}) instead — T_i
       may relock what the predecessor's prefix already unlocked.  For
       i = 0 there is no earlier prefix: the predecessor T_{k-1} (the
       "last" transaction) must be avoided entirely, otherwise T_1 would
       create a reverse arc T_1 -> T_k. *)
    let acc = Bitset.create ne in
    for j = 0 to k - 1 do
      let exempt =
        j = i || j = (i + 1) mod k || (i > 0 && j = i - 1)
      in
      if not exempt then Bitset.union_into ~into:acc (ents j)
    done;
    acc
  in
  let ok = ref true in
  for i = 0 to k - 1 do
    if !ok then begin
      let avoid = others i in
      if i > 0 then
        Bitset.union_into ~into:avoid
          (Transaction.y_set (tx (i - 1)) prefixes.(i - 1));
      let p = Transaction.max_prefix_avoiding (tx i) avoid in
      prefixes.(i) <- p;
      if not (Bitset.mem p (Transaction.lock_node_exn (tx i) x.(i))) then
        ok := false
    end
  done;
  if not !ok then None
  else
    let schedule =
      List.concat
        (List.init k (fun i ->
             List.map (Step.v txs.(i)) (extension_of_prefix (tx i) prefixes.(i))))
    in
    Some { cycle = order; prefixes; schedule }

let failing_pair sys =
  let n = System.size sys in
  let rec go i j =
    if i >= n then None
    else if j >= n then go (i + 1) (i + 2)
    else
      let ti = System.txn sys i and tj = System.txn sys j in
      Ddlock_obs.Cancel.poll ();
      if Pair.has_common ti tj then
        match Pair.check ti tj with
        | Ok () -> go i (j + 1)
        | Error failure -> Some (i, j, failure)
      else go i (j + 1)
  in
  go 0 1

let check sys =
  match failing_pair sys with
  | Some (i, j, failure) -> Pair_fails { i; j; failure }
  | None ->
      let g = System.interaction_graph sys in
      let result = ref Safe_and_deadlock_free in
      (try
         Seq.iter
           (fun cycle ->
             (* Candidate enumeration can be exponential in the cycle
                count; the poll lets a deadline bound it like the
                exhaustive searches. *)
             Ddlock_obs.Cancel.poll ();
             let k = List.length cycle in
             for r = 0 to k - 1 do
               match !result with
               | Safe_and_deadlock_free -> (
                   match try_cycle sys (rotate cycle r) with
                   | Some w ->
                       result := Cycle_fails w;
                       raise Exit
                   | None -> ())
               | _ -> ()
             done)
           (Ungraph.directed_cycles g)
       with Exit -> ());
      !result

let safe_and_deadlock_free sys = check sys = Safe_and_deadlock_free

let candidate_count sys =
  let g = System.interaction_graph sys in
  Seq.fold_left
    (fun acc c -> acc + List.length c)
    0
    (Ungraph.directed_cycles g)
