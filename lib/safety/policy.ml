open Ddlock_graph
open Ddlock_model

let two_phase_violations t =
  let ents = Transaction.entity_set t in
  Bitset.fold
    (fun x acc ->
      Bitset.fold
        (fun y acc ->
          if
            Transaction.precedes t
              (Transaction.unlock_node_exn t x)
              (Transaction.lock_node_exn t y)
          then (x, y) :: acc
          else acc)
        ents acc)
    ents []
  |> List.rev

let is_two_phase = Transaction.is_two_phase

let make_two_phase t =
  if not (Lemma2.is_total t) then
    invalid_arg "Policy.make_two_phase: total order required";
  let order =
    match Topo.sort (Transaction.given_arcs t) with
    | Some o -> o
    | None -> assert false
  in
  let nodes = List.map (Transaction.node t) order in
  let locks = List.filter (fun (n : Node.t) -> n.op = Node.Lock) nodes in
  let unlocks = List.filter (fun (n : Node.t) -> n.op = Node.Unlock) nodes in
  match Transaction.of_total_order (Transaction.db t) (locks @ unlocks) with
  | Ok t' -> t'
  | Error _ -> assert false

module Tree = struct
  type t = { db : Db.t; root : Db.entity; parent : int array }

  let create db ~root ~edges =
    let ne = Db.entity_count db in
    let parent = Array.make ne (-1) in
    let root_e = Db.find_entity_exn db root in
    List.iter
      (fun (p, c) ->
        let pe = Db.find_entity_exn db p and ce = Db.find_entity_exn db c in
        if ce = root_e then invalid_arg "Policy.Tree.create: root has a parent";
        if parent.(ce) >= 0 then
          invalid_arg "Policy.Tree.create: duplicate child";
        parent.(ce) <- pe)
      edges;
    (* Every non-root entity needs a parent, and paths must reach root. *)
    for e = 0 to ne - 1 do
      if e <> root_e && parent.(e) < 0 then
        invalid_arg "Policy.Tree.create: entity without parent"
    done;
    for e = 0 to ne - 1 do
      let steps = ref 0 and cur = ref e in
      while !cur <> root_e do
        incr steps;
        if !steps > ne then invalid_arg "Policy.Tree.create: cycle";
        cur := parent.(!cur)
      done
    done;
    { db; root = root_e; parent }

  let root t = t.root
  let parent t e = if e = t.root then None else Some t.parent.(e)

  type violation = Parent_not_held of { child : Db.entity } | Not_total_order

  let pp_violation db ppf = function
    | Parent_not_held { child } ->
        Format.fprintf ppf "L%s while its tree parent is not held"
          (Db.entity_name db child)
    | Not_total_order ->
        Format.fprintf ppf "tree protocol requires a total order"

  let obeys tree t =
    if not (Lemma2.is_total t) then Error Not_total_order
    else begin
      let order =
        match Topo.sort (Transaction.given_arcs t) with
        | Some o -> o
        | None -> assert false
      in
      let held = Hashtbl.create 7 in
      let first = ref true in
      let result = ref (Ok ()) in
      List.iter
        (fun v ->
          if !result = Ok () then
            let nd = Transaction.node t v in
            match nd.Node.op with
            | Node.Unlock -> Hashtbl.remove held nd.entity
            | Node.Lock ->
                if !first then first := false
                else begin
                  match parent tree nd.entity with
                  | Some p when Hashtbl.mem held p -> ()
                  | _ -> result := Error (Parent_not_held { child = nd.entity })
                end;
                Hashtbl.replace held nd.entity ())
        order;
      !result
    end

  let random_transaction rng tree ~steps =
    let ne = Db.entity_count tree.db in
    let children e =
      List.filter (fun c -> c <> tree.root && tree.parent.(c) = e)
        (List.init ne Fun.id)
    in
    let held = ref [] and locked_ever = ref [] in
    let ops = ref [] in
    let lock e =
      ops := Node.lock e :: !ops;
      held := e :: !held;
      locked_ever := e :: !locked_ever
    in
    let unlock e =
      ops := Node.unlock e :: !ops;
      held := List.filter (fun x -> x <> e) !held
    in
    (* First lock: random entity. *)
    lock (Random.State.int rng ne);
    let lock_count = ref 1 in
    let continue = ref true in
    while !continue do
      let lockable =
        List.sort_uniq compare
          (List.concat_map
             (fun e ->
               List.filter (fun c -> not (List.mem c !locked_ever)) (children e))
             !held)
      in
      let can_lock = lockable <> [] && !lock_count < steps in
      let can_unlock = !held <> [] in
      if can_lock && (not can_unlock || Random.State.bool rng) then begin
        lock (List.nth lockable (Random.State.int rng (List.length lockable)));
        incr lock_count
      end
      else if can_unlock then
        (* Unlock a random held entity. *)
        unlock (List.nth !held (Random.State.int rng (List.length !held)))
      else continue := false;
      if !held = [] && (!lock_count >= steps || lockable = []) then
        continue := false
    done;
    (* Unlock leftovers. *)
    List.iter unlock !held;
    match Transaction.of_total_order tree.db (List.rev !ops) with
    | Ok t -> t
    | Error _ -> assert false

  let to_digraph t =
    let ne = Db.entity_count t.db in
    Digraph.create ne
      (List.filter_map
         (fun c -> if c = t.root then None else Some (t.parent.(c), c))
         (List.init ne Fun.id))
end
