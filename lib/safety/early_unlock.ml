open Ddlock_model

let sequence t =
  if not (Lemma2.is_total t) then
    invalid_arg "Early_unlock: transactions must be total orders";
  match Ddlock_graph.Topo.sort (Transaction.given_arcs t) with
  | Some o -> Array.of_list o
  | None -> assert false

let position seq v =
  let rec go i = if seq.(i) = v then i else go (i + 1) in
  go 0

let span t x =
  let seq = sequence t in
  position seq (Transaction.unlock_node_exn t x)
  - position seq (Transaction.lock_node_exn t x)

let total_span sys =
  Array.fold_left
    (fun acc t ->
      List.fold_left (fun acc x -> acc + span t x) acc (Transaction.entities t))
    0 (System.txns sys)

type stats = { swaps : int; span_before : int; span_after : int }

let of_sequence db t seq =
  Transaction.of_total_order db
    (List.map (Transaction.node t) (Array.to_list seq))

(* Remove the element at [from] and reinsert it so that it lands at
   position [to_] in the resulting array. *)
let reinsert seq ~from ~to_ =
  let v = seq.(from) in
  let rest = Array.of_list (List.filteri (fun i _ -> i <> from) (Array.to_list seq)) in
  Array.concat
    [ Array.sub rest 0 to_; [| v |]; Array.sub rest to_ (Array.length rest - to_) ]

(* One improvement pass: for every transaction and entity, move its
   Unlock to the earliest certified position and its Lock to the latest.
   Returns the improved system and the number of accepted moves. *)
let improve_once sys accept =
  let db = System.db sys in
  let txns = Array.copy (System.txns sys) in
  let moves = ref 0 in
  let attempt i seq =
    match of_sequence db txns.(i) seq with
    | Error _ -> false
    | Ok t' ->
        let txns' = Array.copy txns in
        txns'.(i) <- t';
        let sys' = System.create (Array.to_list txns') in
        (* Accept only certified moves that strictly shrink the global
           span — guarantees both soundness and termination. *)
        if
          total_span sys' < total_span (System.create (Array.to_list txns))
          && accept sys'
        then begin
          txns.(i) <- t';
          incr moves;
          true
        end
        else false
  in
  Array.iteri
    (fun i _ ->
      List.iter
        (fun x ->
          (* Earliest position for Ux: scan upward from just after Lx. *)
          let t = txns.(i) in
          let seq = sequence t in
          let ux = Transaction.unlock_node_exn t x in
          let lx = Transaction.lock_node_exn t x in
          let pu = position seq ux and pl = position seq lx in
          let rec try_unlock p =
            if p < pu then
              if attempt i (reinsert seq ~from:pu ~to_:p) then ()
              else try_unlock (p + 1)
          in
          try_unlock (pl + 1);
          (* Latest position for Lx: scan downward from just before Ux. *)
          let t = txns.(i) in
          let seq = sequence t in
          let ux = position seq (Transaction.unlock_node_exn t x) in
          let pl = position seq (Transaction.lock_node_exn t x) in
          let rec try_lock p =
            if p > pl then
              if attempt i (reinsert seq ~from:pl ~to_:p) then ()
              else try_lock (p - 1)
          in
          try_lock (ux - 1))
        (Transaction.entities txns.(i)))
    txns;
  (System.create (Array.to_list txns), !moves)

let minimize_spans sys =
  let before = total_span sys in
  if not (Many.safe_and_deadlock_free sys) then
    (sys, { swaps = 0; span_before = before; span_after = before })
  else begin
    let accept sys' = Many.safe_and_deadlock_free sys' in
    let rec fixpoint sys total =
      let sys', moves = improve_once sys accept in
      (* Every accepted move strictly decreases the global span, which is
         bounded below, so this terminates. *)
      if moves > 0 then fixpoint sys' (total + moves)
      else (sys', total)
    in
    let sys', swaps = fixpoint sys 0 in
    (sys', { swaps; span_before = before; span_after = total_span sys' })
  end
