open Ddlock_graph
open Ddlock_model

(** The O(n³) minimal-prefix algorithm of §5 — the slower alternative the
    paper describes before sharpening it into Theorem 3.  Kept as an
    independently-derived decider and as the ablation baseline for the
    E8 bench.

    For a fixed common entity [y], the condition
    "for all t₁ ∈ T₁: L_t₁(Ly) ∩ R_t₂(Ly) ≠ ∅ (with t₂ executing before
    Ly only its T₂-predecessors)" is violated iff the unique minimal
    prefix V₁ of T₁ satisfying

    - V₁ contains all predecessors of Ly in T₁, and
    - for each z ∈ R_T₂(Ly): Lz ∈ V₁ implies Uz ∈ V₁

    does not contain Ly. *)

(** [minimal_prefix t1 t2 y] computes the prefix V₁ described above (a
    node set of [t1]).  Requires both transactions to access [y]. *)
val minimal_prefix : Transaction.t -> Transaction.t -> Db.entity -> Bitset.t

(** [violates t1 t2 y] iff the minimal prefix avoids [Ly] — i.e. some
    extension pair violates Q₁(y) ≠ ∅ with the guard on the [t1] side. *)
val violates : Transaction.t -> Transaction.t -> Db.entity -> bool

(** Full decider: condition 1 as in {!Pair.common_first}, then the
    minimal-prefix check of every other common entity in both directions.
    Agrees with {!Pair.check} (property-tested). *)
val safe_and_deadlock_free : Transaction.t -> Transaction.t -> bool
