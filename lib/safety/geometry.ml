open Ddlock_graph
open Ddlock_model

let sequence t =
  if not (Lemma2.is_total t) then
    invalid_arg "Geometry: transactions must be total orders";
  match Topo.sort (Transaction.given_arcs t) with
  | Some o -> Array.of_list o
  | None -> assert false

(* 1-based step position of a node in the total order. *)
let positions t =
  let seq = sequence t in
  let pos = Array.make (Array.length seq) 0 in
  Array.iteri (fun i v -> pos.(v) <- i + 1) seq;
  pos

(* Per common entity x: the forbidden rectangle
   [pos1 Lx, pos1 Ux) × [pos2 Lx, pos2 Ux).                        *)
type rect = { a1 : int; b1 : int; a2 : int; b2 : int; entity : Db.entity }

let rectangles t1 t2 =
  let p1 = positions t1 and p2 = positions t2 in
  let common =
    Bitset.inter (Transaction.entity_set t1) (Transaction.entity_set t2)
  in
  Bitset.fold
    (fun x acc ->
      {
        a1 = p1.(Transaction.lock_node_exn t1 x);
        b1 = p1.(Transaction.unlock_node_exn t1 x);
        a2 = p2.(Transaction.lock_node_exn t2 x);
        b2 = p2.(Transaction.unlock_node_exn t2 x);
        entity = x;
      }
      :: acc)
    common []

let grid t1 t2 =
  let n1 = Transaction.node_count t1 and n2 = Transaction.node_count t2 in
  let g = Array.make_matrix (n1 + 1) (n2 + 1) false in
  List.iter
    (fun r ->
      for i = r.a1 to r.b1 - 1 do
        for j = r.a2 to r.b2 - 1 do
          g.(i).(j) <- true
        done
      done)
    (rectangles t1 t2);
  g

(* Monotone reachability through free cells, from a seed predicate. *)
let reach_from g seed =
  let n1 = Array.length g - 1 and n2 = Array.length g.(0) - 1 in
  let r = Array.make_matrix (n1 + 1) (n2 + 1) false in
  for i = 0 to n1 do
    for j = 0 to n2 do
      if not g.(i).(j) then
        r.(i).(j) <-
          seed i j
          || (i > 0 && r.(i - 1).(j))
          || (j > 0 && r.(i).(j - 1))
    done
  done;
  r

(* Co-reachability: cells from which the top-right corner is reachable. *)
let reach_to_end g =
  let n1 = Array.length g - 1 and n2 = Array.length g.(0) - 1 in
  let r = Array.make_matrix (n1 + 1) (n2 + 1) false in
  for i = n1 downto 0 do
    for j = n2 downto 0 do
      if not g.(i).(j) then
        r.(i).(j) <-
          (i = n1 && j = n2)
          || (i < n1 && r.(i + 1).(j))
          || (j < n2 && r.(i).(j + 1))
    done
  done;
  r

let find_deadlock_point t1 t2 =
  let g = grid t1 t2 in
  let n1 = Array.length g - 1 and n2 = Array.length g.(0) - 1 in
  let f = reach_from g (fun i j -> i = 0 && j = 0) in
  let result = ref None in
  for i = 0 to n1 - 1 do
    for j = 0 to n2 - 1 do
      if !result = None && f.(i).(j) && g.(i + 1).(j) && g.(i).(j + 1) then
        result := Some (i, j)
    done
  done;
  !result

let deadlock_free t1 t2 = find_deadlock_point t1 t2 = None

let safe t1 t2 =
  let g = grid t1 t2 in
  let rects = rectangles t1 t2 in
  let f = reach_from g (fun i j -> i = 0 && j = 0) in
  let b = reach_to_end g in
  (* SE_x = {i >= a1(x), j < a2(x)}: the path has seen T1 lock x while T2
     has not; NW_y symmetric. *)
  let se r i j = i >= r.a1 && j < r.a2 in
  let nw r i j = i < r.a1 && j >= r.a2 in
  (* Cells legally reachable from a forward-reachable cell of region. *)
  let reach_from_region pred =
    reach_from g (fun i j -> f.(i).(j) && pred i j)
  in
  let hit reach pred =
    let n1 = Array.length g - 1 and n2 = Array.length g.(0) - 1 in
    let found = ref false in
    for i = 0 to n1 do
      for j = 0 to n2 do
        if (not !found) && reach.(i).(j) && b.(i).(j) && pred i j then
          found := true
      done
    done;
    !found
  in
  let unsafe = ref false in
  List.iter
    (fun rx ->
      if not !unsafe then begin
        let from_se = reach_from_region (se rx) in
        let from_nw = reach_from_region (nw rx) in
        List.iter
          (fun ry ->
            if (not !unsafe) && rx.entity <> ry.entity then
              if hit from_se (nw ry) || hit from_nw (se ry) then unsafe := true)
          rects
      end)
    rects;
  not !unsafe

let safe_and_deadlock_free t1 t2 = deadlock_free t1 t2 && safe t1 t2
