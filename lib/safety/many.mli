open Ddlock_graph
open Ddlock_model
open Ddlock_schedule

(** Theorem 4: safety ∧ deadlock-freedom of a whole transaction system in
    time polynomial in the number of cycles of its interaction graph.

    The algorithm (§5):
    + check every interacting pair with Theorem 3;
    + for every directed cycle [T₁ → … → Tₖ → T₁] of the interaction
      graph and every choice of last transaction, build the canonical
      maximal prefixes

      - T*₁ = maximal prefix of T₁ locking nothing of
        [⋃_{j ∉ {1,2}} R(Tⱼ)],
      - T*ᵢ = maximal prefix of Tᵢ locking nothing of
        [Y(T*ᵢ₋₁) ∪ ⋃_{j ∉ {i,i+1}} R(Tⱼ)]  (indices mod k),

      and report a violation when every T*ᵢ contains [Lxᵢ], where [xᵢ]
      is the common-first entity of the pair (Tᵢ, Tᵢ₊₁).

    A violation yields the witness partial schedule S* that runs linear
    extensions of T*₁ … T*ₖ serially: S* is legal and its serialization digraph D is cyclic. *)

type verdict =
  | Safe_and_deadlock_free
  | Pair_fails of { i : int; j : int; failure : Pair.failure }
  | Cycle_fails of cycle_witness

and cycle_witness = {
  cycle : int list;  (** transaction indices T₁ … Tₖ in traversal order *)
  prefixes : Bitset.t array;  (** T*ᵢ for each position on the cycle *)
  schedule : Step.t list;  (** the witness partial schedule S* *)
}

val pp_verdict : System.t -> Format.formatter -> verdict -> unit

val check : System.t -> verdict

val safe_and_deadlock_free : System.t -> bool

(** Number of (cycle, last-transaction) candidates the search would
    examine — the complexity parameter of Theorem 4 / Corollary 4. *)
val candidate_count : System.t -> int
