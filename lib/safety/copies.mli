open Ddlock_model

(** Corollary 3 and Theorem 5: systems of identical copies.

    Two copies of T are safe ∧ deadlock-free iff some entity [x] is locked
    before everything else and every other entity's Lock is guarded by an
    entity held across it; and then (Theorem 5) ANY number of copies is
    safe ∧ deadlock-free.  (False for deadlock-freedom alone — Fig. 6.) *)

type failure =
  | No_first_lock  (** no [Lx] preceding all other nodes *)
  | Unguarded of Db.entity
      (** no [z] with [Lz ≺ Ly] and [Ly ≺ Uz] for this [y] *)

val pp_failure : Db.t -> Format.formatter -> failure -> unit

(** The Corollary 3 criterion on a single transaction. *)
val check : Transaction.t -> (unit, failure) result

(** [safe_and_deadlock_free t] iff any number (>= 2) of copies of [t] is
    safe ∧ deadlock-free (Theorem 5). *)
val safe_and_deadlock_free : Transaction.t -> bool
