open Ddlock_graph
open Ddlock_model

let minimal_prefix t1 t2 y =
  let ly1 = Transaction.lock_node_exn t1 y in
  let ly2 = Transaction.lock_node_exn t2 y in
  (* R_T2(Ly): entities locked strictly before Ly in T2. *)
  let r2 = Transaction.r_set t2 ly2 in
  (* Step 1: all strict predecessors of Ly in T1. *)
  let v =
    Transaction.down_closure t1
      (List.filter
         (fun u -> u <> ly1 && Transaction.precedes t1 u ly1)
         (List.init (Transaction.node_count t1) Fun.id))
  in
  (* Step 2: close under "Lz in V implies Uz in V" for z in R_T2(Ly). *)
  let changed = ref true in
  while !changed do
    changed := false;
    Bitset.iter
      (fun z ->
        if Transaction.accesses t1 z then begin
          let lz = Transaction.lock_node_exn t1 z in
          let uz = Transaction.unlock_node_exn t1 z in
          if Bitset.mem v lz && not (Bitset.mem v uz) then begin
            Bitset.union_into ~into:v (Transaction.down_closure t1 [ uz ]);
            changed := true
          end
        end)
      r2
  done;
  v

let violates t1 t2 y =
  let ly1 = Transaction.lock_node_exn t1 y in
  not (Bitset.mem (minimal_prefix t1 t2 y) ly1)

let safe_and_deadlock_free t1 t2 =
  let r =
    Bitset.inter (Transaction.entity_set t1) (Transaction.entity_set t2)
  in
  if Bitset.is_empty r then true
  else
    match Pair.common_first t1 t2 with
    | None -> false
    | Some x ->
        not
          (Bitset.exists
             (fun y -> y <> x && (violates t1 t2 y || violates t2 t1 y))
             r)
