open Ddlock_graph
open Ddlock_model

(** Theorem 3: the O(n²) safety ∧ deadlock-freedom test for a pair of
    distributed transactions.

    {T₁, T₂} is safe ∧ deadlock-free iff
    + there is a common entity [x] such that [Lx] precedes [Ly] in both
      transactions for every other common entity [y], and
    + for every other common entity [y],
      [L_T₁(Ly) ∩ R_T₂(Ly) ≠ ∅] and [L_T₂(Ly) ∩ R_T₁(Ly) ≠ ∅]. *)

type failure =
  | No_common_first of { first1 : Db.entity; first2 : Db.entity }
      (** condition 1 fails: extensions can lock [first1] / [first2]
          (distinct minimal common entities) first *)
  | Unguarded of { y : Db.entity; in_txn : int }
      (** condition 2 fails at [y]: [L_Tᵢ(Ly) ∩ R_Tⱼ(Ly) = ∅] where
          [i = in_txn] (0 or 1) and [j] is the other *)

val pp_failure : Db.t -> Format.formatter -> failure -> unit

(** [common_first t1 t2] is the entity [x] of condition 1 if it exists
    (unique when it does).  [None] when there is no common entity, or no
    such [x].  Use {!has_common} to distinguish. *)
val common_first : Transaction.t -> Transaction.t -> Db.entity option

val has_common : Transaction.t -> Transaction.t -> bool

(** The full Theorem 3 test. *)
val check : Transaction.t -> Transaction.t -> (unit, failure) result

val safe_and_deadlock_free : Transaction.t -> Transaction.t -> bool

(** Condition-2 building blocks, exposed for the benches and the
    minimal-prefix variant: [guard t other y] is
    [L_t(Ly) ∩ R_other(Ly)]. *)
val guard : Transaction.t -> Transaction.t -> Db.entity -> Bitset.t
